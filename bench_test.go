// Benchmarks regenerating every table and figure of the paper (in Quick
// mode — run cmd/photodtn-experiments for full-scale numbers), the ablation
// studies DESIGN.md calls out, and micro-benchmarks of the hot paths.
package photodtn_test

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"photodtn/internal/core"
	"photodtn/internal/coverage"
	"photodtn/internal/experiments"
	"photodtn/internal/faults"
	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/obs"
	"photodtn/internal/peer"
	"photodtn/internal/prophet"
	"photodtn/internal/routing"
	"photodtn/internal/selection"
	"photodtn/internal/sim"
	"photodtn/internal/trace"
	"photodtn/internal/wire"
	"photodtn/internal/workload"
)

func benchOpts() experiments.Options {
	return experiments.Options{Runs: 1, BaseSeed: 1, Quick: true}
}

// --- Table and figure benchmarks (one per paper artefact) ---

func BenchmarkTable1Settings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.FormatTable1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig3PrototypeDemo(b *testing.B) {
	var aspect float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDemo(experiments.DefaultDemoConfig())
		if err != nil {
			b.Fatal(err)
		}
		aspect = res.Rows[0].AspectDeg
	}
	b.ReportMetric(aspect, "ours-aspect-deg")
}

func benchFigure(b *testing.B, fn func() (*experiments.Figure, error)) {
	b.Helper()
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = fn()
		if err != nil {
			b.Fatal(err)
		}
	}
	if fig == nil || len(fig.Series) == 0 {
		b.Fatal("no series")
	}
}

func BenchmarkFig5CoverageVsTime(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) { return experiments.Fig5(benchOpts()) })
}

func BenchmarkFig6ContactDuration(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) { return experiments.Fig6(benchOpts()) })
}

func BenchmarkFig7Storage(b *testing.B) {
	for _, kind := range []experiments.TraceKind{experiments.MIT, experiments.Cambridge} {
		b.Run(kind.String(), func(b *testing.B) {
			benchFigure(b, func() (*experiments.Figure, error) { return experiments.Fig7(kind, benchOpts()) })
		})
	}
}

func BenchmarkFig8PhotoRate(b *testing.B) {
	for _, kind := range []experiments.TraceKind{experiments.MIT, experiments.Cambridge} {
		b.Run(kind.String(), func(b *testing.B) {
			benchFigure(b, func() (*experiments.Figure, error) { return experiments.Fig8(kind, benchOpts()) })
		})
	}
}

// --- Ablation benchmarks (DESIGN.md §9) ---

func BenchmarkAblationPthld(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) { return experiments.AblationPthld(benchOpts()) })
}

func BenchmarkAblationTheta(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) { return experiments.AblationTheta(benchOpts()) })
}

func BenchmarkAblationEvaluator(b *testing.B) {
	benchFigure(b, func() (*experiments.Figure, error) { return experiments.AblationEvaluator(benchOpts()) })
}

// --- Micro-benchmarks of the hot paths ---

func benchWorkload(n int, seed int64) (*coverage.Map, model.PhotoList) {
	rng := rand.New(rand.NewSource(seed))
	wl := workload.Default(50, 3600)
	pois := workload.GeneratePoIs(wl, rng)
	m := coverage.NewMap(pois, geo.Radians(30))
	photos := make(model.PhotoList, 0, n)
	wl.PhotosPerHour = float64(n)
	for _, e := range workload.GeneratePhotos(wl, rng) {
		photos = append(photos, e.Photo)
	}
	return m, photos
}

func BenchmarkFootprintGridIndex(b *testing.B) {
	m, photos := benchWorkload(500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Footprint(photos[i%len(photos)])
	}
}

func BenchmarkFootprintBruteForce(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	wl := workload.Default(50, 3600)
	pois := workload.GeneratePoIs(wl, rng)
	// A cell size spanning the whole region degenerates the grid into a
	// single cell: the brute-force baseline of the ablation.
	m := coverage.NewMapWithCellSize(pois, geo.Radians(30), 1e9)
	wl.PhotosPerHour = 500
	var photos model.PhotoList
	for _, e := range workload.GeneratePhotos(wl, rng) {
		photos = append(photos, e.Photo)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Footprint(photos[i%len(photos)])
	}
}

func BenchmarkArcSetAddAndGain(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	arcs := make([]geo.Arc, 256)
	for i := range arcs {
		arcs[i] = geo.NewArc(rng.Float64()*geo.TwoPi, rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s geo.ArcSet
		for _, a := range arcs[:16] {
			s.Gain(a)
			s.Add(a)
		}
	}
}

func BenchmarkCoverageStateAddPhotos(b *testing.B) {
	m, photos := benchWorkload(300, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := m.NewState()
		st.AddPhotos(photos)
	}
}

func BenchmarkGreedyFill(b *testing.B) {
	m, photos := benchWorkload(300, 4)
	fpc := coverage.NewFootprintCache(m)
	pool := selection.BuildPool(fpc, photos)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := selection.NewEvaluator(m, selection.DefaultConfig(), nil, nil)
		selection.GreedyFill(ev, pool, 40*(4<<20))
	}
}

func BenchmarkReallocate(b *testing.B) {
	m, photos := benchWorkload(300, 5)
	fpc := coverage.NewFootprintCache(m)
	half := len(photos) / 2
	a := selection.Alloc{Node: 1, P: 0.7, Capacity: 150 * (4 << 20), Photos: photos[:half]}
	bb := selection.Alloc{Node: 2, P: 0.3, Capacity: 150 * (4 << 20), Photos: photos[half:]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		selection.Reallocate(fpc, selection.DefaultConfig(), nil, nil, a, bb)
	}
}

func benchParticipants(m *coverage.Map, photos model.PhotoList, n int) []selection.Participant {
	parts := make([]selection.Participant, 0, n)
	per := len(photos) / n
	for i := 0; i < n; i++ {
		parts = append(parts, selection.Participant{
			Node:   model.NodeID(i + 1),
			Photos: photos[i*per : (i+1)*per],
			P:      0.3 + 0.05*float64(i),
		})
	}
	return parts
}

func BenchmarkExpectedCoverageExact(b *testing.B) {
	m, photos := benchWorkload(200, 6)
	parts := benchParticipants(m, photos, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		selection.ExactExpectedCoverage(m, nil, parts)
	}
}

func BenchmarkExpectedCoverageMonteCarlo(b *testing.B) {
	m, photos := benchWorkload(200, 6)
	parts := benchParticipants(m, photos, 8)
	cfg := selection.Config{ExactLimit: 0, Samples: 24, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		selection.ExpectedCoverage(m, cfg, nil, parts)
	}
}

func BenchmarkProphetExchange(b *testing.B) {
	cfg := prophet.DefaultConfig()
	tabs := make([]*prophet.Table, 20)
	for i := range tabs {
		tabs[i] = prophet.NewTable(model.NodeID(i), cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prophet.Exchange(tabs[i%20], tabs[(i+7)%20], float64(i)*60)
	}
}

func BenchmarkTraceGenerateMITLike(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(trace.MITLike(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWirePhotoListCodec(b *testing.B) {
	_, photos := benchWorkload(200, 7)
	md := wire.Metadata{Entries: []wire.MetaEntry{{Node: 1, Photos: photos}}}
	var sink countWriter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.n = 0
		if err := wire.Write(&sink, md); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(sink.n)
}

type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func BenchmarkSimOurSchemeShortRun(b *testing.B) {
	p := experiments.DefaultParams(experiments.MIT)
	p.SpanHours = 30
	for i := 0; i < b.N; i++ {
		cfg, scheme, err := experiments.Build(p, experiments.SchemeOurs, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(cfg, scheme); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineTable1 measures a full engine run at the paper's Table I
// settings (MIT-like trace, default storage, workload, gateways) over a
// fixed 120-hour prefix. The world — trace, map, photo workload — is built
// once outside the timer, so the measurement isolates the engine and the
// per-contact selection machinery that dominates it. The two variants pin
// the incremental-selection ablation: "incremental" is the default
// dirty-PoI/cull/session path, "fromscratch" disables it and re-walks every
// candidate residual in full (the pre-incremental behaviour). Selections,
// and therefore results, are identical; only the work per contact differs.
func BenchmarkEngineTable1(b *testing.B) {
	p := experiments.DefaultParams(experiments.MIT)
	p.SpanHours = 120
	cfg, _, err := experiments.Build(p, experiments.SchemeOurs, 1)
	if err != nil {
		b.Fatal(err)
	}
	runWith := func(b *testing.B, core2 func() sim.Scheme) {
		b.ReportAllocs()
		var delivered int
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(cfg, core2())
			if err != nil {
				b.Fatal(err)
			}
			delivered = res.Final.Delivered
		}
		if delivered == 0 {
			b.Fatal("nothing delivered")
		}
	}
	b.Run("incremental", func(b *testing.B) {
		runWith(b, func() sim.Scheme { return core.New(core.DefaultConfig()) })
	})
	b.Run("fromscratch", func(b *testing.B) {
		runWith(b, func() sim.Scheme {
			cc := core.DefaultConfig()
			cc.Selection.DisableIncremental = true
			return core.New(cc)
		})
	})
}

// BenchmarkEngineWithFaults compares the engine's fault-free path with the
// fault layer absent, present-but-zero (must cost ~nothing: the model is
// never built), and active. Watch the off/zero pair: they should be within
// noise of each other.
func BenchmarkEngineWithFaults(b *testing.B) {
	runWith := func(b *testing.B, fc *faults.Config) {
		p := experiments.DefaultParams(experiments.MIT)
		p.SpanHours = 30
		p.Faults = fc
		for i := 0; i < b.N; i++ {
			cfg, scheme, err := experiments.Build(p, experiments.SchemeOurs, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(cfg, scheme); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { runWith(b, nil) })
	b.Run("zero", func(b *testing.B) { runWith(b, &faults.Config{Seed: 1}) })
	b.Run("active", func(b *testing.B) {
		runWith(b, &faults.Config{
			Seed: 1, NodeFailRate: 0.3, MeanDowntimeSec: 6 * 3600, FrameLossProb: 0.1,
		})
	})
}

// BenchmarkObsEngine pins the observability overhead contract on a full
// engine run: "off" is the disabled state (nil observer, no instrumentation
// cost beyond nil checks), "on" pays live atomic counters plus the event
// trace ring. The pair should be within noise of each other.
func BenchmarkObsEngine(b *testing.B) {
	runWith := func(b *testing.B, makeObs func() *obs.Observer) {
		p := experiments.DefaultParams(experiments.MIT)
		p.SpanHours = 30
		for i := 0; i < b.N; i++ {
			p.Obs = makeObs()
			cfg, scheme, err := experiments.Build(p, experiments.SchemeOurs, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(cfg, scheme); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { runWith(b, func() *obs.Observer { return nil }) })
	b.Run("on", func(b *testing.B) {
		runWith(b, func() *obs.Observer { return obs.New(obs.DefaultTraceCap, nil) })
	})
}

func BenchmarkComputeBestPossibleFullTrace(b *testing.B) {
	p := experiments.DefaultParams(experiments.MIT)
	cfg, _, err := experiments.Build(p, experiments.SchemeBestPossible, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.ComputeBestPossible(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// slowConn adds a fixed per-write delay (the frame latency of a slow radio
// link) over a fault-injecting wrapper, passing deadlines through to the
// real pipe end so frame timeouts still work.
type slowConn struct {
	rw    io.ReadWriter
	conn  net.Conn
	delay time.Duration
}

func (c *slowConn) Read(p []byte) (int, error) { return c.rw.Read(p) }
func (c *slowConn) Write(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.rw.Write(p)
}
func (c *slowConn) SetReadDeadline(t time.Time) error  { return c.conn.SetReadDeadline(t) }
func (c *slowConn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

// BenchmarkTransferSlowLink measures recovery after a mid-chunk link death
// on a 1 ms/frame slow link: an 8-chunk (256 KiB) photo upload is killed at
// 150 KiB, then a second, clean-but-slow contact completes it. "resume" is
// the wire-v2 cross-contact path — only the missing chunks are re-sent;
// "discard" pins the v1-style baseline that re-sends everything. The
// wasted-B/op metric is receiver bytes that never contributed to a
// delivered photo (the README quotes these numbers).
func BenchmarkTransferSlowLink(b *testing.B) {
	const frameDelay = time.Millisecond
	m := coverage.NewMap([]model.PoI{model.NewPoI(0, geo.Vec{})}, geo.Radians(30))
	photo := model.Photo{
		ID: model.MakePhotoID(3, 0), Owner: 3, Location: geo.FromAngle(0).Scale(60),
		Range: 120, FOV: geo.Radians(60), Orientation: geo.Radians(180), Size: 4 << 20,
	}
	contact := func(h, cc *peer.Peer, cut int64) {
		ca, cb := net.Pipe()
		var rw io.ReadWriter = ca
		if cut > 0 {
			rw = faults.NewByteKillTransport(ca, cut)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = h.ContactConn(&slowConn{rw: rw, conn: ca, delay: frameDelay}, true)
			_ = ca.Close()
		}()
		go func() {
			defer wg.Done()
			_ = cc.ContactConn(cb, false)
			_ = cb.Close()
		}()
		wg.Wait()
	}
	run := func(b *testing.B, resume bool) {
		b.ReportAllocs()
		var wasted, sent int64
		for i := 0; i < b.N; i++ {
			cfg := peer.TransferConfig{ChunkSize: 32 << 10, Resume: resume}
			clock := func() float64 { return 1000 }
			cc := peer.New(model.CommandCenter, m, 0,
				peer.WithSeed(1), peer.WithClock(clock), peer.WithTransfer(cfg))
			h := peer.New(3, m, 64<<20,
				peer.WithSeed(2), peer.WithClock(clock), peer.WithTransfer(cfg),
				peer.WithPayloadBytes(256<<10))
			if err := h.AddPhoto(photo); err != nil {
				b.Fatal(err)
			}
			contact(h, cc, 150<<10) // dies mid-chunk
			contact(h, cc, 0)       // clean recovery contact
			if !cc.Photos().Contains(photo.ID) {
				b.Fatal("photo not delivered")
			}
			wasted += cc.TransferStats().WastedBytes
			sent += h.TransferStats().ChunksSent
		}
		b.ReportMetric(float64(wasted)/float64(b.N), "wasted-B/op")
		b.ReportMetric(float64(sent)/float64(b.N), "chunks/op")
	}
	b.Run("resume", func(b *testing.B) { run(b, true) })
	b.Run("discard", func(b *testing.B) { run(b, false) })
}
