module photodtn

go 1.22
