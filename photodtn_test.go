package photodtn_test

import (
	"context"
	"errors"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"

	"photodtn"
)

// The facade tests exercise the public API end-to-end the way a downstream
// user would; detailed behaviour is tested in the internal packages.

func facadeMap() *photodtn.Map {
	pois := []photodtn.PoI{
		photodtn.NewPoI(0, photodtn.Vec{X: 0, Y: 0}),
		photodtn.NewPoI(1, photodtn.Vec{X: 400, Y: 0}),
	}
	return photodtn.NewMap(pois, photodtn.Radians(30))
}

func facadePhoto(owner photodtn.NodeID, seq uint32, at photodtn.Vec, lookDeg float64) photodtn.Photo {
	return photodtn.Photo{
		ID:          photodtn.PhotoID(uint64(owner)<<32 | uint64(seq)),
		Owner:       owner,
		Location:    at,
		Range:       150,
		FOV:         photodtn.Radians(50),
		Orientation: photodtn.Radians(lookDeg),
		Size:        4 << 20,
	}
}

func TestFacadeCoverageModel(t *testing.T) {
	m := facadeMap()
	photos := photodtn.PhotoList{
		facadePhoto(1, 0, photodtn.Vec{X: 80, Y: 0}, 180),
		facadePhoto(1, 1, photodtn.Vec{X: 320, Y: 0}, 0),
	}
	cov := m.Of(photos)
	if cov.Point != 2 {
		t.Fatalf("point coverage = %v", cov.Point)
	}
	pt, as := m.Normalized(cov)
	if pt != 1 || as <= 0 {
		t.Fatalf("normalized = %v, %v", pt, as)
	}
}

func TestFacadeSelection(t *testing.T) {
	m := facadeMap()
	fpc := photodtn.NewFootprintCache(m)
	photos := photodtn.PhotoList{
		facadePhoto(1, 0, photodtn.Vec{X: 80, Y: 0}, 180),
		facadePhoto(1, 1, photodtn.Vec{X: 82, Y: 0}, 180), // duplicate view
		facadePhoto(1, 2, photodtn.Vec{X: 320, Y: 0}, 0),
	}
	res := photodtn.Reallocate(fpc, photodtn.DefaultSelectionConfig(), nil, nil,
		photodtn.Alloc{Node: 1, P: 0.8, Capacity: 8 << 20, Photos: photos},
		photodtn.Alloc{Node: 2, P: 0.1, Capacity: 0},
	)
	if !res.AFirst || len(res.ASel) != 2 {
		t.Fatalf("reallocation = %+v", res)
	}
	// One photo per PoI, no duplicates.
	if m.Of(res.ASel).Point != 2 {
		t.Fatalf("selection coverage = %v", m.Of(res.ASel))
	}
}

func TestFacadeExpectedCoverage(t *testing.T) {
	m := facadeMap()
	parts := []photodtn.Participant{{
		Node: 1, P: 0.5,
		Photos: photodtn.PhotoList{facadePhoto(1, 0, photodtn.Vec{X: 80, Y: 0}, 180)},
	}}
	got := photodtn.ExpectedCoverage(m, photodtn.DefaultSelectionConfig(), nil, parts)
	if got.Point != 0.5 {
		t.Fatalf("expected coverage = %v", got)
	}
}

// facadeSimConfig builds the small well-connected scenario the simulation
// facade tests share.
func facadeSimConfig(t *testing.T) photodtn.SimConfig {
	t.Helper()
	tr, err := photodtn.GenerateTrace(photodtn.TraceSynthConfig{
		Nodes: 10, Span: 20 * 3600, Communities: 2,
		IntraRate: 0.5 / 3600, InterRate: 0.05 / 3600,
		MeanContactDur: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return photodtn.SimConfig{
		Trace:           tr,
		Map:             facadeMap(),
		StorageBytes:    100 << 20,
		Gateways:        []photodtn.NodeID{1},
		GatewayInterval: 4 * 3600,
		GatewayDuration: 600,
		Seed:            1,
		Photos: []photodtn.PhotoEvent{
			{Time: 100, Node: 2, Photo: facadePhoto(2, 0, photodtn.Vec{X: 80, Y: 0}, 180)},
			{Time: 200, Node: 3, Photo: facadePhoto(3, 0, photodtn.Vec{X: 320, Y: 0}, 0)},
		},
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg := facadeSimConfig(t)
	res, err := photodtn.RunSimulation(cfg, photodtn.NewFramework(photodtn.DefaultFrameworkConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered == 0 {
		t.Fatal("nothing delivered in a well-connected scenario")
	}
	// The baselines construct through the facade too.
	for _, s := range []photodtn.Scheme{
		photodtn.NewSprayAndWait(), photodtn.NewModifiedSpray(),
		photodtn.NewPhotoNet(), photodtn.NewBestPossible(),
	} {
		if _, err := photodtn.RunSimulation(cfg, s); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestFacadeLivePeers(t *testing.T) {
	m := facadeMap()
	var ticks atomic.Int64
	tick := func() float64 { return float64(ticks.Add(10)) }
	cc := photodtn.NewPeer(photodtn.CommandCenter, m, 0, photodtn.WithClock(tick), photodtn.WithSeed(1))
	node := photodtn.NewPeer(1, m, 40<<20, photodtn.WithClock(tick), photodtn.WithSeed(2))
	if err := node.AddPhoto(facadePhoto(1, 0, photodtn.Vec{X: 80, Y: 0}, 180)); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cc.Serve(l) }()
	if err := node.Contact(l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if len(cc.Photos()) != 1 {
		t.Fatalf("CC photos = %d", len(cc.Photos()))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestFacadePhonePipeline(t *testing.T) {
	phone, err := photodtn.NewPhone(1, photodtn.DefaultPhoneConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	phone.MoveTo(photodtn.Vec{X: 10, Y: 0})
	phone.AimAt(photodtn.Vec{X: 90, Y: 0})
	photo := phone.Capture(1)
	if err := photo.Validate(); err != nil {
		t.Fatal(err)
	}
	if photodtn.Degrees(photo.Orientation) > 10 && photodtn.Degrees(photo.Orientation) < 350 {
		t.Fatalf("orientation %.1f° not pointing east", photodtn.Degrees(photo.Orientation))
	}
}

func TestFacadeUnifiedObserver(t *testing.T) {
	// One observer, one option, three layers: the same WithObserver value
	// must wire the selection machinery, the simulator, and a live peer into
	// the same registry.
	o := photodtn.NewObserver(0, nil)
	opt := photodtn.WithObserver(o)
	m := facadeMap()

	// Selection layer.
	parts := []photodtn.Participant{{
		Node: 1, P: 0.5,
		Photos: photodtn.PhotoList{facadePhoto(1, 0, photodtn.Vec{X: 80, Y: 0}, 180)},
	}}
	_ = photodtn.ExpectedCoverage(m, photodtn.DefaultSelectionConfig(opt), nil, parts)
	if o.Counter("selection.evaluators").Value() == 0 {
		t.Fatal("selection layer did not report into the unified observer")
	}

	// Simulation layer.
	if _, err := photodtn.RunSimulation(facadeSimConfig(t), photodtn.NewSprayAndWait(), opt); err != nil {
		t.Fatal(err)
	}
	if o.Counter("sim.contacts").Value() == 0 {
		t.Fatal("simulation layer did not report into the unified observer")
	}

	// Peer layer: the same value is a PeerOption.
	var ticks atomic.Int64
	tick := func() float64 { return float64(ticks.Add(10)) }
	cc := photodtn.NewPeer(photodtn.CommandCenter, m, 0, opt, photodtn.WithClock(tick), photodtn.WithSeed(1))
	node := photodtn.NewPeer(1, m, 40<<20, opt, photodtn.WithClock(tick), photodtn.WithSeed(2))
	if err := node.AddPhoto(facadePhoto(1, 0, photodtn.Vec{X: 80, Y: 0}, 180)); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cc.Serve(l) }()
	if err := node.Contact(l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if o.Counter("peer.contacts").Value() == 0 {
		t.Fatal("peer layer did not report into the unified observer")
	}
}

func TestFacadeUnifiedTransfer(t *testing.T) {
	// One WithTransfer value, two layers: as a PeerOption it configures the
	// wire-v2 chunked transfer of live peers; as a simulation Option it maps
	// Resume onto the engine's fragment-carryover model.
	if photodtn.ProtocolVersion != 2 {
		t.Fatalf("ProtocolVersion = %d, want 2", photodtn.ProtocolVersion)
	}
	opt := photodtn.WithTransfer(photodtn.TransferConfig{ChunkSize: 32 << 10, Resume: true})
	m := facadeMap()

	// Peer layer: a 96 KiB payload over 32 KiB chunks is exactly 3 frames.
	var ticks atomic.Int64
	tick := func() float64 { return float64(ticks.Add(10)) }
	cc := photodtn.NewPeer(photodtn.CommandCenter, m, 0, opt,
		photodtn.WithClock(tick), photodtn.WithSeed(1), photodtn.WithPayloadBytes(96<<10))
	node := photodtn.NewPeer(1, m, 40<<20, opt,
		photodtn.WithClock(tick), photodtn.WithSeed(2), photodtn.WithPayloadBytes(96<<10))
	if err := node.AddPhoto(facadePhoto(1, 0, photodtn.Vec{X: 80, Y: 0}, 180)); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cc.Serve(l) }()
	if err := node.Contact(l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(cc.Photos()) != 1 {
		t.Fatalf("CC photos = %d", len(cc.Photos()))
	}
	if ts := cc.TransferStats(); ts.ChunksReceived != 3 {
		t.Fatalf("CC chunks received = %d, want 3", ts.ChunksReceived)
	}
	if ts := node.TransferStats(); ts.ChunksSent != 3 {
		t.Fatalf("node chunks sent = %d, want 3", ts.ChunksSent)
	}

	// Simulation layer: the same value is a sim Option. Resume off must
	// leave the engine's figures byte-identical to a run with no option at
	// all; Resume on switches fragment carryover in and still runs clean.
	base, err := photodtn.RunSimulation(facadeSimConfig(t), photodtn.NewSprayAndWait())
	if err != nil {
		t.Fatal(err)
	}
	off, err := photodtn.RunSimulation(facadeSimConfig(t), photodtn.NewSprayAndWait(),
		photodtn.WithTransfer(photodtn.TransferConfig{Resume: false}))
	if err != nil {
		t.Fatal(err)
	}
	if off.Final != base.Final || off.TransferredBytes != base.TransferredBytes ||
		off.SalvagedBytes != 0 || off.ResumedTransfers != 0 {
		t.Fatalf("Resume:false diverged from the default run:\n got %+v\nwant %+v", off.Final, base.Final)
	}
	on, err := photodtn.RunSimulation(facadeSimConfig(t), photodtn.NewSprayAndWait(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if on.Final.Delivered < base.Final.Delivered {
		t.Fatalf("carryover delivered %d < default %d", on.Final.Delivered, base.Final.Delivered)
	}
}

func TestFacadeRunSimulationContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := photodtn.RunSimulationContext(ctx, facadeSimConfig(t), photodtn.NewSprayAndWait())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFacadeRunCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	cp, err := photodtn.OpenRunCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 0 {
		t.Fatalf("fresh checkpoint holds %d cells", cp.Len())
	}
	// ExperimentOptions carries it into any harness.
	_ = photodtn.ExperimentOptions{Runs: 1, Workers: 2, Checkpoint: cp}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDemoAndTable(t *testing.T) {
	if out := photodtn.FormatTable1(); len(out) == 0 {
		t.Fatal("empty Table I")
	}
	res, err := photodtn.RunDemo(photodtn.DefaultDemoConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("demo rows = %d", len(res.Rows))
	}
}
