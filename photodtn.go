// Package photodtn is a Go implementation of "Resource-Aware Photo
// Crowdsourcing Through Disruption Tolerant Networks" (Wu, Wang, Hu, Zhang,
// Cao — ICDCS 2016): a framework that crowdsources photos over DTNs and
// spends the scarce storage and bandwidth only on the photos that maximise
// the command center's photo coverage.
//
// The package is a facade over the implementation packages:
//
//   - The photo coverage model (§II): Photo metadata, PoIs, point/aspect
//     coverage and the lexicographic Coverage value (NewMap, Map.Of).
//   - Expected coverage and the greedy photo selection algorithm (§III):
//     Reallocate, SelectForUpload, ExpectedCoverage.
//   - Metadata management (§III-B): MetadataCache, RateEstimator.
//   - PROPHET delivery predictability: ProphetTable.
//   - Contact traces: synthetic MIT-Reality-like and Cambridge06-like
//     generators, codec, statistics (GenerateTrace, ReadTrace, ...).
//   - The discrete-event simulator and the paper's baselines
//     (RunSimulation, NewSprayAndWait, NewPhotoNet, ...).
//   - Live TCP peers speaking the contact protocol (NewPeer).
//   - Experiment harnesses regenerating every figure and table of the
//     paper's evaluation (the experiments aliases and cmd/photodtn-experiments).
//
// # Observability and cancellation
//
// Every layer accepts the same observer through one option: pass
// WithObserver to RunSimulation, DefaultSelectionConfig, or NewPeer and the
// simulator, the selection machinery, and the live peer all report into the
// same registry. The per-layer hooks (sim.Config.Obs, selection
// Config.Metrics, the peer WithObserver option) still work but are
// deprecated in favour of this single entry point.
//
// Long-running entry points have context-aware forms — RunSimulationContext,
// Peer.DialContext, Peer.ServeContext — and experiment harnesses run on a
// parallel orchestrator (ExperimentOptions.Workers) with durable
// checkpoint/resume (OpenRunCheckpoint). The context-free names remain as
// thin context.Background wrappers.
//
// See README.md for a tour and DESIGN.md for the system inventory.
package photodtn

import (
	"context"
	"io"

	"photodtn/internal/camera"
	"photodtn/internal/core"
	"photodtn/internal/coverage"
	"photodtn/internal/experiments"
	"photodtn/internal/geo"
	"photodtn/internal/guard"
	"photodtn/internal/metadata"
	"photodtn/internal/mobility"
	"photodtn/internal/model"
	"photodtn/internal/obs"
	"photodtn/internal/peer"
	"photodtn/internal/prophet"
	"photodtn/internal/routing"
	"photodtn/internal/runner"
	"photodtn/internal/selection"
	"photodtn/internal/sensor"
	"photodtn/internal/sim"
	"photodtn/internal/trace"
	"photodtn/internal/wire"
	"photodtn/internal/workload"
)

// Domain model (§II-A).
type (
	// Photo is the metadata tuple (l, r, φ, d) plus bookkeeping.
	Photo = model.Photo
	// PhotoID identifies a photo (owner node + sequence).
	PhotoID = model.PhotoID
	// PhotoList is a photo collection.
	PhotoList = model.PhotoList
	// NodeID identifies a participant; 0 is the command center.
	NodeID = model.NodeID
	// PoI is a point of interest.
	PoI = model.PoI
	// Vec is a 2-D point or direction in metres.
	Vec = geo.Vec
	// Rect is an axis-aligned region.
	Rect = geo.Rect
)

// Square returns a side×side region anchored at the origin.
func Square(side float64) Rect { return geo.Square(side) }

// CommandCenter is the command center's node ID (n0).
const CommandCenter = model.CommandCenter

// Coverage model (§II).
type (
	// Coverage is the lexicographic (point, aspect) photo coverage value.
	Coverage = coverage.Coverage
	// Map fixes a PoI list and effective angle and answers coverage
	// queries.
	Map = coverage.Map
	// CoverageState tracks the coverage of a growing photo collection.
	CoverageState = coverage.State
	// Footprint is a photo's compiled coverage contribution.
	Footprint = coverage.Footprint
	// FootprintCache memoizes footprints per photo.
	FootprintCache = coverage.FootprintCache
)

// MapOption customises map construction (cell size, aspect profiles).
type MapOption = coverage.MapOption

// AspectProfile weights a PoI's aspects (§II-C extension).
type AspectProfile = coverage.AspectProfile

// WithAspectProfile installs a weighted-aspect profile for a PoI.
var WithAspectProfile = coverage.WithAspectProfile

// NewMap builds a coverage map over the PoIs with effective angle theta
// (radians).
func NewMap(pois []PoI, theta float64, opts ...MapOption) *Map {
	return coverage.NewMap(pois, theta, opts...)
}

// NewFootprintCache builds a footprint memoizer over a map.
func NewFootprintCache(m *Map) *FootprintCache { return coverage.NewFootprintCache(m) }

// NewPoI returns a unit-weight PoI.
func NewPoI(id int, loc Vec) PoI { return model.NewPoI(id, loc) }

// Selection algorithm (§III).
type (
	// SelectionConfig tunes expected-coverage evaluation.
	SelectionConfig = selection.Config
	// Participant is one node of the expected-coverage node set M.
	Participant = selection.Participant
	// Alloc describes one side of a contact for reallocation.
	Alloc = selection.Alloc
	// ReallocationResult is the outcome of the two-node greedy.
	ReallocationResult = selection.Result
	// SelectionSession owns the reusable buffers of the selection phase —
	// evaluator, scenario overlays, compiled residuals, candidate arena,
	// CELF heap, dedup maps — and recycles them across contacts. One session
	// serves one goroutine at a time; selected photo lists it returns are
	// freshly allocated and safe to keep.
	SelectionSession = selection.Session
)

// NewSelectionSession returns an empty session. Long-lived callers that run
// a selection per contact (as core.Scheme does) should hold one session and
// call its Reallocate/SelectForUpload methods; the steady state then
// allocates only the returned selections.
func NewSelectionSession() *SelectionSession { return selection.NewSession() }

// DefaultSelectionConfig returns the evaluation defaults, customised by any
// unified options (e.g. WithObserver) that apply to the selection layer.
func DefaultSelectionConfig(opts ...Option) SelectionConfig {
	cfg := selection.DefaultConfig()
	for _, o := range opts {
		o.applySelection(&cfg)
	}
	return cfg
}

// ExpectedCoverage evaluates Definition 2 for the node set.
func ExpectedCoverage(m *Map, cfg SelectionConfig, ccPhotos PhotoList, parts []Participant) Coverage {
	return selection.ExpectedCoverage(m, cfg, ccPhotos, parts)
}

// Reallocate runs the §III-D two-node greedy reallocation. It borrows a
// pooled SelectionSession for the call; hold your own session when running
// one selection per contact.
func Reallocate(fpc *FootprintCache, cfg SelectionConfig, ccPhotos PhotoList, background []Participant, a, b Alloc) ReallocationResult {
	return selection.Reallocate(fpc, cfg, ccPhotos, background, a, b)
}

// SelectForUpload orders a node's photos by marginal gain over the command
// center's collection. It borrows a pooled SelectionSession for the call.
func SelectForUpload(fpc *FootprintCache, cfg SelectionConfig, ccPhotos, nodePhotos PhotoList) PhotoList {
	return selection.SelectForUpload(fpc, cfg, ccPhotos, nodePhotos)
}

// Metadata management (§III-B) and PROPHET.
type (
	// MetadataCache is a node's knowledge about other nodes' photos.
	MetadataCache = metadata.Cache
	// MetadataEntry is one cached snapshot.
	MetadataEntry = metadata.Entry
	// RateEstimator learns a node's aggregate contact rate λ.
	RateEstimator = metadata.RateEstimator
	// ProphetConfig holds the PROPHET constants.
	ProphetConfig = prophet.Config
	// ProphetTable is a node's delivery-predictability table.
	ProphetTable = prophet.Table
)

// NewMetadataCache returns an empty cache with validity threshold pthld.
func NewMetadataCache(owner NodeID, pthld float64) *MetadataCache {
	return metadata.NewCache(owner, pthld)
}

// NewRateEstimator returns an estimator with no history.
func NewRateEstimator() *RateEstimator { return metadata.NewRateEstimator() }

// NewProphetTable returns an empty table for the owner.
func NewProphetTable(owner NodeID, cfg ProphetConfig) *ProphetTable {
	return prophet.NewTable(owner, cfg)
}

// DefaultProphetConfig returns the Table I PROPHET constants.
func DefaultProphetConfig() ProphetConfig { return prophet.DefaultConfig() }

// Contact traces.
type (
	// Trace is a contact trace.
	Trace = trace.Trace
	// Contact is one recorded contact.
	Contact = trace.Contact
	// TraceSynthConfig parameterises the synthetic generator.
	TraceSynthConfig = trace.SynthConfig
)

// Geometric mobility (extension; see DESIGN.md).
type (
	// MobilityConfig parameterises the random-waypoint world.
	MobilityConfig = mobility.Config
	// Track is one node's trajectory.
	Track = mobility.Track
)

// Mobility entry points.
var (
	// GenerateTracks draws random-waypoint trajectories.
	GenerateTracks = mobility.GenerateTracks
	// ExtractContacts turns trajectories into a contact trace.
	ExtractContacts = mobility.ExtractContacts
	// AimedPhotoWorkload places photos on trajectories, aimed at nearby
	// PoIs.
	AimedPhotoWorkload = mobility.AimedPhotoWorkload
	// DefaultMobilityConfig returns a pedestrian scenario.
	DefaultMobilityConfig = mobility.DefaultConfig
)

// GenerateTrace produces a synthetic community-structured trace.
func GenerateTrace(cfg TraceSynthConfig) (*Trace, error) { return trace.Generate(cfg) }

// MITLikeTrace returns the MIT-Reality-like generator configuration.
func MITLikeTrace(seed int64) TraceSynthConfig { return trace.MITLike(seed) }

// CambridgeLikeTrace returns the Cambridge06-like generator configuration.
func CambridgeLikeTrace(seed int64) TraceSynthConfig { return trace.CambridgeLike(seed) }

// Simulation.
type (
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult summarises one run.
	SimResult = sim.Result
	// SimAverage aggregates repeated runs.
	SimAverage = sim.Average
	// Scheme is a routing/selection policy under evaluation.
	Scheme = sim.Scheme
	// PhotoEvent is one workload item.
	PhotoEvent = sim.PhotoEvent
	// FrameworkConfig tunes the paper's framework scheme.
	FrameworkConfig = core.Config
	// WorkloadConfig parameterises photo generation.
	WorkloadConfig = workload.Config
)

// RunSimulation executes one run of a scheme. Unified options (e.g.
// WithObserver) apply on top of the config.
func RunSimulation(cfg SimConfig, s Scheme, opts ...Option) (*SimResult, error) {
	return RunSimulationContext(context.Background(), cfg, s, opts...)
}

// RunSimulationContext is RunSimulation under a context: cancelling ctx
// aborts the event loop promptly and returns the context's error.
func RunSimulationContext(ctx context.Context, cfg SimConfig, s Scheme, opts ...Option) (*SimResult, error) {
	for _, o := range opts {
		o.applySim(&cfg)
	}
	return sim.RunContext(ctx, cfg, s)
}

// NewFramework returns the paper's scheme ("OurScheme"; set DisableMetadata
// for the NoMetadata baseline).
func NewFramework(cfg FrameworkConfig) Scheme { return core.New(cfg) }

// DefaultFrameworkConfig returns the Table I framework configuration.
func DefaultFrameworkConfig() FrameworkConfig { return core.DefaultConfig() }

// NewSprayAndWait returns binary Spray&Wait with the paper's 4 copies.
func NewSprayAndWait() Scheme { return routing.NewSprayAndWait() }

// NewModifiedSpray returns the coverage-aware spray baseline.
func NewModifiedSpray() Scheme { return routing.NewModifiedSpray() }

// NewPhotoNet returns the diversity-driven baseline.
func NewPhotoNet() Scheme { return routing.NewPhotoNet() }

// NewBestPossible returns the unconstrained epidemic upper bound.
func NewBestPossible() Scheme { return routing.NewBestPossible() }

// NewEpidemic returns constrained epidemic flooding.
func NewEpidemic() Scheme { return routing.NewEpidemic() }

// NewProphetRouting returns the PROPHET-forwarding baseline.
func NewProphetRouting() Scheme { return routing.NewProphetRouting() }

// Live peers and the prototype pipeline.
type (
	// Peer is a live framework node speaking the wire protocol.
	Peer = peer.Peer
	// PeerOption customises a Peer.
	PeerOption = peer.Option
	// PhoneConfig describes a simulated camera phone.
	PhoneConfig = camera.Config
	// Phone simulates a handset with sensors and the metadata pipeline.
	Phone = camera.Phone
	// SensorNoise configures the simulated IMU.
	SensorNoise = sensor.Noise
)

// NewPeer creates a live node (see peer.New).
func NewPeer(id NodeID, m *Map, capacity int64, opts ...PeerOption) *Peer {
	return peer.New(id, m, capacity, opts...)
}

// OpenPeer creates a durable live node rooted at dir, recovering any state a
// previous incarnation journaled there (see peer.Open and DESIGN.md §7).
func OpenPeer(dir string, id NodeID, m *Map, capacity int64, opts ...PeerOption) (*Peer, error) {
	return peer.Open(dir, id, m, capacity, opts...)
}

// PeerJournalStats describes a durable peer's recovery and commit history.
type PeerJournalStats = peer.JournalStats

// TransferConfig tunes chunked, resumable photo transfer (wire protocol
// v2): chunk size, pipeline window, per-contact byte budget, and whether
// partial transfers persist across contacts. Pass it through WithTransfer.
type TransferConfig = peer.TransferConfig

// PeerTransferStats aggregates a live peer's chunked-transfer activity
// (see Peer.TransferStats).
type PeerTransferStats = peer.TransferStats

// GuardConfig tunes a peer's adversarial hardening: per-peer rate limits,
// the misbehavior score and quarantine TTL, clock-skew and size bounds for
// semantic validation, and the metadata cache caps. Zero fields take the
// documented defaults; pass it through WithGuard.
type GuardConfig = guard.Config

// GuardStats is a guarded peer's activity snapshot: violations by reason,
// shed contacts, and active quarantines (see Peer.GuardStats).
type GuardStats = guard.Stats

// Guard sentinels, re-exported for errors.Is against Contact/DialContext
// failures. All three also classify as contact rejections (never retried).
var (
	// ErrProtocolViolation reports an inbound message the protocol state
	// machine or a semantic validator rejected.
	ErrProtocolViolation = peer.ErrProtocolViolation
	// ErrPeerQuarantined reports a contact with a remote inside its
	// quarantine TTL.
	ErrPeerQuarantined = peer.ErrPeerQuarantined
	// ErrRateLimited reports a contact shed by the per-peer rate budget.
	ErrRateLimited = peer.ErrRateLimited
)

// ProtocolVersion is the highest wire protocol version this build speaks.
// Version 2 added chunked, resumable transfer; v2 peers interoperate with
// v1 peers through the hello handshake (resume silently disabled).
const ProtocolVersion = wire.ProtocolVersion

// Peer options re-exported for facade users.
var (
	// WithClock injects a logical clock into a peer.
	WithClock = peer.WithClock
	// WithSeed fixes a peer's nonce stream.
	WithSeed = peer.WithSeed
	// WithPthld overrides a peer's metadata validity threshold.
	WithPthld = peer.WithPthld
	// WithPayloadBytes sizes the synthetic image payloads on the wire.
	WithPayloadBytes = peer.WithPayloadBytes
	// WithSelectionConfig overrides a peer's evaluation settings.
	WithSelectionConfig = peer.WithSelectionConfig
	// WithJournal makes a peer durable: its state journals to the directory
	// and survives restarts (OpenPeer is the error-reporting form).
	WithJournal = peer.WithJournal
	// WithSnapshotEvery sets how many committed contacts trigger a
	// snapshot + journal compaction.
	WithSnapshotEvery = peer.WithSnapshotEvery
	// WithMaxContacts bounds how many contacts a serving peer handles
	// concurrently (excess accepts are rejected with a clean abort).
	WithMaxContacts = peer.WithMaxContacts
	// WithGuard arms a peer's adversarial hardening: protocol state
	// machine violation scoring, semantic validation of inbound messages,
	// per-peer rate limiting, and a journaled TTL quarantine. Without it
	// the contact path is bit-identical to an unguarded peer.
	WithGuard = peer.WithGuard
)

// Unified observability (see DESIGN.md).
type (
	// Observer collects metrics and an event trace across every layer.
	Observer = obs.Observer
	// ObsEvent is one trace event.
	ObsEvent = obs.Event
)

// NewObserver builds an observer keeping at most traceCap trace events in
// memory; a non-nil sink receives every event as JSON lines. traceCap 0
// disables the in-memory trace.
func NewObserver(traceCap int, sink io.Writer) *Observer { return obs.New(traceCap, sink) }

// Option configures any layer of the framework from one value: it is a
// PeerOption (pass it to NewPeer), a simulation option (pass it to
// RunSimulation), and a selection option (pass it to
// DefaultSelectionConfig). Implementations live in this package —
// WithObserver is the canonical one.
type Option interface {
	PeerOption
	applySim(cfg *sim.Config)
	applySelection(cfg *selection.Config)
}

// WithObserver wires one observer into whichever layer the option is given
// to: the simulator (RunSimulation), the selection machinery
// (DefaultSelectionConfig), or a live peer (NewPeer). It replaces the three
// per-layer hooks sim.Config.Obs, selection Config.Metrics, and the peer
// WithObserver option, which remain for compatibility but are deprecated.
func WithObserver(o *Observer) Option { return observerOption{o: o} }

type observerOption struct{ o *Observer }

// Apply implements PeerOption.
func (w observerOption) Apply(p *Peer) { peer.WithObserver(w.o).Apply(p) }

func (w observerOption) applySim(cfg *sim.Config) { cfg.Obs = w.o }

func (w observerOption) applySelection(cfg *selection.Config) {
	cfg.Metrics = selection.ObserverMetrics(w.o)
}

// WithTransfer configures resumable chunked transfer in whichever layer the
// option is given to: a live peer (NewPeer) negotiates the chunk size,
// window, and resume flag into its contacts, and a simulation
// (RunSimulation) maps Resume onto the engine's fragment-carryover
// accounting (SimConfig.FragmentCarryover). The default — no option — keeps
// resume on for peers and carryover off for simulations, so published
// figures stay byte-identical.
func WithTransfer(cfg TransferConfig) Option { return transferOption{cfg: cfg} }

type transferOption struct{ cfg TransferConfig }

// Apply implements PeerOption.
func (t transferOption) Apply(p *Peer) { peer.WithTransfer(t.cfg).Apply(p) }

func (t transferOption) applySim(cfg *sim.Config) { cfg.FragmentCarryover = t.cfg.Resume }

func (t transferOption) applySelection(*selection.Config) {}

// RunCheckpoint is a durable record of completed experiment cells; pass one
// through ExperimentOptions.Checkpoint to make interrupted sweeps resumable.
type RunCheckpoint = runner.Checkpoint

// OpenRunCheckpoint opens (creating if needed) a checkpoint file and loads
// every completed cell recorded in it. Close it when the experiment is done.
func OpenRunCheckpoint(path string) (*RunCheckpoint, error) { return runner.OpenCheckpoint(path) }

// NewPhone creates a simulated camera phone (see camera.NewPhone).
func NewPhone(owner NodeID, cfg PhoneConfig, seed int64) (*Phone, error) {
	return camera.NewPhone(owner, cfg, seed)
}

// DefaultPhoneConfig returns a Nexus-4-like camera configuration.
func DefaultPhoneConfig() PhoneConfig { return camera.DefaultConfig() }

// Experiments: the paper's evaluation, regenerable programmatically.
type (
	// ExperimentOptions controls experiment scale.
	ExperimentOptions = experiments.Options
	// ExperimentFigure is a reproduced figure.
	ExperimentFigure = experiments.Figure
	// ExperimentParams is a simulation scenario in the paper's units.
	ExperimentParams = experiments.Params
	// DemoResult is the reproduced §IV prototype demonstration.
	DemoResult = experiments.DemoResult
	// DemoConfig parameterises the prototype demonstration.
	DemoConfig = experiments.DemoConfig
)

// Experiment entry points; see the experiments package for details.
var (
	// Fig5 regenerates coverage-vs-time (Fig. 5).
	Fig5 = experiments.Fig5
	// Fig6 regenerates the contact-duration study (Fig. 6).
	Fig6 = experiments.Fig6
	// Fig7 regenerates the storage sweep (Fig. 7).
	Fig7 = experiments.Fig7
	// Fig8 regenerates the generation-rate sweep (Fig. 8).
	Fig8 = experiments.Fig8
	// RunDemo regenerates the §IV prototype demo (Fig. 3/4).
	RunDemo = experiments.RunDemo
	// DefaultDemoConfig returns the paper's demo setup.
	DefaultDemoConfig = experiments.DefaultDemoConfig
	// FormatTable1 renders Table I from the code's defaults.
	FormatTable1 = experiments.FormatTable1
)

// Degrees and Radians convert angles.
func Degrees(rad float64) float64 { return geo.Degrees(rad) }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return geo.Radians(deg) }
