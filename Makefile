GO ?= go

.PHONY: tier1 build vet test race chaos bench bench-runner bench-short bench-all fuzz fuzz-short trace-demo

# tier1 is the merge gate: everything must pass before a change lands.
tier1: build vet test race bench-short fuzz-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race is the unified race pass over every package — the live peer and its
# journal, the fault injectors, the orchestrator, and the observability-
# instrumented layers included. It subsumes the former race-obs /
# race-runner focused targets.
race:
	$(GO) test -race ./...

# chaos is the crash-recovery harness: it sweeps a kill across every
# mutating disk operation of a durable peer's write sequence (clean and
# torn-write kills), restarts from disk each time, and requires bit-exact
# convergence with an uninterrupted reference run.
chaos:
	$(GO) test -race -count=1 -v ./internal/peer/ ./internal/journal/ ./internal/faults/

# bench-runner regenerates the committed orchestrator baseline
# BENCH_runner.json (worker-pool scaling, aggregation, seed derivation).
bench-runner:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=200ms ./internal/runner/ \
		| $(GO) run ./cmd/benchjson -o BENCH_runner.json
	@echo "wrote BENCH_runner.json"

# bench regenerates the committed evaluator baseline BENCH_selection.json
# from the selection micro-benchmarks (construction / Gain / Commit /
# GreedyFill at several scales).
bench:
	$(GO) test -run='^$$' -bench=BenchmarkEvaluator -benchmem -benchtime=500ms ./internal/selection/ \
		| $(GO) run ./cmd/benchjson -o BENCH_selection.json
	@echo "wrote BENCH_selection.json"

# bench-short is the tier-1 smoke pass: every benchmark must run (a single
# iteration) without failing; timings are not meaningful.
bench-short:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-all runs every benchmark in the repository with full timings.
bench-all:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Short fuzz pass over the wire decoders (corruption hardening): the framed
# reader and the frame-free body decoder the journal replay shares.
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzRead -fuzztime=30s ./internal/wire/
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeMessage -fuzztime=30s ./internal/wire/

# fuzz-short is the tier-1 smoke pass over both fuzz targets: a few seconds
# each, enough to replay the corpus plus a quick mutation burst.
fuzz-short:
	$(GO) test -run=Fuzz -fuzz=FuzzRead -fuzztime=5s ./internal/wire/
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeMessage -fuzztime=5s ./internal/wire/

# trace-demo produces a sample observability bundle under trace-demo/: a
# JSONL event trace, the subsystem counters, and the run manifests.
trace-demo:
	mkdir -p trace-demo
	$(GO) run ./cmd/photodtn-sim -span 40 -sample 20 \
		-trace-out trace-demo/events.jsonl -metrics-out trace-demo/metrics.json
	@echo "wrote trace-demo/events.jsonl (+ metrics.json, manifests)"
