GO ?= go

.PHONY: tier1 build vet test race bench bench-short bench-all fuzz

# tier1 is the merge gate: everything must pass before a change lands.
tier1: build vet test race bench-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench regenerates the committed evaluator baseline BENCH_selection.json
# from the selection micro-benchmarks (construction / Gain / Commit /
# GreedyFill at several scales).
bench:
	$(GO) test -run='^$$' -bench=BenchmarkEvaluator -benchmem -benchtime=500ms ./internal/selection/ \
		| $(GO) run ./cmd/benchjson -o BENCH_selection.json
	@echo "wrote BENCH_selection.json"

# bench-short is the tier-1 smoke pass: every benchmark must run (a single
# iteration) without failing; timings are not meaningful.
bench-short:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-all runs every benchmark in the repository with full timings.
bench-all:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Short fuzz pass over the wire decoder (corruption hardening).
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzRead -fuzztime=30s ./internal/wire/
