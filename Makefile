GO ?= go

.PHONY: tier1 build vet test race race-wire race-guard soak-short chaos byzantine bench bench-runner bench-short bench-all bench-diff fuzz fuzz-short trace-demo

# tier1 is the merge gate: everything must pass before a change lands.
tier1: build vet test race byzantine soak-short bench-short fuzz-short bench-diff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race is the unified race pass over every package — the live peer and its
# journal, the fault injectors, the orchestrator, and the observability-
# instrumented layers included. It subsumes the former race-obs /
# race-runner focused targets.
race:
	$(GO) test -race ./...

# race-wire is the focused repeat over the chunked-transfer stack: the wire
# codec/handshake and the reassembly store, plus the peer transfer suites
# (pipelined sender, mid-chunk kill sweeps). -count=2 gives the pipelined
# ack-reader and the cross-contact fragment store a second chance to trip
# the detector under different schedules.
race-wire:
	$(GO) test -race -count=2 ./internal/wire/ ./internal/transfer/
	$(GO) test -race -count=1 -run 'Transfer|Chunk|Resume' ./internal/peer/

# byzantine is the adversarial-peer property harness: every ByzantinePeer
# strategy (replay, flood, absurd claims, phase desync, poisoned metadata,
# oversized claims), clean and under 30% frame loss, against a guarded
# honest node — whose durable state must come out identical to an
# adversary-free run, with quarantines surviving restart via the journal.
byzantine:
	$(GO) test -race -count=1 -run 'Byzantine|Guard|Quarantine' ./internal/peer/
	$(GO) test -race -count=1 ./internal/guard/ ./internal/peer/session/

# race-guard is the focused repeat over the guard and adversarial suites:
# the guard's per-peer accounting is its own lock domain crossed by every
# concurrent contact, so -count=2 gives scheduling-dependent interleavings
# (admission vs. report vs. quarantine restore) a second chance to trip the
# detector.
race-guard:
	$(GO) test -race -count=2 ./internal/guard/ ./internal/peer/session/
	$(GO) test -race -count=2 -run 'Byzantine|Guard|Quarantine' ./internal/peer/

# soak-short is the concurrent-serving soak: one serving peer versus N
# simultaneous dialers under the race detector — admission limiting, no
# head-of-line blocking, digest convergence against a serialized reference,
# and the fault-injection invariants (no duplicate or lost deliveries).
soak-short:
	$(GO) test -race -count=1 -run '^TestSoak' ./internal/peer/

# chaos is the crash-recovery harness: it sweeps a kill across every
# mutating disk operation of a durable peer's write sequence (clean and
# torn-write kills), restarts from disk each time, and requires bit-exact
# convergence with an uninterrupted reference run.
chaos:
	$(GO) test -race -count=1 -v ./internal/peer/ ./internal/journal/ ./internal/faults/

# bench-runner regenerates the committed orchestrator baseline
# BENCH_runner.json (worker-pool scaling, aggregation, seed derivation).
bench-runner:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=200ms ./internal/runner/ \
		| $(GO) run ./cmd/benchjson -o BENCH_runner.json
	@echo "wrote BENCH_runner.json"

# bench regenerates the committed performance baselines: the selection
# micro-benchmarks (construction / Gain / Commit / GreedyFill / stale
# recompute at several scales) into BENCH_selection.json, and the
# engine-level Table-I run (incremental vs from-scratch selection) into
# BENCH_engine.json.
bench:
	$(GO) test -run='^$$' -bench=BenchmarkEvaluator -benchmem -benchtime=500ms ./internal/selection/ \
		| $(GO) run ./cmd/benchjson -o BENCH_selection.json
	@echo "wrote BENCH_selection.json"
	$(GO) test -run='^$$' -bench='BenchmarkEngineTable1|BenchmarkTransferSlowLink' -benchmem -benchtime=5x . \
		| $(GO) run ./cmd/benchjson -o BENCH_engine.json
	@echo "wrote BENCH_engine.json"

# bench-diff reruns the baseline benchmarks and compares them against the
# committed JSON documents; it fails when any ns/op or allocs/op ratio
# exceeds the threshold. The time threshold is generous because shared CI
# hardware is noisy; allocs/op is exact and is the real tripwire.
bench-diff:
	$(GO) test -run='^$$' -bench=BenchmarkEvaluator -benchmem -benchtime=300ms ./internal/selection/ \
		| $(GO) run ./cmd/benchjson -o .bench_selection_new.json
	$(GO) run ./cmd/benchjson -diff -threshold 1.6 BENCH_selection.json .bench_selection_new.json
	$(GO) test -run='^$$' -bench='BenchmarkEngineTable1|BenchmarkTransferSlowLink' -benchmem -benchtime=3x . \
		| $(GO) run ./cmd/benchjson -o .bench_engine_new.json
	$(GO) run ./cmd/benchjson -diff -threshold 1.6 BENCH_engine.json .bench_engine_new.json
	@rm -f .bench_selection_new.json .bench_engine_new.json
	@echo "bench-diff: no regressions"

# bench-short is the tier-1 smoke pass: every benchmark must run (a single
# iteration) without failing; timings are not meaningful.
bench-short:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-all runs every benchmark in the repository with full timings.
bench-all:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Fuzz pass over the wire decoders (corruption hardening), the chunk
# reassembly store (bitmap/eviction/checksum invariants against a model
# oracle), and the arc-set geometry kernel every coverage computation
# bottoms out in. The Reassembly patterns are anchored: two targets share
# the prefix.
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzRead -fuzztime=30s ./internal/wire/
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeMessage -fuzztime=30s ./internal/wire/
	$(GO) test -run=Fuzz -fuzz='FuzzReassembly$$' -fuzztime=30s ./internal/transfer/
	$(GO) test -run=Fuzz -fuzz='FuzzReassemblyImport$$' -fuzztime=30s ./internal/transfer/
	$(GO) test -run=Fuzz -fuzz=FuzzArcSet -fuzztime=30s ./internal/geo/

# fuzz-short is the tier-1 smoke pass over all fuzz targets: a few seconds
# each, enough to replay the corpus plus a quick mutation burst.
fuzz-short:
	$(GO) test -run=Fuzz -fuzz=FuzzRead -fuzztime=5s ./internal/wire/
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeMessage -fuzztime=5s ./internal/wire/
	$(GO) test -run=Fuzz -fuzz='FuzzReassembly$$' -fuzztime=5s ./internal/transfer/
	$(GO) test -run=Fuzz -fuzz='FuzzReassemblyImport$$' -fuzztime=5s ./internal/transfer/
	$(GO) test -run=Fuzz -fuzz=FuzzArcSet -fuzztime=5s ./internal/geo/

# trace-demo produces a sample observability bundle under trace-demo/: a
# JSONL event trace, the subsystem counters, and the run manifests.
trace-demo:
	mkdir -p trace-demo
	$(GO) run ./cmd/photodtn-sim -span 40 -sample 20 \
		-trace-out trace-demo/events.jsonl -metrics-out trace-demo/metrics.json
	@echo "wrote trace-demo/events.jsonl (+ metrics.json, manifests)"
