GO ?= go

.PHONY: tier1 build vet test race bench fuzz

# tier1 is the merge gate: everything must pass before a change lands.
tier1: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Short fuzz pass over the wire decoder (corruption hardening).
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzRead -fuzztime=30s ./internal/wire/
