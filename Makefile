GO ?= go

.PHONY: tier1 build vet test race race-obs race-runner bench bench-runner bench-short bench-all fuzz trace-demo

# tier1 is the merge gate: everything must pass before a change lands.
tier1: build vet test race bench-short

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-obs is the focused race pass over the observability-instrumented
# packages (a faster loop than the full `race` while working on them).
race-obs:
	$(GO) test -race ./internal/obs/ ./internal/sim/ ./internal/coverage/ ./internal/peer/

# race-runner is the focused race pass over the orchestrator and the layers
# it parallelises (the packages the -workers flag exercises).
race-runner:
	$(GO) test -race ./internal/runner/ ./internal/sim/ ./internal/experiments/

# bench-runner regenerates the committed orchestrator baseline
# BENCH_runner.json (worker-pool scaling, aggregation, seed derivation).
bench-runner:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=200ms ./internal/runner/ \
		| $(GO) run ./cmd/benchjson -o BENCH_runner.json
	@echo "wrote BENCH_runner.json"

# bench regenerates the committed evaluator baseline BENCH_selection.json
# from the selection micro-benchmarks (construction / Gain / Commit /
# GreedyFill at several scales).
bench:
	$(GO) test -run='^$$' -bench=BenchmarkEvaluator -benchmem -benchtime=500ms ./internal/selection/ \
		| $(GO) run ./cmd/benchjson -o BENCH_selection.json
	@echo "wrote BENCH_selection.json"

# bench-short is the tier-1 smoke pass: every benchmark must run (a single
# iteration) without failing; timings are not meaningful.
bench-short:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-all runs every benchmark in the repository with full timings.
bench-all:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Short fuzz pass over the wire decoder (corruption hardening).
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzRead -fuzztime=30s ./internal/wire/

# trace-demo produces a sample observability bundle under trace-demo/: a
# JSONL event trace, the subsystem counters, and the run manifests.
trace-demo:
	mkdir -p trace-demo
	$(GO) run ./cmd/photodtn-sim -span 40 -sample 20 \
		-trace-out trace-demo/events.jsonl -metrics-out trace-demo/metrics.json
	@echo "wrote trace-demo/events.jsonl (+ metrics.json, manifests)"
