package journal

import (
	"io/fs"
	"os"
)

// FS is the narrow filesystem surface the journal writes through. The
// default implementation (OSFS) forwards to package os; the fault layer
// (internal/faults.DiskInjector) wraps an FS to inject short writes, bit
// corruption, and crash-points between operations, so every durability
// claim can be tested against a disk that dies mid-sequence.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadFile reads the whole file (os.ReadFile semantics).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath (POSIX rename).
	Rename(oldpath, newpath string) error
	// Remove deletes a file; removing a missing file is an error
	// (os.Remove semantics).
	Remove(name string) error
	// Truncate cuts a file to the given size.
	Truncate(name string, size int64) error
	// MkdirAll creates the directory and its parents.
	MkdirAll(path string, perm fs.FileMode) error
	// Stat stats a file.
	Stat(name string) (fs.FileInfo, error)
}

// File is the writable-file surface the journal needs: sequential writes,
// durability barriers, and close.
type File interface {
	// Write appends bytes (the journal opens files with O_APPEND).
	Write(p []byte) (int, error)
	// Sync flushes written data to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// Stat implements FS.
func (OSFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }
