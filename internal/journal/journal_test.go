package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func appendAll(t *testing.T, j *Journal, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(1, []byte(r)); err != nil {
			t.Fatal(err)
		}
	}
}

func payloads(recs []Record) []string {
	out := make([]string, 0, len(recs))
	for _, r := range recs {
		out = append(out, string(r.Payload))
	}
	return out
}

func TestFreshJournalIsEmpty(t *testing.T) {
	j := mustOpen(t, t.TempDir())
	defer j.Close()
	if j.Stats().Recovered {
		t.Fatal("fresh journal claims recovery")
	}
	if j.Snapshot() != nil || len(j.Records()) != 0 || j.Seq() != 0 {
		t.Fatalf("fresh journal not empty: %+v", j.Stats())
	}
}

func TestAppendReopenReplaysInOrder(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	appendAll(t, j, "a", "b", "c")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir)
	defer j2.Close()
	st := j2.Stats()
	if !st.Recovered || st.Records != 3 || st.TruncatedBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
	got := payloads(j2.Records())
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("records = %v, want %v", got, want)
		}
	}
	if j2.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", j2.Seq())
	}
	// Appends continue the sequence.
	appendAll(t, j2, "d")
	if j2.Seq() != 4 {
		t.Fatalf("seq after append = %d, want 4", j2.Seq())
	}
}

func TestTornTailTruncatedToLastValidRecord(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	appendAll(t, j, "keep-1", "keep-2", "torn")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: cut it mid-payload.
	wal := filepath.Join(dir, walName)
	buf, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, buf[:len(buf)-6], 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir)
	defer j2.Close()
	st := j2.Stats()
	if st.Records != 2 || st.TruncatedBytes == 0 {
		t.Fatalf("stats = %+v, want 2 records and a truncated tail", st)
	}
	if got := payloads(j2.Records()); got[0] != "keep-1" || got[1] != "keep-2" {
		t.Fatalf("records = %v", got)
	}
	// The file itself must have been cut back, so a third open is clean.
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	j3 := mustOpen(t, dir)
	defer j3.Close()
	if j3.Stats().TruncatedBytes != 0 {
		t.Fatalf("second recovery still truncating: %+v", j3.Stats())
	}
	// New appends after recovery land where the tail was cut.
	appendAll(t, j3, "after")
	fi2, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() <= fi.Size() {
		t.Fatalf("append did not grow the truncated log: %d -> %d", fi.Size(), fi2.Size())
	}
}

func TestCorruptRecordCutsItAndEverythingAfter(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	appendAll(t, j, "good", "flipped", "unreachable")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	wal := filepath.Join(dir, walName)
	buf, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the middle record. Record 1 occupies
	// [0, recLen("good")); flip inside record 2's payload.
	rec1 := recHeaderSize + len("good") + recTrailerSize
	buf[rec1+recHeaderSize] ^= 0x40
	if err := os.WriteFile(wal, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir)
	defer j2.Close()
	if got := payloads(j2.Records()); len(got) != 1 || got[0] != "good" {
		t.Fatalf("records = %v, want [good]", got)
	}
	if j2.Stats().TruncatedBytes == 0 {
		t.Fatal("corrupt record not counted as truncated")
	}
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	appendAll(t, j, "a", "b")
	if err := j.Checkpoint([]byte("state-ab")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "c")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir)
	defer j2.Close()
	if !bytes.Equal(j2.Snapshot(), []byte("state-ab")) {
		t.Fatalf("snapshot = %q", j2.Snapshot())
	}
	st := j2.Stats()
	if st.SnapshotSeq != 2 || st.Records != 1 || st.StaleRecords != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got := payloads(j2.Records()); got[0] != "c" {
		t.Fatalf("records = %v, want [c]", got)
	}
	if j2.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", j2.Seq())
	}
}

func TestCrashBetweenSnapshotRenameAndLogReset(t *testing.T) {
	// Simulate the crash window: snapshot committed but the old log still
	// holds the records it covers. Recovery must not replay them twice.
	dir := t.TempDir()
	j := mustOpen(t, dir)
	appendAll(t, j, "a", "b")
	if err := writeSnapshotFile(OSFS{}, filepath.Join(dir, snapTempName), j.Seq(), []byte("covers-ab")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, snapTempName), filepath.Join(dir, snapName)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // crash before the log reset
		t.Fatal(err)
	}

	j2 := mustOpen(t, dir)
	defer j2.Close()
	st := j2.Stats()
	if st.SnapshotSeq != 2 || st.Records != 0 || st.StaleRecords != 2 {
		t.Fatalf("stats = %+v, want snapshot seq 2 covering both stale records", st)
	}
	if !bytes.Equal(j2.Snapshot(), []byte("covers-ab")) {
		t.Fatalf("snapshot = %q", j2.Snapshot())
	}
	// The sequence continues after the covered records.
	appendAll(t, j2, "c")
	if j2.Seq() != 3 {
		t.Fatalf("seq = %d, want 3", j2.Seq())
	}
}

func TestStaleSnapshotTempIsDropped(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapTempName), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	j := mustOpen(t, dir)
	defer j.Close()
	if _, err := os.Stat(filepath.Join(dir, snapTempName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp survived open: %v", err)
	}
}

func TestCorruptSnapshotRefusedLoudly(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	appendAll(t, j, "a")
	if err := j.Checkpoint([]byte("state")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, snapName)
	buf, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-5] ^= 0x01
	if err := os.WriteFile(snap, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("err = %v, want ErrCorruptSnapshot", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j := mustOpen(t, t.TempDir())
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := j.Checkpoint(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestPayloadTooBigRejected(t *testing.T) {
	j := mustOpen(t, t.TempDir())
	defer j.Close()
	if err := j.Append(1, make([]byte, MaxPayload+1)); !errors.Is(err, ErrPayloadTooBig) {
		t.Fatalf("err = %v, want ErrPayloadTooBig", err)
	}
}

func TestEmptyPayloadRoundTrips(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, dir)
	if err := j.Append(7, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, dir)
	defer j2.Close()
	recs := j2.Records()
	if len(recs) != 1 || recs[0].Type != 7 || len(recs[0].Payload) != 0 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestSingleWriterGuard(t *testing.T) {
	j := mustOpen(t, t.TempDir())
	defer j.Close()

	// Simulate an overlapping writer: with the write slot held, both Append
	// and Checkpoint must refuse rather than interleave fsynced frames.
	if !j.writing.CompareAndSwap(false, true) {
		t.Fatal("write slot unexpectedly held")
	}
	if err := j.Append(1, []byte("x")); !errors.Is(err, ErrConcurrentUse) {
		t.Fatalf("Append under held slot: %v, want ErrConcurrentUse", err)
	}
	if err := j.Checkpoint([]byte("snap")); !errors.Is(err, ErrConcurrentUse) {
		t.Fatalf("Checkpoint under held slot: %v, want ErrConcurrentUse", err)
	}
	j.writing.Store(false)

	// Slot released: normal operation resumes.
	appendAll(t, j, "a")
	if err := j.Checkpoint([]byte("snap")); err != nil {
		t.Fatal(err)
	}
}
