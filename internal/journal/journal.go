// Package journal provides the durable-state primitives the live peer
// builds on: a CRC-32C-framed write-ahead log that tolerates torn writes,
// and atomic snapshot files (write-temp + fsync + rename). Together they
// let a process recover the exact state it last committed after a crash —
// the survivable local state the paper's disaster setting presumes (a
// rescuer's phone that reboots must not forget which photos it holds or
// which deliveries the command center already acknowledged).
//
// A log record is framed like a wire-protocol message (package wire):
//
//	[4-byte LE payload length][1-byte record type][8-byte LE sequence]
//	[payload][4-byte LE CRC-32C of type + sequence + payload]
//
// Appends are O_APPEND + fsync, so a record is durable once Append
// returns. A crash mid-append leaves a torn tail; Open scans the log,
// keeps the longest prefix of CRC-valid records, and truncates the rest —
// a half-written record can never be half-applied.
//
// A snapshot compacts the log: Checkpoint atomically replaces the snapshot
// file (temp + fsync + rename) carrying the sequence number it covers,
// then resets the log. If the process dies between the rename and the
// reset, recovery skips the log records the snapshot already covers (their
// sequence numbers are not greater than the snapshot's), so every crash
// window is safe.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
)

// File names inside a journal directory.
const (
	walName      = "wal.log"
	snapName     = "snapshot.bin"
	snapTempName = "snapshot.bin.tmp"
)

// Journal errors.
var (
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("journal: closed")
	// ErrCorruptSnapshot reports a snapshot that fails its checksum. A
	// snapshot is written atomically, so this indicates real on-disk
	// corruption (not a crash) and recovery refuses to guess.
	ErrCorruptSnapshot = errors.New("journal: corrupt snapshot")
	// ErrPayloadTooBig reports a record payload over MaxPayload.
	ErrPayloadTooBig = errors.New("journal: payload exceeds MaxPayload")
	// ErrConcurrentUse reports two overlapping Append/Checkpoint calls. The
	// journal is a single-writer log by contract — the peer commits every
	// contact under its own lock — so an overlap is a serialisation bug in
	// the caller, caught here before it can interleave two records' bytes.
	ErrConcurrentUse = errors.New("journal: concurrent use of single-writer log")
)

// MaxPayload bounds a record payload; larger appends are rejected and a
// larger declared length during recovery marks the tail torn.
const MaxPayload = 64 << 20

// recHeader is [len u32][type u8][seq u64]; recTrailer is the CRC-32C.
const (
	recHeaderSize  = 4 + 1 + 8
	recTrailerSize = 4
)

// crcTable is the Castagnoli polynomial, matching the wire protocol's
// frame checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one recovered log entry.
type Record struct {
	// Type is the caller's record discriminator.
	Type byte
	// Seq is the record's sequence number (monotonic across the journal's
	// whole life, including snapshots).
	Seq uint64
	// Payload is the record body.
	Payload []byte
}

// Options tunes Open.
type Options struct {
	// FS is the filesystem to operate on; nil means the real one.
	FS FS
	// NoSync skips the fsync after each append (tests and bulk loads
	// only; it voids the durability guarantee).
	NoSync bool
}

// Stats describes what recovery found.
type Stats struct {
	// Recovered reports whether Open found existing state (a snapshot or
	// at least one log record).
	Recovered bool
	// SnapshotSeq is the sequence number the loaded snapshot covers (0 =
	// no snapshot).
	SnapshotSeq uint64
	// Records is the number of CRC-valid records to replay (after the
	// snapshot's coverage).
	Records int
	// StaleRecords is the number of valid records skipped because the
	// snapshot already covered them (crash between snapshot rename and
	// log reset).
	StaleRecords int
	// TruncatedBytes is the size of the torn/corrupt tail cut from the
	// log.
	TruncatedBytes int64
}

// Journal is an open journal directory: the latest snapshot (if any), the
// records appended since, and an append handle. It is not safe for
// concurrent use; the peer serialises access under its own lock.
type Journal struct {
	dir     string
	fs      FS
	noSync  bool
	file    File
	nextSeq uint64
	snap    []byte
	records []Record
	stats   Stats
	closed  bool
	// writing guards the single-writer contract: it is raised for the
	// duration of every Append/Checkpoint and trips ErrConcurrentUse when a
	// second writer overlaps (see ErrConcurrentUse).
	writing atomic.Bool
}

// enterWrite claims the single-writer slot; the caller must release it.
func (j *Journal) enterWrite() error {
	if !j.writing.CompareAndSwap(false, true) {
		return ErrConcurrentUse
	}
	return nil
}

// Open opens (creating if needed) the journal in dir, recovering any
// existing state: the snapshot is loaded, the log scanned, and a torn or
// corrupt tail truncated to the last CRC-valid record.
func Open(dir string, opts *Options) (*Journal, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	j := &Journal{dir: dir, fs: o.FS, noSync: o.NoSync, nextSeq: 1}
	if err := j.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	// A leftover temp file is a snapshot that never committed; drop it.
	if _, err := j.fs.Stat(j.path(snapTempName)); err == nil {
		if err := j.fs.Remove(j.path(snapTempName)); err != nil {
			return nil, fmt.Errorf("journal: drop stale snapshot temp: %w", err)
		}
	}
	if err := j.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := j.scanLog(); err != nil {
		return nil, err
	}
	file, err := j.fs.OpenFile(j.path(walName), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open log: %w", err)
	}
	j.file = file
	j.stats.Recovered = j.stats.SnapshotSeq > 0 || len(j.records) > 0 || j.stats.StaleRecords > 0
	return j, nil
}

func (j *Journal) path(name string) string { return filepath.Join(j.dir, name) }

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Stats returns what recovery found when the journal was opened.
func (j *Journal) Stats() Stats { return j.stats }

// Snapshot returns the recovered snapshot payload (nil if none was on
// disk). The caller must not mutate it.
func (j *Journal) Snapshot() []byte { return j.snap }

// Records returns the recovered records to replay on top of the snapshot,
// in append order. The caller must not mutate them.
func (j *Journal) Records() []Record { return j.records }

// Seq returns the sequence number of the last durable record or snapshot
// (0 for a fresh journal).
func (j *Journal) Seq() uint64 { return j.nextSeq - 1 }

// Append frames and appends one record, fsyncing before returning (unless
// the journal was opened with NoSync): when Append returns nil the record
// is durable and will be replayed by the next Open.
func (j *Journal) Append(typ byte, payload []byte) error {
	if err := j.enterWrite(); err != nil {
		return err
	}
	defer j.writing.Store(false)
	if j.closed {
		return ErrClosed
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooBig, len(payload))
	}
	frame := make([]byte, 0, recHeaderSize+len(payload)+recTrailerSize)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, typ)
	frame = binary.LittleEndian.AppendUint64(frame, j.nextSeq)
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame[4:], crcTable))
	if _, err := j.file.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if !j.noSync {
		if err := j.file.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.nextSeq++
	return nil
}

// Checkpoint atomically replaces the snapshot with state and resets the
// log. The snapshot covers every record appended so far; after a
// checkpoint, recovery loads the snapshot and replays only records
// appended afterwards. Every crash window is safe: before the rename the
// old snapshot + full log recover; after the rename but before the log
// reset, recovery skips the covered records by sequence number.
func (j *Journal) Checkpoint(state []byte) error {
	if err := j.enterWrite(); err != nil {
		return err
	}
	defer j.writing.Store(false)
	if j.closed {
		return ErrClosed
	}
	if err := writeSnapshotFile(j.fs, j.path(snapTempName), j.Seq(), state); err != nil {
		return err
	}
	if err := j.fs.Rename(j.path(snapTempName), j.path(snapName)); err != nil {
		return fmt.Errorf("journal: commit snapshot: %w", err)
	}
	// The snapshot is durable and authoritative; reset the log.
	if err := j.file.Close(); err != nil {
		return fmt.Errorf("journal: close log: %w", err)
	}
	file, err := j.fs.OpenFile(j.path(walName), os.O_WRONLY|os.O_TRUNC|os.O_CREATE, 0o644)
	if err != nil {
		j.closed = true // no append handle; refuse further writes
		return fmt.Errorf("journal: reset log: %w", err)
	}
	j.file = file
	return nil
}

// Close closes the append handle. The journal stays replayable on disk.
func (j *Journal) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	return j.file.Close()
}

// loadSnapshot reads and validates the snapshot file, if present.
func (j *Journal) loadSnapshot() error {
	buf, err := j.fs.ReadFile(j.path(snapName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("journal: read snapshot: %w", err)
	}
	seq, payload, err := decodeSnapshot(buf)
	if err != nil {
		return err
	}
	j.snap = payload
	j.stats.SnapshotSeq = seq
	j.nextSeq = seq + 1
	return nil
}

// scanLog walks the log, collecting CRC-valid records newer than the
// snapshot and truncating the first torn or corrupt frame (and everything
// after it).
func (j *Journal) scanLog() error {
	buf, err := j.fs.ReadFile(j.path(walName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("journal: read log: %w", err)
	}
	valid := 0
	for off := 0; off < len(buf); {
		rest := buf[off:]
		if len(rest) < recHeaderSize+recTrailerSize {
			break // torn header
		}
		n := binary.LittleEndian.Uint32(rest)
		if n > MaxPayload {
			break // corrupt length field
		}
		total := recHeaderSize + int(n) + recTrailerSize
		if len(rest) < total {
			break // torn payload or trailer
		}
		sum := crc32.Checksum(rest[4:recHeaderSize+int(n)], crcTable)
		if binary.LittleEndian.Uint32(rest[recHeaderSize+int(n):]) != sum {
			break // corrupt record
		}
		rec := Record{
			Type:    rest[4],
			Seq:     binary.LittleEndian.Uint64(rest[5:]),
			Payload: append([]byte(nil), rest[recHeaderSize:recHeaderSize+int(n)]...),
		}
		if rec.Seq > j.stats.SnapshotSeq {
			j.records = append(j.records, rec)
			if rec.Seq >= j.nextSeq {
				j.nextSeq = rec.Seq + 1
			}
		} else {
			// Already covered by the snapshot: a crash hit the window
			// between snapshot commit and log reset.
			j.stats.StaleRecords++
		}
		off += total
		valid = off
	}
	if valid < len(buf) {
		j.stats.TruncatedBytes = int64(len(buf) - valid)
		if err := j.fs.Truncate(j.path(walName), int64(valid)); err != nil {
			return fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	j.stats.Records = len(j.records)
	return nil
}
