package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Snapshot file layout:
//
//	[8-byte magic "PDTNSNAP"][1-byte version][8-byte LE covered sequence]
//	[4-byte LE payload length][payload][4-byte LE CRC-32C of everything
//	after the magic]
//
// The file is only ever produced by write-temp + fsync + rename, so a
// reader either sees a complete snapshot or none at all; the checksum
// guards against bit rot, not torn writes.

var snapMagic = [8]byte{'P', 'D', 'T', 'N', 'S', 'N', 'A', 'P'}

const snapVersion = 1

// writeSnapshotFile writes the snapshot encoding to path and fsyncs it.
// The caller renames it into place.
func writeSnapshotFile(fsys FS, path string, seq uint64, payload []byte) error {
	buf := make([]byte, 0, len(snapMagic)+1+8+4+len(payload)+4)
	buf = append(buf, snapMagic[:]...)
	buf = append(buf, snapVersion)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[len(snapMagic):], crcTable))
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: create snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close snapshot: %w", err)
	}
	return nil
}

// decodeSnapshot validates a snapshot file image and returns the covered
// sequence number and payload.
func decodeSnapshot(buf []byte) (uint64, []byte, error) {
	const hdr = 8 + 1 + 8 + 4
	if len(buf) < hdr+4 {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrCorruptSnapshot, len(buf))
	}
	if [8]byte(buf[:8]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrCorruptSnapshot)
	}
	if buf[8] != snapVersion {
		return 0, nil, fmt.Errorf("%w: version %d", ErrCorruptSnapshot, buf[8])
	}
	seq := binary.LittleEndian.Uint64(buf[9:])
	n := binary.LittleEndian.Uint32(buf[17:])
	if uint64(len(buf)) != uint64(hdr)+uint64(n)+4 {
		return 0, nil, fmt.Errorf("%w: payload claims %d bytes, file has %d", ErrCorruptSnapshot, n, len(buf))
	}
	sum := crc32.Checksum(buf[8:hdr+int(n)], crcTable)
	if binary.LittleEndian.Uint32(buf[hdr+int(n):]) != sum {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptSnapshot)
	}
	payload := append([]byte(nil), buf[hdr:hdr+int(n)]...)
	return seq, payload, nil
}
