package sensor

import (
	"math"
	"math/rand"
	"testing"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func headingErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

func TestVec3Basics(t *testing.T) {
	v, w := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if v.Add(w) != (Vec3{5, 7, 9}) || v.Sub(w) != (Vec3{-3, -3, -3}) {
		t.Fatal("add/sub wrong")
	}
	if v.Dot(w) != 32 {
		t.Fatal("dot wrong")
	}
	if got := (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}); got != (Vec3{0, 0, 1}) {
		t.Fatalf("cross = %v", got)
	}
	if !almostEqual((Vec3{3, 4, 0}).Norm(), 5, eps) {
		t.Fatal("norm wrong")
	}
	if (Vec3{}).Unit() != (Vec3{}) {
		t.Fatal("zero unit wrong")
	}
}

func TestMat3Identity(t *testing.T) {
	id := Identity()
	v := Vec3{1, 2, 3}
	if id.Apply(v) != v {
		t.Fatal("identity apply wrong")
	}
	if id.Mul(id) != id {
		t.Fatal("identity multiply wrong")
	}
}

func TestRotationZ(t *testing.T) {
	r := RotationZ(math.Pi / 2)
	got := r.Apply(Vec3{1, 0, 0})
	if !almostEqual(got.X, 0, eps) || !almostEqual(got.Y, 1, eps) {
		t.Fatalf("RotationZ apply = %v", got)
	}
}

func TestRotationAxisMatchesRotationZ(t *testing.T) {
	for _, a := range []float64{0.3, 1.2, -0.7} {
		rz := RotationZ(a)
		ra := RotationAxis(Vec3{Z: 1}, a)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if !almostEqual(rz[i][j], ra[i][j], 1e-12) {
					t.Fatalf("angle %v entry (%d,%d): %v vs %v", a, i, j, rz[i][j], ra[i][j])
				}
			}
		}
	}
}

func TestTransposeIsInverse(t *testing.T) {
	r := RotationAxis(Vec3{1, 2, 3}, 0.9)
	p := r.Mul(r.Transpose())
	id := Identity()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(p[i][j], id[i][j], 1e-12) {
				t.Fatalf("R·Rᵀ ≠ I at (%d,%d): %v", i, j, p[i][j])
			}
		}
	}
}

func TestOrthonormalize(t *testing.T) {
	r := RotationAxis(Vec3{1, 1, 0}, 0.5)
	// Perturb.
	r[0][1] += 0.05
	r[2][0] -= 0.03
	o := r.Orthonormalize()
	for i := 0; i < 3; i++ {
		if !almostEqual(o.Row(i).Norm(), 1, 1e-12) {
			t.Fatalf("row %d not unit", i)
		}
		for j := i + 1; j < 3; j++ {
			if !almostEqual(o.Row(i).Dot(o.Row(j)), 0, 1e-12) {
				t.Fatalf("rows %d,%d not orthogonal", i, j)
			}
		}
	}
	// Right-handed: r2 = r0 × r1.
	if o.Row(0).Cross(o.Row(1)).Sub(o.Row(2)).Norm() > 1e-12 {
		t.Fatal("not right handed")
	}
}

func TestHeadingConvention(t *testing.T) {
	// At identity the camera looks straight down (heading degenerate), so
	// first pitch the device up 90° — making the camera look north — and
	// then yaw to each target heading.
	for _, wantDeg := range []float64{0, 45, 90, 180, 270} {
		want := wantDeg * math.Pi / 180
		base := RotationAxis(Vec3{X: 1}, math.Pi/2)
		look := base.Apply(Vec3{Z: -1})
		if !almostEqual(look.Y, 1, 1e-9) {
			t.Fatalf("base orientation: camera looks at %v, want +Y", look)
		}
		// Then yaw from north to the target heading (north = 90°).
		r := RotationZ(want - math.Pi/2).Mul(base)
		if got := r.Heading(); headingErr(got, want) > 1e-9 {
			t.Fatalf("heading = %v°, want %v°", got*180/math.Pi, wantDeg)
		}
	}
}

func TestFromAccelMagNoiseless(t *testing.T) {
	d := NewDevice(1, Noise{}) // no noise
	// Random true orientation.
	d.R = RotationAxis(Vec3{0.3, -0.5, 0.8}, 1.1).Mul(RotationAxis(Vec3{X: 1}, math.Pi/2))
	est := FromAccelMag(d.ReadAccel(), d.ReadMag())
	if headingErr(est.Heading(), d.TrueHeading()) > 1e-9 {
		t.Fatalf("noiseless reconstruction heading error %v", headingErr(est.Heading(), d.TrueHeading()))
	}
	// The full matrix must match, not just the heading.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(est[i][j], d.R[i][j], 1e-9) {
				t.Fatalf("matrix mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// runFusion simulates a handheld camera-aiming episode and returns the
// final heading errors of the fused, gyro-only, and accel/mag-only
// estimators.
func runFusion(t *testing.T, seed int64, steps int) (fused, gyroOnly, amOnly float64) {
	t.Helper()
	d := NewDevice(seed, DefaultNoise())
	// Camera starts level, looking north.
	d.R = RotationAxis(Vec3{X: 1}, math.Pi/2)
	rng := rand.New(rand.NewSource(seed + 99))

	f := NewFusion(0.98)
	g := NewFusion(1.0)  // pure gyro after initialisation
	am := NewFusion(0.0) // pure accel/mag
	const dt = 0.02      // 50 Hz sensors
	for i := 0; i < steps; i++ {
		// Slow handheld wobble plus deliberate panning.
		omega := Vec3{
			X: 0.2 * rng.NormFloat64(),
			Y: 0.2 * rng.NormFloat64(),
			Z: 0.3 + 0.2*rng.NormFloat64(),
		}
		gyro := d.Rotate(omega, dt)
		accel, mag := d.ReadAccel(), d.ReadMag()
		f.Update(accel, mag, gyro, dt)
		g.Update(accel, mag, gyro, dt)
		am.Update(accel, mag, gyro, dt)
	}
	truth := d.TrueHeading()
	return headingErr(f.Heading(), truth), headingErr(g.Heading(), truth), headingErr(am.Heading(), truth)
}

func TestFusionMeetsPaperErrorBound(t *testing.T) {
	// The paper: "the final outcome achieves a maximum error of five
	// degrees". Check the bound across seeds.
	fiveDeg := 5 * math.Pi / 180
	worst := 0.0
	for seed := int64(0); seed < 20; seed++ {
		fused, _, _ := runFusion(t, seed, 500)
		if fused > worst {
			worst = fused
		}
	}
	if worst > fiveDeg {
		t.Fatalf("fused heading error %.2f° exceeds the 5° bound", worst*180/math.Pi)
	}
}

func TestGyroOnlyDrifts(t *testing.T) {
	// Integrating a biased gyro for long enough must drift beyond the
	// fused estimator's error.
	var fusedSum, gyroSum float64
	for seed := int64(0); seed < 10; seed++ {
		fused, gyro, _ := runFusion(t, seed, 3000) // 60 s of integration
		fusedSum += fused
		gyroSum += gyro
	}
	if gyroSum <= fusedSum {
		t.Fatalf("gyro-only (%.3f rad avg) should drift beyond fused (%.3f rad avg)", gyroSum/10, fusedSum/10)
	}
}

func TestFusionBeatsAccelMagOnAverage(t *testing.T) {
	var fusedSum, amSum float64
	const trials = 30
	for seed := int64(0); seed < trials; seed++ {
		fused, _, am := runFusion(t, seed, 300)
		fusedSum += fused
		amSum += am
	}
	if fusedSum >= amSum {
		t.Fatalf("fusion (%.4f rad avg) not better than accel/mag alone (%.4f rad avg)",
			fusedSum/trials, amSum/trials)
	}
}

func TestFusionFirstUpdateInitialises(t *testing.T) {
	d := NewDevice(3, Noise{})
	d.R = RotationAxis(Vec3{X: 1}, math.Pi/2)
	f := NewFusion(0.98)
	est := f.Update(d.ReadAccel(), d.ReadMag(), Vec3{}, 0.02)
	if headingErr(est.Heading(), d.TrueHeading()) > 1e-9 {
		t.Fatal("first update should adopt the absolute estimate")
	}
}
