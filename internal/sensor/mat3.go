// Package sensor reproduces the prototype's automatic metadata acquisition
// pipeline (§IV-A): simulated smartphone sensors (accelerometer,
// magnetometer, gyroscope) and the orientation-estimation algorithm the
// paper adopts from SmartPhoto — an accelerometer+magnetometer absolute
// estimate, a gyroscope-integrated relative estimate, a linear blend of the
// two, and a final orthonormalisation. The paper reports a maximum error of
// five degrees; the package's tests verify the same bound under realistic
// noise.
package sensor

import "math"

// Vec3 is a three-dimensional vector.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by k.
func (v Vec3) Scale(k float64) Vec3 { return Vec3{v.X * k, v.Y * k, v.Z * k} }

// Dot returns the dot product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns the unit vector, or the zero vector for zero input.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// Mat3 is a 3×3 matrix in row-major order, used as the device→world
// rotation: row i holds world axis i (east/north/up) expressed in device
// coordinates, so m.Apply maps a device-frame vector into world frame.
type Mat3 [3][3]float64

// Identity returns the identity matrix.
func Identity() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// Mul returns the matrix product m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				out[i][j] += m[i][k] * n[k][j]
			}
		}
	}
	return out
}

// Transpose returns the transposed matrix (the inverse, for rotations).
func (m Mat3) Transpose() Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = m[j][i]
		}
	}
	return out
}

// Apply returns m·v.
func (m Mat3) Apply(v Vec3) Vec3 {
	return Vec3{
		X: m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		Y: m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		Z: m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Row returns the i-th row as a vector.
func (m Mat3) Row(i int) Vec3 { return Vec3{m[i][0], m[i][1], m[i][2]} }

// setRow writes a vector into the i-th row.
func (m *Mat3) setRow(i int, v Vec3) {
	m[i][0], m[i][1], m[i][2] = v.X, v.Y, v.Z
}

// Scale returns the matrix with every entry scaled — used for the linear
// blending step of the fusion algorithm.
func (m Mat3) Scale(k float64) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = m[i][j] * k
		}
	}
	return out
}

// Add returns the entry-wise sum.
func (m Mat3) Add(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = m[i][j] + n[i][j]
		}
	}
	return out
}

// Orthonormalize re-projects the matrix onto SO(3) by Gram–Schmidt on its
// rows — the paper's final enhancement step ("this result is further
// enhanced by orthonormalization").
func (m Mat3) Orthonormalize() Mat3 {
	r0 := m.Row(0).Unit()
	r1 := m.Row(1).Sub(r0.Scale(m.Row(1).Dot(r0))).Unit()
	r2 := r0.Cross(r1)
	var out Mat3
	out.setRow(0, r0)
	out.setRow(1, r1)
	out.setRow(2, r2)
	return out
}

// RotationZ returns the rotation by angle (radians) around the world Z
// axis (a change of heading).
func RotationZ(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}
}

// RotationAxis returns the rotation by angle around an arbitrary unit axis
// (Rodrigues' formula).
func RotationAxis(axis Vec3, angle float64) Mat3 {
	u := axis.Unit()
	c, s := math.Cos(angle), math.Sin(angle)
	oc := 1 - c
	return Mat3{
		{c + u.X*u.X*oc, u.X*u.Y*oc - u.Z*s, u.X*u.Z*oc + u.Y*s},
		{u.Y*u.X*oc + u.Z*s, c + u.Y*u.Y*oc, u.Y*u.Z*oc - u.X*s},
		{u.Z*u.X*oc - u.Y*s, u.Z*u.Y*oc + u.X*s, c + u.Z*u.Z*oc},
	}
}

// Heading extracts the compass heading (radians, [0, 2π), 0 = east,
// counter-clockwise) of the device's viewing direction: the world-frame
// projection of the device −Z axis (the direction an Android camera looks).
func (m Mat3) Heading() float64 {
	// The camera looks along device −Z (Android convention); its world
	// direction is m·(0,0,−1), i.e. minus the third column.
	look := Vec3{-m[0][2], -m[1][2], -m[2][2]}
	h := math.Atan2(look.Y, look.X)
	if h < 0 {
		h += 2 * math.Pi
	}
	return h
}
