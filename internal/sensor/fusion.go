package sensor

import (
	"math"
	"math/rand"
)

// Gravity is the gravitational acceleration in m/s².
const Gravity = 9.81

// Noise holds the simulated sensor noise levels (standard deviations).
type Noise struct {
	// Accel is the accelerometer noise per axis in m/s².
	Accel float64
	// Mag is the magnetometer noise per axis in µT.
	Mag float64
	// Gyro is the gyroscope noise per axis in rad/s.
	Gyro float64
	// GyroBias is a constant per-axis gyroscope bias in rad/s (the reason
	// gyro-only integration drifts).
	GyroBias float64
}

// DefaultNoise returns noise levels typical of 2012-era smartphone sensors
// (the prototype's Nexus 4).
func DefaultNoise() Noise {
	return Noise{Accel: 0.15, Mag: 1.0, Gyro: 0.02, GyroBias: 0.01}
}

// Device simulates a smartphone's true orientation plus its noisy inertial
// and magnetic sensors. The orientation matrix maps device coordinates to
// world coordinates (world X = east, Y = north, Z = up); its rows are the
// world axes expressed in the device frame's dual — see Fusion for how the
// estimates are reconstructed.
type Device struct {
	// R is the true device→world rotation.
	R Mat3

	noise Noise
	bias  Vec3
	rng   *rand.Rand
	// field is the geomagnetic field in world coordinates (north and
	// downward-tilted by the inclination angle).
	field Vec3
}

// NewDevice returns a device at identity orientation with the given sensor
// noise, a 60° magnetic inclination (mid-latitudes), and a random constant
// gyro bias.
func NewDevice(seed int64, noise Noise) *Device {
	rng := rand.New(rand.NewSource(seed))
	incl := 60 * math.Pi / 180
	return &Device{
		R:     Identity(),
		noise: noise,
		rng:   rng,
		bias: Vec3{
			X: noise.GyroBias * rng.NormFloat64(),
			Y: noise.GyroBias * rng.NormFloat64(),
			Z: noise.GyroBias * rng.NormFloat64(),
		},
		field: Vec3{X: 0, Y: 50 * math.Cos(incl), Z: -50 * math.Sin(incl)},
	}
}

// Rotate turns the true orientation by the given device-frame angular
// velocity over dt seconds and returns the noisy gyroscope reading for the
// interval.
func (d *Device) Rotate(omega Vec3, dt float64) Vec3 {
	if a := omega.Norm() * dt; a > 0 {
		d.R = d.R.Mul(RotationAxis(omega, a))
	}
	return Vec3{
		X: omega.X + d.bias.X + d.noise.Gyro*d.rng.NormFloat64(),
		Y: omega.Y + d.bias.Y + d.noise.Gyro*d.rng.NormFloat64(),
		Z: omega.Z + d.bias.Z + d.noise.Gyro*d.rng.NormFloat64(),
	}
}

// ReadAccel returns the noisy accelerometer reading: the reaction to
// gravity (pointing up in world coordinates) expressed in the device frame.
func (d *Device) ReadAccel() Vec3 {
	up := d.R.Transpose().Apply(Vec3{Z: Gravity})
	return Vec3{
		X: up.X + d.noise.Accel*d.rng.NormFloat64(),
		Y: up.Y + d.noise.Accel*d.rng.NormFloat64(),
		Z: up.Z + d.noise.Accel*d.rng.NormFloat64(),
	}
}

// ReadMag returns the noisy magnetometer reading: the geomagnetic field in
// the device frame.
func (d *Device) ReadMag() Vec3 {
	m := d.R.Transpose().Apply(d.field)
	return Vec3{
		X: m.X + d.noise.Mag*d.rng.NormFloat64(),
		Y: m.Y + d.noise.Mag*d.rng.NormFloat64(),
		Z: m.Z + d.noise.Mag*d.rng.NormFloat64(),
	}
}

// TrueHeading returns the true camera heading.
func (d *Device) TrueHeading() float64 { return d.R.Heading() }

// FromAccelMag reconstructs an absolute orientation estimate from one
// accelerometer and one magnetometer reading — the first estimate of the
// paper's pipeline ("these two measurements can be used to calculate an
// estimate of orientation"). It mirrors Android's
// SensorManager.getRotationMatrix.
func FromAccelMag(accel, mag Vec3) Mat3 {
	up := accel.Unit()
	east := mag.Cross(up).Unit()
	north := up.Cross(east)
	var m Mat3
	m.setRow(0, east)
	m.setRow(1, north)
	m.setRow(2, up)
	return m
}

// Fusion is the paper's orientation estimator: gyroscope integration
// provides a smooth relative estimate, the accelerometer+magnetometer pair
// provides an absolute but noisy estimate, and each update linearly blends
// the two ("the two estimates can be linearly combined to produce a more
// reliable result") before orthonormalising back onto a rotation.
type Fusion struct {
	// GyroWeight is the blend weight of the gyro-propagated estimate,
	// in [0, 1).
	GyroWeight float64

	est  Mat3
	init bool
}

// NewFusion returns a fusion filter; weight 0.98 reproduces the paper's
// ≤5° error under DefaultNoise.
func NewFusion(gyroWeight float64) *Fusion {
	return &Fusion{GyroWeight: gyroWeight}
}

// Update feeds one sensor epoch (readings plus the gyro integration
// interval) and returns the current orientation estimate.
func (f *Fusion) Update(accel, mag, gyro Vec3, dt float64) Mat3 {
	am := FromAccelMag(accel, mag)
	if !f.init {
		f.est = am
		f.init = true
		return f.est
	}
	// Gyroscope propagation: rate × interval = orientation change.
	g := f.est
	if a := gyro.Norm() * dt; a > 0 {
		g = f.est.Mul(RotationAxis(gyro, a))
	}
	blended := g.Scale(f.GyroWeight).Add(am.Scale(1 - f.GyroWeight))
	f.est = blended.Orthonormalize()
	return f.est
}

// Heading returns the current estimated camera heading.
func (f *Fusion) Heading() float64 { return f.est.Heading() }
