package peer

import (
	"context"
	"errors"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"photodtn/internal/obs"
)

// scriptedListener feeds Accept a fixed sequence of errors and connections,
// then reports net.ErrClosed.
type scriptedListener struct {
	mu    sync.Mutex
	steps []any // error or net.Conn, consumed in order
}

func (l *scriptedListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.steps) == 0 {
		return nil, net.ErrClosed
	}
	s := l.steps[0]
	l.steps = l.steps[1:]
	if err, ok := s.(error); ok {
		return nil, err
	}
	return s.(net.Conn), nil
}

func (l *scriptedListener) Close() error   { return nil }
func (l *scriptedListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4zero} }

// Regression: Serve treated every Accept error as "peer offline" and
// returned, so a burst of EMFILE (fd pressure) or ECONNABORTED (remote gave
// up in the backlog) took the node off the air. Transient accept failures
// must be retried with capped backoff; the loop ends only on net.ErrClosed,
// context cancellation, or a permanent error.
func TestServeRetriesTransientAcceptErrors(t *testing.T) {
	m := poiMap()
	o := obs.New(0, nil)
	cc := newTestPeer(t, 0, m, 0, WithObserver(o),
		WithRetry(3, time.Millisecond, 4*time.Millisecond))

	var slept []time.Duration
	cc.sleep = func(d time.Duration) { slept = append(slept, d) }

	serverSide, clientSide := net.Pipe()
	_ = clientSide.Close() // the accepted contact fails instantly; that's fine
	l := &scriptedListener{steps: []any{
		&net.OpError{Op: "accept", Net: "tcp", Err: syscall.EMFILE},
		&net.OpError{Op: "accept", Net: "tcp", Err: syscall.ECONNABORTED},
		&net.OpError{Op: "accept", Net: "tcp", Err: syscall.EMFILE},
		serverSide,
	}}

	if err := cc.Serve(l); err != nil {
		t.Fatalf("Serve returned %v; transient accept errors must not end the loop", err)
	}
	if got := o.Counter("peer.accept_retries").Value(); got != 3 {
		t.Fatalf("accept_retries = %d, want 3", got)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("backoff sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff sleeps = %v, want %v (doubling, capped)", slept, want)
		}
	}
}

func TestServeStopsOnPermanentAcceptError(t *testing.T) {
	m := poiMap()
	cc := newTestPeer(t, 0, m, 0)
	cc.sleep = func(time.Duration) {}
	boom := errors.New("listener torn off")
	l := &scriptedListener{steps: []any{boom}}
	if err := cc.Serve(l); !errors.Is(err, boom) {
		t.Fatalf("Serve = %v, want the permanent accept error", err)
	}
}

// Regression: a contact that failed under a cancelled context reported
// "contact interrupted: <ctx err>", swallowing the underlying IO error —
// errors.Is could match context.Canceled or the real cause, never both.
// The wrap now joins them.
func TestInterruptedContactJoinsBothCauses(t *testing.T) {
	m := poiMap()
	n := newTestPeer(t, 1, m, 20*mb, WithRetry(1, time.Millisecond, time.Millisecond))
	n.sleep = func(time.Duration) {}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the deadline poison fires before the hello

	a, b := net.Pipe()
	defer func() { _ = b.Close() }()
	n.dial = func(context.Context, string) (net.Conn, error) { return a, nil }

	err := n.DialContext(ctx, "unused:0")
	if err == nil {
		t.Fatal("contact under a cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, does not match context.Canceled", err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, does not match the underlying ErrTimeout", err)
	}
}
