package peer

import (
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"photodtn/internal/faults"
	"photodtn/internal/model"
	"photodtn/internal/wire"
)

// waitErr waits for a contact goroutine with a hang guard: the whole point
// of the deadline work is that these contacts terminate on their own.
func waitErr(t *testing.T, ch <-chan error, within time.Duration) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(within):
		t.Fatalf("contact still hanging after %v", within)
		return nil
	}
}

func photoIDs(p *Peer) []model.PhotoID { return p.Photos().IDs() }

func sameIDs(a, b []model.PhotoID) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[model.PhotoID]bool, len(a))
	for _, id := range a {
		set[id] = true
	}
	for _, id := range b {
		if !set[id] {
			return false
		}
	}
	return true
}

// TestStalledRemoteTimesOut: a remote that accepts the connection and then
// goes silent must end the contact within the configured frame timeout, not
// hang the radio forever.
func TestStalledRemoteTimesOut(t *testing.T) {
	a := newTestPeer(t, 1, poiMap(), 8*mb, WithFrameTimeout(100*time.Millisecond))
	if err := a.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	before := photoIDs(a)

	ca, cb := net.Pipe()
	defer func() { _ = ca.Close(); _ = cb.Close() }()
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- a.ContactConn(ca, true) }()
	// The remote reads the hello and then stalls without replying.
	if _, err := wire.Read(cb); err != nil {
		t.Fatal(err)
	}
	err := waitErr(t, done, 5*time.Second)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("contact took %v to time out with a 100ms frame timeout", elapsed)
	}
	if !sameIDs(photoIDs(a), before) {
		t.Fatalf("storage changed across an aborted contact: %v", photoIDs(a))
	}
}

// TestStalledRemoteNeverReads: the write path is bounded too — a remote
// that never drains the pipe stalls our hello write.
func TestStalledRemoteNeverReads(t *testing.T) {
	a := newTestPeer(t, 1, poiMap(), 8*mb, WithFrameTimeout(100*time.Millisecond))
	ca, cb := net.Pipe()
	defer func() { _ = ca.Close(); _ = cb.Close() }()
	done := make(chan error, 1)
	go func() { done <- a.ContactConn(ca, true) }()
	if err := waitErr(t, done, 5*time.Second); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestContactDeadline: with per-frame deadlines off, the absolute contact
// timeout still bounds the contact (the live equivalent of nodes moving
// out of range).
func TestContactDeadline(t *testing.T) {
	a := newTestPeer(t, 1, poiMap(), 8*mb,
		WithFrameTimeout(0), WithContactTimeout(100*time.Millisecond))
	ca, cb := net.Pipe()
	defer func() { _ = ca.Close(); _ = cb.Close() }()
	done := make(chan error, 1)
	go func() { done <- a.ContactConn(ca, true) }()
	if _, err := wire.Read(cb); err != nil {
		t.Fatal(err)
	}
	if err := waitErr(t, done, 5*time.Second); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestCorruptingRemoteAbortsContact: frames mangled in flight (simulated
// with the faults transport at corruption probability 1) fail the wire
// checksum and end the contact cleanly.
func TestCorruptingRemoteAbortsContact(t *testing.T) {
	m := poiMap()
	a := newTestPeer(t, 1, m, 8*mb, WithFrameTimeout(time.Second))
	b := newTestPeer(t, 2, m, 8*mb, WithFrameTimeout(time.Second))
	if err := a.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	beforeA, beforeB := photoIDs(a), photoIDs(b)

	ca, cb := net.Pipe()
	tr := faults.NewTransport(cb, 0, 1, 42) // corrupt every frame b sends
	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go func() {
		errA <- a.ContactConn(ca, true)
		_ = ca.Close()
	}()
	go func() {
		errB <- b.ContactConn(tr, false)
		_ = cb.Close()
	}()
	if err := waitErr(t, errA, 5*time.Second); !errors.Is(err, wire.ErrChecksum) {
		t.Fatalf("honest side err = %v, want ErrChecksum", err)
	}
	if err := waitErr(t, errB, 5*time.Second); err == nil {
		t.Fatal("corrupting side finished the contact cleanly")
	}
	if tr.Corrupted() == 0 {
		t.Fatal("transport corrupted nothing")
	}
	if !sameIDs(photoIDs(a), beforeA) || !sameIDs(photoIDs(b), beforeB) {
		t.Fatal("storage changed across a checksum-aborted contact")
	}
}

// corruptAfter passes through the first n writes untouched, then flips the
// final byte (the CRC trailer) of every later frame — corruption that
// strikes mid-transfer, after the handshake succeeded.
type corruptAfter struct {
	rw io.ReadWriter
	n  int
}

func (c *corruptAfter) Read(b []byte) (int, error) { return c.rw.Read(b) }

func (c *corruptAfter) Write(b []byte) (int, error) {
	if c.n > 0 {
		c.n--
		return c.rw.Write(b)
	}
	bad := append([]byte(nil), b...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := c.rw.Write(bad); err != nil {
		return 0, err
	}
	return len(b), nil
}

// TestAbortMidTransferLeavesPeersConsistent is the live-path counterpart of
// the simulator's §III-D test: a contact that dies during the photo
// transfer discards the unfinished exchange on both sides, and the peers
// are healthy enough to complete a later contact normally.
func TestAbortMidTransferLeavesPeersConsistent(t *testing.T) {
	m := poiMap()
	a := newTestPeer(t, 1, m, 8*mb, WithFrameTimeout(time.Second))
	b := newTestPeer(t, 2, m, 8*mb, WithFrameTimeout(time.Second))
	east := viewFrom(1, 0, 0)
	north := viewFrom(2, 0, 90)
	if err := a.AddPhoto(east); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPhoto(north); err != nil {
		t.Fatal(err)
	}
	beforeA, beforeB := photoIDs(a), photoIDs(b)

	// b's hello, metadata, and photo-request frames pass; its first
	// PhotoData frame is corrupted.
	ca, cb := net.Pipe()
	tr := &corruptAfter{rw: cb, n: 3}
	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go func() {
		errA <- a.ContactConn(ca, true)
		_ = ca.Close()
	}()
	go func() {
		errB <- b.ContactConn(tr, false)
		_ = cb.Close()
	}()
	if err := waitErr(t, errA, 5*time.Second); !errors.Is(err, wire.ErrChecksum) {
		t.Fatalf("initiator err = %v, want ErrChecksum mid-transfer", err)
	}
	if err := waitErr(t, errB, 5*time.Second); err == nil {
		t.Fatal("corrupting side finished cleanly")
	}

	// Unfinished photos are discarded: both collections and their byte
	// accounting are exactly as before the contact.
	for _, tc := range []struct {
		p      *Peer
		before []model.PhotoID
	}{{a, beforeA}, {b, beforeB}} {
		if !sameIDs(photoIDs(tc.p), tc.before) {
			t.Fatalf("peer %v collection changed: %v -> %v",
				tc.p.ID(), tc.before, photoIDs(tc.p))
		}
		var sum int64
		for _, photo := range tc.p.Photos() {
			sum += photo.Size
		}
		tc.p.mu.Lock()
		used := tc.p.store.Used()
		tc.p.mu.Unlock()
		if used != sum {
			t.Fatalf("peer %v byte accounting drifted: used %d, photos sum %d",
				tc.p.ID(), used, sum)
		}
	}

	// The decisive consistency check: a clean contact afterwards works and
	// converges both peers on the shared plan.
	contact(t, a, b)
	for _, p := range []*Peer{a, b} {
		if len(p.Photos()) != 2 {
			t.Fatalf("peer %v holds %d photos after the recovery contact", p.ID(), len(p.Photos()))
		}
	}
}

// TestContactRetriesTransientDialFailures: ECONNREFUSED-style failures are
// retried with exponential backoff until the dial lands.
func TestContactRetriesTransientDialFailures(t *testing.T) {
	m := poiMap()
	cc := newTestPeer(t, model.CommandCenter, m, 0)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() { _ = cc.Serve(l) }()

	var attempts int
	refused := &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	n := newTestPeer(t, 1, m, 20*mb,
		WithRetry(3, 10*time.Millisecond, 40*time.Millisecond),
		WithDialer(func(addr string) (net.Conn, error) {
			attempts++
			if attempts < 3 {
				return nil, refused
			}
			return net.Dial("tcp", addr)
		}))
	var slept []time.Duration
	n.sleep = func(d time.Duration) { slept = append(slept, d) }
	if err := n.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.Contact(l.Addr().String()); err != nil {
		t.Fatalf("contact failed despite retries: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff = %v, want %v", slept, want)
	}
	if len(cc.Photos()) != 1 {
		t.Fatalf("CC received %d photos", len(cc.Photos()))
	}
}

// TestContactDoesNotRetryPermanentErrors: a non-transient failure returns
// immediately, with no backoff sleeps.
func TestContactDoesNotRetryPermanentErrors(t *testing.T) {
	permanent := errors.New("no route to host policy")
	var attempts int
	n := newTestPeer(t, 1, poiMap(), 4*mb,
		WithRetry(5, time.Millisecond, time.Second),
		WithDialer(func(string) (net.Conn, error) {
			attempts++
			return nil, permanent
		}))
	n.sleep = func(time.Duration) { t.Fatal("slept before a permanent error") }
	if err := n.Contact("anywhere:1"); !errors.Is(err, permanent) {
		t.Fatalf("err = %v", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
}

// TestServeSurvivesBadContact: garbage from one client must not stop the
// listener; the next well-behaved peer still gets served.
func TestServeSurvivesBadContact(t *testing.T) {
	m := poiMap()
	cc := newTestPeer(t, model.CommandCenter, m, 0, WithFrameTimeout(time.Second))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- cc.Serve(l) }()

	// A client that sends a truncated garbage frame and hangs up.
	bad, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_ = bad.Close()
	deadline := time.Now().Add(5 * time.Second)
	for cc.ContactErrors() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("bad contact never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	if cc.LastContactError() == nil {
		t.Fatal("no last contact error recorded")
	}

	// The listener is still alive: a real peer can upload.
	n := newTestPeer(t, 1, m, 20*mb)
	if err := n.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.Contact(l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if len(cc.Photos()) != 1 {
		t.Fatalf("CC received %d photos after the bad contact", len(cc.Photos()))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
