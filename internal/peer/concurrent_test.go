package peer

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"photodtn/internal/coverage"
	"photodtn/internal/faults"
	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/obs"
)

// poiMapN builds a map of n PoIs spaced far enough apart (100 km) that
// photos of different PoIs never interact — each dialer's upload decisions
// are then independent of what the others delivered, which is what lets the
// convergence test demand a bit-identical digest.
func poiMapN(n int) *coverage.Map {
	pois := make([]model.PoI, n)
	for i := range pois {
		pois[i] = model.NewPoI(i, geo.Vec{X: float64(i) * 100000})
	}
	return coverage.NewMap(pois, geo.Radians(30))
}

// viewOfPoI is viewFrom aimed at the poi-th PoI of a poiMapN map.
func viewOfPoI(owner model.NodeID, seq uint32, poi int, deg float64) model.Photo {
	center := geo.Vec{X: float64(poi) * 100000}
	return model.Photo{
		ID:          model.MakePhotoID(owner, seq),
		Owner:       owner,
		Location:    center.Add(geo.FromAngle(geo.Radians(deg)).Scale(60)),
		Range:       120,
		FOV:         geo.Radians(60),
		Orientation: geo.Radians(deg + 180),
		Size:        4 * mb,
	}
}

func mustRecord(t *testing.T, s *session, kind byte, payload []byte) {
	t.Helper()
	if err := s.record(kind, payload); err != nil {
		t.Fatal(err)
	}
}

func mustBegin(t *testing.T, p *Peer) *session {
	t.Helper()
	s, err := p.beginSession()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Two concurrent sessions deliver the same photo (two relays carried copies
// of it). The loser of the commit race must dedupe, not fail or
// double-store.
func TestCommitConflictDedupesConcurrentAdds(t *testing.T) {
	o := obs.New(0, nil)
	cc := newTestPeer(t, 0, poiMap(), 0, WithObserver(o))
	ph := viewFrom(1, 0, 0)

	s1 := mustBegin(t, cc)
	s2 := mustBegin(t, cc)
	mustRecord(t, s1, subStoreAdd, ph.AppendBinary(nil))
	mustRecord(t, s2, subStoreAdd, ph.AppendBinary(nil))
	if err := s1.commit(); err != nil {
		t.Fatal(err)
	}
	if err := s2.commit(); err != nil {
		t.Fatalf("racing duplicate delivery must commit cleanly, got %v", err)
	}
	photos := cc.Photos()
	if len(photos) != 1 || photos[0].ID != ph.ID {
		t.Fatalf("store holds %v, want exactly one %v", photos.IDs(), ph.ID)
	}
	if got := o.Counter("peer.commit_conflicts").Value(); got != 1 {
		t.Fatalf("commit_conflicts = %d, want 1", got)
	}
}

// A reallocation planned against a stale snapshot is merged with the
// concurrent commit's effects: photos it kept but the race removed stay
// gone, photos that arrived meanwhile are kept.
func TestCommitConflictReplansReallocation(t *testing.T) {
	p := newTestPeer(t, 1, poiMap(), 20*mb)
	a, b := viewFrom(1, 0, 0), viewFrom(1, 1, 90)
	for _, ph := range []model.Photo{a, b} {
		if err := p.AddPhoto(ph); err != nil {
			t.Fatal(err)
		}
	}
	c := viewFrom(2, 0, 180)

	s1 := mustBegin(t, p)
	s2 := mustBegin(t, p)
	mustRecord(t, s1, subStoreReplace, model.PhotoList{a}.AppendBinary(nil))       // drops b
	mustRecord(t, s2, subStoreReplace, model.PhotoList{a, b, c}.AppendBinary(nil)) // keeps b, adds c
	if err := s1.commit(); err != nil {
		t.Fatal(err)
	}
	if err := s2.commit(); err != nil {
		t.Fatalf("mergeable conflict must commit, got %v", err)
	}
	got := p.Photos()
	if len(got) != 2 || !got.Contains(a.ID) || !got.Contains(c.ID) || got.Contains(b.ID) {
		t.Fatalf("merged collection %v, want [a c] (b stays removed)", got.IDs())
	}
}

// When the merged collection no longer fits, the commit aborts with
// ErrConflict and — §III-D abort semantics — leaves no partial state.
func TestCommitConflictAbortsCleanly(t *testing.T) {
	p := newTestPeer(t, 1, poiMap(), 8*mb)
	a := viewFrom(1, 0, 0)
	if err := p.AddPhoto(a); err != nil {
		t.Fatal(err)
	}
	x, y := viewFrom(2, 0, 90), viewFrom(3, 0, 180)

	s1 := mustBegin(t, p)
	s2 := mustBegin(t, p)
	mustRecord(t, s1, subStoreReplace, model.PhotoList{a, x}.AppendBinary(nil))
	mustRecord(t, s2, subStoreReplace, model.PhotoList{a, y}.AppendBinary(nil))
	if err := s1.commit(); err != nil {
		t.Fatal(err)
	}
	digest := p.StateDigest()
	err := s2.commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("commit = %v, want ErrConflict (a+x+y needs 12MB, capacity 8MB)", err)
	}
	if got := p.StateDigest(); got != digest {
		t.Fatal("aborted commit mutated peer state")
	}
	got := p.Photos()
	if len(got) != 2 || !got.Contains(a.ID) || !got.Contains(x.ID) {
		t.Fatalf("collection %v, want the winner's [a x]", got.IDs())
	}
}

// TestSoakAdmissionGate pins the acceptance bar: a peer with
// WithMaxContacts(8) sustains 8 simultaneous sessions, and the 9th accept
// is rejected by closing the connection before any protocol byte.
func TestSoakAdmissionGate(t *testing.T) {
	o := obs.New(0, nil)
	cc := newTestPeer(t, 0, poiMap(), 0, WithObserver(o), WithMaxContacts(8))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cc.Serve(l) }()

	// 8 dialers connect and stall before the hello: each occupies a live
	// session (the server side blocks reading the hello frame).
	conns := make([]net.Conn, 0, 8)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	deadline := time.Now().Add(5 * time.Second)
	for cc.InflightContacts() != 8 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d, want 8 simultaneous sessions", cc.InflightContacts())
		}
		time.Sleep(time.Millisecond)
	}

	// The 9th connection must be rejected promptly — closed with no bytes.
	extra, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = extra.Close() }()
	_ = extra.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := extra.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Fatalf("9th connection read = %v, want EOF (clean rejection)", err)
	}
	if got := o.Counter("peer.admission_rejected").Value(); got < 1 {
		t.Fatalf("admission_rejected = %d, want >= 1", got)
	}

	// Release everything; the serve loop must drain to zero in-flight.
	for _, c := range conns {
		_ = c.Close()
	}
	_ = l.Close()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if got := cc.InflightContacts(); got != 0 {
		t.Fatalf("inflight = %d after drain, want 0", got)
	}
}

// TestSoakNoHeadOfLineBlocking pins the other acceptance bar: a stalled
// dialer holding a session must not delay other contacts past its own frame
// timeout — they complete while it is still stalling.
func TestSoakNoHeadOfLineBlocking(t *testing.T) {
	m := poiMap()
	cc := newTestPeer(t, 0, m, 0, WithMaxContacts(4), WithFrameTimeout(10*time.Second))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cc.Serve(l) }()

	// The staller: admitted, then silent. Its session idles in the hello
	// read until the 10s frame timeout.
	staller, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = staller.Close() }()
	deadline := time.Now().Add(5 * time.Second)
	for cc.InflightContacts() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("staller session never started")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	for i := 0; i < 3; i++ {
		d := newTestPeer(t, model.NodeID(i+1), m, 20*mb)
		if err := d.AddPhoto(viewFrom(model.NodeID(i+1), 0, float64(i)*60)); err != nil {
			t.Fatal(err)
		}
		if err := d.Contact(l.Addr().String()); err != nil {
			t.Fatalf("contact %d behind a staller: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("3 contacts took %v behind a stalled session (its frame timeout is 10s)", elapsed)
	}

	_ = staller.Close()
	_ = l.Close()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestSoakDigestConvergence runs 8 uploaders against one serving command
// center — once with all contacts concurrent, once strictly serialized —
// and demands bit-identical StateDigests: concurrency must not be able to
// produce a state no serial execution could.
func TestSoakDigestConvergence(t *testing.T) {
	const dialers = 8
	m := poiMapN(dialers)

	run := func(concurrent bool) uint64 {
		cc := New(0, m, 0, WithSeed(999), fixedClock(1000), WithMaxContacts(dialers))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cc.Serve(l) }()

		contact := func(i int) error {
			id := model.NodeID(i + 1)
			d := New(id, m, 40*mb, WithSeed(int64(id)), fixedClock(1000))
			for seq := uint32(0); seq < 3; seq++ {
				if err := d.AddPhoto(viewOfPoI(id, seq, i, float64(seq)*90)); err != nil {
					return err
				}
			}
			return d.Contact(l.Addr().String())
		}

		if concurrent {
			var wg sync.WaitGroup
			errs := make([]error, dialers)
			for i := 0; i < dialers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					errs[i] = contact(i)
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("dialer %d: %v", i, err)
				}
			}
		} else {
			for i := 0; i < dialers; i++ {
				if err := contact(i); err != nil {
					t.Errorf("dialer %d: %v", i, err)
				}
			}
		}
		if t.Failed() {
			t.FailNow()
		}
		_ = l.Close()
		if err := <-done; err != nil {
			t.Fatalf("serve: %v", err)
		}
		if got := len(cc.Photos()); got != 3*dialers {
			t.Fatalf("command center holds %d photos, want %d", got, 3*dialers)
		}
		return cc.StateDigest()
	}

	concurrentDigest := run(true)
	serialDigest := run(false)
	if concurrentDigest != serialDigest {
		t.Fatalf("digest diverged: concurrent %#x, serialized %#x", concurrentDigest, serialDigest)
	}
}

// faultConn layers a fault-injecting io.ReadWriter over a real connection
// while passing deadlines through, so the peer's frame timeouts still bound
// every read and write (a lost frame times out instead of hanging).
type faultConn struct {
	rw   io.ReadWriter
	conn net.Conn
}

func (f *faultConn) Read(p []byte) (int, error)         { return f.rw.Read(p) }
func (f *faultConn) Write(p []byte) (int, error)        { return f.rw.Write(p) }
func (f *faultConn) SetReadDeadline(t time.Time) error  { return f.conn.SetReadDeadline(t) }
func (f *faultConn) SetWriteDeadline(t time.Time) error { return f.conn.SetWriteDeadline(t) }

// TestSoakFaultInjection hammers one serving command center with dialers
// whose links lose frames or die mid-contact on a deterministic schedule,
// and asserts the crash-consistency invariants: no duplicate deliveries, no
// photo freed by a dialer without being durably held by the command center,
// capacity respected everywhere, aborts fully accounted, and the in-flight
// gauge draining to zero.
func TestSoakFaultInjection(t *testing.T) {
	const dialers = 6
	m := poiMapN(dialers)
	o := obs.New(0, nil)
	cc := newTestPeer(t, 0, m, 0, WithObserver(o), WithMaxContacts(8),
		WithFrameTimeout(500*time.Millisecond))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cc.Serve(l) }()

	peers := make([]*Peer, dialers)
	initial := make([]model.PhotoList, dialers)
	for i := range peers {
		id := model.NodeID(i + 1)
		peers[i] = newTestPeer(t, id, m, 40*mb, WithFrameTimeout(500*time.Millisecond))
		for seq := uint32(0); seq < 2; seq++ {
			if err := peers[i].AddPhoto(viewOfPoI(id, seq, i, float64(seq)*120)); err != nil {
				t.Fatal(err)
			}
		}
		initial[i] = peers[i].Photos()
	}

	var wg sync.WaitGroup
	for i := 0; i < dialers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for attempt := 0; attempt < 4; attempt++ {
				conn, err := net.Dial("tcp", l.Addr().String())
				if err != nil {
					continue
				}
				var rw io.ReadWriter = conn
				switch i % 3 {
				case 1: // dies mid-contact, later each attempt
					rw = &faultConn{rw: faults.NewKillTransport(conn, 1+2*attempt), conn: conn}
				case 2: // lossy link
					rw = &faultConn{rw: faults.NewTransport(conn, 0.3, 0, int64(i*31+attempt)), conn: conn}
				}
				// Errors are expected by design — the invariants below are
				// what must hold regardless of which contacts died.
				_ = peers[i].ContactConn(rw, true)
				_ = conn.Close()
			}
		}(i)
	}
	wg.Wait()
	_ = l.Close()
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// No duplicate deliveries, and accounting matches content.
	seen := make(map[model.PhotoID]bool)
	var used int64
	for _, ph := range cc.Photos() {
		if seen[ph.ID] {
			t.Fatalf("photo %v delivered twice", ph.ID)
		}
		seen[ph.ID] = true
		used += ph.Size
	}
	ccPhotos := cc.Photos()
	for i, p := range peers {
		now := p.Photos()
		if got := storageUsed(now); got > 40*mb {
			t.Fatalf("dialer %d over capacity: %d bytes", i, got)
		}
		// A dialer frees a copy only on an acknowledged upload, and the
		// command center commits before acking — so anything missing from
		// the dialer must be present at the command center.
		for _, ph := range initial[i] {
			if !now.Contains(ph.ID) && !ccPhotos.Contains(ph.ID) {
				t.Fatalf("dialer %d photo %v vanished: freed without durable delivery", i, ph.ID)
			}
		}
	}
	// Every aborted serve-side contact is accounted in the obs counter.
	if aborts, errsN := o.Counter("peer.contact_aborts").Value(), cc.ContactErrors(); aborts != errsN {
		t.Fatalf("contact_aborts = %d, ContactErrors = %d — abort accounting leaked", aborts, errsN)
	}
	if got := cc.InflightContacts(); got != 0 {
		t.Fatalf("inflight = %d after drain, want 0", got)
	}
}

func storageUsed(l model.PhotoList) int64 {
	var n int64
	for _, p := range l {
		n += p.Size
	}
	return n
}

// delayConn adds a fixed delay before every write — a stand-in for the
// frame latency of a radio link, which is what concurrent serving overlaps.
type delayConn struct {
	net.Conn
	delay time.Duration
}

func (c *delayConn) Write(p []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(p)
}

// BenchmarkContactsThroughput measures served contacts/sec with 1 vs 8
// concurrent dialers against one command center (the README quotes these),
// over raw loopback and over a link with 1 ms of per-frame latency.
func BenchmarkContactsThroughput(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
		delay   time.Duration
	}{
		{"loopback/inflight-1", 1, 0},
		{"loopback/inflight-8", 8, 0},
		{"slowlink/inflight-1", 1, time.Millisecond},
		{"slowlink/inflight-8", 8, time.Millisecond},
	} {
		workers := bc.workers
		b.Run(bc.name, func(b *testing.B) {
			m := poiMap()
			// Twice the dialer count in admission slots: a dialer's next dial
			// can land before the server goroutine of its previous contact
			// has released its slot, and a rejection here would measure the
			// retry backoff, not the protocol.
			cc := New(0, m, 0, WithSeed(1), WithMaxContacts(2*workers))
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- cc.Serve(l) }()

			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			start := time.Now()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					id := model.NodeID(w + 1)
					opts := []Option{WithSeed(int64(id))}
					if bc.delay > 0 {
						opts = append(opts, WithContextDialer(func(ctx context.Context, addr string) (net.Conn, error) {
							c, err := (&net.Dialer{}).DialContext(ctx, "tcp", addr)
							if err != nil {
								return nil, err
							}
							return &delayConn{Conn: c, delay: bc.delay}, nil
						}))
					}
					d := New(id, m, 20*mb, opts...)
					if err := d.AddPhoto(viewFrom(id, 0, float64(w)*30)); err != nil {
						b.Error(err)
						return
					}
					for next.Add(1) <= int64(b.N) {
						if err := d.Contact(l.Addr().String()); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			_ = l.Close()
			<-done
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "contacts/sec")
		})
	}
}
