package peer

import (
	"errors"
	"net"
	"sort"
	"sync"
	"testing"

	"photodtn/internal/faults"
	"photodtn/internal/model"
	"photodtn/internal/obs"
)

// tickClock is a settable logical clock shared by every peer of a durability
// scenario: the chaos harness replays rounds at identical timestamps so a
// recovered run is bit-comparable to an uninterrupted one.
type tickClock struct {
	mu  sync.Mutex
	now float64
}

func (c *tickClock) read() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *tickClock) set(v float64) {
	c.mu.Lock()
	c.now = v
	c.mu.Unlock()
}

// tryContact runs one contact over a pipe and returns both sides' errors —
// the chaos harness expects the victim side to die mid-contact. Each side
// closes its own end when done so the survivor unblocks promptly.
func tryContact(a, b *Peer) (errA, errB error) {
	ca, cb := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		errA = a.ContactConn(ca, true)
		_ = ca.Close()
	}()
	go func() {
		defer wg.Done()
		errB = b.ContactConn(cb, false)
		_ = cb.Close()
	}()
	wg.Wait()
	return errA, errB
}

const chaosVictim = model.NodeID(9)

func chaosPhoto(r int) model.Photo {
	return viewFrom(chaosVictim, uint32(r), float64(r)*33)
}

func chaosRoundTime(r int) float64 { return 1000 + 10*float64(r) }

// runReferenceDelivery runs the delivery scenario on a memory-only victim
// with no faults: per round, capture one photo and contact the command
// center. It returns the victim's final state digest and the command
// center's delivered photo IDs — the ground truth every chaos run must
// reproduce.
func runReferenceDelivery(t *testing.T, rounds int) (uint64, []model.PhotoID) {
	t.Helper()
	m := poiMap()
	clk := &tickClock{}
	cc := New(model.CommandCenter, m, 0, WithSeed(1), WithClock(clk.read))
	v := New(chaosVictim, m, 64*mb, WithSeed(2), WithClock(clk.read))
	for r := 0; r < rounds; r++ {
		clk.set(chaosRoundTime(r))
		if err := v.AddPhoto(chaosPhoto(r)); err != nil {
			t.Fatalf("reference round %d: %v", r, err)
		}
		if errV, errCC := tryContact(v, cc); errV != nil || errCC != nil {
			t.Fatalf("reference round %d: victim %v, cc %v", r, errV, errCC)
		}
	}
	return v.StateDigest(), sortedIDs(cc.Photos())
}

func sortedIDs(l model.PhotoList) []model.PhotoID {
	ids := l.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// chaosResult is what one chaos run reports back to the sweep.
type chaosResult struct {
	digest    uint64
	ccIDs     []model.PhotoID
	ops       int   // mutating disk ops the injector saw (== killOp when it fired)
	restarts  int   // crash-restarts the run needed
	replayed  int   // journal records replayed across restarts
	truncated int64 // torn-tail bytes recovery cut across restarts
	commits   uint64
}

// runChaosDelivery runs the delivery scenario on a durable victim whose
// disk dies at the killOp-th mutating operation (torn selects a torn final
// write). The command center stays up across the victim's restarts, exactly
// like the rest of a DTN would. The run drives rounds by the victim's
// durable commit count, so a round whose commit was lost is re-run and a
// round whose commit survived is not — exactly-once from the journal's
// point of view.
func runChaosDelivery(t *testing.T, rounds, killOp int, torn bool) chaosResult {
	t.Helper()
	m := poiMap()
	clk := &tickClock{}
	dir := t.TempDir()
	cc := New(model.CommandCenter, m, 0, WithSeed(1), WithClock(clk.read))
	inj := faults.NewDiskInjector(faults.DiskConfig{FailAtOp: killOp, TornWrite: torn}, nil)

	res := chaosResult{}
	baseOpts := func() []Option {
		return []Option{WithSeed(2), WithClock(clk.read), WithSnapshotEvery(2)}
	}
	open := func(extra ...Option) (*Peer, error) {
		return Open(dir, chaosVictim, m, 64*mb, append(baseOpts(), extra...)...)
	}

	v, err := open(WithJournalFS(inj))
	if err != nil {
		// Killed during the first open — restart on a healthy disk.
		res.restarts++
		if v, err = open(); err != nil {
			t.Fatalf("kill op %d: recovery after open crash: %v", killOp, err)
		}
	}
	restart := func(cause error) {
		res.restarts++
		if res.restarts > 3 {
			t.Fatalf("kill op %d: not converging: %v", killOp, cause)
		}
		if !errors.Is(cause, ErrJournal) {
			t.Fatalf("kill op %d: crash surfaced as %v, want ErrJournal in the chain", killOp, cause)
		}
		_ = v.Close()
		var rerr error
		if v, rerr = open(); rerr != nil {
			t.Fatalf("kill op %d: recovery failed: %v", killOp, rerr)
		}
		st := v.JournalStats()
		res.replayed += st.RecordsReplayed
		res.truncated += st.TruncatedBytes
	}

	for {
		r := int(v.JournalStats().Commits)
		if r >= rounds {
			break
		}
		clk.set(chaosRoundTime(r))
		if ph := chaosPhoto(r); !v.Photos().Contains(ph.ID) {
			if err := v.AddPhoto(ph); err != nil {
				restart(err)
				continue
			}
		}
		errV, errCC := tryContact(v, cc)
		if errV != nil {
			restart(errV)
			continue
		}
		if errCC != nil {
			t.Fatalf("kill op %d round %d: victim fine but command center failed: %v", killOp, r, errCC)
		}
	}

	res.digest = v.StateDigest()
	if err := v.Close(); err != nil {
		t.Fatalf("kill op %d: close: %v", killOp, err)
	}
	// A final recovery from disk must reproduce the live state exactly.
	v2, err := open()
	if err != nil {
		t.Fatalf("kill op %d: final recovery: %v", killOp, err)
	}
	defer func() { _ = v2.Close() }()
	if got := v2.StateDigest(); got != res.digest {
		t.Fatalf("kill op %d: recovered digest %x, live digest %x", killOp, got, res.digest)
	}
	res.ccIDs = sortedIDs(cc.Photos())
	res.ops = inj.Ops()
	res.commits = v2.JournalStats().Commits
	return res
}

func equalIDs(a, b []model.PhotoID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosKillSweepConverges is the crash-recovery chaos harness: it kills
// the victim's disk at every distinct mutating operation of the write
// sequence (clean kills and torn final writes), restarts it from disk, and
// requires every run to converge to the reference run bit-for-bit — same
// victim state digest, same delivered set at the command center, no photo
// delivered twice, no commit double-counted.
func TestChaosKillSweepConverges(t *testing.T) {
	const rounds = 4
	wantDigest, wantCC := runReferenceDelivery(t, rounds)
	if len(wantCC) != rounds {
		t.Fatalf("reference delivered %d photos, want %d", len(wantCC), rounds)
	}

	for _, torn := range []bool{false, true} {
		crashed, truncated := 0, int64(0)
		for killOp := 1; ; killOp++ {
			res := runChaosDelivery(t, rounds, killOp, torn)
			if res.digest != wantDigest {
				t.Fatalf("kill op %d (torn=%v): digest %x, want %x", killOp, torn, res.digest, wantDigest)
			}
			if !equalIDs(res.ccIDs, wantCC) {
				t.Fatalf("kill op %d (torn=%v): delivered %v, want %v", killOp, torn, res.ccIDs, wantCC)
			}
			if res.commits != rounds {
				t.Fatalf("kill op %d (torn=%v): %d durable commits, want %d", killOp, torn, res.commits, rounds)
			}
			if res.ops < killOp {
				// The kill never fired: this run exercised the full write
				// sequence, so the sweep is complete.
				if res.restarts != 0 {
					t.Fatalf("clean run restarted %d times", res.restarts)
				}
				break
			}
			crashed++
			truncated += res.truncated
		}
		if crashed == 0 {
			t.Fatalf("torn=%v sweep never crashed — injector miswired", torn)
		}
		if torn && truncated == 0 {
			t.Fatal("torn sweep never exercised tail truncation")
		}
	}
}

// TestDurablePeerRestartPreservesReallocationState pins the peer↔peer path:
// a reallocation's ReplaceAll must survive a restart exactly.
func TestDurablePeerRestartPreservesReallocationState(t *testing.T) {
	m := poiMap()
	dir := t.TempDir()
	v, err := Open(dir, 1, m, 12*mb, WithSeed(101), fixedClock(1000))
	if err != nil {
		t.Fatal(err)
	}
	b := newTestPeer(t, 2, m, 12*mb)
	for i := uint32(0); i < 3; i++ {
		if err := v.AddPhoto(viewFrom(1, i, float64(i)*40)); err != nil {
			t.Fatal(err)
		}
		if err := b.AddPhoto(viewFrom(2, i, float64(i)*40+120)); err != nil {
			t.Fatal(err)
		}
	}
	contact(t, v, b)

	digest := v.StateDigest()
	photos := sortedIDs(v.Photos())
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	v2, err := Open(dir, 1, m, 12*mb, WithSeed(101), fixedClock(1000))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = v2.Close() }()
	if got := v2.StateDigest(); got != digest {
		t.Fatalf("recovered digest %x, want %x", got, digest)
	}
	if got := sortedIDs(v2.Photos()); !equalIDs(got, photos) {
		t.Fatalf("recovered photos %v, want %v", got, photos)
	}
	st := v2.JournalStats()
	if !st.Recovered || st.Commits != 1 {
		t.Fatalf("stats = %+v, want recovered with 1 commit", st)
	}
	// The recovered peer must not re-request photos it already holds: a
	// second contact with an unchanged partner moves nothing and leaves
	// both collections exactly as they were.
	before := sortedIDs(b.Photos())
	contact(t, v2, b)
	if got := sortedIDs(v2.Photos()); !equalIDs(got, photos) {
		t.Fatalf("photos changed across idempotent contact: %v, want %v", got, photos)
	}
	if got := sortedIDs(b.Photos()); !equalIDs(got, before) {
		t.Fatalf("partner photos changed across idempotent contact: %v, want %v", got, before)
	}
}

// TestJournalFailurePoisonsPeer: once the disk dies the peer must refuse
// every further mutation with an ErrJournal-wrapped error instead of
// drifting away from its durable state.
func TestJournalFailurePoisonsPeer(t *testing.T) {
	m := poiMap()
	// Op 1 opens the WAL; op 2 is the first record's write.
	inj := faults.NewDiskInjector(faults.DiskConfig{FailAtOp: 2}, nil)
	v, err := Open(t.TempDir(), 1, m, 8*mb, WithSeed(7), fixedClock(1000), WithJournalFS(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = v.Close() }()

	err = v.AddPhoto(viewFrom(1, 0, 0))
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("AddPhoto on dead disk = %v, want ErrJournal", err)
	}
	if n := len(v.Photos()); n != 0 {
		t.Fatalf("rolled-back admission left %d photos in memory", n)
	}
	if err := v.AddPhoto(viewFrom(1, 1, 10)); !errors.Is(err, ErrJournal) {
		t.Fatalf("poisoned AddPhoto = %v, want ErrJournal", err)
	}
	cc := New(model.CommandCenter, m, 0, WithSeed(8), fixedClock(1000))
	if errV, _ := tryContact(v, cc); !errors.Is(errV, ErrJournal) {
		t.Fatalf("poisoned contact = %v, want ErrJournal", errV)
	}
}

// TestRecoveryObservability: a recovery surfaces through the journal
// counters and an EvPeerRecovery trace event.
func TestRecoveryObservability(t *testing.T) {
	m := poiMap()
	dir := t.TempDir()
	cc := New(model.CommandCenter, m, 0, WithSeed(1), fixedClock(1000))
	v, err := Open(dir, 3, m, 8*mb, WithSeed(2), fixedClock(1000), WithObserver(obs.New(0, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.AddPhoto(viewFrom(3, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if errV, errCC := tryContact(v, cc); errV != nil || errCC != nil {
		t.Fatalf("contact: victim %v, cc %v", errV, errCC)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	o := obs.New(0, nil)
	v2, err := Open(dir, 3, m, 8*mb, WithSeed(2), fixedClock(1000), WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = v2.Close() }()
	if got := o.Counter("journal.recoveries").Value(); got != 1 {
		t.Fatalf("journal.recoveries = %d, want 1", got)
	}
	// One photo admission plus one contact commit were replayed.
	if got := o.Counter("journal.records_replayed").Value(); got != 2 {
		t.Fatalf("journal.records_replayed = %d, want 2", got)
	}
	if got := o.Counter("journal.truncated_bytes").Value(); got != 0 {
		t.Fatalf("journal.truncated_bytes = %d, want 0 for a clean shutdown", got)
	}
	events := o.Trace.Events()
	var recovery *obs.Event
	for i := range events {
		if events[i].Kind == obs.EvPeerRecovery {
			recovery = &events[i]
		}
	}
	if recovery == nil {
		t.Fatalf("no EvPeerRecovery in trace (%d events)", len(events))
	}
	if recovery.A != 3 || recovery.Value != 2 {
		t.Fatalf("recovery event = %+v, want A=3 Value=2", *recovery)
	}
}

// TestCheckpointCompactsPeerJournal: a checkpoint folds the log into the
// snapshot without changing the recovered state.
func TestCheckpointCompactsPeerJournal(t *testing.T) {
	m := poiMap()
	dir := t.TempDir()
	cc := New(model.CommandCenter, m, 0, WithSeed(1), fixedClock(1000))
	v, err := Open(dir, 4, m, 8*mb, WithSeed(2), fixedClock(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.AddPhoto(viewFrom(4, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if errV, errCC := tryContact(v, cc); errV != nil || errCC != nil {
		t.Fatalf("contact: victim %v, cc %v", errV, errCC)
	}
	digest := v.StateDigest()
	if err := v.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	v2, err := Open(dir, 4, m, 8*mb, WithSeed(2), fixedClock(1000))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = v2.Close() }()
	st := v2.JournalStats()
	if st.RecordsReplayed != 0 {
		t.Fatalf("replayed %d records after checkpoint, want 0", st.RecordsReplayed)
	}
	if st.Commits != 1 {
		t.Fatalf("commits = %d, want 1", st.Commits)
	}
	if got := v2.StateDigest(); got != digest {
		t.Fatalf("recovered digest %x, want %x", got, digest)
	}
}

// TestFreshDurablePeerMatchesMemoryPeer: journaling must not change
// behaviour — a fresh durable peer and a memory peer fed the same inputs
// end in the same state.
func TestFreshDurablePeerMatchesMemoryPeer(t *testing.T) {
	m := poiMap()
	mem := New(5, m, 8*mb, WithSeed(2), fixedClock(1000))
	dur, err := Open(t.TempDir(), 5, m, 8*mb, WithSeed(2), fixedClock(1000))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dur.Close() }()
	for _, v := range []*Peer{mem, dur} {
		cc := New(model.CommandCenter, m, 0, WithSeed(1), fixedClock(1000))
		if err := v.AddPhoto(viewFrom(5, 0, 0)); err != nil {
			t.Fatal(err)
		}
		if errV, errCC := tryContact(v, cc); errV != nil || errCC != nil {
			t.Fatalf("contact: victim %v, cc %v", errV, errCC)
		}
	}
	if mem.StateDigest() != dur.StateDigest() {
		t.Fatalf("digest mismatch: memory %x, durable %x", mem.StateDigest(), dur.StateDigest())
	}
	st := dur.JournalStats()
	if !st.Enabled || st.Recovered {
		t.Fatalf("stats = %+v, want enabled and fresh", st)
	}
}
