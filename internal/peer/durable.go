package peer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"photodtn/internal/coverage"
	"photodtn/internal/journal"
	"photodtn/internal/metadata"
	"photodtn/internal/model"
	"photodtn/internal/obs"
	"photodtn/internal/transfer"
	"photodtn/internal/wire"
)

// ErrJournal reports that the peer's durable state is broken: the journal
// could not be opened or recovered, or a commit append failed mid-life. A
// peer in this state refuses every mutating operation — continuing in
// memory while the disk silently diverges is exactly the failure mode a
// write-ahead log exists to prevent. The wrapped cause is in the chain.
var ErrJournal = errors.New("peer: journal unavailable")

// DefaultSnapshotEvery is how many committed contacts a peer journals
// before compacting the log into an atomic snapshot.
const DefaultSnapshotEvery = 32

// WithJournal makes the peer durable: all state the contact protocol
// depends on — the photo store, the metadata cache, PROPHET delivery
// predictabilities, the learned contact rate, and delivery
// acknowledgements — is journaled to dir and recovered on the next
// construction with the same dir. Recovery failures are sticky: the peer
// is created but every mutating call returns ErrJournal (use Open to get
// the error directly).
func WithJournal(dir string) Option {
	return optionFunc(func(p *Peer) { p.stateDir = dir })
}

// WithJournalFS overrides the filesystem the journal writes through
// (fault-injection tests plug a faults.DiskInjector in here). It only has
// an effect together with WithJournal.
func WithJournalFS(fs journal.FS) Option {
	return optionFunc(func(p *Peer) { p.jfs = fs })
}

// WithSnapshotEvery overrides how many committed contacts trigger a
// snapshot + log compaction (default DefaultSnapshotEvery; v < 1 disables
// automatic snapshots — the log grows until Checkpoint is called).
func WithSnapshotEvery(v int) Option {
	return optionFunc(func(p *Peer) { p.snapEvery = v })
}

// Open creates a durable peer rooted at dir, recovering any state a
// previous incarnation journaled there. It is New with WithJournal(dir)
// plus explicit recovery error reporting.
func Open(dir string, id model.NodeID, m *coverage.Map, capacity int64, opts ...Option) (*Peer, error) {
	p := New(id, m, capacity, append([]Option{WithJournal(dir)}, opts...)...)
	if err := p.JournalError(); err != nil {
		return nil, err
	}
	return p, nil
}

// JournalError returns the sticky journal failure, if any (nil for
// memory-only peers and healthy durable peers).
func (p *Peer) JournalError() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.journalErr
}

// JournalStats describes a durable peer's recovery and commit history.
type JournalStats struct {
	// Enabled reports whether the peer journals at all.
	Enabled bool
	// Recovered reports whether the last Open found prior state on disk.
	Recovered bool
	// Commits is the number of durably committed contacts, including
	// those recovered from disk.
	Commits uint64
	// RecordsReplayed is the number of journal records replayed on top of
	// the snapshot during recovery.
	RecordsReplayed int
	// TruncatedBytes is the torn/corrupt tail recovery cut from the log.
	TruncatedBytes int64
}

// JournalStats returns the peer's durability statistics (zero for
// memory-only peers).
func (p *Peer) JournalStats() JournalStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := JournalStats{Commits: p.commits}
	if p.jnl == nil {
		s.Enabled = p.stateDir != ""
		return s
	}
	js := p.jnl.Stats()
	s.Enabled = true
	s.Recovered = js.Recovered
	s.RecordsReplayed = js.Records
	s.TruncatedBytes = js.TruncatedBytes
	return s
}

// Checkpoint forces a snapshot + log compaction now (also done
// automatically every WithSnapshotEvery commits). It is a no-op for
// memory-only peers.
func (p *Peer) Checkpoint() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.jnl == nil {
		return p.journalErr
	}
	return p.checkpointLocked()
}

// Close releases the journal handle (the state stays recoverable on
// disk). Memory-only peers close trivially.
func (p *Peer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.jnl == nil {
		return nil
	}
	err := p.jnl.Close()
	p.jnl = nil
	return err
}

// StateDigest returns an order-insensitive FNV-1a digest of the protocol
// state a restart must preserve: the photo collection, the metadata cache,
// the PROPHET table, and the learned contact rates. Two peers with equal
// digests hold the same photos, believe the same snapshots, and advertise
// the same probabilities — the recovery invariant the chaos harness pins.
func (p *Peer) StateDigest() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := fnv.New64a()
	buf := make([]byte, 0, 4096)

	photos := p.store.List()
	sort.Slice(photos, func(i, j int) bool { return photos[i].ID < photos[j].ID })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(photos)))
	for _, ph := range photos {
		buf = ph.AppendBinary(buf)
	}

	entries := p.cache.Entries()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Node))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Lambda))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.P))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Timestamp))
		ids := e.Photos.IDs()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
		for _, id := range ids {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
		}
	}

	table := p.table.Snapshot()
	dsts := make([]model.NodeID, 0, len(table))
	for dst := range table {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.table.LastAged()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dsts)))
	for _, dst := range dsts {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(dst))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(table[dst]))
	}

	rs := p.rate.Snapshot()
	peers := make([]model.NodeID, 0, len(rs.PerPeer))
	for peer := range rs.PerPeer {
		peers = append(peers, peer)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	if rs.Started {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rs.Start))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(peers)))
	for _, peer := range peers {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(peer))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rs.PerPeer[peer]))
	}

	_, _ = h.Write(buf)
	return h.Sum64()
}

// Journal record types.
const (
	// recPhotoAdd journals one locally captured photo (AddPhoto).
	recPhotoAdd byte = 1
	// recContactCommit journals one completed contact as an atomic batch
	// of sub-records — a contact that dies mid-protocol leaves no durable
	// trace, matching the live protocol's discard-unfinished semantics.
	recContactCommit byte = 2
	// recFragment journals transfer-fragment events (wire v2 resume). They
	// live deliberately OUTSIDE contact atomicity: a chunk that landed in a
	// contact that later aborts is exactly the progress resume exists to
	// save, so each fresh chunk is durable the moment it is accepted. The
	// photo itself still only enters storage via a recContactCommit, which
	// keeps §III-D's photo-level atomicity intact.
	recFragment byte = 3
	// recGuard journals guard events — today only quarantine impositions,
	// so a restarted peer keeps refusing a banned remote for the rest of
	// its TTL. Like fragments they sit outside contact atomicity: the
	// offending contact aborts and journals nothing else, but the ban must
	// survive. Replay with the guard disabled skips them silently.
	recGuard byte = 4
)

// Guard sub-kinds inside a recGuard record.
const (
	// guardQuarantine: one quarantine imposition (payload:
	// [node u32][until f64][reason u8]).
	guardQuarantine byte = 1
)

// Fragment sub-kinds inside a recFragment record.
const (
	// fragPut: one fresh chunk unioned into a partial (payload: the wire
	// chunk body). Replay is idempotent; a replayed chunk whose assembly
	// fails the whole-photo checksum converges to the same drop the live
	// path took.
	fragPut byte = 1
	// fragDrop: a partial released at commit reconciliation (payload: the
	// photo ID), so replay does not resurrect partials whose photo was
	// admitted or delivered.
	fragDrop byte = 2
)

func encodeFragPut(c wire.Chunk) []byte {
	return wire.AppendChunk([]byte{fragPut}, c)
}

func encodeFragDrop(id model.PhotoID) []byte {
	return binary.LittleEndian.AppendUint64([]byte{fragDrop}, uint64(id))
}

// Sub-record kinds inside a contact commit.
const (
	// subEncounter: rate observation + PROPHET encounter + transitivity
	// with the advertised delivery probability.
	subEncounter byte = 1
	// subMetaPut: one metadata cache Put.
	subMetaPut byte = 2
	// subMetaDrop: DropInvalid at the session time.
	subMetaDrop byte = 3
	// subStoreReplace: the §III-D reallocation's ReplaceAll.
	subStoreReplace byte = 4
	// subStoreAdd: one photo stored (command-center upload receipt).
	subStoreAdd byte = 5
	// subAckDelivered: delivery acknowledgement — photos leave the store
	// and join the command-center cache entry.
	subAckDelivered byte = 6
)

// openJournal opens/recovers the journal configured by WithJournal. It
// runs at the end of New, after every option and default is in place.
func (p *Peer) openJournal() error {
	j, err := journal.Open(p.stateDir, &journal.Options{FS: p.jfs})
	if err != nil {
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	if snap := j.Snapshot(); snap != nil {
		if err := p.restoreSnapshot(snap); err != nil {
			_ = j.Close()
			return fmt.Errorf("%w: restore snapshot: %w", ErrJournal, err)
		}
	}
	for i, rec := range j.Records() {
		if err := p.replayRecord(rec); err != nil {
			_ = j.Close()
			return fmt.Errorf("%w: replay record %d (seq %d): %w", ErrJournal, i, rec.Seq, err)
		}
	}
	p.jnl = j
	// Replayed fragments may belong to photos the replayed commits already
	// admitted or delivered; settle them the same way a live commit would.
	if err := p.reconcileFragsLocked(); err != nil {
		_ = j.Close()
		p.jnl = nil
		return err
	}
	if st := j.Stats(); st.Recovered {
		p.obsv.Counter("journal.recoveries").Inc()
		p.obsv.Counter("journal.records_replayed").Add(int64(st.Records))
		p.obsv.Counter("journal.truncated_bytes").Add(st.TruncatedBytes)
		p.obsv.Emit(obs.Event{
			Time: p.clock(), Kind: obs.EvPeerRecovery,
			A: int32(p.id), B: obs.NoNode, Photo: obs.NoPhoto,
			Value: float64(st.Records),
		})
	}
	return nil
}

// --- sub-record payload encoders (shared by sessions and replay tests) ---

func encodeEncounter(peer model.NodeID, now, deliveryProb float64) []byte {
	buf := make([]byte, 0, 4+8+8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(peer))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(now))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(deliveryProb))
	return buf
}

func encodeMetaDrop(now float64) []byte {
	return binary.LittleEndian.AppendUint64(nil, math.Float64bits(now))
}

func encodeAckDelivered(session float64, acked model.PhotoList) []byte {
	buf := binary.LittleEndian.AppendUint64(nil, math.Float64bits(session))
	return acked.AppendBinary(buf)
}

// reconcileFragsLocked drops tracked partials whose photo no longer needs
// reassembly: admitted to the photo store (the progress paid off) or
// already delivered to the command center per its authoritative snapshot
// (the progress is dead weight — wasted). It runs under the peer lock at
// every contact commit and once after recovery; each drop is journaled so
// a replay converges to the same store.
func (p *Peer) reconcileFragsLocked() error {
	ids := p.frags.IDs()
	if len(ids) == 0 {
		return nil
	}
	var delivered model.PhotoList
	if e, ok := p.cache.Get(model.CommandCenter); ok {
		delivered = e.Photos
	}
	for _, id := range ids {
		var wasted bool
		switch {
		case p.store.Has(id):
			wasted = false
		case delivered.Contains(id):
			wasted = true
		default:
			continue
		}
		if p.jnl != nil {
			if err := p.jnl.Append(recFragment, encodeFragDrop(id)); err != nil {
				p.journalErr = fmt.Errorf("%w: journal fragment drop: %w", ErrJournal, err)
				return p.journalErr
			}
		}
		if n := p.frags.Drop(id, wasted); wasted && n > 0 {
			p.cWastedBytes.Add(n)
		}
	}
	return nil
}

// noteCommitLocked does the bookkeeping after a contact commit's journal
// append succeeded (or for a memory-only peer, after its in-memory apply):
// commit counters and the periodic snapshot compaction.
func (p *Peer) noteCommitLocked() error {
	if p.jnl == nil {
		return nil
	}
	p.commits++
	p.sinceSnap++
	p.obsv.Counter("journal.commits").Inc()
	if p.snapEvery > 0 && p.sinceSnap >= p.snapEvery {
		return p.checkpointLocked()
	}
	return nil
}

// checkpointLocked writes an atomic snapshot and compacts the log.
func (p *Peer) checkpointLocked() error {
	if err := p.jnl.Checkpoint(p.encodeSnapshot()); err != nil {
		p.journalErr = fmt.Errorf("%w: checkpoint: %w", ErrJournal, err)
		return p.journalErr
	}
	p.sinceSnap = 0
	p.obsv.Counter("journal.checkpoints").Inc()
	return nil
}

// --- snapshot encoding ---

// peerSnapVersion 2 added the transfer-fragment section (wire v2 resume);
// version 3 added the guard's active quarantines. Restore still accepts
// older images, which simply have no fragments / no quarantines.
const peerSnapVersion = 3

// encodeSnapshot serialises the peer's full protocol state, reusing the
// wire/model append codecs.
func (p *Peer) encodeSnapshot() []byte {
	buf := []byte{peerSnapVersion}
	buf = p.store.List().AppendBinary(buf)

	entries := p.cache.Entries()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = wire.AppendMetaEntry(buf, wire.MetaEntry{
			Node: e.Node, Lambda: e.Lambda, P: e.P, Timestamp: e.Timestamp, Photos: e.Photos,
		})
	}

	table := p.table.Snapshot()
	dsts := make([]model.NodeID, 0, len(table))
	for dst := range table {
		dsts = append(dsts, dst)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.table.LastAged()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dsts)))
	for _, dst := range dsts {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(dst))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(table[dst]))
	}

	rs := p.rate.Snapshot()
	peers := make([]model.NodeID, 0, len(rs.PerPeer))
	for peer := range rs.PerPeer {
		peers = append(peers, peer)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	if rs.Started {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(rs.Start))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(peers)))
	for _, peer := range peers {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(peer))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rs.PerPeer[peer]))
	}

	// v2: the reassembly store's partials (bitmap length and data length
	// are derived from the geometry, so neither is encoded).
	frags := p.frags.Export()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(frags)))
	for _, f := range frags {
		buf = f.Photo.AppendBinary(buf)
		buf = binary.LittleEndian.AppendUint32(buf, f.ChunkSize)
		buf = binary.LittleEndian.AppendUint32(buf, f.Count)
		buf = binary.LittleEndian.AppendUint64(buf, f.Total)
		buf = binary.LittleEndian.AppendUint32(buf, f.PayloadCRC)
		buf = append(buf, f.Bitmap...)
		buf = append(buf, f.Data...)
	}

	// v3: the guard's active quarantines (empty when the guard is off —
	// arming it later starts with a clean slate, which is the conservative
	// direction).
	quars := p.guard.ActiveQuarantines(p.clock())
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(quars)))
	for _, q := range quars {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(q.Node))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(q.Until))
	}

	return binary.LittleEndian.AppendUint64(buf, p.commits)
}

// restoreSnapshot rebuilds the peer's state from an encodeSnapshot image.
func (p *Peer) restoreSnapshot(buf []byte) error {
	if len(buf) < 1 {
		return errors.New("empty snapshot")
	}
	ver := buf[0]
	if ver != 1 && ver != peerSnapVersion {
		return fmt.Errorf("snapshot version %d, want 1..%d", ver, peerSnapVersion)
	}
	buf = buf[1:]

	photos, buf, err := model.DecodePhotoList(buf)
	if err != nil {
		return fmt.Errorf("snapshot photos: %w", err)
	}
	if err := p.store.ReplaceAll(photos); err != nil {
		return fmt.Errorf("snapshot photos: %w", err)
	}

	if len(buf) < 4 {
		return errors.New("snapshot cache header")
	}
	n := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	for i := uint32(0); i < n; i++ {
		var e wire.MetaEntry
		e, buf, err = wire.DecodeMetaEntry(buf)
		if err != nil {
			return fmt.Errorf("snapshot cache entry %d: %w", i, err)
		}
		p.cache.Put(metadata.Entry{
			Node: e.Node, Lambda: e.Lambda, P: e.P, Timestamp: e.Timestamp, Photos: e.Photos,
		})
	}

	if len(buf) < 8+4 {
		return errors.New("snapshot table header")
	}
	lastAged := math.Float64frombits(binary.LittleEndian.Uint64(buf))
	n = binary.LittleEndian.Uint32(buf[8:])
	buf = buf[12:]
	if uint64(len(buf)) < uint64(n)*12 {
		return errors.New("snapshot table entries")
	}
	table := make(map[model.NodeID]float64, n)
	for i := uint32(0); i < n; i++ {
		dst := model.NodeID(binary.LittleEndian.Uint32(buf))
		table[dst] = math.Float64frombits(binary.LittleEndian.Uint64(buf[4:]))
		buf = buf[12:]
	}
	p.table.Restore(table, lastAged)

	if len(buf) < 1+8+4 {
		return errors.New("snapshot rate header")
	}
	rs := metadata.RateSnapshot{
		Started: buf[0] == 1,
		Start:   math.Float64frombits(binary.LittleEndian.Uint64(buf[1:])),
	}
	n = binary.LittleEndian.Uint32(buf[9:])
	buf = buf[13:]
	if uint64(len(buf)) < uint64(n)*8 {
		return errors.New("snapshot rate entries")
	}
	if n > 0 {
		rs.PerPeer = make(map[model.NodeID]int, n)
	}
	for i := uint32(0); i < n; i++ {
		peer := model.NodeID(binary.LittleEndian.Uint32(buf))
		rs.PerPeer[peer] = int(binary.LittleEndian.Uint32(buf[4:]))
		buf = buf[8:]
	}
	p.rate.Restore(rs)

	if ver >= 2 {
		if len(buf) < 4 {
			return errors.New("snapshot fragment header")
		}
		n = binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		for i := uint32(0); i < n; i++ {
			var f transfer.Fragment
			var err error
			f.Photo, buf, err = model.DecodePhoto(buf)
			if err != nil {
				return fmt.Errorf("snapshot fragment %d: %w", i, err)
			}
			if len(buf) < 4+4+8+4 {
				return fmt.Errorf("snapshot fragment %d: geometry header", i)
			}
			f.ChunkSize = binary.LittleEndian.Uint32(buf)
			f.Count = binary.LittleEndian.Uint32(buf[4:])
			f.Total = binary.LittleEndian.Uint64(buf[8:])
			f.PayloadCRC = binary.LittleEndian.Uint32(buf[16:])
			buf = buf[20:]
			bm := (int(f.Count) + 7) / 8
			if f.Count > uint32(wire.MaxChunks) || uint64(len(buf)) < uint64(bm)+f.Total {
				return fmt.Errorf("snapshot fragment %d: truncated", i)
			}
			f.Bitmap, buf = buf[:bm:bm], buf[bm:]
			f.Data, buf = buf[:f.Total:f.Total], buf[f.Total:]
			if err := p.frags.Import(f); err != nil {
				return fmt.Errorf("snapshot fragment %d: %w", i, err)
			}
		}
	}

	if ver >= 3 {
		if len(buf) < 4 {
			return errors.New("snapshot quarantine header")
		}
		n = binary.LittleEndian.Uint32(buf)
		buf = buf[4:]
		if uint64(len(buf)) < uint64(n)*12 {
			return errors.New("snapshot quarantine entries")
		}
		for i := uint32(0); i < n; i++ {
			node := model.NodeID(binary.LittleEndian.Uint32(buf))
			until := math.Float64frombits(binary.LittleEndian.Uint64(buf[4:]))
			buf = buf[12:]
			if p.guard != nil {
				p.guard.RestoreQuarantine(node, until, p.clock())
			}
		}
	}

	if len(buf) != 8 {
		return fmt.Errorf("snapshot trailer: %d bytes", len(buf))
	}
	p.commits = binary.LittleEndian.Uint64(buf)
	return nil
}

// --- record replay ---

// replayRecord applies one recovered journal record.
func (p *Peer) replayRecord(rec journal.Record) error {
	switch rec.Type {
	case recPhotoAdd:
		photo, rest, err := model.DecodePhoto(rec.Payload)
		if err != nil {
			return fmt.Errorf("photo add: %w", err)
		}
		if len(rest) != 0 {
			return fmt.Errorf("photo add: %d trailing bytes", len(rest))
		}
		if err := p.store.Add(photo); err != nil {
			return fmt.Errorf("photo add: %w", err)
		}
		return nil
	case recContactCommit:
		if err := p.peerState.applyOps(rec.Payload); err != nil {
			return err
		}
		p.commits++
		return nil
	case recFragment:
		if len(rec.Payload) < 1 {
			return errors.New("fragment record: empty")
		}
		sub, body := rec.Payload[0], rec.Payload[1:]
		switch sub {
		case fragPut:
			c, err := wire.DecodeChunk(body)
			if err != nil {
				return fmt.Errorf("fragment put: %w", err)
			}
			if _, err := p.frags.Add(c); err != nil && !errors.Is(err, transfer.ErrChecksum) {
				return fmt.Errorf("fragment put: %w", err)
			}
			return nil
		case fragDrop:
			if len(body) != 8 {
				return fmt.Errorf("fragment drop: %d bytes", len(body))
			}
			p.frags.Drop(model.PhotoID(binary.LittleEndian.Uint64(body)), false)
			return nil
		default:
			return fmt.Errorf("unknown fragment sub-kind %d", sub)
		}
	case recGuard:
		if len(rec.Payload) < 1 {
			return errors.New("guard record: empty")
		}
		sub, body := rec.Payload[0], rec.Payload[1:]
		switch sub {
		case guardQuarantine:
			if len(body) != 4+8+1 {
				return fmt.Errorf("guard quarantine: %d bytes", len(body))
			}
			if p.guard != nil {
				node := model.NodeID(binary.LittleEndian.Uint32(body))
				until := math.Float64frombits(binary.LittleEndian.Uint64(body[4:]))
				p.guard.RestoreQuarantine(node, until, p.clock())
			}
			return nil
		default:
			return fmt.Errorf("unknown guard sub-kind %d", sub)
		}
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
}

// applyOps applies a framed batch of contact sub-records in order. It is
// the single mutation path shared by crash recovery (replaying journaled
// commits), a session's private clone (mutations recorded mid-contact), and
// the live commit (re-applying the session's ops under the peer lock) — so
// a recovered peer converges on the same state the live path produced.
func (st peerState) applyOps(buf []byte) error {
	for len(buf) > 0 {
		if len(buf) < 5 {
			return fmt.Errorf("contact sub-record header: %d bytes", len(buf))
		}
		kind := buf[0]
		n := binary.LittleEndian.Uint32(buf[1:])
		buf = buf[5:]
		if uint64(len(buf)) < uint64(n) {
			return fmt.Errorf("contact sub-record %d: claims %d bytes, has %d", kind, n, len(buf))
		}
		payload := buf[:n]
		buf = buf[n:]
		if err := st.apply(kind, payload); err != nil {
			return fmt.Errorf("contact sub-record %d: %w", kind, err)
		}
	}
	return nil
}

// apply executes one contact sub-record against the state bundle.
func (st peerState) apply(kind byte, payload []byte) error {
	switch kind {
	case subEncounter:
		if len(payload) != 4+8+8 {
			return fmt.Errorf("encounter payload %d bytes", len(payload))
		}
		peer := model.NodeID(binary.LittleEndian.Uint32(payload))
		now := math.Float64frombits(binary.LittleEndian.Uint64(payload[4:]))
		dp := math.Float64frombits(binary.LittleEndian.Uint64(payload[12:]))
		st.rate.Observe(peer, now)
		st.table.Encounter(peer, now)
		st.table.Transitive(peer, map[model.NodeID]float64{model.CommandCenter: dp})
		return nil
	case subMetaPut:
		e, rest, err := wire.DecodeMetaEntry(payload)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("%d trailing bytes", len(rest))
		}
		st.cache.Put(metadata.Entry{
			Node: e.Node, Lambda: e.Lambda, P: e.P, Timestamp: e.Timestamp, Photos: e.Photos,
		})
		return nil
	case subMetaDrop:
		if len(payload) != 8 {
			return fmt.Errorf("drop payload %d bytes", len(payload))
		}
		st.cache.DropInvalid(math.Float64frombits(binary.LittleEndian.Uint64(payload)))
		return nil
	case subStoreReplace:
		final, rest, err := model.DecodePhotoList(payload)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("%d trailing bytes", len(rest))
		}
		return st.store.ReplaceAll(final)
	case subStoreAdd:
		photo, rest, err := model.DecodePhoto(payload)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("%d trailing bytes", len(rest))
		}
		return st.store.Add(photo)
	case subAckDelivered:
		if len(payload) < 8 {
			return fmt.Errorf("ack payload %d bytes", len(payload))
		}
		session := math.Float64frombits(binary.LittleEndian.Uint64(payload))
		acked, rest, err := model.DecodePhotoList(payload[8:])
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("%d trailing bytes", len(rest))
		}
		for _, photo := range acked {
			st.store.Remove(photo.ID)
		}
		st.cache.Put(metadata.Entry{
			Node:      model.CommandCenter,
			Photos:    acked,
			Timestamp: session,
		})
		return nil
	default:
		return errors.New("unknown sub-record kind")
	}
}
