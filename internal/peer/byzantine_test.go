package peer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"photodtn/internal/faults"
	"photodtn/internal/guard"
	"photodtn/internal/model"
)

// byzNode is the identity every adversary claims.
const byzNode = model.NodeID(99)

// byzFrameTimeout bounds honest-side reads so a walked-away or frame-lossy
// adversary costs milliseconds, not the 30s default.
const byzFrameTimeout = 300 * time.Millisecond

func byzGuardOpts() []Option {
	return []Option{
		WithGuard(guard.Config{}),
		WithFrameTimeout(byzFrameTimeout),
	}
}

// runByzContact runs one adversarial contact: the adversary dials (it is
// always the initiator), the honest peer serves. lossProb > 0 puts a lossy
// transport under the adversary's writes. It returns the honest side's
// error — the property under test lives entirely on that side.
func runByzContact(t *testing.T, honest *Peer, adv *faults.ByzantinePeer, lossProb float64, seed int64) error {
	t.Helper()
	ca, cb := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { _ = ca.Close() }()
		var rw io.ReadWriter = ca
		if lossProb > 0 {
			rw = faults.NewTransport(ca, lossProb, 0, seed)
		}
		_ = adv.Contact(rw) // the adversary's own error view is informational
	}()
	err := honest.ContactConn(cb, false)
	_ = cb.Close()
	wg.Wait()
	return err
}

// byzFixture builds the sweep's honest world: a participant holding three
// distinct views and a command center, on fixed clocks with deterministic
// seeds, so two identically-driven fixtures land on identical digests.
func byzFixture(t *testing.T, opts ...Option) (v, cc *Peer) {
	t.Helper()
	m := poiMap()
	v = newTestPeer(t, 1, m, 64*mb, opts...)
	cc = newTestPeer(t, model.CommandCenter, m, 0, opts...)
	for i := uint32(0); i < 3; i++ {
		if err := v.AddPhoto(viewFrom(1, i, float64(i)*40)); err != nil {
			t.Fatal(err)
		}
	}
	return v, cc
}

// byzBaseline runs the adversary-free reference: the participant uploads to
// the command center. It returns the participant's digest and the command
// center's delivered photo IDs — what every adversarial run must reproduce.
func byzBaseline(t *testing.T, opts ...Option) (uint64, []model.PhotoID) {
	t.Helper()
	v, cc := byzFixture(t, opts...)
	if errV, errCC := tryContact(v, cc); errV != nil || errCC != nil {
		t.Fatalf("baseline contact: victim %v, cc %v", errV, errCC)
	}
	return v.StateDigest(), sortedIDs(cc.Photos())
}

// TestByzantineSweep is the tentpole's property harness: every adversary
// strategy, clean and under 30% frame loss, against a guarded honest node.
// No strategy may perturb the honest node's durable protocol state — its
// StateDigest stays at the pre-attack value, and a subsequent honest upload
// delivers exactly the adversary-free photo set, with no duplicates.
func TestByzantineSweep(t *testing.T) {
	wantDigest, wantIDs := byzBaseline(t, byzGuardOpts()...)
	for _, strat := range faults.ByzStrategies() {
		for _, loss := range []float64{0, 0.3} {
			strat, loss := strat, loss
			t.Run(fmt.Sprintf("%v/loss=%v", strat, loss), func(t *testing.T) {
				v, cc := byzFixture(t, byzGuardOpts()...)
				pre := v.StateDigest()
				for i := 0; i < 3; i++ {
					adv := &faults.ByzantinePeer{
						Node: byzNode, Strategy: strat,
						Time: 1000, Seed: int64(i) + 7,
					}
					err := runByzContact(t, v, adv, loss, int64(i)+40)
					if err == nil {
						t.Fatalf("adversarial contact %d succeeded", i)
					}
					if loss == 0 && strat != faults.ByzFlood && i < 2 {
						// The first two clean semantic attacks must die as
						// typed protocol violations (the third may already
						// hit the quarantine instead).
						if !errors.Is(err, ErrProtocolViolation) {
							t.Fatalf("contact %d err = %v, want ErrProtocolViolation", i, err)
						}
					}
				}
				if got := v.StateDigest(); got != pre {
					t.Fatalf("adversary perturbed honest state: digest %x, want %x", got, pre)
				}
				if loss == 0 && strat != faults.ByzFlood {
					// Three weight-1 violations cross the default score
					// threshold: the adversary is now quarantined.
					st := v.GuardStats()
					if st.QuarantineEvents != 1 || st.Quarantined != 1 {
						t.Fatalf("guard stats after clean sweep = %+v", st)
					}
					err := runByzContact(t, v, &faults.ByzantinePeer{
						Node: byzNode, Strategy: strat, Time: 1000, Seed: 77,
					}, 0, 99)
					if !errors.Is(err, ErrPeerQuarantined) {
						t.Fatalf("post-quarantine contact err = %v, want ErrPeerQuarantined", err)
					}
				}
				// The honest upload after the attacks delivers exactly the
				// adversary-free set.
				if errV, errCC := tryContact(v, cc); errV != nil || errCC != nil {
					t.Fatalf("honest upload after attacks: victim %v, cc %v", errV, errCC)
				}
				if got := v.StateDigest(); got != wantDigest {
					t.Fatalf("post-attack digest %x, want baseline %x", got, wantDigest)
				}
				gotIDs := sortedIDs(cc.Photos())
				if len(gotIDs) != len(wantIDs) {
					t.Fatalf("delivered %v, want %v", gotIDs, wantIDs)
				}
				for i := range gotIDs {
					if gotIDs[i] != wantIDs[i] {
						t.Fatalf("delivered %v, want %v", gotIDs, wantIDs)
					}
					if i > 0 && gotIDs[i] == gotIDs[i-1] {
						t.Fatalf("duplicate delivery of %v", gotIDs[i])
					}
				}
			})
		}
	}
}

// TestByzantineFloodQuarantine pins the rate-limiting escalation: a flooding
// peer is first shed with ErrRateLimited, and sustained flooding crosses the
// misbehavior threshold into a quarantine.
func TestByzantineFloodQuarantine(t *testing.T) {
	m := poiMap()
	v := newTestPeer(t, 1, m, 64*mb,
		WithGuard(guard.Config{MaxContactRate: 0.001, ContactBurst: 2, QuarantineScore: 1}),
		WithFrameTimeout(byzFrameTimeout))
	adv := func(seed int64) *faults.ByzantinePeer {
		return &faults.ByzantinePeer{Node: byzNode, Strategy: faults.ByzFlood, Time: 1000, Seed: seed}
	}
	// The burst admits two contacts (which abort when the adversary walks
	// away mid-protocol — that is not a violation).
	for i := int64(0); i < 2; i++ {
		if err := runByzContact(t, v, adv(i), 0, i); errors.Is(err, ErrRateLimited) {
			t.Fatalf("contact %d shed inside the burst: %v", i, err)
		}
	}
	// The bucket is dry (the clock is frozen, so it never refills): sheds
	// with ErrRateLimited, each scoring a soft flood violation, until the
	// threshold quarantines.
	sawShed := false
	for i := int64(2); i < 8; i++ {
		err := runByzContact(t, v, adv(i), 0, i)
		if errors.Is(err, ErrPeerQuarantined) {
			if !sawShed {
				t.Fatal("quarantined before any rate-limit shed")
			}
			st := v.GuardStats()
			if st.QuarantineEvents != 1 || st.ShedContacts == 0 {
				t.Fatalf("guard stats = %+v", st)
			}
			return
		}
		if !errors.Is(err, ErrRateLimited) {
			t.Fatalf("contact %d err = %v, want ErrRateLimited", i, err)
		}
		sawShed = true
	}
	t.Fatal("sustained flooding never escalated to quarantine")
}

// TestByzantineQuarantinePersistence pins the durable half: a quarantine
// imposed mid-run survives a close/reopen through journal replay alone (no
// checkpoint), and again through the snapshot path, while the aborted
// adversarial contacts journal no commits at all.
func TestByzantineQuarantinePersistence(t *testing.T) {
	m := poiMap()
	dir := t.TempDir()
	opts := []Option{
		WithSeed(101), fixedClock(1000),
		WithGuard(guard.Config{QuarantineScore: 1, QuarantineTTL: 5000}),
		WithFrameTimeout(byzFrameTimeout),
	}
	v, err := Open(dir, 1, m, 64*mb, opts...)
	if err != nil {
		t.Fatal(err)
	}
	adv := &faults.ByzantinePeer{Node: byzNode, Strategy: faults.ByzAbsurdClaim, Time: 1000, Seed: 3}
	if err := runByzContact(t, v, adv, 0, 1); !errors.Is(err, ErrProtocolViolation) {
		t.Fatalf("attack err = %v, want ErrProtocolViolation", err)
	}
	if st := v.GuardStats(); st.QuarantineEvents != 1 || st.Quarantined != 1 {
		t.Fatalf("guard stats = %+v", st)
	}
	if c := v.JournalStats().Commits; c != 0 {
		t.Fatalf("aborted adversarial contact journaled %d commits", c)
	}
	// Close without checkpointing: recovery must find the quarantine in the
	// journal records, not a snapshot.
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(dir, 1, m, 64*mb, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if st := v2.GuardStats(); st.Quarantined != 1 {
		t.Fatalf("journal replay lost the quarantine: stats = %+v", st)
	}
	if err := runByzContact(t, v2, adv, 0, 2); !errors.Is(err, ErrPeerQuarantined) {
		t.Fatalf("post-restart contact err = %v, want ErrPeerQuarantined", err)
	}
	// Checkpoint and reopen: the snapshot path must carry it too.
	if err := v2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}
	v3, err := Open(dir, 1, m, 64*mb, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = v3.Close() }()
	if st := v3.GuardStats(); st.Quarantined != 1 {
		t.Fatalf("snapshot lost the quarantine: stats = %+v", st)
	}
	if err := runByzContact(t, v3, adv, 0, 3); !errors.Is(err, ErrPeerQuarantined) {
		t.Fatalf("post-snapshot contact err = %v, want ErrPeerQuarantined", err)
	}
}

// TestQuarantineRecordsSkippedWithoutGuard pins forward compatibility: a
// journal holding quarantine records replays cleanly on a peer opened with
// the guard disabled (the records are skipped, everything else recovers).
func TestQuarantineRecordsSkippedWithoutGuard(t *testing.T) {
	m := poiMap()
	dir := t.TempDir()
	guarded := []Option{
		WithSeed(101), fixedClock(1000),
		WithGuard(guard.Config{QuarantineScore: 1, QuarantineTTL: 5000}),
		WithFrameTimeout(byzFrameTimeout),
	}
	v, err := Open(dir, 1, m, 64*mb, guarded...)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	adv := &faults.ByzantinePeer{Node: byzNode, Strategy: faults.ByzAbsurdClaim, Time: 1000, Seed: 3}
	if err := runByzContact(t, v, adv, 0, 1); err == nil {
		t.Fatal("attack succeeded")
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(dir, 1, m, 64*mb, WithSeed(101), fixedClock(1000))
	if err != nil {
		t.Fatalf("unguarded reopen over guard records: %v", err)
	}
	defer func() { _ = v2.Close() }()
	if v2.GuardEnabled() {
		t.Fatal("guard armed without WithGuard")
	}
	if len(v2.Photos()) != 1 {
		t.Fatalf("recovered %d photos, want 1", len(v2.Photos()))
	}
}

// TestGuardDisabledNoOp pins the strict no-op contract: a peer without
// WithGuard behaves identically to one with it on honest traffic (same
// digests), reports no guard state, and still aborts adversarial contacts
// under the pre-guard §III-D rule with nothing applied.
func TestGuardDisabledNoOp(t *testing.T) {
	plainDigest, plainIDs := byzBaseline(t, WithFrameTimeout(byzFrameTimeout))
	guardDigest, guardIDs := byzBaseline(t, byzGuardOpts()...)
	if plainDigest != guardDigest {
		t.Fatalf("guard changed honest outcome: %x vs %x", guardDigest, plainDigest)
	}
	if len(plainIDs) != len(guardIDs) {
		t.Fatalf("guard changed delivery: %v vs %v", guardIDs, plainIDs)
	}
	for i := range plainIDs {
		if plainIDs[i] != guardIDs[i] {
			t.Fatalf("guard changed delivery: %v vs %v", guardIDs, plainIDs)
		}
	}

	// Adversaries against an unguarded peer: contacts still abort (decode
	// and turn-order checks predate the guard) and still apply nothing.
	v, _ := byzFixture(t, WithFrameTimeout(byzFrameTimeout))
	pre := v.StateDigest()
	for i, strat := range faults.ByzStrategies() {
		adv := &faults.ByzantinePeer{Node: byzNode, Strategy: strat, Time: 1000, Seed: int64(i)}
		if err := runByzContact(t, v, adv, 0, int64(i)); err == nil {
			t.Fatalf("%v against unguarded peer succeeded", strat)
		}
	}
	if got := v.StateDigest(); got != pre {
		t.Fatalf("unguarded digest moved: %x, want %x", got, pre)
	}
	if v.GuardEnabled() {
		t.Fatal("GuardEnabled without WithGuard")
	}
	if st := v.GuardStats(); st.Violations != 0 || st.Quarantined != 0 {
		t.Fatalf("disabled guard reported stats %+v", st)
	}
}

// TestByzantineMemoryBounded pins the resource property: absurd size claims
// and poisoned metadata, hammered repeatedly, must not balloon the honest
// node's heap — the claims are rejected before any claim-proportional
// allocation.
func TestByzantineMemoryBounded(t *testing.T) {
	v, _ := byzFixture(t, byzGuardOpts()...)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 20; i++ {
		strat := faults.ByzOversizedClaim
		if i%2 == 1 {
			strat = faults.ByzPoisonedMetadata
		}
		adv := &faults.ByzantinePeer{Node: model.NodeID(50 + i), Strategy: strat, Time: 1000, Seed: int64(i)}
		if err := runByzContact(t, v, adv, 0, int64(i)); err == nil {
			t.Fatalf("attack %d succeeded", i)
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	const bound = 16 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > bound {
		t.Fatalf("heap grew %d bytes over 20 hostile contacts (bound %d)", grew, bound)
	}
}

// TestGuardSentinelClassification pins the error taxonomy: every guard
// sentinel classifies as ErrContactRejected (never retried) while staying
// matchable itself, and ErrProtocolViolation remains an ErrProtocol.
func TestGuardSentinelClassification(t *testing.T) {
	if !errors.Is(ErrProtocolViolation, ErrProtocol) {
		t.Fatal("ErrProtocolViolation must wrap ErrProtocol")
	}
	for _, sentinel := range []error{ErrProtocolViolation, ErrPeerQuarantined, ErrRateLimited} {
		wrapped := fmt.Errorf("contact aborted: %w", sentinel)
		got := classifyContactErr(wrapped)
		if !errors.Is(got, ErrContactRejected) {
			t.Fatalf("classify(%v) = %v, not ErrContactRejected", sentinel, got)
		}
		if !errors.Is(got, sentinel) {
			t.Fatalf("classify(%v) = %v, lost the sentinel", sentinel, got)
		}
		if transient(got) {
			t.Fatalf("%v classified as transient — a hostile peer would be retried", sentinel)
		}
	}
}

// cancelOnClose cancels a context when the dialled connection closes —
// which contactOnce does (deferred) before DialContext inspects ctx, so the
// cancellation deterministically lands on the errors.Join path.
type cancelOnClose struct {
	net.Conn
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	c.cancel()
	return c.Conn.Close()
}

// TestGuardSentinelThroughDialJoin pins errors.Is through DialContext's
// errors.Join wrapping: a contact that dies on a guard sentinel under a
// context cancelled before DialContext returns must match BOTH the
// cancellation and the sentinel.
func TestGuardSentinelThroughDialJoin(t *testing.T) {
	m := poiMap()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ca, cb := net.Pipe()
	remote := newTestPeer(t, byzNode, m, 8*mb, WithFrameTimeout(byzFrameTimeout))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = remote.ContactConn(cb, false)
		_ = cb.Close()
	}()

	p := newTestPeer(t, 1, m, 8*mb,
		WithGuard(guard.Config{}),
		WithFrameTimeout(byzFrameTimeout),
		WithContextDialer(func(context.Context, string) (net.Conn, error) {
			return &cancelOnClose{Conn: ca, cancel: cancel}, nil
		}))
	// Pre-quarantine the remote: the contact will negotiate, then die at
	// admission with ErrPeerQuarantined.
	p.guard.RestoreQuarantine(byzNode, 1e9, 1000)

	err := p.DialContext(ctx, "remote")
	wg.Wait()
	if err == nil {
		t.Fatal("dial to quarantined remote succeeded")
	}
	if !errors.Is(err, ErrPeerQuarantined) {
		t.Fatalf("err = %v, want ErrPeerQuarantined through errors.Join", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled through errors.Join", err)
	}
}
