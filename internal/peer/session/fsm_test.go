package session

import (
	"errors"
	"testing"

	"photodtn/internal/wire"
)

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseHandshake: "handshake", PhaseMetadata: "metadata", PhasePlan: "plan",
		PhaseTransferA: "transfer-a", PhaseTransferB: "transfer-b",
		PhaseClose: "close", PhaseDone: "done",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if Phase(42).String() != "Phase(42)" {
		t.Fatalf("unknown phase = %q", Phase(42).String())
	}
}

func TestToIsStrictlyMonotone(t *testing.T) {
	m := NewMachine()
	if m.Phase() != PhaseHandshake {
		t.Fatalf("new machine in %v", m.Phase())
	}
	// Forward, including skips, is legal.
	for _, p := range []Phase{PhaseMetadata, PhaseTransferA, PhaseClose, PhaseDone} {
		if err := m.To(p); err != nil {
			t.Fatalf("To(%v): %v", p, err)
		}
	}
	// Nothing follows Done.
	if err := m.To(PhaseDone); !errors.Is(err, ErrPhase) {
		t.Fatalf("To(Done) after Done = %v, want ErrPhase", err)
	}

	m = NewMachine()
	if err := m.To(PhasePlan); err != nil {
		t.Fatal(err)
	}
	// Re-entering the current phase means a round ran twice.
	if err := m.To(PhasePlan); !errors.Is(err, ErrPhase) {
		t.Fatalf("re-enter = %v, want ErrPhase", err)
	}
	// Moving backward is a replayed round.
	if err := m.To(PhaseMetadata); !errors.Is(err, ErrPhase) {
		t.Fatalf("backward = %v, want ErrPhase", err)
	}
	// Unknown phases are rejected.
	if err := m.To(Phase(99)); !errors.Is(err, ErrPhase) {
		t.Fatalf("unknown = %v, want ErrPhase", err)
	}
	// Failed transitions leave the machine where it was.
	if m.Phase() != PhasePlan {
		t.Fatalf("machine moved to %v on failed transitions", m.Phase())
	}
}

func TestAdmitPerPhase(t *testing.T) {
	all := []wire.MsgType{
		wire.MsgHello, wire.MsgHelloAck, wire.MsgMetadata, wire.MsgPhotoRequest,
		wire.MsgPhotoData, wire.MsgAck, wire.MsgBye, wire.MsgChunk,
		wire.MsgChunkAck, wire.MsgResumeOffer,
	}
	legal := map[Phase][]wire.MsgType{
		PhaseHandshake: {wire.MsgHello, wire.MsgHelloAck},
		PhaseMetadata:  {wire.MsgMetadata},
		PhasePlan:      {wire.MsgPhotoRequest, wire.MsgResumeOffer},
		PhaseTransferA: {wire.MsgChunk, wire.MsgPhotoData, wire.MsgAck, wire.MsgChunkAck},
		PhaseTransferB: {wire.MsgChunk, wire.MsgPhotoData, wire.MsgAck, wire.MsgChunkAck},
		PhaseClose:     {wire.MsgBye},
		PhaseDone:      {},
	}
	for phase, ok := range legal {
		m := &Machine{phase: phase}
		okSet := make(map[wire.MsgType]bool, len(ok))
		for _, typ := range ok {
			okSet[typ] = true
		}
		for _, typ := range all {
			err := m.Admit(typ)
			if okSet[typ] && err != nil {
				t.Fatalf("%v rejected %v: %v", phase, typ, err)
			}
			if !okSet[typ] && !errors.Is(err, ErrPhase) {
				t.Fatalf("%v admitted %v (err=%v)", phase, typ, err)
			}
		}
	}
}

func TestTransferPhase(t *testing.T) {
	m := NewMachine()
	p, err := m.TransferPhase()
	if err != nil || p != PhaseTransferA {
		t.Fatalf("first leg = %v, %v", p, err)
	}
	if err := m.To(PhaseTransferA); err != nil {
		t.Fatal(err)
	}
	p, err = m.TransferPhase()
	if err != nil || p != PhaseTransferB {
		t.Fatalf("second leg = %v, %v", p, err)
	}
	if err := m.To(PhaseTransferB); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TransferPhase(); !errors.Is(err, ErrPhase) {
		t.Fatalf("third leg = %v, want ErrPhase", err)
	}
}
