// Package session defines the explicit per-contact protocol state machine
// the peer drives every live contact through. The protocol is a fixed
// sequence of rounds — handshake, metadata exchange, plan negotiation, one
// or two transfer legs, close — and within each round only a small set of
// message types is legal. Before this package the rounds were implicit in
// the code path (a typed read rejected the wrong concrete type); making
// them explicit lets the peer reject out-of-order, duplicate, or
// phase-invalid messages as *protocol violations* with a clean §III-D
// abort, and hand the guard layer a typed reason instead of a generic
// decode error.
//
// The machine is strictly monotone: phases only move forward, so a
// replayed round (a second Metadata after the exchange closed) is
// structurally impossible rather than merely unexpected. It is not safe
// for concurrent use; the peer's one concurrent reader (the chunk-ack
// drain goroutine) runs entirely within one phase, bracketed by channel
// synchronisation.
package session

import (
	"errors"
	"fmt"

	"photodtn/internal/wire"
)

// Phase is one protocol round.
type Phase uint8

// The rounds, in wire order. TransferA and TransferB are the two transfer
// legs of a reallocation contact (each side sends in turn); simpler
// contacts use only TransferA.
const (
	PhaseHandshake Phase = iota
	PhaseMetadata
	PhasePlan
	PhaseTransferA
	PhaseTransferB
	PhaseClose
	PhaseDone
	numPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseHandshake:
		return "handshake"
	case PhaseMetadata:
		return "metadata"
	case PhasePlan:
		return "plan"
	case PhaseTransferA:
		return "transfer-a"
	case PhaseTransferB:
		return "transfer-b"
	case PhaseClose:
		return "close"
	case PhaseDone:
		return "done"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// ErrPhase reports a message or transition that violates the machine.
var ErrPhase = errors.New("session: protocol phase violation")

// allowed is the per-phase set of legal inbound message types.
var allowed = [numPhases]map[wire.MsgType]bool{
	PhaseHandshake: {wire.MsgHello: true, wire.MsgHelloAck: true},
	PhaseMetadata:  {wire.MsgMetadata: true},
	PhasePlan:      {wire.MsgPhotoRequest: true, wire.MsgResumeOffer: true},
	// A transfer leg's inbound traffic depends on direction: the sender
	// reads ChunkAcks (and, as the uploader, the delivery Ack); the
	// receiver reads Chunks or PhotoData terminated by an Ack.
	PhaseTransferA: {wire.MsgChunk: true, wire.MsgPhotoData: true, wire.MsgAck: true, wire.MsgChunkAck: true},
	PhaseTransferB: {wire.MsgChunk: true, wire.MsgPhotoData: true, wire.MsgAck: true, wire.MsgChunkAck: true},
	PhaseClose:     {wire.MsgBye: true},
	PhaseDone:      {},
}

// Machine tracks one contact's protocol phase.
type Machine struct {
	phase Phase
}

// NewMachine returns a machine in PhaseHandshake.
func NewMachine() *Machine { return &Machine{phase: PhaseHandshake} }

// Phase returns the current phase.
func (m *Machine) Phase() Phase { return m.phase }

// To advances the machine to next. Phases are strictly monotone: moving
// backward or re-entering the current phase is a violation (it would mean
// a protocol round ran twice), and nothing follows PhaseDone. Skipping
// forward is legal — a v1 contact has no plan round, an upload has one
// transfer leg.
func (m *Machine) To(next Phase) error {
	if next >= numPhases {
		return fmt.Errorf("%w: unknown phase %v", ErrPhase, next)
	}
	if next <= m.phase || m.phase == PhaseDone {
		return fmt.Errorf("%w: %v after %v", ErrPhase, next, m.phase)
	}
	m.phase = next
	return nil
}

// Admit validates one inbound message type against the current phase.
func (m *Machine) Admit(t wire.MsgType) error {
	if !allowed[m.phase][t] {
		return fmt.Errorf("%w: %v during %v", ErrPhase, t, m.phase)
	}
	return nil
}

// TransferPhase returns the next unused transfer leg, or an error when
// both legs ran.
func (m *Machine) TransferPhase() (Phase, error) {
	switch {
	case m.phase < PhaseTransferA:
		return PhaseTransferA, nil
	case m.phase < PhaseTransferB:
		return PhaseTransferB, nil
	default:
		return 0, fmt.Errorf("%w: third transfer leg after %v", ErrPhase, m.phase)
	}
}
