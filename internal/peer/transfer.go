// Chunked, resumable photo transfer — the peer side of wire protocol v2.
//
// The sender plans its whole chunk list up front (resume offers and the
// per-contact byte budget are folded in at plan time), then streams it
// behind the negotiated window: up to Window chunks ride unacknowledged
// while a reader goroutine drains the per-chunk acks. Because the plan is
// fixed before the first write, both sides know exactly how many acks the
// stream carries — no speculative reads, no deadlock on synchronous
// transports.
//
// The receiver routes each chunk to a reassembly store: the peer's shared
// cross-contact store when resume is negotiated (fresh chunks hit the
// write-ahead journal first — memory never leads disk), or a contact-local
// scratch store otherwise, whose leftovers are discarded at teardown
// exactly like v1 — but counted as wasted bytes. A photo is admitted to
// storage only when its final chunk lands and the whole-photo checksum
// verifies, preserving the paper's §III-D photo-level atomicity.
package peer

import (
	"encoding/binary"
	"errors"
	"fmt"

	"photodtn/internal/guard"
	"photodtn/internal/model"
	"photodtn/internal/transfer"
	"photodtn/internal/wire"
)

// payloadFor generates the deterministic synthetic payload of a photo: an
// xorshift keystream keyed by the photo ID, so every holder produces
// bit-identical bytes — the cross-holder consistency that lets a transfer
// started from one relay resume from another with matching checksums.
func payloadFor(id model.PhotoID, n int) []byte {
	if n <= 0 {
		return nil
	}
	buf := make([]byte, n)
	state := uint64(id)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	var word [8]byte
	for i := 0; i < n; i += 8 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		binary.LittleEndian.PutUint64(word[:], state)
		copy(buf[i:], word[:])
	}
	return buf
}

// chunkPlan splits a photo's payload into canonical wire chunks for the
// session's negotiated chunk size. Data slices alias the payload buffer.
func (s *session) chunkPlan(photo model.Photo) []wire.Chunk {
	size := s.wc.ChunkSize()
	payload := payloadFor(photo.ID, s.p.payload)
	total := uint64(len(payload))
	count := uint32(wire.ChunkCount(int64(total), size))
	crc := wire.PayloadCRC(payload)
	out := make([]wire.Chunk, 0, count)
	for i := uint32(0); i < count; i++ {
		lo := int(i) * size
		hi := lo + size
		if hi > len(payload) {
			hi = len(payload)
		}
		out = append(out, wire.Chunk{
			Photo: photo, Index: i, Count: count, ChunkSize: uint32(size),
			Total: total, PayloadCRC: crc, Data: payload[lo:hi],
		})
	}
	return out
}

// sendOffer writes this node's resume offer for the photos it is about to
// receive. Sent on every v2 session to keep the exchange in lockstep; the
// offer is empty when resume is off or nothing is partially held.
func (s *session) sendOffer(want []model.PhotoID) error {
	if s.wc.Version() < wire.ProtocolV2 {
		return nil
	}
	var offer wire.ResumeOffer
	if s.wc.Resume() {
		for _, id := range want {
			if e, ok := s.p.frags.Offer(id); ok {
				offer.Entries = append(offer.Entries, e)
			}
		}
	}
	return s.wc.Write(offer)
}

// readOffer reads the peer's resume offer (v2 only) into a lookup map,
// pinning it — when the guard is armed — to the request that preceded it:
// an offer may only name photos this side just asked the remote to send.
func (s *session) readOffer(requested []model.PhotoID) (map[model.PhotoID]wire.ResumeEntry, error) {
	if s.wc.Version() < wire.ProtocolV2 {
		return nil, nil
	}
	offer, err := readIn[wire.ResumeOffer](s)
	if err != nil {
		return nil, err
	}
	if s.p.guard != nil {
		asked := make(map[model.PhotoID]bool, len(requested))
		for _, id := range requested {
			asked[id] = true
		}
		if v := s.p.guardCfg.CheckResumeOffer(offer, asked); v != nil {
			return nil, s.violation(v)
		}
	}
	out := make(map[model.PhotoID]wire.ResumeEntry, len(offer.Entries))
	for _, e := range offer.Entries {
		out[e.ID] = e
	}
	return out, nil
}

// sendChunks streams the requested photos as chunks and terminates the
// stream with an Ack naming the photos the receiver can now assemble. A
// resume offer whose geometry matches lets the sender skip the chunks the
// receiver already holds; the per-contact byte budget truncates the plan —
// a photo cut mid-stream is not acked, but with resume on its prefix
// survives at the receiver for the next contact.
func (s *session) sendChunks(ids []model.PhotoID, offers map[model.PhotoID]wire.ResumeEntry) error {
	p := s.p
	budget := p.transfer.BudgetBytes
	var plan []wire.Chunk
	var sent []model.PhotoID
	var spent int64
	truncated := false
	for _, id := range ids {
		if truncated {
			break
		}
		photo, ok := s.st.store.Get(id)
		if !ok {
			continue
		}
		chunks := s.chunkPlan(photo)
		missing := chunks
		if e, ok := offers[id]; ok && len(chunks) > 0 &&
			e.ChunkSize == chunks[0].ChunkSize && e.Count == chunks[0].Count &&
			e.Total == chunks[0].Total && e.PayloadCRC == chunks[0].PayloadCRC {
			missing = missing[:0:0]
			var saved int64
			for _, idx := range transfer.MissingChunks(e) {
				missing = append(missing, chunks[idx])
			}
			for _, c := range chunks {
				saved += int64(len(c.Data))
			}
			for _, c := range missing {
				saved -= int64(len(c.Data))
			}
			if skipped := len(chunks) - len(missing); skipped > 0 {
				p.tChunksResumed.Add(int64(skipped))
				p.cChunksResumed.Add(int64(skipped))
				p.tResumedBytes.Add(saved)
			}
		}
		complete := true
		for _, c := range missing {
			if budget > 0 && spent+int64(len(c.Data)) > budget {
				complete = false
				truncated = true
				break
			}
			plan = append(plan, c)
			spent += int64(len(c.Data))
		}
		if complete {
			sent = append(sent, id)
		}
	}

	// Pipelined send: the plan's length fixes the ack count, so the reader
	// goroutine knows exactly when the stream is drained. The fixed plan
	// also pins the legal ack set: the map is fully built before the
	// goroutine starts (happens-before) and only the goroutine touches it
	// after, so no lock is needed.
	n := len(plan)
	var outstanding map[guard.ChunkKey]int
	if p.guard != nil {
		outstanding = make(map[guard.ChunkKey]int, n)
		for _, c := range plan {
			outstanding[guard.ChunkKey{ID: c.Photo.ID, Index: c.Index}]++
		}
	}
	acks := make(chan wire.ChunkAck, n)
	errc := make(chan error, 1)
	go func() {
		defer close(acks)
		for i := 0; i < n; i++ {
			a, err := readIn[wire.ChunkAck](s)
			if err != nil {
				errc <- err
				return
			}
			if outstanding != nil {
				if v := p.guardCfg.CheckChunkAck(a, outstanding); v != nil {
					errc <- s.violation(v)
					return
				}
				outstanding[guard.ChunkKey{ID: a.ID, Index: a.Index}]--
			}
			acks <- a
		}
		errc <- nil
	}()
	window := s.wc.Window()
	inflight := 0
	for _, c := range plan {
		for inflight >= window {
			if _, ok := <-acks; !ok {
				if err := <-errc; err != nil {
					return fmt.Errorf("chunk ack stream: %w", err)
				}
				return fmt.Errorf("%w: chunk acks ended before the stream", ErrProtocol)
			}
			inflight--
		}
		if err := s.wc.Write(c); err != nil {
			return err
		}
		inflight++
		p.tChunksSent.Add(1)
		p.cChunksSent.Inc()
	}
	for range acks {
	}
	if err := <-errc; err != nil {
		return fmt.Errorf("chunk ack stream: %w", err)
	}
	return s.wc.Write(wire.Ack{IDs: sent})
}

// receiveChunks reads the peer's chunk stream until the terminating Ack,
// acking each chunk and returning the photos that assembled and verified.
// Photos whose resume offer already covered every chunk complete with zero
// traffic.
func (s *session) receiveChunks(want []model.PhotoID) (map[model.PhotoID]model.Photo, error) {
	p := s.p
	out := make(map[model.PhotoID]model.Photo)
	// Pre-contact progress classifies completions as resumed and feeds the
	// resume-rate histogram.
	prior := make(map[model.PhotoID]uint32)
	if s.wc.Resume() {
		for _, id := range want {
			have, count := p.frags.Chunks(id)
			if have == 0 {
				continue
			}
			prior[id] = have
			if have == count {
				// Full partial from an earlier contact: assemble without a
				// single byte on the wire.
				if res, ok := p.frags.Assemble(id); ok {
					out[id] = res.Photo
					s.noteResumed(have, count)
				}
			}
		}
	}
	// With the guard armed, pin the stream to the request: chunks must name
	// wanted photos, match the negotiated chunk size, and never repeat a
	// (photo, index) pair within the contact.
	var wantSet map[model.PhotoID]bool
	var seen map[guard.ChunkKey]bool
	if p.guard != nil {
		wantSet = make(map[model.PhotoID]bool, len(want))
		for _, id := range want {
			wantSet[id] = true
		}
		seen = make(map[guard.ChunkKey]bool)
	}
	for {
		msg, err := s.readMsg()
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case wire.Chunk:
			if p.guard != nil {
				if v := p.guardCfg.CheckChunk(m, wantSet, s.wc.ChunkSize()); v != nil {
					return nil, s.violation(v)
				}
				key := guard.ChunkKey{ID: m.Photo.ID, Index: m.Index}
				if seen[key] {
					return nil, s.violationf(guard.ReasonReplay, "duplicate chunk %v[%d]", m.Photo.ID, m.Index)
				}
				seen[key] = true
			}
			p.tChunksRecv.Add(1)
			p.cChunksRecv.Inc()
			res, err := s.addChunk(m)
			switch {
			case errors.Is(err, transfer.ErrChecksum):
				// Poisoned partial, already dropped (and counted wasted):
				// the photo simply does not complete this contact.
			case err != nil:
				return nil, err
			case res.Complete:
				out[m.Photo.ID] = res.Photo
				if n := prior[m.Photo.ID]; n > 0 {
					s.noteResumed(n, m.Count)
				}
			}
			if err := s.wc.Write(wire.ChunkAck{ID: m.Photo.ID, Index: m.Index}); err != nil {
				return nil, err
			}
		case wire.Ack:
			return out, nil
		default:
			if p.guard != nil {
				return nil, s.violationf(guard.ReasonPhase, "%v during chunk transfer", msg.Type())
			}
			return nil, fmt.Errorf("%w: %v during chunk transfer", ErrProtocol, msg.Type())
		}
	}
}

// noteResumed records one photo completed across contacts: prior of its
// count chunks predated this contact.
func (s *session) noteResumed(prior, count uint32) {
	p := s.p
	p.tPhotosRes.Add(1)
	if count > 0 {
		p.hResumeRate.Observe(float64(prior) / float64(count))
	}
}

// addChunk routes one received chunk to its reassembly store. Multi-chunk
// photos on a resume session go to the peer's shared cross-contact store —
// fresh chunks are journaled before the in-memory union, so a crash never
// loses progress the store claims to have. Everything else lands in the
// contact-local scratch store and dies with the session.
func (s *session) addChunk(c wire.Chunk) (transfer.AddResult, error) {
	p := s.p
	if s.wc.Resume() && c.Count > 1 {
		if p.jnl == nil {
			return p.frags.Add(c)
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.journalErr != nil {
			return transfer.AddResult{}, p.journalErr
		}
		if !p.frags.Has(c.Photo.ID, c.Index) {
			if err := p.jnl.Append(recFragment, encodeFragPut(c)); err != nil {
				p.journalErr = fmt.Errorf("%w: journal fragment: %w", ErrJournal, err)
				return transfer.AddResult{}, p.journalErr
			}
		}
		return p.frags.Add(c)
	}
	if s.localFrags == nil {
		s.localFrags = transfer.NewStore(0)
	}
	res, err := s.localFrags.Add(c)
	if res.Complete {
		// The payload served its verification purpose; without resume the
		// scratch copy has no future.
		s.localFrags.Drop(c.Photo.ID, false)
	}
	return res, err
}

// finishTransfer settles the session's scratch reassembly state at contact
// teardown: whatever the local store still tracks — incomplete photos from
// an aborted or budget-cut transfer — is wasted, exactly the bytes v1 threw
// away silently.
func (s *session) finishTransfer() {
	if s.localFrags == nil {
		return
	}
	st := s.localFrags.Stats()
	if wasted := st.FragmentBytes + st.WastedBytes; wasted > 0 {
		s.p.tWastedLocal.Add(wasted)
		s.p.cWastedBytes.Add(wasted)
	}
	s.localFrags = nil
}
