package peer

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"photodtn/internal/faults"
	"photodtn/internal/model"
)

const kib = int64(1) << 10

// chunked returns a transfer config small enough that one synthetic photo
// payload spans many chunks.
func chunked(resume bool) TransferConfig {
	return TransferConfig{ChunkSize: 32 << 10, Resume: resume}
}

// faultContact runs one contact with the initiator's side of the pipe routed
// through rw (a fault-injecting wrapper over ca). Each side closes its own
// pipe end so the survivor of a mid-contact death unblocks promptly.
func faultContact(a, b *Peer, rw io.ReadWriter, ca, cb net.Conn) (errA, errB error) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		errA = a.ContactConn(rw, true)
		_ = ca.Close()
	}()
	go func() {
		defer wg.Done()
		errB = b.ContactConn(cb, false)
		_ = cb.Close()
	}()
	wg.Wait()
	return errA, errB
}

// killContact runs a contact whose initiator link dies after cut bytes —
// mid-frame, so the receiver sees a torn chunk, not a clean close between
// frames.
func killContact(a, b *Peer, cut int64) (errA, errB error) {
	ca, cb := net.Pipe()
	kt := faults.NewByteKillTransport(ca, cut)
	return faultContact(a, b, &faultConn{rw: kt, conn: ca}, ca, cb)
}

// TestCrossVersionContactFallsBackToV1 pins v1 interop: a v2 peer contacting
// a peer pinned to protocol version 1 completes the exchange over the
// whole-photo path — no chunk frames on the wire, resume silently disabled.
func TestCrossVersionContactFallsBackToV1(t *testing.T) {
	m := poiMap()
	a := newTestPeer(t, 1, m, 8*mb, WithPayloadBytes(int(128*kib)))
	b := newTestPeer(t, 2, m, 8*mb, WithPayloadBytes(int(128*kib)),
		WithTransfer(TransferConfig{Version: 1, Resume: true}))
	if err := a.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPhoto(viewFrom(2, 1, 90)); err != nil {
		t.Fatal(err)
	}
	contact(t, a, b)
	for _, p := range []*Peer{a, b} {
		if got := len(p.Photos()); got != 2 {
			t.Fatalf("peer %v holds %d photos after cross-version contact, want 2", p.ID(), got)
		}
		st := p.TransferStats()
		if st.ChunksSent != 0 || st.ChunksReceived != 0 {
			t.Fatalf("peer %v moved chunks on a v1 session: %+v", p.ID(), st)
		}
	}
}

// TestChunkedExchange: two v2 peers with multi-chunk payloads complete a
// reallocation over the chunk path and account the frames.
func TestChunkedExchange(t *testing.T) {
	m := poiMap()
	a := newTestPeer(t, 1, m, 8*mb, WithPayloadBytes(int(96*kib)), WithTransfer(chunked(true)))
	b := newTestPeer(t, 2, m, 8*mb, WithPayloadBytes(int(96*kib)), WithTransfer(chunked(true)))
	if err := a.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPhoto(viewFrom(2, 1, 90)); err != nil {
		t.Fatal(err)
	}
	contact(t, a, b)
	for _, p := range []*Peer{a, b} {
		if got := len(p.Photos()); got != 2 {
			t.Fatalf("peer %v holds %d photos, want 2", p.ID(), got)
		}
		st := p.TransferStats()
		// 96 KiB across 32 KiB chunks = 3 chunks each way.
		if st.ChunksSent != 3 || st.ChunksReceived != 3 {
			t.Fatalf("peer %v chunk counts = %+v, want 3 sent / 3 received", p.ID(), st)
		}
		if st.WastedBytes != 0 || st.Partials != 0 {
			t.Fatalf("clean exchange left waste: %+v", st)
		}
	}
}

// TestBudgetTruncationResumesAcrossContacts: a per-contact byte budget cuts
// the upload mid-photo without any fault; the surviving prefix is offered
// back next contact, and the photo completes after three budget slices
// having crossed the wire exactly once.
func TestBudgetTruncationResumesAcrossContacts(t *testing.T) {
	m := poiMap()
	cfg := chunked(true)
	cfg.BudgetBytes = 100 * kib // 3 of the 8 chunks per contact
	cc := newTestPeer(t, model.CommandCenter, m, 0, WithTransfer(chunked(true)))
	h := newTestPeer(t, 3, m, 64*mb, WithPayloadBytes(int(256*kib)), WithTransfer(cfg))
	ph := viewFrom(3, 0, 0)
	if err := h.AddPhoto(ph); err != nil {
		t.Fatal(err)
	}
	for round := 1; ; round++ {
		if round > 3 {
			t.Fatalf("photo not delivered after 3 budgeted contacts: cc stats %+v", cc.TransferStats())
		}
		contact(t, h, cc)
		if cc.Photos().Contains(ph.ID) {
			if round != 3 {
				t.Fatalf("delivered after %d contacts, want 3 (budget miscounted)", round)
			}
			break
		}
	}
	hst := h.TransferStats()
	if hst.ChunksSent != 8 {
		t.Fatalf("holder sent %d chunks, want 8 (each chunk exactly once)", hst.ChunksSent)
	}
	// Rounds two and three skipped the 3+3 chunks already held remotely.
	if hst.ChunksResumed != 9 || hst.ResumedBytes != 9*32*kib {
		t.Fatalf("resume accounting = %+v, want 9 chunks / %d bytes skipped", hst, 9*32*kib)
	}
	cst := cc.TransferStats()
	if cst.PhotosResumed != 1 {
		t.Fatalf("command center resumed %d photos, want 1", cst.PhotosResumed)
	}
	if cst.Partials != 0 || cst.FragmentBytes != 0 {
		t.Fatalf("completed photo still tracked as partial: %+v", cst)
	}
}

// TestMidChunkKillResumesNextContact is the fault-sweep proof for the live
// path: the uploader's link dies mid-chunk at a sweep of byte offsets, and
// every run must converge — the interrupted photo completes via resume in
// the next contact with a verified checksum and is delivered exactly once.
func TestMidChunkKillResumesNextContact(t *testing.T) {
	m := poiMap()
	sawResume := false
	// The chunk stream is ~263 KiB behind a short handshake; the sweep cuts
	// before the first chunk, inside early/middle/late chunks, and inside
	// the final one.
	for _, cut := range []int64{600, 40 * kib, 100 * kib, 180 * kib, 250 * kib} {
		cc := newTestPeer(t, model.CommandCenter, m, 0, WithTransfer(chunked(true)))
		h := newTestPeer(t, 3, m, 64*mb, WithPayloadBytes(int(256*kib)), WithTransfer(chunked(true)))
		ph := viewFrom(3, 0, 0)
		if err := h.AddPhoto(ph); err != nil {
			t.Fatal(err)
		}
		if errH, errCC := killContact(h, cc, cut); errH == nil && errCC == nil {
			t.Fatalf("cut %d: contact survived a killed link", cut)
		}
		if cc.Photos().Contains(ph.ID) {
			t.Fatalf("cut %d: photo delivered on the killed contact", cut)
		}
		prior := cc.TransferStats().Partials
		contact(t, h, cc)
		if !cc.Photos().Contains(ph.ID) {
			t.Fatalf("cut %d: photo not delivered by the recovery contact", cut)
		}
		if n := len(cc.Photos()); n != 1 {
			t.Fatalf("cut %d: command center holds %d photos, want exactly 1", cut, n)
		}
		cst := cc.TransferStats()
		if prior > 0 {
			sawResume = true
			if cst.PhotosResumed != 1 {
				t.Fatalf("cut %d: partial held but PhotosResumed = %d", cut, cst.PhotosResumed)
			}
		}
		if cst.Partials != 0 || cst.FragmentBytes != 0 {
			t.Fatalf("cut %d: delivered photo left partial state: %+v", cut, cst)
		}
		// A checksum mismatch would have dropped the partial and counted its
		// bytes wasted, so zero waste certifies the resumed payload verified.
		if cst.WastedBytes != 0 {
			t.Fatalf("cut %d: resumed delivery wasted %d bytes", cut, cst.WastedBytes)
		}
	}
	if !sawResume {
		t.Fatal("no cut in the sweep left a resumable partial — offsets miss the chunk stream")
	}
}

// TestCrossHolderResume: a transfer interrupted from one holder completes
// from a different holder of the same photo — the deterministic per-photo
// payload makes the fragments interchangeable.
func TestCrossHolderResume(t *testing.T) {
	m := poiMap()
	cc := newTestPeer(t, model.CommandCenter, m, 0, WithTransfer(chunked(true)))
	h1 := newTestPeer(t, 3, m, 64*mb, WithPayloadBytes(int(256*kib)), WithTransfer(chunked(true)))
	h2 := newTestPeer(t, 4, m, 64*mb, WithPayloadBytes(int(256*kib)), WithTransfer(chunked(true)))
	ph := viewFrom(3, 0, 0)
	if err := h1.AddPhoto(ph); err != nil {
		t.Fatal(err)
	}
	if err := h2.AddPhoto(ph); err != nil {
		t.Fatal(err)
	}
	if errH, errCC := killContact(h1, cc, 120*kib); errH == nil && errCC == nil {
		t.Fatal("contact survived a killed link")
	}
	if cc.TransferStats().Partials == 0 {
		t.Fatal("killed contact left no partial to resume")
	}
	contact(t, h2, cc)
	if !cc.Photos().Contains(ph.ID) {
		t.Fatal("photo not delivered by the second holder")
	}
	cst := cc.TransferStats()
	if cst.PhotosResumed != 1 {
		t.Fatalf("PhotosResumed = %d, want 1 (cross-holder resume)", cst.PhotosResumed)
	}
	if cst.WastedBytes != 0 {
		t.Fatalf("cross-holder resume wasted %d bytes — payloads not bit-identical", cst.WastedBytes)
	}
	if h2.TransferStats().ChunksResumed == 0 {
		t.Fatal("second holder re-sent every chunk — offer ignored")
	}
}

// TestResumeBeatsDiscardBaseline: after an identical mid-chunk death,
// resume-on must strictly beat the v1-style discard-everything baseline on
// both wasted bytes and chunks re-sent.
func TestResumeBeatsDiscardBaseline(t *testing.T) {
	m := poiMap()
	run := func(resume bool) (wasted, sent int64) {
		cc := newTestPeer(t, model.CommandCenter, m, 0, WithTransfer(chunked(resume)))
		h := newTestPeer(t, 3, m, 64*mb, WithPayloadBytes(int(256*kib)), WithTransfer(chunked(resume)))
		ph := viewFrom(3, 0, 0)
		if err := h.AddPhoto(ph); err != nil {
			t.Fatal(err)
		}
		if errH, errCC := killContact(h, cc, 150*kib); errH == nil && errCC == nil {
			t.Fatalf("resume=%v: contact survived a killed link", resume)
		}
		contact(t, h, cc)
		if !cc.Photos().Contains(ph.ID) || len(cc.Photos()) != 1 {
			t.Fatalf("resume=%v: photo not delivered exactly once", resume)
		}
		return cc.TransferStats().WastedBytes, h.TransferStats().ChunksSent
	}
	resumeWaste, resumeSent := run(true)
	discardWaste, discardSent := run(false)
	if resumeWaste >= discardWaste {
		t.Fatalf("resume wasted %d bytes, discard baseline %d — resume must waste strictly less",
			resumeWaste, discardWaste)
	}
	if resumeSent >= discardSent {
		t.Fatalf("resume sent %d chunks, discard baseline %d — resume must re-send strictly fewer",
			resumeSent, discardSent)
	}
}

// TestResumeUnderFrameLoss: a link losing ≥30% of the uploader's frames
// kills the contact mid-stream; the chunks that landed resume the photo on
// a later clean contact. The loss schedule is seed-driven — the sweep stops
// at the first seed whose run makes partial progress before dying.
func TestResumeUnderFrameLoss(t *testing.T) {
	m := poiMap()
	for seed := int64(1); seed <= 25; seed++ {
		cc := newTestPeer(t, model.CommandCenter, m, 0,
			WithTransfer(TransferConfig{ChunkSize: 16 << 10, Resume: true}),
			WithFrameTimeout(250*time.Millisecond))
		h := newTestPeer(t, 3, m, 64*mb, WithPayloadBytes(int(256*kib)),
			WithTransfer(TransferConfig{ChunkSize: 16 << 10, Resume: true}),
			WithFrameTimeout(250*time.Millisecond))
		ph := viewFrom(3, 0, 0)
		if err := h.AddPhoto(ph); err != nil {
			t.Fatal(err)
		}
		ca, cb := net.Pipe()
		lossy := faults.NewTransport(ca, 0.35, 0, seed)
		errH, errCC := faultContact(h, cc, &faultConn{rw: lossy, conn: ca}, ca, cb)
		if errH == nil && errCC == nil {
			continue // this seed dropped nothing that mattered
		}
		if cc.TransferStats().Partials == 0 {
			continue // died before any chunk landed
		}
		contact(t, h, cc)
		if !cc.Photos().Contains(ph.ID) || len(cc.Photos()) != 1 {
			t.Fatalf("seed %d: photo not delivered exactly once after lossy contact", seed)
		}
		cst := cc.TransferStats()
		if cst.PhotosResumed != 1 {
			t.Fatalf("seed %d: PhotosResumed = %d, want 1", seed, cst.PhotosResumed)
		}
		if cst.WastedBytes != 0 {
			t.Fatalf("seed %d: resumed delivery wasted %d bytes", seed, cst.WastedBytes)
		}
		return
	}
	t.Fatal("no seed produced a partially-progressed lossy contact")
}

// TestChaosMidChunkKillSweep extends the crash-recovery chaos harness to
// the chunk stream: a durable command center's link dies mid-chunk, the
// process restarts (fragments recovered from the journal — or from a v2
// snapshot when the run checkpoints first), and the recovery contact must
// deliver the photo exactly once, bit-verified, converging to the fault-free
// reference state.
func TestChaosMidChunkKillSweep(t *testing.T) {
	m := poiMap()
	ccOpts := func() []Option {
		return []Option{WithSeed(1), fixedClock(1000), WithTransfer(chunked(true))}
	}
	newHolder := func() *Peer {
		h := New(3, m, 64*mb, WithSeed(2), fixedClock(1000),
			WithPayloadBytes(int(256*kib)), WithTransfer(chunked(true)))
		if err := h.AddPhoto(viewFrom(3, 0, 0)); err != nil {
			t.Fatal(err)
		}
		return h
	}
	// Fault-free reference: the digest every chaos run must converge to.
	ref := New(model.CommandCenter, m, 0, ccOpts()...)
	contact(t, newHolder(), ref)
	wantDigest := ref.StateDigest()
	phID := ref.Photos()[0].ID

	sawReplay := false
	for _, checkpoint := range []bool{false, true} {
		for _, cut := range []int64{600, 60 * kib, 150 * kib, 240 * kib} {
			dir := t.TempDir()
			h := newHolder()
			cc, err := Open(dir, model.CommandCenter, m, 0, ccOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			if errH, errCC := killContact(h, cc, cut); errH == nil && errCC == nil {
				t.Fatalf("cut %d: contact survived a killed link", cut)
			}
			partials := cc.TransferStats().Partials
			if checkpoint {
				// Fold the fragment journal into a v2 snapshot before dying.
				if err := cc.Checkpoint(); err != nil {
					t.Fatalf("cut %d: checkpoint: %v", cut, err)
				}
			}
			if err := cc.Close(); err != nil {
				t.Fatalf("cut %d: close: %v", cut, err)
			}

			cc2, err := Open(dir, model.CommandCenter, m, 0, ccOpts()...)
			if err != nil {
				t.Fatalf("cut %d: recovery: %v", cut, err)
			}
			st2 := cc2.TransferStats()
			if st2.Partials != partials {
				t.Fatalf("cut %d (checkpoint=%v): recovered %d partials, lost from %d",
					cut, checkpoint, st2.Partials, partials)
			}
			if partials > 0 {
				sawReplay = true
			}
			contact(t, h, cc2)
			if !cc2.Photos().Contains(phID) || len(cc2.Photos()) != 1 {
				t.Fatalf("cut %d: recovered command center did not deliver exactly once", cut)
			}
			if partials > 0 && cc2.TransferStats().PhotosResumed != 1 {
				t.Fatalf("cut %d: recovered partial not counted as a resume", cut)
			}
			if cc2.TransferStats().WastedBytes != 0 {
				t.Fatalf("cut %d: recovered fragments failed verification: %+v", cut, cc2.TransferStats())
			}
			if got := cc2.StateDigest(); got != wantDigest {
				t.Fatalf("cut %d (checkpoint=%v): digest %x, want reference %x", cut, checkpoint, got, wantDigest)
			}
			if err := cc2.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !sawReplay {
		t.Fatal("no cut left durable fragments to recover — sweep misses the chunk stream")
	}
}
