package peer

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func TestServeContextStopsOnCancel(t *testing.T) {
	m := poiMap()
	cc := newTestPeer(t, 0, m, 0)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- cc.ServeContext(ctx, l) }()

	// The server must actually serve before we cancel it.
	n := newTestPeer(t, 1, m, 8*mb)
	if err := n.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.DialContext(context.Background(), l.Addr().String()); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ServeContext returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeContext did not return after cancel")
	}
}

func TestServeContextListenerCloseStillCleanExit(t *testing.T) {
	cc := newTestPeer(t, 0, poiMap(), 0)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cc.ServeContext(context.Background(), l) }()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("closing the listener must end Serve cleanly, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeContext did not return after listener close")
	}
}

func TestDialContextCancelledDuringBackoff(t *testing.T) {
	refused := errors.New("connection refused")
	ctx, cancel := context.WithCancel(context.Background())
	dials := 0
	n := newTestPeer(t, 1, poiMap(), 8*mb,
		WithRetry(10, time.Hour, time.Hour), // without cancellation this would sleep for hours
		WithContextDialer(func(ctx context.Context, addr string) (net.Conn, error) {
			dials++
			cancel() // cancel while the first backoff sleep is pending
			return nil, &net.OpError{Op: "dial", Err: refused}
		}))
	start := time.Now()
	err := n.DialContext(ctx, "anywhere:1")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if dials != 1 {
		t.Fatalf("dialed %d times after cancellation, want 1", dials)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
	if n.ContactErrors() == 0 {
		t.Fatal("interrupted contact left no error trace")
	}
}

func TestDialContextCancelledMidContact(t *testing.T) {
	// A server that accepts and then goes silent: without cancellation the
	// initiator would wait out its frame timeout.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(10 * time.Second) // never answer
	}()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	n := newTestPeer(t, 1, poiMap(), 8*mb,
		WithRetry(1, 0, 0), WithFrameTimeout(time.Minute))
	start := time.Now()
	err = n.DialContext(ctx, l.Addr().String())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; the connection was not deadline-poisoned", elapsed)
	}
}

func TestContactIsDialContextBackground(t *testing.T) {
	// The compatibility wrapper must behave exactly like the old Contact:
	// full exchange against a served command center.
	m := poiMap()
	cc := newTestPeer(t, 0, m, 0)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cc.Serve(l) }()
	n := newTestPeer(t, 1, m, 8*mb)
	if err := n.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.Contact(l.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if got := len(cc.Photos()); got != 1 {
		t.Fatalf("cc holds %d photos, want 1", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestOptionInterfaceAcceptsExternalImplementations(t *testing.T) {
	// The facade implements Option outside this package; pin the seam.
	var applied bool
	var custom Option = externalOption{apply: func(p *Peer) { applied = true }}
	_ = New(1, poiMap(), 8*mb, custom)
	if !applied {
		t.Fatal("externally implemented Option was not applied")
	}
}

type externalOption struct{ apply func(*Peer) }

func (e externalOption) Apply(p *Peer) { e.apply(p) }
