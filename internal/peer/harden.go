package peer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"time"

	"photodtn/internal/obs"
)

// ErrTimeout reports that a frame or contact deadline expired. A stalled or
// unresponsive remote ends the contact with this error instead of hanging
// the radio forever.
var ErrTimeout = errors.New("peer: deadline exceeded")

// ErrRetriesExhausted reports that a dialled contact failed transiently on
// every configured attempt (see WithRetry). The final attempt's error is in
// the chain; callers schedule the next contact opportunity instead of
// retrying immediately.
var ErrRetriesExhausted = errors.New("peer: contact retries exhausted")

// ErrContactRejected reports that a dialled contact failed in a way
// retrying cannot fix — a protocol violation, a checksum mismatch, a
// misbehaving remote. The underlying cause is in the chain.
var ErrContactRejected = errors.New("peer: contact rejected")

// classifyContactErr tags a final (post-retry) contact failure with the
// sentinel callers branch on: transient failures that survived every
// attempt become ErrRetriesExhausted, everything else ErrContactRejected.
// Guard verdicts — a quarantined or rate-limited remote, a message the
// state machine or a validator rejected — are explicitly non-transient:
// retrying a misbehaving remote cannot help, and the original sentinel
// stays in the chain for errors.Is.
func classifyContactErr(err error) error {
	switch {
	case errors.Is(err, ErrPeerQuarantined),
		errors.Is(err, ErrRateLimited),
		errors.Is(err, ErrProtocolViolation):
		return fmt.Errorf("%w: %w", ErrContactRejected, err)
	case transient(err):
		return fmt.Errorf("%w: %w", ErrRetriesExhausted, err)
	}
	return fmt.Errorf("%w: %w", ErrContactRejected, err)
}

// Hardening defaults. Frame deadlines are on by default: a single stalled
// remote must never wedge a node (the live-peer counterpart of a contact
// that physically ends when the nodes move apart).
const (
	// DefaultFrameTimeout bounds every single frame read/write.
	DefaultFrameTimeout = 30 * time.Second
	// DefaultRetryAttempts is the number of Contact tries (1 = no retry).
	DefaultRetryAttempts = 3
	// DefaultRetryBase is the first backoff delay; it doubles per attempt.
	DefaultRetryBase = 50 * time.Millisecond
	// DefaultRetryMax caps the exponential backoff.
	DefaultRetryMax = 2 * time.Second
)

// WithFrameTimeout bounds every individual frame read/write during a
// contact. Zero disables per-frame deadlines (not recommended outside
// tests with transports that lack deadline support).
func WithFrameTimeout(d time.Duration) Option {
	return optionFunc(func(p *Peer) { p.frameTimeout = d })
}

// WithContactTimeout bounds the whole contact with an absolute deadline,
// mirroring the finite contact duration of the DTN model. Zero (the
// default) means only per-frame deadlines apply.
func WithContactTimeout(d time.Duration) Option {
	return optionFunc(func(p *Peer) { p.contactTimeout = d })
}

// WithRetry configures Contact's capped exponential backoff for transient
// dial and IO failures: at most attempts tries, sleeping base, 2*base, ...
// capped at max between them. attempts <= 1 disables retrying.
func WithRetry(attempts int, base, max time.Duration) Option {
	return optionFunc(func(p *Peer) {
		p.retryAttempts = attempts
		p.retryBase = base
		p.retryMax = max
	})
}

// WithDialer replaces the TCP dialer used by Contact (tests inject failing
// or in-memory transports through this). The injected dialer does not see
// the DialContext context; use WithContextDialer when the transport should
// honour cancellation during connection establishment.
func WithDialer(dial func(addr string) (net.Conn, error)) Option {
	return optionFunc(func(p *Peer) {
		p.dial = func(_ context.Context, addr string) (net.Conn, error) { return dial(addr) }
	})
}

// WithContextDialer replaces the dialer with a context-aware one: DialContext
// passes its context through, so connection establishment aborts when the
// caller cancels.
func WithContextDialer(dial func(ctx context.Context, addr string) (net.Conn, error)) Option {
	return optionFunc(func(p *Peer) { p.dial = dial })
}

// ContactErrors returns how many contacts ended in an error since the peer
// was created. Serve keeps accepting after a failed contact — one
// misbehaving remote must not take the node offline — so this counter is
// the only trace such contacts leave.
func (p *Peer) ContactErrors() int64 {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.contactErrs
}

// LastContactError returns the most recent contact error seen by Serve or
// Contact (nil if none).
func (p *Peer) LastContactError() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.lastContactErr
}

func (p *Peer) noteContactError(err error) {
	p.errMu.Lock()
	p.contactErrs++
	p.lastContactErr = err
	p.errMu.Unlock()
	p.cAborts.Inc()
	if p.obsv != nil {
		p.obsv.Emit(obs.Event{
			Time: p.clock(), Kind: obs.EvSessionAbort,
			A: int32(p.id), B: obs.NoNode, Photo: obs.NoPhoto,
		})
	}
}

// deadliner is the subset of net.Conn needed for per-frame deadlines.
// net.Pipe and TCP connections both implement it.
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// timedConn enforces a per-frame timeout and an absolute contact deadline
// by refreshing the connection deadline before every read and write. It
// translates deadline errors to ErrTimeout so callers can classify them.
type timedConn struct {
	rw    io.ReadWriter
	dl    deadliner
	frame time.Duration
	until time.Time // absolute contact deadline; zero = none
}

// newTimedConn wraps rw with deadline enforcement. Transports without
// deadline support (plain io.ReadWriter pairs) are returned unchanged —
// the minimal protection degrades gracefully rather than failing.
func newTimedConn(rw io.ReadWriter, frame, contact time.Duration) io.ReadWriter {
	dl, ok := rw.(deadliner)
	if !ok || (frame <= 0 && contact <= 0) {
		return rw
	}
	tc := &timedConn{rw: rw, dl: dl, frame: frame}
	if contact > 0 {
		tc.until = time.Now().Add(contact)
	}
	return tc
}

// next computes the effective deadline for the next IO operation: the
// sooner of now+frame and the absolute contact deadline. It fails fast
// once the contact deadline has already passed.
func (c *timedConn) next() (time.Time, error) {
	var d time.Time
	if c.frame > 0 {
		d = time.Now().Add(c.frame)
	}
	if !c.until.IsZero() {
		if !time.Now().Before(c.until) {
			return time.Time{}, fmt.Errorf("%w: contact deadline passed", ErrTimeout)
		}
		if d.IsZero() || c.until.Before(d) {
			d = c.until
		}
	}
	return d, nil
}

func (c *timedConn) Read(b []byte) (int, error) {
	d, err := c.next()
	if err != nil {
		return 0, err
	}
	_ = c.dl.SetReadDeadline(d)
	n, err := c.rw.Read(b)
	return n, timeoutErr(err)
}

func (c *timedConn) Write(b []byte) (int, error) {
	d, err := c.next()
	if err != nil {
		return 0, err
	}
	_ = c.dl.SetWriteDeadline(d)
	n, err := c.rw.Write(b)
	return n, timeoutErr(err)
}

// timeoutErr maps deadline expiry onto ErrTimeout, preserving the original
// error in the chain.
func timeoutErr(err error) error {
	if err == nil {
		return nil
	}
	var ne net.Error
	if errors.Is(err, os.ErrDeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// transient reports whether an error is worth retrying: timeouts and the
// connection-level failures a flaky radio link produces. Protocol
// violations and checksum failures are not transient — retrying a
// misbehaving remote immediately is pointless.
func transient(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrTimeout), errors.Is(err, os.ErrDeadlineExceeded):
		return true
	case errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE):
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// transientAccept reports whether a listener Accept failure is transient —
// a per-connection or resource-pressure hiccup the serve loop should ride
// out with backoff rather than take the whole peer offline. Everything
// else (notably net.ErrClosed and context cancellation) ends the loop.
func transientAccept(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EMFILE),
		errors.Is(err, syscall.ENFILE),
		errors.Is(err, syscall.EINTR):
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
