// Package peer implements a live DTN node: the framework of package core
// speaking the wire protocol over real connections (TCP in the examples;
// anything io.ReadWriter-shaped works). It is the repository's counterpart
// of the paper's Android prototype — two peers that meet exchange hellos,
// PROPHET state, and photo metadata, jointly compute the §III-D
// reallocation, and transfer exactly the photos the plan needs.
//
// The joint computation is deterministic: both sides feed identical inputs
// (exchanged over the wire) and a shared seed (XOR of the hello nonces)
// into the same greedy, so they arrive at the same plan without a
// leader-election round.
package peer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"photodtn/internal/coverage"
	"photodtn/internal/journal"
	"photodtn/internal/metadata"
	"photodtn/internal/model"
	"photodtn/internal/obs"
	"photodtn/internal/prophet"
	"photodtn/internal/selection"
	"photodtn/internal/sim"
	"photodtn/internal/wire"
)

// Errors.
var (
	// ErrProtocol reports an unexpected message during a contact.
	ErrProtocol = errors.New("peer: protocol violation")
	// ErrServing reports a second concurrent Serve on a peer — a node has
	// one radio, and two accept loops would race for it.
	ErrServing = errors.New("peer: already serving")
)

// Option customises a Peer during New. Options are an interface (not a
// function type) so other packages can implement them — the photodtn facade's
// unified options (photodtn.WithObserver) satisfy this interface alongside
// the constructors below.
type Option interface {
	// Apply applies the option to the peer. New calls it before finalising
	// defaults, so options may leave fields unset.
	Apply(*Peer)
}

// optionFunc adapts a plain function to Option.
type optionFunc func(*Peer)

// Apply implements Option.
func (f optionFunc) Apply(p *Peer) { f(p) }

// WithClock injects a logical clock (seconds); the default is wall time
// since peer creation.
func WithClock(clock func() float64) Option {
	return optionFunc(func(p *Peer) { p.clock = clock })
}

// WithSelectionConfig overrides the expected-coverage evaluation settings.
func WithSelectionConfig(cfg selection.Config) Option {
	return optionFunc(func(p *Peer) { p.selCfg = cfg })
}

// WithPthld overrides the metadata validity threshold.
func WithPthld(v float64) Option {
	return optionFunc(func(p *Peer) { p.pthld = v })
}

// WithPayloadBytes makes PhotoData frames carry n synthetic payload bytes
// (stand-ins for image files); 0 sends metadata only.
func WithPayloadBytes(n int) Option {
	return optionFunc(func(p *Peer) { p.payload = n })
}

// WithSeed fixes the nonce stream for reproducible contacts.
func WithSeed(seed int64) Option {
	return optionFunc(func(p *Peer) { p.rng = rand.New(rand.NewSource(seed)) })
}

// WithObserver instruments the peer: contact/retry/abort counters, the
// selection subsystem's metrics, and session-abort trace events. A nil
// observer (the default) keeps every instrumentation site a no-op.
//
// Deprecated: prefer the unified photodtn.WithObserver option, which
// additionally covers the simulator and the selection layer with the same
// observer. This constructor keeps working.
func WithObserver(o *obs.Observer) Option {
	return optionFunc(func(p *Peer) { p.obsv = o })
}

// Peer is a live framework node. All exported methods are safe for
// concurrent use; a peer serialises its contacts, as a single-radio device
// would.
type Peer struct {
	id  model.NodeID
	fpc *coverage.FootprintCache

	mu      sync.Mutex
	store   *sim.Storage
	cache   *metadata.Cache
	rate    *metadata.RateEstimator
	table   *prophet.Table
	selCfg  selection.Config
	pthld   float64
	clock   func() float64
	payload int
	rng     *rand.Rand
	start   time.Time

	// Hardening knobs (see harden.go).
	frameTimeout   time.Duration
	contactTimeout time.Duration
	retryAttempts  int
	retryBase      time.Duration
	retryMax       time.Duration
	dial           func(ctx context.Context, addr string) (net.Conn, error)
	sleep          func(time.Duration)

	errMu          sync.Mutex
	contactErrs    int64
	lastContactErr error
	serving        atomic.Bool

	// Observability (nil — no-op — unless WithObserver is given).
	obsv      *obs.Observer
	cContacts *obs.Counter
	cRetries  *obs.Counter
	cAborts   *obs.Counter

	// Durability (zero — memory-only — unless WithJournal is given; see
	// durable.go).
	stateDir   string
	jfs        journal.FS
	jnl        *journal.Journal
	journalErr error
	pending    []byte // framed sub-records of the contact in flight
	commits    uint64 // durably committed contacts, recovered + live
	snapEvery  int
	sinceSnap  int
}

// New creates a peer. The command center (id 0) gets unbounded storage and
// always reports delivery probability 1.
func New(id model.NodeID, m *coverage.Map, capacity int64, opts ...Option) *Peer {
	p := &Peer{
		id:     id,
		fpc:    coverage.NewFootprintCache(m),
		cache:  nil, // set below, after pthld is known
		rate:   metadata.NewRateEstimator(),
		table:  prophet.NewTable(id, prophet.DefaultConfig()),
		selCfg: selection.DefaultConfig(),
		pthld:  metadata.DefaultPthld,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		start:  time.Now(),

		frameTimeout:  DefaultFrameTimeout,
		retryAttempts: DefaultRetryAttempts,
		retryBase:     DefaultRetryBase,
		retryMax:      DefaultRetryMax,
		sleep:         time.Sleep,

		snapEvery: DefaultSnapshotEvery,
	}
	if id.IsCommandCenter() {
		capacity = math.MaxInt64 / 4
	}
	p.store = sim.NewStorage(capacity)
	for _, o := range opts {
		o.Apply(p)
	}
	if p.clock == nil {
		p.clock = func() float64 { return time.Since(p.start).Seconds() }
	}
	if p.dial == nil {
		p.dial = func(ctx context.Context, addr string) (net.Conn, error) {
			d := net.Dialer{Timeout: p.frameTimeout}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	p.cache = metadata.NewCache(id, p.pthld)
	p.cContacts = p.obsv.Counter("peer.contacts")
	p.cRetries = p.obsv.Counter("peer.contact_retries")
	p.cAborts = p.obsv.Counter("peer.contact_aborts")
	p.selCfg.Metrics = selection.ObserverMetrics(p.obsv)
	p.fpc.SetMetrics(p.obsv.Counter("coverage.fp_cache_hits"), p.obsv.Counter("coverage.fp_cache_misses"))
	if p.stateDir != "" {
		// Recovery failures are sticky rather than fatal here (New cannot
		// return an error): the peer exists but refuses to mutate state it
		// cannot make durable. Open surfaces the error directly.
		p.journalErr = p.openJournal()
	}
	return p
}

// ID returns the peer's node ID.
func (p *Peer) ID() model.NodeID { return p.id }

// AddPhoto stores a locally taken photo (rejecting it if it cannot fit).
// Durable peers journal the admission before reporting success.
func (p *Peer) AddPhoto(photo model.Photo) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.journalErr != nil {
		return fmt.Errorf("peer %v: %w", p.id, p.journalErr)
	}
	if err := p.store.Add(photo); err != nil {
		return fmt.Errorf("peer %v: %w", p.id, err)
	}
	if p.jnl != nil {
		if err := p.jnl.Append(recPhotoAdd, photo.AppendBinary(nil)); err != nil {
			p.store.Remove(photo.ID) // keep memory behind, not ahead of, disk
			p.journalErr = fmt.Errorf("%w: journal photo: %w", ErrJournal, err)
			return fmt.Errorf("peer %v: %w", p.id, p.journalErr)
		}
	}
	return nil
}

// Photos returns the current collection.
func (p *Peer) Photos() model.PhotoList {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.List()
}

// Coverage returns the photo coverage of the current collection — for the
// command center, the objective C_ph(F_0).
func (p *Peer) Coverage() coverage.Coverage {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fpc.Map().Of(p.store.List())
}

// DeliveryProb returns the peer's current PROPHET probability of reaching
// the command center.
func (p *Peer) DeliveryProb() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.table.DeliveryProb(p.clock())
}

// Serve accepts contacts on the listener until it is closed, handling each
// connection sequentially (a node has one radio). A contact that fails —
// timeout, corruption, protocol violation — is recorded (ContactErrors,
// LastContactError) and the peer keeps serving: one misbehaving or stalled
// remote must not take the node offline. It is a ServeContext with the
// background context: it runs until the caller closes the listener.
func (p *Peer) Serve(l net.Listener) error {
	return p.ServeContext(context.Background(), l)
}

// ServeContext is Serve under a context: cancelling ctx closes the listener,
// interrupts the contact in progress (its connection is deadline-poisoned),
// and returns ctx's error. Closing the listener directly still stops the
// loop with a nil error, exactly like Serve.
func (p *Peer) ServeContext(ctx context.Context, l net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !p.serving.CompareAndSwap(false, true) {
		return fmt.Errorf("peer %v: %w", p.id, ErrServing)
	}
	defer p.serving.Store(false)
	stop := context.AfterFunc(ctx, func() { _ = l.Close() })
	defer stop()
	for {
		conn, err := l.Accept()
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("peer %v: serve interrupted: %w", p.id, cerr)
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("peer %v: accept: %w", p.id, err)
		}
		err = p.contactCancellable(ctx, conn, false)
		_ = conn.Close()
		if err != nil && !errors.Is(err, io.EOF) {
			p.noteContactError(err)
		}
	}
}

// Contact dials the address and initiates a contact, retrying transient
// dial/IO failures with capped exponential backoff (see WithRetry). A
// contact abort is safe to retry from scratch: storage mutations are
// atomic at contact end, so a failed attempt leaves no partial state. It is
// a DialContext with the background context.
func (p *Peer) Contact(addr string) error {
	return p.DialContext(context.Background(), addr)
}

// DialContext is Contact under a context: the dial honours ctx, a
// cancellation mid-contact poisons the connection's deadline so the contact
// aborts at its next frame, and backoff sleeps between retries end early.
// On cancellation the returned error wraps ctx's error.
func (p *Peer) DialContext(ctx context.Context, addr string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	backoff := p.retryBase
	attempts := p.retryAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = p.contactOnce(ctx, addr)
		if cerr := ctx.Err(); cerr != nil && err != nil {
			// The failure happened under a cancelled context — report the
			// cancellation, not whatever IO error it surfaced as.
			err = fmt.Errorf("peer %v: contact interrupted: %w", p.id, cerr)
			p.noteContactError(err)
			return err
		}
		if err == nil || attempt >= attempts || !transient(err) {
			if err != nil {
				err = classifyContactErr(err)
				p.noteContactError(err)
			}
			return err
		}
		p.cRetries.Inc()
		if werr := p.wait(ctx, backoff); werr != nil {
			err = fmt.Errorf("peer %v: contact interrupted: %w", p.id, werr)
			p.noteContactError(err)
			return err
		}
		backoff *= 2
		if backoff > p.retryMax {
			backoff = p.retryMax
		}
	}
}

func (p *Peer) contactOnce(ctx context.Context, addr string) error {
	conn, err := p.dial(ctx, addr)
	if err != nil {
		return fmt.Errorf("peer %v: dial %s: %w", p.id, addr, err)
	}
	defer func() { _ = conn.Close() }()
	return p.contactCancellable(ctx, conn, true)
}

// contactCancellable runs one contact, poisoning the connection's deadline
// the moment ctx is cancelled so a blocked frame read/write fails promptly
// instead of waiting out its frame timeout.
func (p *Peer) contactCancellable(ctx context.Context, conn net.Conn, initiator bool) error {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Now()) })
		defer stop()
	}
	err := p.ContactConn(conn, initiator)
	if cerr := ctx.Err(); cerr != nil && err != nil {
		return fmt.Errorf("peer %v: contact interrupted: %w", p.id, cerr)
	}
	return err
}

// wait sleeps for d or until ctx is cancelled. Without a cancellable
// context it defers to the injected sleep (tests replace it to skip
// backoff).
func (p *Peer) wait(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		p.sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ContactConn runs one contact over an established connection. When the
// transport supports deadlines (net.Conn does), every frame read/write is
// bounded by the frame timeout and the whole contact by the contact
// timeout, so a stalled remote ends the contact with ErrTimeout instead of
// hanging. Any mid-contact failure aborts gracefully: unfinished transfers
// are discarded and the peer's storage and metadata caches stay exactly as
// the protocol last committed them.
func (p *Peer) ContactConn(conn io.ReadWriter, initiator bool) error {
	conn = newTimedConn(conn, p.frameTimeout, p.contactTimeout)
	if err := p.contactConn(conn, initiator); err != nil {
		return fmt.Errorf("peer %v: contact aborted: %w", p.id, err)
	}
	return nil
}

// contactConn brackets one contact session with the durability protocol:
// sub-records accumulated while the session mutates state are committed as
// one atomic journal record when — and only when — the session succeeds. An
// aborted contact leaves no durable trace, exactly mirroring the in-memory
// graceful-abort semantics.
func (p *Peer) contactConn(conn io.ReadWriter, initiator bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.journalErr != nil {
		return p.journalErr
	}
	p.pending = p.pending[:0]
	err := p.contactSession(conn, initiator)
	if err == nil {
		err = p.commitContactLocked()
	}
	p.pending = p.pending[:0]
	return err
}

func (p *Peer) contactSession(conn io.ReadWriter, initiator bool) error {
	p.cContacts.Inc()
	now := p.clock()

	mine := wire.Hello{
		Node:         p.id,
		Lambda:       p.rate.Rate(now),
		DeliveryProb: p.deliveryProbLocked(now),
		Time:         now,
		Nonce:        p.rng.Uint64(),
		Capacity:     p.store.Capacity(),
	}
	var theirs wire.Hello
	if initiator {
		if err := wire.Write(conn, mine); err != nil {
			return err
		}
		h, err := readAs[wire.Hello](conn)
		if err != nil {
			return err
		}
		theirs = h
	} else {
		h, err := readAs[wire.Hello](conn)
		if err != nil {
			return err
		}
		theirs = h
		if err := wire.Write(conn, mine); err != nil {
			return err
		}
	}
	// Use a shared session clock so both sides make identical validity and
	// selection decisions.
	session := math.Max(mine.Time, theirs.Time)

	p.rate.Observe(theirs.Node, now)
	p.table.Encounter(theirs.Node, now)
	// Transitivity through the peer toward the command center, using the
	// advertised predictability.
	p.table.Transitive(theirs.Node, map[model.NodeID]float64{model.CommandCenter: theirs.DeliveryProb})
	p.logEncounter(theirs.Node, now, theirs.DeliveryProb)

	// Metadata exchange: own collection first, then gossiped cache entries.
	// Strict turn-taking (initiator writes first) keeps the protocol
	// deadlock-free even over unbuffered transports.
	var md wire.Metadata
	if initiator {
		if err := wire.Write(conn, p.metadataLocked(session)); err != nil {
			return err
		}
		m, err := readAs[wire.Metadata](conn)
		if err != nil {
			return err
		}
		md = m
	} else {
		m, err := readAs[wire.Metadata](conn)
		if err != nil {
			return err
		}
		if err := wire.Write(conn, p.metadataLocked(session)); err != nil {
			return err
		}
		md = m
	}
	peerPhotos := p.absorbMetadata(theirs, md, session)

	switch {
	case theirs.Node.IsCommandCenter():
		return p.uploadLocked(conn, session)
	case p.id.IsCommandCenter():
		return p.receiveUploadLocked(conn)
	default:
		return p.reallocateLocked(conn, initiator, mine, theirs, peerPhotos, session)
	}
}

func (p *Peer) deliveryProbLocked(now float64) float64 {
	if p.id.IsCommandCenter() {
		return 1
	}
	return p.table.DeliveryProb(now)
}

// metadataLocked builds the metadata message: self entry first, then the
// valid cache entries.
func (p *Peer) metadataLocked(session float64) wire.Metadata {
	md := wire.Metadata{Entries: []wire.MetaEntry{{
		Node:      p.id,
		Lambda:    p.rate.Rate(session),
		P:         p.deliveryProbLocked(session),
		Timestamp: session,
		Photos:    p.store.List(),
	}}}
	for _, e := range p.cache.ValidEntries(session) {
		md.Entries = append(md.Entries, wire.MetaEntry{
			Node: e.Node, Lambda: e.Lambda, P: e.P, Timestamp: e.Timestamp, Photos: e.Photos,
		})
	}
	return md
}

// absorbMetadata stores the peer's snapshot and gossip, returning the
// peer's own collection.
func (p *Peer) absorbMetadata(h wire.Hello, md wire.Metadata, session float64) model.PhotoList {
	var peerPhotos model.PhotoList
	for i, e := range md.Entries {
		entry := metadata.Entry{
			Node: e.Node, Lambda: e.Lambda, P: e.P, Timestamp: e.Timestamp, Photos: e.Photos,
		}
		if i == 0 && e.Node == h.Node {
			peerPhotos = e.Photos
			entry.Timestamp = session
		}
		p.cache.Put(entry)
		p.logMetaPut(entry)
	}
	p.cache.DropInvalid(session)
	p.logMetaDrop(session)
	return peerPhotos
}

// reallocateLocked runs the §III-D exchange with a fellow participant.
func (p *Peer) reallocateLocked(conn io.ReadWriter, initiator bool, mine, theirs wire.Hello, peerPhotos model.PhotoList, session float64) error {
	selCfg := p.selCfg
	selCfg.Seed = int64(mine.Nonce ^ theirs.Nonce)

	var ccPhotos model.PhotoList
	var background []selection.Participant
	for _, e := range p.cache.ValidEntries(session) {
		switch {
		case e.Node.IsCommandCenter():
			ccPhotos = e.Photos
		case e.Node == p.id || e.Node == theirs.Node:
			// The live collections are already in the allocs.
		default:
			background = append(background, selection.Participant{Node: e.Node, Photos: e.Photos, P: e.P})
		}
	}

	// Both sides order the allocs identically (initiator first) so the
	// jointly-seeded greedy is bit-for-bit reproducible.
	myAlloc := selection.Alloc{Node: p.id, P: mine.DeliveryProb, Capacity: p.store.Capacity(), Photos: p.store.List()}
	peerAlloc := selection.Alloc{Node: theirs.Node, P: theirs.DeliveryProb, Capacity: theirs.Capacity, Photos: peerPhotos}
	var res selection.Result
	var mySel model.PhotoList
	if initiator {
		res = selection.Reallocate(p.fpc, selCfg, ccPhotos, background, myAlloc, peerAlloc)
		mySel = res.ASel
	} else {
		res = selection.Reallocate(p.fpc, selCfg, ccPhotos, background, peerAlloc, myAlloc)
		mySel = res.BSel
	}

	// Request the selected photos this node lacks.
	var want []model.PhotoID
	for _, photo := range mySel {
		if !p.store.Has(photo.ID) {
			want = append(want, photo.ID)
		}
	}
	if initiator {
		if err := wire.Write(conn, wire.PhotoRequest{IDs: want}); err != nil {
			return err
		}
		theirReq, err := readAs[wire.PhotoRequest](conn)
		if err != nil {
			return err
		}
		if err := p.sendPhotos(conn, theirReq.IDs); err != nil {
			return err
		}
		received, err := p.receivePhotos(conn)
		if err != nil {
			return err
		}
		return p.applyPlan(conn, mySel, received, true)
	}
	theirReq, err := readAs[wire.PhotoRequest](conn)
	if err != nil {
		return err
	}
	if err := wire.Write(conn, wire.PhotoRequest{IDs: want}); err != nil {
		return err
	}
	received, err := p.receivePhotos(conn)
	if err != nil {
		return err
	}
	if err := p.sendPhotos(conn, theirReq.IDs); err != nil {
		return err
	}
	return p.applyPlan(conn, mySel, received, false)
}

// applyPlan replaces the collection with the selection (kept ∪ received)
// and closes the contact.
func (p *Peer) applyPlan(conn io.ReadWriter, sel model.PhotoList, received map[model.PhotoID]model.Photo, initiator bool) error {
	final := make(model.PhotoList, 0, len(sel))
	for _, photo := range sel {
		if p.store.Has(photo.ID) {
			final = append(final, photo)
		} else if got, ok := received[photo.ID]; ok {
			final = append(final, got)
		}
	}
	if err := p.store.ReplaceAll(final); err != nil {
		return fmt.Errorf("peer %v: apply plan: %w", p.id, err)
	}
	p.logStoreReplace(final)
	if initiator {
		if err := wire.Write(conn, wire.Bye{}); err != nil {
			return err
		}
		_, err := readAs[wire.Bye](conn)
		return err
	}
	if _, err := readAs[wire.Bye](conn); err != nil {
		return err
	}
	return wire.Write(conn, wire.Bye{})
}

// sendPhotos streams the requested photos this node holds, terminated by an
// Ack listing what was actually sent.
func (p *Peer) sendPhotos(conn io.ReadWriter, ids []model.PhotoID) error {
	var sent []model.PhotoID
	for _, id := range ids {
		photo, ok := p.store.Get(id)
		if !ok {
			continue
		}
		data := wire.PhotoData{Photo: photo}
		if p.payload > 0 {
			data.Payload = make([]byte, p.payload)
		}
		if err := wire.Write(conn, data); err != nil {
			return err
		}
		sent = append(sent, id)
	}
	return wire.Write(conn, wire.Ack{IDs: sent})
}

// receivePhotos reads PhotoData frames until the terminating Ack.
func (p *Peer) receivePhotos(conn io.ReadWriter) (map[model.PhotoID]model.Photo, error) {
	out := make(map[model.PhotoID]model.Photo)
	for {
		msg, err := wire.Read(conn)
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case wire.PhotoData:
			out[m.Photo.ID] = m.Photo
		case wire.Ack:
			return out, nil
		default:
			return nil, fmt.Errorf("%w: %v during photo transfer", ErrProtocol, msg.Type())
		}
	}
}

// uploadLocked sends the command center the photos that improve its
// coverage, in marginal-gain order, then frees the delivered copies.
func (p *Peer) uploadLocked(conn io.ReadWriter, session float64) error {
	ccEntry, _ := p.cache.Get(model.CommandCenter)
	// The command center's own snapshot (just absorbed, authoritative) is a
	// delivery acknowledgement (§III-B): any held photo it lists already
	// arrived — through another relay, or in a contact whose ack this node
	// lost to a crash — so purge it instead of re-reporting it.
	if purged := p.purgeDelivered(ccEntry.Photos); len(purged) > 0 {
		p.logAckDelivered(session, purged)
	}
	plan := selection.SelectForUpload(p.fpc, p.selCfg, ccEntry.Photos, p.store.List())
	var ids []model.PhotoID
	for _, photo := range plan {
		ids = append(ids, photo.ID)
	}
	if err := p.sendPhotos(conn, ids); err != nil {
		return err
	}
	ack, err := readAs[wire.Ack](conn)
	if err != nil {
		return err
	}
	acked := model.PhotoList{}
	for _, id := range ack.IDs {
		if photo, ok := p.store.Get(id); ok {
			acked = append(acked, photo)
			p.store.Remove(id)
		}
	}
	// Fold the acknowledgement into the command-center cache entry.
	entry, _ := p.cache.Get(model.CommandCenter)
	p.cache.Put(metadata.Entry{
		Node:      model.CommandCenter,
		Photos:    append(entry.Photos.Clone(), acked...),
		Timestamp: session,
	})
	p.logAckDelivered(session, acked)
	_, err = readAs[wire.Bye](conn)
	if err != nil {
		return err
	}
	return wire.Write(conn, wire.Bye{})
}

// purgeDelivered removes held photos that appear in the delivered list,
// returning what was dropped.
func (p *Peer) purgeDelivered(delivered model.PhotoList) model.PhotoList {
	var purged model.PhotoList
	for _, photo := range p.store.List() {
		if delivered.Contains(photo.ID) {
			p.store.Remove(photo.ID)
			purged = append(purged, photo)
		}
	}
	return purged
}

// receiveUploadLocked is the command-center side of an upload.
func (p *Peer) receiveUploadLocked(conn io.ReadWriter) error {
	received, err := p.receivePhotos(conn)
	if err != nil {
		return err
	}
	var ids []model.PhotoID
	for id, photo := range received {
		if !p.store.Has(id) {
			if err := p.store.Add(photo); err != nil {
				return fmt.Errorf("peer %v: store upload: %w", p.id, err)
			}
			p.logStoreAdd(photo)
		}
		ids = append(ids, id)
	}
	if err := wire.Write(conn, wire.Ack{IDs: ids}); err != nil {
		return err
	}
	if err := wire.Write(conn, wire.Bye{}); err != nil {
		return err
	}
	_, err = readAs[wire.Bye](conn)
	return err
}

// readAs reads one message and asserts its concrete type.
func readAs[M wire.Message](r io.Reader) (M, error) {
	var zero M
	msg, err := wire.Read(r)
	if err != nil {
		return zero, err
	}
	m, ok := msg.(M)
	if !ok {
		return zero, fmt.Errorf("%w: got %v, want %v", ErrProtocol, msg.Type(), zero.Type())
	}
	return m, nil
}
