// Package peer implements a live DTN node: the framework of package core
// speaking the wire protocol over real connections (TCP in the examples;
// anything io.ReadWriter-shaped works). It is the repository's counterpart
// of the paper's Android prototype — two peers that meet exchange hellos,
// PROPHET state, and photo metadata, jointly compute the §III-D
// reallocation, and transfer exactly the photos the plan needs.
//
// The joint computation is deterministic: both sides feed identical inputs
// (exchanged over the wire) and a shared seed (XOR of the hello nonces)
// into the same greedy, so they arrive at the same plan without a
// leader-election round.
//
// A peer serves contacts concurrently: each accepted connection runs as an
// independent session against a snapshot of the peer's state and commits
// its effects in one short critical section with conflict validation (see
// session.go and DESIGN.md). WithMaxContacts bounds the concurrency.
package peer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"photodtn/internal/coverage"
	"photodtn/internal/guard"
	"photodtn/internal/journal"
	"photodtn/internal/metadata"
	"photodtn/internal/model"
	"photodtn/internal/obs"
	"photodtn/internal/prophet"
	"photodtn/internal/selection"
	"photodtn/internal/sim"
	"photodtn/internal/transfer"
	"photodtn/internal/wire"
)

// Errors.
var (
	// ErrProtocol reports an unexpected message during a contact.
	ErrProtocol = errors.New("peer: protocol violation")
	// ErrServing reports a second concurrent Serve on a peer — a node has
	// one radio, and two accept loops would race for it.
	ErrServing = errors.New("peer: already serving")
)

// Option customises a Peer during New. Options are an interface (not a
// function type) so other packages can implement them — the photodtn facade's
// unified options (photodtn.WithObserver) satisfy this interface alongside
// the constructors below.
type Option interface {
	// Apply applies the option to the peer. New calls it before finalising
	// defaults, so options may leave fields unset.
	Apply(*Peer)
}

// optionFunc adapts a plain function to Option.
type optionFunc func(*Peer)

// Apply implements Option.
func (f optionFunc) Apply(p *Peer) { f(p) }

// WithClock injects a logical clock (seconds); the default is wall time
// since peer creation.
func WithClock(clock func() float64) Option {
	return optionFunc(func(p *Peer) { p.clock = clock })
}

// WithSelectionConfig overrides the expected-coverage evaluation settings.
func WithSelectionConfig(cfg selection.Config) Option {
	return optionFunc(func(p *Peer) { p.selCfg = cfg })
}

// WithPthld overrides the metadata validity threshold.
func WithPthld(v float64) Option {
	return optionFunc(func(p *Peer) { p.pthld = v })
}

// WithPayloadBytes makes PhotoData frames carry n synthetic payload bytes
// (stand-ins for image files); 0 sends metadata only.
func WithPayloadBytes(n int) Option {
	return optionFunc(func(p *Peer) { p.payload = n })
}

// WithSeed fixes the nonce stream for reproducible contacts.
func WithSeed(seed int64) Option {
	return optionFunc(func(p *Peer) { p.rng = rand.New(rand.NewSource(seed)) })
}

// WithMaxContacts bounds how many accepted contacts the peer serves
// concurrently (default 4×GOMAXPROCS). An accept over the limit is rejected
// with a clean abort — the connection is closed before any protocol byte,
// so the remote fails its hello and retries later — never queued behind
// running sessions. n < 1 restores the default.
func WithMaxContacts(n int) Option {
	return optionFunc(func(p *Peer) { p.maxContacts = n })
}

// WithObserver instruments the peer: contact/retry/abort counters, the
// selection subsystem's metrics, and session-abort trace events. A nil
// observer (the default) keeps every instrumentation site a no-op.
//
// Deprecated: prefer the unified photodtn.WithObserver option, which
// additionally covers the simulator and the selection layer with the same
// observer. This constructor keeps working.
func WithObserver(o *obs.Observer) Option {
	return optionFunc(func(p *Peer) { p.obsv = o })
}

// DefaultMaxFragmentBytes caps the cross-contact reassembly store: 256 MiB
// of tracked partial payloads, after which the least-recently-touched
// partial is evicted.
const DefaultMaxFragmentBytes = 256 << 20

// TransferConfig tunes wire-v2 chunked transfer. The zero value of any
// field means its default; construct via struct literal and set only what
// matters.
type TransferConfig struct {
	// ChunkSize is the preferred transfer chunk size in bytes (default
	// wire.DefaultChunkSize, 256 KiB). The contact uses the smaller of the
	// two peers' preferences.
	ChunkSize int
	// Window is the preferred number of unacknowledged chunks in flight
	// (default wire.DefaultWindow). Negotiated to the pairwise minimum.
	Window int
	// Resume persists partial transfers across contacts and offers them
	// back to senders. Effective only when both peers enable it; a v1
	// session silently disables it.
	Resume bool
	// Version pins the highest protocol version spoken (default: the
	// current wire.ProtocolVersion). Set 1 to force the whole-photo v1
	// framing — the cross-version tests pin one side this way.
	Version int
	// BudgetBytes caps the payload bytes sent per contact (the live
	// counterpart of the simulator's bandwidth×duration budget); 0 is
	// unlimited. A send list truncated by the budget simply stops — with
	// resume on, the receiver keeps the prefix and a later contact sends
	// the rest.
	BudgetBytes int64
	// MaxFragmentBytes caps the reassembly store's tracked payload bytes
	// (default DefaultMaxFragmentBytes; negative = unlimited).
	MaxFragmentBytes int64
}

// DefaultTransferConfig is the configuration a peer gets without
// WithTransfer: v2 chunked transfer with resume enabled.
func DefaultTransferConfig() TransferConfig {
	return TransferConfig{
		ChunkSize:        wire.DefaultChunkSize,
		Window:           wire.DefaultWindow,
		Resume:           true,
		Version:          int(wire.ProtocolVersion),
		MaxFragmentBytes: DefaultMaxFragmentBytes,
	}
}

// normalize resolves zero fields to their defaults and clamps the rest.
func (tc TransferConfig) normalize() TransferConfig {
	def := DefaultTransferConfig()
	if tc.ChunkSize <= 0 {
		tc.ChunkSize = def.ChunkSize
	}
	if tc.ChunkSize > wire.MaxFrame/2 {
		tc.ChunkSize = wire.MaxFrame / 2 // headroom for metadata in the frame
	}
	if tc.Window <= 0 {
		tc.Window = def.Window
	}
	if tc.Version <= 0 || tc.Version > int(wire.ProtocolVersion) {
		tc.Version = def.Version
	}
	if tc.BudgetBytes < 0 {
		tc.BudgetBytes = 0
	}
	switch {
	case tc.MaxFragmentBytes == 0:
		tc.MaxFragmentBytes = def.MaxFragmentBytes
	case tc.MaxFragmentBytes < 0:
		tc.MaxFragmentBytes = 0 // store treats 0 as unlimited
	}
	return tc
}

// wireParams translates the config into handshake parameters.
func (tc TransferConfig) wireParams() wire.Params {
	return wire.Params{
		Version:   uint16(tc.Version),
		ChunkSize: uint32(tc.ChunkSize),
		Window:    uint16(tc.Window),
		Resume:    tc.Resume,
	}
}

// WithTransfer configures chunked, resumable photo transfer (wire protocol
// v2). Without it the peer uses DefaultTransferConfig. Zero-valued fields
// keep their defaults — except Resume, which the config states explicitly.
func WithTransfer(cfg TransferConfig) Option {
	return optionFunc(func(p *Peer) { p.transfer = cfg.normalize() })
}

// peerState bundles the mutable protocol state a contact reads and writes:
// the photo store, the metadata cache, the learned contact rate, and the
// PROPHET table. Sessions clone it at snapshot time and the commit path
// applies their op logs back to the shared copy (session.go); recovery
// replays journal records through the same apply code (durable.go).
type peerState struct {
	store *sim.Storage
	cache *metadata.Cache
	rate  *metadata.RateEstimator
	table *prophet.Table
}

// clone deep-copies the protocol state for a session snapshot.
func (st peerState) clone() peerState {
	return peerState{
		store: st.store.Clone(),
		cache: st.cache.Clone(),
		rate:  st.rate.Clone(),
		table: st.table.Clone(),
	}
}

// Peer is a live framework node. All exported methods are safe for
// concurrent use. Contacts run as concurrent sessions: each plans against a
// snapshot of the peer's state and commits under the peer lock in one short
// critical section, so a stalled remote never head-of-line-blocks the node.
type Peer struct {
	id  model.NodeID
	fpc *coverage.FootprintCache

	// mu guards the shared protocol state below. It is held only for short
	// snapshot/commit critical sections, never across contact IO.
	mu sync.Mutex
	peerState
	selCfg  selection.Config
	pthld   float64
	clock   func() float64
	payload int
	rng     *rand.Rand
	start   time.Time
	// storeGen counts committed mutations of the photo store (guarded by
	// mu). Sessions remember the generation they snapshotted; a commit that
	// would replace the collection re-plans or aborts when the generation
	// moved (see session.commit).
	storeGen uint64

	// Hardening knobs (see harden.go).
	frameTimeout   time.Duration
	contactTimeout time.Duration
	retryAttempts  int
	retryBase      time.Duration
	retryMax       time.Duration
	dial           func(ctx context.Context, addr string) (net.Conn, error)
	sleep          func(time.Duration)

	errMu          sync.Mutex
	contactErrs    int64
	lastContactErr error
	serving        atomic.Bool

	// Concurrency accounting: maxContacts bounds serve-side admissions
	// (active), inflight counts every live session (served + dialled).
	maxContacts int
	active      atomic.Int64
	inflight    atomic.Int64

	// Transfer (wire v2): configuration, the cross-contact reassembly
	// store, and node-local stat counters that work without an observer.
	transfer       TransferConfig
	frags          *transfer.Store
	tChunksSent    atomic.Int64
	tChunksRecv    atomic.Int64
	tChunksResumed atomic.Int64
	tPhotosRes     atomic.Int64
	tResumedBytes  atomic.Int64
	tWastedLocal   atomic.Int64 // wasted bytes outside the shared store

	// Observability (nil — no-op — unless WithObserver is given).
	obsv           *obs.Observer
	cContacts      *obs.Counter
	cRetries       *obs.Counter
	cAborts        *obs.Counter
	cConflicts     *obs.Counter
	cRejects       *obs.Counter
	cAcceptRetries *obs.Counter
	cChunksSent    *obs.Counter
	cChunksRecv    *obs.Counter
	cChunksResumed *obs.Counter
	cWastedBytes   *obs.Counter
	hResumeRate    *obs.Histogram
	gInflight      *obs.Gauge

	// Adversarial hardening (nil — no-op — unless WithGuard is given; see
	// guard.go).
	guardOn  bool
	guardCfg guard.Config
	guard    *guard.Guard

	// Durability (zero — memory-only — unless WithJournal is given; see
	// durable.go).
	stateDir   string
	jfs        journal.FS
	jnl        *journal.Journal
	journalErr error
	commits    uint64 // durably committed contacts, recovered + live
	snapEvery  int
	sinceSnap  int
}

// New creates a peer. The command center (id 0) gets unbounded storage and
// always reports delivery probability 1.
func New(id model.NodeID, m *coverage.Map, capacity int64, opts ...Option) *Peer {
	p := &Peer{
		id:     id,
		fpc:    coverage.NewFootprintCache(m),
		selCfg: selection.DefaultConfig(),
		pthld:  metadata.DefaultPthld,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		start:  time.Now(),

		frameTimeout:  DefaultFrameTimeout,
		retryAttempts: DefaultRetryAttempts,
		retryBase:     DefaultRetryBase,
		retryMax:      DefaultRetryMax,
		sleep:         time.Sleep,

		snapEvery: DefaultSnapshotEvery,
		transfer:  DefaultTransferConfig(),
	}
	p.rate = metadata.NewRateEstimator()
	p.table = prophet.NewTable(id, prophet.DefaultConfig())
	if id.IsCommandCenter() {
		capacity = math.MaxInt64 / 4
	}
	p.store = sim.NewStorage(capacity)
	for _, o := range opts {
		o.Apply(p)
	}
	if p.clock == nil {
		p.clock = func() float64 { return time.Since(p.start).Seconds() }
	}
	if p.dial == nil {
		p.dial = func(ctx context.Context, addr string) (net.Conn, error) {
			d := net.Dialer{Timeout: p.frameTimeout}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if p.maxContacts < 1 {
		p.maxContacts = 4 * runtime.GOMAXPROCS(0)
	}
	p.cache = metadata.NewCache(id, p.pthld)
	p.cContacts = p.obsv.Counter("peer.contacts")
	p.cRetries = p.obsv.Counter("peer.contact_retries")
	p.cAborts = p.obsv.Counter("peer.contact_aborts")
	p.cConflicts = p.obsv.Counter("peer.commit_conflicts")
	p.cRejects = p.obsv.Counter("peer.admission_rejected")
	p.cAcceptRetries = p.obsv.Counter("peer.accept_retries")
	p.cChunksSent = p.obsv.Counter("transfer.chunks_sent")
	p.cChunksRecv = p.obsv.Counter("transfer.chunks_received")
	p.cChunksResumed = p.obsv.Counter("transfer.chunks_resumed")
	p.cWastedBytes = p.obsv.Counter("transfer.wasted_bytes")
	p.hResumeRate = p.obsv.Histogram("transfer.resume_rate")
	p.gInflight = p.obsv.Gauge("peer.contacts_inflight")
	p.frags = transfer.NewStore(p.transfer.MaxFragmentBytes)
	p.selCfg.Metrics = selection.ObserverMetrics(p.obsv)
	p.fpc.SetMetrics(p.obsv.Counter("coverage.fp_cache_hits"), p.obsv.Counter("coverage.fp_cache_misses"))
	p.initGuard()
	if p.stateDir != "" {
		// Recovery failures are sticky rather than fatal here (New cannot
		// return an error): the peer exists but refuses to mutate state it
		// cannot make durable. Open surfaces the error directly.
		p.journalErr = p.openJournal()
	}
	return p
}

// ID returns the peer's node ID.
func (p *Peer) ID() model.NodeID { return p.id }

// MaxContacts returns the serve-side admission limit (see WithMaxContacts).
func (p *Peer) MaxContacts() int { return p.maxContacts }

// AddPhoto stores a locally taken photo (rejecting it if it cannot fit).
// Durable peers journal the admission before reporting success.
func (p *Peer) AddPhoto(photo model.Photo) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.journalErr != nil {
		return fmt.Errorf("peer %v: %w", p.id, p.journalErr)
	}
	if err := p.store.Add(photo); err != nil {
		return fmt.Errorf("peer %v: %w", p.id, err)
	}
	if p.jnl != nil {
		if err := p.jnl.Append(recPhotoAdd, photo.AppendBinary(nil)); err != nil {
			p.store.Remove(photo.ID) // keep memory behind, not ahead of, disk
			p.journalErr = fmt.Errorf("%w: journal photo: %w", ErrJournal, err)
			return fmt.Errorf("peer %v: %w", p.id, p.journalErr)
		}
	}
	p.storeGen++
	return nil
}

// Photos returns the current collection.
func (p *Peer) Photos() model.PhotoList {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.List()
}

// Coverage returns the photo coverage of the current collection — for the
// command center, the objective C_ph(F_0).
func (p *Peer) Coverage() coverage.Coverage {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fpc.Map().Of(p.store.List())
}

// DeliveryProb returns the peer's current PROPHET probability of reaching
// the command center.
func (p *Peer) DeliveryProb() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.table.DeliveryProb(p.clock())
}

// InflightContacts returns how many contact sessions (served + dialled) are
// currently running.
func (p *Peer) InflightContacts() int { return int(p.inflight.Load()) }

// Serve accepts contacts on the listener until it is closed, handling up to
// MaxContacts connections concurrently (admission beyond that is rejected
// by closing the connection — see WithMaxContacts). A contact that fails —
// timeout, corruption, protocol violation — is recorded (ContactErrors,
// LastContactError) and the peer keeps serving: one misbehaving or stalled
// remote must not take the node offline. Transient accept failures (EMFILE,
// ECONNABORTED, ...) are retried with capped backoff; only net.ErrClosed,
// context cancellation, or a permanent error end the loop. It is a
// ServeContext with the background context: it runs until the caller closes
// the listener.
func (p *Peer) Serve(l net.Listener) error {
	return p.ServeContext(context.Background(), l)
}

// ServeContext is Serve under a context: cancelling ctx closes the listener,
// interrupts the contacts in progress (their connections are
// deadline-poisoned), and returns ctx's error after the in-flight sessions
// drain. Closing the listener directly still stops the loop with a nil
// error, exactly like Serve.
func (p *Peer) ServeContext(ctx context.Context, l net.Listener) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if !p.serving.CompareAndSwap(false, true) {
		return fmt.Errorf("peer %v: %w", p.id, ErrServing)
	}
	defer p.serving.Store(false)
	stop := context.AfterFunc(ctx, func() { _ = l.Close() })
	defer stop()
	var wg sync.WaitGroup
	defer wg.Wait()
	backoff := p.retryBase
	for {
		conn, err := l.Accept()
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("peer %v: serve interrupted: %w", p.id, cerr)
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			if transientAccept(err) {
				// EMFILE, ECONNABORTED and friends starve themselves out;
				// returning here would take the whole node offline over a
				// burst of them.
				p.cAcceptRetries.Inc()
				if werr := p.wait(ctx, backoff); werr != nil {
					return fmt.Errorf("peer %v: serve interrupted: %w", p.id, werr)
				}
				backoff *= 2
				if backoff > p.retryMax {
					backoff = p.retryMax
				}
				continue
			}
			return fmt.Errorf("peer %v: accept: %w", p.id, err)
		}
		backoff = p.retryBase
		if !p.admitContact() {
			// Over the limit: reject cleanly rather than queue. The remote
			// sees its hello fail and treats it like any aborted contact.
			p.cRejects.Inc()
			_ = conn.Close()
			continue
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer p.active.Add(-1)
			err := p.contactCancellable(ctx, conn, false)
			_ = conn.Close()
			if err != nil && !errors.Is(err, io.EOF) {
				p.noteContactError(err)
			}
		}(conn)
	}
}

// admitContact claims a serve-side concurrency slot (released by the
// session goroutine).
func (p *Peer) admitContact() bool {
	for {
		n := p.active.Load()
		if n >= int64(p.maxContacts) {
			return false
		}
		if p.active.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Contact dials the address and initiates a contact, retrying transient
// dial/IO failures with capped exponential backoff (see WithRetry). A
// contact abort is safe to retry from scratch: storage mutations are
// atomic at contact commit, so a failed attempt leaves no partial state. It
// is a DialContext with the background context.
func (p *Peer) Contact(addr string) error {
	return p.DialContext(context.Background(), addr)
}

// DialContext is Contact under a context: the dial honours ctx, a
// cancellation mid-contact poisons the connection's deadline so the contact
// aborts at its next frame, and backoff sleeps between retries end early.
// On cancellation the returned error wraps ctx's error alongside the
// underlying failure, so errors.Is matches both.
func (p *Peer) DialContext(ctx context.Context, addr string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	backoff := p.retryBase
	attempts := p.retryAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = p.contactOnce(ctx, addr)
		if cerr := ctx.Err(); cerr != nil && err != nil {
			// The failure happened under a cancelled context — report the
			// cancellation joined with the IO error it surfaced as, so
			// callers can match either cause.
			err = fmt.Errorf("peer %v: contact interrupted: %w", p.id, errors.Join(cerr, err))
			p.noteContactError(err)
			return err
		}
		if err == nil || attempt >= attempts || !transient(err) {
			if err != nil {
				err = classifyContactErr(err)
				p.noteContactError(err)
			}
			return err
		}
		p.cRetries.Inc()
		if werr := p.wait(ctx, backoff); werr != nil {
			err = fmt.Errorf("peer %v: contact interrupted: %w", p.id, errors.Join(werr, err))
			p.noteContactError(err)
			return err
		}
		backoff *= 2
		if backoff > p.retryMax {
			backoff = p.retryMax
		}
	}
}

func (p *Peer) contactOnce(ctx context.Context, addr string) error {
	conn, err := p.dial(ctx, addr)
	if err != nil {
		return fmt.Errorf("peer %v: dial %s: %w", p.id, addr, err)
	}
	defer func() { _ = conn.Close() }()
	return p.contactCancellable(ctx, conn, true)
}

// contactCancellable runs one contact, poisoning the connection's deadline
// the moment ctx is cancelled so a blocked frame read/write fails promptly
// instead of waiting out its frame timeout. A failure under a cancelled
// context reports both causes — the cancellation and the IO/protocol error
// it surfaced as — joined, so errors.Is matches either.
func (p *Peer) contactCancellable(ctx context.Context, conn net.Conn, initiator bool) error {
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Now()) })
		defer stop()
	}
	err := p.ContactConn(conn, initiator)
	if cerr := ctx.Err(); cerr != nil && err != nil {
		return fmt.Errorf("peer %v: contact interrupted: %w", p.id, errors.Join(cerr, err))
	}
	return err
}

// wait sleeps for d or until ctx is cancelled. Without a cancellable
// context it defers to the injected sleep (tests replace it to skip
// backoff).
func (p *Peer) wait(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		p.sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ContactConn runs one contact over an established connection. When the
// transport supports deadlines (net.Conn does), every frame read/write is
// bounded by the frame timeout and the whole contact by the contact
// timeout, so a stalled remote ends the contact with ErrTimeout instead of
// hanging. Any mid-contact failure aborts gracefully: unfinished transfers
// are discarded and the peer's storage and metadata caches stay exactly as
// the last committed session left them — an aborted session leaves no
// partial state, in memory or on disk.
func (p *Peer) ContactConn(conn io.ReadWriter, initiator bool) error {
	conn = newTimedConn(conn, p.frameTimeout, p.contactTimeout)
	if err := p.runContact(conn, initiator); err != nil {
		return fmt.Errorf("peer %v: contact aborted: %w", p.id, err)
	}
	return nil
}

// runContact brackets one contact with the session protocol: snapshot the
// peer state, run the wire exchange against the snapshot, and commit the
// session's op log in one short critical section (session.go). The journal
// sees exactly one record per committed contact, appended under the peer
// lock — the single-writer WAL discipline of durable.go is unchanged.
func (p *Peer) runContact(conn io.ReadWriter, initiator bool) error {
	s, err := p.beginSession()
	if err != nil {
		return err
	}
	if p.guard != nil {
		gc := &guardConn{rw: conn, p: p}
		s.gc = gc
		conn = gc
	}
	p.inflight.Add(1)
	p.gInflight.Add(1)
	defer func() {
		p.inflight.Add(-1)
		p.gInflight.Add(-1)
	}()
	defer s.finishTransfer()
	if err := s.run(conn, initiator); err != nil {
		return err
	}
	if s.committed {
		return nil
	}
	return s.commit()
}

// TransferStats aggregates the peer's chunked-transfer activity: the wire
// counters (maintained whether or not an observer is attached) merged with
// the reassembly store's footprint.
type TransferStats struct {
	// ChunksSent and ChunksReceived count chunk frames on the wire.
	ChunksSent     int64
	ChunksReceived int64
	// ChunksResumed counts chunks a resume offer let the sender skip;
	// ResumedBytes are their payload bytes — traffic saved by persistence.
	ChunksResumed int64
	ResumedBytes  int64
	// PhotosResumed counts photos completed across more than one contact.
	PhotosResumed int64
	// Partials and FragmentBytes are the reassembly store's current
	// footprint; WastedBytes counts received bytes that never contributed
	// to an admitted photo (discards, mismatches, evictions), across both
	// the shared store and contact-local scratch stores.
	Partials      int
	FragmentBytes int64
	WastedBytes   int64
}

// TransferStats returns a snapshot of the peer's transfer counters.
func (p *Peer) TransferStats() TransferStats {
	st := p.frags.Stats()
	return TransferStats{
		ChunksSent:     p.tChunksSent.Load(),
		ChunksReceived: p.tChunksRecv.Load(),
		ChunksResumed:  p.tChunksResumed.Load(),
		ResumedBytes:   p.tResumedBytes.Load(),
		PhotosResumed:  p.tPhotosRes.Load(),
		Partials:       st.Partials,
		FragmentBytes:  st.FragmentBytes,
		WastedBytes:    st.WastedBytes + p.tWastedLocal.Load(),
	}
}

// readAs reads one message and asserts its concrete type.
func readAs[M wire.Message](r io.Reader) (M, error) {
	var zero M
	msg, err := wire.Read(r)
	if err != nil {
		return zero, err
	}
	m, ok := msg.(M)
	if !ok {
		return zero, fmt.Errorf("%w: got %v, want %v", ErrProtocol, msg.Type(), zero.Type())
	}
	return m, nil
}

// readFrom is readAs over a negotiated connection (version-gated reads).
func readFrom[M wire.Message](c *wire.Conn) (M, error) {
	var zero M
	msg, err := c.Read()
	if err != nil {
		return zero, err
	}
	m, ok := msg.(M)
	if !ok {
		return zero, fmt.Errorf("%w: got %v, want %v", ErrProtocol, msg.Type(), zero.Type())
	}
	return m, nil
}
