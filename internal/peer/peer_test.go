package peer

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"photodtn/internal/coverage"
	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/selection"
	"photodtn/internal/wire"
)

const mb = int64(1) << 20

func poiMap() *coverage.Map {
	return coverage.NewMap([]model.PoI{model.NewPoI(0, geo.Vec{})}, geo.Radians(30))
}

func viewFrom(owner model.NodeID, seq uint32, deg float64) model.Photo {
	loc := geo.FromAngle(geo.Radians(deg)).Scale(60)
	return model.Photo{
		ID:          model.MakePhotoID(owner, seq),
		Owner:       owner,
		Location:    loc,
		Range:       120,
		FOV:         geo.Radians(60),
		Orientation: geo.Radians(deg + 180),
		Size:        4 * mb,
	}
}

// contact runs one in-memory contact between two peers over a pipe.
func contact(t *testing.T, a, b *Peer) {
	t.Helper()
	ca, cb := net.Pipe()
	defer func() { _ = ca.Close(); _ = cb.Close() }()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = a.ContactConn(ca, true)
	}()
	go func() {
		defer wg.Done()
		errs[1] = b.ContactConn(cb, false)
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("side %d: %v", i, err)
		}
	}
}

func fixedClock(at float64) Option {
	return WithClock(func() float64 { return at })
}

func newTestPeer(t *testing.T, id model.NodeID, m *coverage.Map, capacity int64, opts ...Option) *Peer {
	t.Helper()
	opts = append([]Option{WithSeed(int64(id) + 100), fixedClock(1000)}, opts...)
	return New(id, m, capacity, opts...)
}

func TestPeerExchangeSharesViews(t *testing.T) {
	m := poiMap()
	a := newTestPeer(t, 1, m, 8*mb)
	b := newTestPeer(t, 2, m, 8*mb)
	east := viewFrom(1, 0, 0)
	eastDup := viewFrom(2, 0, 0)
	north := viewFrom(2, 1, 90)
	if err := a.AddPhoto(east); err != nil {
		t.Fatal(err)
	}
	for _, p := range []model.Photo{eastDup, north} {
		if err := b.AddPhoto(p); err != nil {
			t.Fatal(err)
		}
	}

	contact(t, a, b)

	// Both sides should hold one east view and the north view.
	for _, p := range []*Peer{a, b} {
		photos := p.Photos()
		if len(photos) != 2 {
			t.Fatalf("peer %v holds %d photos (%v)", p.ID(), len(photos), photos.IDs())
		}
		cov := p.Coverage()
		want := coverage.Coverage{Point: 1, Aspect: geo.Radians(120)}
		if cov.Cmp(want) != 0 {
			t.Fatalf("peer %v coverage %v, want %v", p.ID(), cov, want)
		}
	}
}

func TestPeerPlansAgree(t *testing.T) {
	// After a contact, the union of the two collections must contain no
	// duplicate-only storage (the two sides executed the same plan). Run a
	// couple of pair contacts with random-ish photos.
	m := poiMap()
	a := newTestPeer(t, 1, m, 12*mb)
	b := newTestPeer(t, 2, m, 12*mb)
	for i := uint32(0); i < 3; i++ {
		if err := a.AddPhoto(viewFrom(1, i, float64(i)*40)); err != nil {
			t.Fatal(err)
		}
		if err := b.AddPhoto(viewFrom(2, i, float64(i)*40+120)); err != nil {
			t.Fatal(err)
		}
	}
	contact(t, a, b)
	// Joint plan: every stored photo must appear in the joint pool, and
	// each node's collection must fit its capacity.
	for _, p := range []*Peer{a, b} {
		if p.Photos().TotalSize() > 12*mb {
			t.Fatalf("peer %v exceeded capacity", p.ID())
		}
	}
}

func TestUploadToCommandCenter(t *testing.T) {
	m := poiMap()
	cc := newTestPeer(t, model.CommandCenter, m, 0)
	n := newTestPeer(t, 1, m, 20*mb)
	useful := viewFrom(1, 0, 0)
	useful2 := viewFrom(1, 1, 90)
	irrelevant := viewFrom(1, 2, 0)
	irrelevant.Location = geo.Vec{X: 1e6, Y: 1e6}
	for _, p := range []model.Photo{useful, useful2, irrelevant} {
		if err := n.AddPhoto(p); err != nil {
			t.Fatal(err)
		}
	}

	contact(t, n, cc) // node initiates toward the command center

	got := cc.Photos()
	if len(got) != 2 {
		t.Fatalf("CC received %d photos, want 2 (%v)", len(got), got.IDs())
	}
	if got.Contains(irrelevant.ID) {
		t.Fatal("irrelevant photo uploaded")
	}
	want := coverage.Coverage{Point: 1, Aspect: geo.Radians(120)}
	if cc.Coverage().Cmp(want) != 0 {
		t.Fatalf("CC coverage = %v, want %v", cc.Coverage(), want)
	}
	// Delivered photos freed at the node; irrelevant one still there.
	if n.Photos().Contains(useful.ID) || !n.Photos().Contains(irrelevant.ID) {
		t.Fatalf("node storage after upload: %v", n.Photos().IDs())
	}
	// The node learned the delivery probability.
	if n.DeliveryProb() <= 0 {
		t.Fatal("delivery probability did not increase after meeting the CC")
	}
}

func TestCommandCenterInitiatedContact(t *testing.T) {
	m := poiMap()
	cc := newTestPeer(t, model.CommandCenter, m, 0)
	n := newTestPeer(t, 1, m, 20*mb)
	if err := n.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	contact(t, cc, n) // CC initiates (data mule passing by)
	if len(cc.Photos()) != 1 {
		t.Fatalf("CC received %d photos", len(cc.Photos()))
	}
}

func TestAckPropagatesThroughPeers(t *testing.T) {
	m := poiMap()
	cc := newTestPeer(t, model.CommandCenter, m, 0)
	a := newTestPeer(t, 1, m, 20*mb)
	b := newTestPeer(t, 2, m, 20*mb)
	if err := a.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPhoto(viewFrom(2, 0, 0)); err != nil { // same view
		t.Fatal(err)
	}
	contact(t, a, cc) // a's east view is delivered
	contact(t, a, b)  // b learns via the ACK that east is covered
	if len(b.Photos()) != 0 {
		t.Fatalf("b still holds %v despite the delivery ACK", b.Photos().IDs())
	}
}

func TestUploadSecondContactSendsNothing(t *testing.T) {
	m := poiMap()
	cc := newTestPeer(t, model.CommandCenter, m, 0)
	n := newTestPeer(t, 1, m, 20*mb)
	if err := n.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	contact(t, n, cc)
	contact(t, n, cc)
	if len(cc.Photos()) != 1 {
		t.Fatalf("CC photos = %d, want 1", len(cc.Photos()))
	}
}

func TestContactOverTCP(t *testing.T) {
	m := poiMap()
	cc := newTestPeer(t, model.CommandCenter, m, 0)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- cc.Serve(l) }()

	nodes := make([]*Peer, 0, 3)
	for i := model.NodeID(1); i <= 3; i++ {
		n := newTestPeer(t, i, m, 20*mb)
		if err := n.AddPhoto(viewFrom(i, 0, float64(i)*100)); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		if err := n.Contact(l.Addr().String()); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(cc.Photos()); got != 3 {
		t.Fatalf("CC received %d photos, want 3", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestContactDialFailure(t *testing.T) {
	n := newTestPeer(t, 1, poiMap(), 20*mb)
	if err := n.Contact("127.0.0.1:1"); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestProtocolViolation(t *testing.T) {
	m := poiMap()
	n := newTestPeer(t, 1, m, 20*mb)
	ca, cb := net.Pipe()
	defer func() { _ = ca.Close(); _ = cb.Close() }()
	done := make(chan error, 1)
	go func() { done <- n.ContactConn(ca, true) }()
	// Respond to the hello with a Bye: a protocol violation.
	if _, err := wire.Read(cb); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(cb, wire.Bye{}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

func TestAddPhotoCapacity(t *testing.T) {
	n := newTestPeer(t, 1, poiMap(), 4*mb)
	if err := n.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddPhoto(viewFrom(1, 1, 90)); err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestWithSelectionConfig(t *testing.T) {
	cfg := selection.Config{ExactLimit: 2, Samples: 8}
	n := New(1, poiMap(), 4*mb, WithSelectionConfig(cfg), WithSeed(1), fixedClock(0))
	if n.selCfg.ExactLimit != 2 || n.selCfg.Samples != 8 {
		t.Fatal("selection config not applied")
	}
}

func TestManyPeerMesh(t *testing.T) {
	// A small mesh: 4 peers plus CC; photos spread across peers; peers
	// contact each other pairwise and then one gateway uploads. The CC must
	// end with a diverse set.
	m := poiMap()
	cc := newTestPeer(t, model.CommandCenter, m, 0)
	peers := make([]*Peer, 0, 4)
	for i := model.NodeID(1); i <= 4; i++ {
		p := newTestPeer(t, i, m, 40*mb)
		for k := uint32(0); k < 2; k++ {
			photo := viewFrom(i, k, float64(i)*90+float64(k)*45)
			if err := p.AddPhoto(photo); err != nil {
				t.Fatal(err)
			}
		}
		peers = append(peers, p)
	}
	// Gateway (peer 1) meets the CC early so its delivery probability is
	// high when the others meet it.
	contact(t, peers[0], cc)
	for i := 1; i < len(peers); i++ {
		contact(t, peers[i], peers[0])
	}
	contact(t, peers[0], cc)
	cov := cc.Coverage()
	if cov.Point != 1 {
		t.Fatalf("CC point coverage = %v", cov.Point)
	}
	if cov.Aspect < geo.Radians(180) {
		t.Fatalf("CC aspect coverage only %.0f°", geo.Degrees(cov.Aspect))
	}
}

func TestPeerString(t *testing.T) {
	// Exercise fmt paths indirectly.
	n := newTestPeer(t, 5, poiMap(), 4*mb)
	if got := fmt.Sprintf("%v", n.ID()); got != "n5" {
		t.Fatalf("ID string = %q", got)
	}
}
