package peer

import (
	"context"
	"errors"
	"net"
	"syscall"
	"testing"
	"time"

	"photodtn/internal/model"
)

// TestServeOnClosedListenerReturnsNil: serving an already-closed listener
// is a clean no-op, exactly like a listener closed mid-serve.
func TestServeOnClosedListenerReturnsNil(t *testing.T) {
	p := newTestPeer(t, 1, poiMap(), 8*mb)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Serve(l) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve on closed listener = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve on closed listener hung")
	}
}

// TestDoubleServeRejected: a second concurrent Serve fails fast with
// ErrServing instead of racing the first accept loop for the radio.
func TestDoubleServeRejected(t *testing.T) {
	p := newTestPeer(t, 1, poiMap(), 8*mb)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	done := make(chan error, 1)
	go func() { done <- p.Serve(l) }()
	deadline := time.Now().Add(5 * time.Second)
	for !p.serving.Load() {
		if time.Now().After(deadline) {
			t.Fatal("first Serve never started")
		}
		time.Sleep(time.Millisecond)
	}

	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l2.Close() }()
	if err := p.Serve(l2); !errors.Is(err, ErrServing) {
		t.Fatalf("second Serve = %v, want ErrServing", err)
	}

	// The first loop is unaffected and still shuts down cleanly.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first Serve = %v, want nil", err)
	}
	// With the first loop gone the peer may serve again.
	l3, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Serve(l3); err != nil {
		t.Fatalf("Serve after shutdown = %v, want nil", err)
	}
}

// TestContactAfterServeCancellation: cancelling ServeContext must leave the
// peer fully usable — the next Contact works and carries photos.
func TestContactAfterServeCancellation(t *testing.T) {
	m := poiMap()
	p := newTestPeer(t, 1, m, 8*mb)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.ServeContext(ctx, l) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled ServeContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled ServeContext hung")
	}

	cc := newTestPeer(t, model.CommandCenter, m, 0)
	lcc, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = lcc.Close() }()
	go func() { _ = cc.Serve(lcc) }()
	if err := p.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Contact(lcc.Addr().String()); err != nil {
		t.Fatalf("Contact after cancelled serve = %v", err)
	}
	if len(cc.Photos()) != 1 {
		t.Fatalf("command center holds %d photos, want 1", len(cc.Photos()))
	}
}

// TestRetriesExhaustedSentinel: a transient failure that survives every
// attempt surfaces as ErrRetriesExhausted with the cause in the chain.
func TestRetriesExhaustedSentinel(t *testing.T) {
	refused := &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	var attempts int
	p := newTestPeer(t, 1, poiMap(), 8*mb,
		WithRetry(3, time.Millisecond, time.Millisecond),
		WithDialer(func(string) (net.Conn, error) {
			attempts++
			return nil, refused
		}))
	p.sleep = func(time.Duration) {}
	err := p.Contact("nowhere:1")
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("cause lost from chain: %v", err)
	}
	if errors.Is(err, ErrContactRejected) {
		t.Fatalf("err = %v must not also be ErrContactRejected", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if !errors.Is(p.LastContactError(), ErrRetriesExhausted) {
		t.Fatalf("LastContactError = %v, want the classified error", p.LastContactError())
	}
}

// TestContactRejectedSentinel: a permanent failure is tagged
// ErrContactRejected without burning retries.
func TestContactRejectedSentinel(t *testing.T) {
	permanent := errors.New("authentication rejected")
	var attempts int
	p := newTestPeer(t, 1, poiMap(), 8*mb,
		WithRetry(5, time.Millisecond, time.Second),
		WithDialer(func(string) (net.Conn, error) {
			attempts++
			return nil, permanent
		}))
	err := p.Contact("nowhere:1")
	if !errors.Is(err, ErrContactRejected) {
		t.Fatalf("err = %v, want ErrContactRejected", err)
	}
	if !errors.Is(err, permanent) {
		t.Fatalf("cause lost from chain: %v", err)
	}
	if errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v must not also be ErrRetriesExhausted", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
}
