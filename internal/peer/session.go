package peer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"photodtn/internal/guard"
	"photodtn/internal/model"
	fsm "photodtn/internal/peer/session"
	"photodtn/internal/selection"
	"photodtn/internal/transfer"
	"photodtn/internal/wire"
)

// ErrConflict reports that a session's commit lost a race with a concurrent
// commit it could not be reconciled with (the re-planned collection no
// longer fits). The contact aborts gracefully per §III-D — no partial state
// — and the next contact re-plans against the fresh state.
var ErrConflict = errors.New("peer: concurrent commit conflict")

// session is one contact's private state. It is created under the peer
// lock (beginSession) with a deep clone of the protocol state and a few
// scalars, then runs the whole wire exchange without any peer lock: every
// protocol decision — metadata validity, the joint selection, transfer
// want-lists — reads and writes the clone. Mutations are double-entry: each
// one is applied to the clone AND recorded as a framed op (the same framing
// the journal replays), so that commit can re-apply the identical ops to
// the shared state under the lock. Live commit and crash recovery are the
// same code path by construction, which is what keeps StateDigest
// convergent under concurrency.
type session struct {
	p  *Peer
	st peerState // private clones; all protocol reads/writes go here

	now     float64 // peer clock at snapshot time
	nonce   uint64  // hello nonce, drawn under the peer lock
	baseGen uint64  // p.storeGen at snapshot time
	baseIDs map[model.PhotoID]bool

	ops       []byte // framed sub-records, applied locally as recorded
	storeOps  bool   // ops touch the photo store (commit bumps storeGen)
	committed bool   // commit already ran (mid-protocol commit points)

	// Transfer state (wire v2): the negotiated connection and, when resume
	// is off (or a photo fits one chunk), a contact-local scratch
	// reassembly store whose leftovers are wasted at teardown — the v1
	// discard semantics, but measured.
	wc         *wire.Conn
	localFrags *transfer.Store

	// Protocol state machine (always on) and guard bookkeeping. remote is
	// known once the hello exchange names the peer; gc is the byte-metering
	// wrapper installed when the guard is armed.
	fsm         *fsm.Machine
	remote      model.NodeID
	remoteKnown bool
	gc          *guardConn
}

// beginSession snapshots the peer under the lock: state clones, the clock,
// the nonce, and the store generation the conflict check validates against.
func (p *Peer) beginSession() (*session, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.journalErr != nil {
		return nil, p.journalErr
	}
	p.cContacts.Inc()
	s := &session{
		p:       p,
		st:      p.peerState.clone(),
		now:     p.clock(),
		nonce:   p.rng.Uint64(),
		baseGen: p.storeGen,
		baseIDs: make(map[model.PhotoID]bool, p.store.Len()),
		fsm:     fsm.NewMachine(),
	}
	for _, photo := range p.store.Photos() {
		s.baseIDs[photo.ID] = true
	}
	return s, nil
}

// to advances the protocol state machine. Transitions are driven by local
// code in fixed order, so a failure here is a sequencing bug, not remote
// misbehaviour — it aborts with ErrProtocol but reports nothing.
func (s *session) to(next fsm.Phase) error {
	if err := s.fsm.To(next); err != nil {
		return fmt.Errorf("%w: %w", ErrProtocol, err)
	}
	return nil
}

// enterTransfer advances to the contact's next transfer leg.
func (s *session) enterTransfer() error {
	ph, err := s.fsm.TransferPhase()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrProtocol, err)
	}
	return s.to(ph)
}

// readMsg reads one frame and admits its type against the current protocol
// phase: an out-of-order, duplicate, or phase-invalid message is a typed
// violation the guard scores, and the contact aborts cleanly.
func (s *session) readMsg() (wire.Message, error) {
	msg, err := s.wc.Read()
	if err != nil {
		return nil, err
	}
	if err := s.fsm.Admit(msg.Type()); err != nil {
		return nil, s.violationf(guard.ReasonPhase, "%v", err)
	}
	return msg, nil
}

// readIn reads one phase-admitted message and asserts its concrete type; a
// mismatch within the phase's allowed set is still a violation (the remote
// broke the round's turn order).
func readIn[M wire.Message](s *session) (M, error) {
	var zero M
	msg, err := s.readMsg()
	if err != nil {
		return zero, err
	}
	m, ok := msg.(M)
	if !ok {
		return zero, s.violationf(guard.ReasonPhase, "got %v, want %v", msg.Type(), zero.Type())
	}
	return m, nil
}

// record applies one op to the session's private state and appends it to
// the op log the commit will replay against the shared state. The apply
// happens now — later protocol steps must see earlier mutations exactly as
// the serialised protocol did.
func (s *session) record(kind byte, payload []byte) error {
	if err := s.st.apply(kind, payload); err != nil {
		return err
	}
	s.ops = append(s.ops, kind)
	s.ops = binary.LittleEndian.AppendUint32(s.ops, uint32(len(payload)))
	s.ops = append(s.ops, payload...)
	if kind == subStoreReplace || kind == subStoreAdd {
		s.storeOps = true
	}
	return nil
}

// commit validates the session against the live state and applies its op
// log in one short critical section: conflict reconciliation, the single
// journal append (the WAL stays single-writer — every Append happens here,
// under the peer lock), then the in-memory apply of the exact bytes that
// were journaled. Memory never leads disk.
func (s *session) commit() error {
	p := s.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if s.committed {
		return nil
	}
	if p.journalErr != nil {
		return p.journalErr
	}
	ops, err := s.reconcileLocked()
	if err != nil {
		return err
	}
	if p.jnl != nil {
		if err := p.jnl.Append(recContactCommit, ops); err != nil {
			p.journalErr = fmt.Errorf("%w: commit contact: %w", ErrJournal, err)
			return p.journalErr
		}
	}
	if err := p.peerState.applyOps(ops); err != nil {
		// Reconciliation validated every op against the live state, so this
		// is unreachable short of a bug. For a durable peer the record is
		// already on disk — poison so memory never silently lags it.
		err = fmt.Errorf("apply commit: %w", err)
		if p.jnl != nil {
			p.journalErr = fmt.Errorf("%w: %w", ErrJournal, err)
			err = p.journalErr
		}
		return err
	}
	if s.storeOps {
		p.storeGen++
	}
	s.committed = true
	// Settle the reassembly store before any checkpoint: partials whose
	// photo this commit admitted or learned was delivered are dropped (and
	// the drops journaled) so neither the log nor a snapshot carries them.
	if err := p.reconcileFragsLocked(); err != nil {
		return err
	}
	return p.noteCommitLocked()
}

// reconcileLocked returns the op batch to commit. The fast path — no
// concurrent commit touched the store since the snapshot — passes the log
// through untouched. Otherwise each store op is validated against the live
// state: duplicate adds are dropped (a racing relay delivered the photo
// first), adds that no longer fit abort, and a reallocation's ReplaceAll is
// re-planned (see replanReplace) or aborted.
func (s *session) reconcileLocked() ([]byte, error) {
	p := s.p
	if !s.storeOps || p.storeGen == s.baseGen {
		return s.ops, nil
	}
	p.cConflicts.Inc()
	out := make([]byte, 0, len(s.ops))
	addFree := p.store.Free()
	buf := s.ops
	for len(buf) > 0 {
		if len(buf) < 5 {
			return nil, fmt.Errorf("malformed session op log: %d trailing bytes", len(buf))
		}
		n := binary.LittleEndian.Uint32(buf[1:])
		if uint64(len(buf)) < 5+uint64(n) {
			return nil, fmt.Errorf("malformed session op %d: claims %d bytes, has %d", buf[0], n, len(buf)-5)
		}
		frame := buf[:5+n]
		kind, payload := frame[0], frame[5:]
		buf = buf[5+n:]
		switch kind {
		case subStoreAdd:
			photo, _, err := model.DecodePhoto(payload)
			if err != nil {
				return nil, err
			}
			if p.store.Has(photo.ID) {
				continue // already here via a concurrent commit: drop the duplicate
			}
			if photo.Size > addFree {
				return nil, fmt.Errorf("%w: concurrent commits left no room for photo %v", ErrConflict, photo.ID)
			}
			addFree -= photo.Size
			out = append(out, frame...)
		case subStoreReplace:
			final, _, err := model.DecodePhotoList(payload)
			if err != nil {
				return nil, err
			}
			merged, err := s.replanReplace(final)
			if err != nil {
				return nil, err
			}
			pl := merged.AppendBinary(nil)
			out = append(out, subStoreReplace)
			out = binary.LittleEndian.AppendUint32(out, uint32(len(pl)))
			out = append(out, pl...)
		default:
			out = append(out, frame...)
		}
	}
	return out, nil
}

// replanReplace merges a §III-D reallocation computed against a stale
// snapshot with what concurrent commits did meanwhile: photos that arrived
// since the snapshot are kept (the plan never judged them), photos the plan
// kept but a concurrent commit removed stay gone (they were delivered or
// moved), and the merge aborts with ErrConflict when it no longer fits the
// capacity.
func (s *session) replanReplace(final model.PhotoList) (model.PhotoList, error) {
	p := s.p
	merged := make(model.PhotoList, 0, len(final))
	var total int64
	inFinal := make(map[model.PhotoID]bool, len(final))
	for _, photo := range final {
		inFinal[photo.ID] = true
		if s.baseIDs[photo.ID] && !p.store.Has(photo.ID) {
			continue // concurrently removed: it was delivered or moved on
		}
		merged = append(merged, photo)
		total += photo.Size
	}
	for _, photo := range p.store.Photos() {
		if s.baseIDs[photo.ID] || inFinal[photo.ID] {
			continue
		}
		merged = append(merged, photo) // arrived mid-session: keep it
		total += photo.Size
	}
	if total > p.store.Capacity() {
		return nil, fmt.Errorf("%w: re-planned collection needs %d bytes, capacity %d",
			ErrConflict, total, p.store.Capacity())
	}
	return merged, nil
}

// run executes the wire protocol of one contact against the session's
// snapshot. It is the serialised contactSession of earlier revisions with
// every peer-state access redirected to the clone.
func (s *session) run(conn io.ReadWriter, initiator bool) error {
	p := s.p
	now := s.now

	mine := wire.Hello{
		Node:         p.id,
		Lambda:       s.st.rate.Rate(now),
		DeliveryProb: s.deliveryProb(now),
		Time:         now,
		Nonce:        s.nonce,
		Capacity:     s.st.store.Capacity(),
	}
	wc, theirs, err := wire.Negotiate(conn, mine, p.transfer.wireParams(), initiator)
	if err != nil {
		if errors.Is(err, wire.ErrHandshake) {
			return fmt.Errorf("%w: %w", ErrProtocol, err)
		}
		return err
	}
	s.wc = wc
	s.remote, s.remoteKnown = theirs.Node, true
	if s.gc != nil {
		s.gc.bind(theirs.Node)
	}
	// Guard admission and hello validation happen before the encounter is
	// recorded: a shed or lying peer must not influence the PROPHET table
	// or the learned contact rate, even on the session's private clone.
	if p.guard != nil {
		if err := p.guard.AdmitContact(theirs.Node, p.clock()); err != nil {
			return wrapAdmitErr(err)
		}
		if v := p.guardCfg.CheckHello(theirs, now); v != nil {
			return s.violation(v)
		}
	}
	// Use a shared session clock so both sides make identical validity and
	// selection decisions.
	session := math.Max(mine.Time, theirs.Time)

	// Rate observation + PROPHET encounter + transitivity toward the
	// command center with the advertised predictability.
	if err := s.record(subEncounter, encodeEncounter(theirs.Node, now, theirs.DeliveryProb)); err != nil {
		return err
	}

	// Metadata exchange: own collection first, then gossiped cache entries.
	// Strict turn-taking (initiator writes first) keeps the protocol
	// deadlock-free even over unbuffered transports.
	if err := s.to(fsm.PhaseMetadata); err != nil {
		return err
	}
	var md wire.Metadata
	if initiator {
		if err := s.wc.Write(s.metadataMsg(session)); err != nil {
			return err
		}
		m, err := readIn[wire.Metadata](s)
		if err != nil {
			return err
		}
		if err := s.checkMetadata(m, session); err != nil {
			return err
		}
		md = m
	} else {
		m, err := readIn[wire.Metadata](s)
		if err != nil {
			return err
		}
		// Validate before answering: a poisoned snapshot is not worth the
		// bandwidth of this node's own metadata.
		if err := s.checkMetadata(m, session); err != nil {
			return err
		}
		if err := s.wc.Write(s.metadataMsg(session)); err != nil {
			return err
		}
		md = m
	}
	peerPhotos, err := s.absorbMetadata(theirs, md, session)
	if err != nil {
		return err
	}

	switch {
	case theirs.Node.IsCommandCenter():
		return s.upload(session)
	case p.id.IsCommandCenter():
		return s.receiveUpload()
	default:
		return s.reallocate(initiator, mine, theirs, peerPhotos, session)
	}
}

func (s *session) deliveryProb(now float64) float64 {
	if s.p.id.IsCommandCenter() {
		return 1
	}
	return s.st.table.DeliveryProb(now)
}

// metadataMsg builds the metadata message: self entry first, then the
// valid cache entries.
func (s *session) metadataMsg(session float64) wire.Metadata {
	md := wire.Metadata{Entries: []wire.MetaEntry{{
		Node:      s.p.id,
		Lambda:    s.st.rate.Rate(session),
		P:         s.deliveryProb(session),
		Timestamp: session,
		Photos:    s.st.store.List(),
	}}}
	for _, e := range s.st.cache.ValidEntries(session) {
		md.Entries = append(md.Entries, wire.MetaEntry{
			Node: e.Node, Lambda: e.Lambda, P: e.P, Timestamp: e.Timestamp, Photos: e.Photos,
		})
	}
	return md
}

// checkMetadata validates an inbound metadata message (guard only). It runs
// before this node answers with its own metadata and before any entry
// touches even the session clone: poisoned metadata aborts the contact with
// nothing applied and nothing spent.
func (s *session) checkMetadata(md wire.Metadata, session float64) error {
	if s.p.guard == nil {
		return nil
	}
	if v := s.p.guardCfg.CheckMetadata(md, session); v != nil {
		return s.violation(v)
	}
	return nil
}

// absorbMetadata stores the peer's snapshot and gossip, returning the
// peer's own collection.
func (s *session) absorbMetadata(h wire.Hello, md wire.Metadata, session float64) (model.PhotoList, error) {
	var peerPhotos model.PhotoList
	for i, e := range md.Entries {
		entry := wire.MetaEntry{
			Node: e.Node, Lambda: e.Lambda, P: e.P, Timestamp: e.Timestamp, Photos: e.Photos,
		}
		if i == 0 && e.Node == h.Node {
			peerPhotos = e.Photos
			entry.Timestamp = session
		}
		if err := s.record(subMetaPut, wire.AppendMetaEntry(nil, entry)); err != nil {
			return nil, err
		}
	}
	if err := s.record(subMetaDrop, encodeMetaDrop(session)); err != nil {
		return nil, err
	}
	return peerPhotos, nil
}

// reallocate runs the §III-D exchange with a fellow participant.
func (s *session) reallocate(initiator bool, mine, theirs wire.Hello, peerPhotos model.PhotoList, session float64) error {
	p := s.p
	selCfg := p.selCfg
	selCfg.Seed = int64(mine.Nonce ^ theirs.Nonce)

	var ccPhotos model.PhotoList
	var background []selection.Participant
	for _, e := range s.st.cache.ValidEntries(session) {
		switch {
		case e.Node.IsCommandCenter():
			ccPhotos = e.Photos
		case e.Node == p.id || e.Node == theirs.Node:
			// The live collections are already in the allocs.
		default:
			background = append(background, selection.Participant{Node: e.Node, Photos: e.Photos, P: e.P})
		}
	}

	// Both sides order the allocs identically (initiator first) so the
	// jointly-seeded greedy is bit-for-bit reproducible.
	myAlloc := selection.Alloc{Node: p.id, P: mine.DeliveryProb, Capacity: s.st.store.Capacity(), Photos: s.st.store.List()}
	peerAlloc := selection.Alloc{Node: theirs.Node, P: theirs.DeliveryProb, Capacity: theirs.Capacity, Photos: peerPhotos}
	var res selection.Result
	var mySel model.PhotoList
	if initiator {
		res = selection.Reallocate(p.fpc, selCfg, ccPhotos, background, myAlloc, peerAlloc)
		mySel = res.ASel
	} else {
		res = selection.Reallocate(p.fpc, selCfg, ccPhotos, background, peerAlloc, myAlloc)
		mySel = res.BSel
	}

	// Request the selected photos this node lacks. On a v2 session the
	// request is followed by a resume offer: the partial progress this node
	// already holds for the photos it wants, so the sender skips chunks
	// that landed in an earlier contact.
	var want []model.PhotoID
	for _, photo := range mySel {
		if !s.st.store.Has(photo.ID) {
			want = append(want, photo.ID)
		}
	}
	if err := s.to(fsm.PhasePlan); err != nil {
		return err
	}
	if initiator {
		if err := s.wc.Write(wire.PhotoRequest{IDs: want}); err != nil {
			return err
		}
		if err := s.sendOffer(want); err != nil {
			return err
		}
		theirReq, err := readIn[wire.PhotoRequest](s)
		if err != nil {
			return err
		}
		theirOffer, err := s.readOffer(theirReq.IDs)
		if err != nil {
			return err
		}
		if err := s.sendPhotos(theirReq.IDs, theirOffer); err != nil {
			return err
		}
		received, err := s.receivePhotos(want)
		if err != nil {
			return err
		}
		return s.applyPlan(mySel, received, true)
	}
	theirReq, err := readIn[wire.PhotoRequest](s)
	if err != nil {
		return err
	}
	theirOffer, err := s.readOffer(theirReq.IDs)
	if err != nil {
		return err
	}
	if err := s.wc.Write(wire.PhotoRequest{IDs: want}); err != nil {
		return err
	}
	if err := s.sendOffer(want); err != nil {
		return err
	}
	received, err := s.receivePhotos(want)
	if err != nil {
		return err
	}
	if err := s.sendPhotos(theirReq.IDs, theirOffer); err != nil {
		return err
	}
	return s.applyPlan(mySel, received, false)
}

// applyPlan replaces the collection with the selection (kept ∪ received)
// and closes the contact. The responder commits before sending its final
// Bye: the initiator then only commits after seeing proof the responder's
// half of the reallocation is durable, which keeps a commit conflict on
// either side from splitting the exchange (the side that aborts does so
// before the other applies anything).
func (s *session) applyPlan(sel model.PhotoList, received map[model.PhotoID]model.Photo, initiator bool) error {
	final := make(model.PhotoList, 0, len(sel))
	for _, photo := range sel {
		if s.st.store.Has(photo.ID) {
			final = append(final, photo)
		} else if got, ok := received[photo.ID]; ok {
			final = append(final, got)
		}
	}
	if err := s.record(subStoreReplace, final.AppendBinary(nil)); err != nil {
		return fmt.Errorf("peer %v: apply plan: %w", s.p.id, err)
	}
	if err := s.to(fsm.PhaseClose); err != nil {
		return err
	}
	if initiator {
		if err := s.wc.Write(wire.Bye{}); err != nil {
			return err
		}
		_, err := readIn[wire.Bye](s)
		return err
	}
	if _, err := readIn[wire.Bye](s); err != nil {
		return err
	}
	if err := s.commit(); err != nil {
		return err
	}
	return s.wc.Write(wire.Bye{})
}

// sendPhotos streams the requested photos this node holds, terminated by an
// Ack listing what the receiver can now assemble. A v2 session moves the
// payloads as CRC-framed chunks behind the negotiated window (transfer.go);
// a v1 session sends whole PhotoData frames.
func (s *session) sendPhotos(ids []model.PhotoID, offers map[model.PhotoID]wire.ResumeEntry) error {
	if err := s.enterTransfer(); err != nil {
		return err
	}
	if s.wc.Version() >= wire.ProtocolV2 {
		return s.sendChunks(ids, offers)
	}
	var sent []model.PhotoID
	for _, id := range ids {
		photo, ok := s.st.store.Get(id)
		if !ok {
			continue
		}
		data := wire.PhotoData{Photo: photo}
		if s.p.payload > 0 {
			data.Payload = payloadFor(id, s.p.payload)
		}
		if err := s.wc.Write(data); err != nil {
			return err
		}
		sent = append(sent, id)
	}
	return s.wc.Write(wire.Ack{IDs: sent})
}

// receivePhotos reads the peer's transfer until the terminating Ack — chunk
// streams on a v2 session (transfer.go), whole PhotoData frames on v1. want
// lists the photos this node asked for (the resume bookkeeping needs it;
// v1 ignores it).
func (s *session) receivePhotos(want []model.PhotoID) (map[model.PhotoID]model.Photo, error) {
	if err := s.enterTransfer(); err != nil {
		return nil, err
	}
	if s.wc.Version() >= wire.ProtocolV2 {
		return s.receiveChunks(want)
	}
	// Plan pinning (guard only): a non-empty want-list bounds what the
	// remote may deliver. Empty means unpinned — a v1 upload carries no
	// announcement.
	var wantSet map[model.PhotoID]bool
	if s.p.guard != nil && len(want) > 0 {
		wantSet = make(map[model.PhotoID]bool, len(want))
		for _, id := range want {
			wantSet[id] = true
		}
	}
	out := make(map[model.PhotoID]model.Photo)
	for {
		msg, err := s.readMsg()
		if err != nil {
			return nil, err
		}
		switch m := msg.(type) {
		case wire.PhotoData:
			if s.p.guard != nil {
				if v := s.p.guardCfg.CheckPhotoData(m, wantSet); v != nil {
					return nil, s.violation(v)
				}
			}
			out[m.Photo.ID] = m.Photo
		case wire.Ack:
			return out, nil
		default:
			return nil, s.violationf(guard.ReasonPhase, "%v during photo transfer", msg.Type())
		}
	}
}

// upload sends the command center the photos that improve its coverage, in
// marginal-gain order, then frees the delivered copies. On a v2 session the
// send is preceded by an announce/offer exchange: the uploader lists what it
// will send and the command center answers with the chunk progress it
// already holds from earlier contacts.
func (s *session) upload(session float64) error {
	ccEntry, _ := s.st.cache.Get(model.CommandCenter)
	// The command center's own snapshot (just absorbed, authoritative) is a
	// delivery acknowledgement (§III-B): any held photo it lists already
	// arrived — through another relay, or in a contact whose ack this node
	// lost to a crash — so purge it instead of re-reporting it.
	if purged := s.deliveredHeld(ccEntry.Photos); len(purged) > 0 {
		if err := s.record(subAckDelivered, encodeAckDelivered(session, purged)); err != nil {
			return err
		}
		s.storeOps = true
	}
	plan := selection.SelectForUpload(s.p.fpc, s.p.selCfg, ccEntry.Photos, s.st.store.List())
	var ids []model.PhotoID
	for _, photo := range plan {
		ids = append(ids, photo.ID)
	}
	var offers map[model.PhotoID]wire.ResumeEntry
	if s.wc.Version() >= wire.ProtocolV2 {
		if err := s.to(fsm.PhasePlan); err != nil {
			return err
		}
		if err := s.wc.Write(wire.PhotoRequest{IDs: ids}); err != nil {
			return err
		}
		var err error
		if offers, err = s.readOffer(ids); err != nil {
			return err
		}
	}
	if err := s.sendPhotos(ids, offers); err != nil {
		return err
	}
	ack, err := readIn[wire.Ack](s)
	if err != nil {
		return err
	}
	// Fold the acknowledgement in: acked photos leave the store and join
	// the command-center cache entry.
	acked := model.PhotoList{}
	for _, id := range ack.IDs {
		if photo, ok := s.st.store.Get(id); ok {
			acked = append(acked, photo)
		}
	}
	if err := s.record(subAckDelivered, encodeAckDelivered(session, acked)); err != nil {
		return err
	}
	s.storeOps = s.storeOps || len(acked) > 0
	if err := s.to(fsm.PhaseClose); err != nil {
		return err
	}
	if _, err := readIn[wire.Bye](s); err != nil {
		return err
	}
	return s.wc.Write(wire.Bye{})
}

// deliveredHeld returns the held photos that appear in the delivered list.
func (s *session) deliveredHeld(delivered model.PhotoList) model.PhotoList {
	var purged model.PhotoList
	for _, photo := range s.st.store.Photos() {
		if delivered.Contains(photo.ID) {
			purged = append(purged, photo)
		}
	}
	return purged
}

// receiveUpload is the command-center side of an upload. The commit happens
// before the Ack goes out: an acknowledgement the uploader will act on
// (freeing its copies) must refer to photos this node can no longer forget.
func (s *session) receiveUpload() error {
	var announced []model.PhotoID
	if s.wc.Version() >= wire.ProtocolV2 {
		if err := s.to(fsm.PhasePlan); err != nil {
			return err
		}
		ann, err := readIn[wire.PhotoRequest](s)
		if err != nil {
			return err
		}
		announced = ann.IDs
		if err := s.sendOffer(announced); err != nil {
			return err
		}
	}
	received, err := s.receivePhotos(announced)
	if err != nil {
		return err
	}
	ids := make([]model.PhotoID, 0, len(received))
	for id := range received {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !s.st.store.Has(id) {
			if err := s.record(subStoreAdd, received[id].AppendBinary(nil)); err != nil {
				return fmt.Errorf("peer %v: store upload: %w", s.p.id, err)
			}
		}
	}
	if err := s.commit(); err != nil {
		return err
	}
	if err := s.to(fsm.PhaseClose); err != nil {
		return err
	}
	if err := s.wc.Write(wire.Ack{IDs: ids}); err != nil {
		return err
	}
	if err := s.wc.Write(wire.Bye{}); err != nil {
		return err
	}
	_, err = readIn[wire.Bye](s)
	return err
}
