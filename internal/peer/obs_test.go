package peer

import (
	"net"
	"syscall"
	"testing"
	"time"

	"photodtn/internal/obs"
)

// TestObserverCountsContactsRetriesAborts exercises the peer's
// instrumentation: a successful contact after transient dial failures must
// show up in the contact and retry counters, and an exhausted retry budget
// must surface as an abort (counter + session-abort trace event).
func TestObserverCountsContactsRetriesAborts(t *testing.T) {
	m := poiMap()
	o := obs.New(64, nil)
	cc := newTestPeer(t, 0, m, 0)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() { _ = cc.Serve(l) }()

	refused := &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	var attempts int
	n := newTestPeer(t, 1, m, 20*mb,
		WithObserver(o),
		WithRetry(2, time.Millisecond, time.Millisecond),
		WithDialer(func(addr string) (net.Conn, error) {
			attempts++
			if attempts == 1 {
				return nil, refused
			}
			return net.Dial("tcp", addr)
		}))
	n.sleep = func(time.Duration) {}
	if err := n.AddPhoto(viewFrom(1, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.Contact(l.Addr().String()); err != nil {
		t.Fatalf("contact: %v", err)
	}
	if got := o.Counter("peer.contact_retries").Value(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	if got := o.Counter("peer.contacts").Value(); got < 1 {
		t.Fatalf("contacts = %d, want >= 1", got)
	}
	if got := o.Counter("peer.contact_aborts").Value(); got != 0 {
		t.Fatalf("aborts = %d after a successful contact", got)
	}

	// Now exhaust the retry budget entirely.
	bad := newTestPeer(t, 2, m, 4*mb,
		WithObserver(o),
		WithRetry(2, time.Millisecond, time.Millisecond),
		WithDialer(func(string) (net.Conn, error) { return nil, refused }))
	bad.sleep = func(time.Duration) {}
	if err := bad.Contact("anywhere:1"); err == nil {
		t.Fatal("contact unexpectedly succeeded")
	}
	if got := o.Counter("peer.contact_aborts").Value(); got != 1 {
		t.Fatalf("aborts = %d, want 1", got)
	}
	if got := o.Trace.CountKind(obs.EvSessionAbort); got != 1 {
		t.Fatalf("session-abort events = %d, want 1", got)
	}
	if bad.ContactErrors() != 1 {
		t.Fatalf("ContactErrors = %d, want 1", bad.ContactErrors())
	}
}
