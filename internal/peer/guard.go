// Adversarial-peer hardening: the peer half of the internal/guard layer.
// WithGuard arms a peer against hostile remotes — admission control and
// byte metering per peer, semantic validation of every inbound message,
// and a journaled TTL quarantine for repeat offenders. Without the option
// every hook in this file is a strict no-op and the contact path behaves
// bit-identically to a pre-guard peer (pinned by TestGuardDisabledNoOp).
package peer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"photodtn/internal/guard"
	"photodtn/internal/model"
	"photodtn/internal/obs"
)

// Guard sentinels. ErrProtocolViolation wraps ErrProtocol, so existing
// errors.Is(err, ErrProtocol) checks keep matching; all three classify as
// ErrContactRejected (never retried — a misbehaving remote does not get
// better on the next attempt).
var (
	// ErrProtocolViolation reports an inbound message the protocol state
	// machine or a semantic validator rejected.
	ErrProtocolViolation = fmt.Errorf("%w: message rejected by guard", ErrProtocol)
	// ErrPeerQuarantined reports a contact with a peer inside its
	// quarantine TTL.
	ErrPeerQuarantined = errors.New("peer: remote is quarantined")
	// ErrRateLimited reports a contact shed by the per-peer token buckets
	// (contact admissions or inbound bytes).
	ErrRateLimited = errors.New("peer: remote exceeded its rate budget")
)

// WithGuard arms the peer's adversarial hardening with the given
// configuration (zero fields take guard defaults). It enables the
// per-session protocol state machine's violation reporting, semantic
// validation of inbound messages, per-peer contact/byte rate limiting, a
// misbehavior-scored TTL quarantine (journaled on durable peers), and
// bounds on the metadata cache.
func WithGuard(cfg guard.Config) Option {
	return optionFunc(func(p *Peer) {
		p.guardOn = true
		p.guardCfg = cfg.WithDefaults()
	})
}

// GuardStats returns the guard's activity snapshot (zero when the guard is
// disabled).
func (p *Peer) GuardStats() guard.Stats {
	return p.guard.Stats(p.clock())
}

// GuardEnabled reports whether WithGuard armed this peer.
func (p *Peer) GuardEnabled() bool { return p.guard != nil }

// initGuard finishes guard construction during New, after options and the
// metadata cache exist but before journal recovery (recovered quarantine
// records need the guard in place).
func (p *Peer) initGuard() {
	if !p.guardOn {
		return
	}
	p.guard = guard.New(p.guardCfg, p.obsv)
	p.guard.OnQuarantine(p.noteQuarantine)
	p.cache.SetLimits(p.guardCfg.MaxCacheEntries, p.guardCfg.MaxCacheBytes)
}

// noteQuarantine runs once per quarantine imposition (outside the guard
// lock): journal the ban so it survives a restart, and trace it. A journal
// failure poisons the peer exactly like any other append failure — the
// quarantine is enforced in memory either way.
func (p *Peer) noteQuarantine(node model.NodeID, until float64, reason guard.Reason) {
	p.mu.Lock()
	if p.jnl != nil && p.journalErr == nil {
		if err := p.jnl.Append(recGuard, encodeQuarantine(node, until, reason)); err != nil {
			p.journalErr = fmt.Errorf("%w: journal quarantine: %w", ErrJournal, err)
		}
	}
	p.mu.Unlock()
	p.obsv.Emit(obs.Event{
		Time: p.clock(), Kind: obs.EvPeerQuarantined,
		A: int32(p.id), B: int32(node), Photo: obs.NoPhoto,
		Value: until,
	})
}

// wrapAdmitErr maps guard admission errors onto the peer's sentinels.
func wrapAdmitErr(err error) error {
	switch {
	case errors.Is(err, guard.ErrQuarantined):
		return fmt.Errorf("%w: %w", ErrPeerQuarantined, err)
	case errors.Is(err, guard.ErrRateLimited):
		return fmt.Errorf("%w: %w", ErrRateLimited, err)
	}
	return err
}

// violation reports one semantic violation by the session's remote and
// returns the abort error. The contact dies with ErrProtocolViolation
// before anything is journaled or applied — the §III-D clean abort.
func (s *session) violation(v *guard.Violation) error {
	p := s.p
	if p.guard != nil && s.remoteKnown {
		p.guard.Report(s.remote, v.Reason, p.clock())
	}
	return fmt.Errorf("%w: %w", ErrProtocolViolation, v)
}

// violationf is violation with an inline reason/detail.
func (s *session) violationf(r guard.Reason, format string, args ...any) error {
	return s.violation(&guard.Violation{Reason: r, Detail: fmt.Sprintf(format, args...)})
}

// guardConn meters inbound bytes against the remote's byte bucket. It
// wraps the (already deadline-enforcing) contact transport; until bind is
// called — the remote is only known after the hello exchange — reads pass
// through unmetered, which is fine: a hello is a fixed-size frame.
type guardConn struct {
	rw io.ReadWriter
	p  *Peer

	mu    sync.Mutex
	node  model.NodeID
	bound bool
}

// bind attributes all further inbound bytes to node.
func (g *guardConn) bind(node model.NodeID) {
	g.mu.Lock()
	g.node, g.bound = node, true
	g.mu.Unlock()
}

func (g *guardConn) Read(b []byte) (int, error) {
	n, err := g.rw.Read(b)
	if n > 0 {
		g.mu.Lock()
		bound, node := g.bound, g.node
		g.mu.Unlock()
		if bound {
			if aerr := g.p.guard.AdmitBytes(node, int64(n), g.p.clock()); aerr != nil {
				return n, wrapAdmitErr(aerr)
			}
		}
	}
	return n, err
}

func (g *guardConn) Write(b []byte) (int, error) { return g.rw.Write(b) }

// --- quarantine journal record ---

// encodeQuarantine builds a recGuard payload:
// [guardQuarantine][node u32][until f64][reason u8].
func encodeQuarantine(node model.NodeID, until float64, reason guard.Reason) []byte {
	buf := make([]byte, 0, 1+4+8+1)
	buf = append(buf, guardQuarantine)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(node))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(until))
	return append(buf, byte(reason))
}
