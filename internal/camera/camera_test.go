package camera

import (
	"errors"
	"math"
	"testing"

	"photodtn/internal/geo"
	"photodtn/internal/model"
)

func TestCoverageRangePaperBand(t *testing.T) {
	// §IV-A: with c = 50 m, φ ∈ [30°, 60°] gives r ∈ [87 m, 187 m].
	r60 := CoverageRange(50, geo.Radians(60))
	r30 := CoverageRange(50, geo.Radians(30))
	if math.Abs(r60-86.6) > 1 {
		t.Fatalf("r(60°) = %v, want ≈87", r60)
	}
	if math.Abs(r30-186.6) > 1 {
		t.Fatalf("r(30°) = %v, want ≈187", r30)
	}
	// Narrower FOV sees farther.
	if r30 <= r60 {
		t.Fatal("coverage range must decrease with FOV")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero fov", func(c *Config) { c.FOV = 0 }},
		{"fov too wide", func(c *Config) { c.FOV = math.Pi }},
		{"zero coefficient", func(c *Config) { c.RangeCoefficient = 0 }},
		{"zero size", func(c *Config) { c.PhotoSize = 0 }},
		{"negative gps", func(c *Config) { c.GPSSigma = -1 }},
		{"gyro weight 1", func(c *Config) { c.GyroWeight = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrBadCamera) {
				t.Fatalf("err = %v", err)
			}
		})
	}
}

func TestNewPhoneRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FOV = -1
	if _, err := NewPhone(1, cfg, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestCaptureMetadata(t *testing.T) {
	phone, err := NewPhone(3, DefaultConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	phone.MoveTo(geo.Vec{X: 100, Y: 200})
	target := geo.Vec{X: 100, Y: 280} // due north, 80 m away (r ≈ 98 m)
	phone.AimAt(target)

	p := phone.Capture(12.5)
	if err := p.Validate(); err != nil {
		t.Fatalf("captured photo invalid: %v", err)
	}
	if p.Owner != 3 || p.ID != model.MakePhotoID(3, 0) || p.TakenAt != 12.5 {
		t.Fatalf("identity fields wrong: %+v", p)
	}
	// GPS error is present but bounded (6σ of 6 m).
	if d := p.Location.Dist(phone.Location()); d > 36 {
		t.Fatalf("GPS error %v m implausible", d)
	}
	// FOV is exact, range obeys the law.
	cfg := DefaultConfig()
	if p.FOV != cfg.FOV {
		t.Fatal("FOV must come straight from the camera API")
	}
	if math.Abs(p.Range-CoverageRange(cfg.RangeCoefficient, cfg.FOV)) > 1e-9 {
		t.Fatalf("range = %v", p.Range)
	}
	// Orientation points (approximately) at the target: within 5°.
	want := target.Sub(phone.Location()).Angle()
	if geo.AngleDiff(p.Orientation, want) > geo.Radians(5) {
		t.Fatalf("orientation %v° off target (want %v°)",
			geo.Degrees(p.Orientation), geo.Degrees(want))
	}
	// The captured photo's sector must cover the target.
	if !p.Sector().Contains(target) {
		t.Fatal("captured photo does not cover the aimed target")
	}
}

func TestCaptureSequenceNumbers(t *testing.T) {
	phone, err := NewPhone(1, DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := phone.Capture(0), phone.Capture(1)
	if a.ID.Seq() != 0 || b.ID.Seq() != 1 {
		t.Fatalf("sequence numbers wrong: %v, %v", a.ID, b.ID)
	}
}

func TestAimAtVariousDirections(t *testing.T) {
	for i, target := range []geo.Vec{{X: 50}, {Y: 50}, {X: -50}, {Y: -50}, {X: 30, Y: -40}} {
		phone, err := NewPhone(1, DefaultConfig(), int64(i)*17+1)
		if err != nil {
			t.Fatal(err)
		}
		phone.MoveTo(geo.Vec{})
		phone.AimAt(target)
		if phone.HeadingError() > geo.Radians(5) {
			t.Fatalf("target %d: heading error %.1f° exceeds 5°", i, geo.Degrees(phone.HeadingError()))
		}
		p := phone.Capture(0)
		want := target.Angle()
		if geo.AngleDiff(p.Orientation, want) > geo.Radians(8) {
			t.Fatalf("target %d: orientation %.0f° vs want %.0f°", i, geo.Degrees(p.Orientation), geo.Degrees(want))
		}
	}
}

func TestPhoneDeterministic(t *testing.T) {
	mk := func() model.Photo {
		phone, err := NewPhone(2, DefaultConfig(), 9)
		if err != nil {
			t.Fatal(err)
		}
		phone.MoveTo(geo.Vec{X: 10, Y: 10})
		phone.AimAt(geo.Vec{X: 90, Y: 10})
		return phone.Capture(5)
	}
	if mk() != mk() {
		t.Fatal("phone not deterministic for a fixed seed")
	}
}
