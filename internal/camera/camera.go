// Package camera reproduces the prototype's metadata generation (§IV-A):
// given the phone's state at shutter time — a GPS fix, the camera API's
// exact field-of-view, and the sensor-fused orientation — it produces the
// photo metadata tuple (l, r, φ, d) the coverage model consumes.
//
// The coverage range follows the paper's law r = c·cot(φ/2): an object
// grows in the image at the same rate the focal length does, and
// f ∝ cot(φ/2), so the distance at which objects stay recognizable scales
// the same way. The coefficient c is application-dependent; the prototype
// uses 50 m for buildings, giving r ∈ [87 m, 187 m] over φ ∈ [30°, 60°].
package camera

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/sensor"
)

// DefaultRangeCoefficient is the prototype's c = 50 m (buildings).
const DefaultRangeCoefficient = 50.0

// CoverageRange computes r = c·cot(φ/2) for a field-of-view φ in radians.
func CoverageRange(c, fov float64) float64 {
	return c / math.Tan(fov/2)
}

// Config describes a simulated phone camera.
type Config struct {
	// FOV is the camera's field-of-view in radians, as reported exactly by
	// the camera API.
	FOV float64
	// RangeCoefficient is the c of r = c·cot(φ/2).
	RangeCoefficient float64
	// PhotoSize is the size of a captured image file in bytes.
	PhotoSize int64
	// GPSSigma is the per-axis standard deviation of the GPS fix in metres
	// (common errors are 5–8.5 m, tolerable for buildings per §IV-A).
	GPSSigma float64
	// GyroWeight is the orientation fusion blend weight.
	GyroWeight float64
	// SensorNoise configures the simulated IMU.
	SensorNoise sensor.Noise
}

// DefaultConfig returns a Nexus-4-like camera: 54° FOV, 4 MB photos, 6 m
// GPS error.
func DefaultConfig() Config {
	return Config{
		FOV:              geo.Radians(54),
		RangeCoefficient: DefaultRangeCoefficient,
		PhotoSize:        4 << 20,
		GPSSigma:         6,
		GyroWeight:       0.98,
		SensorNoise:      sensor.DefaultNoise(),
	}
}

// ErrBadCamera reports an invalid camera configuration.
var ErrBadCamera = errors.New("camera: bad config")

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.FOV <= 0 || c.FOV >= math.Pi:
		return fmt.Errorf("%w: FOV %v outside (0, π)", ErrBadCamera, c.FOV)
	case c.RangeCoefficient <= 0:
		return fmt.Errorf("%w: non-positive range coefficient", ErrBadCamera)
	case c.PhotoSize <= 0:
		return fmt.Errorf("%w: non-positive photo size", ErrBadCamera)
	case c.GPSSigma < 0:
		return fmt.Errorf("%w: negative GPS sigma", ErrBadCamera)
	case c.GyroWeight < 0 || c.GyroWeight >= 1:
		return fmt.Errorf("%w: gyro weight %v outside [0,1)", ErrBadCamera, c.GyroWeight)
	}
	return nil
}

// Phone simulates one participant's handset: true pose, noisy sensors, and
// the metadata pipeline. It is the in-simulation stand-in for the Android
// prototype.
type Phone struct {
	cfg    Config
	owner  model.NodeID
	seq    uint32
	device *sensor.Device
	fusion *sensor.Fusion
	rng    *rand.Rand

	// trueLoc is the phone's true position in metres.
	trueLoc geo.Vec
}

// NewPhone creates a phone for the owner with a deterministic seed.
func NewPhone(owner model.NodeID, cfg Config, seed int64) (*Phone, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Phone{
		cfg:    cfg,
		owner:  owner,
		device: sensor.NewDevice(seed, cfg.SensorNoise),
		fusion: sensor.NewFusion(cfg.GyroWeight),
		rng:    rand.New(rand.NewSource(seed + 1)),
	}
	// Hold the phone upright (camera level, looking north) initially.
	p.device.R = sensor.RotationAxis(sensor.Vec3{X: 1}, math.Pi/2)
	p.settle(50)
	return p, nil
}

// MoveTo teleports the phone (the simulation's mobility model owns actual
// movement).
func (p *Phone) MoveTo(loc geo.Vec) { p.trueLoc = loc }

// Location returns the phone's true position.
func (p *Phone) Location() geo.Vec { return p.trueLoc }

// Owner returns the phone's owner.
func (p *Phone) Owner() model.NodeID { return p.owner }

// AimAt pans the phone toward the target heading (radians) through a
// sequence of gyro-integrated rotation steps with sensor fusion running —
// exactly the regime the prototype's estimator works in.
func (p *Phone) AimAt(target geo.Vec) {
	want := target.Sub(p.trueLoc).Angle()
	const dt = 0.02
	for i := 0; i < 400; i++ {
		cur := p.device.TrueHeading()
		diff := math.Remainder(want-cur, geo.TwoPi)
		if math.Abs(diff) < 1e-3 {
			break
		}
		rate := math.Max(-2, math.Min(2, diff/dt/10))
		// Panning is a world-Z rotation; express it in the device frame.
		axis := p.deviceAxisForWorldZ()
		gyro := p.device.Rotate(axis.Scale(rate), dt)
		p.fusion.Update(p.device.ReadAccel(), p.device.ReadMag(), gyro, dt)
	}
	p.settle(20)
}

// settle runs fusion updates while holding still, letting the absolute
// estimate converge ("when a photo is taken and the phone is held static").
func (p *Phone) settle(steps int) {
	const dt = 0.02
	for i := 0; i < steps; i++ {
		gyro := p.device.Rotate(sensor.Vec3{}, dt)
		p.fusion.Update(p.device.ReadAccel(), p.device.ReadMag(), gyro, dt)
	}
}

// deviceAxisForWorldZ returns the world up axis expressed in the device
// frame, so a yaw can be commanded through the device-frame gyro.
func (p *Phone) deviceAxisForWorldZ() sensor.Vec3 {
	return p.device.R.Transpose().Apply(sensor.Vec3{Z: 1})
}

// Capture takes a photo at time now (seconds): it reads the GPS (noisy
// location), the camera API (exact FOV), and the fused orientation, and
// mints the metadata tuple.
func (p *Phone) Capture(now float64) model.Photo {
	gps := geo.Vec{
		X: p.trueLoc.X + p.cfg.GPSSigma*p.rng.NormFloat64(),
		Y: p.trueLoc.Y + p.cfg.GPSSigma*p.rng.NormFloat64(),
	}
	photo := model.Photo{
		ID:          model.MakePhotoID(p.owner, p.seq),
		Owner:       p.owner,
		TakenAt:     now,
		Location:    gps,
		Range:       CoverageRange(p.cfg.RangeCoefficient, p.cfg.FOV),
		FOV:         p.cfg.FOV,
		Orientation: p.fusion.Heading(),
		Size:        p.cfg.PhotoSize,
	}
	p.seq++
	return photo
}

// HeadingError returns the current orientation estimation error in radians
// (diagnostics for tests and examples).
func (p *Phone) HeadingError() float64 {
	d := math.Abs(p.fusion.Heading() - p.device.TrueHeading())
	if d > math.Pi {
		d = geo.TwoPi - d
	}
	return d
}
