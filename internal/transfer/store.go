// Package transfer is the chunk reassembly store behind wire protocol v2:
// it tracks, per photo, which CRC-framed chunks have landed, unions
// duplicates idempotently, and releases the assembled payload only when
// every chunk is present and the whole-photo checksum verifies.
//
// The store deliberately knows nothing about contacts, sessions, or
// journals. The peer layer decides which store an incoming chunk goes to
// (the shared cross-contact store when resume is negotiated, a
// contact-local scratch store otherwise), persists fresh chunks through
// its write-ahead journal before handing them here, and drops a photo's
// partial once the photo is durably admitted. That split preserves the
// paper's §III-D atomicity argument at the photo level — a photo either
// appears whole in storage or not at all — while salvaging chunk progress
// across contact disruptions.
package transfer

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"photodtn/internal/model"
	"photodtn/internal/wire"
)

// ErrChecksum reports a fully assembled payload whose whole-photo CRC did
// not match the geometry every chunk declared. The partial is dropped (and
// its bytes counted wasted) before the error returns, so the next contact
// restarts the photo from chunk zero instead of re-verifying poison.
var ErrChecksum = errors.New("transfer: assembled payload checksum mismatch")

// Store tracks partial photo reassemblies. Safe for concurrent use by
// multiple contact sessions.
type Store struct {
	mu sync.Mutex
	// maxBytes caps the summed Total of tracked partials; 0 is unlimited.
	// When a new photo would exceed the cap, least-recently-touched
	// partials are evicted (their bytes counted wasted) to make room.
	maxBytes int64
	bytes    int64 // sum of tracked partials' received bytes
	alloc    int64 // sum of tracked partials' Total (buffer footprint)
	seq      int64 // touch clock for LRU eviction
	parts    map[model.PhotoID]*partial

	// counters (monotonic; survive partial turnover)
	chunksAdded int64
	completed   int64
	restarts    int64
	evictions   int64
	wasted      int64
}

type partial struct {
	photo     model.Photo
	chunkSize uint32
	count     uint32
	total     uint64
	crc       uint32
	have      []uint64 // chunk bitmap, LSB-first words
	haveCount uint32
	received  int64 // bytes landed so far
	data      []byte
	touched   int64
	complete  bool
}

// NewStore returns a store capping tracked partials at maxBytes of
// allocated payload (0 = unlimited).
func NewStore(maxBytes int64) *Store {
	return &Store{maxBytes: maxBytes, parts: make(map[model.PhotoID]*partial)}
}

// AddResult reports what one chunk did to the store.
type AddResult struct {
	// Fresh is true when the chunk was new — not a duplicate of one
	// already held. Only fresh chunks are worth journaling.
	Fresh bool
	// Restarted is true when the chunk's geometry contradicted an existing
	// partial (different chunk size, total, or payload CRC), which was
	// dropped — its bytes wasted — before this chunk started a new one.
	Restarted bool
	// Complete is true when every chunk is present and the whole-photo
	// checksum verified. Photo and Payload are set.
	Complete bool
	Photo    model.Photo
	// Payload is the fully assembled payload (only on Complete). The
	// caller owns the read; the buffer is shared with the store until the
	// photo is dropped.
	Payload []byte
}

// Add unions one chunk into the photo's partial, creating it on first
// contact with the photo. Duplicate chunks are ignored (Fresh=false);
// conflicting geometry restarts the partial. When the final missing chunk
// lands, the assembled payload is verified against the declared CRC:
// success returns Complete, failure drops the partial and returns
// ErrChecksum.
func (s *Store) Add(c wire.Chunk) (AddResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var res AddResult
	p := s.parts[c.Photo.ID]
	if p != nil && (p.chunkSize != c.ChunkSize || p.count != c.Count || p.total != c.Total || p.crc != c.PayloadCRC) {
		s.dropLocked(c.Photo.ID, true)
		s.restarts++
		res.Restarted = true
		p = nil
	}
	if p == nil {
		s.admitLocked(c.Photo.ID, int64(c.Total))
		p = &partial{
			photo:     c.Photo,
			chunkSize: c.ChunkSize,
			count:     c.Count,
			total:     c.Total,
			crc:       c.PayloadCRC,
			have:      make([]uint64, (int(c.Count)+63)/64),
			data:      make([]byte, c.Total),
		}
		s.parts[c.Photo.ID] = p
		s.alloc += int64(c.Total)
	}
	s.seq++
	p.touched = s.seq
	word, bit := c.Index/64, c.Index%64
	if p.have[word]&(1<<bit) != 0 {
		return res, nil // duplicate
	}
	p.have[word] |= 1 << bit
	p.haveCount++
	off := uint64(c.Index) * uint64(c.ChunkSize)
	copy(p.data[off:], c.Data)
	p.received += int64(len(c.Data))
	s.bytes += int64(len(c.Data))
	s.chunksAdded++
	res.Fresh = true
	if p.haveCount == p.count {
		if wire.PayloadCRC(p.data) != p.crc {
			s.dropLocked(c.Photo.ID, true)
			return res, fmt.Errorf("%w: photo %v", ErrChecksum, c.Photo.ID)
		}
		p.complete = true
		s.completed++
		res.Complete = true
		res.Photo = p.photo
		res.Payload = p.data
	}
	return res, nil
}

// admitLocked makes room for a new partial of the given footprint,
// evicting least-recently-touched partials when a cap is set. A single
// partial larger than the cap is still admitted — the cap bounds hoarding,
// not the protocol.
func (s *Store) admitLocked(id model.PhotoID, total int64) {
	if s.maxBytes <= 0 {
		return
	}
	for s.alloc+total > s.maxBytes && len(s.parts) > 0 {
		victim := model.PhotoID(0)
		var oldest int64
		for vid, vp := range s.parts {
			if vid == id {
				continue
			}
			if victim == 0 || vp.touched < oldest {
				victim, oldest = vid, vp.touched
			}
		}
		if victim == 0 {
			break
		}
		s.dropLocked(victim, true)
		s.evictions++
	}
}

// Has reports whether the photo's partial already holds the chunk.
func (s *Store) Has(id model.PhotoID, index uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.parts[id]
	if p == nil || index >= p.count {
		return false
	}
	return p.have[index/64]&(1<<(index%64)) != 0
}

// Assemble returns the verified payload of a photo whose partial is
// already complete — the zero-traffic path when a resume offer advertised
// a full bitmap. A complete partial that fails verification (cannot happen
// unless the store was restored from corrupt state) is dropped.
func (s *Store) Assemble(id model.PhotoID) (AddResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.parts[id]
	if p == nil || p.haveCount != p.count {
		return AddResult{}, false
	}
	if !p.complete {
		if wire.PayloadCRC(p.data) != p.crc {
			s.dropLocked(id, true)
			return AddResult{}, false
		}
		p.complete = true
		s.completed++
	}
	return AddResult{Complete: true, Photo: p.photo, Payload: p.data}, true
}

// Drop removes a photo's partial. Wasted marks bytes that were received
// but will never contribute to a delivery (discard, mismatch, eviction);
// a drop after successful admission passes wasted=false. Returns the
// number of fragment bytes released.
func (s *Store) Drop(id model.PhotoID, wasted bool) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropLocked(id, wasted)
}

func (s *Store) dropLocked(id model.PhotoID, wasted bool) int64 {
	p := s.parts[id]
	if p == nil {
		return 0
	}
	delete(s.parts, id)
	s.bytes -= p.received
	s.alloc -= int64(p.total)
	if wasted {
		s.wasted += p.received
	}
	return p.received
}

// Offer returns the photo's partial state as a wire resume entry.
func (s *Store) Offer(id model.PhotoID) (wire.ResumeEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.parts[id]
	if p == nil {
		return wire.ResumeEntry{}, false
	}
	s.seq++
	p.touched = s.seq
	return wire.ResumeEntry{
		ID:         id,
		ChunkSize:  p.chunkSize,
		Count:      p.count,
		Total:      p.total,
		PayloadCRC: p.crc,
		Bitmap:     bitmapBytes(p.have, p.count),
	}, true
}

// Chunks returns how many chunks of the photo's partial have landed
// (0 when the photo is untracked) and the partial's chunk count.
func (s *Store) Chunks(id model.PhotoID) (have, count uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.parts[id]; p != nil {
		return p.haveCount, p.count
	}
	return 0, 0
}

// IDs returns the tracked photo IDs in unspecified order.
func (s *Store) IDs() []model.PhotoID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]model.PhotoID, 0, len(s.parts))
	for id := range s.parts {
		out = append(out, id)
	}
	return out
}

// Fragment is one partial's full exportable state, used by the peer's
// snapshot encoder. Data holds the received chunks' bytes at their payload
// offsets (missing regions zero); Bitmap says which regions are real.
type Fragment struct {
	Photo      model.Photo
	ChunkSize  uint32
	Count      uint32
	Total      uint64
	PayloadCRC uint32
	Bitmap     []byte
	Data       []byte
}

// Export snapshots every tracked partial, ordered by photo ID.
func (s *Store) Export() []Fragment {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Fragment, 0, len(s.parts))
	for _, p := range s.parts {
		out = append(out, Fragment{
			Photo:      p.photo,
			ChunkSize:  p.chunkSize,
			Count:      p.count,
			Total:      p.total,
			PayloadCRC: p.crc,
			Bitmap:     bitmapBytes(p.have, p.count),
			Data:       append([]byte(nil), p.data...),
		})
	}
	sortFragments(out)
	return out
}

// Import restores one exported partial, replacing any tracked state for
// the photo. Geometry is validated like a wire decode.
func (s *Store) Import(f Fragment) error {
	if f.ChunkSize == 0 || f.Count == 0 || uint64(f.Count) > wire.MaxChunks {
		return fmt.Errorf("transfer: import photo %v: bad geometry", f.Photo.ID)
	}
	if want := wire.ChunkCount(int64(f.Total), int(f.ChunkSize)); int(f.Count) != want {
		return fmt.Errorf("transfer: import photo %v: %d chunks, want %d", f.Photo.ID, f.Count, want)
	}
	if len(f.Bitmap) != (int(f.Count)+7)/8 || uint64(len(f.Data)) != f.Total {
		return fmt.Errorf("transfer: import photo %v: bitmap/data length", f.Photo.ID)
	}
	have := bitmapWords(f.Bitmap, f.Count)
	var haveCount uint32
	var received int64
	for i := uint32(0); i < f.Count; i++ {
		if have[i/64]&(1<<(i%64)) != 0 {
			haveCount++
			received += chunkLen(i, f.Count, f.ChunkSize, f.Total)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropLocked(f.Photo.ID, false)
	s.seq++
	s.parts[f.Photo.ID] = &partial{
		photo:     f.Photo,
		chunkSize: f.ChunkSize,
		count:     f.Count,
		total:     f.Total,
		crc:       f.PayloadCRC,
		have:      have,
		haveCount: haveCount,
		received:  received,
		data:      append([]byte(nil), f.Data...),
		touched:   s.seq,
	}
	s.bytes += received
	s.alloc += int64(f.Total)
	return nil
}

// Stats are the store's lifetime counters plus its current footprint.
type Stats struct {
	// Partials and FragmentBytes are the current footprint: tracked
	// photos and their received bytes.
	Partials      int
	FragmentBytes int64
	// ChunksAdded counts fresh chunks ever unioned in.
	ChunksAdded int64
	// Completed counts photos fully assembled and verified.
	Completed int64
	// Restarts counts partials dropped for conflicting geometry.
	Restarts int64
	// Evictions counts partials dropped to respect the byte cap.
	Evictions int64
	// WastedBytes counts received bytes that never contributed to a
	// delivery: mismatch restarts, evictions, and explicit wasted drops.
	WastedBytes int64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Partials:      len(s.parts),
		FragmentBytes: s.bytes,
		ChunksAdded:   s.chunksAdded,
		Completed:     s.completed,
		Restarts:      s.restarts,
		Evictions:     s.evictions,
		WastedBytes:   s.wasted,
	}
}

// chunkLen is the payload length of chunk index in the given geometry.
func chunkLen(index, count, size uint32, total uint64) int64 {
	if index < count-1 {
		return int64(size)
	}
	return int64(total - uint64(count-1)*uint64(size))
}

// bitmapBytes converts LSB-first bitmap words to the wire's byte layout.
func bitmapBytes(words []uint64, count uint32) []byte {
	out := make([]byte, (int(count)+7)/8)
	for i := range out {
		word, shift := i/8, (i%8)*8
		out[i] = byte(words[word] >> shift)
	}
	return out
}

// bitmapWords converts the wire's bitmap bytes to LSB-first words.
func bitmapWords(b []byte, count uint32) []uint64 {
	out := make([]uint64, (int(count)+63)/64)
	for i, v := range b {
		out[i/8] |= uint64(v) << ((i % 8) * 8)
	}
	return out
}

// MissingChunks lists the chunk indices absent from a wire resume entry's
// bitmap, in ascending order — the sender's work list when resuming.
func MissingChunks(e wire.ResumeEntry) []uint32 {
	words := bitmapWords(e.Bitmap, e.Count)
	out := make([]uint32, 0, int(e.Count)-popcount(words))
	for i := uint32(0); i < e.Count; i++ {
		if words[i/64]&(1<<(i%64)) == 0 {
			out = append(out, i)
		}
	}
	return out
}

func popcount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

func sortFragments(fs []Fragment) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Photo.ID < fs[j].Photo.ID })
}
