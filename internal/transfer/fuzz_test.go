package transfer

import (
	"bytes"
	"testing"

	"photodtn/internal/model"
)

// FuzzReassembly drives the store with an arbitrary op sequence —
// out-of-order, duplicate, corrupt, and geometry-conflicting chunks plus
// drops — and checks every step against a dense-bitmap oracle. The store's
// sparse bitmap, byte accounting, and completion detection must agree with
// the oracle exactly, and any payload it releases must be bit-identical to
// the source.
//
// Input layout: data[0] picks the chunk size (1..16), data[1] the payload
// length (0..63); the rest is an op stream of (op, arg) byte pairs.
func FuzzReassembly(f *testing.F) {
	f.Add([]byte{4, 11, 0, 0, 0, 2, 0, 1})                          // in-order completion
	f.Add([]byte{4, 11, 0, 2, 0, 0, 0, 0, 0, 1})                    // out of order + duplicate
	f.Add([]byte{8, 63, 1, 0, 0, 1, 0, 0, 2, 2, 0, 2, 0, 3})        // corrupt final chunk
	f.Add([]byte{1, 16, 3, 0, 0, 5, 2, 1, 0, 5, 3, 0, 0, 5})        // mismatch restart + drop
	f.Add([]byte{16, 0, 0, 0})                                      // empty payload, single chunk
	f.Add([]byte{5, 32, 0, 6, 0, 5, 0, 4, 0, 3, 0, 2, 0, 1, 0, 0}) // reverse order

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		size := int(data[0]%16) + 1
		payload := make([]byte, int(data[1]%64))
		for i := range payload {
			payload[i] = byte(i)*7 + 3
		}
		photo := model.Photo{ID: model.MakePhotoID(1, 1), Owner: 1, Size: int64(len(payload))}
		chunks := chunksFor(photo, payload, size)
		count := len(chunks)
		// A second geometry for conflict ops: same photo, different bytes.
		altPayload := append([]byte(nil), payload...)
		altPayload = append(altPayload, 0xEE)
		altChunks := chunksFor(photo, altPayload, size)

		s := NewStore(0)
		oracle := make([]bool, count) // dense bitmap
		alt := false                  // oracle tracks which geometry is live
		poison := -1                  // index of a corrupt slice held, -1 = clean

		oracleCount := func() (n int) {
			for _, b := range oracle {
				if b {
					n++
				}
			}
			return
		}
		reset := func() {
			for i := range oracle {
				oracle[i] = false
			}
			poison = -1
		}

		for i := 2; i+1 < len(data); i += 2 {
			op, arg := data[i]%4, int(data[i+1])
			switch op {
			case 0, 1: // add a chunk of the live/true geometry
				c := chunks[arg%count]
				if op == 1 { // corrupt the slice under the true CRC
					c.Data = append([]byte(nil), c.Data...)
					for j := range c.Data {
						c.Data[j] ^= 0xFF
					}
				}
				wasNew := alt || !oracle[c.Index]
				if alt {
					reset()
					alt = false
				}
				res, err := s.Add(c)
				if res.Fresh != wasNew {
					t.Fatalf("op %d: fresh = %v, oracle %v", i, res.Fresh, wasNew)
				}
				if wasNew {
					oracle[c.Index] = true
					if op == 1 && len(c.Data) > 0 {
						poison = int(c.Index)
					}
				}
				complete := oracleCount() == count
				switch {
				case complete && poison >= 0:
					if err == nil {
						t.Fatalf("op %d: corrupt assembly passed verification", i)
					}
					reset() // store dropped the partial
				case complete && wasNew:
					if err != nil || !res.Complete {
						t.Fatalf("op %d: complete = %v, err = %v", i, res.Complete, err)
					}
					if !bytes.Equal(res.Payload, payload) {
						t.Fatalf("op %d: payload mismatch", i)
					}
				case complete: // duplicate after completion
					if err != nil || res.Complete {
						t.Fatalf("op %d: duplicate after completion: complete=%v err=%v", i, res.Complete, err)
					}
				default:
					if err != nil || res.Complete {
						t.Fatalf("op %d: premature complete=%v err=%v", i, res.Complete, err)
					}
				}
			case 2: // add a conflicting-geometry chunk
				c := altChunks[arg%len(altChunks)]
				hadState := oracleCount() > 0 || alt
				res, err := s.Add(c)
				if err != nil {
					// Only possible as a checksum failure on a 1-chunk alt
					// geometry; the store dropped everything.
					reset()
					alt = false
					continue
				}
				if !alt && hadState && !res.Restarted {
					t.Fatalf("op %d: geometry conflict without restart", i)
				}
				if !alt {
					reset()
					alt = true
				}
				if res.Complete {
					if !bytes.Equal(res.Payload, altPayload) {
						t.Fatalf("op %d: alt payload mismatch", i)
					}
					// Leave the complete partial tracked, as the peer does
					// until commit.
				}
			case 3: // drop
				s.Drop(photo.ID, true)
				reset()
				alt = false
			}
			// Invariant: sparse store and dense oracle agree on progress.
			if !alt {
				have, _ := s.Chunks(photo.ID)
				if int(have) != oracleCount() {
					t.Fatalf("op %d: store holds %d chunks, oracle %d", i, have, oracleCount())
				}
			}
		}
	})
}

// FuzzReassemblyImport round-trips arbitrary fragments through
// Export/Import: whatever Import accepts must export back identically and
// keep assembling correctly.
func FuzzReassemblyImport(f *testing.F) {
	f.Add([]byte{4, 20, 0b10101}, uint32(4))
	f.Add([]byte{1, 0, 0}, uint32(1))
	f.Fuzz(func(t *testing.T, meta []byte, size uint32) {
		if len(meta) < 2 {
			return
		}
		payload := make([]byte, int(meta[0])%64)
		for i := range payload {
			payload[i] = meta[1] + byte(i)
		}
		size = size%16 + 1
		photo := model.Photo{ID: model.MakePhotoID(2, 2), Owner: 2}
		chunks := chunksFor(photo, payload, int(size))
		s := NewStore(0)
		for i, c := range chunks {
			if len(meta) > 2 && meta[2+i%(len(meta)-2)]%2 == 0 {
				continue // leave a hole
			}
			if _, err := s.Add(c); err != nil {
				t.Fatal(err)
			}
		}
		for _, frag := range s.Export() {
			r := NewStore(0)
			if err := r.Import(frag); err != nil {
				t.Fatalf("reimport of own export: %v", err)
			}
			again := r.Export()
			if len(again) != 1 {
				t.Fatalf("re-export lost the fragment")
			}
			if !bytes.Equal(again[0].Bitmap, frag.Bitmap) || !bytes.Equal(again[0].Data, frag.Data) {
				t.Fatal("export/import drift")
			}
		}
	})
}
