package transfer

import (
	"bytes"
	"errors"
	"testing"

	"photodtn/internal/model"
	"photodtn/internal/wire"
)

// chunksFor splits payload into canonical wire chunks for the photo.
func chunksFor(photo model.Photo, payload []byte, size int) []wire.Chunk {
	total := uint64(len(payload))
	count := uint32(wire.ChunkCount(int64(total), size))
	crc := wire.PayloadCRC(payload)
	out := make([]wire.Chunk, 0, count)
	for i := uint32(0); i < count; i++ {
		lo := int(i) * size
		hi := lo + size
		if hi > len(payload) {
			hi = len(payload)
		}
		out = append(out, wire.Chunk{
			Photo: photo, Index: i, Count: count, ChunkSize: uint32(size),
			Total: total, PayloadCRC: crc, Data: append([]byte(nil), payload[lo:hi]...),
		})
	}
	return out
}

func testPhoto(seq uint32) model.Photo {
	return model.Photo{ID: model.MakePhotoID(7, seq), Owner: 7, Size: 4 << 20}
}

func TestStoreOutOfOrderAssembly(t *testing.T) {
	s := NewStore(0)
	payload := []byte("the quick brown fox jumps over the lazy dog")
	chunks := chunksFor(testPhoto(0), payload, 8)
	order := []int{3, 0, 5, 1, 4, 2}
	if len(order) != len(chunks) {
		t.Fatalf("test geometry drifted: %d chunks", len(chunks))
	}
	for i, idx := range order {
		res, err := s.Add(chunks[idx])
		if err != nil {
			t.Fatal(err)
		}
		if !res.Fresh {
			t.Fatalf("chunk %d not fresh", idx)
		}
		if last := i == len(order)-1; res.Complete != last {
			t.Fatalf("complete = %v at step %d", res.Complete, i)
		}
		if i == len(order)-1 && !bytes.Equal(res.Payload, payload) {
			t.Fatalf("assembled %q", res.Payload)
		}
	}
	if st := s.Stats(); st.Completed != 1 || st.Partials != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if res, ok := s.Assemble(testPhoto(0).ID); !ok || !bytes.Equal(res.Payload, payload) {
		t.Fatal("assemble of complete partial failed")
	}
	s.Drop(testPhoto(0).ID, false)
	if st := s.Stats(); st.Partials != 0 || st.WastedBytes != 0 || st.FragmentBytes != 0 {
		t.Fatalf("stats after clean drop = %+v", st)
	}
}

func TestStoreDuplicateChunksIdempotent(t *testing.T) {
	s := NewStore(0)
	chunks := chunksFor(testPhoto(1), []byte("abcdefgh"), 4)
	if res, _ := s.Add(chunks[0]); !res.Fresh {
		t.Fatal("first add not fresh")
	}
	if res, _ := s.Add(chunks[0]); res.Fresh {
		t.Fatal("duplicate reported fresh")
	}
	if have, count := s.Chunks(testPhoto(1).ID); have != 1 || count != 2 {
		t.Fatalf("chunks = %d/%d", have, count)
	}
}

func TestStoreChecksumMismatchDropsPartial(t *testing.T) {
	s := NewStore(0)
	payload := []byte("abcdefgh")
	chunks := chunksFor(testPhoto(2), payload, 4)
	chunks[1].Data = []byte("XXXX") // corrupt slice under the true CRC
	if _, err := s.Add(chunks[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(chunks[1]); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	if st := s.Stats(); st.Partials != 0 || st.WastedBytes != 8 {
		t.Fatalf("stats = %+v", st)
	}
	// The next attempt starts clean and succeeds.
	for _, c := range chunksFor(testPhoto(2), payload, 4) {
		if _, err := s.Add(c); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreGeometryMismatchRestarts(t *testing.T) {
	s := NewStore(0)
	old := chunksFor(testPhoto(3), []byte("old payload bytes"), 4)
	if _, err := s.Add(old[0]); err != nil {
		t.Fatal(err)
	}
	fresh := chunksFor(testPhoto(3), []byte("completely different"), 8)
	res, err := s.Add(fresh[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Restarted || !res.Fresh {
		t.Fatalf("res = %+v, want restart", res)
	}
	st := s.Stats()
	if st.Restarts != 1 || st.WastedBytes != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreOfferRoundTrip(t *testing.T) {
	s := NewStore(0)
	payload := []byte("0123456789abcdefghij")
	chunks := chunksFor(testPhoto(4), payload, 4)
	for _, i := range []int{0, 2, 4} {
		if _, err := s.Add(chunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	e, ok := s.Offer(testPhoto(4).ID)
	if !ok {
		t.Fatal("no offer")
	}
	if e.Count != 5 || e.Total != 20 || e.ChunkSize != 4 {
		t.Fatalf("offer = %+v", e)
	}
	missing := MissingChunks(e)
	if len(missing) != 2 || missing[0] != 1 || missing[1] != 3 {
		t.Fatalf("missing = %v", missing)
	}
	// Filling exactly the missing chunks completes the photo.
	for _, i := range missing {
		res, err := s.Add(chunks[i])
		if err != nil {
			t.Fatal(err)
		}
		if i == 3 && !res.Complete {
			t.Fatal("not complete after last missing chunk")
		}
	}
}

func TestStoreExportImport(t *testing.T) {
	s := NewStore(0)
	payload := []byte("export/import round trip payload")
	chunks := chunksFor(testPhoto(5), payload, 8)
	for _, i := range []int{0, 3} {
		if _, err := s.Add(chunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	frags := s.Export()
	if len(frags) != 1 {
		t.Fatalf("exported %d fragments", len(frags))
	}
	r := NewStore(0)
	if err := r.Import(frags[0]); err != nil {
		t.Fatal(err)
	}
	if have, count := r.Chunks(testPhoto(5).ID); have != 2 || count != 4 {
		t.Fatalf("restored chunks = %d/%d", have, count)
	}
	// Completing the restored partial yields the exact original payload.
	var got []byte
	for _, i := range []int{1, 2} {
		res, err := r.Add(chunks[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Complete {
			got = res.Payload
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("assembled %q", got)
	}
	if err := r.Import(Fragment{Photo: testPhoto(6), ChunkSize: 4, Count: 9, Total: 8}); err == nil {
		t.Fatal("bad geometry import accepted")
	}
}

func TestStoreEvictionRespectsCap(t *testing.T) {
	s := NewStore(24)
	a := chunksFor(testPhoto(7), []byte("aaaaaaaaaaaaaaaa"), 8) // 16 bytes
	b := chunksFor(testPhoto(8), []byte("bbbbbbbbbbbbbbbb"), 8) // 16 bytes
	if _, err := s.Add(a[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(b[0]); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Partials != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := s.Offer(testPhoto(7).ID); ok {
		t.Fatal("oldest partial survived the cap")
	}
	if _, ok := s.Offer(testPhoto(8).ID); !ok {
		t.Fatal("newest partial evicted")
	}
}
