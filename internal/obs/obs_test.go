package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram must read 0")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if len(r.Names()) != 0 {
		t.Fatal("nil registry has no names")
	}
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer must be disabled")
	}
	o.Emit(Event{Kind: EvContactBegin})
	if o.Counter("x") != nil {
		t.Fatal("nil observer must hand out nil metrics")
	}
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	var tr *Trace
	tr.Emit(Event{})
	if tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil trace must be empty")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sim.contacts")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("sim.contacts") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("metadata.entries")
	g.Set(17)
	if got := g.Value(); got != 17 {
		t.Fatalf("gauge = %v, want 17", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{0, 0.5, 1, 1.5, 2, 3, 4, 1000, math.NaN(), -2} {
		h.Observe(v)
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d, want 10", h.Count())
	}
	// NaN and -2 count as 0, so the sum is 0+0.5+1+1.5+2+3+4+1000.
	if want := 1012.0; h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	s := h.snapshot()
	// ≤1: 0, 0.5, 1, NaN, -2 → 5; (1,2]: 1.5, 2 → 2; (2,4]: 3, 4 → 2;
	// (512,1024]: 1000 → 1.
	for bound, want := range map[string]int64{"1": 5, "2": 2, "4": 2, "1024": 1} {
		if got := s.Buckets[bound]; got != want {
			t.Fatalf("bucket %s = %d, want %d (buckets %v)", bound, got, want, s.Buckets)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Fatalf("count=%d sum=%v, want 8000/8000", h.Count(), h.Sum())
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.hits").Add(3)
	r.Gauge("b.size").Set(2.5)
	r.Histogram("c.age").Observe(10)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["a.hits"] != 3 || snap.Gauges["b.size"] != 2.5 {
		t.Fatalf("bad snapshot: %+v", snap)
	}
	if hs := snap.Histograms["c.age"]; hs.Count != 1 || hs.Sum != 10 {
		t.Fatalf("bad histogram snapshot: %+v", hs)
	}
	want := []string{"a.hits", "b.size", "c.age"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestTraceRingAndOrder(t *testing.T) {
	tr := NewTrace(4, nil)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Time: float64(i), Kind: EvPhotoTaken, A: int32(i), B: NoNode, Photo: NoPhoto})
	}
	if tr.Total() != 6 {
		t.Fatalf("total = %d, want 6", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := float64(i + 2); ev.Time != want {
			t.Fatalf("event %d time = %v, want %v (oldest-first order)", i, ev.Time, want)
		}
	}
	if got := tr.CountKind(EvPhotoTaken); got != 4 {
		t.Fatalf("CountKind = %d, want 4", got)
	}
}

func TestTraceJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(8, &buf)
	tr.Emit(Event{Time: 12.5, Kind: EvPhotoDelivered, A: 5, B: 0, Photo: 42, Value: 1})
	tr.Emit(Event{Time: 13, Kind: EvContactEnd, A: 1, B: 2, Photo: NoPhoto})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2: %q", len(lines), buf.String())
	}
	var rec struct {
		T     float64 `json:"t"`
		Ev    string  `json:"ev"`
		A     *int    `json:"a"`
		B     *int    `json:"b"`
		Photo *int64  `json:"photo"`
		V     float64 `json:"v"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v (%s)", err, lines[0])
	}
	if rec.T != 12.5 || rec.Ev != "photo-delivered" || rec.A == nil || *rec.A != 5 ||
		rec.B == nil || *rec.B != 0 || rec.Photo == nil || *rec.Photo != 42 || rec.V != 1 {
		t.Fatalf("bad record: %s", lines[0])
	}
	rec.Photo = nil
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 not JSON: %v (%s)", err, lines[1])
	}
	if rec.Photo != nil {
		t.Fatalf("sentinel photo must be omitted: %s", lines[1])
	}
}

type failWriter struct{ fails bool }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.fails {
		return 0, errWriteFailed
	}
	return len(p), nil
}

var errWriteFailed = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestTraceSinkErrorKeepsTracing(t *testing.T) {
	w := &failWriter{fails: true}
	tr := NewTrace(4, w)
	tr.Emit(Event{Kind: EvContactBegin, A: 1, B: 2, Photo: NoPhoto})
	tr.Emit(Event{Kind: EvContactEnd, A: 1, B: 2, Photo: NoPhoto})
	if tr.SinkErr() == nil {
		t.Fatal("sink error must be recorded")
	}
	if len(tr.Events()) != 2 {
		t.Fatal("in-memory tracing must continue after a sink failure")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EvContactBegin, EvContactEnd, EvPhotoTaken, EvPhotoSelected,
		EvPhotoDelivered, EvMetadataStaled, EvSessionAbort, EvNodeCrash,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(99).String() != "unknown" {
		t.Fatal("unknown kinds must stringify as unknown")
	}
}

func TestManifest(t *testing.T) {
	m := NewManifest("phototool", []string{"-quick"}, "cfg{a=1}", 7, 3)
	if m.ConfigHash != HashConfig("cfg{a=1}") {
		t.Fatal("hash mismatch")
	}
	if m.ConfigHash == HashConfig("cfg{a=2}") {
		t.Fatal("hash must depend on config")
	}
	if m.GitRev == "" || m.GoVersion == "" || m.NumCPU <= 0 {
		t.Fatalf("environment not filled: %+v", m)
	}
	path := t.TempDir() + "/out.txt"
	mp := ManifestPath(path)
	if !strings.HasSuffix(mp, "out.txt.manifest.json") {
		t.Fatalf("manifest path = %q", mp)
	}
	if err := m.Write(mp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Tool != "phototool" || got.Seed != 7 || got.Runs != 3 || got.ConfigHash != m.ConfigHash {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}
