// Package obs is the repository's observability layer: typed metrics
// (counters, gauges, histograms), a structured ring-buffered event trace
// with an optional JSONL sink, and run manifests that make every experiment
// output reproducible.
//
// The package is zero-dependency (standard library only) and built so that
// *disabled* observability is a strict no-op: every metric and trace method
// has a nil receiver fast path, so instrumented code holds plain (possibly
// nil) pointers and never branches on a configuration flag. A nil
// *Observer, *Registry, *Counter, *Gauge, *Histogram, or *Trace accepts
// every call and does nothing, which keeps the PR 2 selection hot loop free
// of measurable overhead when no observer is installed (pinned by
// BenchmarkObsGreedyFill and BenchmarkObsEngine).
//
// When enabled, metrics are updated with atomics (safe for the parallel
// gain scan and sim.RunMany workers) and events are appended to a
// fixed-capacity ring under a mutex, optionally mirrored to a JSONL sink.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter ignores every update and reads as 0.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is a programming error but not checked — counters
// are observability, not accounting).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric. The zero value is ready; a nil *Gauge
// ignores updates and reads as 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by delta (CAS loop — safe for concurrent use). It
// suits up/down quantities like in-flight contact sessions, where Set would
// race between readers of the old value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of exponential histogram buckets: bucket 0
// holds observations <= 1, bucket i holds (2^(i-1), 2^i], and the last
// bucket is the overflow.
const histBuckets = 40

// Histogram accumulates observations into base-2 exponential buckets,
// suitable for the latencies, ages, and sizes this repository measures
// (spanning seconds to weeks, bytes to gigabytes). The zero value is ready;
// a nil *Histogram ignores updates.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v <= 1 {
		return 0
	}
	b := math.Ilogb(v) // 2^b <= v < 2^(b+1)
	if v > math.Ldexp(1, b) {
		b++ // v lies strictly above 2^b: it belongs to the next bucket
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one value. Negative and NaN observations count into
// bucket 0 (they indicate instrumentation bugs but must not poison sums).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// HistogramSnapshot is a histogram's serialisable state. Buckets maps the
// bucket upper bound (as a string, for JSON) to its count; empty buckets
// are omitted.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// snapshot captures the histogram.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Mean: h.Mean()}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if s.Buckets == nil {
			s.Buckets = make(map[string]int64)
		}
		bound := math.Ldexp(1, i) // bucket 0 ≤ 1, bucket i ≤ 2^i
		if i == 0 {
			bound = 1
		}
		s.Buckets[fmt.Sprintf("%.0f", bound)] = n
	}
	return s
}

// Registry holds named metrics, one namespace per process or run.
// Lookups register on first use, so subsystems can fetch their metrics
// without an initialisation order. All methods are safe for concurrent use;
// a nil *Registry returns nil metrics (which are themselves no-ops).
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a registry's serialisable state.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Nil registries snapshot empty.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) > 0 {
		s.Counters = make(map[string]int64, len(r.counts))
		for name, c := range r.counts {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Names returns the sorted names of all registered metrics (diagnostics and
// tests).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counts)+len(r.gauges)+len(r.hists))
	for n := range r.counts {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal metrics: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteFile writes the snapshot to a file.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: metrics file: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Observer bundles a run's metrics registry and event trace. A nil
// *Observer is the disabled state: every method no-ops and every metric
// lookup returns a nil (no-op) metric.
type Observer struct {
	// Metrics is the run's metric registry.
	Metrics *Registry
	// Trace is the run's event trace (nil = events discarded).
	Trace *Trace
}

// New returns an observer with a fresh registry and a ring-buffered trace
// of the given capacity (0 picks DefaultTraceCap). sink, when non-nil,
// additionally receives every event as one JSON line.
func New(traceCap int, sink io.Writer) *Observer {
	return &Observer{
		Metrics: NewRegistry(),
		Trace:   NewTrace(traceCap, sink),
	}
}

// Enabled reports whether the observer is active.
func (o *Observer) Enabled() bool { return o != nil }

// Counter is a nil-safe registry lookup.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge is a nil-safe registry lookup.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram is a nil-safe registry lookup.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Emit appends an event to the trace (no-op when the observer or its trace
// is nil).
func (o *Observer) Emit(ev Event) {
	if o == nil {
		return
	}
	o.Trace.Emit(ev)
}

// Flush flushes the trace sink, if any.
func (o *Observer) Flush() error {
	if o == nil {
		return nil
	}
	return o.Trace.Flush()
}
