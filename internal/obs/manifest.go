package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// Manifest records everything needed to reproduce one experiment output:
// the tool and arguments that produced it, a hash of the effective
// configuration, the seed family, the code revision, and the machine
// environment. One manifest is written next to every figure/report/trace
// file (see ManifestPath), so a number in a plot can always be traced back
// to the run that produced it.
type Manifest struct {
	// Tool is the producing command (e.g. "photodtn-experiments").
	Tool string `json:"tool"`
	// Args is the command line the tool ran with.
	Args []string `json:"args,omitempty"`
	// Config is the canonical string form of the effective configuration.
	Config string `json:"config,omitempty"`
	// ConfigHash is the FNV-1a/64 hash of Config, for quick diffing.
	ConfigHash string `json:"config_hash"`
	// Seed is the base seed of the run family.
	Seed int64 `json:"seed"`
	// Runs is the number of averaged runs (0 when not applicable).
	Runs int `json:"runs,omitempty"`
	// GitRev is the source revision (build info, falling back to the git
	// CLI, falling back to "unknown").
	GitRev string `json:"git_rev"`
	// GoVersion, GoOS, GoArch, NumCPU, GoMaxProcs describe the bench
	// environment.
	GoVersion  string `json:"go_version"`
	GoOS       string `json:"goos"`
	GoArch     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// CreatedAt is the wall-clock creation time (RFC 3339, UTC).
	CreatedAt string `json:"created_at"`
	// Outputs lists the files this manifest describes.
	Outputs []string `json:"outputs,omitempty"`
}

// NewManifest fills a manifest with the environment and hashes the config.
func NewManifest(tool string, args []string, config string, seed int64, runs int) Manifest {
	return Manifest{
		Tool:       tool,
		Args:       args,
		Config:     config,
		ConfigHash: HashConfig(config),
		Seed:       seed,
		Runs:       runs,
		GitRev:     gitRev(),
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
	}
}

// HashConfig returns the FNV-1a/64 hash of a canonical configuration
// string, hex-encoded.
func HashConfig(config string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(config))
	return fmt.Sprintf("%016x", h.Sum64())
}

// ManifestPath derives the manifest path for an output file:
// "report.txt" → "report.txt.manifest.json".
func ManifestPath(outPath string) string { return outPath + ".manifest.json" }

// Write writes the manifest as indented JSON to path.
func (m Manifest) Write(path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal manifest: %w", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("obs: write manifest: %w", err)
	}
	return nil
}

// gitRevOnce caches the revision lookup: it involves an exec in the
// fallback path and cannot change within a process lifetime.
var gitRevOnce = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	// Test binaries and `go run` builds carry no VCS stamp; ask git.
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
})

func gitRev() string { return gitRevOnce() }
