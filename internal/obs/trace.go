package obs

import (
	"io"
	"strconv"
	"sync"
)

// EventKind identifies a structured trace event.
type EventKind uint8

// Event kinds — the taxonomy of DESIGN.md §5. Keep the string forms stable:
// they are the JSONL wire format tooling parses.
const (
	// EvContactBegin marks the start of a contact between nodes A and B
	// (B = 0 is the command center).
	EvContactBegin EventKind = iota + 1
	// EvContactEnd closes a contact; Value is the number of photo transfers
	// the contact carried (including duplicates).
	EvContactEnd
	// EvPhotoTaken records a node capturing (and keeping) a photo.
	EvPhotoTaken
	// EvPhotoSelected records the §III-D greedy selecting a photo onto node
	// A during a contact.
	EvPhotoSelected
	// EvPhotoDelivered records a distinct photo reaching the command
	// center; A is the delivering node.
	EvPhotoDelivered
	// EvMetadataStaled records a node dropping stale metadata entries;
	// Value is the number of entries invalidated.
	EvMetadataStaled
	// EvSessionAbort records a contact dying mid-transfer (frame loss,
	// timeout, protocol violation).
	EvSessionAbort
	// EvNodeCrash records a node crash wiping its storage; Value is the
	// number of photos lost.
	EvNodeCrash
	// EvPeerRecovery records a live peer recovering its durable state from
	// disk after a restart; A is the peer, Value is the number of journal
	// records replayed on top of the snapshot.
	EvPeerRecovery
	// EvPeerQuarantined records the guard placing a misbehaving remote in
	// quarantine; A is the local peer, B the offender, Value the expiry
	// time of the ban.
	EvPeerQuarantined
)

// String returns the stable JSONL name of the kind.
func (k EventKind) String() string {
	switch k {
	case EvContactBegin:
		return "contact-begin"
	case EvContactEnd:
		return "contact-end"
	case EvPhotoTaken:
		return "photo-taken"
	case EvPhotoSelected:
		return "photo-selected"
	case EvPhotoDelivered:
		return "photo-delivered"
	case EvMetadataStaled:
		return "metadata-staled"
	case EvSessionAbort:
		return "session-abort"
	case EvNodeCrash:
		return "node-crash"
	case EvPeerRecovery:
		return "peer-recovery"
	case EvPeerQuarantined:
		return "peer-quarantined"
	default:
		return "unknown"
	}
}

// Event is one trace record. The struct is a flat value (no pointers, no
// allocation per emit); unused fields hold the documented sentinels.
type Event struct {
	// Time is the simulation (or session-clock) timestamp in seconds.
	Time float64
	// Kind discriminates the event.
	Kind EventKind
	// A and B are the node IDs involved (0 = command center); NoNode marks
	// an unused slot.
	A, B int32
	// Photo is the photo ID involved, or NoPhoto.
	Photo int64
	// Value is a kind-specific magnitude (transfer count, entries dropped,
	// photos lost, ...).
	Value float64
}

// Field sentinels for unused Event slots.
const (
	NoNode  int32 = -1
	NoPhoto int64 = -1
)

// DefaultTraceCap is the default ring capacity (events kept in memory).
const DefaultTraceCap = 1 << 16

// Trace is a fixed-capacity ring of events, optionally mirrored to a JSONL
// sink. Emit is safe for concurrent use; a nil *Trace discards everything.
type Trace struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	wrapped bool
	total   uint64
	sink    io.Writer
	buf     []byte // reusable JSONL encode buffer
	sinkErr error
}

// NewTrace returns a trace with the given ring capacity (0 picks
// DefaultTraceCap) and an optional JSONL sink.
func NewTrace(capacity int, sink io.Writer) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{ring: make([]Event, capacity), sink: sink}
}

// Emit appends one event. When the ring is full the oldest event is
// overwritten; the sink (if any) still receives every event.
func (t *Trace) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = ev
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.total++
	if t.sink != nil && t.sinkErr == nil {
		t.buf = appendJSONL(t.buf[:0], ev)
		if _, err := t.sink.Write(t.buf); err != nil {
			t.sinkErr = err // stop writing, keep tracing in memory
		}
	}
	t.mu.Unlock()
}

// Total returns the number of events emitted since creation (including
// events the ring has already overwritten).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events in emission order (oldest first).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// CountKind returns how many retained events have the kind.
func (t *Trace) CountKind(kind EventKind) int {
	n := 0
	for _, ev := range t.Events() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// SinkErr returns the first sink write error, if any (tracing continues in
// memory after a sink failure).
func (t *Trace) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Flush flushes the sink when it is buffered (implements interface{ Flush()
// error }); otherwise it only reports any pending sink error.
func (t *Trace) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sinkErr != nil {
		return t.sinkErr
	}
	if f, ok := t.sink.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// appendJSONL appends one event as a JSON line:
//
//	{"t":12.5,"ev":"photo-delivered","a":5,"b":0,"photo":42,"v":1}
//
// Fields holding their sentinel (NoNode, NoPhoto, Value 0) are omitted. The
// encoding is hand-rolled to keep an enabled sink allocation-light.
func appendJSONL(b []byte, ev Event) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, ev.Time, 'g', -1, 64)
	b = append(b, `,"ev":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	if ev.A != NoNode {
		b = append(b, `,"a":`...)
		b = strconv.AppendInt(b, int64(ev.A), 10)
	}
	if ev.B != NoNode {
		b = append(b, `,"b":`...)
		b = strconv.AppendInt(b, int64(ev.B), 10)
	}
	if ev.Photo != NoPhoto {
		b = append(b, `,"photo":`...)
		b = strconv.AppendInt(b, ev.Photo, 10)
	}
	if ev.Value != 0 {
		b = append(b, `,"v":`...)
		b = strconv.AppendFloat(b, ev.Value, 'g', -1, 64)
	}
	b = append(b, '}', '\n')
	return b
}
