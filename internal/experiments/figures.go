package experiments

import (
	"fmt"

	"photodtn/internal/runner"
	"photodtn/internal/sim"
)

// timeSeries converts an averaged run into a Series over hours.
func timeSeries(label string, avg *sim.Average) Series {
	s := Series{Label: label}
	for _, sm := range avg.Samples {
		s.X = append(s.X, sm.Time/hour)
		s.PointFrac = append(s.PointFrac, sm.PointFrac)
		s.AspectDeg = append(s.AspectDeg, degrees(sm.AspectRad))
		s.Delivered = append(s.Delivered, sm.Delivered)
	}
	return s
}

// runJobs executes a figure's whole job matrix over one orchestrator pool —
// every (scheme, sweep point, run) cell shares the worker budget, so a slow
// scheme never serialises the figure — and returns one average per job, in
// job order.
func runJobs(figID string, jobs []runner.Job, opts Options) ([]*sim.Average, error) {
	aggs, err := runner.Run(opts.context(), jobs, opts.runnerOptions())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", figID, err)
	}
	avgs := make([]*sim.Average, len(aggs))
	for i, agg := range aggs {
		avgs[i] = sim.AverageOf(agg)
	}
	return avgs, nil
}

// Fig5 reproduces Fig. 5: point and aspect coverage over time on the MIT
// trace for all five schemes (storage 0.6 GB, 250 photos/hour).
func Fig5(opts Options) (*Figure, error) {
	opts = opts.normalized()
	p := DefaultParams(MIT)
	p.SampleHours = 25
	p.Obs = opts.Obs
	if opts.Quick {
		p.SpanHours = 60
		p.SampleHours = 20
	}
	fig := &Figure{
		ID:     "fig5",
		Title:  "Coverage vs crowdsourcing time (MIT-like trace, 0.6 GB storage, 250 photos/h)",
		XLabel: "time (hours)",
		Notes:  []string{fmt.Sprintf("averaged over %d runs (paper: 50)", opts.Runs)},
	}
	jobs := make([]runner.Job, len(AllSchemes))
	for i, scheme := range AllSchemes {
		jobs[i] = schemeJob(p, scheme, opts.Runs, opts.BaseSeed)
	}
	avgs, err := runJobs("fig5", jobs, opts)
	if err != nil {
		return nil, err
	}
	for i, scheme := range AllSchemes {
		fig.Series = append(fig.Series, timeSeries(scheme, avgs[i]))
	}
	return fig, nil
}

// Fig6 reproduces Fig. 6: the effect of short contact durations on our
// scheme (2 MB/s radio), with ModifiedSpray at full duration as the
// reference the paper compares the 30-second case against.
func Fig6(opts Options) (*Figure, error) {
	opts = opts.normalized()
	type variant struct {
		label  string
		scheme string
		sec    float64
	}
	variants := []variant{
		{"Ours (10 min)", SchemeOurs, 600},
		{"Ours (2 min)", SchemeOurs, 120},
		{"Ours (1 min)", SchemeOurs, 60},
		{"Ours (30 s)", SchemeOurs, 30},
	}
	if opts.Quick {
		variants = variants[:2]
	}
	// Reference: ModifiedSpray with the full 10-minute durations.
	variants = append(variants, variant{"ModifiedSpray (10 min)", SchemeModifiedSpray, 600})
	fig := &Figure{
		ID:     "fig6",
		Title:  "Effect of contact duration (MIT-like trace, 2 MB/s, 0.6 GB storage)",
		XLabel: "time (hours)",
		Notes:  []string{fmt.Sprintf("averaged over %d runs (paper: 50)", opts.Runs)},
	}
	jobs := make([]runner.Job, len(variants))
	for i, v := range variants {
		p := DefaultParams(MIT)
		p.SampleHours = 25
		p.BandwidthMBs = 2
		p.ContactCapSec = v.sec
		p.Obs = opts.Obs
		if opts.Quick {
			p.SpanHours = 60
			p.SampleHours = 20
		}
		jobs[i] = schemeJob(p, v.scheme, opts.Runs, opts.BaseSeed)
	}
	avgs, err := runJobs("fig6", jobs, opts)
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		fig.Series = append(fig.Series, timeSeries(v.label, avgs[i]))
	}
	return fig, nil
}

// sweepFigure runs a parameter sweep and reports final metrics per value.
// The whole (scheme × value) matrix goes through one orchestrator pool.
func sweepFigure(id, title, xlabel string, kind TraceKind, values []float64,
	apply func(*Params, float64), schemes []string, opts Options) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: xlabel,
		Notes:  []string{fmt.Sprintf("averaged over %d runs (paper: 50)", opts.Runs)},
	}
	var jobs []runner.Job
	for _, scheme := range schemes {
		for _, v := range values {
			p := DefaultParams(kind)
			p.Obs = opts.Obs
			if opts.Quick {
				p.SpanHours = 60
			}
			apply(&p, v)
			jobs = append(jobs, schemeJob(p, scheme, opts.Runs, opts.BaseSeed))
		}
	}
	avgs, err := runJobs(id, jobs, opts)
	if err != nil {
		return nil, err
	}
	for si, scheme := range schemes {
		s := Series{Label: scheme}
		for vi, v := range values {
			avg := avgs[si*len(values)+vi]
			s.X = append(s.X, v)
			s.PointFrac = append(s.PointFrac, avg.Final.PointFrac)
			s.AspectDeg = append(s.AspectDeg, degrees(avg.Final.AspectRad))
			s.Delivered = append(s.Delivered, avg.Final.Delivered)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// fig7and8Schemes are the schemes shown in the storage and photo-rate
// sweeps.
var fig7and8Schemes = []string{
	SchemeBestPossible, SchemeOurs, SchemeNoMetadata,
	SchemeModifiedSpray, SchemeSprayAndWait,
}

// Fig7 reproduces Fig. 7(a–c) or (d–f): final coverage and delivered-photo
// count versus storage capacity, on the chosen trace, at 250 photos/hour.
func Fig7(kind TraceKind, opts Options) (*Figure, error) {
	opts = opts.normalized()
	values := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	if opts.Quick {
		values = []float64{0.2, 0.6}
	}
	id := "fig7-mit"
	if kind == Cambridge {
		id = "fig7-cam"
	}
	return sweepFigure(id,
		fmt.Sprintf("Effect of storage capacity (%v trace, 250 photos/h)", kind),
		"storage (GB)", kind, values,
		func(p *Params, v float64) { p.StorageGB = v },
		fig7and8Schemes, opts)
}

// Fig8 reproduces Fig. 8(a–c) or (d–f): final coverage and delivered-photo
// count versus the photo generation rate, at 0.6 GB storage.
func Fig8(kind TraceKind, opts Options) (*Figure, error) {
	opts = opts.normalized()
	values := []float64{50, 100, 250, 400, 500}
	if opts.Quick {
		values = []float64{50, 250}
	}
	id := "fig8-mit"
	if kind == Cambridge {
		id = "fig8-cam"
	}
	return sweepFigure(id,
		fmt.Sprintf("Effect of photo generation rate (%v trace, 0.6 GB storage)", kind),
		"photos per hour", kind, values,
		func(p *Params, v float64) { p.PhotosPerHour = v },
		fig7and8Schemes, opts)
}
