package experiments

import (
	"fmt"

	"photodtn/internal/core"
	"photodtn/internal/geo"
	"photodtn/internal/runner"
	"photodtn/internal/sim"
)

// RunAveragedScheme is RunAveraged with a custom scheme factory, used by
// the ablation studies to run non-default configurations of the framework.
// The label names the variant: it keys the orchestrator job (and any
// checkpoint records), so two factories with identical Params but different
// internal configuration must carry different labels — the factory itself is
// opaque and cannot be digested.
func RunAveragedScheme(p Params, label string, factory func() sim.Scheme, opts Options) (*sim.Average, error) {
	opts = opts.normalized()
	if p.Obs == nil {
		p.Obs = opts.Obs
	}
	job := runner.Job{
		Key:  p.jobKey("variant:" + label),
		Runs: opts.Runs,
		Cell: sim.Cell(func(seed int64) (sim.Config, sim.Scheme, error) {
			cfg, _, err := Build(p, SchemeOurs, seed)
			if err != nil {
				return sim.Config{}, nil, err
			}
			return cfg, factory(), nil
		}),
		Seed: sim.LegacySeeds(opts.BaseSeed),
	}
	aggs, err := runner.Run(opts.context(), []runner.Job{job}, opts.runnerOptions())
	if err != nil {
		return nil, err
	}
	return sim.AverageOf(aggs[0]), nil
}

// AblationPthld sweeps the metadata validity threshold P_thld (DESIGN.md:
// "The value of P_thld is currently determined by simulations"). Small
// thresholds invalidate cached metadata aggressively (approaching
// NoMetadata); 1.0 never invalidates (stale knowledge misguides selection).
func AblationPthld(opts Options) (*Figure, error) {
	opts = opts.normalized()
	values := []float64{0.2, 0.5, 0.8, 0.95, 0.999}
	if opts.Quick {
		values = []float64{0.2, 0.8}
	}
	p := DefaultParams(MIT)
	p.Obs = opts.Obs
	if opts.Quick {
		p.SpanHours = 60
	}
	fig := &Figure{
		ID:     "ablation-pthld",
		Title:  "Ablation: metadata validity threshold P_thld (our scheme, MIT-like trace)",
		XLabel: "P_thld",
		Notes:  []string{fmt.Sprintf("averaged over %d runs", opts.Runs)},
	}
	s := Series{Label: SchemeOurs}
	for _, v := range values {
		cfg := core.DefaultConfig()
		cfg.Pthld = v
		avg, err := RunAveragedScheme(p, fmt.Sprintf("pthld=%g", v), func() sim.Scheme { return core.New(cfg) }, opts)
		if err != nil {
			return nil, fmt.Errorf("ablation pthld %v: %w", v, err)
		}
		s.X = append(s.X, v)
		s.PointFrac = append(s.PointFrac, avg.Final.PointFrac)
		s.AspectDeg = append(s.AspectDeg, degrees(avg.Final.AspectRad))
		s.Delivered = append(s.Delivered, avg.Final.Delivered)
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// AblationTheta sweeps the effective angle θ: it controls how wide an
// aspect arc one photo covers, trading per-photo credit against the number
// of photos needed for all-around views.
func AblationTheta(opts Options) (*Figure, error) {
	opts = opts.normalized()
	values := []float64{10, 20, 30, 45, 60}
	if opts.Quick {
		values = []float64{20, 40}
	}
	fig := &Figure{
		ID:     "ablation-theta",
		Title:  "Ablation: effective angle θ (our scheme, MIT-like trace)",
		XLabel: "θ (degrees)",
		Notes: []string{
			fmt.Sprintf("averaged over %d runs", opts.Runs),
			"aspect coverage is measured with the same θ it is optimised for",
		},
	}
	s := Series{Label: SchemeOurs}
	for _, deg := range values {
		p := DefaultParams(MIT)
		p.Theta = geo.Radians(deg)
		if opts.Quick {
			p.SpanHours = 60
		}
		avg, err := RunAveragedContext(opts.context(), p, SchemeOurs, opts)
		if err != nil {
			return nil, fmt.Errorf("ablation theta %v: %w", deg, err)
		}
		s.X = append(s.X, deg)
		s.PointFrac = append(s.PointFrac, avg.Final.PointFrac)
		s.AspectDeg = append(s.AspectDeg, degrees(avg.Final.AspectRad))
		s.Delivered = append(s.Delivered, avg.Final.Delivered)
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// AblationEvaluator compares expected-coverage evaluation fidelities: exact
// enumeration (large ExactLimit) versus pure Monte Carlo with decreasing
// sample counts. It quantifies how insensitive the greedy's final coverage
// is to the evaluation budget — the justification for the cheap defaults.
func AblationEvaluator(opts Options) (*Figure, error) {
	opts = opts.normalized()
	type variant struct {
		label      string
		exactLimit int
		samples    int
	}
	variants := []variant{
		{"exact≤10", 10, 64},
		{"mc64", 0, 64},
		{"mc16", 0, 16},
		{"mc4", 0, 4},
	}
	if opts.Quick {
		variants = variants[1:3]
	}
	p := DefaultParams(MIT)
	p.Obs = opts.Obs
	if opts.Quick {
		p.SpanHours = 60
	}
	fig := &Figure{
		ID:     "ablation-evaluator",
		Title:  "Ablation: expected-coverage evaluation fidelity (our scheme, MIT-like trace)",
		XLabel: "variant#",
		Notes:  []string{fmt.Sprintf("averaged over %d runs", opts.Runs)},
	}
	for _, v := range variants {
		cfg := core.DefaultConfig()
		cfg.Selection.ExactLimit = v.exactLimit
		cfg.Selection.Samples = v.samples
		avg, err := RunAveragedScheme(p, "evaluator="+v.label, func() sim.Scheme { return core.New(cfg) }, opts)
		if err != nil {
			return nil, fmt.Errorf("ablation evaluator %s: %w", v.label, err)
		}
		fig.Series = append(fig.Series, Series{
			Label:     v.label,
			X:         []float64{0},
			PointFrac: []float64{avg.Final.PointFrac},
			AspectDeg: []float64{degrees(avg.Final.AspectRad)},
			Delivered: []float64{avg.Final.Delivered},
		})
	}
	return fig, nil
}
