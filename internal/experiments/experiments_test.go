package experiments

import (
	"strings"
	"testing"

	"photodtn/internal/geo"
)

func quickOpts() Options { return Options{Runs: 1, BaseSeed: 3, Quick: true} }

func TestNewScheme(t *testing.T) {
	for _, name := range append(AllSchemes[:len(AllSchemes):len(AllSchemes)], SchemePhotoNet) {
		s, err := NewScheme(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("scheme %q reports name %q", name, s.Name())
		}
	}
	if _, err := NewScheme("nope"); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
}

func TestTraceKindString(t *testing.T) {
	if MIT.String() != "MIT" || Cambridge.String() != "Cambridge06" {
		t.Fatal("TraceKind names wrong")
	}
	if !strings.Contains(TraceKind(9).String(), "9") {
		t.Fatal("unknown kind should include the number")
	}
}

func TestBaseTraceShapes(t *testing.T) {
	mit, err := BaseTrace(MIT)
	if err != nil {
		t.Fatal(err)
	}
	if mit.Nodes != 97 {
		t.Fatalf("MIT nodes = %d", mit.Nodes)
	}
	cam, err := BaseTrace(Cambridge)
	if err != nil {
		t.Fatal(err)
	}
	if cam.Nodes != 54 {
		t.Fatalf("Cambridge nodes = %d", cam.Nodes)
	}
	// Cached: same pointer on second call.
	again, _ := BaseTrace(MIT)
	if again != mit {
		t.Fatal("BaseTrace not cached")
	}
	if _, err := BaseTrace(TraceKind(99)); err == nil {
		t.Fatal("expected error for unknown trace kind")
	}
}

func TestBuildDeterministic(t *testing.T) {
	p := DefaultParams(MIT)
	p.SpanHours = 10
	a, _, err := Build(p, SchemeOurs, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Build(p, SchemeOurs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Photos) != len(b.Photos) || len(a.Gateways) != len(b.Gateways) {
		t.Fatal("Build not deterministic")
	}
	for i := range a.Gateways {
		if a.Gateways[i] != b.Gateways[i] {
			t.Fatal("gateways differ across identical builds")
		}
	}
}

func TestBuildAppliesParams(t *testing.T) {
	p := DefaultParams(MIT)
	p.StorageGB = 0.25
	p.BandwidthMBs = 2
	p.ContactCapSec = 30
	p.SpanHours = 10
	cfg, scheme, err := Build(p, SchemeSprayAndWait, 1)
	if err != nil {
		t.Fatal(err)
	}
	if scheme.Name() != SchemeSprayAndWait {
		t.Fatalf("scheme = %s", scheme.Name())
	}
	if cfg.StorageBytes != int64(0.25*float64(int64(1)<<30)) {
		t.Fatalf("storage = %d", cfg.StorageBytes)
	}
	if cfg.Bandwidth != 2*float64(int64(1)<<20) {
		t.Fatalf("bandwidth = %v", cfg.Bandwidth)
	}
	for _, c := range cfg.Trace.Contacts {
		if c.Duration() > 30+1e-9 {
			t.Fatalf("contact duration %v exceeds cap", c.Duration())
		}
	}
	if cfg.Span != 10*hour {
		t.Fatalf("span = %v", cfg.Span)
	}
}

func TestBuildUnknownScheme(t *testing.T) {
	if _, _, err := Build(DefaultParams(MIT), "nope", 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestPickActiveGatewaysAreConnected(t *testing.T) {
	tr, err := BaseTrace(MIT)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(MIT)
	p.SpanHours = 10
	cfg, _, err := Build(p, SchemeOurs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Gateways) != 2 { // 2% of 97
		t.Fatalf("gateways = %d, want 2", len(cfg.Gateways))
	}
	// Gateways must be among the more-connected half of the population.
	counts := make(map[int]int)
	for _, c := range tr.Contacts {
		counts[int(c.A)]++
		counts[int(c.B)]++
	}
	for _, g := range cfg.Gateways {
		busier := 0
		for _, n := range counts {
			if n > counts[int(g)] {
				busier++
			}
		}
		if busier > tr.Nodes/2 {
			t.Fatalf("gateway %v is in the quiet half (%d busier nodes)", g, busier)
		}
	}
}

func TestFigureFormat(t *testing.T) {
	fig := &Figure{
		ID: "figx", Title: "test", XLabel: "x",
		Notes: []string{"a note"},
		Series: []Series{{
			Label: "s1", X: []float64{1, 2},
			PointFrac: []float64{0.1, 0.2},
			AspectDeg: []float64{10, 20},
			Delivered: []float64{5, 6},
		}},
	}
	out := fig.Format()
	for _, want := range []string{"FIGX", "a note", "point coverage", "aspect coverage", "photos delivered", "s1", "0.100", "20.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted figure missing %q:\n%s", want, out)
		}
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) < 9 {
		t.Fatalf("table rows = %d", len(rows))
	}
	out := FormatTable1()
	for _, want := range []string{"4MB", "P_thld", "0.75, 0.25, 0.98", "97/54", "300/200 hr", "30°"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestRunDemoReproducesFig3(t *testing.T) {
	res, err := RunDemo(DefaultDemoConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := make(map[string]DemoRow, 3)
	for _, r := range res.Rows {
		byName[r.Scheme] = r
	}
	ours, snw, pnet := byName[SchemeOurs], byName[SchemeSprayAndWait], byName[SchemePhotoNet]
	// The paper's qualitative Fig. 3 claims:
	// 1. The content-blind schemes deliver a full 12 photos (4 CC contacts ×
	//    3 photos); ours delivers only the useful subset.
	if snw.Delivered != 12 {
		t.Fatalf("Spray&Wait delivered %d, want 12", snw.Delivered)
	}
	if ours.Delivered >= snw.Delivered {
		t.Fatalf("ours delivered %d, want fewer than Spray&Wait's %d", ours.Delivered, snw.Delivered)
	}
	// 2. Every photo ours delivers is useful.
	if ours.Useful != ours.Delivered {
		t.Fatalf("ours delivered %d photos but only %d useful", ours.Delivered, ours.Useful)
	}
	// 3. Ours covers far more aspect than both baselines.
	if ours.AspectDeg < snw.AspectDeg+60 || ours.AspectDeg < pnet.AspectDeg+60 {
		t.Fatalf("aspect: ours %.0f° vs S&W %.0f° / PhotoNet %.0f°", ours.AspectDeg, snw.AspectDeg, pnet.AspectDeg)
	}
	// Format must carry both the table and the pose plot.
	out := res.Format()
	if !strings.Contains(out, "FIG3") || !strings.Contains(out, "FIG4") {
		t.Fatalf("demo format incomplete:\n%s", out)
	}
}

func TestRunDemoDeterministic(t *testing.T) {
	a, err := RunDemo(DefaultDemoConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDemo(DefaultDemoConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != b.Format() {
		t.Fatal("demo not deterministic")
	}
}

func TestFig5Quick(t *testing.T) {
	fig, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(AllSchemes) {
		t.Fatalf("series = %d", len(fig.Series))
	}
	final := make(map[string]Series, len(fig.Series))
	for _, s := range fig.Series {
		final[s.Label] = s
		// Coverage must be monotone over time for every scheme.
		for i := 1; i < len(s.PointFrac); i++ {
			if s.PointFrac[i] < s.PointFrac[i-1]-1e-9 || s.AspectDeg[i] < s.AspectDeg[i-1]-1e-9 {
				t.Fatalf("%s: coverage decreased over time", s.Label)
			}
		}
	}
	last := func(v []float64) float64 { return v[len(v)-1] }
	best, ours := final[SchemeBestPossible], final[SchemeOurs]
	snw := final[SchemeSprayAndWait]
	if last(best.AspectDeg) < last(ours.AspectDeg)-1e-9 {
		t.Fatalf("BestPossible (%.1f°) below ours (%.1f°)", last(best.AspectDeg), last(ours.AspectDeg))
	}
	if last(ours.AspectDeg) <= last(snw.AspectDeg) {
		t.Fatalf("ours (%.1f°) not above Spray&Wait (%.1f°)", last(ours.AspectDeg), last(snw.AspectDeg))
	}
}

func TestFig6Quick(t *testing.T) {
	fig, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) < 3 { // 2 caps + reference
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Longer contacts can only help.
	long, short := fig.Series[0], fig.Series[1]
	lastIdx := len(long.AspectDeg) - 1
	if long.AspectDeg[lastIdx] < short.AspectDeg[lastIdx]-30 {
		t.Fatalf("10-min contacts (%.0f°) drastically below 2-min (%.0f°)",
			long.AspectDeg[lastIdx], short.AspectDeg[lastIdx])
	}
}

func TestFig7Quick(t *testing.T) {
	fig, err := Fig7(Cambridge, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig7-cam" {
		t.Fatalf("id = %s", fig.ID)
	}
	if len(fig.Series) != len(fig7and8Schemes) {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 2 {
			t.Fatalf("%s: x values = %v", s.Label, s.X)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	fig, err := Fig8(MIT, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "fig8-mit" {
		t.Fatalf("id = %s", fig.ID)
	}
	// Our scheme's coverage must grow with more generated photos (the
	// paper's headline Fig. 8 observation).
	for _, s := range fig.Series {
		if s.Label != SchemeOurs {
			continue
		}
		if s.AspectDeg[len(s.AspectDeg)-1] < s.AspectDeg[0]-1e-9 {
			t.Fatalf("ours aspect decreased with more photos: %v", s.AspectDeg)
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	for _, fn := range []func(Options) (*Figure, error){AblationPthld, AblationTheta, AblationEvaluator} {
		fig, err := fn(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("%s: no series", fig.ID)
		}
	}
}

func TestDefaultParamsTheta(t *testing.T) {
	if got := DefaultParams(MIT).Theta; got != geo.Radians(30) {
		t.Fatalf("theta = %v", got)
	}
}

func TestExtendedComparisonQuick(t *testing.T) {
	fig, err := ExtendedComparison(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d, want 6", len(fig.Series))
	}
	byName := make(map[string]Series)
	for _, s := range fig.Series {
		byName[s.Label] = s
	}
	last := func(v []float64) float64 { return v[len(v)-1] }
	// Coverage awareness must beat content-blindness even when the
	// content-blind scheme is mobility-aware.
	if last(byName[SchemeOurs].AspectDeg) <= last(byName[SchemeProphet].AspectDeg) {
		t.Fatalf("ours (%.1f°) not above PROPHET (%.1f°)",
			last(byName[SchemeOurs].AspectDeg), last(byName[SchemeProphet].AspectDeg))
	}
}

func TestNewSchemeExtendedBaselines(t *testing.T) {
	for _, name := range []string{SchemeEpidemic, SchemeProphet} {
		s, err := NewScheme(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Fatalf("name = %q", s.Name())
		}
	}
}
