package experiments

import "testing"

func TestSchemeOrderingProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	p := DefaultParams(MIT)
	p.SampleHours = 75
	for _, scheme := range AllSchemes {
		avg, err := RunAveraged(p, scheme, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		half := avg.Samples[len(avg.Samples)/2-1]
		t.Logf("%-14s half: pt=%.3f as=%.0f° del=%.0f | full: pt=%.3f as=%.0f° del=%.0f xfer=%.0f",
			scheme, half.PointFrac, half.AspectRad*180/3.14159, half.Delivered,
			avg.Final.PointFrac, avg.Final.AspectRad*180/3.14159, avg.Final.Delivered, avg.TransferredPhotos)
	}
}
