package experiments

import (
	"fmt"
	"strings"

	"photodtn/internal/geo"
	"photodtn/internal/metadata"
	"photodtn/internal/prophet"
	"photodtn/internal/trace"
	"photodtn/internal/workload"
)

// Table1Row is one simulation setting, named as in Table I.
type Table1Row struct {
	Parameter string
	Notation  string
	Value     string
}

// Table1 reproduces Table I by reading the values off the actual defaults
// used throughout this repository (so the table cannot drift from the
// code).
func Table1() []Table1Row {
	wl := workload.Default(97, 300*hour)
	pcfg := prophet.DefaultConfig()
	mit := trace.MITLike(0)
	cam := trace.CambridgeLike(0)
	return []Table1Row{
		{"photo size", "—", fmt.Sprintf("%dMB", wl.PhotoSize>>20)},
		{"effective angle", "θ", fmt.Sprintf("%.0f°", geo.Degrees(DefaultParams(MIT).Theta))},
		{"orientation", "d", "[0°, 360°)"},
		{"field-of-view", "φ", fmt.Sprintf("[%.0f°, %.0f°]", geo.Degrees(wl.FOVMin), geo.Degrees(wl.FOVMax))},
		{"coverage range", "r", fmt.Sprintf("[%.0f, %.0f]·cot(φ/2) m", wl.RangeCoefMin, wl.RangeCoefMax)},
		{"valid threshold", "P_thld", fmt.Sprintf("%.1f", metadata.DefaultPthld)},
		{"PROPHET", "P_init, β, γ", fmt.Sprintf("%.2f, %.2f, %.2f", pcfg.PInit, pcfg.Beta, pcfg.Gamma)},
		{"# of nodes", "—", fmt.Sprintf("%d/%d", mit.Nodes, cam.Nodes)},
		{"simulation time", "—", fmt.Sprintf("%.0f/%.0f hr", mit.Span/hour, cam.Span/hour)},
		{"# of PoIs", "—", fmt.Sprintf("%d", wl.NumPoIs)},
		{"region", "—", "6300 m × 6300 m"},
		{"gateway nodes", "—", fmt.Sprintf("%.0f%% of participants", DefaultParams(MIT).GatewayFrac*100)},
	}
}

// FormatTable1 renders Table I as text.
func FormatTable1() string {
	var b strings.Builder
	b.WriteString("== TABLE I: simulation settings (read from code defaults) ==\n")
	fmt.Fprintf(&b, "%-18s %-14s %s\n", "parameter", "notation", "value")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%-18s %-14s %s\n", r.Parameter, r.Notation, r.Value)
	}
	return b.String()
}
