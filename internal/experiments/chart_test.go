package experiments

import (
	"strings"
	"testing"
)

func chartFixture() *Figure {
	return &Figure{
		ID: "figx", Title: "t", XLabel: "hours",
		Series: []Series{
			{Label: "up", X: []float64{0, 50, 100}, PointFrac: []float64{0, 0.5, 1},
				AspectDeg: []float64{0, 90, 180}, Delivered: []float64{0, 10, 20}},
			{Label: "flat", X: []float64{0, 50, 100}, PointFrac: []float64{0.2, 0.2, 0.2},
				AspectDeg: []float64{30, 30, 30}, Delivered: []float64{5, 5, 5}},
		},
	}
}

func TestChartRendersSeries(t *testing.T) {
	fig := chartFixture()
	out := fig.Chart(MetricPoint, 40, 10)
	for _, want := range []string{"point coverage vs hours", "* up", "o flat", "    0 |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Header + 10 rows + axis + x labels + 2 legend + trailing newline.
	if len(lines) < 14 {
		t.Fatalf("chart too short: %d lines\n%s", len(lines), out)
	}
	// The rising series must reach the top row; the top row carries the max label.
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("max row missing rising series:\n%s", out)
	}
}

func TestChartMetrics(t *testing.T) {
	fig := chartFixture()
	for _, m := range []Metric{MetricPoint, MetricAspect, MetricDelivered} {
		out := fig.Chart(m, 30, 8)
		if !strings.Contains(out, m.name) {
			t.Fatalf("metric %q missing from chart", m.name)
		}
	}
}

func TestChartEmpty(t *testing.T) {
	fig := &Figure{ID: "e", XLabel: "x"}
	if out := fig.Chart(MetricPoint, 40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
	// All-zero data also degrades gracefully.
	fig.Series = []Series{{Label: "z", X: []float64{1}, PointFrac: []float64{0}}}
	if out := fig.Chart(MetricPoint, 40, 10); !strings.Contains(out, "no data") {
		t.Fatalf("zero chart = %q", out)
	}
}

func TestChartClampsTinyDimensions(t *testing.T) {
	fig := chartFixture()
	out := fig.Chart(MetricAspect, 1, 1) // clamped to minimums
	if len(out) == 0 {
		t.Fatal("empty output")
	}
}

func TestChartSinglePoint(t *testing.T) {
	fig := &Figure{XLabel: "x", Series: []Series{{Label: "p", X: []float64{5}, PointFrac: []float64{0.7}}}}
	out := fig.Chart(MetricPoint, 20, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
}
