package experiments

import (
	"context"
	"fmt"
	"strings"

	"photodtn/internal/geo"
	"photodtn/internal/obs"
	"photodtn/internal/runner"
)

// Series is one labelled curve of a figure: metric values over the X axis.
type Series struct {
	Label string
	// X holds the independent variable (hours, GB, photos/hour, ...).
	X []float64
	// PointFrac is the normalized point coverage per X.
	PointFrac []float64
	// AspectDeg is the mean covered aspect per PoI in degrees per X.
	AspectDeg []float64
	// Delivered is the (average) number of photos delivered per X.
	Delivered []float64
}

// Figure is a reproduced paper figure: a set of series over a common axis.
type Figure struct {
	// ID is the experiment identifier, e.g. "fig5".
	ID string
	// Title describes the figure.
	Title string
	// XLabel names the independent variable.
	XLabel string
	// Series holds one curve per scheme/variant.
	Series []Series
	// Notes carries caveats (substitutions, reduced runs, ...).
	Notes []string
}

// Format renders the figure as aligned text tables, one per metric.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(f.ID), f.Title)
	for _, note := range f.Notes {
		fmt.Fprintf(&b, "   note: %s\n", note)
	}
	metrics := []struct {
		name string
		get  func(Series) []float64
		unit string
	}{
		{"point coverage", func(s Series) []float64 { return s.PointFrac }, "fraction of PoIs"},
		{"aspect coverage", func(s Series) []float64 { return s.AspectDeg }, "mean degrees per PoI"},
		{"photos delivered", func(s Series) []float64 { return s.Delivered }, "count"},
	}
	for _, m := range metrics {
		if len(f.Series) == 0 || len(m.get(f.Series[0])) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n-- %s (%s) --\n", m.name, m.unit)
		// Header row: X values.
		fmt.Fprintf(&b, "%-22s", f.XLabel)
		for _, x := range f.Series[0].X {
			fmt.Fprintf(&b, "%10s", trimFloat(x))
		}
		b.WriteByte('\n')
		for _, s := range f.Series {
			fmt.Fprintf(&b, "%-22s", s.Label)
			for _, v := range m.get(s) {
				fmt.Fprintf(&b, "%10.3f", v)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Options controls experiment scale. The paper averages 50 runs per data
// point; the default here is smaller so the whole suite regenerates in
// minutes — raise Runs for paper-grade smoothness.
type Options struct {
	// Runs is the number of averaged runs per data point.
	Runs int
	// BaseSeed seeds the run family.
	BaseSeed int64
	// Quick trims sweeps and spans for use in benchmarks and smoke tests.
	Quick bool
	// Obs optionally attaches an observer to every run of the experiment;
	// see Params.Obs. Nil leaves every run unobserved (bit-identical). The
	// orchestrator's own counters (runner.cells_*) land here too.
	Obs *obs.Observer
	// Workers bounds the number of concurrently simulated runs; <= 0 means
	// GOMAXPROCS. Results are bit-identical for every value — the
	// orchestrator applies summaries in run order no matter which worker
	// finishes first.
	Workers int
	// Checkpoint, when non-nil, records every completed (scenario, scheme,
	// run) cell and resumes previously completed ones, including across
	// figures that share scenarios. The caller owns Open/Close.
	Checkpoint *runner.Checkpoint

	// ctx carries the experiment's cancellation context; set it with
	// WithContext. Unexported so the zero Options value stays valid.
	ctx context.Context
}

// DefaultOptions returns a configuration that regenerates every figure in
// reasonable wall-clock time.
func DefaultOptions() Options { return Options{Runs: 3, BaseSeed: 1} }

// WithContext returns a copy of the options carrying ctx: cancelling it
// aborts the experiment's remaining runs at the engine's next cancellation
// point (completed cells stay in the checkpoint, if one is attached).
func (o Options) WithContext(ctx context.Context) Options {
	o.ctx = ctx
	return o
}

// context returns the experiment's context, never nil.
func (o Options) context() context.Context {
	if o.ctx == nil {
		return context.Background()
	}
	return o.ctx
}

// runnerOptions projects the experiment options onto the orchestrator's.
func (o Options) runnerOptions() runner.Options {
	return runner.Options{
		Workers:    o.Workers,
		BaseSeed:   o.BaseSeed,
		Checkpoint: o.Checkpoint,
		Obs:        o.Obs,
	}
}

func (o Options) normalized() Options {
	if o.Runs <= 0 {
		o.Runs = 3
	}
	return o
}

// degrees converts radians to degrees (local convenience).
func degrees(rad float64) float64 { return geo.Degrees(rad) }
