package experiments

import (
	"reflect"
	"testing"

	"photodtn/internal/faults"
)

func TestBuildThreadsFaultConfig(t *testing.T) {
	p := DefaultParams(MIT)
	p.Faults = &faults.Config{Seed: 9, NodeFailRate: 0.25}
	cfg, _, err := Build(p, SchemeOurs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults != p.Faults {
		t.Fatal("Build dropped the fault config")
	}
	p.Faults = nil
	cfg, _, err = Build(p, SchemeOurs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults != nil {
		t.Fatal("Build invented a fault config")
	}
}

func TestFaultsNodeFailureQuick(t *testing.T) {
	fig, err := FigFaultsNodeFailure(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(faultSchemes) {
		t.Fatalf("series = %d, want %d", len(fig.Series), len(faultSchemes))
	}
	for _, s := range fig.Series {
		if len(s.X) != 2 || s.X[0] != 0 || s.X[1] != 0.3 {
			t.Fatalf("%s: quick sweep X = %v", s.Label, s.X)
		}
		for i, v := range s.PointFrac {
			if v < 0 || v > 1 {
				t.Fatalf("%s: point coverage out of range at %v: %v", s.Label, s.X[i], v)
			}
		}
		// Graceful degradation: at a 30% node-failure rate coverage may
		// shrink but must neither collapse to zero nor exceed fault-free.
		if s.AspectDeg[1] <= 0 {
			t.Fatalf("%s: coverage collapsed at 30%% failure rate", s.Label)
		}
		if s.AspectDeg[1] > s.AspectDeg[0]+1e-9 {
			t.Fatalf("%s: crashing nodes improved coverage (%.1f° -> %.1f°)",
				s.Label, s.AspectDeg[0], s.AspectDeg[1])
		}
	}
}

func TestFaultsFrameLossQuick(t *testing.T) {
	fig, err := FigFaultsFrameLoss(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != len(faultSchemes) {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if s.AspectDeg[1] <= 0 {
			t.Fatalf("%s: coverage collapsed at 20%% frame loss", s.Label)
		}
		if s.AspectDeg[1] > s.AspectDeg[0]+1e-9 {
			t.Fatalf("%s: frame loss improved coverage (%.1f° -> %.1f°)",
				s.Label, s.AspectDeg[0], s.AspectDeg[1])
		}
	}
}

func TestFaultsFiguresDeterministic(t *testing.T) {
	a, err := FigFaultsFrameLoss(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FigFaultsFrameLoss(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("faults figure is not deterministic across identical options")
	}
}
