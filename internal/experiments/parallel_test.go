package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"photodtn/internal/obs"
	"photodtn/internal/runner"
	"photodtn/internal/sim"
	"photodtn/internal/trace"
)

// tinyParams builds a small custom-trace scenario so parallelism and
// checkpoint tests finish in seconds rather than minutes.
func tinyParams(t *testing.T) Params {
	t.Helper()
	cfg := trace.SynthConfig{
		Nodes: 12, Span: 20 * hour, Communities: 3,
		IntraRate: 0.05 / hour, InterRate: 0.005 / hour,
		MeanContactDur: 600, ScanInterval: 300, Seed: 5,
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(MIT)
	p.CustomTrace = tr
	p.PhotosPerHour = 40
	p.SampleHours = 10
	return p
}

// tinySweep runs a 2-scheme sweep over the tiny scenario and formats it —
// the byte-level artifact the worker-count invariance is pinned on.
func tinySweep(t *testing.T, opts Options) string {
	t.Helper()
	p := tinyParams(t)
	fig, err := sweepFigure("tiny", "parallel invariance probe", "storage (GB)",
		MIT, []float64{0.2, 0.6},
		func(pp *Params, v float64) { *pp = p; pp.StorageGB = v },
		[]string{SchemeOurs, SchemeSprayAndWait}, opts.normalized())
	if err != nil {
		t.Fatal(err)
	}
	return fig.Format()
}

func TestSweepBitIdenticalAcrossWorkerCounts(t *testing.T) {
	base := tinySweep(t, Options{Runs: 3, BaseSeed: 1, Workers: 1})
	for _, workers := range []int{2, 8} {
		if got := tinySweep(t, Options{Runs: 3, BaseSeed: 1, Workers: workers}); got != base {
			t.Fatalf("workers=%d output diverges from serial:\n%s\nvs\n%s", workers, got, base)
		}
	}
}

func TestSweepCheckpointResume(t *testing.T) {
	opts := Options{Runs: 2, BaseSeed: 1, Workers: 2}
	want := tinySweep(t, opts)

	// First pass populates the checkpoint.
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	cp, err := runner.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(0, nil)
	first := tinySweep(t, Options{Runs: 2, BaseSeed: 1, Workers: 2, Checkpoint: cp, Obs: o})
	if first != want {
		t.Fatal("checkpointed run diverges from plain run")
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 8 { // 2 schemes × 2 values × 2 runs
		t.Fatalf("checkpoint holds %d cells, want 8", cp.Len())
	}
	if got := o.Counter("runner.cells_started").Value(); got != 8 {
		t.Fatalf("first pass started %d cells, want 8", got)
	}

	// Second pass must resume every cell — zero simulations — and format
	// byte-identically.
	cp2, err := runner.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	o2 := obs.New(0, nil)
	resumed := tinySweep(t, Options{Runs: 2, BaseSeed: 1, Workers: 2, Checkpoint: cp2, Obs: o2})
	if resumed != want {
		t.Fatal("resumed run diverges from uninterrupted run")
	}
	if got := o2.Counter("runner.cells_started").Value(); got != 0 {
		t.Fatalf("resume started %d cells, want 0", got)
	}
	if got := o2.Counter("runner.cells_resumed").Value(); got != 8 {
		t.Fatalf("resume resumed %d cells, want 8", got)
	}
}

func TestRunAveragedContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAveragedContext(ctx, tinyParams(t), SchemeSprayAndWait, Options{Runs: 2, BaseSeed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestJobKeyDistinguishesScenarios(t *testing.T) {
	p := DefaultParams(MIT)
	q := p
	q.StorageGB = 0.8
	if p.jobKey(SchemeOurs) == q.jobKey(SchemeOurs) {
		t.Fatal("different storage, same key")
	}
	if p.jobKey(SchemeOurs) == p.jobKey(SchemeSprayAndWait) {
		t.Fatal("different scheme, same key")
	}
	if p.jobKey(SchemeOurs) != p.jobKey(SchemeOurs) {
		t.Fatal("key not stable")
	}
	// Observation must not change the key: observed runs are bit-identical
	// to unobserved ones, so their checkpoints are interchangeable.
	o := p
	o.Obs = obs.New(0, nil)
	if p.jobKey(SchemeOurs) != o.jobKey(SchemeOurs) {
		t.Fatal("observer changed the key")
	}
}

func TestRunAveragedSchemeLabelsKeyVariants(t *testing.T) {
	// Two factories with identical Params but different labels must not
	// share checkpoint records (the bug the label parameter exists to
	// prevent).
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	cp, err := runner.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	p := tinyParams(t)
	opts := Options{Runs: 1, BaseSeed: 1, Checkpoint: cp}
	var built atomic.Int32
	factory := func() sim.Scheme {
		built.Add(1)
		s, err := NewScheme(SchemeSprayAndWait)
		if err != nil {
			t.Error(err)
		}
		return s
	}
	if _, err := RunAveragedScheme(p, "variant-a", factory, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAveragedScheme(p, "variant-b", factory, opts); err != nil {
		t.Fatal(err)
	}
	if built.Load() != 2 {
		t.Fatalf("factory built %d schemes; variant-b resumed from variant-a's records", built.Load())
	}
}
