package experiments

import (
	"fmt"

	"photodtn/internal/runner"
)

// ExtendedComparison is a repository addition beyond the paper's figures:
// every constrained scheme — the paper's four plus the classic Epidemic and
// PROPHET-forwarding baselines from the DTN-routing literature the paper
// cites — on the MIT scenario. It separates the two ingredients of our
// scheme's win: mobility awareness (PROPHET beats Spray&Wait) and coverage
// awareness (ours beats everything content-blind).
func ExtendedComparison(opts Options) (*Figure, error) {
	opts = opts.normalized()
	p := DefaultParams(MIT)
	p.SampleHours = 25
	p.Obs = opts.Obs
	if opts.Quick {
		p.SpanHours = 60
		p.SampleHours = 20
	}
	schemes := []string{
		SchemeOurs, SchemeNoMetadata, SchemeModifiedSpray,
		SchemeSprayAndWait, SchemeEpidemic, SchemeProphet,
	}
	fig := &Figure{
		ID:     "extended",
		Title:  "Extended comparison: all constrained schemes (MIT-like trace, 0.6 GB, 250 photos/h)",
		XLabel: "time (hours)",
		Notes: []string{
			fmt.Sprintf("averaged over %d runs", opts.Runs),
			"repository addition: Epidemic and PROPHET are not in the paper's Fig. 5",
		},
	}
	jobs := make([]runner.Job, len(schemes))
	for i, scheme := range schemes {
		jobs[i] = schemeJob(p, scheme, opts.Runs, opts.BaseSeed)
	}
	avgs, err := runJobs("extended", jobs, opts)
	if err != nil {
		return nil, err
	}
	for i, scheme := range schemes {
		fig.Series = append(fig.Series, timeSeries(scheme, avgs[i]))
	}
	return fig, nil
}
