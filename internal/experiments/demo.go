package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"photodtn/internal/coverage"
	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/sim"
	"photodtn/internal/trace"
)

// The §IV prototype demo: 8 crowdsourcing participants plus the command
// center replay the last 48 contacts of a small DTN trace; each participant
// starts with 5 photos taken around a single PoI (a church); a contact
// carries at most 3 photos and a device stores at most 5. The paper's
// numbers: Spray&Wait and PhotoNet each deliver 12 photos covering 171°/
// 160° of the target; our scheme delivers only the 6 useful photos covering
// 346°.

// DemoConfig parameterises the prototype demo reproduction.
type DemoConfig struct {
	// Seed drives the synthetic trace, photo poses, and run randomness.
	Seed int64
	// Participants is the number of crowdsourcing participants (8).
	Participants int
	// PhotosPerNode is the initial photo assignment (5).
	PhotosPerNode int
	// Contacts is the replayed contact count (48).
	Contacts int
	// CCContacts is how many of them reach the command center (4).
	CCContacts int
	// PhotosPerContact caps transfers per contact (3).
	PhotosPerContact int
	// StoragePhotos caps stored photos per device (5).
	StoragePhotos int
	// Theta is the effective angle used for aspect display (40°).
	Theta float64
}

// DefaultDemoConfig returns the paper's demo setup.
func DefaultDemoConfig() DemoConfig {
	return DemoConfig{
		Seed:             23,
		Participants:     8,
		PhotosPerNode:    5,
		Contacts:         48,
		CCContacts:       4,
		PhotosPerContact: 3,
		StoragePhotos:    5,
		Theta:            geo.Radians(40),
	}
}

// DemoPhotoPose describes one delivered photo for the Fig. 4-style pose
// plot: where it stood relative to the PoI and whether it covers it.
type DemoPhotoPose struct {
	// Photo is the metadata.
	Photo model.Photo
	// ViewDeg is the PoI→camera direction in degrees (the aspect the photo
	// covers, if it covers the PoI).
	ViewDeg float64
	// Covers reports whether the photo point-covers the PoI.
	Covers bool
}

// DemoRow is one scheme's outcome in the demo.
type DemoRow struct {
	Scheme string
	// Delivered is the number of photos received by the command center.
	Delivered int
	// Useful is how many of them cover the PoI.
	Useful int
	// AspectDeg is the covered aspect of the PoI in degrees.
	AspectDeg float64
	// Poses lists the delivered photos for the pose plot.
	Poses []DemoPhotoPose
}

// DemoResult is the reproduced Fig. 3 (plus the pose data behind Fig. 4).
type DemoResult struct {
	Config DemoConfig
	Rows   []DemoRow
}

// demoPhotoSize is the per-photo byte size used to express the demo's
// photo-count limits as byte limits.
const demoPhotoSize = 1 << 20

// RunDemo reproduces the §IV-B demonstration for the given schemes (all
// three paper schemes if none specified).
func RunDemo(cfg DemoConfig, schemes ...string) (*DemoResult, error) {
	if cfg.Participants <= 0 {
		cfg = DefaultDemoConfig()
	}
	if len(schemes) == 0 {
		schemes = []string{SchemeOurs, SchemePhotoNet, SchemeSprayAndWait}
	}
	church := model.NewPoI(0, geo.Vec{X: 500, Y: 500})
	m := coverage.NewMap([]model.PoI{church}, cfg.Theta)

	tr, demoStart := demoTrace(cfg)
	photos := demoPhotos(cfg, church.Location, demoStart)

	res := &DemoResult{Config: cfg}
	for _, name := range schemes {
		scheme, err := NewScheme(name)
		if err != nil {
			return nil, err
		}
		simCfg := sim.Config{
			Trace:        tr,
			Map:          m,
			Photos:       photos,
			StorageBytes: int64(cfg.StoragePhotos) * demoPhotoSize,
			// One-second contacts at PhotosPerContact MB/s yield exactly the
			// demo's per-contact photo budget.
			Bandwidth: float64(cfg.PhotosPerContact) * demoPhotoSize,
			Seed:      cfg.Seed,
		}
		out, err := sim.Run(simCfg, scheme)
		if err != nil {
			return nil, fmt.Errorf("demo %s: %w", name, err)
		}
		res.Rows = append(res.Rows, demoRow(name, m, church, out))
	}
	return res, nil
}

func demoRow(name string, m *coverage.Map, church model.PoI, out *sim.Result) DemoRow {
	row := DemoRow{Scheme: name, Delivered: out.Final.Delivered}
	st := m.NewState()
	// Recompute from the delivered set so the row carries pose detail.
	for _, p := range deliveredPhotos(out) {
		fp := m.Footprint(p)
		st.Add(fp)
		pose := DemoPhotoPose{
			Photo:   p,
			ViewDeg: geo.Degrees(p.Sector().ViewAngleFrom(church.Location)),
			Covers:  !fp.IsEmpty(),
		}
		if pose.Covers {
			row.Useful++
		}
		row.Poses = append(row.Poses, pose)
	}
	row.AspectDeg = geo.Degrees(st.AspectOf(0))
	return row
}

// deliveredPhotos extracts the delivered photo set from a run result.
// The engine does not expose the world post-run, so the demo captures
// deliveries via a sampling wrapper; see demoCapture.
func deliveredPhotos(out *sim.Result) model.PhotoList { return out.DeliveredPhotos }

// demoTrace builds warm-up contacts (PROPHET/rate learning) followed by the
// "last 48 contacts" window with exactly CCContacts command-center
// contacts. All contacts last one second.
func demoTrace(cfg DemoConfig) (*trace.Trace, float64) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &trace.Trace{Nodes: cfg.Participants}
	now := 0.0
	// Warm-up: 4× the demo window, same contact mix, no photos around yet.
	warmup := cfg.Contacts * 4
	ccEvery := warmup / (cfg.CCContacts * 4)
	for i := 0; i < warmup; i++ {
		now += 200 + rng.Float64()*400
		tr.Contacts = append(tr.Contacts, demoContact(cfg, rng, now, i%ccEvery == ccEvery-1))
	}
	demoStart := now + 300
	now = demoStart
	ccEvery = cfg.Contacts / cfg.CCContacts
	for i := 0; i < cfg.Contacts; i++ {
		now += 200 + rng.Float64()*400
		tr.Contacts = append(tr.Contacts, demoContact(cfg, rng, now, i%ccEvery == ccEvery-1))
	}
	return tr, demoStart
}

// demoContact draws one contact; withCC makes it a command-center contact.
func demoContact(cfg DemoConfig, rng *rand.Rand, at float64, withCC bool) trace.Contact {
	a := model.NodeID(1 + rng.Intn(cfg.Participants))
	b := model.CommandCenter
	if !withCC {
		for b == model.CommandCenter || b == a {
			b = model.NodeID(1 + rng.Intn(cfg.Participants))
		}
	}
	return trace.Contact{Start: at, End: at + 1, A: a, B: b}
}

// demoPhotos fabricates the 40 church photos: each stands 40–90 m from the
// PoI at a random compass angle; most look at the church (±15° aim noise),
// some look elsewhere — mirroring the real photo set where several of the
// 40 photos do not show the target.
func demoPhotos(cfg DemoConfig, church geo.Vec, at float64) []sim.PhotoEvent {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	// Photographers stand on a few streets around the church, so shooting
	// positions cluster into a handful of angular sectors — and barely half
	// the photos actually show the target, as in the real 40-photo set.
	clusters := make([]float64, 4)
	for i := range clusters {
		clusters[i] = rng.Float64() * geo.TwoPi
	}
	var events []sim.PhotoEvent
	for n := 1; n <= cfg.Participants; n++ {
		for k := 0; k < cfg.PhotosPerNode; k++ {
			angle := geo.NormalizeAngle(clusters[rng.Intn(len(clusters))] + rng.NormFloat64()*geo.Radians(6))
			dist := 40 + rng.Float64()*50
			loc := church.Add(geo.FromAngle(angle).Scale(dist))
			orient := angle + geo.TwoPi/2 + (rng.Float64()-0.5)*geo.Radians(30)
			if rng.Float64() < 0.55 {
				orient = rng.Float64() * geo.TwoPi // looking elsewhere
			}
			p := model.Photo{
				ID:          model.MakePhotoID(model.NodeID(n), uint32(k)),
				Owner:       model.NodeID(n),
				TakenAt:     at,
				Location:    loc,
				Range:       120,
				FOV:         geo.Radians(50),
				Orientation: geo.NormalizeAngle(orient),
				Size:        demoPhotoSize,
				Hist:        demoHistogram(rng),
			}
			events = append(events, sim.PhotoEvent{Time: at, Node: p.Owner, Photo: p})
		}
	}
	return events
}

func demoHistogram(rng *rand.Rand) model.Histogram {
	var h model.Histogram
	var sum float64
	for i := range h {
		h[i] = rng.Float64()
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return h
}

// Format renders the demo as the Fig. 3 comparison table plus, per scheme,
// the pose list behind Fig. 4.
func (r *DemoResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== FIG3: prototype demo (%d participants, last %d contacts, ≤%d photos/contact, ≤%d stored) ==\n",
		r.Config.Participants, r.Config.Contacts, r.Config.PhotosPerContact, r.Config.StoragePhotos)
	fmt.Fprintf(&b, "%-14s %10s %8s %12s\n", "scheme", "delivered", "useful", "aspect (°)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %10d %8d %12.0f\n", row.Scheme, row.Delivered, row.Useful, row.AspectDeg)
	}
	b.WriteString("\n== FIG4: poses of photos delivered by each scheme (view angle from PoI) ==\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s:", row.Scheme)
		for _, pose := range row.Poses {
			mark := "·"
			if pose.Covers {
				mark = "✓"
			}
			fmt.Fprintf(&b, " %s%.0f°", mark, pose.ViewDeg)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
