package experiments

import (
	"testing"

	"photodtn/internal/routing"
)

func TestCalibrateBestPossible(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, kind := range []TraceKind{MIT, Cambridge} {
		var pt150, pt300, as150, as300, del float64
		const seeds = 6
		for seed := int64(0); seed < seeds; seed++ {
			p := DefaultParams(kind)
			p.SampleHours = 75
			cfg, _, err := Build(p, SchemeBestPossible, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := routing.ComputeBestPossible(cfg)
			if err != nil {
				t.Fatal(err)
			}
			half := len(res.Samples) / 2
			pt150 += res.Samples[half-1].PointFrac / seeds
			as150 += res.Samples[half-1].AspectRad * 180 / 3.14159 / seeds
			pt300 += res.Final.PointFrac / seeds
			as300 += res.Final.AspectRad * 180 / 3.14159 / seeds
			del += float64(res.Final.Delivered) / seeds
		}
		t.Logf("%v: half-span pt=%.3f as=%.0f | full pt=%.3f as=%.0f | delivered=%.0f",
			kind, pt150, as150, pt300, as300, del)
	}
}
