package experiments

import "testing"

func TestDemoProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	res, err := RunDemo(DefaultDemoConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Format())
}
