package experiments

import (
	"photodtn/internal/faults"
)

// faultSchemes are the schemes compared in the resilience sweeps: ours with
// and without the metadata exchange, plus the strongest DTN baseline.
// BestPossible is omitted — its analytic fast path assumes a fault-free
// network and would not be a like-for-like comparison.
var faultSchemes = []string{SchemeOurs, SchemeNoMetadata, SchemeModifiedSpray}

// faultSweepSeed decorrelates the fault realisation family from the
// workload seeds so raising Options.BaseSeed reshuffles both independently.
const faultSweepSeed = 777

// FigFaultsNodeFailure sweeps the node-failure rate (EXP-FAULTS): each
// failing node crashes once at a uniform time, loses its stored photos, and
// stays down for an exponential downtime (mean 12 h) before rejoining.
// Coverage should degrade gracefully — monotone-ish decline, no collapse —
// up to and past the 30% failure rate the field scenario (§I) implies.
func FigFaultsNodeFailure(opts Options) (*Figure, error) {
	opts = opts.normalized()
	values := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	if opts.Quick {
		values = []float64{0, 0.3}
	}
	return sweepFigure("faults-fail",
		"Coverage vs node-failure rate (MIT-like trace, mean 12 h downtime)",
		"node-failure rate", MIT, values,
		func(p *Params, v float64) {
			p.Faults = &faults.Config{
				Seed:            faultSweepSeed,
				NodeFailRate:    v,
				MeanDowntimeSec: 12 * hour,
			}
		},
		faultSchemes, opts)
}

// FigFaultsFrameLoss sweeps the per-photo frame-loss probability
// (EXP-FAULTS): a lost frame aborts the contact mid-transfer and the
// unfinished photo is discarded (§III-D), so higher loss means fewer,
// shorter useful contacts.
func FigFaultsFrameLoss(opts Options) (*Figure, error) {
	opts = opts.normalized()
	values := []float64{0, 0.05, 0.1, 0.2, 0.3}
	if opts.Quick {
		values = []float64{0, 0.2}
	}
	return sweepFigure("faults-loss",
		"Coverage vs frame-loss probability (MIT-like trace)",
		"frame-loss probability", MIT, values,
		func(p *Params, v float64) {
			p.Faults = &faults.Config{
				Seed:          faultSweepSeed,
				FrameLossProb: v,
			}
		},
		faultSchemes, opts)
}
