package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders one metric of a figure as an ASCII line chart, so the
// curves the paper plots are visible straight from the terminal. Each
// series gets a marker; overlapping points show the later series' marker.
func (f *Figure) Chart(metric Metric, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	get := metric.get
	var maxY, maxX, minX float64
	minX = math.Inf(1)
	any := false
	for _, s := range f.Series {
		for i, x := range s.X {
			v := get(s)[i]
			if v > maxY {
				maxY = v
			}
			if x > maxX {
				maxX = x
			}
			if x < minX {
				minX = x
			}
			any = true
		}
	}
	if !any || maxY == 0 {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	for si, s := range f.Series {
		mark := markers[si%len(markers)]
		prevCol, prevRow := -1, -1
		for i, x := range s.X {
			v := get(s)[i]
			col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round(v/maxY*float64(height-1)))
			if prevCol >= 0 {
				drawLine(grid, prevCol, prevRow, col, row, mark)
			} else {
				grid[row][col] = mark
			}
			prevCol, prevRow = col, row
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s (max %.3g)\n", metric.name, f.XLabel, maxY)
	for r, line := range grid {
		label := "     "
		switch r {
		case 0:
			label = fmt.Sprintf("%5.3g", maxY)
		case height - 1:
			label = "    0"
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "      %-*.4g%*.4g\n", width/2, minX, width-width/2, maxX)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "      %c %s\n", markers[si%len(markers)], s.Label)
	}
	return b.String()
}

// drawLine rasterises a segment with the marker (simple DDA).
func drawLine(grid [][]byte, x0, y0, x1, y1 int, mark byte) {
	steps := abs(x1-x0) + abs(y1-y0)
	if steps == 0 {
		grid[y0][x0] = mark
		return
	}
	for i := 0; i <= steps; i++ {
		f := float64(i) / float64(steps)
		x := x0 + int(math.Round(f*float64(x1-x0)))
		y := y0 + int(math.Round(f*float64(y1-y0)))
		grid[y][x] = mark
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Metric selects which series values a chart plots.
type Metric struct {
	name string
	get  func(Series) []float64
}

// Chartable metrics.
var (
	// MetricPoint plots normalized point coverage.
	MetricPoint = Metric{"point coverage", func(s Series) []float64 { return s.PointFrac }}
	// MetricAspect plots mean covered aspect (degrees per PoI).
	MetricAspect = Metric{"aspect coverage (°/PoI)", func(s Series) []float64 { return s.AspectDeg }}
	// MetricDelivered plots delivered photo counts.
	MetricDelivered = Metric{"photos delivered", func(s Series) []float64 { return s.Delivered }}
)
