// Package workload generates the simulation inputs of §V-A: a PoI list
// placed uniformly in the deployment region, and a Poisson photo-generation
// process whose metadata follows Table I of the paper (uniform orientation,
// 30–60° field-of-view, coverage range r = c·cot(φ/2) with c ∈ [50, 100] m,
// 4 MB photos).
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/sim"
)

// Config parameterises the workload.
type Config struct {
	// Region is the deployment area (6300 m × 6300 m in the paper).
	Region geo.Rect
	// NumPoIs is the size of the command center's PoI list (250).
	NumPoIs int
	// Nodes is the participant population; each photo is taken by a
	// uniformly random participant.
	Nodes int
	// PhotosPerHour is the aggregate generation rate (250/h in Fig. 5).
	PhotosPerHour float64
	// Span is the generation horizon in seconds.
	Span float64
	// PhotoSize is the photo file size in bytes (4 MB).
	PhotoSize int64
	// FOVMin and FOVMax bound the field-of-view in radians ([30°, 60°]).
	FOVMin float64
	FOVMax float64
	// RangeCoefMin and RangeCoefMax bound the coefficient c of the
	// coverage-range law r = c·cot(φ/2) ([50, 100] m).
	RangeCoefMin float64
	RangeCoefMax float64
}

// Default returns the Table I workload for the given population and span.
func Default(nodes int, span float64) Config {
	return Config{
		Region:        geo.Square(6300),
		NumPoIs:       250,
		Nodes:         nodes,
		PhotosPerHour: 250,
		Span:          span,
		PhotoSize:     4 << 20,
		FOVMin:        geo.Radians(30),
		FOVMax:        geo.Radians(60),
		RangeCoefMin:  50,
		RangeCoefMax:  100,
	}
}

// ErrBadWorkload reports an invalid workload configuration.
var ErrBadWorkload = errors.New("workload: bad config")

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Region.Area() <= 0:
		return fmt.Errorf("%w: empty region", ErrBadWorkload)
	case c.NumPoIs <= 0:
		return fmt.Errorf("%w: need PoIs", ErrBadWorkload)
	case c.Nodes <= 0:
		return fmt.Errorf("%w: need nodes", ErrBadWorkload)
	case c.PhotosPerHour < 0:
		return fmt.Errorf("%w: negative photo rate", ErrBadWorkload)
	case c.Span <= 0:
		return fmt.Errorf("%w: non-positive span", ErrBadWorkload)
	case c.PhotoSize <= 0:
		return fmt.Errorf("%w: non-positive photo size", ErrBadWorkload)
	case c.FOVMin <= 0 || c.FOVMax < c.FOVMin:
		return fmt.Errorf("%w: bad FOV bounds", ErrBadWorkload)
	case c.RangeCoefMin <= 0 || c.RangeCoefMax < c.RangeCoefMin:
		return fmt.Errorf("%w: bad range coefficient bounds", ErrBadWorkload)
	}
	return nil
}

// GeneratePoIs places NumPoIs unit-weight PoIs uniformly in the region.
func GeneratePoIs(cfg Config, rng *rand.Rand) []model.PoI {
	out := make([]model.PoI, 0, cfg.NumPoIs)
	for i := 0; i < cfg.NumPoIs; i++ {
		out = append(out, model.NewPoI(i, randPoint(cfg.Region, rng)))
	}
	return out
}

// GeneratePhotos draws the photo workload: a Poisson arrival process at
// PhotosPerHour, each photo owned by a uniform participant with Table I
// metadata. Events are returned sorted by time.
func GeneratePhotos(cfg Config, rng *rand.Rand) []sim.PhotoEvent {
	rate := cfg.PhotosPerHour / 3600
	if rate <= 0 {
		return nil
	}
	var events []sim.PhotoEvent
	seq := make(map[model.NodeID]uint32, cfg.Nodes)
	for t := rng.ExpFloat64() / rate; t < cfg.Span; t += rng.ExpFloat64() / rate {
		owner := model.NodeID(1 + rng.Intn(cfg.Nodes))
		events = append(events, sim.PhotoEvent{
			Time:  t,
			Node:  owner,
			Photo: randPhoto(cfg, rng, owner, seq[owner], t),
		})
		seq[owner]++
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return events
}

// randPhoto draws one photo's metadata per Table I.
func randPhoto(cfg Config, rng *rand.Rand, owner model.NodeID, seq uint32, t float64) model.Photo {
	fov := cfg.FOVMin + rng.Float64()*(cfg.FOVMax-cfg.FOVMin)
	c := cfg.RangeCoefMin + rng.Float64()*(cfg.RangeCoefMax-cfg.RangeCoefMin)
	loc := randPoint(cfg.Region, rng)
	orient := rng.Float64() * geo.TwoPi
	p := model.Photo{
		ID:          model.MakePhotoID(owner, seq),
		Owner:       owner,
		TakenAt:     t,
		Location:    loc,
		Range:       c / math.Tan(fov/2), // r = c·cot(φ/2)
		FOV:         fov,
		Orientation: orient,
		Size:        cfg.PhotoSize,
	}
	p.Hist = SyntheticHistogram(loc, orient, rng)
	return p
}

// SyntheticHistogram fabricates a colour histogram for the PhotoNet
// baseline: photos taken nearby with similar orientations get similar
// histograms (they see similar scenery), plus a little noise. No pixels
// exist anywhere in this system, so this stands in for PhotoNet's
// colour-difference feature; see DESIGN.md.
func SyntheticHistogram(loc geo.Vec, orient float64, rng *rand.Rand) model.Histogram {
	var h model.Histogram
	var sum float64
	for k := range h {
		fk := float64(k)
		v := math.Exp(
			math.Sin(loc.X/500+fk) +
				math.Cos(loc.Y/500+2*fk) +
				0.3*math.Cos(orient+fk))
		v *= 1 + 0.1*rng.Float64()
		h[k] = v
		sum += v
	}
	for k := range h {
		h[k] /= sum
	}
	return h
}

// PickGateways selects about frac of the participants (at least one) as
// gateway nodes able to reach the command center.
func PickGateways(nodes int, frac float64, rng *rand.Rand) []model.NodeID {
	count := int(math.Round(float64(nodes) * frac))
	if count < 1 {
		count = 1
	}
	if count > nodes {
		count = nodes
	}
	perm := rng.Perm(nodes)
	out := make([]model.NodeID, 0, count)
	for _, idx := range perm[:count] {
		out = append(out, model.NodeID(idx+1))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func randPoint(r geo.Rect, rng *rand.Rand) geo.Vec {
	return geo.Vec{
		X: r.Min.X + rng.Float64()*r.Width(),
		Y: r.Min.Y + rng.Float64()*r.Height(),
	}
}
