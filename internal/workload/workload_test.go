package workload

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"photodtn/internal/geo"
	"photodtn/internal/model"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := Default(97, 300*3600)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumPoIs != 250 || cfg.PhotosPerHour != 250 || cfg.PhotoSize != 4<<20 {
		t.Fatalf("Table I defaults wrong: %+v", cfg)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty region", func(c *Config) { c.Region = geo.Rect{} }},
		{"no pois", func(c *Config) { c.NumPoIs = 0 }},
		{"no nodes", func(c *Config) { c.Nodes = 0 }},
		{"negative rate", func(c *Config) { c.PhotosPerHour = -1 }},
		{"no span", func(c *Config) { c.Span = 0 }},
		{"no size", func(c *Config) { c.PhotoSize = 0 }},
		{"bad fov", func(c *Config) { c.FOVMax = c.FOVMin - 1 }},
		{"bad coef", func(c *Config) { c.RangeCoefMin = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default(10, 3600)
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrBadWorkload) {
				t.Fatalf("err = %v, want ErrBadWorkload", err)
			}
		})
	}
}

func TestGeneratePoIs(t *testing.T) {
	cfg := Default(10, 3600)
	rng := rand.New(rand.NewSource(1))
	pois := GeneratePoIs(cfg, rng)
	if len(pois) != cfg.NumPoIs {
		t.Fatalf("pois = %d", len(pois))
	}
	seen := make(map[int]bool)
	for _, p := range pois {
		if !cfg.Region.Contains(p.Location) {
			t.Fatalf("PoI outside region: %v", p.Location)
		}
		if p.Weight != 1 {
			t.Fatalf("weight = %v", p.Weight)
		}
		if seen[p.ID] {
			t.Fatalf("duplicate PoI id %d", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestGeneratePhotosTableI(t *testing.T) {
	cfg := Default(20, 100*3600)
	rng := rand.New(rand.NewSource(2))
	events := GeneratePhotos(cfg, rng)
	if len(events) == 0 {
		t.Fatal("no photos generated")
	}
	// Poisson process at 250/h over 100 h: expect ~25000 photos ±5%.
	want := 25000.0
	if math.Abs(float64(len(events))-want) > 0.05*want {
		t.Fatalf("generated %d photos, want ≈%v", len(events), want)
	}
	prev := -1.0
	seen := make(map[model.PhotoID]bool)
	for _, e := range events {
		if e.Time < prev {
			t.Fatal("events not sorted")
		}
		prev = e.Time
		p := e.Photo
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid photo: %v", err)
		}
		if seen[p.ID] {
			t.Fatalf("duplicate photo id %v", p.ID)
		}
		seen[p.ID] = true
		if p.Owner != e.Node || p.ID.Owner() != e.Node {
			t.Fatal("owner mismatch")
		}
		if e.Node < 1 || int(e.Node) > cfg.Nodes {
			t.Fatalf("owner out of range: %v", e.Node)
		}
		if p.FOV < cfg.FOVMin-1e-9 || p.FOV > cfg.FOVMax+1e-9 {
			t.Fatalf("fov out of range: %v", p.FOV)
		}
		// r = c·cot(φ/2) with c ∈ [50, 100].
		c := p.Range * math.Tan(p.FOV/2)
		if c < cfg.RangeCoefMin-1e-6 || c > cfg.RangeCoefMax+1e-6 {
			t.Fatalf("range coefficient %v out of [50,100]", c)
		}
		if !cfg.Region.Contains(p.Location) {
			t.Fatal("photo outside region")
		}
		if p.Size != cfg.PhotoSize {
			t.Fatalf("size = %d", p.Size)
		}
		if p.TakenAt != e.Time {
			t.Fatal("TakenAt mismatch")
		}
	}
}

func TestGeneratePhotosRangeBounds(t *testing.T) {
	// Per the paper: for φ ∈ [30°,60°] and c ∈ [50,100], r ∈ [~87m, ~373m].
	cfg := Default(10, 50*3600)
	rng := rand.New(rand.NewSource(3))
	events := GeneratePhotos(cfg, rng)
	for _, e := range events {
		if e.Photo.Range < 80 || e.Photo.Range > 380 {
			t.Fatalf("range %v outside plausible band", e.Photo.Range)
		}
	}
}

func TestGeneratePhotosDeterministic(t *testing.T) {
	cfg := Default(10, 10*3600)
	a := GeneratePhotos(cfg, rand.New(rand.NewSource(5)))
	b := GeneratePhotos(cfg, rand.New(rand.NewSource(5)))
	if len(a) != len(b) {
		t.Fatal("nondeterministic workload")
	}
	for i := range a {
		if a[i].Photo.ID != b[i].Photo.ID || a[i].Time != b[i].Time {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGeneratePhotosZeroRate(t *testing.T) {
	cfg := Default(10, 3600)
	cfg.PhotosPerHour = 0
	if events := GeneratePhotos(cfg, rand.New(rand.NewSource(1))); events != nil {
		t.Fatal("zero rate should generate nothing")
	}
}

func TestSyntheticHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := SyntheticHistogram(geo.Vec{X: 100, Y: 100}, 1, rng)
	var sum float64
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative bin")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("histogram sums to %v", sum)
	}
	// Nearby similar photos should be closer than far-apart ones.
	near := SyntheticHistogram(geo.Vec{X: 110, Y: 100}, 1.05, rng)
	far := SyntheticHistogram(geo.Vec{X: 3000, Y: 4000}, 4, rng)
	if h.Distance(near) >= h.Distance(far) {
		t.Fatalf("similarity structure broken: near %v >= far %v", h.Distance(near), h.Distance(far))
	}
}

func TestPickGateways(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := PickGateways(97, 0.02, rng)
	if len(g) != 2 {
		t.Fatalf("gateways = %d, want 2", len(g))
	}
	for i, n := range g {
		if n < 1 || n > 97 {
			t.Fatalf("gateway %v out of range", n)
		}
		if i > 0 && g[i-1] >= n {
			t.Fatal("gateways not sorted/unique")
		}
	}
	// At least one even for tiny fractions or populations.
	if got := PickGateways(5, 0.001, rng); len(got) != 1 {
		t.Fatalf("min gateways = %d", len(got))
	}
	// Never more than the population.
	if got := PickGateways(3, 5, rng); len(got) != 3 {
		t.Fatalf("max gateways = %d", len(got))
	}
}
