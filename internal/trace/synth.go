package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"photodtn/internal/model"
)

// SynthConfig parameterises the synthetic contact-trace generator. The
// generator assigns nodes to communities ("rescuers in the same team contact
// more often", §III-B) and drives each pair with an independent Poisson
// contact process whose rate depends on community co-membership plus a
// lognormal per-pair jitter for heterogeneity. Inter-contact times are
// therefore exponential per pair — the assumption the paper's metadata
// management builds on — while the aggregate trace exhibits the community
// structure of the real datasets.
type SynthConfig struct {
	// Nodes is the number of participants (IDs 1..Nodes).
	Nodes int
	// Span is the trace length in seconds.
	Span float64
	// Communities is the number of communities nodes are assigned to
	// (round-robin).
	Communities int
	// IntraRate is the contact rate (contacts/second) of a pair within the
	// same community.
	IntraRate float64
	// InterRate is the contact rate of a cross-community pair.
	InterRate float64
	// RateJitter is the lognormal σ of the per-pair rate multiplier;
	// 0 disables heterogeneity.
	RateJitter float64
	// ActivityJitter is the lognormal σ of a per-NODE activity multiplier
	// (unit mean) applied to both endpoints of every pair. Large values
	// reproduce the real traces' skew: a few highly social hubs and many
	// devices that are rarely on or rarely scanned, whose photos therefore
	// often never escape — the main reason even epidemic routing cannot
	// reach full coverage on the MIT Reality data.
	ActivityJitter float64
	// MeanContactDur is the mean contact duration in seconds (exponential).
	MeanContactDur float64
	// ScanInterval quantises contact durations, mimicking periodic
	// Bluetooth scans (5 min for MIT Reality, 2 min for Cambridge06).
	ScanInterval float64
	// Seed drives the deterministic RNG.
	Seed int64
}

const hour = 3600.0

// MITLike returns a configuration mimicking the MIT Reality trace slice the
// paper uses: 97 nodes over 300 hours, 5-minute scan interval.
func MITLike(seed int64) SynthConfig {
	return SynthConfig{
		Nodes:          97,
		Span:           300 * hour,
		Communities:    8,
		IntraRate:      0.011 / hour,
		InterRate:      0.00035 / hour,
		RateJitter:     0.8,
		ActivityJitter: 2.1,
		MeanContactDur: 600,
		ScanInterval:   300,
		Seed:           seed,
	}
}

// CambridgeLike returns a configuration mimicking the Cambridge06 trace:
// 54 nodes over 200 hours, 2-minute scan interval, denser contacts.
func CambridgeLike(seed int64) SynthConfig {
	return SynthConfig{
		Nodes:          54,
		Span:           200 * hour,
		Communities:    6,
		IntraRate:      0.022 / hour,
		InterRate:      0.0008 / hour,
		RateJitter:     0.8,
		ActivityJitter: 2.0,
		MeanContactDur: 450,
		ScanInterval:   120,
		Seed:           seed,
	}
}

// ErrBadConfig reports an invalid generator configuration.
var ErrBadConfig = errors.New("trace: bad synth config")

func (c SynthConfig) validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("%w: need at least 2 nodes, got %d", ErrBadConfig, c.Nodes)
	case c.Span <= 0:
		return fmt.Errorf("%w: span must be positive", ErrBadConfig)
	case c.Communities < 1:
		return fmt.Errorf("%w: need at least 1 community", ErrBadConfig)
	case c.IntraRate < 0 || c.InterRate < 0:
		return fmt.Errorf("%w: rates must be non-negative", ErrBadConfig)
	case c.MeanContactDur <= 0:
		return fmt.Errorf("%w: mean contact duration must be positive", ErrBadConfig)
	case c.ScanInterval < 0:
		return fmt.Errorf("%w: scan interval must be non-negative", ErrBadConfig)
	}
	return nil
}

// Generate produces a synthetic trace from the configuration. The output is
// sorted, validated, and has per-pair overlapping contacts merged.
func Generate(cfg SynthConfig) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	activity := make([]float64, cfg.Nodes+1)
	for i := range activity {
		activity[i] = 1
		if cfg.ActivityJitter > 0 {
			s := cfg.ActivityJitter
			activity[i] = math.Exp(s*rng.NormFloat64() - s*s/2)
		}
	}
	t := &Trace{Nodes: cfg.Nodes}
	for a := 1; a <= cfg.Nodes; a++ {
		for b := a + 1; b <= cfg.Nodes; b++ {
			rate := cfg.InterRate
			if (a-1)%cfg.Communities == (b-1)%cfg.Communities {
				rate = cfg.IntraRate
			}
			rate *= activity[a] * activity[b]
			if cfg.RateJitter > 0 {
				// Lognormal multiplier with unit mean.
				s := cfg.RateJitter
				rate *= math.Exp(s*rng.NormFloat64() - s*s/2)
			}
			if rate <= 0 {
				continue
			}
			contacts := genPair(rng, cfg, rate, model.NodeID(a), model.NodeID(b))
			t.Contacts = append(t.Contacts, contacts...)
		}
	}
	t.Sort()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: generated trace invalid: %w", err)
	}
	return t, nil
}

// genPair draws a Poisson contact process for one pair and merges overlaps.
func genPair(rng *rand.Rand, cfg SynthConfig, rate float64, a, b model.NodeID) []Contact {
	var out []Contact
	now := rng.ExpFloat64() / rate
	for now < cfg.Span {
		dur := rng.ExpFloat64() * cfg.MeanContactDur
		if cfg.ScanInterval > 0 {
			// A scan-based logger sees durations as multiples of the scan
			// interval, at least one interval long.
			dur = math.Ceil(dur/cfg.ScanInterval) * cfg.ScanInterval
			if dur < cfg.ScanInterval {
				dur = cfg.ScanInterval
			}
		}
		end := math.Min(now+dur, cfg.Span)
		if n := len(out); n > 0 && out[n-1].End >= now {
			// Overlapping with the previous contact of this pair: extend it.
			if end > out[n-1].End {
				out[n-1].End = end
			}
		} else {
			out = append(out, Contact{Start: now, End: end, A: a, B: b})
		}
		now += rng.ExpFloat64() / rate
	}
	return out
}
