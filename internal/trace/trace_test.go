package trace

import (
	"errors"
	"math"
	"testing"
)

func sampleTrace() *Trace {
	return &Trace{
		Nodes: 3,
		Contacts: []Contact{
			{Start: 0, End: 10, A: 1, B: 2},
			{Start: 5, End: 20, A: 2, B: 3},
			{Start: 30, End: 40, A: 1, B: 3},
			{Start: 50, End: 55, A: 0, B: 1},
		},
	}
}

func TestContactBasics(t *testing.T) {
	c := Contact{Start: 5, End: 20, A: 1, B: 2}
	if c.Duration() != 15 {
		t.Fatalf("Duration = %v", c.Duration())
	}
	if !c.Involves(1) || !c.Involves(2) || c.Involves(3) {
		t.Fatal("Involves wrong")
	}
	if c.Peer(1) != 2 || c.Peer(2) != 1 || c.Peer(7) != 7 {
		t.Fatal("Peer wrong")
	}
}

func TestTraceValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Trace)
		wantErr error
	}{
		{"valid", func(*Trace) {}, nil},
		{"unsorted", func(tr *Trace) { tr.Contacts[0].Start, tr.Contacts[0].End = 100, 200 }, ErrUnsorted},
		{"end before start", func(tr *Trace) { tr.Contacts[1].End = 1 }, ErrBadInterval},
		{"self contact", func(tr *Trace) { tr.Contacts[0].B = 1 }, ErrSelfContact},
		{"node too big", func(tr *Trace) { tr.Contacts[0].B = 9 }, ErrBadNode},
		{"negative node", func(tr *Trace) { tr.Contacts[0].A = -1 }, ErrBadNode},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr := sampleTrace()
			tt.mutate(tr)
			err := tr.Validate()
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestTraceSortDuration(t *testing.T) {
	tr := sampleTrace()
	tr.Contacts[0], tr.Contacts[2] = tr.Contacts[2], tr.Contacts[0]
	tr.Sort()
	if err := tr.Validate(); err != nil {
		t.Fatalf("sorted trace invalid: %v", err)
	}
	if tr.Duration() != 55 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestTraceClone(t *testing.T) {
	tr := sampleTrace()
	c := tr.Clone()
	c.Contacts[0].Start = 99
	if tr.Contacts[0].Start == 99 {
		t.Fatal("clone aliases original")
	}
}

func TestTraceWindow(t *testing.T) {
	tr := sampleTrace()
	w := tr.Window(5, 45)
	if w.Len() != 2 {
		t.Fatalf("window len = %d, want 2", w.Len())
	}
	if w.Contacts[0].Start != 0 || w.Contacts[0].End != 15 {
		t.Fatalf("rebased contact = %+v", w.Contacts[0])
	}
	if w.Contacts[1].Start != 25 {
		t.Fatalf("second contact start = %v", w.Contacts[1].Start)
	}
}

func TestTraceWindowClampsEnd(t *testing.T) {
	tr := sampleTrace()
	w := tr.Window(0, 7)
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
	if w.Contacts[0].End != 7 || w.Contacts[1].End != 7 {
		t.Fatalf("ends not clamped: %+v", w.Contacts)
	}
}

func TestTraceLast(t *testing.T) {
	tr := sampleTrace()
	last := tr.Last(2)
	if last.Len() != 2 || last.Contacts[0].Start != 30 {
		t.Fatalf("Last(2) = %+v", last.Contacts)
	}
	if got := tr.Last(100); got.Len() != 4 {
		t.Fatalf("Last over length = %d", got.Len())
	}
}

func TestTraceFilter(t *testing.T) {
	tr := sampleTrace()
	cc := tr.Filter(func(c Contact) bool { return c.Involves(0) })
	if cc.Len() != 1 || cc.Contacts[0].A != 0 {
		t.Fatalf("Filter = %+v", cc.Contacts)
	}
}

func TestTraceCapDurations(t *testing.T) {
	tr := sampleTrace()
	capped := tr.CapDurations(5)
	for _, c := range capped.Contacts {
		if c.Duration() > 5 {
			t.Fatalf("duration %v exceeds cap", c.Duration())
		}
	}
	// Original untouched.
	if tr.Contacts[1].Duration() != 15 {
		t.Fatal("CapDurations mutated the original")
	}
	// Short contacts unchanged.
	if capped.Contacts[3].Duration() != 5 {
		t.Fatalf("short contact changed: %v", capped.Contacts[3])
	}
}

func TestAnalyze(t *testing.T) {
	tr := sampleTrace()
	s := Analyze(tr)
	if s.Span != 55 {
		t.Fatalf("Span = %v", s.Span)
	}
	if s.ContactCount[1] != 3 || s.ContactCount[2] != 2 || s.ContactCount[0] != 1 {
		t.Fatalf("ContactCount = %v", s.ContactCount)
	}
	if s.PairCount[pairKey(2, 1)] != 1 {
		t.Fatalf("PairCount = %v", s.PairCount)
	}
	if got := s.PairRate(1, 2); math.Abs(got-1.0/55) > 1e-12 {
		t.Fatalf("PairRate = %v", got)
	}
	if got := s.PairRate(2, 1); got != s.PairRate(1, 2) {
		t.Fatal("PairRate not symmetric")
	}
	if got := s.NodeRate(1); math.Abs(got-3.0/55) > 1e-12 {
		t.Fatalf("NodeRate = %v", got)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(&Trace{Nodes: 5})
	if s.NodeRate(1) != 0 || s.PairRate(1, 2) != 0 {
		t.Fatal("rates on empty trace should be 0")
	}
}

func TestInterContactTimes(t *testing.T) {
	tr := &Trace{Nodes: 2, Contacts: []Contact{
		{Start: 0, End: 1, A: 1, B: 2},
		{Start: 10, End: 11, A: 2, B: 1},
		{Start: 25, End: 26, A: 1, B: 2},
	}}
	got := InterContactTimes(tr, 1, 2)
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("InterContactTimes = %v", got)
	}
	if InterContactTimes(tr, 1, 0) != nil {
		t.Fatal("expected nil for pair with <2 contacts")
	}
}

func TestMeanContactDuration(t *testing.T) {
	tr := sampleTrace()
	want := (10.0 + 15 + 10 + 5) / 4
	if got := MeanContactDuration(tr); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanContactDuration = %v, want %v", got, want)
	}
	if MeanContactDuration(&Trace{}) != 0 {
		t.Fatal("empty trace mean should be 0")
	}
}
