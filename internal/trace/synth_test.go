package trace

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"photodtn/internal/model"
)

func smallConfig(seed int64) SynthConfig {
	return SynthConfig{
		Nodes:          20,
		Span:           100 * hour,
		Communities:    4,
		IntraRate:      0.1 / hour,
		InterRate:      0.005 / hour,
		RateJitter:     0.5,
		MeanContactDur: 300,
		ScanInterval:   60,
		Seed:           seed,
	}
}

func TestGenerateValidTrace(t *testing.T) {
	tr, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("generated zero contacts")
	}
	if tr.Nodes != 20 {
		t.Fatalf("Nodes = %d", tr.Nodes)
	}
	for _, c := range tr.Contacts {
		if c.A == 0 || c.B == 0 {
			t.Fatal("generator must not involve the command center")
		}
		if c.End > 100*hour+1e-9 {
			t.Fatalf("contact exceeds span: %+v", c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatalf("contact %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(smallConfig(1))
	b, _ := Generate(smallConfig(2))
	if a.Len() == b.Len() {
		same := true
		for i := range a.Contacts {
			if a.Contacts[i] != b.Contacts[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateCommunityStructure(t *testing.T) {
	cfg := smallConfig(7)
	cfg.RateJitter = 0 // isolate the community effect
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(tr)
	var intra, inter, intraPairs, interPairs float64
	for a := 1; a <= cfg.Nodes; a++ {
		for b := a + 1; b <= cfg.Nodes; b++ {
			n := float64(s.PairCount[pairKey(model.NodeID(a), model.NodeID(b))])
			if (a-1)%cfg.Communities == (b-1)%cfg.Communities {
				intra += n
				intraPairs++
			} else {
				inter += n
				interPairs++
			}
		}
	}
	intraMean := intra / intraPairs
	interMean := inter / interPairs
	if intraMean < 5*interMean {
		t.Fatalf("community structure too weak: intra %.2f vs inter %.2f contacts/pair", intraMean, interMean)
	}
}

func TestGenerateRateCalibration(t *testing.T) {
	cfg := smallConfig(3)
	cfg.RateJitter = 0
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(tr)
	// Expected contacts: intra pairs × rate × span + inter pairs × rate × span.
	intraPairs, interPairs := 0.0, 0.0
	for a := 1; a <= cfg.Nodes; a++ {
		for b := a + 1; b <= cfg.Nodes; b++ {
			if (a-1)%cfg.Communities == (b-1)%cfg.Communities {
				intraPairs++
			} else {
				interPairs++
			}
		}
	}
	want := (intraPairs*cfg.IntraRate + interPairs*cfg.InterRate) * cfg.Span
	got := 0.0
	for _, n := range s.PairCount {
		got += float64(n)
	}
	// Overlap merging removes a few; allow 25% tolerance.
	if math.Abs(got-want) > 0.25*want {
		t.Fatalf("contact count %v too far from expectation %v", got, want)
	}
}

func TestGenerateScanQuantization(t *testing.T) {
	cfg := smallConfig(9)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quantized := 0
	candidates := 0
	for _, c := range tr.Contacts {
		if c.End >= cfg.Span {
			continue // clipped at span end
		}
		d := c.Duration()
		if d < cfg.ScanInterval-1e-9 {
			t.Fatalf("duration %v below scan interval", d)
		}
		candidates++
		if r := math.Mod(d, cfg.ScanInterval); r < 1e-6 || cfg.ScanInterval-r < 1e-6 {
			quantized++
		}
	}
	// Merged overlapping contacts may break the multiple-of-interval shape,
	// but the overwhelming majority of contacts must be quantized.
	if candidates == 0 || float64(quantized) < 0.8*float64(candidates) {
		t.Fatalf("only %d/%d contacts quantized to the scan interval", quantized, candidates)
	}
}

func TestGeneratePairContactsDisjoint(t *testing.T) {
	tr, err := Generate(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[[2]model.NodeID]float64)
	for _, c := range tr.Contacts {
		k := pairKey(c.A, c.B)
		if end, ok := last[k]; ok && c.Start < end {
			t.Fatalf("overlapping contacts for pair %v", k)
		}
		if c.End > last[k] {
			last[k] = c.End
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*SynthConfig)
	}{
		{"too few nodes", func(c *SynthConfig) { c.Nodes = 1 }},
		{"zero span", func(c *SynthConfig) { c.Span = 0 }},
		{"zero communities", func(c *SynthConfig) { c.Communities = 0 }},
		{"negative rate", func(c *SynthConfig) { c.IntraRate = -1 }},
		{"zero duration", func(c *SynthConfig) { c.MeanContactDur = 0 }},
		{"negative scan", func(c *SynthConfig) { c.ScanInterval = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig(1)
			tt.mutate(&cfg)
			if _, err := Generate(cfg); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestMITLikePreset(t *testing.T) {
	cfg := MITLike(1)
	if cfg.Nodes != 97 || cfg.Span != 300*hour || cfg.ScanInterval != 300 {
		t.Fatalf("MITLike preset wrong: %+v", cfg)
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: sparse (like the real 300-hour MIT Reality slice) but alive.
	if tr.Len() < 400 || tr.Len() > 5000 {
		t.Fatalf("MIT-like trace contact count out of band: %d", tr.Len())
	}
	s := Analyze(tr)
	perNodePerHour := 0.0
	for n := 1; n <= cfg.Nodes; n++ {
		perNodePerHour += s.NodeRate(model.NodeID(n)) * hour
	}
	perNodePerHour /= float64(cfg.Nodes)
	if perNodePerHour < 0.02 || perNodePerHour > 5 {
		t.Fatalf("per-node contact rate %.2f/h outside plausible band", perNodePerHour)
	}
}

func TestCambridgeLikePreset(t *testing.T) {
	cfg := CambridgeLike(1)
	if cfg.Nodes != 54 || cfg.Span != 200*hour || cfg.ScanInterval != 120 {
		t.Fatalf("CambridgeLike preset wrong: %+v", cfg)
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 300 || tr.Len() > 4000 {
		t.Fatalf("Cambridge-like trace contact count out of band: %d", tr.Len())
	}
}

func TestGenerateExponentialInterContacts(t *testing.T) {
	// With jitter disabled, per-pair inter-contact times should look
	// exponential: coefficient of variation near 1.
	cfg := SynthConfig{
		Nodes: 2, Span: 20000 * hour, Communities: 1,
		IntraRate: 0.5 / hour, InterRate: 0,
		MeanContactDur: 60, ScanInterval: 0, Seed: 5,
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gaps := InterContactTimes(tr, 1, 2)
	if len(gaps) < 1000 {
		t.Fatalf("too few gaps: %d", len(gaps))
	}
	var sum, sumsq float64
	for _, g := range gaps {
		sum += g
		sumsq += g * g
	}
	n := float64(len(gaps))
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	cv := std / mean
	if cv < 0.85 || cv > 1.15 {
		t.Fatalf("inter-contact CV = %.3f, want ≈1 (exponential)", cv)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr, err := Generate(smallConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nodes != tr.Nodes || got.Len() != tr.Len() {
		t.Fatalf("round trip shape mismatch: %d/%d vs %d/%d", got.Nodes, got.Len(), tr.Nodes, tr.Len())
	}
	for i := range tr.Contacts {
		if got.Contacts[i] != tr.Contacts[i] {
			t.Fatalf("contact %d mismatch: %+v vs %+v", i, got.Contacts[i], tr.Contacts[i])
		}
	}
}

func TestReadComments(t *testing.T) {
	in := "# hello\n\nnodes 3\n0 1 1 2\n# mid comment\n5 6.5 2 3\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 3 || tr.Len() != 2 || tr.Contacts[1].End != 6.5 {
		t.Fatalf("parsed = %+v", tr)
	}
}

func TestReadInfersNodes(t *testing.T) {
	tr, err := Read(strings.NewReader("0 1 1 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 7 {
		t.Fatalf("inferred nodes = %d, want 7", tr.Nodes)
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"bad field count", "0 1 2\n"},
		{"bad start", "x 1 1 2\n"},
		{"bad end", "0 x 1 2\n"},
		{"bad node a", "0 1 x 2\n"},
		{"bad node b", "0 1 1 x\n"},
		{"bad nodes directive", "nodes\n"},
		{"bad nodes count", "nodes x\n"},
		{"unsorted", "nodes 3\n10 11 1 2\n0 1 2 3\n"},
		{"self contact", "nodes 3\n0 1 2 2\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.in)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}
