package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead feeds the text codec arbitrary input: it must never panic, and
// everything it accepts must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("nodes 3\n0 1 1 2\n5 6.5 2 3\n")
	f.Add("# comment\n\n0 1 1 7\n")
	f.Add("nodes x\n")
	f.Add("0 1 2\n")
	f.Add(strings.Repeat("0 1 1 2\n", 100))

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed contact count: %d vs %d", back.Len(), tr.Len())
		}
	})
}
