package trace

import (
	"sort"

	"photodtn/internal/model"
)

// Stats summarises a trace: per-node and per-pair contact counts and
// maximum-likelihood exponential inter-contact rates. These are exactly the
// quantities the paper's metadata-management scheme (§III-B) learns online;
// the offline versions here exist for analysis and tests.
type Stats struct {
	// Span is the observation window in seconds (the trace duration).
	Span float64
	// ContactCount maps each node to its number of contacts.
	ContactCount map[model.NodeID]int
	// PairCount maps each unordered pair to its number of contacts.
	PairCount map[[2]model.NodeID]int
}

// pairKey returns the canonical (sorted) key for an unordered node pair.
func pairKey(a, b model.NodeID) [2]model.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]model.NodeID{a, b}
}

// Analyze computes summary statistics for the trace.
func Analyze(t *Trace) *Stats {
	s := &Stats{
		Span:         t.Duration(),
		ContactCount: make(map[model.NodeID]int),
		PairCount:    make(map[[2]model.NodeID]int),
	}
	for _, c := range t.Contacts {
		s.ContactCount[c.A]++
		s.ContactCount[c.B]++
		s.PairCount[pairKey(c.A, c.B)]++
	}
	return s
}

// PairRate returns the MLE contact rate λ_ab (contacts per second) of the
// pair under the exponential inter-contact assumption: count over span.
func (s *Stats) PairRate(a, b model.NodeID) float64 {
	if s.Span <= 0 {
		return 0
	}
	return float64(s.PairCount[pairKey(a, b)]) / s.Span
}

// NodeRate returns the aggregate rate λ_a = Σ_b λ_ab at which node a meets
// anyone (contacts per second).
func (s *Stats) NodeRate(a model.NodeID) float64 {
	if s.Span <= 0 {
		return 0
	}
	return float64(s.ContactCount[a]) / s.Span
}

// InterContactTimes returns the gaps between successive contact starts of
// the pair, in seconds, in chronological order.
func InterContactTimes(t *Trace, a, b model.NodeID) []float64 {
	var starts []float64
	for _, c := range t.Contacts {
		if (c.A == a && c.B == b) || (c.A == b && c.B == a) {
			starts = append(starts, c.Start)
		}
	}
	sort.Float64s(starts)
	if len(starts) < 2 {
		return nil
	}
	out := make([]float64, 0, len(starts)-1)
	for i := 1; i < len(starts); i++ {
		out = append(out, starts[i]-starts[i-1])
	}
	return out
}

// MeanContactDuration returns the average contact duration in seconds, or 0
// for an empty trace.
func MeanContactDuration(t *Trace) float64 {
	if len(t.Contacts) == 0 {
		return 0
	}
	var sum float64
	for _, c := range t.Contacts {
		sum += c.Duration()
	}
	return sum / float64(len(t.Contacts))
}
