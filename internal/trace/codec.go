package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"photodtn/internal/model"
)

// The text format is line-oriented:
//
//	# comment
//	nodes 97
//	<start> <end> <a> <b>
//
// Times are seconds as decimal floats; node IDs are integers (0 = command
// center). Contacts must appear sorted by start time.

// Write serialises the trace in the text format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# photodtn contact trace: %d contacts\nnodes %d\n", len(t.Contacts), t.Nodes); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, c := range t.Contacts {
		if _, err := fmt.Fprintf(bw, "%s %s %d %d\n",
			strconv.FormatFloat(c.Start, 'f', -1, 64),
			strconv.FormatFloat(c.End, 'f', -1, 64),
			int32(c.A), int32(c.B)); err != nil {
			return fmt.Errorf("trace: write contact: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Read parses a trace in the text format and validates it.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	lineNo := 0
	sawNodes := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "nodes" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: malformed nodes directive", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("trace: line %d: bad node count %q", lineNo, fields[1])
			}
			t.Nodes = n
			sawNodes = true
			continue
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		start, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad start: %w", lineNo, err)
		}
		end, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad end: %w", lineNo, err)
		}
		a, err := strconv.ParseInt(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad node a: %w", lineNo, err)
		}
		b, err := strconv.ParseInt(fields[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad node b: %w", lineNo, err)
		}
		t.Contacts = append(t.Contacts, Contact{
			Start: start, End: end,
			A: model.NodeID(a), B: model.NodeID(b),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	if !sawNodes {
		// Infer the population from the highest node ID seen.
		for _, c := range t.Contacts {
			if int(c.A) > t.Nodes {
				t.Nodes = int(c.A)
			}
			if int(c.B) > t.Nodes {
				t.Nodes = int(c.B)
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
