// Package trace models DTN contact traces: timed contacts between pairs of
// nodes, as recorded by Bluetooth scans in the MIT Reality and Cambridge06
// datasets the paper evaluates on.
//
// The real datasets are licence-gated, so this package also provides
// synthetic generators (see synth.go) that reproduce the statistics the
// paper's algorithms consume: community-structured, approximately
// exponential pairwise inter-contact processes over the published node
// counts and durations. Everything downstream sees only the Contact
// sequence, so the substitution is behaviour-preserving.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"photodtn/internal/model"
)

// Contact is one recorded contact: nodes A and B could exchange data from
// Start to End (seconds since the trace began).
type Contact struct {
	Start float64      `json:"start"`
	End   float64      `json:"end"`
	A     model.NodeID `json:"a"`
	B     model.NodeID `json:"b"`
}

// Duration returns the contact duration in seconds.
func (c Contact) Duration() float64 { return c.End - c.Start }

// Involves reports whether the contact involves node n.
func (c Contact) Involves(n model.NodeID) bool { return c.A == n || c.B == n }

// Peer returns the other endpoint of the contact, or n itself if n does not
// participate.
func (c Contact) Peer(n model.NodeID) model.NodeID {
	switch n {
	case c.A:
		return c.B
	case c.B:
		return c.A
	default:
		return n
	}
}

// Trace is an ordered sequence of contacts among a fixed node population.
// Participant IDs run 1..Nodes; ID 0 is the command center and may also
// appear in contacts (e.g. in the §IV prototype demo trace).
type Trace struct {
	// Nodes is the number of participant nodes.
	Nodes int `json:"nodes"`
	// Contacts is sorted by start time.
	Contacts []Contact `json:"contacts"`
}

// Validation errors.
var (
	ErrUnsorted    = errors.New("trace: contacts not sorted by start time")
	ErrBadInterval = errors.New("trace: contact end precedes start")
	ErrSelfContact = errors.New("trace: node in contact with itself")
	ErrBadNode     = errors.New("trace: node id out of range")
)

// Validate checks ordering, interval sanity, and node-ID ranges.
func (t *Trace) Validate() error {
	prev := math.Inf(-1)
	for i, c := range t.Contacts {
		if c.Start < prev {
			return fmt.Errorf("%w: contact %d starts at %v after %v", ErrUnsorted, i, c.Start, prev)
		}
		prev = c.Start
		if c.End < c.Start {
			return fmt.Errorf("%w: contact %d [%v, %v]", ErrBadInterval, i, c.Start, c.End)
		}
		if c.A == c.B {
			return fmt.Errorf("%w: contact %d node %v", ErrSelfContact, i, c.A)
		}
		for _, n := range []model.NodeID{c.A, c.B} {
			if n < 0 || int(n) > t.Nodes {
				return fmt.Errorf("%w: contact %d node %v (population %d)", ErrBadNode, i, n, t.Nodes)
			}
		}
	}
	return nil
}

// Sort orders contacts by start time (stable).
func (t *Trace) Sort() {
	sort.SliceStable(t.Contacts, func(i, j int) bool {
		return t.Contacts[i].Start < t.Contacts[j].Start
	})
}

// Duration returns the time of the last contact end, in seconds.
func (t *Trace) Duration() float64 {
	var d float64
	for _, c := range t.Contacts {
		if c.End > d {
			d = c.End
		}
	}
	return d
}

// Len returns the number of contacts.
func (t *Trace) Len() int { return len(t.Contacts) }

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{Nodes: t.Nodes, Contacts: make([]Contact, len(t.Contacts))}
	copy(c.Contacts, t.Contacts)
	return c
}

// Window returns a new trace restricted to contacts starting in
// [start, end), with times rebased so the window starts at zero.
func (t *Trace) Window(start, end float64) *Trace {
	out := &Trace{Nodes: t.Nodes}
	for _, c := range t.Contacts {
		if c.Start >= start && c.Start < end {
			out.Contacts = append(out.Contacts, Contact{
				Start: c.Start - start,
				End:   math.Min(c.End, end) - start,
				A:     c.A, B: c.B,
			})
		}
	}
	return out
}

// Last returns a new trace holding only the final n contacts, times
// preserved. It mirrors the paper's §IV demo, which replays the last 48
// contacts of the MIT trace.
func (t *Trace) Last(n int) *Trace {
	if n > len(t.Contacts) {
		n = len(t.Contacts)
	}
	out := &Trace{Nodes: t.Nodes, Contacts: make([]Contact, n)}
	copy(out.Contacts, t.Contacts[len(t.Contacts)-n:])
	return out
}

// Filter returns a new trace with only the contacts accepted by keep.
func (t *Trace) Filter(keep func(Contact) bool) *Trace {
	out := &Trace{Nodes: t.Nodes}
	for _, c := range t.Contacts {
		if keep(c) {
			out.Contacts = append(out.Contacts, c)
		}
	}
	return out
}

// CapDurations returns a new trace with every contact duration capped at
// maxDur seconds. It implements the §V-C short-contact-duration experiment.
func (t *Trace) CapDurations(maxDur float64) *Trace {
	out := t.Clone()
	for i := range out.Contacts {
		if out.Contacts[i].Duration() > maxDur {
			out.Contacts[i].End = out.Contacts[i].Start + maxDur
		}
	}
	return out
}
