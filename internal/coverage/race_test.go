package coverage

import (
	"sync"
	"testing"

	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/obs"
)

// TestFootprintCacheConcurrentInvalidation exercises the cache's concurrency
// contract under the race detector: many goroutines interleaving hits,
// misses, and invalidations on a shared cache. Every lookup must return the
// same footprint a cold compile would, and the hit/miss counters must
// account for every lookup exactly once.
func TestFootprintCacheConcurrentInvalidation(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	const photos = 16
	pool := make([]model.Photo, photos)
	want := make([]Footprint, photos)
	for i := range pool {
		pool[i] = photoAt(uint32(i), geo.Vec{X: 5, Y: 0}, geo.Radians(180), 20)
		want[i] = m.Footprint(pool[i])
	}

	c := NewFootprintCache(m)
	reg := obs.NewRegistry()
	hits, misses := reg.Counter("hits"), reg.Counter("misses")
	c.SetMetrics(hits, misses)

	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				p := pool[(w+r)%photos]
				fp := c.Of(p)
				if len(fp.Entries) != len(want[(w+r)%photos].Entries) {
					t.Errorf("worker %d round %d: footprint size %d, want %d",
						w, r, len(fp.Entries), len(want[(w+r)%photos].Entries))
					return
				}
				// Sporadically invalidate someone else's entry to force
				// recompiles racing against reads of the same ID.
				if r%17 == 0 {
					c.Invalidate(pool[(w*7+r)%photos].ID)
				}
			}
		}(w)
	}
	wg.Wait()

	total := hits.Value() + misses.Value()
	if want := int64(workers * rounds); total != want {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d lookups",
			hits.Value(), misses.Value(), total, want)
	}
	// At least the initial compile of each photo must have missed; with
	// invalidations there are usually more.
	if misses.Value() < photos {
		t.Fatalf("misses = %d, want >= %d", misses.Value(), photos)
	}
	if c.Len() > photos {
		t.Fatalf("cache holds %d footprints for %d photos", c.Len(), photos)
	}
}

// TestFootprintCacheInvalidateRecompiles: after Invalidate, the next Of is a
// miss and returns an equivalent footprint.
func TestFootprintCacheInvalidateRecompiles(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	p := photoAt(1, geo.Vec{X: 5, Y: 0}, geo.Radians(180), 20)
	c := NewFootprintCache(m)
	reg := obs.NewRegistry()
	c.SetMetrics(reg.Counter("h"), reg.Counter("m"))

	first := c.Of(p)
	c.Of(p)
	if got := reg.Counter("h").Value(); got != 1 {
		t.Fatalf("hits after warm lookup = %d, want 1", got)
	}
	c.Invalidate(p.ID)
	again := c.Of(p)
	if got := reg.Counter("m").Value(); got != 2 {
		t.Fatalf("misses after invalidate = %d, want 2", got)
	}
	if len(again.Entries) != len(first.Entries) {
		t.Fatalf("recompiled footprint differs: %d vs %d entries",
			len(again.Entries), len(first.Entries))
	}
}

// TestReleaseStateDoubleReleasePanics pins the pool-misuse guard: releasing
// the same state twice must panic loudly instead of handing the state out to
// two callers at once.
func TestReleaseStateDoubleReleasePanics(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	s := m.AcquireState()
	m.ReleaseState(s)
	defer func() {
		if recover() == nil {
			t.Fatal("double ReleaseState did not panic")
		}
	}()
	m.ReleaseState(s)
}

// TestReleaseStateForeignAndNil: states from another map and nil are ignored,
// and a released state can be re-acquired and used again.
func TestReleaseStateForeignAndNil(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	other := singlePoIMap(geo.Radians(30))
	m.ReleaseState(nil)              // must not panic
	m.ReleaseState(other.NewState()) // foreign state: ignored

	s := m.AcquireState()
	s.AddPhoto(photoAt(1, geo.Vec{X: 5, Y: 0}, geo.Radians(180), 20))
	m.ReleaseState(s)
	s2 := m.AcquireState()
	if s2.Coverage() != (Coverage{}) {
		t.Fatalf("re-acquired state not reset: %+v", s2.Coverage())
	}
	if s2.NumCovered() != 0 {
		t.Fatalf("re-acquired state covers %d PoIs", s2.NumCovered())
	}
	m.ReleaseState(s2)
}
