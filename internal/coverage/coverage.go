// Package coverage implements the photo coverage model of §II of the paper:
// point coverage, aspect coverage, and their lexicographic combination.
//
// The package is built around three ideas:
//
//   - A Map fixes the PoI list X and the effective angle θ, and compiles a
//     photo's metadata into a Footprint — the exact set of (PoI, aspect arc)
//     contributions the photo can ever make. Footprints are cheap to compute
//     (a spatial grid prunes candidate PoIs) and make every subsequent
//     coverage query independent of geometry.
//   - A State is the coverage of a photo collection: per-PoI aspect arc
//     unions plus the aggregate lexicographic Coverage value. States support
//     O(footprint) incremental addition and non-mutating marginal-gain
//     queries, which is what the greedy selection algorithm of §III-D needs.
//   - Coverage is the lexicographic pair (Σ point coverage, Σ aspect
//     coverage) of Definition 1, with the weighted extension of §II-C.
package coverage

import (
	"fmt"
	"math"
	"sync"

	"photodtn/internal/geo"
	"photodtn/internal/model"
)

// Coverage is the photo coverage value C_ph = (C_pt, C_as) of Definition 1.
// Point is the (weighted) number of covered PoIs; Aspect is the (weighted)
// total covered aspect measure in radians. Values compare lexicographically:
// point coverage dominates.
type Coverage struct {
	Point  float64
	Aspect float64
}

// cmpEps absorbs floating-point noise when comparing coverage values.
const cmpEps = 1e-9

// Add returns the component-wise sum c + o.
func (c Coverage) Add(o Coverage) Coverage {
	return Coverage{Point: c.Point + o.Point, Aspect: c.Aspect + o.Aspect}
}

// Sub returns the component-wise difference c - o.
func (c Coverage) Sub(o Coverage) Coverage {
	return Coverage{Point: c.Point - o.Point, Aspect: c.Aspect - o.Aspect}
}

// Scale returns c scaled by k in both components. Scaling by a probability
// is how expected coverage weights an outcome (Definition 2).
func (c Coverage) Scale(k float64) Coverage {
	return Coverage{Point: c.Point * k, Aspect: c.Aspect * k}
}

// Cmp compares lexicographically: -1 if c < o, 0 if equal (within epsilon),
// +1 if c > o.
func (c Coverage) Cmp(o Coverage) int {
	switch {
	case c.Point < o.Point-cmpEps:
		return -1
	case c.Point > o.Point+cmpEps:
		return 1
	case c.Aspect < o.Aspect-cmpEps:
		return -1
	case c.Aspect > o.Aspect+cmpEps:
		return 1
	default:
		return 0
	}
}

// Less reports whether c < o in lexicographic order.
func (c Coverage) Less(o Coverage) bool { return c.Cmp(o) < 0 }

// IsZero reports whether the coverage is zero (within epsilon).
func (c Coverage) IsZero() bool {
	return math.Abs(c.Point) <= cmpEps && math.Abs(c.Aspect) <= cmpEps
}

// String implements fmt.Stringer; aspect is reported in degrees.
func (c Coverage) String() string {
	return fmt.Sprintf("(pt=%.2f, as=%.1f°)", c.Point, geo.Degrees(c.Aspect))
}

// FootEntry is one contribution of a photo: it point-covers PoI (by index
// into the Map's PoI list) and covers the aspect arc Arc of that PoI.
type FootEntry struct {
	PoI int
	Arc geo.Arc
}

// Footprint is the complete set of contributions a photo makes against a
// Map. An empty footprint means the photo is irrelevant: it covers no PoI.
type Footprint struct {
	Entries []FootEntry
}

// IsEmpty reports whether the photo covers no PoI at all.
func (f Footprint) IsEmpty() bool { return len(f.Entries) == 0 }

// Map fixes the PoI list and effective angle and answers footprint queries.
// A Map is immutable after construction and safe for concurrent use.
type Map struct {
	pois     []model.PoI
	theta    float64
	cellSize float64
	origin   geo.Vec
	cols     int
	rows     int
	cells    [][]int32 // PoI indices per grid cell
	totalWt  float64
	profiles map[int]AspectProfile // sparse per-PoI aspect weighting

	// statePool recycles States across contacts (see AcquireState). It does
	// not affect the map's immutability: sync.Pool is concurrency-safe.
	statePool sync.Pool
}

// MapOption customises map construction.
type MapOption func(*Map)

// WithCellSize sets the spatial-grid cell edge.
func WithCellSize(size float64) MapOption {
	return func(m *Map) {
		if size > 0 {
			m.cellSize = size
		}
	}
}

// WithAspectProfile installs the §II-C weighted-aspect extension for the
// PoI at index i: covered aspects credit the profile's weight instead of 1.
// Out-of-range indices are ignored.
func WithAspectProfile(i int, p AspectProfile) MapOption {
	return func(m *Map) {
		if i < 0 || i >= len(m.pois) {
			return
		}
		p = p.normalized()
		if p.isUniform() {
			delete(m.profiles, i)
			return
		}
		m.profiles[i] = p
	}
}

// DefaultCellSize is the spatial-grid cell edge used when the caller does
// not specify one. It is on the order of a typical coverage range so a
// footprint query touches only a handful of cells.
const DefaultCellSize = 250.0

// NewMap builds a Map over the PoI list with effective angle theta (radians,
// the θ of §II-B). PoIs with non-positive weight are given unit weight.
func NewMap(pois []model.PoI, theta float64, opts ...MapOption) *Map {
	if theta < 0 {
		theta = 0
	}
	m := &Map{
		pois:     make([]model.PoI, len(pois)),
		theta:    theta,
		cellSize: DefaultCellSize,
		profiles: make(map[int]AspectProfile),
	}
	copy(m.pois, pois)
	for i := range m.pois {
		if m.pois[i].Weight <= 0 {
			m.pois[i].Weight = 1
		}
		m.totalWt += m.pois[i].Weight
	}
	for _, o := range opts {
		o(m)
	}
	m.buildGrid()
	return m
}

// NewMapWithCellSize is NewMap with an explicit spatial-grid cell size.
func NewMapWithCellSize(pois []model.PoI, theta, cellSize float64) *Map {
	return NewMap(pois, theta, WithCellSize(cellSize))
}

func (m *Map) buildGrid() {
	if len(m.pois) == 0 {
		m.cols, m.rows = 1, 1
		m.cells = make([][]int32, 1)
		return
	}
	minP := m.pois[0].Location
	maxP := minP
	for _, p := range m.pois[1:] {
		minP.X = math.Min(minP.X, p.Location.X)
		minP.Y = math.Min(minP.Y, p.Location.Y)
		maxP.X = math.Max(maxP.X, p.Location.X)
		maxP.Y = math.Max(maxP.Y, p.Location.Y)
	}
	m.origin = minP
	m.cols = int((maxP.X-minP.X)/m.cellSize) + 1
	m.rows = int((maxP.Y-minP.Y)/m.cellSize) + 1
	m.cells = make([][]int32, m.cols*m.rows)
	for i, p := range m.pois {
		c := m.cellIndex(p.Location)
		m.cells[c] = append(m.cells[c], int32(i))
	}
}

func (m *Map) cellIndex(p geo.Vec) int {
	cx := int((p.X - m.origin.X) / m.cellSize)
	cy := int((p.Y - m.origin.Y) / m.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= m.cols {
		cx = m.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= m.rows {
		cy = m.rows - 1
	}
	return cy*m.cols + cx
}

// NumPoIs returns the number of PoIs on the map.
func (m *Map) NumPoIs() int { return len(m.pois) }

// PoI returns the i-th PoI.
func (m *Map) PoI(i int) model.PoI { return m.pois[i] }

// Theta returns the effective angle θ in radians.
func (m *Map) Theta() float64 { return m.theta }

// TotalWeight returns the sum of PoI weights (equals NumPoIs for unit
// weights); full point coverage equals this value.
func (m *Map) TotalWeight() float64 { return m.totalWt }

// Footprint compiles a photo into its footprint: every PoI the photo
// point-covers, each with the aspect arc of half-width θ centred on the
// PoI→camera direction (§II-B).
func (m *Map) Footprint(p model.Photo) Footprint {
	sec := p.Sector()
	var fp Footprint
	m.forEachCandidate(sec, func(i int) {
		poi := m.pois[i]
		if !sec.Contains(poi.Location) {
			return
		}
		center := sec.ViewAngleFrom(poi.Location)
		fp.Entries = append(fp.Entries, FootEntry{
			PoI: i,
			Arc: geo.ArcAround(center, m.theta),
		})
	})
	return fp
}

// forEachCandidate invokes fn with PoI indices whose grid cells intersect
// the sector's bounding box. It over-approximates; callers re-check
// containment.
func (m *Map) forEachCandidate(sec geo.Sector, fn func(i int)) {
	if len(m.pois) == 0 {
		return
	}
	b := sec.Bounds()
	x0 := int(math.Floor((b.Min.X - m.origin.X) / m.cellSize))
	x1 := int(math.Floor((b.Max.X - m.origin.X) / m.cellSize))
	y0 := int(math.Floor((b.Min.Y - m.origin.Y) / m.cellSize))
	y1 := int(math.Floor((b.Max.Y - m.origin.Y) / m.cellSize))
	if x1 < 0 || y1 < 0 || x0 >= m.cols || y0 >= m.rows {
		return
	}
	x0 = max(x0, 0)
	y0 = max(y0, 0)
	x1 = min(x1, m.cols-1)
	y1 = min(y1, m.rows-1)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, i := range m.cells[cy*m.cols+cx] {
				fn(int(i))
			}
		}
	}
}

// PointCovered reports whether the photo point-covers the given PoI. It is
// the C_pt(x, {f}) primitive.
func (m *Map) PointCovered(poi int, p model.Photo) bool {
	return p.Sector().Contains(m.pois[poi].Location)
}

// SoloCoverage returns the coverage a single photo achieves on its own:
// its point coverage and 2θ of aspect per covered PoI (no overlap is
// possible within one photo because one photo yields one arc per PoI).
// This is the "individual coverage" the ModifiedSpray baseline ranks by.
func (m *Map) SoloCoverage(p model.Photo) Coverage {
	fp := m.Footprint(p)
	var c Coverage
	for _, e := range fp.Entries {
		w := m.pois[e.PoI].Weight
		c.Point += w
		c.Aspect += w * m.arcMeasure(e.PoI, e.Arc)
	}
	return c
}

// AspectProfileOf returns the installed aspect profile of the PoI, or the
// uniform profile.
func (m *Map) AspectProfileOf(i int) AspectProfile {
	if p, ok := m.profiles[i]; ok {
		return p
	}
	return UniformProfile()
}

// arcMeasure returns the (possibly profile-weighted) measure of one arc at
// the given PoI.
func (m *Map) arcMeasure(poi int, a geo.Arc) float64 {
	if p, ok := m.profiles[poi]; ok {
		return p.MeasureArc(a)
	}
	return a.Width
}

// aspectGain returns the (possibly profile-weighted) new-aspect measure of
// adding arc a to the PoI's covered set.
func (m *Map) aspectGain(poi int, covered *geo.ArcSet, a geo.Arc) float64 {
	if p, ok := m.profiles[poi]; ok {
		return p.MeasureArcs(covered.Uncovered(a))
	}
	return covered.Gain(a)
}
