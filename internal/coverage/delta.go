package coverage

import (
	"photodtn/internal/geo"
)

// DeltaSet evaluates expected marginal coverage over a family of delivery
// scenarios that share one immutable base state (Definition 2, §III-C).
//
// Instead of cloning the full base per scenario, every scenario is a sparse
// overlay that stores only the arcs its delivering nodes add *beyond* the
// base. Three consequences make this the hot-loop representation of choice:
//
//   - Construction is O(arcs actually delivered), not O(scenarios × base).
//   - The expensive part of every query — subtracting the base's covered
//     arcs from a footprint — is done once and cached as a Residual, shared
//     by all scenarios and all selection rounds (the base never mutates
//     after construction).
//   - Gain is fused into a single footprint walk: each scenario pays only
//     an overlay lookup (usually nil, answered by a precomputed measure)
//     plus, rarely, a small subtraction against its own overlay.
//
// Scenario weights are the outcome probabilities; Gain and Expected reduce
// over scenarios in insertion order, so results are deterministic.
//
// A DeltaSet is not safe for concurrent mutation (AddScenario, AddResidual,
// AddToScenario, Commit, Release). Between mutations, any number of
// goroutines may call GainWith/GainResidual/CompileResidual concurrently
// provided each uses its own GainScratch — the contract the parallel gain
// scan relies on.
type DeltaSet struct {
	base  *State
	scens []scenOverlay
	sc    GainScratch // scratch for the serial entry points
	commn Residual    // reusable residual for Commit/AddToScenario

	// epoch is a monotone mutation counter: every overlay mutation bumps it
	// and stamps the touched PoIs in poiEpoch. A GainCache entry walked at
	// epoch E is stale iff its PoI was stamped after E. The counter never
	// resets — not even across Reuse — so stale stamps from a previous life
	// of the DeltaSet can never read as dirty by accident.
	epoch    int64
	poiEpoch []int64 // per-PoI slot epoch of the last overlay mutation
}

// scenOverlay is one delivery outcome: probability weight, the arcs added
// beyond the base, and the coverage those arcs contribute beyond the base.
type scenOverlay struct {
	w     float64
	st    *State // overlay arcs; its cov field is unused
	extra Coverage
}

// GainScratch holds the per-caller buffers of a fused gain query. Mint one
// per goroutine with NewScratch.
type GainScratch struct {
	buf   []geo.Arc // residual pieces minus a scenario overlay (profile path)
	pt    []float64 // per-scenario point-gain accumulators
	as    []float64 // per-scenario aspect-gain accumulators
	resid Residual  // scratch residual for the one-shot GainWith path
}

// Residual is a footprint with the DeltaSet's base coverage subtracted
// out: per touched PoI, the arc pieces the base does not cover and their
// (profile-weighted) measure. Because the base is immutable once scenarios
// exist, a residual stays valid for the DeltaSet's whole lifetime and can
// be reused across every scenario, CELF round, and Commit.
//
// The zero value is ready for use; CompileResidual reuses its storage.
type Residual struct {
	arcs    []geo.Arc // backing storage for all entries' pieces
	entries []residEntry
}

type residEntry struct {
	poi    int32
	basePt bool // the base already point-covers the PoI
	w      float64
	lo, hi int32   // piece range within Residual.arcs
	freeAs float64 // aspect gain when a scenario's overlay misses the PoI
}

// NewDeltaSet returns an empty scenario family over the base state. The
// DeltaSet takes ownership of base: the caller must not mutate it
// afterwards, and Release returns it to the map's pool.
func NewDeltaSet(base *State) *DeltaSet {
	d := &DeltaSet{}
	d.Reuse(base)
	return d
}

// Reuse re-targets d at a new base state, recycling the scenario list, the
// per-PoI epoch table, and every scratch buffer from d's previous life.
// Equivalent to *d = *NewDeltaSet(base) but allocation-free in steady state;
// valid on the zero value and after Release. Like NewDeltaSet, it takes
// ownership of base.
func (d *DeltaSet) Reuse(base *State) {
	d.base = base
	d.scens = d.scens[:0]
	// The epoch counter keeps running across lives; a freshly grown epoch
	// table is all zeros, which is ≤ every stamp a cache could hold — safely
	// "clean" either way.
	if len(d.poiEpoch) < len(base.arcs) {
		d.poiEpoch = make([]int64, len(base.arcs))
	}
}

// Base returns the shared base state (read-only).
func (d *DeltaSet) Base() *State { return d.base }

// Scenarios returns the number of delivery outcomes tracked.
func (d *DeltaSet) Scenarios() int { return len(d.scens) }

// NewScratch mints a scratch sized for the current scenario count, for use
// with GainWith/GainResidual from a dedicated goroutine.
func (d *DeltaSet) NewScratch() *GainScratch {
	return &GainScratch{
		pt: make([]float64, len(d.scens)),
		as: make([]float64, len(d.scens)),
	}
}

// Reserve pre-sizes the scenario list for n outcomes, avoiding growth
// reallocations during construction.
func (d *DeltaSet) Reserve(n int) {
	if cap(d.scens) < n {
		scens := make([]scenOverlay, len(d.scens), n)
		copy(scens, d.scens)
		d.scens = scens
	}
}

// AddScenario appends a delivery outcome with probability weight w and
// returns its index. Populate it with AddResidual (or AddToScenario).
func (d *DeltaSet) AddScenario(w float64) int {
	d.scens = append(d.scens, scenOverlay{w: w, st: d.base.m.AcquireState()})
	return len(d.scens) - 1
}

// CompileResidual subtracts the base from the footprint into r, reusing
// r's storage. Entries the base fully covers are dropped. Read-only on the
// DeltaSet, so concurrent compilations are safe.
func (d *DeltaSet) CompileResidual(fp Footprint, r *Residual) {
	m := d.base.m
	r.arcs = r.arcs[:0]
	r.entries = r.entries[:0]
	for _, e := range fp.Entries {
		bs := d.base.arcs[e.PoI]
		start := len(r.arcs)
		r.arcs = bs.AppendUncovered(e.Arc, r.arcs)
		if bs != nil && len(r.arcs) == start {
			r.arcs = r.arcs[:start]
			continue // fully covered by the shared base: zero in every scenario
		}
		pieces := r.arcs[start:]
		var freeAs float64
		if prof, ok := m.profiles[e.PoI]; ok {
			freeAs = prof.MeasureArcs(pieces)
		} else {
			for _, p := range pieces {
				freeAs += p.Width
			}
		}
		r.entries = append(r.entries, residEntry{
			poi:    int32(e.PoI),
			basePt: bs != nil,
			w:      m.pois[e.PoI].Weight,
			lo:     int32(start),
			hi:     int32(len(r.arcs)),
			freeAs: freeAs,
		})
	}
}

// AddResidual merges a compiled residual into the scenario's overlay: the
// outcome now includes the photo. Only base-uncovered pieces are stored, so
// overlays stay small.
func (d *DeltaSet) AddResidual(si int, r *Residual) {
	m := d.base.m
	sd := &d.scens[si]
	d.epoch++
	for i := range r.entries {
		re := &r.entries[i]
		poi := int(re.poi)
		d.poiEpoch[poi] = d.epoch
		pieces := r.arcs[re.lo:re.hi]
		os := sd.st.arcs[poi]
		if !re.basePt && os == nil {
			sd.extra.Point += re.w
		}
		if os == nil {
			sd.extra.Aspect += re.w * re.freeAs
			os = sd.st.arena.take()
			sd.st.arcs[poi] = os
			sd.st.touched = append(sd.st.touched, re.poi)
		} else {
			if prof, ok := m.profiles[poi]; ok {
				buf := d.sc.buf[:0]
				for _, p := range pieces {
					buf = os.AppendUncovered(p, buf)
				}
				d.sc.buf = buf[:0]
				sd.extra.Aspect += re.w * prof.MeasureArcs(buf)
			} else {
				sd.extra.Aspect += re.w * os.GainArcs(pieces)
			}
		}
		for _, p := range pieces {
			os.Add(p)
		}
	}
}

// AddToScenario adds a footprint to one scenario's overlay. Convenience
// wrapper over CompileResidual + AddResidual for one-shot additions.
func (d *DeltaSet) AddToScenario(si int, fp Footprint) {
	d.CompileResidual(fp, &d.commn)
	d.AddResidual(si, &d.commn)
}

// Commit adds the footprint to every scenario — the fused form of "the
// selected photo is now part of each outcome". The base subtraction runs
// once and is shared by all scenarios.
func (d *DeltaSet) Commit(fp Footprint) {
	d.CompileResidual(fp, &d.commn)
	for si := range d.scens {
		d.AddResidual(si, &d.commn)
	}
}

// Gain returns the scenario-weighted expected marginal gain of the
// footprint. Serial entry point; see GainWith for the concurrent form and
// GainResidual for the cached-residual fast path.
func (d *DeltaSet) Gain(fp Footprint) Coverage {
	return d.GainWith(fp, &d.sc)
}

// GainWith is Gain with caller-supplied scratch: one base subtraction,
// fused over all scenarios. Safe for concurrent callers (one scratch each)
// as long as no mutation is in flight.
func (d *DeltaSet) GainWith(fp Footprint, sc *GainScratch) Coverage {
	d.CompileResidual(fp, &sc.resid)
	return d.GainResidual(&sc.resid, sc)
}

// GainCached is GainResidual with the DeltaSet's own serial scratch, for
// callers that hold a compiled residual but no scratch of their own.
func (d *DeltaSet) GainCached(r *Residual) Coverage {
	return d.GainResidual(r, &d.sc)
}

// GainResidual returns the scenario-weighted expected marginal gain of a
// compiled residual. This is the CELF inner loop: no geometry runs at all
// for scenarios whose overlay misses the residual's PoIs — the common case
// — and the rest subtract only against the (small) overlay.
func (d *DeltaSet) GainResidual(r *Residual, sc *GainScratch) Coverage {
	n := len(d.scens)
	if cap(sc.pt) < n {
		sc.pt = make([]float64, n)
		sc.as = make([]float64, n)
	}
	pt, as := sc.pt[:n], sc.as[:n]
	for i := range pt {
		pt[i], as[i] = 0, 0
	}

	m := d.base.m
	for i := range r.entries {
		re := &r.entries[i]
		poi := int(re.poi)
		pieces := r.arcs[re.lo:re.hi]
		prof, hasProf := m.profiles[poi]
		for si := range d.scens {
			os := d.scens[si].st.arcs[poi]
			if os == nil {
				if !re.basePt {
					pt[si] += re.w
				}
				as[si] += re.w * re.freeAs
				continue
			}
			if hasProf {
				buf := sc.buf[:0]
				for _, p := range pieces {
					buf = os.AppendUncovered(p, buf)
				}
				sc.buf = buf[:0]
				as[si] += re.w * prof.MeasureArcs(buf)
			} else {
				as[si] += re.w * os.GainArcs(pieces)
			}
		}
	}

	var g Coverage
	for si := range d.scens {
		w := d.scens[si].w
		g.Point += w * pt[si]
		g.Aspect += w * as[si]
	}
	return g
}

// GainCache caches a residual's gain decomposed per PoI entry: entry i's
// scenario-weighted point and aspect contributions plus the DeltaSet epoch
// at which they were computed. Each residual entry touches exactly one PoI,
// so after a Commit only the entries whose PoI the commit stamped need a
// re-walk — every other entry's cached contribution is still bit-exact (the
// diminishing-returns upper bound becomes an equality for them).
//
// A GainCache belongs to one (DeltaSet, Residual) pair at a time; call
// Reset whenever either changes. The zero value is ready for use.
type GainCache struct {
	pt, as []float64 // per-entry scenario-weighted contributions
	epoch  []int64   // DeltaSet epoch each entry was last walked at
}

// Reset empties the cache; the next GainResidualCached walks every entry.
func (gc *GainCache) Reset() {
	gc.epoch = gc.epoch[:0]
}

// GainResidualCached is GainResidual with dirty-PoI invalidation: it re-walks
// only the entries whose PoI an overlay mutation touched since they were last
// cached and re-sums the per-entry contributions in entry order. Because the
// contributions of clean entries are reused bit-for-bit and the summation
// order is fixed, the result is identical whether zero or all entries were
// dirty — incremental equals from-scratch exactly, not approximately.
//
// A nil scratch selects the DeltaSet's own serial scratch; concurrent
// callers must pass their own (and own their GainCache exclusively).
func (d *DeltaSet) GainResidualCached(r *Residual, gc *GainCache, sc *GainScratch) Coverage {
	if sc == nil {
		sc = &d.sc
	}
	n := len(r.entries)
	fresh := len(gc.epoch) != n
	if fresh {
		if cap(gc.epoch) < n {
			gc.pt = make([]float64, n)
			gc.as = make([]float64, n)
			gc.epoch = make([]int64, n)
		}
		gc.pt, gc.as, gc.epoch = gc.pt[:n], gc.as[:n], gc.epoch[:n]
	}
	var g Coverage
	for i := range r.entries {
		re := &r.entries[i]
		if fresh || d.poiEpoch[re.poi] > gc.epoch[i] {
			gc.pt[i], gc.as[i] = d.entryGain(re, r.arcs[re.lo:re.hi], sc)
			gc.epoch[i] = d.epoch
		}
		g.Point += gc.pt[i]
		g.Aspect += gc.as[i]
	}
	return g
}

// entryGain computes one residual entry's scenario-weighted contribution:
// Σ_si w_si · gain(entry, scenario si). This is the entry-major counterpart
// of GainResidual's scenario-major accumulation; the two differ only in
// floating-point association (well below Coverage's comparison epsilon).
func (d *DeltaSet) entryGain(re *residEntry, pieces []geo.Arc, sc *GainScratch) (pt, as float64) {
	m := d.base.m
	poi := int(re.poi)
	prof, hasProf := m.profiles[poi]
	for si := range d.scens {
		w := d.scens[si].w
		os := d.scens[si].st.arcs[poi]
		if os == nil {
			if !re.basePt {
				pt += w * re.w
			}
			as += w * re.w * re.freeAs
			continue
		}
		if hasProf {
			buf := sc.buf[:0]
			for _, p := range pieces {
				buf = os.AppendUncovered(p, buf)
			}
			sc.buf = buf[:0]
			as += w * re.w * prof.MeasureArcs(buf)
		} else {
			as += w * re.w * os.GainArcs(pieces)
		}
	}
	return pt, as
}

// Expected returns the scenario-weighted expected coverage,
// E_B[C_ph(base ∪ overlay_B)].
func (d *DeltaSet) Expected() Coverage {
	var c Coverage
	for i := range d.scens {
		c = c.Add(d.base.cov.Add(d.scens[i].extra).Scale(d.scens[i].w))
	}
	return c
}

// Release returns the base and every overlay to the map's state pool. The
// DeltaSet must not be used afterwards — except through Reuse, which revives
// it against a new base; compiled Residuals and GainCaches die either way.
func (d *DeltaSet) Release() {
	m := d.base.m
	m.ReleaseState(d.base)
	d.base = nil
	for i := range d.scens {
		m.ReleaseState(d.scens[i].st)
		d.scens[i].st = nil
	}
	d.scens = d.scens[:0]
}
