package coverage

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"photodtn/internal/geo"
	"photodtn/internal/model"
)

// deltaInstance is a randomized DeltaSet workload plus the brute-force
// oracle: one fully materialized clone of the base per scenario.
type deltaInstance struct {
	m      *Map
	ds     *DeltaSet
	oracle []*State // oracle[i] mirrors scenario i
	ws     []float64
	probes []Footprint
}

// newDeltaInstance builds a random map (weighted PoIs, one aspect profile to
// exercise the rare path), a base of basePhotos, nScens scenarios each with
// a few random footprints, and probe footprints for gain queries.
func newDeltaInstance(t *testing.T, seed int64, pois, basePhotos, nScens int) *deltaInstance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pl := make([]model.PoI, pois)
	for i := range pl {
		pl[i] = model.NewPoI(i, geo.Vec{X: rng.Float64() * 800, Y: rng.Float64() * 800})
		if rng.Intn(3) == 0 {
			pl[i].Weight = 1 + 2*rng.Float64()
		}
	}
	m := NewMap(pl, geo.Radians(30),
		WithAspectProfile(0, AspectProfile{
			Base:     0.5,
			Segments: []WeightedArc{{Arc: ArcAroundDeg(90, 45), Weight: 2}},
		}))

	randomFP := func() Footprint {
		p := photoAt(uint32(rng.Uint32()), geo.Vec{X: rng.Float64() * 800, Y: rng.Float64() * 800},
			rng.Float64()*geo.TwoPi, 60+rng.Float64()*60)
		return m.Footprint(p)
	}

	base := m.AcquireState()
	for i := 0; i < basePhotos; i++ {
		base.Add(randomFP())
	}
	inst := &deltaInstance{m: m, ds: NewDeltaSet(base)}
	for s := 0; s < nScens; s++ {
		w := rng.Float64()
		inst.ws = append(inst.ws, w)
		si := inst.ds.AddScenario(w)
		oracle := base.Clone()
		for k := rng.Intn(4); k >= 0; k-- {
			fp := randomFP()
			inst.ds.AddToScenario(si, fp)
			oracle.Add(fp)
		}
		inst.oracle = append(inst.oracle, oracle)
	}
	for i := 0; i < 24; i++ {
		inst.probes = append(inst.probes, randomFP())
	}
	inst.probes = append(inst.probes, Footprint{}) // empty footprint edge
	return inst
}

// oracleGain is the scenario-weighted gain computed against the clones.
func (di *deltaInstance) oracleGain(fp Footprint) Coverage {
	var g Coverage
	for i, st := range di.oracle {
		g = g.Add(st.Gain(fp).Scale(di.ws[i]))
	}
	return g
}

func (di *deltaInstance) oracleExpected() Coverage {
	var c Coverage
	for i, st := range di.oracle {
		c = c.Add(st.Coverage().Scale(di.ws[i]))
	}
	return c
}

func coverageClose(a, b Coverage, tol float64) bool {
	return almostEqual(a.Point, b.Point, tol) && almostEqual(a.Aspect, b.Aspect, tol)
}

// TestDeltaSetMatchesMaterializedClones is the core equivalence property:
// the sparse-overlay DeltaSet must agree with one materialized clone per
// scenario on Gain, Expected, and across Commits.
func TestDeltaSetMatchesMaterializedClones(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		di := newDeltaInstance(t, seed, 40, 6, 5)
		for pi, fp := range di.probes {
			got, want := di.ds.Gain(fp), di.oracleGain(fp)
			if !coverageClose(got, want, eps) {
				t.Fatalf("seed %d probe %d: Gain = %+v, oracle %+v", seed, pi, got, want)
			}
		}
		if got, want := di.ds.Expected(), di.oracleExpected(); !coverageClose(got, want, eps) {
			t.Fatalf("seed %d: Expected = %+v, oracle %+v", seed, got, want)
		}
		// Commit a few probes and re-verify everything after each.
		for ci := 0; ci < 3; ci++ {
			fp := di.probes[ci]
			di.ds.Commit(fp)
			for _, st := range di.oracle {
				st.Add(fp)
			}
			for pi, probe := range di.probes {
				got, want := di.ds.Gain(probe), di.oracleGain(probe)
				if !coverageClose(got, want, eps) {
					t.Fatalf("seed %d commit %d probe %d: Gain = %+v, oracle %+v", seed, ci, pi, got, want)
				}
			}
			if got, want := di.ds.Expected(), di.oracleExpected(); !coverageClose(got, want, eps) {
				t.Fatalf("seed %d commit %d: Expected = %+v, oracle %+v", seed, ci, got, want)
			}
		}
		di.ds.Release()
	}
}

// TestDeltaSetResidualReuse checks that a residual compiled once stays valid
// across scenarios and commits (the CELF caching contract), and that
// residuals of base-covered footprints are empty.
func TestDeltaSetResidualReuse(t *testing.T) {
	di := newDeltaInstance(t, 42, 40, 6, 4)
	defer di.ds.Release()
	sc := di.ds.NewScratch()
	var rs []Residual
	for _, fp := range di.probes {
		var r Residual
		di.ds.CompileResidual(fp, &r)
		rs = append(rs, r)
	}
	for pi, fp := range di.probes {
		got, want := di.ds.GainResidual(&rs[pi], sc), di.ds.Gain(fp)
		if !coverageClose(got, want, eps) {
			t.Fatalf("probe %d: GainResidual = %+v, Gain = %+v", pi, got, want)
		}
	}
	// Committing mutates only overlays, never the base — cached residuals
	// must still agree with fresh compilations afterwards.
	di.ds.Commit(di.probes[0])
	for pi, fp := range di.probes {
		got, want := di.ds.GainResidual(&rs[pi], sc), di.ds.Gain(fp)
		if !coverageClose(got, want, eps) {
			t.Fatalf("post-commit probe %d: GainResidual = %+v, Gain = %+v", pi, got, want)
		}
	}
	// A footprint the base fully covers compiles to an empty residual.
	base := di.ds.Base()
	if len(base.touched) > 0 {
		i := int(base.touched[0])
		full := Footprint{Entries: []FootEntry{{PoI: i, Arc: base.arcsAt(i).Arcs()[0]}}}
		var r Residual
		di.ds.CompileResidual(full, &r)
		if len(r.entries) != 0 {
			t.Fatalf("base-covered footprint residual has %d entries", len(r.entries))
		}
		if g := di.ds.GainResidual(&r, sc); !g.IsZero() {
			t.Fatalf("base-covered footprint gain = %+v", g)
		}
	}
}

// TestDeltaSetGainConcurrent exercises the parallel-scan contract: between
// mutations, concurrent GainWith callers with private scratches agree with
// the serial path. Run under -race this also proves the absence of data
// races on the frozen base/overlays.
func TestDeltaSetGainConcurrent(t *testing.T) {
	di := newDeltaInstance(t, 7, 60, 8, 6)
	defer di.ds.Release()
	want := make([]Coverage, len(di.probes))
	for i, fp := range di.probes {
		want[i] = di.ds.Gain(fp)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := di.ds.NewScratch()
			for i, fp := range di.probes {
				if got := di.ds.GainWith(fp, sc); !coverageClose(got, want[i], eps) {
					errs <- "concurrent gain mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
}

// TestStatePoolRoundtrip checks the Map's state recycler: released states
// come back empty, and foreign or nil states are ignored.
func TestStatePoolRoundtrip(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	st := m.AcquireState()
	st.AddPhoto(photoAt(1, geo.Vec{X: 50}, math.Pi, 100))
	if st.NumCovered() != 1 {
		t.Fatal("photo did not cover the PoI")
	}
	m.ReleaseState(st)
	st2 := m.AcquireState()
	if st2.NumCovered() != 0 || !st2.Coverage().IsZero() {
		t.Fatalf("recycled state not empty: %d covered, %+v", st2.NumCovered(), st2.Coverage())
	}
	// Foreign and nil releases are no-ops, not panics or pool corruption.
	other := singlePoIMap(geo.Radians(30))
	m.ReleaseState(other.NewState())
	m.ReleaseState(nil)
	m.ReleaseState(st2)
}

// TestFootprintCacheConcurrent hammers one cache from many goroutines; under
// -race this validates the documented concurrency contract, and all callers
// must observe identical footprints.
func TestFootprintCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pl := make([]model.PoI, 30)
	for i := range pl {
		pl[i] = model.NewPoI(i, geo.Vec{X: rng.Float64() * 500, Y: rng.Float64() * 500})
	}
	m := NewMap(pl, geo.Radians(30))
	photos := make([]model.Photo, 64)
	for i := range photos {
		photos[i] = photoAt(uint32(i+1), geo.Vec{X: rng.Float64() * 500, Y: rng.Float64() * 500},
			rng.Float64()*geo.TwoPi, 60+rng.Float64()*60)
	}
	c := NewFootprintCache(m)
	const workers = 8
	got := make([][]Footprint, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([]Footprint, len(photos))
			for i, p := range photos {
				got[w][i] = c.Of(p)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != len(photos) {
		t.Fatalf("cache Len = %d, want %d", c.Len(), len(photos))
	}
	for w := 1; w < workers; w++ {
		for i := range photos {
			a, b := got[0][i], got[w][i]
			if len(a.Entries) != len(b.Entries) {
				t.Fatalf("worker %d photo %d: entry count differs", w, i)
			}
			for k := range a.Entries {
				if a.Entries[k] != b.Entries[k] {
					t.Fatalf("worker %d photo %d entry %d differs", w, i, k)
				}
			}
		}
	}
}
