package coverage

import (
	"photodtn/internal/geo"
	"photodtn/internal/model"
)

// State is the coverage of a photo collection F with respect to a Map. It
// tracks, per touched PoI, the union of covered aspect arcs, and maintains
// the aggregate Coverage value incrementally.
//
// State is the workhorse of the selection algorithm: adding a footprint is
// O(size of the footprint), and Gain answers "how much would C_ph grow if
// this photo were added" without mutating the state.
//
// A State is not safe for concurrent mutation.
type State struct {
	m    *Map
	arcs map[int]*geo.ArcSet
	cov  Coverage
}

// NewState returns the empty coverage state for the map.
func (m *Map) NewState() *State {
	return &State{m: m, arcs: make(map[int]*geo.ArcSet)}
}

// Map returns the map the state is defined against.
func (s *State) Map() *Map { return s.m }

// Coverage returns the aggregate photo coverage C_ph of everything added.
func (s *State) Coverage() Coverage { return s.cov }

// PoICovered reports whether the PoI at index i is point-covered.
func (s *State) PoICovered(i int) bool {
	_, ok := s.arcs[i]
	return ok
}

// NumCovered returns the number of point-covered PoIs (unweighted).
func (s *State) NumCovered() int { return len(s.arcs) }

// AspectOf returns the covered aspect measure (radians, unweighted) of the
// PoI at index i.
func (s *State) AspectOf(i int) float64 {
	as, ok := s.arcs[i]
	if !ok {
		return 0
	}
	return as.Measure()
}

// Add unions a footprint into the state and returns the realised coverage
// gain.
func (s *State) Add(fp Footprint) Coverage {
	var gain Coverage
	for _, e := range fp.Entries {
		w := s.m.pois[e.PoI].Weight
		as, ok := s.arcs[e.PoI]
		if !ok {
			as = &geo.ArcSet{}
			s.arcs[e.PoI] = as
			gain.Point += w
		}
		gain.Aspect += w * s.m.aspectGain(e.PoI, as, e.Arc)
		as.Add(e.Arc)
	}
	s.cov = s.cov.Add(gain)
	return gain
}

// AddPhoto compiles the photo's footprint and adds it.
func (s *State) AddPhoto(p model.Photo) Coverage {
	return s.Add(s.m.Footprint(p))
}

// AddPhotos adds every photo of the list and returns the total gain.
func (s *State) AddPhotos(l model.PhotoList) Coverage {
	var gain Coverage
	for _, p := range l {
		gain = gain.Add(s.AddPhoto(p))
	}
	return gain
}

// Gain returns the coverage gain Add(fp) would realise, without mutating
// the state.
func (s *State) Gain(fp Footprint) Coverage {
	var gain Coverage
	for _, e := range fp.Entries {
		w := s.m.pois[e.PoI].Weight
		as, ok := s.arcs[e.PoI]
		if !ok {
			gain.Point += w
			gain.Aspect += w * s.m.arcMeasure(e.PoI, e.Arc)
			continue
		}
		gain.Aspect += w * s.m.aspectGain(e.PoI, as, e.Arc)
	}
	return gain
}

// Union merges another state (defined on the same map) into s.
func (s *State) Union(o *State) {
	if o == nil {
		return
	}
	for i, oas := range o.arcs {
		w := s.m.pois[i].Weight
		as, ok := s.arcs[i]
		if !ok {
			as = &geo.ArcSet{}
			s.arcs[i] = as
			s.cov.Point += w
		}
		for _, a := range oas.Arcs() {
			s.cov.Aspect += w * s.m.aspectGain(i, as, a)
			as.Add(a)
		}
	}
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{m: s.m, arcs: make(map[int]*geo.ArcSet, len(s.arcs)), cov: s.cov}
	for i, as := range s.arcs {
		c.arcs[i] = as.Clone()
	}
	return c
}

// Reset empties the state.
func (s *State) Reset() {
	s.arcs = make(map[int]*geo.ArcSet)
	s.cov = Coverage{}
}

// Of computes the photo coverage C_ph(X, F) of a photo collection in one
// shot. It is a convenience for callers that do not need incremental state.
func (m *Map) Of(photos model.PhotoList) Coverage {
	st := m.NewState()
	st.AddPhotos(photos)
	return st.Coverage()
}

// Normalized converts a coverage value into the paper's reporting units:
// point coverage as a fraction of total PoI weight, and aspect coverage as
// the mean covered angle per PoI in radians (divide by 2π for a fraction).
func (m *Map) Normalized(c Coverage) (pointFrac, aspectMeanRad float64) {
	if m.totalWt == 0 {
		return 0, 0
	}
	return c.Point / m.totalWt, c.Aspect / m.totalWt
}
