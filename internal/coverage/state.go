package coverage

import (
	"photodtn/internal/geo"
	"photodtn/internal/model"
)

// arenaBlockSize is the number of ArcSets allocated per arena block. Blocks
// are recycled wholesale on Reset, so the arena amortises both the ArcSet
// headers and their interval slices across a state's lifetimes.
const arenaBlockSize = 64

// arcArena hands out ArcSets from reusable blocks. Recycled sets keep their
// interval storage, so a state that is Reset and refilled allocates nothing
// in steady state.
type arcArena struct {
	blocks [][]geo.ArcSet
	n      int // sets handed out since the last reset
}

// take returns an empty ArcSet, reusing a recycled one when available.
func (a *arcArena) take() *geo.ArcSet {
	bi, off := a.n/arenaBlockSize, a.n%arenaBlockSize
	if bi == len(a.blocks) {
		a.blocks = append(a.blocks, make([]geo.ArcSet, arenaBlockSize))
	}
	s := &a.blocks[bi][off]
	a.n++
	s.Reset() // recycled set: drop stale intervals, keep capacity
	return s
}

// reset recycles every handed-out set at once.
func (a *arcArena) reset() { a.n = 0 }

// State is the coverage of a photo collection F with respect to a Map. It
// tracks, per touched PoI, the union of covered aspect arcs, and maintains
// the aggregate Coverage value incrementally.
//
// The representation is dense: arc sets live in a flat slice indexed by PoI
// slot (no map lookups or rehashing on the hot path), the sets themselves
// come from a per-state arena, and Reset recycles everything, so a state can
// be refilled repeatedly without allocating. Acquire one from the Map's pool
// with AcquireState when states are created and dropped per contact.
//
// State is the workhorse of the selection algorithm: adding a footprint is
// O(size of the footprint), and Gain answers "how much would C_ph grow if
// this photo were added" without mutating the state.
//
// A State is not safe for concurrent mutation. A state that is no longer
// mutated may be read concurrently (Gain, Coverage, AspectOf, ... are pure
// reads), which is what the parallel gain scan relies on.
type State struct {
	m *Map
	// arcs is indexed by PoI slot; nil means the PoI is not point-covered.
	arcs []*geo.ArcSet
	// touched lists the covered PoI slots in first-touch order, making
	// iteration deterministic and Reset O(covered).
	touched []int32
	arena   arcArena
	cov     Coverage
	// pooled marks a state currently sitting in the map's recycling pool;
	// ReleaseState uses it to catch double releases, which would hand the
	// same state out twice and silently corrupt two contacts' coverage.
	pooled bool
}

// NewState returns the empty coverage state for the map.
func (m *Map) NewState() *State {
	return &State{m: m, arcs: make([]*geo.ArcSet, len(m.pois))}
}

// AcquireState returns an empty state from the map's recycling pool (or a
// fresh one). Release it with ReleaseState when done; states that are never
// released are simply collected by the GC.
func (m *Map) AcquireState() *State {
	if v := m.statePool.Get(); v != nil {
		s := v.(*State) // reset on release
		s.pooled = false
		return s
	}
	return m.NewState()
}

// ReleaseState resets the state and returns it to the map's pool for reuse.
// The state must not be used afterwards. States belonging to another map
// (and nil) are ignored. Releasing the same state twice panics: the pool
// would hand it out to two callers at once, and the resulting shared
// mutation is far harder to debug than a loud failure at the misuse site.
func (m *Map) ReleaseState(s *State) {
	if s == nil || s.m != m {
		return
	}
	if s.pooled {
		panic("coverage: State released twice")
	}
	s.Reset()
	s.pooled = true
	m.statePool.Put(s)
}

// Map returns the map the state is defined against.
func (s *State) Map() *Map { return s.m }

// Coverage returns the aggregate photo coverage C_ph of everything added.
func (s *State) Coverage() Coverage { return s.cov }

// PoICovered reports whether the PoI at index i is point-covered.
func (s *State) PoICovered(i int) bool {
	return i >= 0 && i < len(s.arcs) && s.arcs[i] != nil
}

// NumCovered returns the number of point-covered PoIs (unweighted).
func (s *State) NumCovered() int { return len(s.touched) }

// AspectOf returns the covered aspect measure (radians, unweighted) of the
// PoI at index i.
func (s *State) AspectOf(i int) float64 {
	if i < 0 || i >= len(s.arcs) || s.arcs[i] == nil {
		return 0
	}
	return s.arcs[i].Measure()
}

// arcsAt returns the arc set of the PoI slot, or nil when uncovered. The
// caller must not mutate it.
func (s *State) arcsAt(i int) *geo.ArcSet { return s.arcs[i] }

// Add unions a footprint into the state and returns the realised coverage
// gain.
func (s *State) Add(fp Footprint) Coverage {
	var gain Coverage
	for _, e := range fp.Entries {
		w := s.m.pois[e.PoI].Weight
		as := s.arcs[e.PoI]
		if as == nil {
			as = s.arena.take()
			s.arcs[e.PoI] = as
			s.touched = append(s.touched, int32(e.PoI))
			gain.Point += w
		}
		gain.Aspect += w * s.m.aspectGain(e.PoI, as, e.Arc)
		as.Add(e.Arc)
	}
	s.cov = s.cov.Add(gain)
	return gain
}

// AddPhoto compiles the photo's footprint and adds it.
func (s *State) AddPhoto(p model.Photo) Coverage {
	return s.Add(s.m.Footprint(p))
}

// AddPhotos adds every photo of the list and returns the total gain.
func (s *State) AddPhotos(l model.PhotoList) Coverage {
	var gain Coverage
	for _, p := range l {
		gain = gain.Add(s.AddPhoto(p))
	}
	return gain
}

// Gain returns the coverage gain Add(fp) would realise, without mutating
// the state.
func (s *State) Gain(fp Footprint) Coverage {
	var gain Coverage
	for _, e := range fp.Entries {
		w := s.m.pois[e.PoI].Weight
		as := s.arcs[e.PoI]
		if as == nil {
			gain.Point += w
			gain.Aspect += w * s.m.arcMeasure(e.PoI, e.Arc)
			continue
		}
		gain.Aspect += w * s.m.aspectGain(e.PoI, as, e.Arc)
	}
	return gain
}

// Union merges another state (defined on the same map) into s. Iteration
// follows o's first-touch order, so the result is deterministic.
func (s *State) Union(o *State) {
	if o == nil {
		return
	}
	for _, i32 := range o.touched {
		i := int(i32)
		oas := o.arcs[i]
		w := s.m.pois[i].Weight
		as := s.arcs[i]
		if as == nil {
			as = s.arena.take()
			s.arcs[i] = as
			s.touched = append(s.touched, i32)
			s.cov.Point += w
		}
		for _, a := range oas.Arcs() {
			s.cov.Aspect += w * s.m.aspectGain(i, as, a)
			as.Add(a)
		}
	}
}

// Clone returns a deep copy of the state. The copy's storage is sized
// exactly from the source — nothing grows or rehashes afterwards.
func (s *State) Clone() *State {
	c := &State{
		m:       s.m,
		arcs:    make([]*geo.ArcSet, len(s.arcs)),
		touched: append(make([]int32, 0, len(s.touched)), s.touched...),
		cov:     s.cov,
	}
	for _, i := range s.touched {
		as := c.arena.take()
		as.CopyFrom(s.arcs[i])
		c.arcs[i] = as
	}
	return c
}

// Reset empties the state, recycling every arc set for reuse.
func (s *State) Reset() {
	for _, i := range s.touched {
		s.arcs[i] = nil
	}
	s.touched = s.touched[:0]
	s.arena.reset()
	s.cov = Coverage{}
}

// Of computes the photo coverage C_ph(X, F) of a photo collection in one
// shot. It is a convenience for callers that do not need incremental state.
func (m *Map) Of(photos model.PhotoList) Coverage {
	st := m.AcquireState()
	defer m.ReleaseState(st)
	st.AddPhotos(photos)
	return st.Coverage()
}

// Normalized converts a coverage value into the paper's reporting units:
// point coverage as a fraction of total PoI weight, and aspect coverage as
// the mean covered angle per PoI in radians (divide by 2π for a fraction).
func (m *Map) Normalized(c Coverage) (pointFrac, aspectMeanRad float64) {
	if m.totalWt == 0 {
		return 0, 0
	}
	return c.Point / m.totalWt, c.Aspect / m.totalWt
}
