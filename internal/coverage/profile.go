package coverage

import (
	"photodtn/internal/geo"
)

// WeightedArc is one angular segment of an aspect profile with its weight.
type WeightedArc struct {
	Arc    geo.Arc
	Weight float64
}

// AspectProfile implements the §II-C extension "assign different weights to
// different aspects of a PoI": a piecewise-constant weight over the circle
// of aspects. Covering an aspect v credits Weight(v) instead of 1 — e.g.
// the main entrance of a building can weigh 5× its back wall.
//
// Base applies wherever no segment does; overlapping segments stack
// additively on top of the base (keep them disjoint for the usual
// piecewise-constant semantics).
type AspectProfile struct {
	Base     float64
	Segments []WeightedArc
}

// UniformProfile returns the default profile: every aspect weighs 1.
func UniformProfile() AspectProfile { return AspectProfile{Base: 1} }

// ArcAroundDeg builds a profile segment arc from degrees: centred on
// centerDeg with ±halfWidthDeg. Convenience for profile authors.
func ArcAroundDeg(centerDeg, halfWidthDeg float64) geo.Arc {
	return geo.ArcAround(geo.Radians(centerDeg), geo.Radians(halfWidthDeg))
}

// normalized returns the profile with a defaulted base and dropped
// non-positive-width segments.
func (p AspectProfile) normalized() AspectProfile {
	if p.Base <= 0 {
		p.Base = 1
	}
	segs := make([]WeightedArc, 0, len(p.Segments))
	for _, s := range p.Segments {
		if !s.Arc.IsEmpty() {
			segs = append(segs, s)
		}
	}
	p.Segments = segs
	return p
}

// isUniform reports whether the profile reduces to unit weighting.
func (p AspectProfile) isUniform() bool {
	return p.Base == 1 && len(p.Segments) == 0
}

// MeasureArc returns the weighted measure of one arc:
// Base·|a| + Σ (Weight−Base)·|a ∩ segment|.
func (p AspectProfile) MeasureArc(a geo.Arc) float64 {
	m := p.Base * a.Width
	for _, s := range p.Segments {
		set := geo.NewArcSet(s.Arc)
		m += (s.Weight - p.Base) * set.Overlap(a)
	}
	return m
}

// MeasureArcs returns the weighted measure of a set of disjoint arcs.
func (p AspectProfile) MeasureArcs(arcs []geo.Arc) float64 {
	var m float64
	for _, a := range arcs {
		m += p.MeasureArc(a)
	}
	return m
}

// MaxAspect returns the weighted measure of the full circle — the largest
// aspect credit this PoI can ever contribute.
func (p AspectProfile) MaxAspect() float64 {
	return p.MeasureArc(geo.NewArc(0, geo.TwoPi))
}
