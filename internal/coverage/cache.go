package coverage

import "photodtn/internal/model"

// FootprintCache memoizes photo footprints against a fixed Map. Footprints
// depend only on photo metadata and the (immutable) PoI map, so a node can
// compile each photo once and reuse the result at every contact — the
// compiled form of "metadata is cheap to analyze".
//
// A FootprintCache is not safe for concurrent use; simulations create one
// per run.
type FootprintCache struct {
	m   *Map
	fps map[model.PhotoID]Footprint
}

// NewFootprintCache returns an empty cache over the map.
func NewFootprintCache(m *Map) *FootprintCache {
	return &FootprintCache{m: m, fps: make(map[model.PhotoID]Footprint)}
}

// Map returns the underlying PoI map.
func (c *FootprintCache) Map() *Map { return c.m }

// Of returns the (possibly memoized) footprint of the photo.
func (c *FootprintCache) Of(p model.Photo) Footprint {
	if fp, ok := c.fps[p.ID]; ok {
		return fp
	}
	fp := c.m.Footprint(p)
	c.fps[p.ID] = fp
	return fp
}

// Len returns the number of memoized footprints.
func (c *FootprintCache) Len() int { return len(c.fps) }
