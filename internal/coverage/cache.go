package coverage

import (
	"sync"

	"photodtn/internal/model"
	"photodtn/internal/obs"
)

// FootprintCache memoizes photo footprints against a fixed Map. Footprints
// depend only on photo metadata and the (immutable) PoI map, so a node can
// compile each photo once and reuse the result at every contact — the
// compiled form of "metadata is cheap to analyze".
//
// Concurrency contract: a FootprintCache is safe for concurrent use. Reads
// take a shared lock, so concurrent readers (the parallel gain scan,
// sim.RunMany workers sharing one compiled cache) never serialise against
// each other; a miss compiles the footprint outside the lock and then
// briefly takes the exclusive lock to publish it. Cached Footprints are
// immutable — callers must not modify the Entries slice they receive.
type FootprintCache struct {
	m   *Map
	mu  sync.RWMutex
	fps map[model.PhotoID]Footprint

	// hits and misses are optional nil-safe observability counters
	// (SetMetrics); nil costs only a nil check per lookup.
	hits   *obs.Counter
	misses *obs.Counter
}

// NewFootprintCache returns an empty cache over the map.
func NewFootprintCache(m *Map) *FootprintCache {
	return &FootprintCache{m: m, fps: make(map[model.PhotoID]Footprint)}
}

// Map returns the underlying PoI map.
func (c *FootprintCache) Map() *Map { return c.m }

// SetMetrics installs hit/miss counters. Call before the cache is shared
// across goroutines (typically right after NewFootprintCache); nil counters
// disable the corresponding count.
func (c *FootprintCache) SetMetrics(hits, misses *obs.Counter) {
	c.hits = hits
	c.misses = misses
}

// Of returns the (possibly memoized) footprint of the photo.
func (c *FootprintCache) Of(p model.Photo) Footprint {
	c.mu.RLock()
	fp, ok := c.fps[p.ID]
	c.mu.RUnlock()
	if ok {
		c.hits.Inc()
		return fp
	}
	c.misses.Inc()
	// Compile outside the lock: Map is immutable and footprints are pure
	// functions of the photo, so two racing compilations agree.
	fp = c.m.Footprint(p)
	c.mu.Lock()
	if prev, ok := c.fps[p.ID]; ok {
		fp = prev // keep the first published copy
	} else {
		c.fps[p.ID] = fp
	}
	c.mu.Unlock()
	return fp
}

// Len returns the number of memoized footprints.
func (c *FootprintCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.fps)
}

// Invalidate drops the memoized footprint of a photo, forcing the next Of
// to recompile it. It exists for callers whose photo metadata can be
// corrected after the fact (e.g. a re-announced photo with fixed
// orientation); footprints of unchanged photos are never wrong, so most
// callers never need it.
func (c *FootprintCache) Invalidate(id model.PhotoID) {
	c.mu.Lock()
	delete(c.fps, id)
	c.mu.Unlock()
}
