package coverage

import (
	"math"
	"math/rand"
	"testing"

	"photodtn/internal/geo"
	"photodtn/internal/model"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// photoAt builds a photo at loc looking along dir (radians) with the given
// range and a 60° FOV.
func photoAt(id uint32, loc geo.Vec, dir, rng float64) model.Photo {
	return model.Photo{
		ID:          model.MakePhotoID(1, id),
		Owner:       1,
		Location:    loc,
		Range:       rng,
		FOV:         geo.Radians(60),
		Orientation: dir,
		Size:        4 << 20,
	}
}

func singlePoIMap(theta float64) *Map {
	return NewMap([]model.PoI{model.NewPoI(0, geo.Vec{X: 0, Y: 0})}, theta)
}

func TestCoverageCmp(t *testing.T) {
	tests := []struct {
		name string
		a, b Coverage
		want int
	}{
		{"equal", Coverage{1, 2}, Coverage{1, 2}, 0},
		{"point dominates", Coverage{2, 0}, Coverage{1, 100}, 1},
		{"aspect breaks tie", Coverage{1, 3}, Coverage{1, 2}, 1},
		{"less point", Coverage{0, 100}, Coverage{1, 0}, -1},
		{"epsilon equal", Coverage{1, 2}, Coverage{1 + 1e-12, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Cmp(tt.b); got != tt.want {
				t.Fatalf("Cmp = %d, want %d", got, tt.want)
			}
			if got := tt.b.Cmp(tt.a); got != -tt.want {
				t.Fatalf("reverse Cmp = %d, want %d", got, -tt.want)
			}
		})
	}
}

func TestCoverageArithmetic(t *testing.T) {
	a := Coverage{1, 2}
	if got := a.Add(Coverage{3, 4}); got != (Coverage{4, 6}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(Coverage{0.5, 1}); got != (Coverage{0.5, 1}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(0.5); got != (Coverage{0.5, 1}) {
		t.Fatalf("Scale = %v", got)
	}
	if !(Coverage{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestFootprintCoversPoI(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	// Camera 50m east of the PoI, looking west: PoI straight ahead.
	p := photoAt(1, geo.Vec{X: 50}, math.Pi, 100)
	fp := m.Footprint(p)
	if len(fp.Entries) != 1 {
		t.Fatalf("footprint entries = %d, want 1", len(fp.Entries))
	}
	e := fp.Entries[0]
	if e.PoI != 0 {
		t.Fatalf("covered PoI = %d", e.PoI)
	}
	// View direction PoI→camera is east (0); arc = [−30°, +30°].
	if !e.Arc.Contains(geo.Radians(29)) || !e.Arc.Contains(geo.Radians(331)) {
		t.Fatalf("arc %v not centred on view direction", e.Arc)
	}
	if !almostEqual(e.Arc.Width, geo.Radians(60), eps) {
		t.Fatalf("arc width = %v, want 60°", geo.Degrees(e.Arc.Width))
	}
}

func TestFootprintMisses(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	tests := []struct {
		name  string
		photo model.Photo
	}{
		{"too far", photoAt(1, geo.Vec{X: 200}, math.Pi, 100)},
		{"looking away", photoAt(2, geo.Vec{X: 50}, 0, 100)},
		{"outside fov", photoAt(3, geo.Vec{X: 50, Y: 50}, math.Pi, 100)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if fp := m.Footprint(tt.photo); !fp.IsEmpty() {
				t.Fatalf("expected empty footprint, got %+v", fp)
			}
		})
	}
}

func TestStateAddAndAspectUnion(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	st := m.NewState()

	// First photo views the PoI from the east.
	g1 := st.AddPhoto(photoAt(1, geo.Vec{X: 50}, math.Pi, 100))
	if g1.Point != 1 || !almostEqual(g1.Aspect, geo.Radians(60), eps) {
		t.Fatalf("first gain = %v", g1)
	}
	// Identical second photo: zero gain.
	g2 := st.AddPhoto(photoAt(2, geo.Vec{X: 50}, math.Pi, 100))
	if g2.Point != 0 || !almostEqual(g2.Aspect, 0, eps) {
		t.Fatalf("duplicate gain = %v", g2)
	}
	// Third photo views from the north: disjoint arc, no new point.
	g3 := st.AddPhoto(photoAt(3, geo.Vec{Y: 50}, -math.Pi/2, 100))
	if g3.Point != 0 || !almostEqual(g3.Aspect, geo.Radians(60), eps) {
		t.Fatalf("north gain = %v", g3)
	}
	// Fourth photo views from 30°: overlaps the east arc by half.
	loc := geo.FromAngle(geo.Radians(30)).Scale(50)
	g4 := st.AddPhoto(photoAt(4, loc, geo.Radians(210), 100))
	if g4.Point != 0 || !almostEqual(g4.Aspect, geo.Radians(30), 1e-6) {
		t.Fatalf("overlap gain = %v, want 30° aspect", g4)
	}
	want := Coverage{Point: 1, Aspect: geo.Radians(150)}
	if st.Coverage().Cmp(want) != 0 {
		t.Fatalf("total = %v, want %v", st.Coverage(), want)
	}
	if st.NumCovered() != 1 || !st.PoICovered(0) {
		t.Fatal("PoI cover bookkeeping wrong")
	}
	if !almostEqual(st.AspectOf(0), geo.Radians(150), 1e-6) {
		t.Fatalf("AspectOf = %v", geo.Degrees(st.AspectOf(0)))
	}
}

func TestStateGainMatchesAdd(t *testing.T) {
	pois := []model.PoI{
		model.NewPoI(0, geo.Vec{X: 0, Y: 0}),
		model.NewPoI(1, geo.Vec{X: 300, Y: 0}),
		model.NewPoI(2, geo.Vec{X: 0, Y: 300}),
	}
	m := NewMap(pois, geo.Radians(30))
	rng := rand.New(rand.NewSource(42))
	st := m.NewState()
	for i := 0; i < 200; i++ {
		p := photoAt(uint32(i),
			geo.Vec{X: rng.Float64()*600 - 150, Y: rng.Float64()*600 - 150},
			rng.Float64()*geo.TwoPi, 80+rng.Float64()*120)
		fp := m.Footprint(p)
		gain := st.Gain(fp)
		got := st.Add(fp)
		if gain.Cmp(got) != 0 {
			t.Fatalf("photo %d: Gain %v != realised %v", i, gain, got)
		}
	}
}

func TestStateUnion(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	a := m.NewState()
	a.AddPhoto(photoAt(1, geo.Vec{X: 50}, math.Pi, 100)) // east view
	b := m.NewState()
	b.AddPhoto(photoAt(2, geo.Vec{Y: 50}, -math.Pi/2, 100)) // north view
	b.AddPhoto(photoAt(3, geo.Vec{X: 50}, math.Pi, 100))    // east view (dup of a)

	a.Union(b)
	want := Coverage{Point: 1, Aspect: geo.Radians(120)}
	if a.Coverage().Cmp(want) != 0 {
		t.Fatalf("union coverage = %v, want %v", a.Coverage(), want)
	}
	// Union with nil is a no-op.
	a.Union(nil)
	if a.Coverage().Cmp(want) != 0 {
		t.Fatal("nil union changed coverage")
	}
}

func TestStateUnionMatchesBatch(t *testing.T) {
	pois := make([]model.PoI, 0, 20)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		pois = append(pois, model.NewPoI(i, geo.Vec{X: rng.Float64() * 2000, Y: rng.Float64() * 2000}))
	}
	m := NewMap(pois, geo.Radians(30))
	var all model.PhotoList
	mk := func(n int) (model.PhotoList, *State) {
		st := m.NewState()
		var l model.PhotoList
		for i := 0; i < n; i++ {
			p := photoAt(uint32(len(all)),
				geo.Vec{X: rng.Float64() * 2000, Y: rng.Float64() * 2000},
				rng.Float64()*geo.TwoPi, 100+rng.Float64()*100)
			l = append(l, p)
			all = append(all, p)
			st.AddPhoto(p)
		}
		return l, st
	}
	_, sa := mk(40)
	_, sb := mk(40)
	sa.Union(sb)
	direct := m.Of(all)
	if sa.Coverage().Cmp(direct) != 0 {
		t.Fatalf("union %v != direct %v", sa.Coverage(), direct)
	}
}

func TestStateCloneIsolation(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	a := m.NewState()
	a.AddPhoto(photoAt(1, geo.Vec{X: 50}, math.Pi, 100))
	c := a.Clone()
	c.AddPhoto(photoAt(2, geo.Vec{Y: 50}, -math.Pi/2, 100))
	if a.Coverage().Cmp(Coverage{1, geo.Radians(60)}) != 0 {
		t.Fatalf("clone mutation leaked: %v", a.Coverage())
	}
	if c.Coverage().Cmp(Coverage{1, geo.Radians(120)}) != 0 {
		t.Fatalf("clone missing addition: %v", c.Coverage())
	}
}

func TestStateReset(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	st := m.NewState()
	st.AddPhoto(photoAt(1, geo.Vec{X: 50}, math.Pi, 100))
	st.Reset()
	if !st.Coverage().IsZero() || st.NumCovered() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestWeightedPoIs(t *testing.T) {
	pois := []model.PoI{
		{ID: 0, Location: geo.Vec{X: 0}, Weight: 5},
		{ID: 1, Location: geo.Vec{X: 1000}, Weight: 1},
	}
	m := NewMap(pois, geo.Radians(30))
	st := m.NewState()
	g := st.AddPhoto(photoAt(1, geo.Vec{X: 50}, math.Pi, 100))
	if g.Point != 5 || !almostEqual(g.Aspect, 5*geo.Radians(60), eps) {
		t.Fatalf("weighted gain = %v", g)
	}
	if m.TotalWeight() != 6 {
		t.Fatalf("TotalWeight = %v", m.TotalWeight())
	}
	pt, as := m.Normalized(st.Coverage())
	if !almostEqual(pt, 5.0/6, eps) || !almostEqual(as, 5*geo.Radians(60)/6, eps) {
		t.Fatalf("Normalized = %v %v", pt, as)
	}
}

func TestNonPositiveWeightDefaultsToUnit(t *testing.T) {
	m := NewMap([]model.PoI{{ID: 0, Location: geo.Vec{}, Weight: -3}}, geo.Radians(30))
	if m.PoI(0).Weight != 1 {
		t.Fatalf("weight = %v, want 1", m.PoI(0).Weight)
	}
}

func TestSoloCoverage(t *testing.T) {
	pois := []model.PoI{
		model.NewPoI(0, geo.Vec{X: 0}),
		model.NewPoI(1, geo.Vec{X: 30}),
	}
	m := NewMap(pois, geo.Radians(30))
	// Camera east of both PoIs, looking west, covers both.
	p := photoAt(1, geo.Vec{X: 80}, math.Pi, 100)
	c := m.SoloCoverage(p)
	if c.Point != 2 || !almostEqual(c.Aspect, 2*geo.Radians(60), eps) {
		t.Fatalf("SoloCoverage = %v", c)
	}
	// Irrelevant photo has zero solo coverage.
	if c := m.SoloCoverage(photoAt(2, geo.Vec{X: 5000}, 0, 100)); !c.IsZero() {
		t.Fatalf("irrelevant SoloCoverage = %v", c)
	}
}

func TestMapOfEmpty(t *testing.T) {
	m := singlePoIMap(geo.Radians(30))
	if c := m.Of(nil); !c.IsZero() {
		t.Fatalf("empty collection coverage = %v", c)
	}
}

func TestEmptyMap(t *testing.T) {
	m := NewMap(nil, geo.Radians(30))
	p := photoAt(1, geo.Vec{X: 50}, math.Pi, 100)
	if fp := m.Footprint(p); !fp.IsEmpty() {
		t.Fatal("footprint on empty map should be empty")
	}
	pt, as := m.Normalized(Coverage{})
	if pt != 0 || as != 0 {
		t.Fatal("Normalized on empty map should be zero")
	}
}

// TestGridMatchesBruteForce cross-checks the spatial grid against a direct
// scan over all PoIs for many random photos.
func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pois := make([]model.PoI, 0, 250)
	for i := 0; i < 250; i++ {
		pois = append(pois, model.NewPoI(i, geo.Vec{X: rng.Float64() * 6300, Y: rng.Float64() * 6300}))
	}
	m := NewMap(pois, geo.Radians(30))
	for trial := 0; trial < 500; trial++ {
		p := photoAt(uint32(trial),
			geo.Vec{X: rng.Float64()*7000 - 350, Y: rng.Float64()*7000 - 350},
			rng.Float64()*geo.TwoPi, 50+rng.Float64()*200)
		fp := m.Footprint(p)
		got := make(map[int]bool, len(fp.Entries))
		for _, e := range fp.Entries {
			got[e.PoI] = true
		}
		sec := p.Sector()
		for i, poi := range pois {
			want := sec.Contains(poi.Location)
			if got[i] != want {
				t.Fatalf("trial %d PoI %d: grid=%v brute=%v", trial, i, got[i], want)
			}
		}
	}
}

func TestMapCellSizeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pois := make([]model.PoI, 0, 50)
	for i := 0; i < 50; i++ {
		pois = append(pois, model.NewPoI(i, geo.Vec{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}))
	}
	photos := make(model.PhotoList, 0, 30)
	for i := 0; i < 30; i++ {
		photos = append(photos, photoAt(uint32(i),
			geo.Vec{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			rng.Float64()*geo.TwoPi, 100+rng.Float64()*100))
	}
	base := NewMapWithCellSize(pois, geo.Radians(30), 50).Of(photos)
	for _, cell := range []float64{10, 100, 1000, 10000, -1} {
		got := NewMapWithCellSize(pois, geo.Radians(30), cell).Of(photos)
		if got.Cmp(base) != 0 {
			t.Fatalf("cell %v: coverage %v != %v", cell, got, base)
		}
	}
}

// TestCoverageMonotoneAndOrderIndependent: adding photos never decreases
// coverage, and the total is independent of insertion order.
func TestCoverageMonotoneAndOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pois := make([]model.PoI, 0, 30)
	for i := 0; i < 30; i++ {
		pois = append(pois, model.NewPoI(i, geo.Vec{X: rng.Float64() * 1500, Y: rng.Float64() * 1500}))
	}
	m := NewMap(pois, geo.Radians(30))
	photos := make(model.PhotoList, 0, 60)
	for i := 0; i < 60; i++ {
		photos = append(photos, photoAt(uint32(i),
			geo.Vec{X: rng.Float64() * 1500, Y: rng.Float64() * 1500},
			rng.Float64()*geo.TwoPi, 100+rng.Float64()*100))
	}
	st := m.NewState()
	prev := Coverage{}
	for _, p := range photos {
		st.AddPhoto(p)
		if st.Coverage().Less(prev) {
			t.Fatal("coverage decreased")
		}
		prev = st.Coverage()
	}
	shuffled := photos.Clone()
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if got := m.Of(shuffled); got.Cmp(prev) != 0 {
		t.Fatalf("order dependence: %v vs %v", got, prev)
	}
}

// TestAspectGainSubmodular: the aspect gain of a fixed photo never grows as
// the base collection grows (diminishing returns), which the greedy
// selection relies on.
func TestAspectGainSubmodular(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := singlePoIMap(geo.Radians(30))
	probe := photoAt(1000, geo.Vec{X: 60}, math.Pi, 100)
	fp := m.Footprint(probe)
	st := m.NewState()
	prevGain := st.Gain(fp)
	for i := 0; i < 40; i++ {
		loc := geo.FromAngle(rng.Float64() * geo.TwoPi).Scale(40 + rng.Float64()*50)
		st.AddPhoto(photoAt(uint32(i), loc, loc.Angle()+math.Pi, 150))
		g := st.Gain(fp)
		if g.Cmp(prevGain) > 0 {
			t.Fatalf("gain increased from %v to %v as base grew", prevGain, g)
		}
		prevGain = g
	}
}
