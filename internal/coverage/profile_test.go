package coverage

import (
	"math"
	"math/rand"
	"testing"

	"photodtn/internal/geo"
	"photodtn/internal/model"
)

func TestAspectProfileMeasureArc(t *testing.T) {
	// Base weight 1, the "main entrance" arc [0°, 90°] weighs 5.
	p := AspectProfile{
		Base:     1,
		Segments: []WeightedArc{{Arc: geo.NewArc(0, geo.Radians(90)), Weight: 5}},
	}
	tests := []struct {
		name string
		arc  geo.Arc
		want float64
	}{
		{"entirely inside entrance", geo.NewArc(geo.Radians(10), geo.Radians(30)), 5 * geo.Radians(30)},
		{"entirely outside", geo.NewArc(geo.Radians(180), geo.Radians(30)), geo.Radians(30)},
		{"half in half out", geo.NewArc(geo.Radians(60), geo.Radians(60)), 5*geo.Radians(30) + geo.Radians(30)},
		{"empty", geo.NewArc(1, 0), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.MeasureArc(tt.arc); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("MeasureArc = %v, want %v", got, tt.want)
			}
		})
	}
	wantMax := 5*geo.Radians(90) + geo.Radians(270)
	if got := p.MaxAspect(); math.Abs(got-wantMax) > 1e-9 {
		t.Fatalf("MaxAspect = %v, want %v", got, wantMax)
	}
}

func TestUniformProfileIsIdentity(t *testing.T) {
	p := UniformProfile()
	a := geo.NewArc(1, 2)
	if got := p.MeasureArc(a); math.Abs(got-2) > 1e-12 {
		t.Fatalf("MeasureArc = %v", got)
	}
	if !p.normalized().isUniform() {
		t.Fatal("uniform profile not recognised")
	}
}

func TestProfileNormalization(t *testing.T) {
	p := AspectProfile{Base: 0, Segments: []WeightedArc{{Arc: geo.NewArc(0, 0), Weight: 9}}}
	n := p.normalized()
	if n.Base != 1 || len(n.Segments) != 0 {
		t.Fatalf("normalized = %+v", n)
	}
}

func TestMapWithAspectProfile(t *testing.T) {
	pois := []model.PoI{model.NewPoI(0, geo.Vec{})}
	// East-facing aspects weigh 4.
	entrance := AspectProfile{Base: 1, Segments: []WeightedArc{
		{Arc: geo.ArcAround(0, geo.Radians(30)), Weight: 4},
	}}
	m := NewMap(pois, geo.Radians(30), WithAspectProfile(0, entrance))

	// A photo viewing exactly from the east covers the entrance arc.
	east := photoAt(1, geo.Vec{X: 50}, math.Pi, 100)
	west := photoAt(2, geo.Vec{X: -50}, 0, 100)

	st := m.NewState()
	gEast := st.AddPhoto(east)
	wantEast := Coverage{Point: 1, Aspect: 4 * geo.Radians(60)}
	if gEast.Cmp(wantEast) != 0 {
		t.Fatalf("east gain = %v, want %v", gEast, wantEast)
	}
	gWest := st.AddPhoto(west)
	wantWest := Coverage{Point: 0, Aspect: geo.Radians(60)}
	if gWest.Cmp(wantWest) != 0 {
		t.Fatalf("west gain = %v, want %v", gWest, wantWest)
	}
	// Solo coverage uses the profile too.
	if got := m.SoloCoverage(east); got.Cmp(wantEast) != 0 {
		t.Fatalf("solo east = %v, want %v", got, wantEast)
	}
	// AspectProfileOf round trips.
	if m.AspectProfileOf(0).Segments[0].Weight != 4 {
		t.Fatal("profile not installed")
	}
	if !m.AspectProfileOf(99).isUniform() {
		t.Fatal("missing profile should be uniform")
	}
}

func TestWithAspectProfileIgnoresBadIndex(t *testing.T) {
	pois := []model.PoI{model.NewPoI(0, geo.Vec{})}
	m := NewMap(pois, geo.Radians(30),
		WithAspectProfile(-1, AspectProfile{Base: 2}),
		WithAspectProfile(5, AspectProfile{Base: 2}),
	)
	if len(m.profiles) != 0 {
		t.Fatal("out-of-range profiles installed")
	}
}

func TestProfileGainMatchesAddAndUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pois := []model.PoI{
		model.NewPoI(0, geo.Vec{}),
		model.NewPoI(1, geo.Vec{X: 400}),
	}
	profile := AspectProfile{Base: 0.5, Segments: []WeightedArc{
		{Arc: geo.NewArc(0, 1), Weight: 3},
		{Arc: geo.NewArc(2, 1.5), Weight: 2},
	}}
	m := NewMap(pois, geo.Radians(30), WithAspectProfile(0, profile))

	mk := func(n int) (model.PhotoList, *State) {
		st := m.NewState()
		var l model.PhotoList
		for i := 0; i < n; i++ {
			p := photoAt(uint32(rng.Uint32()),
				geo.Vec{X: rng.Float64()*600 - 100, Y: rng.Float64()*400 - 200},
				rng.Float64()*geo.TwoPi, 80+rng.Float64()*100)
			l = append(l, p)
			// Gain must equal the realised delta.
			fp := m.Footprint(p)
			want := st.Gain(fp)
			got := st.Add(fp)
			if want.Cmp(got) != 0 {
				t.Fatalf("photo %d: gain %v != realised %v", i, want, got)
			}
		}
		return l, st
	}
	la, sa := mk(60)
	lb, sb := mk(60)
	sa.Union(sb)
	direct := m.Of(append(la.Clone(), lb...))
	if sa.Coverage().Cmp(direct) != 0 {
		t.Fatalf("union %v != direct %v", sa.Coverage(), direct)
	}
}

func TestProfileChangesGreedyPreference(t *testing.T) {
	// Without a profile the greedy is indifferent between two fresh views;
	// with a heavy east profile it must pick the east view first.
	pois := []model.PoI{model.NewPoI(0, geo.Vec{})}
	entrance := AspectProfile{Base: 1, Segments: []WeightedArc{
		{Arc: geo.ArcAround(0, geo.Radians(30)), Weight: 10},
	}}
	m := NewMap(pois, geo.Radians(30), WithAspectProfile(0, entrance))
	east := photoAt(10, geo.Vec{X: 50}, math.Pi, 100)
	north := photoAt(2, geo.Vec{Y: 50}, -math.Pi/2, 100) // lower ID than east
	st := m.NewState()
	ge, gn := st.Gain(m.Footprint(east)), st.Gain(m.Footprint(north))
	if ge.Cmp(gn) <= 0 {
		t.Fatalf("east gain %v should exceed north gain %v under the profile", ge, gn)
	}
}
