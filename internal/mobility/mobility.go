// Package mobility provides a geometric mobility substrate: random-waypoint
// trajectories over the deployment region, contact extraction by radio
// range, and a photo workload whose capture positions lie on the
// photographers' actual paths.
//
// The paper's evaluation drives the DTN from recorded Bluetooth contact
// traces and places photos uniformly (Table I); this package is the
// repository's extension for end-to-end geometric experiments, where the
// same trajectories explain who meets whom AND where photos are taken —
// e.g. photographers passing a PoI actually photograph it. The random
// waypoint model is also one of the mobility models for which the
// exponential inter-contact assumption of §III-B is known to hold
// approximately (the paper cites exactly this line of work).
package mobility

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/sim"
	"photodtn/internal/trace"
	"photodtn/internal/workload"
)

// Config parameterises the random-waypoint world.
type Config struct {
	// Nodes is the number of participants (IDs 1..Nodes).
	Nodes int
	// Region is the deployment area.
	Region geo.Rect
	// SpeedMin and SpeedMax bound the leg speed in m/s (pedestrians:
	// 0.5–2 m/s).
	SpeedMin float64
	SpeedMax float64
	// PauseMax bounds the pause at each waypoint in seconds.
	PauseMax float64
	// Range is the radio range in metres; two nodes are in contact while
	// within it.
	Range float64
	// Step is the contact-detection sampling period in seconds (a model of
	// the Bluetooth scan interval).
	Step float64
	// Span is the scenario length in seconds.
	Span float64
	// Seed drives the deterministic RNG.
	Seed int64
}

// DefaultConfig returns a pedestrian scenario over the paper's 6300 m
// square: 40 nodes, 1 km Wi-Fi-ish range would be absurd, so 50 m.
func DefaultConfig(nodes int, span float64) Config {
	return Config{
		Nodes:    nodes,
		Region:   geo.Square(6300),
		SpeedMin: 0.5,
		SpeedMax: 2.0,
		PauseMax: 600,
		Range:    50,
		Step:     60,
		Span:     span,
	}
}

// ErrBadMobility reports an invalid configuration.
var ErrBadMobility = errors.New("mobility: bad config")

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("%w: need nodes", ErrBadMobility)
	case c.Region.Area() <= 0:
		return fmt.Errorf("%w: empty region", ErrBadMobility)
	case c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin:
		return fmt.Errorf("%w: bad speed bounds", ErrBadMobility)
	case c.PauseMax < 0:
		return fmt.Errorf("%w: negative pause", ErrBadMobility)
	case c.Range <= 0:
		return fmt.Errorf("%w: non-positive range", ErrBadMobility)
	case c.Step <= 0:
		return fmt.Errorf("%w: non-positive step", ErrBadMobility)
	case c.Span <= 0:
		return fmt.Errorf("%w: non-positive span", ErrBadMobility)
	}
	return nil
}

// waypoint is a trajectory vertex: the node is at Pos at Time.
type waypoint struct {
	time float64
	pos  geo.Vec
}

// Track is one node's piecewise-linear trajectory (including pauses, which
// appear as repeated positions).
type Track struct {
	points []waypoint
}

// At returns the node's position at the given time, clamping beyond the
// ends.
func (t *Track) At(at float64) geo.Vec {
	n := len(t.points)
	if n == 0 {
		return geo.Vec{}
	}
	if at <= t.points[0].time {
		return t.points[0].pos
	}
	if at >= t.points[n-1].time {
		return t.points[n-1].pos
	}
	// Find the segment containing at.
	i := sort.Search(n, func(k int) bool { return t.points[k].time > at })
	a, b := t.points[i-1], t.points[i]
	if b.time == a.time {
		return b.pos
	}
	f := (at - a.time) / (b.time - a.time)
	return a.pos.Add(b.pos.Sub(a.pos).Scale(f))
}

// Span returns the trajectory's end time.
func (t *Track) Span() float64 {
	if len(t.points) == 0 {
		return 0
	}
	return t.points[len(t.points)-1].time
}

// GenerateTracks draws random-waypoint trajectories for every node. The
// returned slice is indexed by node ID (index 0 is nil: the command center
// does not roam).
func GenerateTracks(cfg Config) ([]*Track, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tracks := make([]*Track, cfg.Nodes+1)
	for n := 1; n <= cfg.Nodes; n++ {
		tracks[n] = genTrack(cfg, rng)
	}
	return tracks, nil
}

func genTrack(cfg Config, rng *rand.Rand) *Track {
	t := &Track{}
	now := 0.0
	pos := randPoint(cfg.Region, rng)
	t.points = append(t.points, waypoint{time: 0, pos: pos})
	for now < cfg.Span {
		dest := randPoint(cfg.Region, rng)
		speed := cfg.SpeedMin + rng.Float64()*(cfg.SpeedMax-cfg.SpeedMin)
		now += dest.Dist(pos) / speed
		pos = dest
		t.points = append(t.points, waypoint{time: now, pos: pos})
		if cfg.PauseMax > 0 {
			now += rng.Float64() * cfg.PauseMax
			t.points = append(t.points, waypoint{time: now, pos: pos})
		}
	}
	return t
}

// ExtractContacts scans the trajectories at the configured step and emits
// the contact trace: a contact opens when two nodes come within Range and
// closes when they separate — what a periodic Bluetooth scan would record.
func ExtractContacts(cfg Config, tracks []*Track) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(tracks) != cfg.Nodes+1 {
		return nil, fmt.Errorf("%w: want %d tracks, got %d", ErrBadMobility, cfg.Nodes+1, len(tracks))
	}
	tr := &trace.Trace{Nodes: cfg.Nodes}
	open := make(map[[2]model.NodeID]float64) // pair → contact start
	r2 := cfg.Range * cfg.Range
	positions := make([]geo.Vec, cfg.Nodes+1)
	for at := 0.0; at <= cfg.Span; at += cfg.Step {
		for n := 1; n <= cfg.Nodes; n++ {
			positions[n] = tracks[n].At(at)
		}
		for a := 1; a <= cfg.Nodes; a++ {
			for b := a + 1; b <= cfg.Nodes; b++ {
				d := positions[a].Sub(positions[b])
				key := [2]model.NodeID{model.NodeID(a), model.NodeID(b)}
				within := d.Dot(d) <= r2
				_, isOpen := open[key]
				switch {
				case within && !isOpen:
					open[key] = at
				case !within && isOpen:
					tr.Contacts = append(tr.Contacts, trace.Contact{
						Start: open[key], End: at, A: key[0], B: key[1],
					})
					delete(open, key)
				}
			}
		}
	}
	for key, start := range open {
		tr.Contacts = append(tr.Contacts, trace.Contact{
			Start: start, End: cfg.Span, A: key[0], B: key[1],
		})
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: extracted trace invalid: %w", err)
	}
	return tr, nil
}

// PhotoWorkload draws a Poisson photo process like workload.GeneratePhotos,
// but each photo is taken at the photographer's actual position on its
// trajectory, looking in a uniformly random direction (Table I metadata
// otherwise).
func PhotoWorkload(cfg Config, wl workload.Config, tracks []*Track, rng *rand.Rand) ([]sim.PhotoEvent, error) {
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	if len(tracks) != cfg.Nodes+1 {
		return nil, fmt.Errorf("%w: want %d tracks, got %d", ErrBadMobility, cfg.Nodes+1, len(tracks))
	}
	if wl.Nodes != cfg.Nodes {
		return nil, fmt.Errorf("%w: workload has %d nodes, mobility %d", ErrBadMobility, wl.Nodes, cfg.Nodes)
	}
	events := workload.GeneratePhotos(wl, rng)
	for i := range events {
		e := &events[i]
		e.Photo.Location = tracks[e.Node].At(e.Time)
	}
	return events, nil
}

// AimedPhotoWorkload is PhotoWorkload with intent: when a photographer is
// within shooting distance of a PoI (the photo's own coverage range), the
// photo is aimed at the nearest such PoI with a little aiming noise;
// otherwise the orientation stays random. This models participants actually
// photographing the targets they walk past, and makes geometric scenarios
// produce meaningful coverage.
func AimedPhotoWorkload(cfg Config, wl workload.Config, tracks []*Track, pois []model.PoI, rng *rand.Rand) ([]sim.PhotoEvent, error) {
	events, err := PhotoWorkload(cfg, wl, tracks, rng)
	if err != nil {
		return nil, err
	}
	for i := range events {
		p := &events[i].Photo
		best := -1
		bestDist := p.Range
		for j, poi := range pois {
			if d := p.Location.Dist(poi.Location); d <= bestDist {
				best, bestDist = j, d
			}
		}
		if best < 0 {
			continue
		}
		aim := pois[best].Location.Sub(p.Location).Angle()
		p.Orientation = geo.NormalizeAngle(aim + rng.NormFloat64()*geo.Radians(5))
	}
	return events, nil
}

func randPoint(r geo.Rect, rng *rand.Rand) geo.Vec {
	return geo.Vec{
		X: r.Min.X + rng.Float64()*r.Width(),
		Y: r.Min.Y + rng.Float64()*r.Height(),
	}
}
