package mobility

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"photodtn/internal/core"
	"photodtn/internal/coverage"
	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/sim"
	"photodtn/internal/workload"
)

func smallConfig(seed int64) Config {
	return Config{
		Nodes:    8,
		Region:   geo.Square(1000),
		SpeedMin: 1,
		SpeedMax: 2,
		PauseMax: 120,
		Range:    80,
		Step:     30,
		Span:     4 * 3600,
		Seed:     seed,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := smallConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no nodes", func(c *Config) { c.Nodes = 0 }},
		{"empty region", func(c *Config) { c.Region = geo.Rect{} }},
		{"zero speed", func(c *Config) { c.SpeedMin = 0 }},
		{"speed bounds flipped", func(c *Config) { c.SpeedMax = c.SpeedMin / 2 }},
		{"negative pause", func(c *Config) { c.PauseMax = -1 }},
		{"zero range", func(c *Config) { c.Range = 0 }},
		{"zero step", func(c *Config) { c.Step = 0 }},
		{"zero span", func(c *Config) { c.Span = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := smallConfig(1)
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrBadMobility) {
				t.Fatalf("err = %v", err)
			}
		})
	}
}

func TestGenerateTracksStayInRegion(t *testing.T) {
	cfg := smallConfig(2)
	tracks, err := GenerateTracks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != cfg.Nodes+1 || tracks[0] != nil {
		t.Fatalf("track layout wrong: %d", len(tracks))
	}
	for n := 1; n <= cfg.Nodes; n++ {
		tr := tracks[n]
		if tr.Span() < cfg.Span {
			t.Fatalf("node %d trajectory ends at %v < span", n, tr.Span())
		}
		for at := 0.0; at <= cfg.Span; at += 97 {
			p := tr.At(at)
			if !cfg.Region.Contains(p) {
				t.Fatalf("node %d at %v outside region: %v", n, at, p)
			}
		}
	}
}

func TestTrackSpeedBounds(t *testing.T) {
	cfg := smallConfig(3)
	cfg.PauseMax = 0 // isolate motion
	tracks, err := GenerateTracks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracks[1]
	const dt = 5.0
	for at := 0.0; at+dt <= cfg.Span; at += dt {
		d := tr.At(at).Dist(tr.At(at + dt))
		speed := d / dt
		// Crossing a waypoint mid-interval can only slow the apparent
		// speed, so only the upper bound is strict.
		if speed > cfg.SpeedMax+1e-9 {
			t.Fatalf("speed %v at t=%v exceeds max", speed, at)
		}
	}
}

func TestTrackAtEdges(t *testing.T) {
	cfg := smallConfig(4)
	tracks, _ := GenerateTracks(cfg)
	tr := tracks[1]
	if tr.At(-100) != tr.At(0) {
		t.Fatal("before-start position should clamp")
	}
	if tr.At(tr.Span()+100) != tr.At(tr.Span()) {
		t.Fatal("after-end position should clamp")
	}
	var empty Track
	if empty.At(5) != (geo.Vec{}) || empty.Span() != 0 {
		t.Fatal("empty track should be at origin")
	}
}

func TestExtractContactsMatchGeometry(t *testing.T) {
	cfg := smallConfig(5)
	tracks, err := GenerateTracks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ExtractContacts(cfg, tracks)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("no contacts in a dense pedestrian scenario")
	}
	// Every contact interval must correspond to nodes within range at its
	// sampled midpoint (quantised to the step grid).
	for _, c := range tr.Contacts {
		mid := math.Floor((c.Start+c.End)/2/cfg.Step) * cfg.Step
		if mid < c.Start {
			mid = c.Start
		}
		d := tracks[c.A].At(mid).Dist(tracks[c.B].At(mid))
		if d > cfg.Range+1e-6 {
			t.Fatalf("contact %+v: nodes %.1f m apart at t=%v", c, d, mid)
		}
	}
	// And the trace must be engine-ready.
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractContactsOracle(t *testing.T) {
	// Independent oracle: for random (pair, grid time), in-contact per the
	// trace must equal within-range per the geometry.
	cfg := smallConfig(6)
	tracks, _ := GenerateTracks(cfg)
	tr, err := ExtractContacts(cfg, tracks)
	if err != nil {
		t.Fatal(err)
	}
	inContact := func(a, b int, at float64) bool {
		for _, c := range tr.Contacts {
			if int(c.A) == a && int(c.B) == b && at >= c.Start && at < c.End {
				return true
			}
		}
		return false
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		a := 1 + rng.Intn(cfg.Nodes)
		b := 1 + rng.Intn(cfg.Nodes)
		if a >= b {
			continue
		}
		at := math.Floor(rng.Float64()*cfg.Span/cfg.Step) * cfg.Step
		want := tracks[a].At(at).Dist(tracks[b].At(at)) <= cfg.Range
		if got := inContact(a, b, at); got != want {
			t.Fatalf("pair (%d,%d) at %v: trace=%v geometry=%v", a, b, at, got, want)
		}
	}
}

func TestExtractContactsTrackCountMismatch(t *testing.T) {
	cfg := smallConfig(8)
	if _, err := ExtractContacts(cfg, nil); !errors.Is(err, ErrBadMobility) {
		t.Fatalf("err = %v", err)
	}
}

func TestPhotoWorkloadOnTrajectories(t *testing.T) {
	cfg := smallConfig(9)
	tracks, _ := GenerateTracks(cfg)
	wl := workload.Default(cfg.Nodes, cfg.Span)
	wl.Region = cfg.Region
	wl.PhotosPerHour = 60
	rng := rand.New(rand.NewSource(10))
	events, err := PhotoWorkload(cfg, wl, tracks, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no photos")
	}
	for _, e := range events {
		want := tracks[e.Node].At(e.Time)
		if e.Photo.Location != want {
			t.Fatalf("photo not on trajectory: %v vs %v", e.Photo.Location, want)
		}
		if err := e.Photo.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPhotoWorkloadNodeMismatch(t *testing.T) {
	cfg := smallConfig(11)
	tracks, _ := GenerateTracks(cfg)
	wl := workload.Default(cfg.Nodes+5, cfg.Span)
	if _, err := PhotoWorkload(cfg, wl, tracks, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadMobility) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := GenerateTracks(smallConfig(12))
	b, _ := GenerateTracks(smallConfig(12))
	for n := 1; n < len(a); n++ {
		for at := 0.0; at < 1000; at += 111 {
			if a[n].At(at) != b[n].At(at) {
				t.Fatal("tracks not deterministic")
			}
		}
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(40, 24*3600).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAimedPhotoWorkload(t *testing.T) {
	cfg := smallConfig(13)
	tracks, _ := GenerateTracks(cfg)
	pois := []model.PoI{
		model.NewPoI(0, geo.Vec{X: 200, Y: 200}),
		model.NewPoI(1, geo.Vec{X: 800, Y: 800}),
	}
	wl := workload.Default(cfg.Nodes, cfg.Span)
	wl.Region = cfg.Region
	wl.PhotosPerHour = 200
	rng := rand.New(rand.NewSource(14))
	events, err := AimedPhotoWorkload(cfg, wl, tracks, pois, rng)
	if err != nil {
		t.Fatal(err)
	}
	aimed, covers := 0, 0
	for _, e := range events {
		p := e.Photo
		near := false
		for _, poi := range pois {
			if p.Location.Dist(poi.Location) <= p.Range {
				near = true
				if p.Sector().Contains(poi.Location) {
					covers++
				}
			}
		}
		if near {
			aimed++
		}
	}
	if aimed == 0 {
		t.Skip("no photographer passed a PoI in this realisation")
	}
	// Most photos taken within range of a PoI must actually cover it
	// (aim noise is 5°, FOV at least 30°).
	if float64(covers) < 0.8*float64(aimed) {
		t.Fatalf("only %d of %d near-PoI photos cover the PoI", covers, aimed)
	}
}

func TestMobilityEndToEndWithFramework(t *testing.T) {
	// The whole geometric pipeline drives the paper's framework: RWP
	// trajectories → contact trace + aimed photos → simulation.
	cfg := smallConfig(15)
	cfg.Range = 120
	tracks, err := GenerateTracks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ExtractContacts(cfg, tracks)
	if err != nil {
		t.Fatal(err)
	}
	pois := []model.PoI{
		model.NewPoI(0, geo.Vec{X: 300, Y: 300}),
		model.NewPoI(1, geo.Vec{X: 700, Y: 600}),
	}
	wl := workload.Default(cfg.Nodes, cfg.Span)
	wl.Region = cfg.Region
	wl.PhotosPerHour = 300
	rng := rand.New(rand.NewSource(16))
	photos, err := AimedPhotoWorkload(cfg, wl, tracks, pois, rng)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.Config{
		Trace:           tr,
		Map:             coverage.NewMap(pois, geo.Radians(30)),
		Photos:          photos,
		StorageBytes:    200 << 20,
		Gateways:        []model.NodeID{1},
		GatewayInterval: 3600,
		GatewayDuration: 60,
		Seed:            1,
	}
	res, err := sim.Run(simCfg, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered == 0 || res.Final.PointFrac == 0 {
		t.Fatalf("geometric pipeline delivered nothing: %+v", res.Final)
	}
}
