package selection

// Micro-benchmarks of the expected-coverage evaluator hot path: construction
// (scenario building), Gain (the per-candidate scan GreedyFill repeats), and
// Commit (folding a selected photo into every scenario). Scales cover the
// exact-enumeration regime (2^k scenarios) and the Monte Carlo regime.
//
// `make bench` runs these and emits BENCH_selection.json, the committed
// baseline of the performance trajectory.

import (
	"math/rand"
	"testing"

	"photodtn/internal/coverage"
	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/workload"
)

// benchScale is one (PoIs, photos, background nodes) operating point.
type benchScale struct {
	name     string
	pois     int
	bgNodes  int
	perNode  int
	poolSize int
	cfg      Config
}

func benchScales() []benchScale {
	return []benchScale{
		// 2^4 = 16 exact scenarios over a small map.
		{name: "exact16_pois60", pois: 60, bgNodes: 4, perNode: 30, poolSize: 60,
			cfg: Config{ExactLimit: 5, Samples: 24, Seed: 1}},
		// 2^5 = 32 exact scenarios over the paper-scale map.
		{name: "exact32_pois250", pois: 250, bgNodes: 5, perNode: 60, poolSize: 120,
			cfg: Config{ExactLimit: 5, Samples: 24, Seed: 1}},
		// Monte Carlo regime: 12 background nodes, 24 common-random samples.
		{name: "mc24_pois250", pois: 250, bgNodes: 12, perNode: 60, poolSize: 120,
			cfg: Config{ExactLimit: 5, Samples: 24, Seed: 1}},
	}
}

// benchInstance builds a deterministic evaluator workload at the scale.
func benchInstance(tb testing.TB, sc benchScale) (m *coverage.Map, ccFPs []coverage.Footprint, bg []bgNode, pool []Item) {
	tb.Helper()
	rng := rand.New(rand.NewSource(int64(11 + sc.pois)))
	wl := workload.Default(50, 3600)
	wl.NumPoIs = sc.pois
	// A dense deployment (vs the paper's sparse 6300 m box): photos must
	// actually hit PoIs for footprints — and hence evaluator work — to be
	// non-trivial. ~1500 m keeps most footprints non-empty at paper-default
	// coverage ranges.
	wl.Region = geo.Square(1500)
	// 1.5× margin: the arrival process is Poisson, so the realised count
	// fluctuates around PhotosPerHour · span.
	wl.PhotosPerHour = 1.5 * float64(sc.bgNodes*sc.perNode+sc.poolSize+40)
	poisList := workload.GeneratePoIs(wl, rng)
	m = coverage.NewMap(poisList, geo.Radians(30))
	var photos model.PhotoList
	for _, e := range workload.GeneratePhotos(wl, rng) {
		photos = append(photos, e.Photo)
	}
	need := sc.bgNodes*sc.perNode + sc.poolSize + 40
	if len(photos) < need {
		tb.Fatalf("workload too small: %d < %d", len(photos), need)
	}
	fpc := coverage.NewFootprintCache(m)
	ccFPs = footprintsOf(fpc, photos[:40])
	photos = photos[40:]
	for i := 0; i < sc.bgNodes; i++ {
		bg = append(bg, bgNode{
			p:   0.15 + 0.6*float64(i)/float64(sc.bgNodes),
			fps: footprintsOf(fpc, photos[i*sc.perNode:(i+1)*sc.perNode]),
		})
	}
	pool = BuildPool(fpc, photos[sc.bgNodes*sc.perNode:sc.bgNodes*sc.perNode+sc.poolSize])
	if len(pool) == 0 {
		tb.Fatal("empty candidate pool")
	}
	return m, ccFPs, bg, pool
}

func BenchmarkEvaluatorConstruct(b *testing.B) {
	for _, sc := range benchScales() {
		b.Run(sc.name, func(b *testing.B) {
			m, ccFPs, bg, _ := benchInstance(b, sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := NewEvaluator(m, sc.cfg, ccFPs, bg)
				if ev.Scenarios() == 0 {
					b.Fatal("no scenarios")
				}
				ev.Release()
			}
		})
	}
}

func BenchmarkEvaluatorGain(b *testing.B) {
	for _, sc := range benchScales() {
		b.Run(sc.name, func(b *testing.B) {
			m, ccFPs, bg, pool := benchInstance(b, sc)
			ev := NewEvaluator(m, sc.cfg, ccFPs, bg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.Gain(pool[i%len(pool)].FP)
			}
		})
	}
}

func BenchmarkEvaluatorCommit(b *testing.B) {
	for _, sc := range benchScales() {
		b.Run(sc.name, func(b *testing.B) {
			m, ccFPs, bg, pool := benchInstance(b, sc)
			ev := NewEvaluator(m, sc.cfg, ccFPs, bg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.Commit(pool[i%len(pool)].FP)
			}
		})
	}
}

func BenchmarkEvaluatorGreedyFill(b *testing.B) {
	for _, sc := range benchScales() {
		b.Run(sc.name, func(b *testing.B) {
			m, ccFPs, bg, pool := benchInstance(b, sc)
			capacity := int64(max(5, len(pool)/3)) * (4 << 20)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := NewEvaluator(m, sc.cfg, ccFPs, bg)
				if sel := GreedyFill(ev, pool, capacity); len(sel) == 0 {
					b.Fatal("selected nothing")
				}
				ev.Release()
			}
		})
		// The session variant recycles evaluator, heap, candidate, and
		// residual storage across iterations — the per-contact steady state
		// core.Scheme runs in.
		b.Run(sc.name+"/session", func(b *testing.B) {
			m, ccFPs, bg, pool := benchInstance(b, sc)
			capacity := int64(max(5, len(pool)/3)) * (4 << 20)
			s := NewSession()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := s.evaluator(m, sc.cfg, ccFPs, bg)
				if sel := GreedyFill(ev, pool, capacity); len(sel) == 0 {
					b.Fatal("selected nothing")
				}
				ev.Release()
			}
		})
	}
}

// BenchmarkEvaluatorGainStale measures one full stale-recompute storm — an
// evaluator construction, the initial gain scan, then several commits each
// followed by a refresh of every candidate (the worst case the CELF loop
// can hit). "fromscratch" is the pre-incremental machinery: a standalone
// evaluator re-walking full residuals; "incremental" is the session-backed
// dirty-PoI path, where a refresh re-walks only entries the commit touched.
func BenchmarkEvaluatorGainStale(b *testing.B) {
	const rounds = 6
	for _, sc := range benchScales() {
		run := func(b *testing.B, s *Session, cfg Config) {
			m, ccFPs, bg, pool := benchInstance(b, sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var ev *Evaluator
				var cands []*cand
				if s != nil {
					ev = s.evaluator(m, cfg, ccFPs, bg)
					s.cands.reset()
					cands = s.heapItems[:0]
				} else {
					ev = NewEvaluator(m, cfg, ccFPs, bg)
				}
				for _, it := range pool {
					var c *cand
					if s != nil {
						c = s.cands.take()
					} else {
						c = new(cand)
					}
					c.item = it
					cands = append(cands, c)
				}
				ev.gainBatch(cands)
				for r := 0; r < rounds; r++ {
					ev.Commit(cands[r].item.FP)
					for _, c := range cands {
						ev.gainCand(c, nil)
					}
				}
				if s != nil {
					s.heapItems = cands[:0]
				}
				ev.Release()
			}
		}
		b.Run(sc.name+"/fromscratch", func(b *testing.B) {
			cfg := sc.cfg
			cfg.DisableIncremental = true
			run(b, nil, cfg)
		})
		b.Run(sc.name+"/incremental", func(b *testing.B) {
			run(b, NewSession(), sc.cfg)
		})
	}
}
