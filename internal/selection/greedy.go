package selection

import (
	"container/heap"
	"sync"

	"photodtn/internal/coverage"
	"photodtn/internal/model"
)

// Item is a selection-pool entry: a candidate photo with its precompiled
// footprint.
type Item struct {
	Photo model.Photo
	FP    coverage.Footprint
}

// BuildPool compiles the union of photo collections into a deduplicated
// selection pool. Photos whose footprint is empty are excluded: they cover
// no PoI, so their expected coverage gain is identically zero and the
// greedy would never pick them (the paper's "irrelevant photos").
func BuildPool(fpc *coverage.FootprintCache, collections ...model.PhotoList) []Item {
	return appendPool(nil, make(map[model.PhotoID]bool), fpc, collections)
}

// appendPool is the shared pool-compilation loop behind BuildPool and
// Session.BuildPool; seen must be empty on entry.
func appendPool(pool []Item, seen map[model.PhotoID]bool, fpc *coverage.FootprintCache, collections []model.PhotoList) []Item {
	for _, col := range collections {
		for _, p := range col {
			if seen[p.ID] {
				continue
			}
			seen[p.ID] = true
			if fp := fpc.Of(p); !fp.IsEmpty() {
				pool = append(pool, Item{Photo: p, FP: fp})
			}
		}
	}
	return pool
}

// candHeap is a lazy-greedy (CELF) priority queue: items are ordered by
// their cached gain, which is an upper bound on the true current gain
// because expected coverage gains are diminishing in the selected set.
type candHeap struct {
	items []*cand
}

type cand struct {
	item Item
	// resid caches the candidate's footprint with the evaluator's base
	// subtracted out. The base is frozen once scenarios exist, so the
	// residual is compiled once (first gain query) and reused across every
	// CELF round.
	resid    coverage.Residual
	compiled bool
	// gcache decomposes the cached gain per residual entry so a stale
	// refresh after a Commit re-walks only the entries whose PoI the commit
	// touched (dirty-PoI invalidation). Unused when the evaluator runs with
	// DisableIncremental.
	gcache coverage.GainCache
	gain   coverage.Coverage
	round  int // selection round the gain was computed in
}

func (h *candHeap) Len() int { return len(h.items) }

func (h *candHeap) Less(i, j int) bool {
	c := h.items[i].gain.Cmp(h.items[j].gain)
	if c != 0 {
		return c > 0 // max-heap on gain
	}
	return h.items[i].item.Photo.ID < h.items[j].item.Photo.ID
}

func (h *candHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *candHeap) Push(x any) { h.items = append(h.items, x.(*cand)) }

func (h *candHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return it
}

// GreedyFill solves problem (3) of §III-D: greedily select photos from the
// pool into a node of the given byte capacity, maximising expected coverage
// at every step, until the storage is full or no photo adds any benefit.
// The returned photos are in selection order — which is also the
// transmission priority order the transfer phase uses.
//
// When the evaluator's Config.Parallel is set and the pool front is large
// enough, candidate gains are computed by a worker pool bounded by
// GOMAXPROCS. Gains are pure reads against the frozen scenario set and the
// heap order is a strict total order (gain, then photo ID), so the
// selection is bit-identical to the serial scan.
func GreedyFill(ev *Evaluator, pool []Item, capacity int64) model.PhotoList {
	h := &candHeap{}
	s := ev.sess
	if s != nil {
		s.cands.reset()
		h.items = s.heapItems[:0]
	} else {
		h.items = make([]*cand, 0, len(pool))
	}
	for _, it := range pool {
		if it.Photo.Size > capacity {
			continue
		}
		var c *cand
		if s != nil {
			c = s.cands.take()
		} else {
			c = &cand{}
		}
		c.item = it
		h.items = append(h.items, c)
	}
	// Initial scan: every candidate's gain against the fresh scenario set.
	ev.gainBatch(h.items)
	if !ev.noIncremental {
		// Zero-gain culling: gains are sums of non-negative per-entry
		// contributions that only shrink as commits grow the overlays, so a
		// gain that is exactly zero now is zero forever — the candidate can
		// never be selected (the loop stops before picking a zero-gain top)
		// and need not ride the heap at all.
		kept := h.items[:0]
		for _, c := range h.items {
			if !c.gain.IsZero() {
				kept = append(kept, c)
			}
		}
		for i := len(kept); i < len(h.items); i++ {
			h.items[i] = nil
		}
		h.items = kept
	}
	heap.Init(h)

	var selected model.PhotoList
	var stale []*cand // scratch for batched stale recomputation
	if s != nil {
		stale = s.stale[:0]
	}
	remaining := capacity
	round := 0
	for h.Len() > 0 && remaining > 0 {
		top := h.items[0]
		if top.item.Photo.Size > remaining {
			heap.Pop(h) // can never fit again; capacity only shrinks
			continue
		}
		if top.round != round {
			// Stale cached gain (lazy greedy). Recompute and reheapify; with
			// the parallel scan on, drain the whole stale run off the top and
			// recompute it in one batch — those candidates are the likeliest
			// next winners, and batch size is what feeds the worker pool.
			if w := ev.workers(h.Len()); w > 0 {
				stale = stale[:0]
				for h.Len() > 0 && h.items[0].round != round {
					stale = append(stale, heap.Pop(h).(*cand))
				}
				for _, c := range stale {
					c.round = round
				}
				ev.gainBatch(stale)
				for _, c := range stale {
					if !ev.noIncremental && c.gain.IsZero() {
						continue // culled for good
					}
					heap.Push(h, c)
				}
			} else {
				ev.gainCand(top, nil)
				ev.metrics.GainEvals.Inc()
				if !ev.noIncremental && top.gain.IsZero() {
					heap.Pop(h) // culled for good
					continue
				}
				top.round = round
				heap.Fix(h, 0)
			}
			continue
		}
		if top.gain.IsZero() {
			// Cached gains are upper bounds, so the maximum being zero
			// means nothing can still help: "no more benefit".
			break
		}
		heap.Pop(h)
		ev.Commit(top.item.FP)
		selected = append(selected, top.item.Photo)
		remaining -= top.item.Photo.Size
		round++
	}
	ev.metrics.Rounds.Add(int64(round))
	if s != nil {
		s.heapItems = h.items[:0]
		s.stale = stale[:0]
	}
	return selected
}

// gainCand refreshes a candidate's gain, compiling its residual on first
// use. A nil scratch selects the evaluator's serial scratch; concurrent
// callers must pass their own (each candidate is owned by exactly one
// worker at a time, so its gain cache needs no locking).
func (e *Evaluator) gainCand(c *cand, sc *coverage.GainScratch) {
	if !c.compiled {
		e.ds.CompileResidual(c.item.FP, &c.resid)
		c.compiled = true
		c.gcache.Reset()
	}
	if e.noIncremental {
		if sc != nil {
			c.gain = e.ds.GainResidual(&c.resid, sc)
		} else {
			c.gain = e.ds.GainCached(&c.resid)
		}
		return
	}
	c.gain = e.ds.GainResidualCached(&c.resid, &c.gcache, sc)
}

// gainBatch fills in the gain of every candidate, fanning out to a worker
// pool when the evaluator allows it. Results are written by index, so the
// outcome is independent of worker scheduling. The gain-eval counter is
// bumped once per batch, keeping instrumentation off the per-candidate path.
func (e *Evaluator) gainBatch(cands []*cand) {
	e.metrics.GainEvals.Add(int64(len(cands)))
	w := e.workers(len(cands))
	if w == 0 {
		for _, c := range cands {
			e.gainCand(c, nil)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(cands) + w - 1) / w
	for start := 0; start < len(cands); start += chunk {
		end := start + chunk
		if end > len(cands) {
			end = len(cands)
		}
		wg.Add(1)
		go func(cands []*cand) {
			defer wg.Done()
			sc := e.ds.NewScratch()
			for _, c := range cands {
				e.gainCand(c, sc)
			}
		}(cands[start:end])
	}
	wg.Wait()
}

// Alloc describes one side of a contact for reallocation: the node, its
// delivery probability, its storage capacity in bytes, and its current
// photo collection.
type Alloc struct {
	Node     model.NodeID
	P        float64
	Capacity int64
	Photos   model.PhotoList
}

// Result is the outcome of a reallocation: the target collection of each
// contacting node in selection order, and which node selected first.
type Result struct {
	// ASel and BSel are the photos selected for the respective Alloc
	// arguments, in selection (= transmission priority) order.
	ASel model.PhotoList
	BSel model.PhotoList
	// AFirst reports whether node A had the higher delivery probability and
	// therefore selected first.
	AFirst bool
}

// Reallocate runs the two-phase greedy of §III-D for a contact between
// nodes a and b:
//
//  1. The node with the higher delivery probability fills its storage from
//     the shared pool F_a ∪ F_b, maximising expected coverage against the
//     command center's collection and the background nodes (the valid
//     metadata cache entries).
//  2. The other node then fills its storage from the *same original pool*,
//     with the first node's selection added to the background at the first
//     node's delivery probability — so it avoids duplicating photos the
//     first node will likely deliver, yet may still double-select a photo
//     the first node is unlikely to deliver.
//
// ccPhotos is the command center's known collection (the ACK view);
// background holds the other valid metadata entries, excluding a and b
// themselves.
func Reallocate(fpc *coverage.FootprintCache, cfg Config, ccPhotos model.PhotoList, background []Participant, a, b Alloc) Result {
	s := AcquireSession()
	defer s.Release()
	return s.Reallocate(fpc, cfg, ccPhotos, background, a, b)
}

// Reallocate is the session form of the package-level Reallocate: identical
// selections, but every working buffer — pools, heaps, residual arenas,
// scenario overlays — comes from the session's recycled storage.
func (s *Session) Reallocate(fpc *coverage.FootprintCache, cfg Config, ccPhotos model.PhotoList, background []Participant, a, b Alloc) Result {
	m := fpc.Map()
	s.fps = s.fps[:0]
	ccFPs := s.footprints(fpc, ccPhotos)
	bg := s.bg[:0]
	for _, p := range background {
		if p.Node == a.Node || p.Node == b.Node || p.Node.IsCommandCenter() {
			continue // never double-count the contacting pair or the CC
		}
		bg = append(bg, bgNode{p: p.P, fps: s.footprints(fpc, p.Photos)})
	}
	s.bg = bg
	pool := s.BuildPool(fpc, a.Photos, b.Photos)

	first, second := a, b
	aFirst := true
	if b.P > a.P {
		first, second = b, a
		aFirst = false
	}

	ev := s.evaluator(m, cfg, ccFPs, bg)
	firstSel := GreedyFill(ev, pool, first.Capacity)
	ev.Release()

	bg2 := append(s.bg2[:0], bg...)
	bg2 = append(bg2, bgNode{p: first.P, fps: s.footprints(fpc, firstSel)})
	s.bg2 = bg2
	ev = s.evaluator(m, cfg, ccFPs, bg2)
	secondSel := GreedyFill(ev, pool, second.Capacity)
	ev.Release()

	if aFirst {
		return Result{ASel: firstSel, BSel: secondSel, AFirst: true}
	}
	return Result{ASel: secondSel, BSel: firstSel, AFirst: false}
}

// SelectForUpload runs the single-node variant used when a node meets the
// command center directly: choose which of the node's photos to upload,
// prioritising by marginal gain over what the command center already has.
// Returns photos in upload priority order.
func SelectForUpload(fpc *coverage.FootprintCache, cfg Config, ccPhotos, nodePhotos model.PhotoList) model.PhotoList {
	s := AcquireSession()
	defer s.Release()
	return s.SelectForUpload(fpc, cfg, ccPhotos, nodePhotos)
}

// SelectForUpload is the session form of the package-level SelectForUpload;
// identical selections from recycled storage.
func (s *Session) SelectForUpload(fpc *coverage.FootprintCache, cfg Config, ccPhotos, nodePhotos model.PhotoList) model.PhotoList {
	s.fps = s.fps[:0]
	ev := s.evaluator(fpc.Map(), cfg, s.footprints(fpc, ccPhotos), nil)
	defer ev.Release()
	pool := s.BuildPool(fpc, nodePhotos)
	// Upload capacity is bounded by the contact budget, not storage; pass
	// the total pool size and let the transfer phase cut it off.
	return GreedyFill(ev, pool, model.PhotoList(nodePhotos).TotalSize())
}
