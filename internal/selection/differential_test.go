package selection

// Differential tests of the scenario-delta evaluator: the optimised
// implementation (dense states, shared base, residual caching, optional
// parallel scan) must agree — within the coverage comparison epsilon — with
// a straightforward clone-per-scenario oracle built only from the public
// State API, and with the exhaustive ExactExpectedCoverage enumeration.

import (
	"math/rand"
	"testing"

	"photodtn/internal/coverage"
	"photodtn/internal/model"
)

const diffEps = 1e-9

// legacyEval is the pre-optimisation evaluator semantics, reconstructed from
// the public coverage API: one fully materialized State per delivery
// outcome. Scenario construction mirrors NewEvaluator exactly (same mask
// order, same Monte Carlo draw order), so agreement must be exact up to
// floating-point reassociation.
type legacyEval struct {
	states []*coverage.State
	ws     []float64
}

func newLegacyEval(m *coverage.Map, cfg Config, ccFPs []coverage.Footprint, background []bgNode) *legacyEval {
	cfg = cfg.normalized()
	base := m.NewState()
	for _, fp := range ccFPs {
		base.Add(fp)
	}
	var live []bgNode
	for _, b := range background {
		if len(b.fps) == 0 || b.p <= 0 {
			continue
		}
		if b.p >= 1 {
			for _, fp := range b.fps {
				base.Add(fp)
			}
			continue
		}
		live = append(live, b)
	}
	le := &legacyEval{}
	materialize := func(w float64, delivered func(i int) bool) {
		st := base.Clone()
		for i, b := range live {
			if delivered(i) {
				for _, fp := range b.fps {
					st.Add(fp)
				}
			}
		}
		le.states = append(le.states, st)
		le.ws = append(le.ws, w)
	}
	if len(live) <= cfg.ExactLimit {
		for mask := 0; mask < 1<<len(live); mask++ {
			w := 1.0
			for i, b := range live {
				if mask&(1<<i) != 0 {
					w *= b.p
				} else {
					w *= 1 - b.p
				}
			}
			if w <= 0 {
				continue
			}
			materialize(w, func(i int) bool { return mask&(1<<i) != 0 })
		}
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed))
		w := 1.0 / float64(cfg.Samples)
		for s := 0; s < cfg.Samples; s++ {
			del := make([]bool, len(live))
			for i, b := range live {
				del[i] = rng.Float64() < b.p
			}
			materialize(w, func(i int) bool { return del[i] })
		}
	}
	return le
}

func (le *legacyEval) Gain(fp coverage.Footprint) coverage.Coverage {
	var g coverage.Coverage
	for i, st := range le.states {
		g = g.Add(st.Gain(fp).Scale(le.ws[i]))
	}
	return g
}

func (le *legacyEval) Commit(fp coverage.Footprint) {
	for _, st := range le.states {
		st.Add(fp)
	}
}

func (le *legacyEval) Expected() coverage.Coverage {
	var c coverage.Coverage
	for i, st := range le.states {
		c = c.Add(st.Coverage().Scale(le.ws[i]))
	}
	return c
}

func covClose(a, b coverage.Coverage, tol float64) bool {
	d := a.Sub(b)
	return d.Point <= tol && d.Point >= -tol && d.Aspect <= tol && d.Aspect >= -tol
}

// diffConfigs covers the exact regime, the Monte Carlo regime, and the
// ExactLimit=0 edge (Monte Carlo even for tiny node sets).
func diffConfigs() []Config {
	return []Config{
		{ExactLimit: 5, Samples: 24, Seed: 3},
		{ExactLimit: 2, Samples: 16, Seed: 3},
		{ExactLimit: 0, Samples: 24, Seed: 9},
	}
}

// TestEvaluatorMatchesLegacyClones is the main differential property: on
// randomized instances the delta evaluator tracks the clone-per-scenario
// oracle through interleaved Gain and Commit sequences.
func TestEvaluatorMatchesLegacyClones(t *testing.T) {
	scales := benchScales()
	for _, sc := range scales[:2] { // exact16 and exact32 instances
		for ci, cfg := range diffConfigs() {
			m, ccFPs, bg, pool := benchInstance(t, sc)
			ev := NewEvaluator(m, cfg, ccFPs, bg)
			le := newLegacyEval(m, cfg, ccFPs, bg)
			if ev.Scenarios() != len(le.states) {
				t.Fatalf("%s cfg %d: %d scenarios, legacy %d", sc.name, ci, ev.Scenarios(), len(le.states))
			}
			if !covClose(ev.Expected(), le.Expected(), diffEps) {
				t.Fatalf("%s cfg %d: Expected %+v, legacy %+v", sc.name, ci, ev.Expected(), le.Expected())
			}
			for round := 0; round < 4; round++ {
				for pi, it := range pool {
					got, want := ev.Gain(it.FP), le.Gain(it.FP)
					if !covClose(got, want, diffEps) {
						t.Fatalf("%s cfg %d round %d photo %d: Gain %+v, legacy %+v",
							sc.name, ci, round, pi, got, want)
					}
				}
				if g := ev.Gain(coverage.Footprint{}); !g.IsZero() {
					t.Fatalf("%s cfg %d: empty footprint gain %+v", sc.name, ci, g)
				}
				commit := pool[round*3%len(pool)].FP
				ev.Commit(commit)
				le.Commit(commit)
				if !covClose(ev.Expected(), le.Expected(), diffEps) {
					t.Fatalf("%s cfg %d round %d: Expected %+v, legacy %+v",
						sc.name, ci, round, ev.Expected(), le.Expected())
				}
			}
			ev.Release()
		}
	}
}

// TestEvaluatorMatchesExactOracle pins the exact-enumeration regime to the
// independent ExactExpectedCoverage oracle, including p=0 and p=1
// participants (dropped resp. folded into the base).
func TestEvaluatorMatchesExactOracle(t *testing.T) {
	m, photos := exactInstance(t)
	ccPhotos := photos[:3]
	probs := []float64{0, 1, 0.35, 0.8} // includes both edge probabilities
	var parts []Participant
	for i := 0; i < 4; i++ {
		parts = append(parts, Participant{
			Node:   model.NodeID(i + 1),
			P:      probs[i%len(probs)],
			Photos: photos[3+i*3 : 6+i*3],
		})
	}
	cfg := Config{ExactLimit: 8, Samples: 24, Seed: 1}
	got := ExpectedCoverage(m, cfg, ccPhotos, parts)
	want := ExactExpectedCoverage(m, ccPhotos, parts)
	if !covClose(got, want, diffEps) {
		t.Fatalf("ExpectedCoverage %+v, exact oracle %+v", got, want)
	}
}

// TestEvaluatorEdgeProbabilityReduction: a p=0 participant must be
// equivalent to absence; a p=1 participant must be equivalent to handing its
// photos to the command center.
func TestEvaluatorEdgeProbabilityReduction(t *testing.T) {
	m, photos := exactInstance(t)
	fpc := coverage.NewFootprintCache(m)
	cc := footprintsOf(fpc, photos[:3])
	aFPs := footprintsOf(fpc, photos[3:6])
	bFPs := footprintsOf(fpc, photos[6:9])
	cfg := Config{ExactLimit: 5, Samples: 24, Seed: 1}

	withZero := NewEvaluator(m, cfg, cc, []bgNode{{p: 0.4, fps: aFPs}, {p: 0, fps: bFPs}})
	without := NewEvaluator(m, cfg, cc, []bgNode{{p: 0.4, fps: aFPs}})
	if !covClose(withZero.Expected(), without.Expected(), diffEps) {
		t.Fatalf("p=0 node changed Expected: %+v vs %+v", withZero.Expected(), without.Expected())
	}
	if withZero.Scenarios() != without.Scenarios() {
		t.Fatalf("p=0 node changed scenario count: %d vs %d", withZero.Scenarios(), without.Scenarios())
	}

	withOne := NewEvaluator(m, cfg, cc, []bgNode{{p: 0.4, fps: aFPs}, {p: 1, fps: bFPs}})
	folded := NewEvaluator(m, cfg, append(append([]coverage.Footprint{}, cc...), bFPs...),
		[]bgNode{{p: 0.4, fps: aFPs}})
	if !covClose(withOne.Expected(), folded.Expected(), diffEps) {
		t.Fatalf("p=1 node not folded into base: %+v vs %+v", withOne.Expected(), folded.Expected())
	}
	for _, fp := range footprintsOf(fpc, photos[9:15]) {
		if !covClose(withOne.Gain(fp), folded.Gain(fp), diffEps) {
			t.Fatal("p=1 folding changed a gain")
		}
	}
	withZero.Release()
	without.Release()
	withOne.Release()
	folded.Release()
}

// TestParallelGreedyFillMatchesSerial: the worker-pool gain scan must yield
// bit-identical selections to the serial scan (the reduction is ordered and
// the heap order is a strict total order).
func TestParallelGreedyFillMatchesSerial(t *testing.T) {
	for _, sc := range benchScales() {
		m, ccFPs, bg, pool := benchInstance(t, sc)
		capacity := int64(max(5, len(pool)/3)) * (4 << 20)

		serialCfg := sc.cfg
		serial := GreedyFill(NewEvaluator(m, serialCfg, ccFPs, bg), pool, capacity)

		parCfg := sc.cfg
		parCfg.Parallel = true
		parCfg.ParallelThreshold = 1 // force workers even on tiny pools
		parallel := GreedyFill(NewEvaluator(m, parCfg, ccFPs, bg), pool, capacity)

		if len(serial) != len(parallel) {
			t.Fatalf("%s: serial selected %d, parallel %d", sc.name, len(serial), len(parallel))
		}
		for i := range serial {
			if serial[i].ID != parallel[i].ID {
				t.Fatalf("%s: selection diverges at %d: %v vs %v",
					sc.name, i, serial[i].ID, parallel[i].ID)
			}
		}
		if len(serial) == 0 {
			t.Fatalf("%s: empty selection", sc.name)
		}
	}
}

// exactInstance builds a small deterministic map and photo list sized for
// exhaustive 2^m enumeration.
func exactInstance(t *testing.T) (*coverage.Map, model.PhotoList) {
	t.Helper()
	sc := benchScale{name: "exact", pois: 60, bgNodes: 2, perNode: 4, poolSize: 80,
		cfg: Config{ExactLimit: 8, Samples: 16, Seed: 1}}
	m, _, _, pool := benchInstance(t, sc)
	var photos model.PhotoList
	for _, it := range pool {
		photos = append(photos, it.Photo)
	}
	if len(photos) < 15 {
		t.Fatalf("instance too small: %d photos", len(photos))
	}
	return m, photos
}
