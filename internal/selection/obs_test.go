package selection

import (
	"testing"

	"photodtn/internal/obs"
)

// TestMetricsAccounting: with metrics installed, GreedyFill must account
// every committed round and at least one gain evaluation per candidate, and
// evaluator construction must register itself and its scenario count.
func TestMetricsAccounting(t *testing.T) {
	sc := benchScales()[0]
	m, ccFPs, bg, pool := benchInstance(t, sc)
	reg := obs.NewRegistry()
	cfg := sc.cfg
	cfg.Metrics = Metrics{
		GainEvals:  reg.Counter("selection.gain_evals"),
		Rounds:     reg.Counter("selection.rounds"),
		Evaluators: reg.Counter("selection.evaluators"),
		Scenarios:  reg.Histogram("selection.scenarios"),
	}
	capacity := pool[0].Photo.Size * 8
	ev := NewEvaluator(m, cfg, ccFPs, bg)
	scenarios := ev.Scenarios()
	sel := GreedyFill(ev, pool, capacity)
	ev.Release()
	if len(sel) == 0 {
		t.Fatal("nothing selected")
	}
	if got := reg.Counter("selection.rounds").Value(); got != int64(len(sel)) {
		t.Fatalf("rounds = %d, want %d", got, len(sel))
	}
	if got := reg.Counter("selection.gain_evals").Value(); got < int64(len(pool)) {
		t.Fatalf("gain evals = %d, want >= pool size %d", got, len(pool))
	}
	if got := reg.Counter("selection.evaluators").Value(); got != 1 {
		t.Fatalf("evaluators = %d, want 1", got)
	}
	h := reg.Histogram("selection.scenarios")
	if h.Count() != 1 || h.Sum() != float64(scenarios) {
		t.Fatalf("scenario histogram count %d sum %v, want 1/%d", h.Count(), h.Sum(), scenarios)
	}
}

// TestZeroMetricsSelectIdentically: the zero Metrics value (all-nil
// counters) must not change what gets selected.
func TestZeroMetricsSelectIdentically(t *testing.T) {
	sc := benchScales()[0]
	m, ccFPs, bg, pool := benchInstance(t, sc)
	capacity := pool[0].Photo.Size * 8
	plain := GreedyFill(NewEvaluator(m, sc.cfg, ccFPs, bg), pool, capacity)
	cfg := sc.cfg
	reg := obs.NewRegistry()
	cfg.Metrics = Metrics{GainEvals: reg.Counter("g"), Rounds: reg.Counter("r")}
	metered := GreedyFill(NewEvaluator(m, cfg, ccFPs, bg), pool, capacity)
	if len(plain) != len(metered) {
		t.Fatalf("selection sizes differ: %d vs %d", len(plain), len(metered))
	}
	for i := range plain {
		if plain[i].ID != metered[i].ID {
			t.Fatalf("selection %d differs: %v vs %v", i, plain[i].ID, metered[i].ID)
		}
	}
}

// BenchmarkObsGreedyFill pins the no-op overhead contract on the PR 2 hot
// loop: "off" holds nil metrics (the disabled state), "on" pays live atomic
// counters. Not part of the committed BENCH_selection.json baseline (that
// file is regenerated with -bench=BenchmarkEvaluator).
func BenchmarkObsGreedyFill(b *testing.B) {
	sc := benchScales()[1]
	m, ccFPs, bg, pool := benchInstance(b, sc)
	capacity := int64(0)
	for i := 0; i < len(pool) && i < 24; i++ {
		capacity += pool[i].Photo.Size
	}
	run := func(b *testing.B, cfg Config) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := NewEvaluator(m, cfg, ccFPs, bg)
			if sel := GreedyFill(ev, pool, capacity); len(sel) == 0 {
				b.Fatal("nothing selected")
			}
			ev.Release()
		}
	}
	b.Run("off", func(b *testing.B) { run(b, sc.cfg) })
	b.Run("on", func(b *testing.B) {
		cfg := sc.cfg
		reg := obs.NewRegistry()
		cfg.Metrics = Metrics{
			GainEvals:  reg.Counter("selection.gain_evals"),
			Rounds:     reg.Counter("selection.rounds"),
			Evaluators: reg.Counter("selection.evaluators"),
			Scenarios:  reg.Histogram("selection.scenarios"),
		}
		run(b, cfg)
	})
}
