//go:build race

package selection

// raceEnabled reports whether the race detector is instrumenting this test
// binary. Allocation-count assertions are skipped under it: the detector's
// shadow-memory bookkeeping allocates on paths that are allocation-free in
// a normal build.
const raceEnabled = true
