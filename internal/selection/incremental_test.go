package selection

// Differential tests of the incremental CELF machinery introduced with the
// Session arena: dirty-PoI gain invalidation must equal a from-scratch
// residual walk to near machine precision over random commit sequences,
// zero-gain culling and session reuse must leave selections bit-identical,
// and steady-state session paths must not allocate.

import (
	"math/rand"
	"testing"

	"photodtn/internal/coverage"
	"photodtn/internal/model"
)

// incEps bounds incremental-vs-from-scratch divergence. The two paths differ
// only in floating-point association (entry-major vs scenario-major sums),
// so the tolerance is far below diffEps — near machine precision.
const incEps = 1e-12

// TestIncrementalGainMatchesFromScratch drives ≥200 random commit sequences
// and, after every commit, checks a sample of incrementally-maintained
// candidate gains against an uncached full residual walk on the same
// scenario set.
func TestIncrementalGainMatchesFromScratch(t *testing.T) {
	scales := benchScales()
	rng := rand.New(rand.NewSource(42))
	sequences := 0
	for _, sc := range scales[:2] {
		m, ccFPs, bg, pool := benchInstance(t, sc)
		for seq := 0; seq < 100; seq++ {
			cfg := sc.cfg
			cfg.Seed = rng.Int63()
			ev := NewEvaluator(m, cfg, ccFPs, bg)
			cands := make([]*cand, len(pool))
			for i, it := range pool {
				cands[i] = &cand{item: it}
			}
			// Warm a random subset so some caches are stale across several
			// commits (the dirty intersection accumulates), others fresh.
			for _, i := range rng.Perm(len(cands))[:len(cands)/2] {
				ev.gainCand(cands[i], nil)
			}
			for step := 0; step < 6; step++ {
				ev.Commit(pool[rng.Intn(len(pool))].FP)
				for k := 0; k < 8; k++ {
					c := cands[rng.Intn(len(cands))]
					ev.gainCand(c, nil) // incremental: dirty entries only
					want := ev.ds.GainCached(&c.resid)
					if !covClose(c.gain, want, incEps) {
						t.Fatalf("%s seq %d step %d: incremental %+v, from-scratch %+v",
							sc.name, seq, step, c.gain, want)
					}
				}
			}
			ev.Release()
			sequences++
		}
	}
	if sequences < 200 {
		t.Fatalf("only %d commit sequences exercised, want ≥ 200", sequences)
	}
}

// TestGreedyFillIncrementalMatchesDisabled pins selections bit-identical
// between the incremental path (dirty-PoI caches + zero-gain culling) and
// the pre-incremental full-rewalk path, with and without a session.
func TestGreedyFillIncrementalMatchesDisabled(t *testing.T) {
	s := NewSession()
	for _, sc := range benchScales() {
		m, ccFPs, bg, pool := benchInstance(t, sc)
		for _, frac := range []int{6, 3, 1} {
			capacity := int64(max(3, len(pool)/frac)) * (4 << 20)

			offCfg := sc.cfg
			offCfg.DisableIncremental = true
			evOff := NewEvaluator(m, offCfg, ccFPs, bg)
			want := GreedyFill(evOff, pool, capacity)
			evOff.Release()

			evOn := NewEvaluator(m, sc.cfg, ccFPs, bg)
			got := GreedyFill(evOn, pool, capacity)
			evOn.Release()
			assertSameSelection(t, sc.name+"/standalone", want, got)

			evSess := s.evaluator(m, sc.cfg, ccFPs, bg)
			got = GreedyFill(evSess, pool, capacity)
			evSess.Release()
			assertSameSelection(t, sc.name+"/session", want, got)
		}
	}
}

// TestSessionReallocateMatchesStandalone checks the full two-phase
// reallocation: a session reused across repeated contacts must reproduce the
// package-level (pre-incremental) result exactly, with no state leaking
// between contacts.
func TestSessionReallocateMatchesStandalone(t *testing.T) {
	sc := benchScales()[1]
	m, _, _, pool := benchInstance(t, sc)
	fpc := coverage.NewFootprintCache(m)
	var photos model.PhotoList
	for _, it := range pool {
		photos = append(photos, it.Photo)
	}
	if len(photos) < 60 {
		t.Fatalf("instance too small: %d photos", len(photos))
	}
	n := len(photos)
	cc := photos[:n/8]
	background := []Participant{
		{Node: 5, P: 0.45, Photos: photos[n/8 : n/3]},
		{Node: 6, P: 0.25, Photos: photos[n/4 : n/2]},
		{Node: 2, P: 0.30, Photos: photos[n/3 : n/2]}, // contacting node: must be skipped
	}
	capacity := int64(12) * (4 << 20)
	a := Alloc{Node: 1, P: 0.6, Capacity: capacity, Photos: photos[n/2 : 4*n/5]}
	b := Alloc{Node: 2, P: 0.35, Capacity: capacity, Photos: photos[7*n/10:]}

	offCfg := sc.cfg
	offCfg.DisableIncremental = true
	want := Reallocate(fpc, offCfg, cc, background, a, b)

	s := NewSession()
	for trial := 0; trial < 3; trial++ {
		got := s.Reallocate(fpc, sc.cfg, cc, background, a, b)
		if got.AFirst != want.AFirst {
			t.Fatalf("trial %d: AFirst %v, want %v", trial, got.AFirst, want.AFirst)
		}
		assertSameSelection(t, "ASel", want.ASel, got.ASel)
		assertSameSelection(t, "BSel", want.BSel, got.BSel)
	}

	wantUp := SelectForUpload(fpc, offCfg, cc, a.Photos)
	for trial := 0; trial < 3; trial++ {
		gotUp := s.SelectForUpload(fpc, sc.cfg, cc, a.Photos)
		assertSameSelection(t, "upload", wantUp, gotUp)
	}
}

// TestZeroGainCulling: candidates fully covered by the base must never be
// selected, and selections with culling on equal the full-heap behaviour.
func TestZeroGainCulling(t *testing.T) {
	m, photos := exactInstance(t)
	fpc := coverage.NewFootprintCache(m)
	// The command center already holds every pool photo: all gains are
	// identically zero and nothing may be selected by either path.
	ccFPs := footprintsOf(fpc, photos)
	pool := BuildPool(fpc, photos)
	cfg := Config{ExactLimit: 5, Samples: 16, Seed: 1}

	ev := NewEvaluator(m, cfg, ccFPs, nil)
	sel := GreedyFill(ev, pool, model.PhotoList(photos).TotalSize())
	ev.Release()
	if len(sel) != 0 {
		t.Fatalf("selected %d photos with all-zero gains", len(sel))
	}

	// Partial overlap: only the uncovered photos are pickable; culling must
	// not change the outcome relative to the disabled path.
	ccFPs = footprintsOf(fpc, photos[:len(photos)/2])
	offCfg := cfg
	offCfg.DisableIncremental = true
	evOff := NewEvaluator(m, offCfg, ccFPs, nil)
	want := GreedyFill(evOff, pool, model.PhotoList(photos).TotalSize())
	evOff.Release()
	evOn := NewEvaluator(m, cfg, ccFPs, nil)
	got := GreedyFill(evOn, pool, model.PhotoList(photos).TotalSize())
	evOn.Release()
	assertSameSelection(t, "partial-overlap", want, got)
}

// TestSessionBuildPoolAllocs is the pooled-dedup-map regression guard: a
// warmed session's BuildPool must not allocate at all.
func TestSessionBuildPoolAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	m, photos := exactInstance(t)
	fpc := coverage.NewFootprintCache(m)
	half := len(photos) / 2
	colA, colB := photos[:half+5], photos[half:]
	s := NewSession()
	s.BuildPool(fpc, colA, colB) // warm the arena and the footprint cache
	n := testing.AllocsPerRun(20, func() {
		if len(s.BuildPool(fpc, colA, colB)) == 0 {
			t.Fatal("empty pool")
		}
	})
	if n != 0 {
		t.Fatalf("warmed Session.BuildPool allocates %.1f times per call, want 0", n)
	}
}

// TestSessionGreedyFillAllocs bounds the steady-state allocation of a full
// session-backed selection phase: only the returned selection list (which
// the caller keeps) may allocate.
func TestSessionGreedyFillAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	sc := benchScales()[0]
	m, ccFPs, bg, pool := benchInstance(t, sc)
	capacity := int64(max(5, len(pool)/3)) * (4 << 20)
	s := NewSession()
	run := func() int {
		ev := s.evaluator(m, sc.cfg, ccFPs, bg)
		sel := GreedyFill(ev, pool, capacity)
		ev.Release()
		return len(sel)
	}
	selected := run() // warm the arenas
	if selected == 0 {
		t.Fatal("selected nothing")
	}
	n := testing.AllocsPerRun(10, func() { run() })
	// The selected list grows by appending from nil: a handful of
	// allocations per phase, independent of pool and scenario scale.
	if limit := float64(8 + selected); n > limit {
		t.Fatalf("warmed session selection phase allocates %.1f times, want ≤ %.0f", n, limit)
	}
}

func assertSameSelection(t *testing.T, label string, want, got model.PhotoList) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: selected %d photos, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID {
			t.Fatalf("%s: selection diverges at %d: %v, want %v", label, i, got[i].ID, want[i].ID)
		}
	}
}
