// Package selection implements the heart of the paper: expected coverage
// (Definition 2, §III-C) and the greedy photo reallocation algorithm
// (§III-D) that two nodes run when they are in contact.
//
// Expected coverage is an expectation over delivery outcomes B ∈ {0,1}^m of
// the photo coverage the command center would obtain. Its exact evaluation
// is exponential in the number of probabilistic nodes, so the Evaluator
// enumerates outcomes exactly up to a configurable limit and switches to
// common-random-number Monte Carlo sampling beyond it. Common random
// numbers matter: every candidate photo is ranked against the same sampled
// outcomes, which removes sampling noise from the comparisons the greedy
// makes.
//
// Internally the evaluator is a coverage.DeltaSet: all outcomes share one
// immutable base state and each scenario stores only the arcs its
// delivering nodes add, so construction never clones the base and a Gain
// query is a single footprint walk regardless of the scenario count.
package selection

import (
	"math/rand"
	"runtime"
	"sort"

	"photodtn/internal/coverage"
	"photodtn/internal/model"
	"photodtn/internal/obs"
)

// Metrics holds the selection subsystem's observability hooks. Every field
// is an optional nil-safe metric (a nil pointer no-ops), so the zero value
// disables instrumentation without any branching at the call sites.
type Metrics struct {
	// GainEvals counts candidate gain evaluations (the CELF hot loop).
	GainEvals *obs.Counter
	// Rounds counts committed greedy selections.
	Rounds *obs.Counter
	// Evaluators counts evaluator constructions (one per selection phase).
	Evaluators *obs.Counter
	// Scenarios observes the scenario count per evaluator.
	Scenarios *obs.Histogram
}

// ObserverMetrics builds selection metrics bound to an observer's registry
// (all nil — disabled — when o is nil).
func ObserverMetrics(o *obs.Observer) Metrics {
	return Metrics{
		GainEvals:  o.Counter("selection.gain_evals"),
		Rounds:     o.Counter("selection.rounds"),
		Evaluators: o.Counter("selection.evaluators"),
		Scenarios:  o.Histogram("selection.scenarios"),
	}
}

// Config tunes the expected-coverage evaluation.
type Config struct {
	// ExactLimit is the largest number of probabilistic background nodes
	// for which delivery outcomes are enumerated exactly (2^ExactLimit
	// scenarios). Beyond it, Monte Carlo sampling is used.
	ExactLimit int
	// Samples is the number of Monte Carlo scenarios.
	Samples int
	// Seed drives scenario sampling; callers should derive it
	// deterministically (e.g. from the contact) for reproducibility.
	Seed int64
	// Parallel opts GreedyFill into the parallel gain scan: candidate gains
	// are evaluated by a worker pool bounded by GOMAXPROCS, with a
	// deterministic reduction order — selections are identical to the
	// serial scan. Off by default: simulation sweeps already parallelise
	// across runs (sim.RunMany), where an inner pool would oversubscribe.
	Parallel bool
	// ParallelThreshold is the minimum number of candidates before workers
	// engage; below it the serial scan wins. Zero means a sensible default.
	ParallelThreshold int
	// DisableIncremental turns off the incremental CELF machinery — dirty-PoI
	// gain invalidation and zero-gain candidate culling — and re-walks every
	// candidate residual in full on each refresh, the pre-incremental
	// behaviour. Selections are identical either way (the incremental path is
	// exact, not approximate); the switch exists for differential tests and
	// ablation benchmarks.
	DisableIncremental bool
	// Metrics optionally observes the selection machinery; the zero value
	// disables it at no cost.
	//
	// Deprecated: prefer the unified photodtn.WithObserver option, which
	// fills this field via ObserverMetrics. Direct assignment keeps working.
	Metrics Metrics
}

// DefaultParallelThreshold is the candidate-pool size below which the
// parallel gain scan falls back to the serial path.
const DefaultParallelThreshold = 32

// DefaultConfig returns evaluation parameters that keep per-contact cost
// low while leaving ranking quality indistinguishable from exact in
// simulation.
func DefaultConfig() Config {
	return Config{ExactLimit: 5, Samples: 24}
}

func (c Config) normalized() Config {
	if c.ExactLimit < 0 {
		c.ExactLimit = 0
	}
	if c.Samples <= 0 {
		c.Samples = 24
	}
	if c.ParallelThreshold <= 0 {
		c.ParallelThreshold = DefaultParallelThreshold
	}
	return c
}

// Participant is one node of the node set M of Definition 2: a photo
// collection that reaches the command center with probability P.
type Participant struct {
	Node   model.NodeID
	Photos model.PhotoList
	// P is the node's delivery probability p_i to the command center.
	P float64
}

// bgNode is a background participant reduced to its useful footprints.
type bgNode struct {
	p   float64
	fps []coverage.Footprint
}

// Evaluator computes expected coverage and expected marginal gains for
// photos being selected onto a single target node, against a fixed
// background of probabilistic nodes plus the command center's own
// collection (which is always "delivered", b_0 = 1).
type Evaluator struct {
	m  *coverage.Map
	ds *coverage.DeltaSet
	// sess, when non-nil, supplies recycled arenas (candidates, heaps,
	// residuals) and marks the evaluator itself as session-owned: Release
	// then keeps the DeltaSet shell alive for the next contact's Reuse.
	sess *Session

	noIncremental bool
	parallel      bool
	threshold     int
	metrics       Metrics
}

// NewEvaluator builds a standalone evaluator. ccFPs are the footprints of
// the photos already at the command center; background holds the other nodes
// of M with their delivery probabilities and the footprints of their photos.
// Contact-rate callers should prefer a Session, which recycles everything an
// evaluator allocates.
func NewEvaluator(m *coverage.Map, cfg Config, ccFPs []coverage.Footprint, background []bgNode) *Evaluator {
	ev := &Evaluator{ds: &coverage.DeltaSet{}}
	ev.init(m, cfg, ccFPs, background, nil)
	return ev
}

// init (re)builds the evaluator in place. e.ds must point at a DeltaSet
// shell (possibly released); sess may be nil for standalone use.
func (e *Evaluator) init(m *coverage.Map, cfg Config, ccFPs []coverage.Footprint, background []bgNode, sess *Session) {
	cfg = cfg.normalized()
	base := m.AcquireState()
	for _, fp := range ccFPs {
		base.Add(fp)
	}
	// Nodes that deliver surely belong in the base; nodes that never
	// deliver or have no useful photos can be dropped.
	var live []bgNode
	if sess != nil {
		live = sess.live[:0]
	} else {
		live = make([]bgNode, 0, len(background))
	}
	for _, b := range background {
		if len(b.fps) == 0 || b.p <= 0 {
			continue
		}
		if b.p >= 1 {
			for _, fp := range b.fps {
				base.Add(fp)
			}
			continue
		}
		live = append(live, b)
	}
	e.m = m
	e.ds.Reuse(base)
	e.sess = sess
	e.noIncremental = cfg.DisableIncremental
	e.parallel = cfg.Parallel
	e.threshold = cfg.ParallelThreshold
	e.metrics = cfg.Metrics
	if len(live) <= cfg.ExactLimit {
		e.enumerate(live)
	} else {
		e.sample(live, cfg)
	}
	if sess != nil {
		sess.live = live[:0] // return the (possibly grown) buffer
	}
	e.metrics.Evaluators.Inc()
	e.metrics.Scenarios.Observe(float64(e.ds.Scenarios()))
}

// compileLive subtracts the (now final) base from every live node's
// footprints once; scenario construction then replays the cheap residuals
// instead of re-subtracting the base per outcome. With a session, the
// residuals and the index come from its arenas — compiled arc and entry
// storage survives from contact to contact.
func (e *Evaluator) compileLive(live []bgNode) [][]coverage.Residual {
	total := 0
	for _, b := range live {
		total += len(b.fps)
	}
	var flat []coverage.Residual
	var resid [][]coverage.Residual
	if s := e.sess; s != nil {
		if len(s.residFlat) < total {
			grown := make([]coverage.Residual, total)
			copy(grown, s.residFlat) // keep the recycled piece storage
			s.residFlat = grown
		}
		flat = s.residFlat[:total]
		resid = s.residIdx[:0]
	} else {
		flat = make([]coverage.Residual, total)
	}
	k := 0
	for i, b := range live {
		sub := flat[k : k+len(b.fps) : k+len(b.fps)]
		k += len(b.fps)
		for j, fp := range b.fps {
			e.ds.CompileResidual(fp, &sub[j])
		}
		if e.sess != nil {
			resid = append(resid, sub)
		} else {
			if resid == nil {
				resid = make([][]coverage.Residual, len(live))
			}
			resid[i] = sub
		}
	}
	if e.sess != nil {
		e.sess.residIdx = resid[:0]
	}
	return resid
}

// enumerate builds all 2^k delivery outcomes of the live background nodes
// as overlays on the shared base.
func (e *Evaluator) enumerate(live []bgNode) {
	resid := e.compileLive(live)
	n := len(live)
	total := 1 << n
	e.ds.Reserve(total)
	for mask := 0; mask < total; mask++ {
		w := 1.0
		for i, b := range live {
			if mask&(1<<i) != 0 {
				w *= b.p
			} else {
				w *= 1 - b.p
			}
		}
		if w <= 0 {
			continue
		}
		si := e.ds.AddScenario(w)
		for i := range live {
			if mask&(1<<i) != 0 {
				for j := range resid[i] {
					e.ds.AddResidual(si, &resid[i][j])
				}
			}
		}
	}
}

// sample builds Monte Carlo delivery outcomes with common random numbers.
func (e *Evaluator) sample(live []bgNode, cfg Config) {
	resid := e.compileLive(live)
	e.ds.Reserve(cfg.Samples)
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := 1.0 / float64(cfg.Samples)
	for s := 0; s < cfg.Samples; s++ {
		si := e.ds.AddScenario(w)
		for i, b := range live {
			if rng.Float64() < b.p {
				for j := range resid[i] {
					e.ds.AddResidual(si, &resid[i][j])
				}
			}
		}
	}
}

// Gain returns the expected marginal coverage gain of the footprint,
// conditioned on the target node delivering its photos. Scaling by the
// target's own delivery probability is left to the caller: the scale is
// common to every candidate, so it affects neither ranking nor the
// "no more benefit" stopping rule.
func (e *Evaluator) Gain(fp coverage.Footprint) coverage.Coverage {
	return e.ds.Gain(fp)
}

// gainWith is Gain with caller-supplied scratch; the parallel scan gives
// each worker its own scratch and calls this concurrently (reads only).
func (e *Evaluator) gainWith(fp coverage.Footprint, sc *coverage.GainScratch) coverage.Coverage {
	return e.ds.GainWith(fp, sc)
}

// Commit adds the footprint to every scenario: the target node now holds
// the photo in all outcomes where it delivers (which, within one selection
// phase, is the conditional world Gain already lives in).
func (e *Evaluator) Commit(fp coverage.Footprint) {
	e.ds.Commit(fp)
}

// Expected returns the expected coverage of the current scenario set,
// E_B[C_ph(∪ delivered)].
func (e *Evaluator) Expected() coverage.Coverage {
	return e.ds.Expected()
}

// Scenarios returns the number of delivery outcomes the evaluator tracks.
func (e *Evaluator) Scenarios() int {
	if e.ds == nil {
		return 0
	}
	return e.ds.Scenarios()
}

// Release returns the evaluator's pooled coverage states to the map for
// reuse by later contacts. Optional — skipping it only forfeits recycling —
// but the evaluator must not be used afterwards. Session-owned evaluators
// keep their DeltaSet shell so the next contact can revive it with Reuse.
func (e *Evaluator) Release() {
	if e.ds == nil || e.ds.Base() == nil {
		return
	}
	e.ds.Release()
	if e.sess == nil {
		e.ds = nil
	}
}

// workers returns the parallel fan-out for n independent gain queries, or
// 0 when the serial path should be used.
func (e *Evaluator) workers(n int) int {
	if !e.parallel || n < e.threshold {
		return 0
	}
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w <= 1 {
		return 0
	}
	return w
}

// footprintsOf compiles the useful (non-empty) footprints of a collection
// through the memoizing cache.
func footprintsOf(fpc *coverage.FootprintCache, photos model.PhotoList) []coverage.Footprint {
	var out []coverage.Footprint
	for _, p := range photos {
		if fp := fpc.Of(p); !fp.IsEmpty() {
			out = append(out, fp)
		}
	}
	return out
}

// ExpectedCoverage evaluates Definition 2 for a node set M: the command
// center's photos (delivered with certainty) plus participants that each
// deliver independently with their probability. It uses the same
// exact/Monte-Carlo machinery as the selection algorithm.
func ExpectedCoverage(m *coverage.Map, cfg Config, ccPhotos model.PhotoList, parts []Participant) coverage.Coverage {
	fpc := coverage.NewFootprintCache(m)
	bg := make([]bgNode, 0, len(parts))
	for _, p := range parts {
		bg = append(bg, bgNode{p: p.P, fps: footprintsOf(fpc, p.Photos)})
	}
	ev := NewEvaluator(m, cfg, footprintsOf(fpc, ccPhotos), bg)
	defer ev.Release()
	return ev.Expected()
}

// ExactExpectedCoverage evaluates Definition 2 by direct enumeration of all
// 2^m outcomes, independent of the Evaluator machinery. It exists as an
// oracle for tests and ablation benchmarks; cost is exponential in
// len(parts).
func ExactExpectedCoverage(m *coverage.Map, ccPhotos model.PhotoList, parts []Participant) coverage.Coverage {
	var total coverage.Coverage
	n := len(parts)
	for mask := 0; mask < 1<<n; mask++ {
		w := 1.0
		photos := ccPhotos.Clone()
		for i, p := range parts {
			if mask&(1<<i) != 0 {
				w *= p.P
				photos = append(photos, p.Photos...)
			} else {
				w *= 1 - p.P
			}
		}
		if w == 0 {
			continue
		}
		total = total.Add(m.Of(photos).Scale(w))
	}
	return total
}

// sortParticipants orders participants by descending delivery probability,
// breaking ties by node ID (deterministic).
func sortParticipants(parts []Participant) {
	sort.SliceStable(parts, func(i, j int) bool {
		if parts[i].P != parts[j].P {
			return parts[i].P > parts[j].P
		}
		return parts[i].Node < parts[j].Node
	})
}
