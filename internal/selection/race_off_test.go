//go:build !race

package selection

const raceEnabled = false
