package selection

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"photodtn/internal/coverage"
	"photodtn/internal/geo"
	"photodtn/internal/model"
)

// Test fixture: a single PoI at the origin with effective angle 30°, and
// helpers to make photos viewing it from a given compass angle.
func poiMap() *coverage.Map {
	return coverage.NewMap([]model.PoI{model.NewPoI(0, geo.Vec{})}, geo.Radians(30))
}

// cacheOf returns a fresh footprint cache over the map.
func cacheOf(m *coverage.Map) *coverage.FootprintCache { return coverage.NewFootprintCache(m) }

// viewFrom makes a photo standing at compass angle deg (degrees) from the
// PoI, looking back at it. Its aspect arc is centred at deg with ±30°.
func viewFrom(owner model.NodeID, seq uint32, deg float64) model.Photo {
	loc := geo.FromAngle(geo.Radians(deg)).Scale(60)
	return model.Photo{
		ID:          model.MakePhotoID(owner, seq),
		Owner:       owner,
		Location:    loc,
		Range:       120,
		FOV:         geo.Radians(60),
		Orientation: geo.Radians(deg + 180),
		Size:        4 << 20,
	}
}

// farAway makes a photo that covers nothing.
func farAway(owner model.NodeID, seq uint32) model.Photo {
	p := viewFrom(owner, seq, 0)
	p.Location = geo.Vec{X: 1e6, Y: 1e6}
	return p
}

func covEq(t *testing.T, got, want coverage.Coverage, tol float64) {
	t.Helper()
	if math.Abs(got.Point-want.Point) > tol || math.Abs(got.Aspect-want.Aspect) > tol {
		t.Fatalf("coverage = %v, want %v", got, want)
	}
}

func TestExpectedCoverageFormula2(t *testing.T) {
	// Reproduces the m=3 expansion of formula (2) in §III-C.
	m := poiMap()
	f0 := model.PhotoList{viewFrom(0, 0, 0)}   // CC has the east view
	fa := model.PhotoList{viewFrom(1, 0, 90)}  // a has the north view
	fb := model.PhotoList{viewFrom(2, 0, 180)} // b has the west view
	pa, pb := 0.7, 0.4

	c0 := m.Of(f0)
	c0a := m.Of(append(f0.Clone(), fa...))
	c0b := m.Of(append(f0.Clone(), fb...))
	c0ab := m.Of(append(append(f0.Clone(), fa...), fb...))
	want := c0.Scale((1 - pa) * (1 - pb)).
		Add(c0a.Scale(pa * (1 - pb))).
		Add(c0b.Scale((1 - pa) * pb)).
		Add(c0ab.Scale(pa * pb))

	parts := []Participant{
		{Node: 1, Photos: fa, P: pa},
		{Node: 2, Photos: fb, P: pb},
	}
	covEq(t, ExactExpectedCoverage(m, f0, parts), want, 1e-9)
	covEq(t, ExpectedCoverage(m, DefaultConfig(), f0, parts), want, 1e-9)
}

func TestExpectedCoverageEdgeProbabilities(t *testing.T) {
	m := poiMap()
	fa := model.PhotoList{viewFrom(1, 0, 0)}
	// P = 1: deterministic.
	got := ExpectedCoverage(m, DefaultConfig(), nil, []Participant{{Node: 1, Photos: fa, P: 1}})
	covEq(t, got, m.Of(fa), 1e-9)
	// P = 0: contributes nothing.
	got = ExpectedCoverage(m, DefaultConfig(), nil, []Participant{{Node: 1, Photos: fa, P: 0}})
	covEq(t, got, coverage.Coverage{}, 1e-9)
}

func TestExpectedCoverageOverlapDiscount(t *testing.T) {
	// Two nodes holding the SAME view: expected coverage must account for
	// the overlap, i.e. be strictly less than the sum of individual
	// expectations.
	m := poiMap()
	pa, pb := 0.5, 0.5
	parts := []Participant{
		{Node: 1, Photos: model.PhotoList{viewFrom(1, 0, 0)}, P: pa},
		{Node: 2, Photos: model.PhotoList{viewFrom(2, 0, 0)}, P: pb},
	}
	got := ExactExpectedCoverage(m, nil, parts)
	solo := m.Of(model.PhotoList{viewFrom(1, 0, 0)})
	// P{at least one delivers} = 1 − 0.25 = 0.75.
	covEq(t, got, solo.Scale(0.75), 1e-9)
}

func TestMonteCarloApproximatesExact(t *testing.T) {
	m := poiMap()
	rng := rand.New(rand.NewSource(3))
	parts := make([]Participant, 0, 10)
	for i := 0; i < 10; i++ {
		parts = append(parts, Participant{
			Node:   model.NodeID(i + 1),
			Photos: model.PhotoList{viewFrom(model.NodeID(i+1), 0, rng.Float64()*360)},
			P:      0.2 + 0.6*rng.Float64(),
		})
	}
	exact := ExactExpectedCoverage(m, nil, parts)
	cfg := Config{ExactLimit: 0, Samples: 4000, Seed: 17}
	mc := ExpectedCoverage(m, cfg, nil, parts)
	if math.Abs(mc.Point-exact.Point) > 0.05*exact.Point {
		t.Fatalf("MC point %v too far from exact %v", mc.Point, exact.Point)
	}
	if math.Abs(mc.Aspect-exact.Aspect) > 0.05*exact.Aspect {
		t.Fatalf("MC aspect %v too far from exact %v", mc.Aspect, exact.Aspect)
	}
}

func TestEvaluatorScenarioCounts(t *testing.T) {
	m := poiMap()
	mk := func(n int, p float64) []Participant {
		parts := make([]Participant, 0, n)
		for i := 0; i < n; i++ {
			parts = append(parts, Participant{
				Node: model.NodeID(i + 1), P: p,
				Photos: model.PhotoList{viewFrom(model.NodeID(i+1), 0, float64(i*37))},
			})
		}
		return parts
	}
	fpc := cacheOf(m)
	toBG := func(parts []Participant) []bgNode {
		bg := make([]bgNode, 0, len(parts))
		for _, p := range parts {
			bg = append(bg, bgNode{p: p.P, fps: footprintsOf(fpc, p.Photos)})
		}
		return bg
	}
	cfg := Config{ExactLimit: 3, Samples: 10}
	// 3 nodes: exact, 2^3 = 8 scenarios.
	if got := NewEvaluator(m, cfg, nil, toBG(mk(3, 0.5))).Scenarios(); got != 8 {
		t.Fatalf("exact scenarios = %d, want 8", got)
	}
	// 4 nodes: sampled.
	if got := NewEvaluator(m, cfg, nil, toBG(mk(4, 0.5))).Scenarios(); got != 10 {
		t.Fatalf("sampled scenarios = %d, want 10", got)
	}
	// P=1 nodes fold into the base: still exact with one scenario.
	if got := NewEvaluator(m, cfg, nil, toBG(mk(6, 1))).Scenarios(); got != 1 {
		t.Fatalf("deterministic scenarios = %d, want 1", got)
	}
	// P=0 nodes are dropped.
	if got := NewEvaluator(m, cfg, nil, toBG(mk(6, 0))).Scenarios(); got != 1 {
		t.Fatalf("zero-prob scenarios = %d, want 1", got)
	}
}

func TestEvaluatorGainCommit(t *testing.T) {
	m := poiMap()
	ev := NewEvaluator(m, DefaultConfig(), nil, nil)
	east := m.Footprint(viewFrom(1, 0, 0))
	north := m.Footprint(viewFrom(1, 1, 90))

	g := ev.Gain(east)
	covEq(t, g, coverage.Coverage{Point: 1, Aspect: geo.Radians(60)}, 1e-9)
	ev.Commit(east)
	// Same arc again: zero gain.
	covEq(t, ev.Gain(east), coverage.Coverage{}, 1e-9)
	// Disjoint arc: aspect-only gain.
	covEq(t, ev.Gain(north), coverage.Coverage{Aspect: geo.Radians(60)}, 1e-9)
	covEq(t, ev.Expected(), coverage.Coverage{Point: 1, Aspect: geo.Radians(60)}, 1e-9)
}

func TestBuildPoolDedupesAndFilters(t *testing.T) {
	m := poiMap()
	shared := viewFrom(1, 0, 0)
	a := model.PhotoList{shared, farAway(1, 1)}
	b := model.PhotoList{shared, viewFrom(2, 0, 90)}
	pool := BuildPool(cacheOf(m), a, b)
	if len(pool) != 2 {
		t.Fatalf("pool size = %d, want 2 (dedup + irrelevant filter)", len(pool))
	}
	for _, it := range pool {
		if it.FP.IsEmpty() {
			t.Fatal("pool contains an irrelevant photo")
		}
	}
}

func TestGreedyFillPrefersDiversity(t *testing.T) {
	m := poiMap()
	ev := NewEvaluator(m, DefaultConfig(), nil, nil)
	pool := BuildPool(cacheOf(m), model.PhotoList{
		viewFrom(1, 0, 0),
		viewFrom(1, 1, 5),   // nearly duplicates the first
		viewFrom(1, 2, 180), // opposite side
	})
	sel := GreedyFill(ev, pool, 2*(4<<20))
	if len(sel) != 2 {
		t.Fatalf("selected %d photos, want 2", len(sel))
	}
	// Must pick the two opposite views, not the two near-duplicates.
	degs := map[uint32]bool{sel[0].ID.Seq(): true, sel[1].ID.Seq(): true}
	if !degs[0] || !degs[2] {
		t.Fatalf("selected %v, want photos 0 and 2", sel.IDs())
	}
}

func TestGreedyFillRespectsCapacity(t *testing.T) {
	m := poiMap()
	ev := NewEvaluator(m, DefaultConfig(), nil, nil)
	pool := BuildPool(cacheOf(m), model.PhotoList{
		viewFrom(1, 0, 0), viewFrom(1, 1, 90), viewFrom(1, 2, 180),
	})
	sel := GreedyFill(ev, pool, 4<<20) // room for exactly one
	if len(sel) != 1 {
		t.Fatalf("selected %d photos, want 1", len(sel))
	}
	if sel.TotalSize() > 4<<20 {
		t.Fatal("capacity exceeded")
	}
	if got := GreedyFill(NewEvaluator(m, DefaultConfig(), nil, nil), pool, 0); len(got) != 0 {
		t.Fatal("zero capacity must select nothing")
	}
}

func TestGreedyFillSkipsOversizedButContinues(t *testing.T) {
	m := poiMap()
	big := viewFrom(1, 0, 0)
	big.Size = 100 << 20
	small := viewFrom(1, 1, 90)
	ev := NewEvaluator(m, DefaultConfig(), nil, nil)
	pool := BuildPool(cacheOf(m), model.PhotoList{big, small})
	sel := GreedyFill(ev, pool, 8<<20)
	if len(sel) != 1 || sel[0].ID != small.ID {
		t.Fatalf("selected %v, want only the small photo", sel.IDs())
	}
}

func TestGreedyFillStopsAtNoBenefit(t *testing.T) {
	m := poiMap()
	// CC already holds the east view; pool has a duplicate east view and a
	// fresh north view.
	cc := model.PhotoList{viewFrom(0, 0, 0)}
	ev := NewEvaluator(m, DefaultConfig(), footprintsOf(cacheOf(m), cc), nil)
	pool := BuildPool(cacheOf(m), model.PhotoList{viewFrom(1, 0, 0), viewFrom(1, 1, 90)})
	sel := GreedyFill(ev, pool, 100<<20)
	if len(sel) != 1 {
		t.Fatalf("selected %d photos, want 1 (duplicate must be dropped)", len(sel))
	}
	if sel[0].ID.Seq() != 1 {
		t.Fatalf("selected %v, want the north view", sel.IDs())
	}
}

func TestGreedyFillSelectionOrderIsByGain(t *testing.T) {
	m := poiMap()
	// A second PoI far east; one photo covers both PoIs, others cover one.
	m2 := coverage.NewMap([]model.PoI{
		model.NewPoI(0, geo.Vec{}),
		model.NewPoI(1, geo.Vec{X: 40}),
	}, geo.Radians(30))
	double := model.Photo{ // east of both, looking west, covers both PoIs
		ID: model.MakePhotoID(1, 9), Owner: 1,
		Location: geo.Vec{X: 90}, Range: 120,
		FOV: geo.Radians(60), Orientation: geo.Radians(180), Size: 4 << 20,
	}
	singleN := viewFrom(1, 1, 90)
	ev := NewEvaluator(m2, DefaultConfig(), nil, nil)
	pool := BuildPool(cacheOf(m2), model.PhotoList{singleN, double})
	sel := GreedyFill(ev, pool, 100<<20)
	if len(sel) < 2 || sel[0].ID != double.ID {
		t.Fatalf("selection order %v: the two-PoI photo must come first", sel.IDs())
	}
	_ = m
}

func TestReallocateHigherProbabilityFirst(t *testing.T) {
	m := poiMap()
	a := Alloc{Node: 1, P: 0.2, Capacity: 8 << 20, Photos: model.PhotoList{viewFrom(1, 0, 0)}}
	b := Alloc{Node: 2, P: 0.9, Capacity: 8 << 20, Photos: model.PhotoList{viewFrom(2, 0, 90)}}
	res := Reallocate(cacheOf(m), DefaultConfig(), nil, nil, a, b)
	if res.AFirst {
		t.Fatal("node b has higher P and must select first")
	}
	// b (capacity 2) should take both useful views.
	if len(res.BSel) != 2 {
		t.Fatalf("BSel = %v, want both views", res.BSel.IDs())
	}
}

func TestReallocateSecondAvoidsLikelyDuplicates(t *testing.T) {
	m := poiMap()
	// First node delivers almost surely and will take both views; the
	// second node has room for one photo. Duplicating is still worth a tiny
	// expected gain (first node may fail), so with equal-size photos the
	// second node picks SOME photo — but when the first node's delivery is
	// certain, gains are zero and the second node keeps nothing.
	a := Alloc{Node: 1, P: 1.0, Capacity: 16 << 20, Photos: model.PhotoList{viewFrom(1, 0, 0), viewFrom(1, 1, 90)}}
	b := Alloc{Node: 2, P: 0.3, Capacity: 4 << 20, Photos: model.PhotoList{viewFrom(2, 0, 0)}}
	res := Reallocate(cacheOf(m), DefaultConfig(), nil, nil, a, b)
	if !res.AFirst {
		t.Fatal("node a must select first")
	}
	if len(res.ASel) != 2 {
		t.Fatalf("ASel = %v, want both views", res.ASel.IDs())
	}
	if len(res.BSel) != 0 {
		t.Fatalf("BSel = %v, want empty (everything surely delivered by a)", res.BSel.IDs())
	}
}

func TestReallocateSecondKeepsBackupWhenFirstUnreliable(t *testing.T) {
	m := poiMap()
	a := Alloc{Node: 1, P: 0.1, Capacity: 8 << 20, Photos: model.PhotoList{viewFrom(1, 0, 0), viewFrom(1, 1, 90)}}
	b := Alloc{Node: 2, P: 0.05, Capacity: 8 << 20, Photos: nil}
	res := Reallocate(cacheOf(m), DefaultConfig(), nil, nil, a, b)
	// First node is unreliable, so b should hold backup copies of the same
	// photos (the paper's y_j = z_j = 1 case).
	if len(res.BSel) != 2 {
		t.Fatalf("BSel = %v, want 2 backup photos", res.BSel.IDs())
	}
}

func TestReallocateDropsDeliveredAndIrrelevant(t *testing.T) {
	m := poiMap()
	cc := model.PhotoList{viewFrom(0, 0, 0)} // east view already delivered
	a := Alloc{Node: 1, P: 0.5, Capacity: 100 << 20, Photos: model.PhotoList{
		viewFrom(1, 0, 0), // duplicate of delivered
		farAway(1, 1),     // irrelevant
		viewFrom(1, 2, 180),
	}}
	b := Alloc{Node: 2, P: 0.4, Capacity: 100 << 20, Photos: nil}
	res := Reallocate(cacheOf(m), DefaultConfig(), cc, nil, a, b)
	if len(res.ASel) != 1 || res.ASel[0].ID.Seq() != 2 {
		t.Fatalf("ASel = %v, want only the west view", res.ASel.IDs())
	}
}

func TestReallocateConsidersBackground(t *testing.T) {
	m := poiMap()
	// A background node certainly delivering the east view: the pair should
	// prioritise the north view.
	bgPart := []Participant{{Node: 7, P: 1.0, Photos: model.PhotoList{viewFrom(7, 0, 0)}}}
	a := Alloc{Node: 1, P: 0.5, Capacity: 4 << 20, Photos: model.PhotoList{viewFrom(1, 0, 0), viewFrom(1, 1, 90)}}
	b := Alloc{Node: 2, P: 0.4, Capacity: 4 << 20, Photos: nil}
	res := Reallocate(cacheOf(m), DefaultConfig(), nil, bgPart, a, b)
	if len(res.ASel) != 1 || res.ASel[0].ID.Seq() != 1 {
		t.Fatalf("ASel = %v, want the north view only", res.ASel.IDs())
	}
}

func TestReallocateIgnoresContactPairInBackground(t *testing.T) {
	m := poiMap()
	// A stale background entry for node 1 itself must be ignored, otherwise
	// its photos would be double counted.
	bgPart := []Participant{{Node: 1, P: 0.99, Photos: model.PhotoList{viewFrom(1, 0, 0)}}}
	a := Alloc{Node: 1, P: 0.5, Capacity: 4 << 20, Photos: model.PhotoList{viewFrom(1, 0, 0)}}
	b := Alloc{Node: 2, P: 0.4, Capacity: 4 << 20, Photos: nil}
	res := Reallocate(cacheOf(m), DefaultConfig(), nil, bgPart, a, b)
	if len(res.ASel) != 1 {
		t.Fatalf("ASel = %v: the photo must still be selected", res.ASel.IDs())
	}
}

func TestSelectForUpload(t *testing.T) {
	m := poiMap()
	cc := model.PhotoList{viewFrom(0, 0, 0)}
	node := model.PhotoList{
		viewFrom(1, 0, 0),  // already delivered content
		viewFrom(1, 1, 90), // new
		farAway(1, 2),      // irrelevant
	}
	sel := SelectForUpload(cacheOf(m), DefaultConfig(), cc, node)
	if len(sel) != 1 || sel[0].ID.Seq() != 1 {
		t.Fatalf("upload selection = %v, want only the north view", sel.IDs())
	}
}

func TestSortParticipants(t *testing.T) {
	parts := []Participant{
		{Node: 3, P: 0.5},
		{Node: 1, P: 0.9},
		{Node: 2, P: 0.5},
	}
	sortParticipants(parts)
	if parts[0].Node != 1 || parts[1].Node != 2 || parts[2].Node != 3 {
		t.Fatalf("sorted order = %v", parts)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	m := poiMap()
	rng := rand.New(rand.NewSource(9))
	var photos model.PhotoList
	for i := 0; i < 40; i++ {
		photos = append(photos, viewFrom(1, uint32(i), rng.Float64()*360))
	}
	run := func() []model.PhotoID {
		ev := NewEvaluator(m, DefaultConfig(), nil, nil)
		return GreedyFill(ev, BuildPool(cacheOf(m), photos), 10*(4<<20)).IDs()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic selection size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic selection at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: the greedy never exceeds capacity and its selection value is
// monotone in capacity.
func TestGreedyCapacityProperty(t *testing.T) {
	m := poiMap()
	rng := rand.New(rand.NewSource(77))
	var photos model.PhotoList
	for i := 0; i < 60; i++ {
		p := viewFrom(1, uint32(i), rng.Float64()*360)
		p.Size = int64(1+rng.Intn(8)) << 20
		photos = append(photos, p)
	}
	pool := BuildPool(cacheOf(m), photos)
	prev := coverage.Coverage{}
	for _, capMB := range []int64{0, 4, 8, 16, 32, 64, 128} {
		ev := NewEvaluator(m, DefaultConfig(), nil, nil)
		sel := GreedyFill(ev, pool, capMB<<20)
		if sel.TotalSize() > capMB<<20 {
			t.Fatalf("capacity %dMB exceeded: %d bytes", capMB, sel.TotalSize())
		}
		cov := m.Of(sel)
		if cov.Less(prev) {
			t.Fatalf("capacity %dMB: coverage %v below smaller capacity's %v", capMB, cov, prev)
		}
		prev = cov
	}
}

// Property: expected coverage is monotone in each delivery probability.
func TestExpectedCoverageMonotoneInP(t *testing.T) {
	m := poiMap()
	photos := model.PhotoList{viewFrom(1, 0, 0), viewFrom(1, 1, 90)}
	prev := coverage.Coverage{}
	for _, p := range []float64{0, 0.2, 0.5, 0.8, 1} {
		got := ExactExpectedCoverage(m, nil, []Participant{{Node: 1, Photos: photos, P: p}})
		if got.Less(prev) {
			t.Fatalf("expected coverage decreased at p=%v: %v < %v", p, got, prev)
		}
		prev = got
	}
}

// Property: expected coverage never exceeds the all-delivered union
// coverage and never falls below the command center's own coverage.
func TestExpectedCoverageBounds(t *testing.T) {
	m := poiMap()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		cc := model.PhotoList{viewFrom(0, uint32(trial), rng.Float64()*360)}
		var parts []Participant
		union := cc.Clone()
		for i := 0; i < 4; i++ {
			ph := model.PhotoList{viewFrom(model.NodeID(i+1), uint32(trial), rng.Float64()*360)}
			parts = append(parts, Participant{Node: model.NodeID(i + 1), Photos: ph, P: rng.Float64()})
			union = append(union, ph...)
		}
		ex := ExactExpectedCoverage(m, cc, parts)
		lo, hi := m.Of(cc), m.Of(union)
		if ex.Less(lo) {
			t.Fatalf("trial %d: expected %v below floor %v", trial, ex, lo)
		}
		if hi.Less(ex) {
			t.Fatalf("trial %d: expected %v above ceiling %v", trial, ex, hi)
		}
	}
}

// bruteForceBest enumerates all subsets of the pool that fit k photos and
// returns the best coverage achievable — the exact optimum of problem (3)
// for equal-size photos.
func bruteForceBest(m *coverage.Map, pool []Item, k int) coverage.Coverage {
	best := coverage.Coverage{}
	n := len(pool)
	for mask := 0; mask < 1<<n; mask++ {
		if bits.OnesCount(uint(mask)) > k {
			continue
		}
		st := m.NewState()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				st.Add(pool[i].FP)
			}
		}
		if best.Less(st.Coverage()) {
			best = st.Coverage()
		}
	}
	return best
}

// TestGreedyNearOptimal checks the classic submodular-maximisation bound:
// with equal photo sizes (cardinality constraint), the greedy achieves at
// least (1 − 1/e) of the optimal value on random instances — and usually
// far more.
func TestGreedyNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	pois := []model.PoI{
		model.NewPoI(0, geo.Vec{}),
		model.NewPoI(1, geo.Vec{X: 80}),
		model.NewPoI(2, geo.Vec{Y: 80}),
	}
	m := coverage.NewMap(pois, geo.Radians(30))
	scalar := func(c coverage.Coverage) float64 {
		// Lexicographic proxy: a point outweighs any possible total aspect
		// (3 PoIs × 2π < 1000).
		return c.Point*1000 + c.Aspect
	}
	const bound = 1 - 1/math.E
	for trial := 0; trial < 20; trial++ {
		var photos model.PhotoList
		for i := 0; i < 10; i++ {
			loc := geo.Vec{X: rng.Float64()*300 - 100, Y: rng.Float64()*300 - 100}
			p := viewFrom(1, uint32(i), 0)
			p.Location = loc
			p.Orientation = rng.Float64() * geo.TwoPi
			photos = append(photos, p)
		}
		pool := BuildPool(cacheOf(m), photos)
		if len(pool) == 0 {
			continue
		}
		k := 2 + rng.Intn(3)
		opt := bruteForceBest(m, pool, k)
		ev := NewEvaluator(m, DefaultConfig(), nil, nil)
		sel := GreedyFill(ev, pool, int64(k)*(4<<20))
		got := m.Of(sel)
		if scalar(got) < bound*scalar(opt)-1e-9 {
			t.Fatalf("trial %d: greedy %v below (1-1/e)·optimal %v", trial, got, opt)
		}
	}
}
