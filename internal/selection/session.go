package selection

import (
	"sync"

	"photodtn/internal/coverage"
	"photodtn/internal/model"
)

// Session is a reusable arena for contact-scale selection. A scheme runs a
// full reallocation at every contact, and without a session each contact
// rebuilds the same transient machinery from scratch: the candidate pool and
// its dedup map, the CELF heap, the compiled background residuals, the
// scenario overlay list, and the evaluator itself. A Session owns all of
// that storage and recycles it from contact to contact, so steady-state
// selection allocates almost nothing.
//
// Lifecycle and ownership rules:
//
//   - One Session serves one scheme instance (or one goroutine): its methods
//     must not be called concurrently. The parallel gain scan inside
//     GreedyFill is fine — workers only touch per-candidate state.
//   - Slices returned by Session.BuildPool alias the arena and are valid
//     only until the session's next call; GreedyFill's selected lists are
//     freshly allocated and safe to retain.
//   - AcquireSession/Release recycle whole sessions through a sync.Pool
//     (mirroring coverage.AcquireState) for transient callers such as the
//     package-level Reallocate and SelectForUpload wrappers. Long-lived
//     owners like core.Scheme simply keep one NewSession for their lifetime.
//
// A session is not tied to a particular map: all cached storage is reset or
// recompiled per contact, so one session may serve contacts against
// different coverage maps.
type Session struct {
	ev Evaluator         // reusable evaluator shell
	ds coverage.DeltaSet // its scenario family, revived per contact via Reuse

	seen      map[model.PhotoID]bool // BuildPool dedup scratch
	pool      []Item
	live      []bgNode
	bg, bg2   []bgNode
	fps       []coverage.Footprint // arena behind footprints()
	residFlat []coverage.Residual  // compiled background residuals
	residIdx  [][]coverage.Residual
	cands     candArena
	heapItems []*cand
	stale     []*cand
}

// NewSession returns an empty session ready for use.
func NewSession() *Session {
	s := &Session{seen: make(map[model.PhotoID]bool)}
	s.ev.ds = &s.ds
	return s
}

var sessionPool = sync.Pool{New: func() any { return NewSession() }}

// AcquireSession takes a recycled session from the shared pool.
func AcquireSession() *Session {
	return sessionPool.Get().(*Session)
}

// Release returns the session to the shared pool. The caller must not use
// the session — or anything that aliases its arenas — afterwards.
func (s *Session) Release() {
	sessionPool.Put(s)
}

// evaluator rebuilds the session's evaluator in place for one selection
// phase; the caller must Release it (which keeps the shell for reuse)
// before requesting the next one.
func (s *Session) evaluator(m *coverage.Map, cfg Config, ccFPs []coverage.Footprint, bg []bgNode) *Evaluator {
	e := &s.ev
	e.init(m, cfg, ccFPs, bg, s)
	return e
}

// footprints compiles the useful footprints of a collection into the
// session's footprint arena and returns the collection's span. Earlier
// spans stay valid when the arena grows: they keep aliasing the old backing
// array, whose entries never change.
func (s *Session) footprints(fpc *coverage.FootprintCache, photos model.PhotoList) []coverage.Footprint {
	start := len(s.fps)
	for _, p := range photos {
		if fp := fpc.Of(p); !fp.IsEmpty() {
			s.fps = append(s.fps, fp)
		}
	}
	return s.fps[start:len(s.fps):len(s.fps)]
}

// BuildPool is the session form of the package-level BuildPool: identical
// pools, but the dedup map and the item slice are recycled. The returned
// slice aliases the session and is valid until the next BuildPool call.
func (s *Session) BuildPool(fpc *coverage.FootprintCache, collections ...model.PhotoList) []Item {
	clear(s.seen)
	s.pool = appendPool(s.pool[:0], s.seen, fpc, collections)
	return s.pool
}

// candArena hands out candidate structs with stable addresses (the CELF
// heap stores pointers) while recycling their residual and gain-cache
// storage across contacts. Allocation is in fixed blocks so earlier blocks
// never move when the arena grows.
type candArena struct {
	blocks [][]cand
	n      int // candidates handed out since the last reset
}

const candBlock = 64

func (a *candArena) take() *cand {
	bi, off := a.n/candBlock, a.n%candBlock
	if bi == len(a.blocks) {
		a.blocks = append(a.blocks, make([]cand, candBlock))
	}
	a.n++
	c := &a.blocks[bi][off]
	c.item = Item{}
	c.compiled = false
	c.gcache.Reset()
	c.gain = coverage.Coverage{}
	c.round = 0
	return c
}

func (a *candArena) reset() { a.n = 0 }
