package routing

import (
	"testing"

	"photodtn/internal/model"
	"photodtn/internal/sim"
	"photodtn/internal/trace"
)

func TestEpidemicFloodsWithinLimits(t *testing.T) {
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 2},
		{Start: 30, End: 40, A: 2, B: 0},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)},
			{Time: 2, Node: 1, Photo: farAway(1, 1)},
		},
	}
	s := NewEpidemic()
	res := mustRun(t, cfg, s)
	// Both photos replicate to node 2 and then deliver (content-blind).
	if res.Final.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", res.Final.Delivered)
	}
	// Node 1 keeps its copies (no copy budget in epidemic routing).
	if s.w.Storage(1).Len() != 2 {
		t.Fatalf("node 1 photos = %d, want 2", s.w.Storage(1).Len())
	}
}

func TestEpidemicRespectsBudget(t *testing.T) {
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 12, A: 1, B: 2}, // 4 MB budget at 2 MB/s: one photo
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Bandwidth: 2 * float64(mb), Seed: 1,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)},
			{Time: 2, Node: 1, Photo: viewFrom(1, 1, 90)},
			{Time: 3, Node: 2, Photo: viewFrom(2, 0, 180)},
		},
	}
	s := NewEpidemic()
	mustRun(t, cfg, s)
	// One photo moved in total (budget), alternating starts with A→B.
	if got := s.w.Storage(2).Len(); got != 2 { // own photo + one received
		t.Fatalf("node 2 photos = %d, want 2", got)
	}
}

func TestEpidemicEvictsOldest(t *testing.T) {
	tr := &trace.Trace{Nodes: 1}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 8 * mb, Seed: 1, Span: 10,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)},
			{Time: 2, Node: 1, Photo: viewFrom(1, 1, 90)},
			{Time: 3, Node: 1, Photo: viewFrom(1, 2, 180)}, // evicts photo 0
		},
	}
	s := NewEpidemic()
	mustRun(t, cfg, s)
	st := s.w.Storage(1)
	if st.Has(model.MakePhotoID(1, 0)) {
		t.Fatal("oldest photo not evicted")
	}
	if !st.Has(model.MakePhotoID(1, 2)) {
		t.Fatal("newest photo missing")
	}
}

func TestProphetRoutingForwardsUphill(t *testing.T) {
	// Node 2 meets the CC regularly → high predictability. When 1 meets 2,
	// 1's photos must replicate to 2 — and not the other way around.
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 2, B: 0},
		{Start: 30, End: 40, A: 2, B: 0},
		{Start: 50, End: 60, A: 1, B: 2},
		{Start: 70, End: 80, A: 2, B: 0},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)},
			{Time: 2, Node: 2, Photo: viewFrom(2, 0, 90)},
		},
	}
	s := NewProphetRouting()
	res := mustRun(t, cfg, s)
	if res.Final.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", res.Final.Delivered)
	}
	// Node 1 must NOT have received node 2's photo (2 is the better relay).
	if s.w.Storage(1).Has(model.MakePhotoID(2, 0)) {
		t.Fatal("photo replicated downhill")
	}
}

func TestProphetRoutingEqualProbabilitiesNoTransfer(t *testing.T) {
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 2}, // neither has met the CC: p=p=0... after exchange both 0
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)}},
	}
	s := NewProphetRouting()
	res := mustRun(t, cfg, s)
	if res.TransferredPhotos != 0 {
		t.Fatalf("transfers = %d, want 0 for equal predictabilities", res.TransferredPhotos)
	}
}

func TestProphetRoutingDropsDeliveredAtCC(t *testing.T) {
	tr := &trace.Trace{Nodes: 1, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 0},
		{Start: 30, End: 40, A: 1, B: 0},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)}},
	}
	s := NewProphetRouting()
	res := mustRun(t, cfg, s)
	if res.Final.Delivered != 1 || res.TransferredPhotos != 1 {
		t.Fatalf("delivered=%d transfers=%d", res.Final.Delivered, res.TransferredPhotos)
	}
	if s.w.Storage(1).Len() != 0 {
		t.Fatal("delivered photo not removed at the source")
	}
}

func TestNewBaselineNames(t *testing.T) {
	if NewEpidemic().Name() != "Epidemic" || NewProphetRouting().Name() != "PROPHET" {
		t.Fatal("names wrong")
	}
	if NewEpidemic().Unconstrained() || NewProphetRouting().Unconstrained() {
		t.Fatal("constrained baselines must report constrained")
	}
}
