package routing

import (
	"math"
	"sort"

	"photodtn/internal/sim"
	"photodtn/internal/trace"
)

// ComputeBestPossible evaluates the BestPossible upper bound analytically
// instead of simulating epidemic replication photo by photo. Under no
// storage or bandwidth constraints, a photo taken by node n at time t
// reaches the command center exactly when a time-respecting contact path
// exists from (n, t) to a gateway→CC contact before the deadline — temporal
// reachability. A single reverse-chronological sweep computes, for every
// photo, its earliest delivery time, in O((contacts + photos)·log) instead
// of the O(contacts × photos) of the literal flood. The result is
// event-for-event identical to running the BestPossible scheme through the
// engine (a property the tests check), just several orders of magnitude
// faster on full-scale traces.
//
// TransferredBytes/Photos are reported as zero: the upper bound has no
// meaningful transfer accounting.
func ComputeBestPossible(cfg sim.Config) (*sim.Result, error) {
	span := cfg.Span
	if span <= 0 {
		span = cfg.Trace.Duration()
	}

	// Merge node contacts and gateway contacts, tagging gateway ones.
	type rev struct {
		time    float64
		contact trace.Contact
		gateway bool
		// photoIdx >= 0 marks a photo event instead of a contact.
		photoIdx int
	}
	var evs []rev
	for _, c := range cfg.Trace.Contacts {
		if c.Start > span {
			continue
		}
		evs = append(evs, rev{time: c.Start, contact: c, photoIdx: -1,
			gateway: c.A.IsCommandCenter() || c.B.IsCommandCenter()})
	}
	for _, c := range sim.GatewayContacts(cfg, span) {
		evs = append(evs, rev{time: c.Start, contact: c, photoIdx: -1, gateway: true})
	}
	for i, pe := range cfg.Photos {
		if pe.Time > span {
			continue
		}
		evs = append(evs, rev{time: pe.Time, photoIdx: i})
	}
	// Sort with the forward engine's exact tie rules (photos before
	// contacts at the same instant; insertion order among contacts), then
	// sweep BACKWARDS — reverse iteration inverts the tie handling
	// correctly, so e.g. a photo taken at a contact instant sees that
	// contact, and same-instant contact chains compose as they do forward.
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].time != evs[j].time {
			return evs[i].time < evs[j].time
		}
		return evs[i].photoIdx >= 0 && evs[j].photoIdx < 0
	})

	deliverAt := make([]float64, cfg.Trace.Nodes+1)
	for i := range deliverAt {
		deliverAt[i] = math.Inf(1)
	}
	photoDelivery := make([]float64, len(cfg.Photos))
	for i := range photoDelivery {
		photoDelivery[i] = math.Inf(1)
	}
	for i := len(evs) - 1; i >= 0; i-- {
		e := evs[i]
		if e.photoIdx >= 0 {
			photoDelivery[e.photoIdx] = deliverAt[cfg.Photos[e.photoIdx].Node]
			continue
		}
		if e.gateway {
			n := e.contact.A
			if n.IsCommandCenter() {
				n = e.contact.B
			}
			if e.time < deliverAt[n] {
				deliverAt[n] = e.time
			}
			continue
		}
		best := math.Min(deliverAt[e.contact.A], deliverAt[e.contact.B])
		deliverAt[e.contact.A] = best
		deliverAt[e.contact.B] = best
	}

	// Replay deliveries chronologically into a coverage state, emitting the
	// same samples the engine would.
	type delivery struct {
		time float64
		idx  int
	}
	var dels []delivery
	for i, t := range photoDelivery {
		if t <= span {
			dels = append(dels, delivery{time: t, idx: i})
		}
	}
	sort.Slice(dels, func(i, j int) bool { return dels[i].time < dels[j].time })

	st := cfg.Map.NewState()
	res := &sim.Result{Scheme: "BestPossible"}
	next := 0
	emit := func(at float64) sim.Sample {
		for next < len(dels) && dels[next].time <= at {
			st.AddPhoto(cfg.Photos[dels[next].idx].Photo)
			next++
		}
		pt, as := cfg.Map.Normalized(st.Coverage())
		return sim.Sample{Time: at, PointFrac: pt, AspectRad: as, Delivered: next}
	}
	if cfg.SampleInterval > 0 {
		for t := cfg.SampleInterval; t <= span; t += cfg.SampleInterval {
			res.Samples = append(res.Samples, emit(t))
		}
	}
	res.Final = emit(span)
	return res, nil
}
