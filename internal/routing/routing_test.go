package routing

import (
	"testing"

	"photodtn/internal/coverage"
	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/sim"
	"photodtn/internal/trace"
)

const mb = int64(1) << 20

func poiMap() *coverage.Map {
	return coverage.NewMap([]model.PoI{model.NewPoI(0, geo.Vec{})}, geo.Radians(30))
}

func viewFrom(owner model.NodeID, seq uint32, deg float64) model.Photo {
	loc := geo.FromAngle(geo.Radians(deg)).Scale(60)
	return model.Photo{
		ID:          model.MakePhotoID(owner, seq),
		Owner:       owner,
		Location:    loc,
		Range:       120,
		FOV:         geo.Radians(60),
		Orientation: geo.Radians(deg + 180),
		Size:        4 * mb,
	}
}

func farAway(owner model.NodeID, seq uint32) model.Photo {
	p := viewFrom(owner, seq, 0)
	p.Location = geo.Vec{X: 1e6, Y: 1e6}
	return p
}

func mustRun(t *testing.T, cfg sim.Config, s sim.Scheme) *sim.Result {
	t.Helper()
	res, err := sim.Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSprayAndWaitBinarySplitting(t *testing.T) {
	// 1 creates a photo (4 copies), meets 2, 2 meets 3, 3 meets 4.
	tr := &trace.Trace{Nodes: 4, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 2},
		{Start: 30, End: 40, A: 2, B: 3},
		{Start: 50, End: 60, A: 3, B: 4},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)}},
	}
	s := NewSprayAndWait()
	mustRun(t, cfg, s)
	id := model.MakePhotoID(1, 0)
	// Copies: 1 has 2, 2 has 1, 3 has 1; node 4 must NOT have received it
	// (node 3 held a single copy: wait phase).
	if got := s.w.Storage(1).Copies(id); got != 2 {
		t.Fatalf("node 1 copies = %d, want 2", got)
	}
	if got := s.w.Storage(2).Copies(id); got != 1 {
		t.Fatalf("node 2 copies = %d, want 1", got)
	}
	if got := s.w.Storage(3).Copies(id); got != 1 {
		t.Fatalf("node 3 copies = %d, want 1", got)
	}
	if s.w.Storage(4).Has(id) {
		t.Fatal("single-copy holder must not spray")
	}
}

func TestSprayAndWaitDeliversToCC(t *testing.T) {
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 2},
		{Start: 30, End: 40, A: 2, B: 0},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)}},
	}
	s := NewSprayAndWait()
	res := mustRun(t, cfg, s)
	if res.Final.Delivered != 1 {
		t.Fatalf("delivered = %d", res.Final.Delivered)
	}
	// Node 2 removed its copy after delivery.
	if s.w.Storage(2).Len() != 0 {
		t.Fatal("delivered photo not removed from carrier")
	}
}

func TestSprayAndWaitContentBlind(t *testing.T) {
	// A worthless photo arrives first and fills the storage; Spray&Wait
	// rejects the useful one (no eviction policy).
	tr := &trace.Trace{Nodes: 1}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 4 * mb, Seed: 1, Span: 10,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: farAway(1, 0)},
			{Time: 2, Node: 1, Photo: viewFrom(1, 1, 0)},
		},
	}
	s := NewSprayAndWait()
	mustRun(t, cfg, s)
	st := s.w.Storage(1)
	if !st.Has(model.MakePhotoID(1, 0)) || st.Has(model.MakePhotoID(1, 1)) {
		t.Fatal("Spray&Wait must keep the first-come photo")
	}
}

func TestSprayAndWaitSkipsAlreadyDelivered(t *testing.T) {
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 2}, // spray to 2
		{Start: 30, End: 40, A: 1, B: 0}, // 1 delivers
		{Start: 50, End: 60, A: 2, B: 0}, // 2's copy is redundant
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)}},
	}
	s := NewSprayAndWait()
	res := mustRun(t, cfg, s)
	if res.Final.Delivered != 1 {
		t.Fatalf("delivered = %d", res.Final.Delivered)
	}
	// Redundant copy dropped without spending transfer budget: transfers
	// are 1→2 and 1→CC only.
	if res.TransferredPhotos != 2 {
		t.Fatalf("transfers = %d, want 2", res.TransferredPhotos)
	}
	if s.w.Storage(2).Len() != 0 {
		t.Fatal("redundant copy should be dropped at CC contact")
	}
}

func TestModifiedSprayPrioritisesCoverage(t *testing.T) {
	// Budget allows one photo per contact; the high-coverage photo (covers
	// the PoI) must be transmitted before the worthless one.
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 12, A: 1, B: 2}, // 2 s × 2 MB/s = one 4 MB photo
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Bandwidth: 2 * float64(mb), Seed: 1,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: farAway(1, 0)},
			{Time: 2, Node: 1, Photo: viewFrom(1, 1, 0)},
		},
	}
	s := NewModifiedSpray()
	mustRun(t, cfg, s)
	st2 := s.w.Storage(2)
	if !st2.Has(model.MakePhotoID(1, 1)) {
		t.Fatal("high-coverage photo not prioritised")
	}
	if st2.Has(model.MakePhotoID(1, 0)) {
		t.Fatal("worthless photo transmitted within a one-photo budget")
	}
}

func TestModifiedSprayEvictsLowestCoverage(t *testing.T) {
	tr := &trace.Trace{Nodes: 1}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 4 * mb, Seed: 1, Span: 10,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: farAway(1, 0)},
			{Time: 2, Node: 1, Photo: viewFrom(1, 1, 0)}, // evicts the worthless one
		},
	}
	s := NewModifiedSpray()
	mustRun(t, cfg, s)
	st := s.w.Storage(1)
	if st.Has(model.MakePhotoID(1, 0)) || !st.Has(model.MakePhotoID(1, 1)) {
		t.Fatal("eviction policy wrong")
	}
}

func TestModifiedSprayDeliversBestFirst(t *testing.T) {
	// CC contact with a one-photo budget: the covering photo goes first.
	tr := &trace.Trace{Nodes: 1, Contacts: []trace.Contact{
		{Start: 10, End: 12, A: 1, B: 0},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Bandwidth: 2 * float64(mb), Seed: 1,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: farAway(1, 0)},
			{Time: 2, Node: 1, Photo: viewFrom(1, 1, 0)},
		},
	}
	s := NewModifiedSpray()
	res := mustRun(t, cfg, s)
	if res.Final.Delivered != 1 || res.Final.PointFrac != 1 {
		t.Fatalf("delivered = %d, point = %v", res.Final.Delivered, res.Final.PointFrac)
	}
}

func TestModifiedSprayRespectsCopyLimit(t *testing.T) {
	// Like Spray&Wait, the copy budget limits replication depth.
	tr := &trace.Trace{Nodes: 4, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 2},
		{Start: 30, End: 40, A: 2, B: 3},
		{Start: 50, End: 60, A: 3, B: 4},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)}},
	}
	s := NewModifiedSpray()
	mustRun(t, cfg, s)
	if s.w.Storage(4).Has(model.MakePhotoID(1, 0)) {
		t.Fatal("copy limit violated")
	}
}

func TestPhotoNetUploadsMostDiverseFirst(t *testing.T) {
	// Two nearly identical photos and one distinct; budget of two photos.
	// PhotoNet should deliver one of the near-duplicates and the distinct
	// one, not both duplicates.
	near1 := viewFrom(1, 0, 0)
	near2 := viewFrom(1, 1, 0)
	near2.Location.X += 1
	distinct := viewFrom(1, 2, 180)
	distinct.TakenAt = 90000
	distinct.Hist[0] = 0.9
	tr := &trace.Trace{Nodes: 1, Contacts: []trace.Contact{
		{Start: 100, End: 104, A: 1, B: 0}, // 4 s × 1 MB/s... set below
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Bandwidth: 2 * float64(mb), Seed: 1,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: near1},
			{Time: 2, Node: 1, Photo: near2},
			{Time: 3, Node: 1, Photo: distinct},
		},
	}
	s := NewPhotoNet()
	res := mustRun(t, cfg, s)
	if res.Final.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", res.Final.Delivered)
	}
	if !s.w.CCHas(distinct.ID) {
		t.Fatal("the distinct photo must be among the deliveries")
	}
	if s.w.CCHas(near1.ID) && s.w.CCHas(near2.ID) {
		t.Fatal("both near-duplicates delivered: diversity ordering broken")
	}
}

func TestPhotoNetEvictionKeepsDiversity(t *testing.T) {
	near1 := viewFrom(1, 0, 0)
	near2 := viewFrom(1, 1, 0)
	near2.Location.X += 1
	distinct := viewFrom(1, 2, 180)
	distinct.TakenAt = 90000
	distinct.Hist[0] = 0.9
	tr := &trace.Trace{Nodes: 1}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 8 * mb, Seed: 1, Span: 10,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: near1},
			{Time: 2, Node: 1, Photo: near2},
			{Time: 3, Node: 1, Photo: distinct}, // must evict a near-dup
		},
	}
	s := NewPhotoNet()
	mustRun(t, cfg, s)
	st := s.w.Storage(1)
	if !st.Has(distinct.ID) {
		t.Fatal("distinct photo rejected")
	}
	if st.Has(near1.ID) && st.Has(near2.ID) {
		t.Fatal("kept both near-duplicates")
	}
}

func TestPhotoNetPeerExchangeTerminates(t *testing.T) {
	// Regression guard: two full storages with unlimited budget must not
	// trade photos forever.
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 1e6, A: 1, B: 2},
	}}
	var events []sim.PhotoEvent
	for i := uint32(0); i < 3; i++ {
		events = append(events, sim.PhotoEvent{Time: float64(i + 1), Node: 1, Photo: viewFrom(1, i, float64(i)*10)})
		events = append(events, sim.PhotoEvent{Time: float64(i + 1), Node: 2, Photo: viewFrom(2, i, float64(i)*10+180)})
	}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 12 * mb, Seed: 1,
		Photos: events,
	}
	s := NewPhotoNet()
	mustRun(t, cfg, s) // must return
}

func TestBestPossibleFloodsAndIgnoresLimits(t *testing.T) {
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 10.001, A: 1, B: 2}, // ridiculously short contact
		{Start: 20, End: 20.001, A: 2, B: 0},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 1, Bandwidth: 1, Seed: 1, // absurd limits
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)},
			{Time: 2, Node: 1, Photo: viewFrom(1, 1, 90)},
			{Time: 3, Node: 1, Photo: farAway(1, 2)},
		},
	}
	s := NewBestPossible()
	res := mustRun(t, cfg, s)
	// Everything (even the irrelevant photo) floods through.
	if res.Final.Delivered != 3 {
		t.Fatalf("delivered = %d, want 3", res.Final.Delivered)
	}
	if !s.Unconstrained() {
		t.Fatal("BestPossible must be unconstrained")
	}
}

func TestSchemeNames(t *testing.T) {
	tests := []struct {
		s    sim.Scheme
		want string
	}{
		{NewSprayAndWait(), "Spray&Wait"},
		{NewModifiedSpray(), "ModifiedSpray"},
		{NewPhotoNet(), "PhotoNet"},
		{NewBestPossible(), "BestPossible"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

// mapOf builds a coverage map with the default effective angle over the
// given PoIs.
func mapOf(pois []model.PoI) *coverage.Map {
	return coverage.NewMap(pois, geo.Radians(30))
}
