package routing

import (
	"sort"

	"photodtn/internal/model"
	"photodtn/internal/prophet"
	"photodtn/internal/sim"
)

// Epidemic is constrained epidemic routing (Vahdat & Becker), the classic
// flooding baseline the DTN-routing literature the paper cites starts from:
// replicate everything to everyone, limited only by the actual storage and
// bandwidth. Content-blind: FIFO transmission, oldest-first eviction on a
// full storage. Unlike BestPossible it obeys the resource constraints, so
// it shows what flooding does when resources really are scarce.
type Epidemic struct {
	w *sim.World
}

var _ sim.Scheme = (*Epidemic)(nil)

// NewEpidemic returns the constrained flooding baseline.
func NewEpidemic() *Epidemic { return &Epidemic{} }

// Name implements sim.Scheme.
func (s *Epidemic) Name() string { return "Epidemic" }

// Unconstrained implements sim.Scheme.
func (s *Epidemic) Unconstrained() bool { return false }

// Init implements sim.Scheme.
func (s *Epidemic) Init(w *sim.World) { s.w = w }

// OnPhoto implements sim.Scheme: store, evicting the oldest photos to make
// room (newest data is most likely not yet replicated anywhere).
func (s *Epidemic) OnPhoto(node model.NodeID, p model.Photo) {
	st := s.w.Storage(node)
	if !evictOldestFor(st, p) {
		return
	}
	_ = st.Add(p)
}

// evictOldestFor frees space for p by dropping oldest-arrived photos.
// It reports false if p cannot fit at all.
func evictOldestFor(st *sim.Storage, p model.Photo) bool {
	if p.Size > st.Capacity() {
		return false
	}
	for p.Size > st.Free() {
		list := st.List() // FIFO order
		st.Remove(list[0].ID)
	}
	return true
}

// OnContact implements sim.Scheme.
func (s *Epidemic) OnContact(sess *sim.Session) {
	if sess.A.IsCommandCenter() || sess.B.IsCommandCenter() {
		node := sess.A
		if node.IsCommandCenter() {
			node = sess.B
		}
		st := s.w.Storage(node)
		for _, p := range st.List() {
			if s.w.CCHas(p.ID) {
				continue
			}
			if err := sess.Transfer(model.CommandCenter, p); err != nil {
				return
			}
		}
		return
	}
	stA, stB := s.w.Storage(sess.A), s.w.Storage(sess.B)
	// Alternate directions for budget fairness; exchange summary vectors
	// implicitly via Has checks.
	qa := missing(stA, stB)
	qb := missing(stB, stA)
	ia, ib := 0, 0
	for (ia < len(qa) || ib < len(qb)) && !sess.Exhausted() {
		if ia < len(qa) {
			if !stB.Has(qa[ia].ID) && evictOldestFor(stB, qa[ia]) {
				_ = sess.Transfer(sess.B, qa[ia])
			}
			ia++
		}
		if ib < len(qb) && !sess.Exhausted() {
			if !stA.Has(qb[ib].ID) && evictOldestFor(stA, qb[ib]) {
				_ = sess.Transfer(sess.A, qb[ib])
			}
			ib++
		}
	}
}

// missing lists src photos absent at dst, FIFO order.
func missing(src, dst *sim.Storage) model.PhotoList {
	var out model.PhotoList
	for _, p := range src.List() {
		if !dst.Has(p.ID) {
			out = append(out, p)
		}
	}
	return out
}

// ProphetRouting is the PROPHET protocol itself used as a photo router: a
// node replicates a photo to a peer only when the peer's delivery
// predictability to the command center exceeds its own. Content-blind like
// Spray&Wait, but mobility-aware like our scheme's delivery model — so it
// isolates how much of our scheme's win comes from coverage awareness
// rather than from PROPHET.
type ProphetRouting struct {
	w      *sim.World
	cfg    prophet.Config
	tables []*prophet.Table
}

var _ sim.Scheme = (*ProphetRouting)(nil)

// NewProphetRouting returns the PROPHET forwarding baseline with Table I
// constants.
func NewProphetRouting() *ProphetRouting {
	return &ProphetRouting{cfg: prophet.DefaultConfig()}
}

// Name implements sim.Scheme.
func (s *ProphetRouting) Name() string { return "PROPHET" }

// Unconstrained implements sim.Scheme.
func (s *ProphetRouting) Unconstrained() bool { return false }

// Init implements sim.Scheme.
func (s *ProphetRouting) Init(w *sim.World) {
	s.w = w
	s.tables = make([]*prophet.Table, w.NumNodes()+1)
	for i := range s.tables {
		s.tables[i] = prophet.NewTable(model.NodeID(i), s.cfg)
	}
}

// OnPhoto implements sim.Scheme.
func (s *ProphetRouting) OnPhoto(node model.NodeID, p model.Photo) {
	st := s.w.Storage(node)
	if !evictOldestFor(st, p) {
		return
	}
	_ = st.Add(p)
}

// OnContact implements sim.Scheme.
func (s *ProphetRouting) OnContact(sess *sim.Session) {
	now := sess.Time
	if sess.A.IsCommandCenter() || sess.B.IsCommandCenter() {
		node := sess.A
		if node.IsCommandCenter() {
			node = sess.B
		}
		prophet.Exchange(s.tables[node], s.tables[model.CommandCenter], now)
		st := s.w.Storage(node)
		for _, p := range st.List() {
			if s.w.CCHas(p.ID) {
				st.Remove(p.ID)
				continue
			}
			if err := sess.Transfer(model.CommandCenter, p); err != nil {
				return
			}
			st.Remove(p.ID) // delivered to the destination
		}
		return
	}
	ta, tb := s.tables[sess.A], s.tables[sess.B]
	prophet.Exchange(ta, tb, now)
	pa := ta.DeliveryProb(now)
	pb := tb.DeliveryProb(now)
	// Replicate toward the better relay only.
	switch {
	case pb > pa:
		s.replicate(sess, sess.A, sess.B)
	case pa > pb:
		s.replicate(sess, sess.B, sess.A)
	}
}

// replicate copies photos from src to dst (keeping the source copy, as
// PROPHET does), oldest first for determinism, respecting dst's storage.
func (s *ProphetRouting) replicate(sess *sim.Session, from, to model.NodeID) {
	stFrom, stTo := s.w.Storage(from), s.w.Storage(to)
	queue := missing(stFrom, stTo)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].TakenAt < queue[j].TakenAt })
	for _, p := range queue {
		if sess.Exhausted() {
			return
		}
		if p.Size > stTo.Free() {
			continue // no eviction: the receiver's photos are as valuable
		}
		if err := sess.Transfer(to, p); err != nil {
			return
		}
	}
}
