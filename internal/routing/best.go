package routing

import (
	"photodtn/internal/model"
	"photodtn/internal/sim"
)

// BestPossible is the §V-B upper bound: epidemic replication with no
// storage or bandwidth constraint — the only limit is contact opportunity.
// Every useful photo floods to everyone, so the command center receives
// everything that is temporally reachable before the deadline.
type BestPossible struct {
	w *sim.World
}

var _ sim.Scheme = (*BestPossible)(nil)

// NewBestPossible returns the upper-bound scheme.
func NewBestPossible() *BestPossible { return &BestPossible{} }

// Name implements sim.Scheme.
func (s *BestPossible) Name() string { return "BestPossible" }

// Unconstrained implements sim.Scheme: the engine lifts storage and budget
// limits for this scheme.
func (s *BestPossible) Unconstrained() bool { return true }

// Init implements sim.Scheme.
func (s *BestPossible) Init(w *sim.World) { s.w = w }

// OnPhoto implements sim.Scheme.
func (s *BestPossible) OnPhoto(node model.NodeID, p model.Photo) {
	_ = s.w.Storage(node).Add(p)
}

// OnContact implements sim.Scheme: full bidirectional replication; the
// command center receives everything it does not already have.
func (s *BestPossible) OnContact(sess *sim.Session) {
	if sess.A.IsCommandCenter() || sess.B.IsCommandCenter() {
		node := sess.A
		if node.IsCommandCenter() {
			node = sess.B
		}
		st := s.w.Storage(node)
		for _, p := range st.List() {
			if !s.w.CCHas(p.ID) {
				_ = sess.Transfer(model.CommandCenter, p)
			}
		}
		return
	}
	stA, stB := s.w.Storage(sess.A), s.w.Storage(sess.B)
	for _, p := range stA.List() {
		if !stB.Has(p.ID) {
			_ = sess.Transfer(sess.B, p)
		}
	}
	for _, p := range stB.List() {
		if !stA.Has(p.ID) {
			_ = sess.Transfer(sess.A, p)
		}
	}
}
