// Package routing implements the baseline schemes the paper compares
// against (§IV-B, §V-B): binary Spray&Wait, the coverage-aware
// ModifiedSpray variant, the diversity-driven PhotoNet service, and the
// unconstrained BestPossible (epidemic) upper bound.
package routing

import (
	"sort"

	"photodtn/internal/coverage"
	"photodtn/internal/model"
	"photodtn/internal/sim"
)

// DefaultCopies is the spray copy budget L used in the paper ("binary
// spray and wait protocol with four allowed copies").
const DefaultCopies = 4

// SprayAndWait is binary Spray&Wait (Spyropoulos et al.): every photo is
// created with L logical copies; a node holding more than one copy hands
// half to nodes it meets; a node holding the last copy waits for the
// destination (the command center). Photos are treated as opaque data:
// transmission order is FIFO and a full storage rejects new photos.
type SprayAndWait struct {
	// Copies is the initial copy budget L (DefaultCopies if 0).
	Copies int

	w *sim.World
}

var _ sim.Scheme = (*SprayAndWait)(nil)

// NewSprayAndWait returns the protocol with the paper's L = 4.
func NewSprayAndWait() *SprayAndWait { return &SprayAndWait{Copies: DefaultCopies} }

// Name implements sim.Scheme.
func (s *SprayAndWait) Name() string { return "Spray&Wait" }

// Unconstrained implements sim.Scheme.
func (s *SprayAndWait) Unconstrained() bool { return false }

// Init implements sim.Scheme.
func (s *SprayAndWait) Init(w *sim.World) {
	s.w = w
	if s.Copies <= 0 {
		s.Copies = DefaultCopies
	}
}

// OnPhoto implements sim.Scheme: store with the full copy budget, or drop
// if the storage is full (content-blind schemes have no eviction policy).
func (s *SprayAndWait) OnPhoto(node model.NodeID, p model.Photo) {
	st := s.w.Storage(node)
	if err := st.Add(p); err != nil {
		return
	}
	st.SetCopies(p.ID, s.Copies)
}

// OnContact implements sim.Scheme.
func (s *SprayAndWait) OnContact(sess *sim.Session) {
	if sess.A.IsCommandCenter() || sess.B.IsCommandCenter() {
		node := sess.A
		if node.IsCommandCenter() {
			node = sess.B
		}
		s.uploadFIFO(sess, node)
		return
	}
	sprayBothWays(sess, s.w, fifoOrder(s.w))
}

// uploadFIFO delivers everything to the command center in FIFO order.
func (s *SprayAndWait) uploadFIFO(sess *sim.Session, node model.NodeID) {
	st := s.w.Storage(node)
	for _, p := range st.List() {
		if s.w.CCHas(p.ID) {
			st.Remove(p.ID) // already delivered by another copy
			continue
		}
		if err := sess.Transfer(model.CommandCenter, p); err != nil {
			break
		}
		st.Remove(p.ID)
	}
}

// orderFunc ranks a node's photos into transmission order.
type orderFunc func(st *sim.Storage) model.PhotoList

// fifoOrder transmits in arrival order (content-blind).
func fifoOrder(*sim.World) orderFunc {
	return func(st *sim.Storage) model.PhotoList { return st.List() }
}

// sprayBothWays performs the binary spray exchange in both directions,
// alternating single-photo transfers for budget fairness.
func sprayBothWays(sess *sim.Session, w *sim.World, order orderFunc) {
	stA, stB := w.Storage(sess.A), w.Storage(sess.B)
	qa := sprayables(stA, stB, order)
	qb := sprayables(stB, stA, order)
	ia, ib := 0, 0
	for (ia < len(qa) || ib < len(qb)) && !sess.Exhausted() {
		if ia < len(qa) {
			spray(sess, stA, stB, sess.B, qa[ia])
			ia++
		}
		if ib < len(qb) && !sess.Exhausted() {
			spray(sess, stB, stA, sess.A, qb[ib])
			ib++
		}
	}
}

// sprayables lists the photos of src eligible for spraying to dst: more
// than one copy remaining and not already held by dst.
func sprayables(src, dst *sim.Storage, order orderFunc) model.PhotoList {
	var out model.PhotoList
	for _, p := range order(src) {
		if src.Copies(p.ID) > 1 && !dst.Has(p.ID) {
			out = append(out, p)
		}
	}
	return out
}

// spray hands half of the copies of p to the receiver if it fits.
func spray(sess *sim.Session, src, dst *sim.Storage, to model.NodeID, p model.Photo) {
	if dst.Has(p.ID) || p.Size > dst.Free() {
		return
	}
	c := src.Copies(p.ID)
	if c <= 1 {
		return
	}
	if err := sess.Transfer(to, p); err != nil {
		return
	}
	half := c / 2
	src.SetCopies(p.ID, c-half)
	dst.SetCopies(p.ID, half)
}

// ModifiedSpray is the paper's coverage-aware Spray&Wait variant: identical
// spray mechanics, but photos are transmitted in descending order of their
// individual photo coverage, and a full storage evicts the photo with the
// least individual coverage. Like earlier utility-based routing it ignores
// the overlap between photos — which is exactly what our scheme improves
// on.
type ModifiedSpray struct {
	// Copies is the initial copy budget L (DefaultCopies if 0).
	Copies int

	w    *sim.World
	solo map[model.PhotoID]coverage.Coverage
}

var _ sim.Scheme = (*ModifiedSpray)(nil)

// NewModifiedSpray returns the variant with the paper's L = 4.
func NewModifiedSpray() *ModifiedSpray { return &ModifiedSpray{Copies: DefaultCopies} }

// Name implements sim.Scheme.
func (s *ModifiedSpray) Name() string { return "ModifiedSpray" }

// Unconstrained implements sim.Scheme.
func (s *ModifiedSpray) Unconstrained() bool { return false }

// Init implements sim.Scheme.
func (s *ModifiedSpray) Init(w *sim.World) {
	s.w = w
	s.solo = make(map[model.PhotoID]coverage.Coverage)
	if s.Copies <= 0 {
		s.Copies = DefaultCopies
	}
}

func (s *ModifiedSpray) soloCov(p model.Photo) coverage.Coverage {
	if c, ok := s.solo[p.ID]; ok {
		return c
	}
	c := s.w.Map.SoloCoverage(p)
	s.solo[p.ID] = c
	return c
}

// coverageOrder transmits highest individual coverage first.
func (s *ModifiedSpray) coverageOrder(st *sim.Storage) model.PhotoList {
	photos := st.List()
	sort.SliceStable(photos, func(i, j int) bool {
		ci, cj := s.soloCov(photos[i]), s.soloCov(photos[j])
		if c := ci.Cmp(cj); c != 0 {
			return c > 0
		}
		return photos[i].ID < photos[j].ID
	})
	return photos
}

// OnPhoto implements sim.Scheme: store the photo, evicting the least
// individually covering photos while the new one is more valuable.
func (s *ModifiedSpray) OnPhoto(node model.NodeID, p model.Photo) {
	st := s.w.Storage(node)
	if !s.makeRoom(st, p) {
		return
	}
	if err := st.Add(p); err != nil {
		return
	}
	st.SetCopies(p.ID, s.Copies)
}

// makeRoom evicts lowest-coverage photos until p fits; it reports false if
// p itself is the least valuable (and should be rejected).
func (s *ModifiedSpray) makeRoom(st *sim.Storage, p model.Photo) bool {
	if p.Size > st.Capacity() {
		return false
	}
	for p.Size > st.Free() {
		photos := s.coverageOrder(st)
		victim := photos[len(photos)-1]
		if !s.soloCov(victim).Less(s.soloCov(p)) {
			return false
		}
		st.Remove(victim.ID)
	}
	return true
}

// OnContact implements sim.Scheme.
func (s *ModifiedSpray) OnContact(sess *sim.Session) {
	if sess.A.IsCommandCenter() || sess.B.IsCommandCenter() {
		node := sess.A
		if node.IsCommandCenter() {
			node = sess.B
		}
		s.upload(sess, node)
		return
	}
	order := func(st *sim.Storage) model.PhotoList { return s.coverageOrder(st) }
	sprayBothWaysModified(sess, s, order)
}

// upload delivers photos best-coverage-first.
func (s *ModifiedSpray) upload(sess *sim.Session, node model.NodeID) {
	st := s.w.Storage(node)
	for _, p := range s.coverageOrder(st) {
		if s.w.CCHas(p.ID) {
			st.Remove(p.ID)
			continue
		}
		if err := sess.Transfer(model.CommandCenter, p); err != nil {
			break
		}
		st.Remove(p.ID)
	}
}

// sprayBothWaysModified is the spray exchange with coverage ordering and
// receiver-side eviction.
func sprayBothWaysModified(sess *sim.Session, s *ModifiedSpray, order orderFunc) {
	w := s.w
	stA, stB := w.Storage(sess.A), w.Storage(sess.B)
	qa := sprayables(stA, stB, order)
	qb := sprayables(stB, stA, order)
	ia, ib := 0, 0
	for (ia < len(qa) || ib < len(qb)) && !sess.Exhausted() {
		if ia < len(qa) {
			if s.makeRoom(stB, qa[ia]) {
				spray(sess, stA, stB, sess.B, qa[ia])
			}
			ia++
		}
		if ib < len(qb) && !sess.Exhausted() {
			if s.makeRoom(stA, qb[ib]) {
				spray(sess, stB, stA, sess.A, qb[ib])
			}
			ib++
		}
	}
}
