package routing

import (
	"math"

	"photodtn/internal/model"
	"photodtn/internal/sim"
)

// PhotoNet is the picture delivery service of Uddin et al. that the
// prototype demo (§IV-B) compares against: it prioritises the transmission
// of photos so as to maximise the "diversity" of the receiver's collection,
// where diversity is measured in a feature space of location, time stamp,
// and colour difference. It has no notion of PoIs, viewing directions, or
// delivery probability.
type PhotoNet struct {
	// LocScale and TimeScale normalise the location (metres) and time
	// (seconds) components of the photo distance.
	LocScale  float64
	TimeScale float64
	// WLoc, WTime, WColor weigh the three components.
	WLoc   float64
	WTime  float64
	WColor float64

	w *sim.World
}

var _ sim.Scheme = (*PhotoNet)(nil)

// NewPhotoNet returns PhotoNet with balanced feature weights scaled for a
// town-sized region and day-scale crowdsourcing.
func NewPhotoNet() *PhotoNet {
	return &PhotoNet{
		LocScale:  1000,
		TimeScale: 6 * 3600,
		WLoc:      1,
		WTime:     1,
		WColor:    1,
	}
}

// Name implements sim.Scheme.
func (s *PhotoNet) Name() string { return "PhotoNet" }

// Unconstrained implements sim.Scheme.
func (s *PhotoNet) Unconstrained() bool { return false }

// Init implements sim.Scheme.
func (s *PhotoNet) Init(w *sim.World) { s.w = w }

// dist is the PhotoNet feature distance between two photos.
func (s *PhotoNet) dist(p, q model.Photo) float64 {
	return s.WLoc*p.Location.Dist(q.Location)/s.LocScale +
		s.WTime*math.Abs(p.TakenAt-q.TakenAt)/s.TimeScale +
		s.WColor*p.Hist.Distance(q.Hist)
}

// minDist returns the distance from p to the nearest photo of set (+Inf for
// an empty set): p's diversity contribution if added to set.
func (s *PhotoNet) minDist(p model.Photo, set model.PhotoList) float64 {
	best := math.Inf(1)
	for _, q := range set {
		if q.ID == p.ID {
			continue
		}
		if d := s.dist(p, q); d < best {
			best = d
		}
	}
	return best
}

// OnPhoto implements sim.Scheme: keep the collection as diverse as
// possible. When full, the photo contributing least diversity (possibly
// the new one) is evicted.
func (s *PhotoNet) OnPhoto(node model.NodeID, p model.Photo) {
	st := s.w.Storage(node)
	if p.Size > st.Capacity() {
		return
	}
	for p.Size > st.Free() {
		all := append(st.List(), p)
		victim := s.leastDiverse(all)
		if victim == p.ID {
			return
		}
		st.Remove(victim)
	}
	_ = st.Add(p)
}

// leastDiverse returns the photo whose removal least hurts diversity: the
// one with the smallest distance to its nearest neighbour (ties by ID).
func (s *PhotoNet) leastDiverse(set model.PhotoList) model.PhotoID {
	bestID := set[0].ID
	best := math.Inf(1)
	for _, p := range set {
		d := s.minDist(p, set)
		if d < best || (d == best && p.ID < bestID) {
			best, bestID = d, p.ID
		}
	}
	return bestID
}

// OnContact implements sim.Scheme: each side repeatedly sends the photo
// that would add the most diversity to the receiver's collection.
func (s *PhotoNet) OnContact(sess *sim.Session) {
	if sess.A.IsCommandCenter() || sess.B.IsCommandCenter() {
		node := sess.A
		if node.IsCommandCenter() {
			node = sess.B
		}
		s.upload(sess, node)
		return
	}
	// Bound the exchange: receiver-side evictions could otherwise make two
	// full storages trade the same photos back and forth forever on an
	// unlimited-budget contact.
	maxTransfers := s.w.Storage(sess.A).Len() + s.w.Storage(sess.B).Len()
	for i := 0; i <= maxTransfers && !sess.Exhausted(); i++ {
		moved := s.sendMostDiverse(sess, sess.A, sess.B)
		if !sess.Exhausted() {
			moved = s.sendMostDiverse(sess, sess.B, sess.A) || moved
		}
		if !moved {
			break
		}
	}
}

// sendMostDiverse transfers one photo from src to dst: the one maximising
// distance to dst's current collection, provided dst benefits (the receiver
// evicts its least diverse photo to make room when that improves
// diversity). Reports whether a transfer happened.
func (s *PhotoNet) sendMostDiverse(sess *sim.Session, from, to model.NodeID) bool {
	stFrom, stTo := s.w.Storage(from), s.w.Storage(to)
	toList := stTo.List()
	var (
		best     model.Photo
		bestGain = -1.0
		found    bool
	)
	for _, p := range stFrom.List() {
		if stTo.Has(p.ID) {
			continue
		}
		g := s.minDist(p, toList)
		if g > bestGain {
			best, bestGain, found = p, g, true
		}
	}
	if !found {
		return false
	}
	// Make room at the receiver if eviction improves diversity.
	for best.Size > stTo.Free() {
		victim := s.leastDiverse(append(stTo.List(), best))
		if victim == best.ID {
			return false
		}
		stTo.Remove(victim)
	}
	return sess.Transfer(to, best) == nil
}

// upload sends the command center the photos most diverse with respect to
// what it already received.
func (s *PhotoNet) upload(sess *sim.Session, node model.NodeID) {
	st := s.w.Storage(node)
	for !sess.Exhausted() {
		cc := s.w.CCPhotos()
		var (
			best     model.Photo
			bestGain = -1.0
			found    bool
		)
		for _, p := range st.List() {
			if s.w.CCHas(p.ID) {
				st.Remove(p.ID)
				continue
			}
			if g := s.minDist(p, cc); g > bestGain {
				best, bestGain, found = p, g, true
			}
		}
		if !found {
			return
		}
		if err := sess.Transfer(model.CommandCenter, best); err != nil {
			return
		}
		st.Remove(best.ID)
	}
}
