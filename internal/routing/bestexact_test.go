package routing

import (
	"math"
	"math/rand"
	"testing"

	"photodtn/internal/model"
	"photodtn/internal/sim"
	"photodtn/internal/trace"
	"photodtn/internal/workload"
)

func TestComputeBestPossibleTimeRespecting(t *testing.T) {
	// Contact 2→CC happens BEFORE 1→2, so node 1's photo must not be
	// deliverable (paths must respect time).
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 2, B: 0},
		{Start: 30, End: 40, A: 1, B: 2},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 1, Seed: 1,
		Photos: []sim.PhotoEvent{{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)}},
	}
	res, err := ComputeBestPossible(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered != 0 {
		t.Fatalf("delivered = %d, want 0", res.Final.Delivered)
	}
	// Reversed contact order delivers.
	tr.Contacts = []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 2},
		{Start: 30, End: 40, A: 2, B: 0},
	}
	res, err = ComputeBestPossible(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", res.Final.Delivered)
	}
}

func TestComputeBestPossiblePhotoAfterPathGone(t *testing.T) {
	// Photo taken after the node's last useful contact never arrives.
	tr := &trace.Trace{Nodes: 1, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 0},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 1, Seed: 1,
		Photos: []sim.PhotoEvent{{Time: 50, Node: 1, Photo: viewFrom(1, 0, 0)}},
	}
	res, err := ComputeBestPossible(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered != 0 {
		t.Fatalf("delivered = %d, want 0", res.Final.Delivered)
	}
}

// TestComputeBestPossibleMatchesSimulation is the key equivalence check:
// the analytic evaluator must reproduce the literal epidemic simulation
// sample for sample on randomized scenarios.
func TestComputeBestPossibleMatchesSimulation(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := randomScenario(t, seed)
		exact, err := ComputeBestPossible(cfg)
		if err != nil {
			t.Fatal(err)
		}
		simres, err := sim.Run(cfg, NewBestPossible())
		if err != nil {
			t.Fatal(err)
		}
		if len(exact.Samples) != len(simres.Samples) {
			t.Fatalf("seed %d: sample counts differ: %d vs %d", seed, len(exact.Samples), len(simres.Samples))
		}
		for i := range exact.Samples {
			e, s := exact.Samples[i], simres.Samples[i]
			if e.Delivered != s.Delivered {
				t.Fatalf("seed %d sample %d: delivered %d vs %d", seed, i, e.Delivered, s.Delivered)
			}
			if math.Abs(e.PointFrac-s.PointFrac) > 1e-9 || math.Abs(e.AspectRad-s.AspectRad) > 1e-9 {
				t.Fatalf("seed %d sample %d: coverage (%v,%v) vs (%v,%v)",
					seed, i, e.PointFrac, e.AspectRad, s.PointFrac, s.AspectRad)
			}
		}
		if exact.Final.Delivered != simres.Final.Delivered {
			t.Fatalf("seed %d: final delivered %d vs %d", seed, exact.Final.Delivered, simres.Final.Delivered)
		}
	}
}

// randomScenario builds a small but non-trivial random scenario: 12 nodes,
// 60 hours, gateway uploads, random workload.
func randomScenario(t *testing.T, seed int64) sim.Config {
	t.Helper()
	tr, err := trace.Generate(trace.SynthConfig{
		Nodes: 12, Span: 60 * 3600, Communities: 3,
		IntraRate: 0.3 / 3600, InterRate: 0.02 / 3600,
		RateJitter: 0.5, MeanContactDur: 300, ScanInterval: 60, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 1000))
	wl := workload.Default(tr.Nodes, tr.Duration())
	wl.PhotosPerHour = 40
	wl.NumPoIs = 30
	pois := workload.GeneratePoIs(wl, rng)
	photos := workload.GeneratePhotos(wl, rng)
	return sim.Config{
		Trace:           tr,
		Map:             mapOf(pois),
		Photos:          photos,
		StorageBytes:    1 << 30,
		Gateways:        []model.NodeID{1, 7},
		GatewayInterval: 2 * 3600,
		GatewayDuration: 600,
		SampleInterval:  10 * 3600,
		Seed:            seed,
	}
}
