// Semantic validators for inbound protocol messages. Each check returns a
// typed *Violation (nil when the message is acceptable) that the peer
// layer reports back to the Guard and folds into its abort error chain.
// The validators are pure functions of (message, local clock, config) so
// they never perturb state: a rejected message aborts the contact under
// the §III-D rule — nothing journaled, nothing applied.
package guard

import (
	"math"

	"photodtn/internal/model"
	"photodtn/internal/wire"
)

// finite reports whether v is a usable real number.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// CheckHello validates the remote's identity claims after the version
// handshake. PROPHET delivery predictabilities live in [0,1]; the learned
// contact rate λ is a non-negative finite rate; the remote clock must sit
// within the skew allowance of ours (a far-future clock would poison the
// session time both sides derive metadata ages from — the monotone-age
// guard); and a non-command-center peer may not advertise more storage
// than MaxPeerCapacity, which would otherwise vacuum the joint
// reallocation's best photos onto the liar.
func (c Config) CheckHello(h wire.Hello, now float64) *Violation {
	if !finite(h.DeliveryProb) || h.DeliveryProb < 0 || h.DeliveryProb > 1 {
		return violationf(ReasonBadProphet, "delivery predictability %v outside [0,1]", h.DeliveryProb)
	}
	if !finite(h.Lambda) || h.Lambda < 0 {
		return violationf(ReasonBadProphet, "contact rate λ=%v", h.Lambda)
	}
	if !finite(h.Time) || math.Abs(h.Time-now) > c.MaxClockSkew {
		return violationf(ReasonBadTimestamp, "remote clock %v vs local %v exceeds skew %v",
			h.Time, now, c.MaxClockSkew)
	}
	if h.Capacity < 0 {
		return violationf(ReasonOversized, "negative capacity %d", h.Capacity)
	}
	if !h.Node.IsCommandCenter() && h.Capacity > c.MaxPeerCapacity {
		return violationf(ReasonOversized, "claimed capacity %d exceeds cap %d", h.Capacity, c.MaxPeerCapacity)
	}
	return nil
}

// CheckPhoto validates one photo's metadata tuple: the model's own
// physical-meaning checks (positive range, FOV in (0,2π], positive size)
// plus finite coordinates, finite capture time and orientation, and the
// declared file size against the negotiated cap.
func (c Config) CheckPhoto(p model.Photo) *Violation {
	if err := p.Validate(); err != nil {
		return violationf(ReasonBadGeometry, "%v: %v", p.ID, err)
	}
	if !finite(p.Location.X) || !finite(p.Location.Y) ||
		!finite(p.Orientation) || !finite(p.TakenAt) {
		return violationf(ReasonBadGeometry, "%v: non-finite coordinates", p.ID)
	}
	if p.Size > c.MaxPhotoBytes {
		return violationf(ReasonOversized, "%v declares %d bytes, cap %d", p.ID, p.Size, c.MaxPhotoBytes)
	}
	return nil
}

// CheckMetadata validates a metadata message against the session clock.
// Entry timestamps may sit anywhere in the past (stale entries merely
// decay toward useless under §III-B) but not beyond the skew allowance in
// the future — a far-future snapshot would shadow every honest update from
// that node until its fake time passes. Duplicate origins within one
// message are a replay; entry and per-entry photo counts are bounded so a
// single frame cannot balloon the cache.
func (c Config) CheckMetadata(md wire.Metadata, session float64) *Violation {
	if len(md.Entries) > c.MaxMetaEntries {
		return violationf(ReasonOversized, "%d metadata entries, cap %d", len(md.Entries), c.MaxMetaEntries)
	}
	seen := make(map[model.NodeID]bool, len(md.Entries))
	for _, e := range md.Entries {
		if seen[e.Node] {
			return violationf(ReasonReplay, "duplicate metadata entry for %v", e.Node)
		}
		seen[e.Node] = true
		if !finite(e.P) || e.P < 0 || e.P > 1 {
			return violationf(ReasonBadProphet, "entry %v predictability %v outside [0,1]", e.Node, e.P)
		}
		if !finite(e.Lambda) || e.Lambda < 0 {
			return violationf(ReasonBadProphet, "entry %v rate λ=%v", e.Node, e.Lambda)
		}
		if !finite(e.Timestamp) || e.Timestamp > session+c.MaxClockSkew {
			return violationf(ReasonBadTimestamp, "entry %v stamped %v, session %v",
				e.Node, e.Timestamp, session)
		}
		if len(e.Photos) > c.MaxPhotosPerEntry {
			return violationf(ReasonOversized, "entry %v lists %d photos, cap %d",
				e.Node, len(e.Photos), c.MaxPhotosPerEntry)
		}
		for _, p := range e.Photos {
			if v := c.CheckPhoto(p); v != nil {
				return v
			}
		}
	}
	return nil
}

// CheckChunk validates one inbound chunk against the session's negotiated
// transfer parameters and (when non-empty) the pinned want-set. The wire
// decoder already enforced canonical geometry; here we pin the chunk size
// to the negotiated one (an honest sender always slices at the session's
// size) and the declared total to the photo-size cap.
func (c Config) CheckChunk(ch wire.Chunk, want map[model.PhotoID]bool, chunkSize int) *Violation {
	if v := c.CheckPhoto(ch.Photo); v != nil {
		return v
	}
	if len(want) > 0 && !want[ch.Photo.ID] {
		return violationf(ReasonBadTransfer, "chunk for unrequested %v", ch.Photo.ID)
	}
	if chunkSize > 0 && ch.ChunkSize != uint32(chunkSize) {
		return violationf(ReasonBadTransfer, "chunk size %d, negotiated %d", ch.ChunkSize, chunkSize)
	}
	if ch.Total > uint64(c.MaxPhotoBytes) {
		return violationf(ReasonOversized, "chunk claims %d payload bytes, cap %d", ch.Total, c.MaxPhotoBytes)
	}
	return nil
}

// CheckPhotoData validates one v1 photo delivery against the pinned
// want-set (empty means unpinned: v1 uploads carry no announcement).
func (c Config) CheckPhotoData(d wire.PhotoData, want map[model.PhotoID]bool) *Violation {
	if v := c.CheckPhoto(d.Photo); v != nil {
		return v
	}
	if len(want) > 0 && !want[d.Photo.ID] {
		return violationf(ReasonBadTransfer, "photo data for unrequested %v", d.Photo.ID)
	}
	return nil
}

// CheckResumeOffer validates a resume offer against the request that
// preceded it: every entry must name a photo the remote actually asked
// for, at most once, with a total under the photo-size cap.
func (c Config) CheckResumeOffer(o wire.ResumeOffer, requested map[model.PhotoID]bool) *Violation {
	seen := make(map[model.PhotoID]bool, len(o.Entries))
	for _, e := range o.Entries {
		if seen[e.ID] {
			return violationf(ReasonBadTransfer, "duplicate resume entry for %v", e.ID)
		}
		seen[e.ID] = true
		if requested != nil && !requested[e.ID] {
			return violationf(ReasonBadTransfer, "resume entry for unrequested %v", e.ID)
		}
		if e.Total > uint64(c.MaxPhotoBytes) {
			return violationf(ReasonOversized, "resume entry %v claims %d bytes, cap %d",
				e.ID, e.Total, c.MaxPhotoBytes)
		}
	}
	return nil
}

// CheckChunkAck validates one chunk ack against the pinned plan of
// in-flight chunks: an ack must match a chunk actually sent and not yet
// acknowledged. outstanding maps (photo, index) to the number of unacked
// sends (always 0 or 1 with an honest sender); the caller decrements on
// acceptance.
func (c Config) CheckChunkAck(a wire.ChunkAck, outstanding map[ChunkKey]int) *Violation {
	if outstanding[ChunkKey{ID: a.ID, Index: a.Index}] <= 0 {
		return violationf(ReasonBadTransfer, "ack for unsent chunk %v[%d]", a.ID, a.Index)
	}
	return nil
}

// ChunkKey identifies one chunk of one photo for plan pinning.
type ChunkKey struct {
	ID    model.PhotoID
	Index uint32
}
