package guard

import (
	"errors"
	"math"
	"testing"

	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/wire"
)

func goodPhoto(owner model.NodeID, seq uint32) model.Photo {
	return model.Photo{
		ID:       model.MakePhotoID(owner, seq),
		Owner:    owner,
		Location: geo.Vec{X: 10, Y: 20},
		Range:    120,
		FOV:      geo.Radians(60),
		Size:     4 << 20,
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.MaxContactRate != DefaultMaxContactRate {
		t.Fatalf("MaxContactRate = %v", c.MaxContactRate)
	}
	if c.ContactBurst != DefaultContactBurst {
		t.Fatalf("ContactBurst = %v", c.ContactBurst)
	}
	if c.MaxByteRate != 0 {
		t.Fatalf("MaxByteRate should default to off, got %v", c.MaxByteRate)
	}
	if c.QuarantineTTL != DefaultQuarantineTTL || c.QuarantineScore != DefaultQuarantineScore {
		t.Fatalf("quarantine defaults = %v/%v", c.QuarantineTTL, c.QuarantineScore)
	}
	if c.MaxClockSkew != DefaultMaxClockSkew || c.MaxPhotoBytes != DefaultMaxPhotoBytes {
		t.Fatalf("bounds defaults = %v/%v", c.MaxClockSkew, c.MaxPhotoBytes)
	}
	// Negatives normalise to "off" for the optional limiters.
	c = Config{MaxContactRate: -1, MaxByteRate: -1, ScoreHalfLife: -1}.WithDefaults()
	if c.MaxContactRate != 0 || c.MaxByteRate != 0 || c.ScoreHalfLife != 0 {
		t.Fatalf("negatives not normalised: %+v", c)
	}
}

func TestNilGuardIsNoOp(t *testing.T) {
	var g *Guard
	if err := g.AdmitContact(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AdmitBytes(1, 1<<30, 0); err != nil {
		t.Fatal(err)
	}
	if g.Report(1, ReasonPhase, 0) {
		t.Fatal("nil guard quarantined")
	}
	if g.Quarantined(1, 0) {
		t.Fatal("nil guard reports quarantine")
	}
	g.RestoreQuarantine(1, 100, 0)
	g.OnQuarantine(func(model.NodeID, float64, Reason) {})
	if q := g.ActiveQuarantines(0); q != nil {
		t.Fatalf("nil guard active quarantines = %v", q)
	}
	if s := g.Stats(0); s.Violations != 0 {
		t.Fatalf("nil guard stats = %+v", s)
	}
}

func TestContactBucketRefills(t *testing.T) {
	g := New(Config{MaxContactRate: 1, ContactBurst: 2}, nil)
	// Burst admits two back-to-back contacts, then the bucket is dry.
	for i := 0; i < 2; i++ {
		if err := g.AdmitContact(5, 100); err != nil {
			t.Fatalf("contact %d: %v", i, err)
		}
	}
	err := g.AdmitContact(5, 100)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("dry bucket err = %v, want ErrRateLimited", err)
	}
	// One second refills one token.
	if err := g.AdmitContact(5, 101); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	// Buckets are per-peer: node 6 is untouched by node 5's spending.
	if err := g.AdmitContact(6, 100); err != nil {
		t.Fatalf("other peer: %v", err)
	}
	st := g.Stats(101)
	if st.ShedContacts != 1 || st.ByReason[ReasonFlood] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReportEscalatesToQuarantine(t *testing.T) {
	var gotNode model.NodeID
	var gotUntil float64
	var gotReason Reason
	calls := 0
	g := New(Config{QuarantineScore: 3, QuarantineTTL: 50, ScoreHalfLife: -1}, nil)
	g.OnQuarantine(func(n model.NodeID, until float64, r Reason) {
		calls++
		gotNode, gotUntil, gotReason = n, until, r
	})

	if g.Report(7, ReasonBadProphet, 10) || g.Report(7, ReasonReplay, 11) {
		t.Fatal("quarantined below threshold")
	}
	if !g.Report(7, ReasonBadGeometry, 12) {
		t.Fatal("third violation (score 3) should quarantine")
	}
	if calls != 1 || gotNode != 7 || gotUntil != 62 || gotReason != ReasonBadGeometry {
		t.Fatalf("hook called %d times with (%v, %v, %v)", calls, gotNode, gotUntil, gotReason)
	}
	if !g.Quarantined(7, 12) || g.Quarantined(7, 62.5) {
		t.Fatal("quarantine window wrong")
	}
	// Admission during the ban is shed with the typed sentinel.
	if err := g.AdmitContact(7, 20); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("admit during ban = %v, want ErrQuarantined", err)
	}
	// After expiry the peer is admitted again (score was reset).
	if err := g.AdmitContact(7, 63); err != nil {
		t.Fatalf("admit after expiry: %v", err)
	}
	st := g.Stats(20)
	if st.QuarantineEvents != 1 || st.Quarantined != 1 || st.Violations != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScoreHalfLifeDecays(t *testing.T) {
	g := New(Config{QuarantineScore: 3, ScoreHalfLife: 10}, nil)
	// Two violations, then five half-lives of quiet: the residual score
	// (2/32) plus two fresh violations stays below the threshold.
	g.Report(3, ReasonPhase, 0)
	g.Report(3, ReasonPhase, 0)
	if g.Report(3, ReasonPhase, 50) {
		t.Fatal("decayed score should not quarantine on the third violation")
	}
	// Without decay, the next two would have crossed long ago; with it, the
	// score sits near 2 and the fifth violation tips it over.
	if g.Report(3, ReasonPhase, 50) {
		t.Fatal("fourth violation should still be below threshold")
	}
	if !g.Report(3, ReasonPhase, 50) {
		t.Fatal("fifth violation within the window should quarantine")
	}
}

func TestFloodEscalatesToQuarantine(t *testing.T) {
	// Flood violations weigh 0.25: with threshold 1.0, the 4th shed contact
	// (not the 1st) quarantines — honest burstiness is tolerated.
	g := New(Config{MaxContactRate: 0.001, ContactBurst: 1, QuarantineScore: 1,
		QuarantineTTL: 100, ScoreHalfLife: -1}, nil)
	if err := g.AdmitContact(9, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := g.AdmitContact(9, 0); !errors.Is(err, ErrRateLimited) {
			t.Fatalf("shed %d: %v", i, err)
		}
	}
	if err := g.AdmitContact(9, 0); !errors.Is(err, ErrQuarantined) && !errors.Is(err, ErrRateLimited) {
		t.Fatalf("4th shed: %v", err)
	}
	if !g.Quarantined(9, 0) {
		t.Fatal("sustained flooding did not quarantine")
	}
}

func TestAdmitBytes(t *testing.T) {
	// Off by default.
	g := New(Config{}, nil)
	if err := g.AdmitBytes(1, 1<<40, 0); err != nil {
		t.Fatalf("byte limiting should default off: %v", err)
	}
	g = New(Config{MaxByteRate: 100, ByteBurst: 1000}, nil)
	if err := g.AdmitBytes(1, 1000, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AdmitBytes(1, 1, 0); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over budget = %v, want ErrRateLimited", err)
	}
	// 10 seconds refill 1000 bytes.
	if err := g.AdmitBytes(1, 1000, 10); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestRestoreQuarantine(t *testing.T) {
	g := New(Config{}, nil)
	fired := 0
	g.OnQuarantine(func(model.NodeID, float64, Reason) { fired++ })

	g.RestoreQuarantine(4, 50, 100) // already expired: dropped
	if g.Quarantined(4, 100) {
		t.Fatal("expired restore took effect")
	}
	g.RestoreQuarantine(4, 200, 100)
	if !g.Quarantined(4, 150) || g.Quarantined(4, 250) {
		t.Fatal("restored quarantine window wrong")
	}
	g.RestoreQuarantine(4, 150, 100) // shorter than current: keep the longer ban
	if g.Quarantined(4, 250) || !g.Quarantined(4, 180) {
		t.Fatal("restore shortened an existing ban")
	}
	if fired != 0 {
		t.Fatalf("restore fired the hook %d times; the original imposition already journaled it", fired)
	}
	g.RestoreQuarantine(2, 300, 100)
	q := g.ActiveQuarantines(100)
	if len(q) != 2 || q[0].Node != 2 || q[0].Until != 300 || q[1].Node != 4 || q[1].Until != 200 {
		t.Fatalf("active quarantines = %+v", q)
	}
	// Restores are not quarantine *events*.
	if st := g.Stats(100); st.QuarantineEvents != 0 || st.Quarantined != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReasonStrings(t *testing.T) {
	want := map[Reason]string{
		ReasonPhase: "phase", ReasonReplay: "replay", ReasonBadProphet: "bad-prophet",
		ReasonBadTimestamp: "bad-timestamp", ReasonBadGeometry: "bad-geometry",
		ReasonOversized: "oversized", ReasonBadTransfer: "bad-transfer", ReasonFlood: "flood",
	}
	for r, s := range want {
		if r.String() != s {
			t.Fatalf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
	if Reason(99).String() != "unknown" {
		t.Fatalf("unknown reason = %q", Reason(99).String())
	}
	v := violationf(ReasonReplay, "dup %d", 5)
	if v.Error() != "guard: replay violation: dup 5" {
		t.Fatalf("violation error = %q", v.Error())
	}
}

func TestCheckHello(t *testing.T) {
	c := Config{}.WithDefaults()
	ok := wire.Hello{Node: 3, Lambda: 0.01, DeliveryProb: 0.5, Time: 1000, Capacity: 64 << 20}
	if v := c.CheckHello(ok, 1000); v != nil {
		t.Fatalf("honest hello rejected: %v", v)
	}
	cases := []struct {
		name   string
		mut    func(*wire.Hello)
		reason Reason
	}{
		{"prob above 1", func(h *wire.Hello) { h.DeliveryProb = 42 }, ReasonBadProphet},
		{"prob negative", func(h *wire.Hello) { h.DeliveryProb = -0.1 }, ReasonBadProphet},
		{"prob NaN", func(h *wire.Hello) { h.DeliveryProb = math.NaN() }, ReasonBadProphet},
		{"lambda negative", func(h *wire.Hello) { h.Lambda = -3 }, ReasonBadProphet},
		{"lambda inf", func(h *wire.Hello) { h.Lambda = math.Inf(1) }, ReasonBadProphet},
		{"clock far future", func(h *wire.Hello) { h.Time = 1000 + c.MaxClockSkew + 1 }, ReasonBadTimestamp},
		{"clock far past", func(h *wire.Hello) { h.Time = 1000 - c.MaxClockSkew - 1 }, ReasonBadTimestamp},
		{"clock NaN", func(h *wire.Hello) { h.Time = math.NaN() }, ReasonBadTimestamp},
		{"capacity negative", func(h *wire.Hello) { h.Capacity = -1 }, ReasonOversized},
		{"capacity absurd", func(h *wire.Hello) { h.Capacity = c.MaxPeerCapacity + 1 }, ReasonOversized},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := ok
			tc.mut(&h)
			v := c.CheckHello(h, 1000)
			if v == nil || v.Reason != tc.reason {
				t.Fatalf("violation = %v, want reason %v", v, tc.reason)
			}
		})
	}
	// The command center is exempt from the capacity cap (it archives
	// everything by design).
	cc := ok
	cc.Node = model.CommandCenter
	cc.Capacity = c.MaxPeerCapacity + 1
	if v := c.CheckHello(cc, 1000); v != nil {
		t.Fatalf("command-center capacity rejected: %v", v)
	}
}

func TestCheckMetadata(t *testing.T) {
	c := Config{MaxMetaEntries: 2, MaxPhotosPerEntry: 2}.WithDefaults()
	entry := func(n model.NodeID, ts float64) wire.MetaEntry {
		return wire.MetaEntry{Node: n, Lambda: 0.01, P: 0.5, Timestamp: ts,
			Photos: model.PhotoList{goodPhoto(n, 0)}}
	}
	if v := c.CheckMetadata(wire.Metadata{Entries: []wire.MetaEntry{entry(1, 900), entry(2, 950)}}, 1000); v != nil {
		t.Fatalf("honest metadata rejected: %v", v)
	}
	// Far-past timestamps are fine — they merely decay to useless.
	if v := c.CheckMetadata(wire.Metadata{Entries: []wire.MetaEntry{entry(1, -1e9)}}, 1000); v != nil {
		t.Fatalf("ancient entry rejected: %v", v)
	}

	cases := []struct {
		name   string
		md     wire.Metadata
		reason Reason
	}{
		{"too many entries",
			wire.Metadata{Entries: []wire.MetaEntry{entry(1, 1), entry(2, 2), entry(3, 3)}},
			ReasonOversized},
		{"duplicate origin",
			wire.Metadata{Entries: []wire.MetaEntry{entry(1, 1), entry(1, 2)}},
			ReasonReplay},
		{"bad predictability",
			wire.Metadata{Entries: []wire.MetaEntry{{Node: 1, P: 1.5, Timestamp: 1}}},
			ReasonBadProphet},
		{"negative lambda",
			wire.Metadata{Entries: []wire.MetaEntry{{Node: 1, Lambda: -1, P: 0.5, Timestamp: 1}}},
			ReasonBadProphet},
		{"far-future timestamp",
			wire.Metadata{Entries: []wire.MetaEntry{entry(1, 1000 + c.MaxClockSkew + 1)}},
			ReasonBadTimestamp},
		{"NaN timestamp",
			wire.Metadata{Entries: []wire.MetaEntry{entry(1, math.NaN())}},
			ReasonBadTimestamp},
		{"too many photos", func() wire.Metadata {
			e := entry(1, 1)
			e.Photos = model.PhotoList{goodPhoto(1, 0), goodPhoto(1, 1), goodPhoto(1, 2)}
			return wire.Metadata{Entries: []wire.MetaEntry{e}}
		}(), ReasonOversized},
		{"non-finite photo location", func() wire.Metadata {
			e := entry(1, 1)
			p := goodPhoto(1, 0)
			p.Location.X = math.NaN()
			e.Photos = model.PhotoList{p}
			return wire.Metadata{Entries: []wire.MetaEntry{e}}
		}(), ReasonBadGeometry},
		{"oversized photo", func() wire.Metadata {
			e := entry(1, 1)
			p := goodPhoto(1, 0)
			p.Size = 1 << 60
			e.Photos = model.PhotoList{p}
			return wire.Metadata{Entries: []wire.MetaEntry{e}}
		}(), ReasonOversized},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := c.CheckMetadata(tc.md, 1000)
			if v == nil || v.Reason != tc.reason {
				t.Fatalf("violation = %v, want reason %v", v, tc.reason)
			}
		})
	}
}

func TestCheckChunkAndPhotoData(t *testing.T) {
	c := Config{}.WithDefaults()
	p := goodPhoto(2, 0)
	want := map[model.PhotoID]bool{p.ID: true}
	ch := wire.Chunk{Photo: p, Index: 0, Count: 1, ChunkSize: 1 << 16, Total: uint64(p.Size)}
	if v := c.CheckChunk(ch, want, 1<<16); v != nil {
		t.Fatalf("honest chunk rejected: %v", v)
	}
	if v := c.CheckChunk(ch, map[model.PhotoID]bool{999: true}, 1<<16); v == nil || v.Reason != ReasonBadTransfer {
		t.Fatalf("unrequested chunk = %v", v)
	}
	if v := c.CheckChunk(ch, want, 1<<15); v == nil || v.Reason != ReasonBadTransfer {
		t.Fatalf("wrong chunk size = %v", v)
	}
	big := ch
	big.Total = uint64(c.MaxPhotoBytes) + 1
	if v := c.CheckChunk(big, want, 1<<16); v == nil || v.Reason != ReasonOversized {
		t.Fatalf("oversized total = %v", v)
	}

	if v := c.CheckPhotoData(wire.PhotoData{Photo: p}, want); v != nil {
		t.Fatalf("honest photo data rejected: %v", v)
	}
	if v := c.CheckPhotoData(wire.PhotoData{Photo: p}, map[model.PhotoID]bool{999: true}); v == nil || v.Reason != ReasonBadTransfer {
		t.Fatalf("unrequested photo data = %v", v)
	}
	// Empty want-set means unpinned (v1 uploads carry no announcement).
	if v := c.CheckPhotoData(wire.PhotoData{Photo: p}, nil); v != nil {
		t.Fatalf("unpinned photo data rejected: %v", v)
	}
}

func TestCheckResumeOffer(t *testing.T) {
	c := Config{}.WithDefaults()
	req := map[model.PhotoID]bool{7: true, 8: true}
	offer := wire.ResumeOffer{Entries: []wire.ResumeEntry{{ID: 7, Total: 100}, {ID: 8, Total: 200}}}
	if v := c.CheckResumeOffer(offer, req); v != nil {
		t.Fatalf("honest offer rejected: %v", v)
	}
	dup := wire.ResumeOffer{Entries: []wire.ResumeEntry{{ID: 7}, {ID: 7}}}
	if v := c.CheckResumeOffer(dup, req); v == nil || v.Reason != ReasonBadTransfer {
		t.Fatalf("duplicate entry = %v", v)
	}
	alien := wire.ResumeOffer{Entries: []wire.ResumeEntry{{ID: 99}}}
	if v := c.CheckResumeOffer(alien, req); v == nil || v.Reason != ReasonBadTransfer {
		t.Fatalf("unrequested entry = %v", v)
	}
	big := wire.ResumeOffer{Entries: []wire.ResumeEntry{{ID: 7, Total: uint64(c.MaxPhotoBytes) + 1}}}
	if v := c.CheckResumeOffer(big, req); v == nil || v.Reason != ReasonOversized {
		t.Fatalf("oversized entry = %v", v)
	}
}

func TestCheckChunkAck(t *testing.T) {
	c := Config{}.WithDefaults()
	outstanding := map[ChunkKey]int{{ID: 5, Index: 2}: 1}
	if v := c.CheckChunkAck(wire.ChunkAck{ID: 5, Index: 2}, outstanding); v != nil {
		t.Fatalf("honest ack rejected: %v", v)
	}
	if v := c.CheckChunkAck(wire.ChunkAck{ID: 5, Index: 3}, outstanding); v == nil || v.Reason != ReasonBadTransfer {
		t.Fatalf("ack for unsent chunk = %v", v)
	}
	// The caller decrements on acceptance; a second identical ack is then
	// an over-ack.
	outstanding[ChunkKey{ID: 5, Index: 2}] = 0
	if v := c.CheckChunkAck(wire.ChunkAck{ID: 5, Index: 2}, outstanding); v == nil || v.Reason != ReasonBadTransfer {
		t.Fatalf("over-ack = %v", v)
	}
}
