// Package guard is the live path's defense-in-depth layer against
// adversarial peers. The paper's setting is opportunistic contacts with
// untrusted participants: a hostile or buggy remote can inject absurd
// PROPHET predictabilities, poison the metadata cache with far-future
// snapshots, replay frames, desynchronize the session state machine, or
// flood contacts to starve honest ones. The journal (PR 5) protects the
// node against its own crashes and the session layer (PR 7) against its
// own concurrency; this package protects it against *other nodes*.
//
// It provides three mechanisms, all driven by the caller's logical clock so
// behaviour is deterministic under test:
//
//   - Per-peer ingress accounting: token buckets for contact admissions and
//     inbound bytes. A peer over its budget is shed with ErrRateLimited
//     before any protocol state is touched.
//   - A misbehavior score per peer, bumped by typed violations (Reason).
//     Crossing the threshold quarantines the peer for a TTL; contacts from
//     a quarantined peer are rejected with ErrQuarantined at admission.
//   - Semantic validators (validate.go) for every inbound message class,
//     returning typed *Violation errors the peer layer reports back here.
//
// The guard holds its own mutex and never calls back into the peer while
// holding it: quarantine notifications run after the lock is released, so
// the peer may journal them under its own lock without lock-order cycles.
// A nil *Guard is a strict no-op on every method, mirroring the obs
// package's disabled-is-free convention.
package guard

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"photodtn/internal/model"
	"photodtn/internal/obs"
)

// Admission errors. The peer layer wraps these in its own sentinels
// (peer.ErrPeerQuarantined, peer.ErrRateLimited).
var (
	// ErrQuarantined reports a contact from a peer inside its quarantine
	// TTL.
	ErrQuarantined = errors.New("guard: peer quarantined")
	// ErrRateLimited reports a contact or read shed by a per-peer token
	// bucket.
	ErrRateLimited = errors.New("guard: peer rate limited")
)

// Reason classifies a protocol violation. The taxonomy is the detector
// column of DESIGN.md §12's threat table; Stats counts violations per
// reason so an operator can tell a flood from a poisoning attempt.
type Reason uint8

// Violation reasons.
const (
	// ReasonPhase: out-of-order, duplicate, or phase-invalid message (the
	// session state machine rejected it).
	ReasonPhase Reason = iota + 1
	// ReasonReplay: a replayed frame or duplicate entry (second metadata
	// entry for one origin, duplicate chunk within a session).
	ReasonReplay
	// ReasonBadProphet: a delivery predictability or contact rate outside
	// its legal range (PROPHET probabilities live in [0,1]).
	ReasonBadProphet
	// ReasonBadTimestamp: a timestamp beyond the clock-skew allowance —
	// the monotone-age guard against entries that would never expire.
	ReasonBadTimestamp
	// ReasonBadGeometry: photo/footprint geometry that is not physically
	// meaningful (non-finite coordinates, degenerate arcs).
	ReasonBadGeometry
	// ReasonOversized: a declared size or count above the negotiated caps.
	ReasonOversized
	// ReasonBadTransfer: a ChunkAck or ResumeOffer inconsistent with the
	// pinned transfer plan.
	ReasonBadTransfer
	// ReasonFlood: a token bucket shed the peer (counted as a soft
	// violation so sustained flooding eventually quarantines).
	ReasonFlood

	numReasons
)

// String implements fmt.Stringer; the forms are stable (they name obs
// counters).
func (r Reason) String() string {
	switch r {
	case ReasonPhase:
		return "phase"
	case ReasonReplay:
		return "replay"
	case ReasonBadProphet:
		return "bad-prophet"
	case ReasonBadTimestamp:
		return "bad-timestamp"
	case ReasonBadGeometry:
		return "bad-geometry"
	case ReasonOversized:
		return "oversized"
	case ReasonBadTransfer:
		return "bad-transfer"
	case ReasonFlood:
		return "flood"
	default:
		return "unknown"
	}
}

// weight is the misbehavior-score cost of one violation. Floods are softer
// than semantic violations: an honest peer behind a bursty link may trip
// the bucket, but it never sends a malformed PROPHET value.
func (r Reason) weight() float64 {
	if r == ReasonFlood {
		return 0.25
	}
	return 1
}

// Violation is one typed semantic-validation failure. It is an error so
// validators compose with the peer's error chain.
type Violation struct {
	Reason Reason
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("guard: %v violation: %s", v.Reason, v.Detail)
}

// violationf builds a Violation.
func violationf(r Reason, format string, args ...any) *Violation {
	return &Violation{Reason: r, Detail: fmt.Sprintf(format, args...)}
}

// Config parameterises the guard. The zero value of any field means its
// default (see WithDefaults); a rate of 0 after defaulting means that
// limiter is off. Durations are in seconds of the peer's logical clock.
type Config struct {
	// MaxContactRate is the per-peer contact admission rate in
	// contacts/second (token bucket; negative disables, 0 keeps the
	// default).
	MaxContactRate float64
	// ContactBurst is the contact bucket depth (default
	// DefaultContactBurst).
	ContactBurst int
	// MaxByteRate is the per-peer inbound byte rate in bytes/second
	// (negative disables, 0 keeps the default — which is off).
	MaxByteRate float64
	// ByteBurst is the byte bucket depth (default DefaultByteBurst).
	ByteBurst int64
	// QuarantineTTL is how long a quarantined peer stays banned, in
	// seconds (default DefaultQuarantineTTL).
	QuarantineTTL float64
	// QuarantineScore is the misbehavior score that triggers quarantine
	// (default DefaultQuarantineScore).
	QuarantineScore float64
	// ScoreHalfLife is the exponential half-life of the misbehavior score
	// in seconds (default DefaultScoreHalfLife; negative disables decay).
	ScoreHalfLife float64
	// MaxClockSkew bounds how far a remote timestamp (hello time, metadata
	// snapshot time) may sit in the local clock's future (default
	// DefaultMaxClockSkew). DTN clocks are loosely synchronised, so the
	// default is generous; deployments with synced clocks should tighten
	// it.
	MaxClockSkew float64
	// MaxPhotoBytes caps a photo's declared size and a transfer's declared
	// total (default DefaultMaxPhotoBytes).
	MaxPhotoBytes int64
	// MaxPeerCapacity caps the storage capacity a non-command-center peer
	// may advertise — an absurd capacity claim would otherwise vacuum the
	// joint reallocation's best photos onto the liar (default
	// DefaultMaxPeerCapacity).
	MaxPeerCapacity int64
	// MaxMetaEntries caps the entries of one metadata message (default
	// DefaultMaxMetaEntries).
	MaxMetaEntries int
	// MaxPhotosPerEntry caps one metadata entry's photo list (default
	// DefaultMaxPhotosPerEntry).
	MaxPhotosPerEntry int
	// MaxCacheEntries and MaxCacheBytes bound the peer's metadata cache
	// (enforced by metadata.Cache.SetLimits; defaults
	// DefaultMaxCacheEntries / DefaultMaxCacheBytes).
	MaxCacheEntries int
	MaxCacheBytes   int64
}

// Defaults.
const (
	DefaultMaxContactRate    = 1.0 // contacts/second/peer
	DefaultContactBurst      = 8
	DefaultByteBurst         = 32 << 20
	DefaultQuarantineTTL     = 3600.0
	DefaultQuarantineScore   = 3.0
	DefaultScoreHalfLife     = 600.0
	DefaultMaxClockSkew      = 86400.0 // DTN clocks drift; a day of slack
	DefaultMaxPhotoBytes     = 64 << 20
	DefaultMaxPeerCapacity   = 1 << 40
	DefaultMaxMetaEntries    = 4096
	DefaultMaxPhotosPerEntry = 65536
	DefaultMaxCacheEntries   = 4096
	DefaultMaxCacheBytes     = 256 << 20
)

// WithDefaults resolves zero fields to their defaults and normalises
// negatives to "off" where a limiter is optional.
func (c Config) WithDefaults() Config {
	if c.MaxContactRate == 0 {
		c.MaxContactRate = DefaultMaxContactRate
	}
	if c.MaxContactRate < 0 {
		c.MaxContactRate = 0
	}
	if c.ContactBurst <= 0 {
		c.ContactBurst = DefaultContactBurst
	}
	if c.MaxByteRate < 0 {
		c.MaxByteRate = 0
	}
	if c.ByteBurst <= 0 {
		c.ByteBurst = DefaultByteBurst
	}
	if c.QuarantineTTL <= 0 {
		c.QuarantineTTL = DefaultQuarantineTTL
	}
	if c.QuarantineScore <= 0 {
		c.QuarantineScore = DefaultQuarantineScore
	}
	if c.ScoreHalfLife == 0 {
		c.ScoreHalfLife = DefaultScoreHalfLife
	}
	if c.ScoreHalfLife < 0 {
		c.ScoreHalfLife = 0
	}
	if c.MaxClockSkew <= 0 {
		c.MaxClockSkew = DefaultMaxClockSkew
	}
	if c.MaxPhotoBytes <= 0 {
		c.MaxPhotoBytes = DefaultMaxPhotoBytes
	}
	if c.MaxPeerCapacity <= 0 {
		c.MaxPeerCapacity = DefaultMaxPeerCapacity
	}
	if c.MaxMetaEntries <= 0 {
		c.MaxMetaEntries = DefaultMaxMetaEntries
	}
	if c.MaxPhotosPerEntry <= 0 {
		c.MaxPhotosPerEntry = DefaultMaxPhotosPerEntry
	}
	if c.MaxCacheEntries <= 0 {
		c.MaxCacheEntries = DefaultMaxCacheEntries
	}
	if c.MaxCacheBytes <= 0 {
		c.MaxCacheBytes = DefaultMaxCacheBytes
	}
	return c
}

// bucket is a token bucket on the logical clock. Tokens refill at rate per
// second up to burst; frozen clocks (tests) simply never refill.
type bucket struct {
	tokens float64
	last   float64
	primed bool
}

func (b *bucket) take(now, rate, burst, cost float64) bool {
	if rate <= 0 {
		return true
	}
	if !b.primed {
		b.tokens, b.last, b.primed = burst, now, true
	}
	if now > b.last {
		b.tokens += (now - b.last) * rate
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens < cost {
		return false
	}
	b.tokens -= cost
	return true
}

// acct is one remote peer's ledger.
type acct struct {
	contacts bucket
	bytes    bucket
	score    float64
	scoreAt  float64
	quarTo   float64 // quarantine expiry (logical seconds); 0 = none
}

// QuarantineEntry is one active quarantine, for snapshots and stats.
type QuarantineEntry struct {
	Node  model.NodeID
	Until float64
}

// Stats is a point-in-time summary of the guard's activity.
type Stats struct {
	// Violations is the total violation count; ByReason breaks it down.
	Violations int64
	ByReason   map[Reason]int64
	// ShedContacts counts contacts rejected at admission (rate or
	// quarantine).
	ShedContacts int64
	// QuarantineEvents counts quarantine impositions since creation;
	// Quarantined is the number currently active (at the time of the last
	// mutating call).
	QuarantineEvents int64
	Quarantined      int
}

// Guard is the per-peer accounting table. All methods are safe for
// concurrent use; a nil *Guard accepts everything and does nothing.
type Guard struct {
	cfg Config

	mu    sync.Mutex
	peers map[model.NodeID]*acct

	violations [numReasons]int64
	shed       int64
	quarEvents int64

	// onQuarantine is invoked after the guard lock is released, once per
	// imposition — the peer layer journals and traces the event here.
	onQuarantine func(node model.NodeID, until float64, reason Reason)

	cViolations *obs.Counter
	cShed       *obs.Counter
	cQuarEvents *obs.Counter
	gActive     *obs.Gauge
	byReason    [numReasons]*obs.Counter
}

// New returns a guard with the config's defaults resolved. The observer may
// be nil (metrics become no-ops).
func New(cfg Config, o *obs.Observer) *Guard {
	g := &Guard{
		cfg:         cfg.WithDefaults(),
		peers:       make(map[model.NodeID]*acct),
		cViolations: o.Counter("guard.violations"),
		cShed:       o.Counter("guard.shed_contacts"),
		cQuarEvents: o.Counter("guard.quarantine_events"),
		gActive:     o.Gauge("guard.quarantines_active"),
	}
	for r := Reason(1); r < numReasons; r++ {
		g.byReason[r] = o.Counter("guard.violations." + r.String())
	}
	return g
}

// Config returns the resolved configuration.
func (g *Guard) Config() Config {
	if g == nil {
		return Config{}
	}
	return g.cfg
}

// OnQuarantine installs the quarantine notification hook. It runs outside
// the guard's lock, so it may take the peer lock (to journal) safely.
func (g *Guard) OnQuarantine(fn func(node model.NodeID, until float64, reason Reason)) {
	if g != nil {
		g.onQuarantine = fn
	}
}

func (g *Guard) acctOf(node model.NodeID) *acct {
	a := g.peers[node]
	if a == nil {
		a = &acct{}
		g.peers[node] = a
	}
	return a
}

// decayScore applies the exponential half-life to a peer's score.
func (g *Guard) decayScore(a *acct, now float64) {
	if g.cfg.ScoreHalfLife <= 0 || now <= a.scoreAt {
		a.scoreAt = now
		return
	}
	dt := now - a.scoreAt
	a.score *= math.Exp2(-dt / g.cfg.ScoreHalfLife)
	a.scoreAt = now
}

// AdmitContact charges one contact admission for node. It fails with
// ErrQuarantined while the node is banned and ErrRateLimited when the
// contact bucket is dry; a dry bucket also counts a ReasonFlood violation,
// so sustained flooding escalates to quarantine.
func (g *Guard) AdmitContact(node model.NodeID, now float64) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	a := g.acctOf(node)
	if a.quarTo > now {
		g.shed++
		until := a.quarTo
		g.mu.Unlock()
		g.cShed.Inc()
		return fmt.Errorf("%w: %v until t=%.0f", ErrQuarantined, node, until)
	}
	if !a.contacts.take(now, g.cfg.MaxContactRate, float64(g.cfg.ContactBurst), 1) {
		g.shed++
		quarantined, until := g.noteViolationLocked(a, ReasonFlood, now)
		g.mu.Unlock()
		g.cShed.Inc()
		g.notifyQuarantine(node, quarantined, until, ReasonFlood)
		return fmt.Errorf("%w: %v contact budget exhausted", ErrRateLimited, node)
	}
	g.mu.Unlock()
	return nil
}

// AdmitBytes charges n inbound bytes against node's byte bucket. Exceeding
// it is a flood: the read fails with ErrRateLimited and the contact aborts.
func (g *Guard) AdmitBytes(node model.NodeID, n int64, now float64) error {
	if g == nil || g.cfg.MaxByteRate <= 0 {
		return nil
	}
	g.mu.Lock()
	a := g.acctOf(node)
	if a.contacts.primed && a.quarTo > now {
		g.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrQuarantined, node)
	}
	ok := a.bytes.take(now, g.cfg.MaxByteRate, float64(g.cfg.ByteBurst), float64(n))
	var (
		quarantined bool
		until       float64
	)
	if !ok {
		quarantined, until = g.noteViolationLocked(a, ReasonFlood, now)
	}
	g.mu.Unlock()
	if !ok {
		g.notifyQuarantine(node, quarantined, until, ReasonFlood)
		return fmt.Errorf("%w: %v byte budget exhausted", ErrRateLimited, node)
	}
	return nil
}

// Report records one typed violation by node, bumping its misbehavior
// score and quarantining it when the threshold is crossed. It returns
// whether this report imposed a new quarantine.
func (g *Guard) Report(node model.NodeID, r Reason, now float64) bool {
	if g == nil || r == 0 || r >= numReasons {
		return false
	}
	g.mu.Lock()
	a := g.acctOf(node)
	quarantined, until := g.noteViolationLocked(a, r, now)
	g.mu.Unlock()
	g.notifyQuarantine(node, quarantined, until, r)
	return quarantined
}

// noteViolationLocked counts the violation and applies the score rules.
// It returns whether a new quarantine was imposed (and its expiry).
func (g *Guard) noteViolationLocked(a *acct, r Reason, now float64) (bool, float64) {
	g.violations[r]++
	g.cViolations.Inc()
	g.byReason[r].Inc()
	g.decayScore(a, now)
	a.score += r.weight()
	if a.score < g.cfg.QuarantineScore || a.quarTo > now {
		return false, a.quarTo
	}
	a.quarTo = now + g.cfg.QuarantineTTL
	a.score = 0
	g.quarEvents++
	g.cQuarEvents.Inc()
	g.gActive.Set(float64(g.activeLocked(now)))
	return true, a.quarTo
}

func (g *Guard) notifyQuarantine(node model.NodeID, imposed bool, until float64, r Reason) {
	if imposed && g.onQuarantine != nil {
		g.onQuarantine(node, until, r)
	}
}

// Quarantined reports whether node is currently banned.
func (g *Guard) Quarantined(node model.NodeID, now float64) bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	a := g.peers[node]
	return a != nil && a.quarTo > now
}

// RestoreQuarantine reimposes a quarantine recovered from the journal or a
// snapshot. Expired entries (until <= now) are dropped silently. No
// notification fires: the imposition was already journaled by the
// incarnation that made it.
func (g *Guard) RestoreQuarantine(node model.NodeID, until, now float64) {
	if g == nil || until <= now {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	a := g.acctOf(node)
	if until > a.quarTo {
		a.quarTo = until
	}
	g.gActive.Set(float64(g.activeLocked(now)))
}

func (g *Guard) activeLocked(now float64) int {
	n := 0
	for _, a := range g.peers {
		if a.quarTo > now {
			n++
		}
	}
	return n
}

// ActiveQuarantines returns the quarantines still in force, sorted by node
// ID — the snapshot surface the peer's checkpoint encodes.
func (g *Guard) ActiveQuarantines(now float64) []QuarantineEntry {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]QuarantineEntry, 0, len(g.peers))
	for node, a := range g.peers {
		if a.quarTo > now {
			out = append(out, QuarantineEntry{Node: node, Until: a.quarTo})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Stats returns a snapshot of the guard's counters. now bounds which
// quarantines count as active.
func (g *Guard) Stats(now float64) Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Stats{
		ShedContacts:     g.shed,
		QuarantineEvents: g.quarEvents,
		Quarantined:      g.activeLocked(now),
		ByReason:         make(map[Reason]int64),
	}
	for r := Reason(1); r < numReasons; r++ {
		if g.violations[r] > 0 {
			s.ByReason[r] = g.violations[r]
			s.Violations += g.violations[r]
		}
	}
	return s
}
