package sim

import (
	"errors"
	"testing"

	"photodtn/internal/model"
)

func photoN(owner model.NodeID, seq uint32, size int64) model.Photo {
	return model.Photo{
		ID: model.MakePhotoID(owner, seq), Owner: owner,
		Range: 100, FOV: 1, Size: size,
	}
}

func TestStorageAddRemove(t *testing.T) {
	st := NewStorage(10)
	p := photoN(1, 0, 4)
	if err := st.Add(p); err != nil {
		t.Fatal(err)
	}
	if !st.Has(p.ID) || st.Used() != 4 || st.Free() != 6 || st.Len() != 1 {
		t.Fatalf("state after add: used=%d free=%d len=%d", st.Used(), st.Free(), st.Len())
	}
	got, ok := st.Get(p.ID)
	if !ok || got.ID != p.ID {
		t.Fatal("Get failed")
	}
	st.Remove(p.ID)
	if st.Has(p.ID) || st.Used() != 0 {
		t.Fatal("Remove failed")
	}
	st.Remove(p.ID) // no-op
}

func TestStorageNoSpace(t *testing.T) {
	st := NewStorage(10)
	if err := st.Add(photoN(1, 0, 8)); err != nil {
		t.Fatal(err)
	}
	err := st.Add(photoN(1, 1, 4))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if st.Len() != 1 {
		t.Fatal("failed add changed state")
	}
}

func TestStorageDuplicate(t *testing.T) {
	st := NewStorage(100)
	p := photoN(1, 0, 4)
	if err := st.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(p); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	if st.Used() != 4 {
		t.Fatal("duplicate add changed used bytes")
	}
}

func TestStorageCopies(t *testing.T) {
	st := NewStorage(100)
	p := photoN(1, 0, 4)
	if st.Copies(p.ID) != 0 {
		t.Fatal("copies of absent photo should be 0")
	}
	st.SetCopies(p.ID, 4) // not stored: ignored
	if st.Copies(p.ID) != 0 {
		t.Fatal("SetCopies on absent photo should be ignored")
	}
	_ = st.Add(p)
	st.SetCopies(p.ID, 4)
	if st.Copies(p.ID) != 4 {
		t.Fatal("SetCopies failed")
	}
	st.Remove(p.ID)
	if st.Copies(p.ID) != 0 {
		t.Fatal("copies not cleared on remove")
	}
}

func TestStorageListFIFO(t *testing.T) {
	st := NewStorage(100)
	for i := uint32(0); i < 5; i++ {
		_ = st.Add(photoN(1, 4-i, 4)) // insert in reverse ID order
	}
	list := st.List()
	if len(list) != 5 {
		t.Fatalf("len = %d", len(list))
	}
	for i := range list {
		if list[i].ID.Seq() != uint32(4-i) {
			t.Fatalf("FIFO order broken: %v", list.IDs())
		}
	}
}

func TestStorageReplaceAll(t *testing.T) {
	st := NewStorage(12)
	_ = st.Add(photoN(1, 0, 4))
	_ = st.Add(photoN(1, 1, 4))
	repl := model.PhotoList{photoN(2, 0, 4), photoN(2, 1, 4), photoN(2, 2, 4)}
	if err := st.ReplaceAll(repl); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 3 || st.Used() != 12 || st.Has(model.MakePhotoID(1, 0)) {
		t.Fatalf("ReplaceAll state wrong: len=%d used=%d", st.Len(), st.Used())
	}
}

func TestStorageReplaceAllTooBig(t *testing.T) {
	st := NewStorage(8)
	_ = st.Add(photoN(1, 0, 4))
	err := st.ReplaceAll(model.PhotoList{photoN(2, 0, 4), photoN(2, 1, 8)})
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
	if !st.Has(model.MakePhotoID(1, 0)) {
		t.Fatal("failed ReplaceAll mutated storage")
	}
}

func TestStorageReplaceAllDedupes(t *testing.T) {
	st := NewStorage(8)
	p := photoN(1, 0, 4)
	if err := st.ReplaceAll(model.PhotoList{p, p, p}); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 || st.Used() != 4 {
		t.Fatalf("dedup failed: len=%d used=%d", st.Len(), st.Used())
	}
}

// Regression: ReplaceAll rebuilt the copies map from scratch, silently
// resetting spray copy counters to zero for every photo the reallocation
// kept. Under a spray-and-wait scheme that made a relay believe it held the
// last copy of a photo it had just split copies for, inflating replication.
func TestStorageReplaceAllPreservesCopies(t *testing.T) {
	st := NewStorage(100)
	a, b, c, d := photoN(1, 0, 4), photoN(1, 1, 4), photoN(1, 2, 4), photoN(2, 0, 4)
	for _, p := range []model.Photo{a, b, c} {
		if err := st.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	st.SetCopies(a.ID, 4)
	st.SetCopies(b.ID, 2)
	st.SetCopies(c.ID, 1)

	// A reallocation keeps b and c, drops a, and brings in d.
	if err := st.ReplaceAll(model.PhotoList{b, c, d}); err != nil {
		t.Fatal(err)
	}
	if got := st.Copies(b.ID); got != 2 {
		t.Fatalf("kept photo b: copies = %d, want 2", got)
	}
	if got := st.Copies(c.ID); got != 1 {
		t.Fatalf("kept photo c: copies = %d, want 1", got)
	}
	if got := st.Copies(d.ID); got != 0 {
		t.Fatalf("new photo d: copies = %d, want 0", got)
	}
	if got := st.Copies(a.ID); got != 0 {
		t.Fatalf("dropped photo a: copies = %d, want 0", got)
	}
}

func TestStorageCloneIndependent(t *testing.T) {
	st := NewStorage(100)
	p := photoN(1, 0, 4)
	if err := st.Add(p); err != nil {
		t.Fatal(err)
	}
	st.SetCopies(p.ID, 3)

	c := st.Clone()
	if !c.Has(p.ID) || c.Used() != st.Used() || c.Copies(p.ID) != 3 {
		t.Fatalf("clone state differs: used=%d copies=%d", c.Used(), c.Copies(p.ID))
	}
	if err := c.Add(photoN(1, 1, 4)); err != nil {
		t.Fatal(err)
	}
	c.SetCopies(p.ID, 1)
	if st.Len() != 1 || st.Copies(p.ID) != 3 {
		t.Fatal("mutating the clone leaked into the original")
	}
}
