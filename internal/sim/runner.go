package sim

import (
	"context"
	"errors"
	"fmt"

	"photodtn/internal/runner"
)

// RunFunc builds a fresh, independent (Config, Scheme) pair for one run.
// The seed parameterises everything random in the run (workload, gateway
// choice, Monte Carlo sampling, ...), so runs are reproducible and
// independent.
type RunFunc func(seed int64) (Config, Scheme, error)

// AvgSample is a Sample averaged over runs (Delivered becomes fractional).
type AvgSample struct {
	Time      float64
	PointFrac float64
	AspectRad float64
	Delivered float64
}

// Average aggregates the results of repeated runs of one scheme, mirroring
// the paper's "each data point is the average of 50 simulation runs".
type Average struct {
	Scheme            string
	Runs              int
	Samples           []AvgSample
	Final             AvgSample
	TransferredPhotos float64
	TransferredBytes  float64
	// Fault metrics (zero without an enabled fault model).
	NodeCrashes       float64
	PhotosLostToCrash float64
	AbortedTransfers  float64
	MeanRecoverySec   float64

	// FinalVar is the per-field sample variance of Final across runs
	// (n−1 denominator; all zero for a single run, and zero when the
	// average was produced by AverageResults rather than the streaming
	// orchestrator).
	FinalVar AvgSample
}

// ErrNoRuns is returned when RunMany is asked for zero runs.
var ErrNoRuns = errors.New("sim: need at least one run")

// Summarize projects a run result onto the orchestrator's numeric summary
// (dropping the photo collection, which averages cannot use anyway).
func Summarize(r *Result) *runner.Summary {
	s := &runner.Summary{
		Scheme:            r.Scheme,
		Final:             summarySample(r.Final),
		TransferredPhotos: float64(r.TransferredPhotos),
		TransferredBytes:  float64(r.TransferredBytes),
		NodeCrashes:       float64(r.NodeCrashes),
		PhotosLostToCrash: float64(r.PhotosLostToCrash),
		AbortedTransfers:  float64(r.AbortedTransfers),
		MeanRecoverySec:   r.MeanRecoverySec,
	}
	if len(r.Samples) > 0 {
		s.Samples = make([]runner.Sample, len(r.Samples))
		for i, sm := range r.Samples {
			s.Samples[i] = summarySample(sm)
		}
	}
	return s
}

func summarySample(s Sample) runner.Sample {
	return runner.Sample{
		Time: s.Time, PointFrac: s.PointFrac, AspectRad: s.AspectRad,
		Delivered: float64(s.Delivered),
	}
}

// AverageOf converts an orchestrator aggregate back into the simulator's
// Average (including the Final variance the streaming aggregation provides
// for free).
func AverageOf(agg *runner.Aggregate) *Average {
	m := &agg.Mean
	avg := &Average{
		Scheme:            m.Scheme,
		Runs:              agg.Runs,
		Final:             avgSample(m.Final),
		TransferredPhotos: m.TransferredPhotos,
		TransferredBytes:  m.TransferredBytes,
		NodeCrashes:       m.NodeCrashes,
		PhotosLostToCrash: m.PhotosLostToCrash,
		AbortedTransfers:  m.AbortedTransfers,
		MeanRecoverySec:   m.MeanRecoverySec,
		FinalVar:          avgSample(agg.Var.Final),
	}
	if len(m.Samples) > 0 {
		avg.Samples = make([]AvgSample, len(m.Samples))
		for i, sm := range m.Samples {
			avg.Samples[i] = avgSample(sm)
		}
	}
	return avg
}

func avgSample(s runner.Sample) AvgSample {
	return AvgSample{Time: s.Time, PointFrac: s.PointFrac, AspectRad: s.AspectRad, Delivered: s.Delivered}
}

// Cell adapts a RunFunc to the orchestrator: one cell builds the run for
// its seed, executes it under ctx, and returns the numeric summary.
// experiments uses it to assemble whole sweep matrices over one worker pool.
func Cell(f RunFunc) runner.CellFunc {
	return func(ctx context.Context, runIdx int, seed int64) (*runner.Summary, error) {
		cfg, scheme, err := f(seed)
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", runIdx, err)
		}
		res, err := RunContext(ctx, cfg, scheme)
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", runIdx, err)
		}
		return Summarize(res), nil
	}
}

// LegacySeeds is the seed family RunMany has always used — baseSeed,
// baseSeed+1, ... — kept so committed reports and seed-parity tests keep
// their exact seeds. New orchestrations should prefer the default
// runner.CellSeed derivation.
func LegacySeeds(baseSeed int64) runner.SeedFunc {
	return func(runIdx int) int64 { return baseSeed + int64(runIdx) }
}

// RunMany executes runs independent simulations in parallel (bounded by
// GOMAXPROCS) with seeds baseSeed, baseSeed+1, ... and averages their
// metrics. All runs must produce the same sample count. It is a
// RunManyContext with the background context.
func RunMany(runs int, baseSeed int64, f RunFunc) (*Average, error) {
	return RunManyContext(context.Background(), runs, baseSeed, f)
}

// RunManyContext is RunMany under a context: cancelling ctx stops in-flight
// runs at the engine's next cancellation point and returns ctx's error.
// Aggregation is streaming (runner.Agg), so memory stays bounded by the
// worker count, not the run count.
func RunManyContext(ctx context.Context, runs int, baseSeed int64, f RunFunc) (*Average, error) {
	if runs <= 0 {
		return nil, ErrNoRuns
	}
	job := runner.Job{
		Key:  "sim.RunMany",
		Runs: runs,
		Cell: Cell(f),
		Seed: LegacySeeds(baseSeed),
	}
	aggs, err := runner.Run(ctx, []runner.Job{job}, runner.Options{})
	if err != nil {
		return nil, err
	}
	return AverageOf(aggs[0]), nil
}

// AverageResults averages pre-computed run results; all runs must share a
// sample layout. It is used by analytic evaluators (e.g. the BestPossible
// fast path) that bypass the engine; engine-backed paths go through the
// streaming orchestrator instead and never materialise a result slice.
func AverageResults(results []*Result) (*Average, error) {
	n := len(results)
	if n == 0 {
		return nil, ErrNoRuns
	}
	agg := runner.NewAgg()
	for i, r := range results {
		if err := agg.Add(i, Summarize(r)); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	out, err := agg.Result("sim.AverageResults", n)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return AverageOf(out), nil
}
