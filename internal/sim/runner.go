package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// RunFunc builds a fresh, independent (Config, Scheme) pair for one run.
// The seed parameterises everything random in the run (workload, gateway
// choice, Monte Carlo sampling, ...), so runs are reproducible and
// independent.
type RunFunc func(seed int64) (Config, Scheme, error)

// AvgSample is a Sample averaged over runs (Delivered becomes fractional).
type AvgSample struct {
	Time      float64
	PointFrac float64
	AspectRad float64
	Delivered float64
}

// Average aggregates the results of repeated runs of one scheme, mirroring
// the paper's "each data point is the average of 50 simulation runs".
type Average struct {
	Scheme            string
	Runs              int
	Samples           []AvgSample
	Final             AvgSample
	TransferredPhotos float64
	TransferredBytes  float64
	// Fault metrics (zero without an enabled fault model).
	NodeCrashes       float64
	PhotosLostToCrash float64
	AbortedTransfers  float64
	MeanRecoverySec   float64
}

// ErrNoRuns is returned when RunMany is asked for zero runs.
var ErrNoRuns = errors.New("sim: need at least one run")

// RunMany executes runs independent simulations in parallel (bounded by
// GOMAXPROCS) with seeds baseSeed, baseSeed+1, ... and averages their
// metrics. All runs must produce the same sample count.
func RunMany(runs int, baseSeed int64, f RunFunc) (*Average, error) {
	if runs <= 0 {
		return nil, ErrNoRuns
	}
	results := make([]*Result, runs)
	errs := make([]error, runs)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg, scheme, err := f(baseSeed + int64(i))
			if err != nil {
				errs[i] = fmt.Errorf("run %d: %w", i, err)
				return
			}
			res, err := Run(cfg, scheme)
			if err != nil {
				errs[i] = fmt.Errorf("run %d: %w", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return AverageResults(results)
}

// AverageResults averages pre-computed run results; all runs must share a
// sample layout. It is used by RunMany and by analytic evaluators (e.g.
// the BestPossible fast path) that bypass the engine.
func AverageResults(results []*Result) (*Average, error) {
	n := len(results)
	avg := &Average{Scheme: results[0].Scheme, Runs: n}
	sampleCount := len(results[0].Samples)
	for _, r := range results {
		if len(r.Samples) != sampleCount {
			return nil, fmt.Errorf("sim: sample counts differ across runs (%d vs %d)", len(r.Samples), sampleCount)
		}
	}
	avg.Samples = make([]AvgSample, sampleCount)
	inv := 1 / float64(n)
	for _, r := range results {
		for i, s := range r.Samples {
			avg.Samples[i].Time = s.Time
			avg.Samples[i].PointFrac += s.PointFrac * inv
			avg.Samples[i].AspectRad += s.AspectRad * inv
			avg.Samples[i].Delivered += float64(s.Delivered) * inv
		}
		avg.Final.Time = r.Final.Time
		avg.Final.PointFrac += r.Final.PointFrac * inv
		avg.Final.AspectRad += r.Final.AspectRad * inv
		avg.Final.Delivered += float64(r.Final.Delivered) * inv
		avg.TransferredPhotos += float64(r.TransferredPhotos) * inv
		avg.TransferredBytes += float64(r.TransferredBytes) * inv
		avg.NodeCrashes += float64(r.NodeCrashes) * inv
		avg.PhotosLostToCrash += float64(r.PhotosLostToCrash) * inv
		avg.AbortedTransfers += float64(r.AbortedTransfers) * inv
		avg.MeanRecoverySec += r.MeanRecoverySec * inv
	}
	return avg, nil
}
