package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"photodtn/internal/trace"
)

// denseConfig builds a run with enough events that the engine crosses
// several cancellation checkpoints.
func denseConfig() Config {
	tr := &trace.Trace{Nodes: 2}
	for i := 0; i < 4096; i++ {
		t := float64(i)
		tr.Contacts = append(tr.Contacts, trace.Contact{Start: t, End: t + 0.5, A: 1, B: 2})
	}
	cfg := baseConfig(tr)
	cfg.Span = 4096
	return cfg
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, denseConfig(), &relayScheme{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := denseConfig()
	s := &cancellingScheme{cancel: cancel, after: 1000}
	_, err := RunContext(ctx, cfg, s)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.contacts >= 1000+2*cancelCheckEvery {
		t.Fatalf("engine processed %d contacts after cancellation", s.contacts)
	}
}

// cancellingScheme cancels the run's context after a number of contacts.
type cancellingScheme struct {
	relayScheme
	cancel context.CancelFunc
	after  int
}

func (c *cancellingScheme) OnContact(s *Session) {
	c.contacts++
	if c.contacts == c.after {
		c.cancel()
	}
}

func TestWorldContextNeverNil(t *testing.T) {
	w := newWorld(testMap(), 1, 100, nil)
	if w.Context() == nil {
		t.Fatal("direct-built world returned nil context")
	}
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	probe := &contextProbe{}
	cfg := baseConfig(&trace.Trace{Nodes: 1})
	cfg.Span = 1
	if _, err := RunContext(ctx, cfg, probe); err != nil {
		t.Fatal(err)
	}
	if probe.got == nil || probe.got.Value(key{}) != "v" {
		t.Fatal("scheme did not observe the run's context via World.Context")
	}
}

type contextProbe struct {
	relayScheme
	got context.Context
}

func (p *contextProbe) Init(w *World) { p.relayScheme.Init(w); p.got = w.Context() }

func TestRunIsRunContextBackground(t *testing.T) {
	cfg := denseConfig()
	want, err := Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), denseConfig(), &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if want.TransferredPhotos != got.TransferredPhotos || want.Final != got.Final {
		t.Fatal("Run and RunContext(Background) diverge")
	}
}

func TestRunManyContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunManyContext(ctx, 4, 1, func(seed int64) (Config, Scheme, error) {
		return denseConfig(), &relayScheme{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunManyMatchesAverageResults(t *testing.T) {
	// The streaming path must agree with the slice-based averaging on the
	// same runs (identical runs make Welford exact, so equality is exact).
	mk := func(seed int64) (Config, Scheme, error) {
		cfg := baseConfig(&trace.Trace{Nodes: 1, Contacts: []trace.Contact{{Start: 10, End: 20, A: 1, B: 0}}})
		cfg.Span = 100
		cfg.SampleInterval = 25
		cfg.Seed = seed
		cfg.Photos = []PhotoEvent{{Time: 5, Node: 1, Photo: usefulPhoto(1, 0)}}
		return cfg, &relayScheme{}, nil
	}
	var results []*Result
	for i := 0; i < 3; i++ {
		cfg, s, _ := mk(int64(9 + i))
		r, err := Run(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	want, err := AverageResults(results)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunMany(3, 9, mk)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want.Final.PointFrac-got.Final.PointFrac) > 1e-15 ||
		want.Final.Delivered != got.Final.Delivered ||
		want.TransferredPhotos != got.TransferredPhotos {
		t.Fatalf("streaming and slice averaging diverge:\n%+v\nvs\n%+v", want, got)
	}
	if got.FinalVar.Time != 0 {
		t.Fatalf("Time variance must be zero (shared sampling clock), got %v", got.FinalVar.Time)
	}
}
