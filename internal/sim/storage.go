// Package sim provides the discrete-event DTN simulator the evaluation
// (§V) runs on: node storages with byte capacities, contact sessions with
// bandwidth budgets, a pluggable routing/selection Scheme interface, and an
// engine that replays a contact trace against a photo-generation workload
// while sampling the command center's coverage over time.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"photodtn/internal/model"
)

// Storage errors.
var (
	// ErrNoSpace is returned when a photo does not fit in the remaining
	// capacity.
	ErrNoSpace = errors.New("sim: storage full")
	// ErrDuplicate is returned when the photo is already stored.
	ErrDuplicate = errors.New("sim: photo already stored")
)

// Storage is a node's photo store with a byte capacity. It also tracks a
// per-photo copy counter for spray-based schemes (unused counters stay 0).
// Storage is not safe for concurrent use.
type Storage struct {
	capacity int64
	used     int64
	photos   map[model.PhotoID]model.Photo
	copies   map[model.PhotoID]int
	arrival  map[model.PhotoID]int64 // insertion order for FIFO policies
	nextSeq  int64
}

// NewStorage returns an empty storage with the given byte capacity.
func NewStorage(capacity int64) *Storage {
	return &Storage{
		capacity: capacity,
		photos:   make(map[model.PhotoID]model.Photo),
		copies:   make(map[model.PhotoID]int),
		arrival:  make(map[model.PhotoID]int64),
	}
}

// Capacity returns the byte capacity.
func (s *Storage) Capacity() int64 { return s.capacity }

// Used returns the bytes in use.
func (s *Storage) Used() int64 { return s.used }

// Free returns the remaining bytes.
func (s *Storage) Free() int64 { return s.capacity - s.used }

// Len returns the number of stored photos.
func (s *Storage) Len() int { return len(s.photos) }

// Has reports whether the photo is stored.
func (s *Storage) Has(id model.PhotoID) bool {
	_, ok := s.photos[id]
	return ok
}

// Get returns a stored photo.
func (s *Storage) Get(id model.PhotoID) (model.Photo, bool) {
	p, ok := s.photos[id]
	return p, ok
}

// Add stores a photo. It fails with ErrNoSpace if the photo does not fit
// and ErrDuplicate if it is already present.
func (s *Storage) Add(p model.Photo) error {
	if s.Has(p.ID) {
		return fmt.Errorf("%w: %v", ErrDuplicate, p.ID)
	}
	if p.Size > s.Free() {
		return fmt.Errorf("%w: need %d bytes, have %d", ErrNoSpace, p.Size, s.Free())
	}
	s.photos[p.ID] = p
	s.used += p.Size
	s.arrival[p.ID] = s.nextSeq
	s.nextSeq++
	return nil
}

// Remove drops a photo (and its copy counter); it is a no-op for absent
// photos.
func (s *Storage) Remove(id model.PhotoID) {
	p, ok := s.photos[id]
	if !ok {
		return
	}
	s.used -= p.Size
	delete(s.photos, id)
	delete(s.copies, id)
	delete(s.arrival, id)
}

// Copies returns the spray copy counter of a photo (0 if untracked).
func (s *Storage) Copies(id model.PhotoID) int { return s.copies[id] }

// SetCopies sets the spray copy counter of a stored photo.
func (s *Storage) SetCopies(id model.PhotoID, n int) {
	if s.Has(id) {
		s.copies[id] = n
	}
}

// List returns the stored photos ordered by insertion (FIFO order).
func (s *Storage) List() model.PhotoList {
	out := make(model.PhotoList, 0, len(s.photos))
	for _, p := range s.photos {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		return s.arrival[out[i].ID] < s.arrival[out[j].ID]
	})
	return out
}

// ReplaceAll atomically replaces the whole collection (the reallocation
// semantics of §III-D). It fails with ErrNoSpace if the new collection does
// not fit; the storage is unchanged on error.
func (s *Storage) ReplaceAll(photos model.PhotoList) error {
	var total int64
	seen := make(map[model.PhotoID]bool, len(photos))
	for _, p := range photos {
		if seen[p.ID] {
			continue
		}
		seen[p.ID] = true
		total += p.Size
	}
	if total > s.capacity {
		return fmt.Errorf("%w: collection needs %d bytes, capacity %d", ErrNoSpace, total, s.capacity)
	}
	s.photos = make(map[model.PhotoID]model.Photo, len(photos))
	s.copies = make(map[model.PhotoID]int)
	s.arrival = make(map[model.PhotoID]int64, len(photos))
	s.used = 0
	for _, p := range photos {
		if s.Has(p.ID) {
			continue
		}
		s.photos[p.ID] = p
		s.used += p.Size
		s.arrival[p.ID] = s.nextSeq
		s.nextSeq++
	}
	return nil
}
