// Package sim provides the discrete-event DTN simulator the evaluation
// (§V) runs on: node storages with byte capacities, contact sessions with
// bandwidth budgets, a pluggable routing/selection Scheme interface, and an
// engine that replays a contact trace against a photo-generation workload
// while sampling the command center's coverage over time.
package sim

import (
	"errors"
	"fmt"

	"photodtn/internal/model"
)

// Storage errors.
var (
	// ErrNoSpace is returned when a photo does not fit in the remaining
	// capacity.
	ErrNoSpace = errors.New("sim: storage full")
	// ErrDuplicate is returned when the photo is already stored.
	ErrDuplicate = errors.New("sim: photo already stored")
)

// Storage is a node's photo store with a byte capacity. It also tracks a
// per-photo copy counter for spray-based schemes (unused counters stay 0).
// Storage is not safe for concurrent use.
//
// The collection is kept as an insertion-ordered slice plus an ID index:
// schemes walk the collection at every contact (and eviction policies scan
// it per admitted photo), so iteration must not pay a sort or a map walk.
type Storage struct {
	capacity int64
	used     int64
	list     model.PhotoList // stored photos in insertion (FIFO) order
	index    map[model.PhotoID]int
	copies   map[model.PhotoID]int
}

// NewStorage returns an empty storage with the given byte capacity.
func NewStorage(capacity int64) *Storage {
	return &Storage{
		capacity: capacity,
		index:    make(map[model.PhotoID]int),
		copies:   make(map[model.PhotoID]int),
	}
}

// Capacity returns the byte capacity.
func (s *Storage) Capacity() int64 { return s.capacity }

// Used returns the bytes in use.
func (s *Storage) Used() int64 { return s.used }

// Free returns the remaining bytes.
func (s *Storage) Free() int64 { return s.capacity - s.used }

// Len returns the number of stored photos.
func (s *Storage) Len() int { return len(s.list) }

// Has reports whether the photo is stored.
func (s *Storage) Has(id model.PhotoID) bool {
	_, ok := s.index[id]
	return ok
}

// Get returns a stored photo.
func (s *Storage) Get(id model.PhotoID) (model.Photo, bool) {
	i, ok := s.index[id]
	if !ok {
		return model.Photo{}, false
	}
	return s.list[i], true
}

// Add stores a photo. It fails with ErrNoSpace if the photo does not fit
// and ErrDuplicate if it is already present.
func (s *Storage) Add(p model.Photo) error {
	if s.Has(p.ID) {
		return fmt.Errorf("%w: %v", ErrDuplicate, p.ID)
	}
	if p.Size > s.Free() {
		return fmt.Errorf("%w: need %d bytes, have %d", ErrNoSpace, p.Size, s.Free())
	}
	s.index[p.ID] = len(s.list)
	s.list = append(s.list, p)
	s.used += p.Size
	return nil
}

// Remove drops a photo (and its copy counter); it is a no-op for absent
// photos. FIFO order of the remaining photos is preserved.
func (s *Storage) Remove(id model.PhotoID) {
	i, ok := s.index[id]
	if !ok {
		return
	}
	s.used -= s.list[i].Size
	copy(s.list[i:], s.list[i+1:])
	s.list = s.list[:len(s.list)-1]
	for j := i; j < len(s.list); j++ {
		s.index[s.list[j].ID] = j
	}
	delete(s.index, id)
	delete(s.copies, id)
}

// Copies returns the spray copy counter of a photo (0 if untracked).
func (s *Storage) Copies(id model.PhotoID) int { return s.copies[id] }

// SetCopies sets the spray copy counter of a stored photo.
func (s *Storage) SetCopies(id model.PhotoID, n int) {
	if s.Has(id) {
		s.copies[id] = n
	}
}

// List returns a copy of the stored photos ordered by insertion (FIFO
// order). The copy is safe to hold while mutating the storage.
func (s *Storage) List() model.PhotoList {
	out := make(model.PhotoList, len(s.list))
	copy(out, s.list)
	return out
}

// Photos returns the stored photos in insertion (FIFO) order without
// copying. The slice is read-only and is invalidated by any mutation of the
// storage — use List when removing or adding while iterating.
func (s *Storage) Photos() model.PhotoList { return s.list }

// ReplaceAll atomically replaces the whole collection (the reallocation
// semantics of §III-D). It fails with ErrNoSpace if the new collection does
// not fit; the storage is unchanged on error. Spray copy counters are
// preserved for photos retained across the replacement — a reallocation
// must not reset a copy budget ModifiedSpray is still spending — and
// dropped for everything else.
func (s *Storage) ReplaceAll(photos model.PhotoList) error {
	var total int64
	seen := make(map[model.PhotoID]bool, len(photos))
	for _, p := range photos {
		if seen[p.ID] {
			continue
		}
		seen[p.ID] = true
		total += p.Size
	}
	if total > s.capacity {
		return fmt.Errorf("%w: collection needs %d bytes, capacity %d", ErrNoSpace, total, s.capacity)
	}
	kept := s.copies
	s.list = s.list[:0]
	s.index = make(map[model.PhotoID]int, len(photos))
	s.copies = make(map[model.PhotoID]int)
	s.used = 0
	for _, p := range photos {
		if s.Has(p.ID) {
			continue
		}
		s.index[p.ID] = len(s.list)
		s.list = append(s.list, p)
		s.used += p.Size
		if n, ok := kept[p.ID]; ok {
			s.copies[p.ID] = n
		}
	}
	return nil
}

// Clone returns a deep copy of the storage: same capacity, photos, order,
// and copy counters, sharing no mutable state with the original. Contact
// sessions plan against a clone and commit the result back (internal/peer).
func (s *Storage) Clone() *Storage {
	c := &Storage{
		capacity: s.capacity,
		used:     s.used,
		list:     append(model.PhotoList(nil), s.list...),
		index:    make(map[model.PhotoID]int, len(s.index)),
		copies:   make(map[model.PhotoID]int, len(s.copies)),
	}
	for id, i := range s.index {
		c.index[id] = i
	}
	for id, n := range s.copies {
		c.copies[id] = n
	}
	return c
}
