package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"photodtn/internal/faults"
	"photodtn/internal/obs"
)

// observedConfig is a faulted churn run dense enough to exercise every
// event kind: crashes, aborts, deliveries, and plain contacts.
func observedConfig(o *obs.Observer) Config {
	tr := churnTrace(8, 6)
	cfg := baseConfig(tr)
	cfg.Photos = photoWorkload(tr, 4)
	cfg.StorageBytes = 1000
	cfg.SampleInterval = 200
	cfg.Faults = &faults.Config{Seed: 7, NodeFailRate: 0.5, FrameLossProb: 0.1}
	cfg.Obs = o
	return cfg
}

// TestObserverDisabledBitIdentical is the no-op guarantee: installing an
// observer must not change the simulation outcome in any way.
func TestObserverDisabledBitIdentical(t *testing.T) {
	base, err := Run(observedConfig(nil), &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(observedConfig(obs.New(0, nil)), &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, observed) {
		t.Fatalf("observer changed the run:\nbase %+v\nobs  %+v", base, observed)
	}
}

// TestTraceReconcilesWithResult is the acceptance check of the PR: the
// trace's delivery events and the observer's counters must reconcile
// exactly with the Result aggregates.
func TestTraceReconcilesWithResult(t *testing.T) {
	var sink bytes.Buffer
	o := obs.New(1<<20, &sink)
	res, err := Run(observedConfig(o), &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Flush(); err != nil {
		t.Fatal(err)
	}

	delivered := o.Trace.CountKind(obs.EvPhotoDelivered)
	if delivered != res.Final.Delivered || delivered != len(res.DeliveredPhotos) {
		t.Fatalf("delivery events %d, Final.Delivered %d, DeliveredPhotos %d",
			delivered, res.Final.Delivered, len(res.DeliveredPhotos))
	}
	if got := o.Counter("sim.photos_delivered").Value(); got != int64(delivered) {
		t.Fatalf("delivered counter %d != %d events", got, delivered)
	}
	if got := o.Counter("sim.node_crashes").Value(); got != res.NodeCrashes {
		t.Fatalf("crash counter %d != Result.NodeCrashes %d", got, res.NodeCrashes)
	}
	if got := o.Counter("sim.sessions_aborted").Value(); got != res.AbortedTransfers {
		t.Fatalf("abort counter %d != Result.AbortedTransfers %d", got, res.AbortedTransfers)
	}
	if got := o.Counter("sim.transfers").Value(); got != res.TransferredPhotos {
		t.Fatalf("transfer counter %d != Result.TransferredPhotos %d", got, res.TransferredPhotos)
	}
	if res.NodeCrashes == 0 || res.AbortedTransfers == 0 {
		t.Fatalf("run not representative: crashes %d aborts %d", res.NodeCrashes, res.AbortedTransfers)
	}

	if begins, ends := o.Trace.CountKind(obs.EvContactBegin), o.Trace.CountKind(obs.EvContactEnd); begins != ends || begins == 0 {
		t.Fatalf("contact begins %d, ends %d", begins, ends)
	}
	crashes := 0
	lost := 0.0
	transfersInContacts := 0.0
	for _, ev := range o.Trace.Events() {
		switch ev.Kind {
		case obs.EvNodeCrash:
			crashes++
			lost += ev.Value
		case obs.EvContactEnd:
			transfersInContacts += ev.Value
		}
	}
	if int64(crashes) != res.NodeCrashes || int64(lost) != res.PhotosLostToCrash {
		t.Fatalf("crash events %d/%v, Result %d/%d",
			crashes, lost, res.NodeCrashes, res.PhotosLostToCrash)
	}
	if int64(transfersInContacts) != res.TransferredPhotos {
		t.Fatalf("contact-end transfer sum %v != Result.TransferredPhotos %d",
			transfersInContacts, res.TransferredPhotos)
	}

	// Every event reached the JSONL sink, one line each.
	lines := strings.Count(sink.String(), "\n")
	if uint64(lines) != o.Trace.Total() {
		t.Fatalf("sink lines %d != emitted events %d", lines, o.Trace.Total())
	}
}
