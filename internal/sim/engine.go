package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"photodtn/internal/coverage"
	"photodtn/internal/model"
	"photodtn/internal/trace"
)

// Scheme is a routing/selection policy under evaluation. The engine calls
// Init once, then OnPhoto for every generated photo and OnContact for every
// contact (including gateway–command-center contacts), in time order.
type Scheme interface {
	// Name identifies the scheme in results.
	Name() string
	// Init binds the scheme to a world before any event fires.
	Init(w *World)
	// OnPhoto is invoked when a node takes a photo. The scheme decides
	// whether and how to store it.
	OnPhoto(node model.NodeID, p model.Photo)
	// OnContact is invoked at the start of a contact, with a session whose
	// budget reflects the contact duration and radio bandwidth.
	OnContact(s *Session)
	// Unconstrained reports whether the scheme ignores storage and
	// bandwidth limits (the BestPossible upper bound of §V-B).
	Unconstrained() bool
}

// PhotoEvent is one workload item: node takes photo p at time Time.
type PhotoEvent struct {
	Time  float64
	Node  model.NodeID
	Photo model.Photo
}

// Config describes one simulation run.
type Config struct {
	// Trace supplies the node-to-node contacts.
	Trace *trace.Trace
	// Map is the PoI coverage map.
	Map *coverage.Map
	// Photos is the generation workload, sorted by time.
	Photos []PhotoEvent
	// StorageBytes is each participant's storage capacity S_i.
	StorageBytes int64
	// Bandwidth is the radio bandwidth in bytes/second; 0 means contacts
	// are never budget-limited (the paper's default assumption).
	Bandwidth float64
	// Gateways lists the nodes able to reach the command center (the ~2%
	// with satellite links or data-mule duty).
	Gateways []model.NodeID
	// GatewayInterval is the period of gateway→command-center contacts in
	// seconds.
	GatewayInterval float64
	// GatewayDuration is the duration of each gateway contact in seconds
	// (relevant only when Bandwidth > 0).
	GatewayDuration float64
	// SampleInterval is the metric sampling period in seconds.
	SampleInterval float64
	// Span is the simulation end time; 0 means the trace duration.
	Span float64
	// Seed drives the run's RNG.
	Seed int64
}

// ErrBadSimConfig reports an invalid simulation configuration.
var ErrBadSimConfig = errors.New("sim: bad config")

func (c Config) validate() error {
	switch {
	case c.Trace == nil:
		return fmt.Errorf("%w: nil trace", ErrBadSimConfig)
	case c.Map == nil:
		return fmt.Errorf("%w: nil map", ErrBadSimConfig)
	case c.StorageBytes <= 0:
		return fmt.Errorf("%w: non-positive storage", ErrBadSimConfig)
	case c.Bandwidth < 0:
		return fmt.Errorf("%w: negative bandwidth", ErrBadSimConfig)
	case len(c.Gateways) > 0 && c.GatewayInterval <= 0:
		return fmt.Errorf("%w: gateways need a positive interval", ErrBadSimConfig)
	}
	for _, g := range c.Gateways {
		if g.IsCommandCenter() || int(g) > c.Trace.Nodes || g < 0 {
			return fmt.Errorf("%w: gateway %v out of range", ErrBadSimConfig, g)
		}
	}
	return nil
}

// Sample is one metrics observation.
type Sample struct {
	// Time is the observation time in seconds.
	Time float64
	// PointFrac is the normalized point coverage: covered PoI weight over
	// total weight.
	PointFrac float64
	// AspectRad is the mean covered aspect per PoI in radians.
	AspectRad float64
	// Delivered is the number of distinct photos at the command center.
	Delivered int
}

// Result summarises one run.
type Result struct {
	Scheme  string
	Samples []Sample
	Final   Sample
	// TransferredBytes and TransferredPhotos count every transfer over DTN
	// and gateway links (including duplicates).
	TransferredBytes  int64
	TransferredPhotos int64
	// DeliveredPhotos is the command center's final collection.
	DeliveredPhotos model.PhotoList
}

// event is the engine's internal tagged union.
type event struct {
	time float64
	kind eventKind
	// photo events
	pe PhotoEvent
	// contact events
	contact trace.Contact
}

type eventKind int

const (
	evPhoto eventKind = iota + 1
	evContact
	evSample
)

// Run executes one simulation and returns its metrics.
func Run(cfg Config, scheme Scheme) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	span := cfg.Span
	if span <= 0 {
		span = cfg.Trace.Duration()
	}
	capacity := cfg.StorageBytes
	bandwidth := cfg.Bandwidth
	if scheme.Unconstrained() {
		capacity = math.MaxInt64 / 4
		bandwidth = 0
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	w := newWorld(cfg.Map, cfg.Trace.Nodes, capacity, rng)
	scheme.Init(w)

	events := buildEvents(cfg, span)
	res := &Result{Scheme: scheme.Name()}
	for _, ev := range events {
		w.now = ev.time
		switch ev.kind {
		case evPhoto:
			scheme.OnPhoto(ev.pe.Node, ev.pe.Photo)
		case evContact:
			s := &Session{
				w: w, A: ev.contact.A, B: ev.contact.B, Time: ev.time,
				unlimited: bandwidth == 0,
			}
			if !s.unlimited {
				s.budget = int64(ev.contact.Duration() * bandwidth)
			}
			scheme.OnContact(s)
		case evSample:
			res.Samples = append(res.Samples, sampleNow(w))
		}
	}
	w.now = span
	res.Final = sampleNow(w)
	res.TransferredBytes = w.transferredBytes
	res.TransferredPhotos = w.transferredPhotos
	res.DeliveredPhotos = w.CCPhotos().Clone()
	return res, nil
}

func sampleNow(w *World) Sample {
	pt, as := w.Map.Normalized(w.CCCoverage())
	return Sample{Time: w.now, PointFrac: pt, AspectRad: as, Delivered: w.DeliveredCount()}
}

// GatewayContacts enumerates the periodic gateway→command-center contacts
// the configuration implies, up to the span.
func GatewayContacts(cfg Config, span float64) []trace.Contact {
	var out []trace.Contact
	for _, g := range cfg.Gateways {
		for t := cfg.GatewayInterval; t <= span; t += cfg.GatewayInterval {
			out = append(out, trace.Contact{
				Start: t, End: t + cfg.GatewayDuration, A: g, B: model.CommandCenter,
			})
		}
	}
	return out
}

// buildEvents merges the photo workload, the trace contacts, the gateway
// contacts, and the sampling clock into one time-ordered stream. Ties are
// broken photo < contact < sample so a photo taken at a contact instant can
// ride that contact, and samples observe a settled state.
func buildEvents(cfg Config, span float64) []event {
	var events []event
	for _, pe := range cfg.Photos {
		if pe.Time > span {
			continue
		}
		events = append(events, event{time: pe.Time, kind: evPhoto, pe: pe})
	}
	for _, c := range cfg.Trace.Contacts {
		if c.Start > span {
			continue
		}
		events = append(events, event{time: c.Start, kind: evContact, contact: c})
	}
	for _, c := range GatewayContacts(cfg, span) {
		events = append(events, event{time: c.Start, kind: evContact, contact: c})
	}
	if cfg.SampleInterval > 0 {
		for t := cfg.SampleInterval; t <= span; t += cfg.SampleInterval {
			events = append(events, event{time: t, kind: evSample})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return events[i].kind < events[j].kind
	})
	return events
}
