package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"photodtn/internal/coverage"
	"photodtn/internal/faults"
	"photodtn/internal/model"
	"photodtn/internal/obs"
	"photodtn/internal/trace"
)

// Scheme is a routing/selection policy under evaluation. The engine calls
// Init once, then OnPhoto for every generated photo and OnContact for every
// contact (including gateway–command-center contacts), in time order.
type Scheme interface {
	// Name identifies the scheme in results.
	Name() string
	// Init binds the scheme to a world before any event fires.
	Init(w *World)
	// OnPhoto is invoked when a node takes a photo. The scheme decides
	// whether and how to store it.
	OnPhoto(node model.NodeID, p model.Photo)
	// OnContact is invoked at the start of a contact, with a session whose
	// budget reflects the contact duration and radio bandwidth.
	OnContact(s *Session)
	// Unconstrained reports whether the scheme ignores storage and
	// bandwidth limits (the BestPossible upper bound of §V-B).
	Unconstrained() bool
}

// PhotoEvent is one workload item: node takes photo p at time Time.
type PhotoEvent struct {
	Time  float64
	Node  model.NodeID
	Photo model.Photo
}

// Config describes one simulation run.
type Config struct {
	// Trace supplies the node-to-node contacts.
	Trace *trace.Trace
	// Map is the PoI coverage map.
	Map *coverage.Map
	// Photos is the generation workload, sorted by time.
	Photos []PhotoEvent
	// StorageBytes is each participant's storage capacity S_i.
	StorageBytes int64
	// Bandwidth is the radio bandwidth in bytes/second; 0 means contacts
	// are never budget-limited (the paper's default assumption).
	Bandwidth float64
	// Gateways lists the nodes able to reach the command center (the ~2%
	// with satellite links or data-mule duty).
	Gateways []model.NodeID
	// GatewayInterval is the period of gateway→command-center contacts in
	// seconds.
	GatewayInterval float64
	// GatewayDuration is the duration of each gateway contact in seconds
	// (relevant only when Bandwidth > 0).
	GatewayDuration float64
	// SampleInterval is the metric sampling period in seconds.
	SampleInterval float64
	// Span is the simulation end time; 0 means the trace duration.
	Span float64
	// Seed drives the run's RNG.
	Seed int64
	// Faults optionally injects the deterministic fault model of
	// internal/faults: node crash/rejoin churn with storage loss, contact
	// drops/truncation, mid-transfer session aborts, gateway outages, and
	// clock skew. Nil or a zero-valued config is a strict no-op — the run
	// is bit-identical to one without the fault layer.
	Faults *faults.Config
	// ParallelSelection opts schemes into the parallel gain scan during
	// per-contact photo selection (selection.Config.Parallel). Results are
	// bit-identical to the serial scan; it pays off when a single run is
	// latency-critical (sweeps already parallelise across runs, where the
	// inner pool would only oversubscribe).
	ParallelSelection bool
	// FragmentCarryover opts the run into wire-v2-style resumable transfer
	// accounting: a transfer the contact budget cuts short leaves its sent
	// bytes as a fragment at the receiver, and a later contact — with the
	// same or a different holder — finishes the photo from where it
	// stopped. Off (the default) a budget-cut transfer discards
	// everything, the §III-D behaviour the paper's figures assume; leaving
	// it off keeps runs byte-identical to earlier builds.
	FragmentCarryover bool
	// Obs optionally observes the run: counters, an event trace, or both.
	// Nil disables observability entirely; the run is then bit-identical to
	// (and as fast as) an unobserved one, because every instrumentation site
	// holds nil metric pointers that no-op.
	//
	// Deprecated: prefer the unified photodtn.WithObserver option, which
	// installs one observer across the simulator, the selection layer, and
	// live peers. Setting this field directly keeps working.
	Obs *obs.Observer
}

// ErrBadSimConfig reports an invalid simulation configuration.
var ErrBadSimConfig = errors.New("sim: bad config")

func (c Config) validate() error {
	switch {
	case c.Trace == nil:
		return fmt.Errorf("%w: nil trace", ErrBadSimConfig)
	case c.Map == nil:
		return fmt.Errorf("%w: nil map", ErrBadSimConfig)
	case c.StorageBytes <= 0:
		return fmt.Errorf("%w: non-positive storage", ErrBadSimConfig)
	case c.Bandwidth < 0:
		return fmt.Errorf("%w: negative bandwidth", ErrBadSimConfig)
	case len(c.Gateways) > 0 && c.GatewayInterval <= 0:
		return fmt.Errorf("%w: gateways need a positive interval", ErrBadSimConfig)
	}
	for _, g := range c.Gateways {
		if g.IsCommandCenter() || int(g) > c.Trace.Nodes || g < 0 {
			return fmt.Errorf("%w: gateway %v out of range", ErrBadSimConfig, g)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSimConfig, err)
		}
	}
	return nil
}

// Sample is one metrics observation.
type Sample struct {
	// Time is the observation time in seconds.
	Time float64
	// PointFrac is the normalized point coverage: covered PoI weight over
	// total weight.
	PointFrac float64
	// AspectRad is the mean covered aspect per PoI in radians.
	AspectRad float64
	// Delivered is the number of distinct photos at the command center.
	Delivered int
}

// Result summarises one run.
type Result struct {
	Scheme  string
	Samples []Sample
	Final   Sample
	// TransferredBytes and TransferredPhotos count every transfer over DTN
	// and gateway links (including duplicates).
	TransferredBytes  int64
	TransferredPhotos int64
	// DeliveredPhotos is the command center's final collection.
	DeliveredPhotos model.PhotoList

	// Fault metrics — all zero unless Config.Faults is enabled.

	// NodeCrashes counts node crash events.
	NodeCrashes int64
	// PhotosLostToCrash counts photos wiped from crashed nodes' storages.
	PhotosLostToCrash int64
	// AbortedTransfers counts sessions aborted mid-transfer by frame
	// loss/corruption (the in-flight photo was discarded, §III-D).
	AbortedTransfers int64
	// MeanRecoverySec is the mean time from a crash to the next
	// command-center delivery — how quickly coverage growth resumes after
	// losing a carrier. Zero when no crash was followed by a delivery.
	MeanRecoverySec float64

	// Carryover metrics — all zero unless Config.FragmentCarryover is on.

	// SalvagedBytes counts payload bytes budget-cut transfers parked at
	// receivers that a later contact's resumed completion reused.
	SalvagedBytes int64
	// ResumedTransfers counts photos completed across multiple contacts.
	ResumedTransfers int64
}

// event is the engine's internal tagged union.
type event struct {
	time float64
	kind eventKind
	// photo events
	pe PhotoEvent
	// contact events
	contact trace.Contact
	// crash events
	node model.NodeID
}

type eventKind int

// Tie-break order at an instant: a crash wipes storage before anything
// else happens, a photo taken at a contact instant can ride that contact,
// and samples observe a settled state.
const (
	evCrash eventKind = iota
	evPhoto
	evContact
	evSample
)

// Run executes one simulation and returns its metrics. It is a
// RunContext with the background context.
func Run(cfg Config, scheme Scheme) (*Result, error) {
	return RunContext(context.Background(), cfg, scheme)
}

// cancelCheckEvery is how many events the engine processes between context
// checks: coarse enough to keep the hot loop branch-cheap, fine enough that
// cancellation lands within a fraction of a second even on dense traces.
const cancelCheckEvery = 256

// RunContext executes one simulation under a context. The engine polls ctx
// every cancelCheckEvery events and aborts with ctx's error (wrapped) when
// it is cancelled; schemes can additionally observe the same context via
// World.Context during long per-contact computations. A nil ctx behaves
// like context.Background.
func RunContext(ctx context.Context, cfg Config, scheme Scheme) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	span := cfg.Span
	if span <= 0 {
		span = cfg.Trace.Duration()
	}
	capacity := cfg.StorageBytes
	bandwidth := cfg.Bandwidth
	if scheme.Unconstrained() {
		capacity = math.MaxInt64 / 4
		bandwidth = 0
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	w := newWorld(cfg.Map, cfg.Trace.Nodes, capacity, rng)
	w.ctx = ctx
	w.ParallelSelection = cfg.ParallelSelection
	if cfg.FragmentCarryover {
		w.carry = make(map[carryKey]int64)
	}
	w.setObserver(cfg.Obs)
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		fm, err := faults.NewModel(*cfg.Faults, cfg.Trace.Nodes, span, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSimConfig, err)
		}
		w.faults = fm
	}
	scheme.Init(w)

	events := buildEvents(cfg, span, w.faults)
	res := &Result{Scheme: scheme.Name()}
	o := cfg.Obs
	cContacts := o.Counter("sim.contacts")
	cPhotos := o.Counter("sim.photos_taken")
	for i, ev := range events {
		if i%cancelCheckEvery == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("sim: run interrupted: %w", ctx.Err())
		}
		w.now = ev.time
		switch ev.kind {
		case evCrash:
			w.crash(ev.node)
		case evPhoto:
			cPhotos.Inc()
			if o != nil {
				o.Emit(obs.Event{
					Time: ev.time, Kind: obs.EvPhotoTaken,
					A: int32(ev.pe.Node), B: obs.NoNode, Photo: int64(ev.pe.Photo.ID),
				})
			}
			scheme.OnPhoto(ev.pe.Node, ev.pe.Photo)
		case evContact:
			s := &Session{
				w: w, A: ev.contact.A, B: ev.contact.B, Time: ev.time,
				unlimited: bandwidth == 0,
			}
			if !s.unlimited {
				s.budget = int64(ev.contact.Duration() * bandwidth)
			}
			if w.faults != nil {
				s.key = faults.ContactKey(ev.contact)
			}
			cContacts.Inc()
			if o != nil {
				o.Emit(obs.Event{
					Time: ev.time, Kind: obs.EvContactBegin,
					A: int32(s.A), B: int32(s.B), Photo: obs.NoPhoto,
				})
				before := w.transferredPhotos
				scheme.OnContact(s)
				o.Emit(obs.Event{
					Time: ev.time, Kind: obs.EvContactEnd,
					A: int32(s.A), B: int32(s.B), Photo: obs.NoPhoto,
					Value: float64(w.transferredPhotos - before),
				})
				break
			}
			scheme.OnContact(s)
		case evSample:
			res.Samples = append(res.Samples, sampleNow(w))
		}
	}
	w.now = span
	res.Final = sampleNow(w)
	res.TransferredBytes = w.transferredBytes
	res.TransferredPhotos = w.transferredPhotos
	res.DeliveredPhotos = w.CCPhotos().Clone()
	res.NodeCrashes = w.nodeCrashes
	res.PhotosLostToCrash = w.photosLostToCrash
	res.AbortedTransfers = w.abortedTransfers
	res.SalvagedBytes = w.salvagedBytes
	res.ResumedTransfers = w.resumedTransfers
	if w.recovered > 0 {
		res.MeanRecoverySec = w.recoverySum / float64(w.recovered)
	}
	return res, nil
}

func sampleNow(w *World) Sample {
	pt, as := w.Map.Normalized(w.CCCoverage())
	return Sample{Time: w.now, PointFrac: pt, AspectRad: as, Delivered: w.DeliveredCount()}
}

// GatewayContacts enumerates the periodic gateway→command-center contacts
// the configuration implies, up to the span.
func GatewayContacts(cfg Config, span float64) []trace.Contact {
	var out []trace.Contact
	for _, g := range cfg.Gateways {
		for t := cfg.GatewayInterval; t <= span; t += cfg.GatewayInterval {
			out = append(out, trace.Contact{
				Start: t, End: t + cfg.GatewayDuration, A: g, B: model.CommandCenter,
			})
		}
	}
	return out
}

// buildEvents merges the photo workload, the trace contacts, the gateway
// contacts, the sampling clock, and (when a fault model is active) crash
// events into one time-ordered stream. Ties are broken
// crash < photo < contact < sample so a crash wipes storage first, a photo
// taken at a contact instant can ride that contact, and samples observe a
// settled state.
//
// With a fault model, the stream is pre-filtered: photo events are shifted
// by the node's clock skew and suppressed while the node is down, contacts
// involving a down endpoint (or drawn as dropped/outaged) never fire, and
// truncated contacts keep a shortened duration (a smaller transfer budget).
func buildEvents(cfg Config, span float64, fm *faults.Model) []event {
	var events []event
	for _, pe := range cfg.Photos {
		t := pe.Time
		if fm != nil {
			t += fm.Skew(pe.Node)
			if t < 0 {
				t = 0
			}
			if fm.Down(pe.Node, t) {
				continue // a crashed device takes no photos
			}
		}
		if t > span {
			continue
		}
		events = append(events, event{time: t, kind: evPhoto, pe: pe})
	}
	for _, c := range cfg.Trace.Contacts {
		if c.Start > span {
			continue
		}
		if fm != nil {
			if fm.Down(c.A, c.Start) || fm.Down(c.B, c.Start) || fm.DropContact(c) {
				continue
			}
			if f := fm.TruncFactor(c); f < 1 {
				c.End = c.Start + c.Duration()*f
			}
		}
		events = append(events, event{time: c.Start, kind: evContact, contact: c})
	}
	for _, c := range GatewayContacts(cfg, span) {
		if fm != nil && (fm.Down(c.A, c.Start) || fm.GatewayOutage(c)) {
			continue
		}
		events = append(events, event{time: c.Start, kind: evContact, contact: c})
	}
	if cfg.SampleInterval > 0 {
		for t := cfg.SampleInterval; t <= span; t += cfg.SampleInterval {
			events = append(events, event{time: t, kind: evSample})
		}
	}
	if fm != nil {
		for _, cr := range fm.Crashes() {
			if cr.Time > span {
				continue
			}
			events = append(events, event{time: cr.Time, kind: evCrash, node: cr.Node})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return events[i].kind < events[j].kind
	})
	return events
}
