package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"photodtn/internal/faults"
	"photodtn/internal/model"
	"photodtn/internal/trace"
)

// churnTrace is a dense trace: every node meets node 1 repeatedly, and
// node 1 acts as the gateway's feeder.
func churnTrace(nodes int, contactsPerNode int) *trace.Trace {
	tr := &trace.Trace{Nodes: nodes}
	t := 10.0
	for k := 0; k < contactsPerNode; k++ {
		for n := 2; n <= nodes; n++ {
			tr.Contacts = append(tr.Contacts, trace.Contact{
				Start: t, End: t + 30, A: 1, B: model.NodeID(n),
			})
			t += 50
		}
		tr.Contacts = append(tr.Contacts, trace.Contact{Start: t, End: t + 30, A: 1, B: model.CommandCenter})
		t += 50
	}
	return tr
}

func photoWorkload(tr *trace.Trace, perNode int) []PhotoEvent {
	var out []PhotoEvent
	seq := uint32(0)
	for n := 1; n <= tr.Nodes; n++ {
		for k := 0; k < perNode; k++ {
			out = append(out, PhotoEvent{
				Time: float64(k*40 + n), Node: model.NodeID(n),
				Photo: usefulPhoto(model.NodeID(n), seq),
			})
			seq++
		}
	}
	return out
}

// TestFaultsZeroConfigBitIdentical is the no-op guarantee: a nil Faults
// pointer and an all-zero fault config must produce byte-for-byte identical
// results.
func TestFaultsZeroConfigBitIdentical(t *testing.T) {
	tr := churnTrace(5, 4)
	build := func(fc *faults.Config) Config {
		cfg := baseConfig(tr)
		cfg.Photos = photoWorkload(tr, 3)
		cfg.StorageBytes = 1000
		cfg.Bandwidth = 1 // finite budgets exercise the ErrBudget path too
		cfg.SampleInterval = 100
		cfg.Faults = fc
		return cfg
	}
	base, err := Run(build(nil), &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Run(build(&faults.Config{Seed: 12345}), &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, zero) {
		t.Fatalf("zero-rate fault config changed the run:\nbase %+v\nzero %+v", base, zero)
	}
	if base.NodeCrashes != 0 || base.AbortedTransfers != 0 || base.PhotosLostToCrash != 0 {
		t.Fatalf("fault metrics nonzero without faults: %+v", base)
	}
}

// TestFaultsDeterministic: identical configs and seeds give identical
// results, and a different fault seed gives a different realisation.
func TestFaultsDeterministic(t *testing.T) {
	tr := churnTrace(8, 6)
	build := func(faultSeed int64) Config {
		cfg := baseConfig(tr)
		cfg.Photos = photoWorkload(tr, 4)
		cfg.StorageBytes = 1000
		cfg.SampleInterval = 200
		cfg.Faults = &faults.Config{Seed: faultSeed, NodeFailRate: 0.5, FrameLossProb: 0.1}
		return cfg
	}
	a, err := Run(build(1), &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(build(1), &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same fault seed produced different runs")
	}
	c, err := Run(build(99), &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Samples, c.Samples) && a.NodeCrashes == c.NodeCrashes &&
		a.AbortedTransfers == c.AbortedTransfers {
		t.Fatal("different fault seeds produced identical runs")
	}
}

func TestCrashWipesStorageAndRecords(t *testing.T) {
	tr := churnTrace(4, 5)
	cfg := baseConfig(tr)
	cfg.Photos = photoWorkload(tr, 5)
	cfg.StorageBytes = 1000
	cfg.Faults = &faults.Config{Seed: 3, NodeFailRate: 1} // every node crashes, never rejoins
	res, err := Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeCrashes != 4 {
		t.Fatalf("crashes = %d, want 4", res.NodeCrashes)
	}
	if res.PhotosLostToCrash == 0 {
		t.Fatal("no photos recorded lost despite full churn")
	}
	// A crash-free run must deliver at least as much.
	cfg.Faults = nil
	clean, err := Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered > clean.Final.Delivered {
		t.Fatalf("faulty run delivered %d > clean %d", res.Final.Delivered, clean.Final.Delivered)
	}
}

func TestDownNodesDropOutOfContactsAndPhotos(t *testing.T) {
	// NodeFailRate 1 with crashes pinned before the trace span's contacts
	// would need schedule control; instead assert the invariant on the
	// event stream: no contact fires while an endpoint is down.
	tr := churnTrace(6, 6)
	cfg := baseConfig(tr)
	cfg.Photos = photoWorkload(tr, 3)
	cfg.Faults = &faults.Config{Seed: 5, NodeFailRate: 0.8, MeanDowntimeSec: 300, MeanUptimeSec: 600}
	span := tr.Duration()
	fm, err := faults.NewModel(*cfg.Faults, tr.Nodes, span, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	events := buildEvents(cfg, span, fm)
	for _, ev := range events {
		switch ev.kind {
		case evContact:
			if fm.Down(ev.contact.A, ev.time) || fm.Down(ev.contact.B, ev.time) {
				t.Fatalf("contact %+v fired while an endpoint was down", ev.contact)
			}
		case evPhoto:
			if fm.Down(ev.pe.Node, ev.time) {
				t.Fatalf("photo event fired on down node %v at %v", ev.pe.Node, ev.time)
			}
		}
	}
}

// TestSessionAbortConsistency is the §III-D discard-unfinished check: a
// session aborted mid-transfer discards the unfinished photo and leaves
// storage byte-accounting exactly as before the aborted photo.
func TestSessionAbortConsistency(t *testing.T) {
	w := newWorld(testMap(), 2, 1000, rand.New(rand.NewSource(1)))
	// A fault model whose frame-loss probability is 1: the very first
	// transfer aborts the session.
	fm, err := faults.NewModel(faults.Config{Seed: 1, FrameLossProb: 1}, 2, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}

	// First, a fault-free session moves one photo across.
	first := usefulPhoto(1, 0)
	second := usefulPhoto(1, 1)
	if err := w.Storage(1).Add(first); err != nil {
		t.Fatal(err)
	}
	if err := w.Storage(1).Add(second); err != nil {
		t.Fatal(err)
	}
	clean := &Session{w: w, A: 1, B: 2, Time: 10, unlimited: true}
	if err := clean.Transfer(2, first); err != nil {
		t.Fatal(err)
	}

	usedBefore := [3]int64{0, w.Storage(1).Used(), w.Storage(2).Used()}
	lenBefore := [3]int{0, w.Storage(1).Len(), w.Storage(2).Len()}
	bytesBefore, photosBefore := w.transferredBytes, w.transferredPhotos

	// Now arm the faults and try the second photo: the frame is lost.
	w.faults = fm
	s := &Session{w: w, A: 1, B: 2, Time: 20, unlimited: true, key: 7}
	err = s.Transfer(2, second)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if !s.Aborted() || !s.Exhausted() {
		t.Fatal("session not marked aborted/exhausted")
	}

	// The unfinished photo is discarded: receiver does not have it, and
	// every byte-accounting figure is exactly as before the attempt.
	if w.Storage(2).Has(second.ID) {
		t.Fatal("aborted photo landed in the receiver's storage")
	}
	for n := model.NodeID(1); n <= 2; n++ {
		st := w.Storage(n)
		if st.Used() != usedBefore[n] || st.Len() != lenBefore[n] {
			t.Fatalf("node %v accounting changed: used %d→%d, len %d→%d",
				n, usedBefore[n], st.Used(), lenBefore[n], st.Len())
		}
		var sum int64
		for _, p := range st.List() {
			sum += p.Size
		}
		if sum != st.Used() {
			t.Fatalf("node %v: Used()=%d but photos sum to %d", n, st.Used(), sum)
		}
	}
	if w.transferredBytes != bytesBefore || w.transferredPhotos != photosBefore {
		t.Fatal("aborted transfer consumed transfer accounting")
	}
	if w.abortedTransfers != 1 {
		t.Fatalf("abortedTransfers = %d, want 1", w.abortedTransfers)
	}

	// Subsequent transfers on the dead session keep failing, including
	// deliveries to the command center.
	if err := s.Transfer(2, second); !errors.Is(err, ErrAborted) {
		t.Fatalf("second transfer err = %v, want ErrAborted", err)
	}
	if err := s.Transfer(model.CommandCenter, second); !errors.Is(err, ErrAborted) {
		t.Fatalf("CC transfer err = %v, want ErrAborted", err)
	}
	if w.DeliveredCount() != 0 {
		t.Fatal("aborted session delivered a photo")
	}
}

// TestFrameLossDegradesButStaysConsistent runs a full engine pass under
// heavy frame loss and asserts the storage invariants hold everywhere.
func TestFrameLossDegradesButStaysConsistent(t *testing.T) {
	tr := churnTrace(6, 8)
	cfg := baseConfig(tr)
	cfg.Photos = photoWorkload(tr, 5)
	cfg.StorageBytes = 1000
	cfg.Faults = &faults.Config{Seed: 11, FrameLossProb: 0.4}
	res, err := Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedTransfers == 0 {
		t.Fatal("no aborts under 40% frame loss")
	}
	cfg.Faults = nil
	clean, err := Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered > clean.Final.Delivered {
		t.Fatalf("lossy run delivered %d > clean %d", res.Final.Delivered, clean.Final.Delivered)
	}
	if res.Final.Delivered == 0 {
		t.Fatal("40% frame loss wiped out delivery entirely — not graceful")
	}
}

func TestRecoveryMetric(t *testing.T) {
	// One node, one crash between two gateway deliveries: the recovery
	// time is the gap from the crash to the second delivery.
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: model.CommandCenter},
		{Start: 500, End: 510, A: 2, B: model.CommandCenter},
	}}
	cfg := baseConfig(tr)
	cfg.Photos = []PhotoEvent{
		{Time: 1, Node: 1, Photo: usefulPhoto(1, 0)},
		{Time: 2, Node: 2, Photo: usefulPhoto(2, 1)},
	}
	cfg.Faults = &faults.Config{Seed: 1, NodeFailRate: 1}
	res, err := Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeCrashes != 2 {
		t.Fatalf("crashes = %d", res.NodeCrashes)
	}
	// Whether a recovery resolves depends on crash placement relative to
	// the deliveries; at minimum the metric must be finite and non-negative.
	if res.MeanRecoverySec < 0 {
		t.Fatalf("negative recovery time %v", res.MeanRecoverySec)
	}
}

func TestBadFaultConfigRejected(t *testing.T) {
	tr := churnTrace(2, 1)
	cfg := baseConfig(tr)
	cfg.Faults = &faults.Config{NodeFailRate: 2}
	if _, err := Run(cfg, &relayScheme{}); !errors.Is(err, ErrBadSimConfig) {
		t.Fatalf("err = %v, want ErrBadSimConfig", err)
	}
}
