package sim

import (
	"errors"
	"math"
	"testing"

	"photodtn/internal/coverage"
	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/trace"
)

// relayScheme is a minimal test scheme: nodes flood photos to each other
// and to the command center, content-blind, FIFO.
type relayScheme struct {
	w             *World
	unconstrained bool
	contacts      int
	photos        int
}

func (r *relayScheme) Name() string        { return "relay" }
func (r *relayScheme) Unconstrained() bool { return r.unconstrained }
func (r *relayScheme) Init(w *World)       { r.w = w }

func (r *relayScheme) OnPhoto(node model.NodeID, p model.Photo) {
	r.photos++
	_ = r.w.Storage(node).Add(p)
}

func (r *relayScheme) OnContact(s *Session) {
	r.contacts++
	if s.A.IsCommandCenter() || s.B.IsCommandCenter() {
		node := s.A
		if node.IsCommandCenter() {
			node = s.B
		}
		st := r.w.Storage(node)
		for _, p := range st.List() {
			if r.w.CCHas(p.ID) {
				continue
			}
			if err := s.Transfer(model.CommandCenter, p); err != nil {
				return
			}
		}
		return
	}
	stA, stB := r.w.Storage(s.A), r.w.Storage(s.B)
	for _, p := range stA.List() {
		if !stB.Has(p.ID) && p.Size <= stB.Free() {
			if err := s.Transfer(s.B, p); err != nil {
				return
			}
		}
	}
}

func testMap() *coverage.Map {
	return coverage.NewMap([]model.PoI{model.NewPoI(0, geo.Vec{})}, geo.Radians(30))
}

// usefulPhoto covers the single PoI of testMap from the east.
func usefulPhoto(owner model.NodeID, seq uint32) model.Photo {
	return model.Photo{
		ID: model.MakePhotoID(owner, seq), Owner: owner,
		Location: geo.Vec{X: 50}, Range: 100,
		FOV: geo.Radians(60), Orientation: geo.Radians(180),
		Size: 4,
	}
}

func baseConfig(tr *trace.Trace) Config {
	return Config{
		Trace:        tr,
		Map:          testMap(),
		StorageBytes: 100,
		Seed:         1,
	}
}

func TestRunDeliversThroughRelay(t *testing.T) {
	// 1 takes a photo, meets 2, 2 meets the CC.
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 2},
		{Start: 30, End: 40, A: 2, B: 0},
	}}
	cfg := baseConfig(tr)
	cfg.Photos = []PhotoEvent{{Time: 5, Node: 1, Photo: usefulPhoto(1, 0)}}
	scheme := &relayScheme{}
	res, err := Run(cfg, scheme)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", res.Final.Delivered)
	}
	if res.Final.PointFrac != 1 {
		t.Fatalf("point coverage = %v, want 1", res.Final.PointFrac)
	}
	if math.Abs(res.Final.AspectRad-geo.Radians(60)) > 1e-9 {
		t.Fatalf("aspect = %v", geo.Degrees(res.Final.AspectRad))
	}
	if scheme.contacts != 2 || scheme.photos != 1 {
		t.Fatalf("callbacks: contacts=%d photos=%d", scheme.contacts, scheme.photos)
	}
	if res.TransferredPhotos != 2 { // 1→2, 2→CC
		t.Fatalf("TransferredPhotos = %d", res.TransferredPhotos)
	}
}

func TestRunEventOrdering(t *testing.T) {
	// A photo taken exactly at a contact start must be available to that
	// contact (photo events sort before contacts at the same time).
	tr := &trace.Trace{Nodes: 1, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 0},
	}}
	cfg := baseConfig(tr)
	cfg.Photos = []PhotoEvent{{Time: 10, Node: 1, Photo: usefulPhoto(1, 0)}}
	res, err := Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", res.Final.Delivered)
	}
}

func TestRunBudgetLimitsTransfers(t *testing.T) {
	// Contact duration 2s at 1 byte/s = 2 bytes budget: the 4-byte photo
	// cannot be transferred.
	tr := &trace.Trace{Nodes: 1, Contacts: []trace.Contact{
		{Start: 10, End: 12, A: 1, B: 0},
	}}
	cfg := baseConfig(tr)
	cfg.Bandwidth = 1
	cfg.Photos = []PhotoEvent{{Time: 5, Node: 1, Photo: usefulPhoto(1, 0)}}
	res, err := Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered != 0 {
		t.Fatalf("delivered = %d, want 0 under tight budget", res.Final.Delivered)
	}
	// A longer contact delivers it.
	tr.Contacts[0].End = 14.5
	res, err = Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", res.Final.Delivered)
	}
}

func TestRunFragmentCarryoverResumes(t *testing.T) {
	// Two contacts, each 2 s at 1 byte/s: the 4-byte photo never fits a
	// single contact. By default budget-cut bytes are discarded and nothing
	// is ever delivered; with FragmentCarryover the first contact parks half
	// the payload at the command center and the second sends only the rest.
	tr := &trace.Trace{Nodes: 1, Contacts: []trace.Contact{
		{Start: 10, End: 12, A: 1, B: 0},
		{Start: 20, End: 22, A: 1, B: 0},
	}}
	cfg := baseConfig(tr)
	cfg.Bandwidth = 1
	cfg.Photos = []PhotoEvent{{Time: 5, Node: 1, Photo: usefulPhoto(1, 0)}}

	res, err := Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered != 0 || res.SalvagedBytes != 0 || res.ResumedTransfers != 0 {
		t.Fatalf("default run: delivered=%d salvaged=%d resumed=%d, want all zero",
			res.Final.Delivered, res.SalvagedBytes, res.ResumedTransfers)
	}

	cfg.FragmentCarryover = true
	res, err = Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered != 1 {
		t.Fatalf("carryover run: delivered = %d, want 1", res.Final.Delivered)
	}
	if res.SalvagedBytes != 2 {
		t.Fatalf("SalvagedBytes = %d, want 2 (the parked half)", res.SalvagedBytes)
	}
	if res.ResumedTransfers != 1 {
		t.Fatalf("ResumedTransfers = %d, want 1", res.ResumedTransfers)
	}
	if res.TransferredBytes != 4 {
		t.Fatalf("TransferredBytes = %d, want 4 (no byte sent twice)", res.TransferredBytes)
	}
}

func TestRunUnconstrainedLiftsLimits(t *testing.T) {
	tr := &trace.Trace{Nodes: 1, Contacts: []trace.Contact{
		{Start: 10, End: 10.1, A: 1, B: 0},
	}}
	cfg := baseConfig(tr)
	cfg.Bandwidth = 1
	cfg.StorageBytes = 1 // photo would not even fit
	cfg.Photos = []PhotoEvent{{Time: 5, Node: 1, Photo: usefulPhoto(1, 0)}}
	res, err := Run(cfg, &relayScheme{unconstrained: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Delivered != 1 {
		t.Fatalf("unconstrained delivered = %d, want 1", res.Final.Delivered)
	}
}

func TestRunGatewayContacts(t *testing.T) {
	tr := &trace.Trace{Nodes: 2} // no peer contacts at all
	cfg := baseConfig(tr)
	cfg.Span = 100
	cfg.Gateways = []model.NodeID{2}
	cfg.GatewayInterval = 30
	cfg.GatewayDuration = 5
	cfg.Photos = []PhotoEvent{{Time: 5, Node: 2, Photo: usefulPhoto(2, 0)}}
	scheme := &relayScheme{}
	res, err := Run(cfg, scheme)
	if err != nil {
		t.Fatal(err)
	}
	if scheme.contacts != 3 { // t = 30, 60, 90
		t.Fatalf("gateway contacts = %d, want 3", scheme.contacts)
	}
	if res.Final.Delivered != 1 {
		t.Fatalf("delivered = %d", res.Final.Delivered)
	}
}

func TestRunSampling(t *testing.T) {
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 0},
	}}
	cfg := baseConfig(tr)
	cfg.Span = 100
	cfg.SampleInterval = 25
	cfg.Photos = []PhotoEvent{{Time: 5, Node: 1, Photo: usefulPhoto(1, 0)}}
	res, err := Run(cfg, &relayScheme{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(res.Samples))
	}
	if res.Samples[0].Time != 25 || res.Samples[0].Delivered != 1 {
		t.Fatalf("first sample = %+v", res.Samples[0])
	}
	if res.Final.Time != 100 {
		t.Fatalf("final time = %v", res.Final.Time)
	}
}

func TestRunConfigValidation(t *testing.T) {
	tr := &trace.Trace{Nodes: 2}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil trace", func(c *Config) { c.Trace = nil }},
		{"nil map", func(c *Config) { c.Map = nil }},
		{"no storage", func(c *Config) { c.StorageBytes = 0 }},
		{"negative bandwidth", func(c *Config) { c.Bandwidth = -1 }},
		{"gateway without interval", func(c *Config) { c.Gateways = []model.NodeID{1} }},
		{"gateway out of range", func(c *Config) {
			c.Gateways = []model.NodeID{5}
			c.GatewayInterval = 10
		}},
		{"gateway is CC", func(c *Config) {
			c.Gateways = []model.NodeID{0}
			c.GatewayInterval = 10
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig(tr)
			tt.mutate(&cfg)
			if _, err := Run(cfg, &relayScheme{}); !errors.Is(err, ErrBadSimConfig) {
				t.Fatalf("err = %v, want ErrBadSimConfig", err)
			}
		})
	}
}

func TestSessionTransferErrors(t *testing.T) {
	w := newWorld(testMap(), 2, 10, nil)
	s := &Session{w: w, A: 1, B: 2, budget: 6}
	p := usefulPhoto(1, 0) // 4 bytes
	if err := s.Transfer(2, p); err != nil {
		t.Fatal(err)
	}
	if s.Remaining() != 2 {
		t.Fatalf("remaining = %d", s.Remaining())
	}
	// Duplicate.
	if err := s.Transfer(2, p); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	// Budget: 4 > 2 remaining; budget is consumed by the aborted attempt.
	if err := s.Transfer(2, usefulPhoto(1, 1)); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if !s.Exhausted() {
		t.Fatal("session should be exhausted")
	}
}

func TestSessionCarryoverParksAndSalvages(t *testing.T) {
	w := newWorld(testMap(), 2, 10, nil)
	w.carry = make(map[carryKey]int64)
	p := usefulPhoto(1, 0) // 4 bytes

	// First contact: 3 of 4 bytes fit — they park at the receiver.
	s := &Session{w: w, A: 1, B: 2, budget: 3}
	if err := s.Transfer(2, p); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if got := w.carry[carryKey{2, p.ID}]; got != 3 {
		t.Fatalf("parked bytes = %d, want 3", got)
	}

	// Second contact: only the 1-byte remainder crosses the wire.
	s = &Session{w: w, A: 1, B: 2, budget: 1}
	if err := s.Transfer(2, p); err != nil {
		t.Fatal(err)
	}
	if w.salvagedBytes != 3 || w.resumedTransfers != 1 {
		t.Fatalf("salvaged=%d resumed=%d, want 3, 1", w.salvagedBytes, w.resumedTransfers)
	}
	if len(w.carry) != 0 {
		t.Fatalf("carry entries after completion: %d, want 0", len(w.carry))
	}

	// Fragments parked on a device die with it.
	s = &Session{w: w, A: 1, B: 2, budget: 2}
	if err := s.Transfer(2, usefulPhoto(1, 1)); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if len(w.carry) != 1 {
		t.Fatalf("carry entries before crash: %d, want 1", len(w.carry))
	}
	w.crash(2)
	if len(w.carry) != 0 {
		t.Fatalf("carry entries after crash: %d, want 0", len(w.carry))
	}
}

func TestSessionTransferNoSpace(t *testing.T) {
	w := newWorld(testMap(), 2, 6, nil)
	s := &Session{w: w, A: 1, B: 2, unlimited: true}
	if err := s.Transfer(2, usefulPhoto(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Transfer(2, usefulPhoto(1, 1)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestSessionPeer(t *testing.T) {
	s := &Session{A: 1, B: 2}
	if s.Peer(1) != 2 || s.Peer(2) != 1 {
		t.Fatal("Peer wrong")
	}
}

func TestWorldDeliverDedup(t *testing.T) {
	w := newWorld(testMap(), 1, 100, nil)
	p := usefulPhoto(1, 0)
	w.deliver(p)
	w.deliver(p)
	if w.DeliveredCount() != 1 {
		t.Fatalf("delivered = %d", w.DeliveredCount())
	}
	if !w.CCHas(p.ID) {
		t.Fatal("CCHas wrong")
	}
	if w.CCCoverage().Point != 1 {
		t.Fatalf("cc coverage = %v", w.CCCoverage())
	}
}

func TestWorldStoragePanics(t *testing.T) {
	w := newWorld(testMap(), 2, 100, nil)
	for _, n := range []model.NodeID{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Storage(%v) did not panic", n)
				}
			}()
			w.Storage(n)
		}()
	}
}

func TestRunManyAverages(t *testing.T) {
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 10, End: 20, A: 1, B: 0},
	}}
	avg, err := RunMany(4, 7, func(seed int64) (Config, Scheme, error) {
		cfg := baseConfig(tr)
		cfg.Span = 100
		cfg.SampleInterval = 50
		cfg.Seed = seed
		// Half the runs generate a photo before the contact, half after:
		// average delivered must be 0.5.
		when := 5.0
		if seed%2 == 0 {
			when = 50
		}
		cfg.Photos = []PhotoEvent{{Time: when, Node: 1, Photo: usefulPhoto(1, 0)}}
		return cfg, &relayScheme{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Runs != 4 || len(avg.Samples) != 2 {
		t.Fatalf("avg shape: runs=%d samples=%d", avg.Runs, len(avg.Samples))
	}
	if math.Abs(avg.Final.Delivered-0.5) > 1e-9 {
		t.Fatalf("avg delivered = %v, want 0.5", avg.Final.Delivered)
	}
}

func TestRunManyZeroRuns(t *testing.T) {
	if _, err := RunMany(0, 1, nil); !errors.Is(err, ErrNoRuns) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	_, err := RunMany(2, 1, func(seed int64) (Config, Scheme, error) {
		return Config{}, nil, errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected error")
	}
}
