package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"photodtn/internal/coverage"
	"photodtn/internal/faults"
	"photodtn/internal/model"
	"photodtn/internal/obs"
)

// World is the simulation state a Scheme operates on: the PoI map, per-node
// storages, the command center's received collection, and the clock.
type World struct {
	// Map is the PoI coverage map of the crowdsourcing task.
	Map *coverage.Map
	// Rand is the run's deterministic RNG; schemes needing randomness must
	// use it (never the global source).
	Rand *rand.Rand

	// ctx is the run's context (never nil once the engine built the world);
	// schemes observe it through Context for long per-contact computations.
	ctx context.Context

	now      float64
	storages []*Storage // index 1..numNodes; index 0 unused (CC is unbounded)
	ccPhotos model.PhotoList
	ccSet    map[model.PhotoID]bool
	ccState  *coverage.State

	// faults is the run's fault model; nil when no faults are configured
	// (the engine then behaves bit-identically to a fault-free build).
	faults *faults.Model

	// obsv is the run's observer; nil when observability is disabled. The
	// cached counters below are nil in that case too, so the hot paths pay
	// only a nil check.
	obsv        *obs.Observer
	cDelivered  *obs.Counter
	cTransfers  *obs.Counter
	cDuplicates *obs.Counter
	cAborts     *obs.Counter
	cCrashes    *obs.Counter

	// ParallelSelection mirrors Config.ParallelSelection for schemes to pick
	// up in Init (schemes see only the World, not the engine Config).
	ParallelSelection bool

	// Aggregate transfer statistics.
	transferredBytes  int64
	transferredPhotos int64

	// Fragment carryover (Config.FragmentCarryover): bytes of budget-cut
	// transfers parked at their receiver, keyed by (receiver, photo). Nil
	// unless the knob is on — every touch point is gated on that, so the
	// default run is bit-identical to earlier builds.
	carry            map[carryKey]int64
	salvagedBytes    int64
	resumedTransfers int64

	// Fault metrics.
	nodeCrashes       int64
	photosLostToCrash int64
	abortedTransfers  int64
	pendingCrashes    []float64 // crash times awaiting the next CC delivery
	recoverySum       float64
	recovered         int64
}

// newWorld builds a world with numNodes participant storages of the given
// capacity.
func newWorld(m *coverage.Map, numNodes int, capacity int64, rng *rand.Rand) *World {
	w := &World{
		Map:      m,
		Rand:     rng,
		storages: make([]*Storage, numNodes+1),
		ccSet:    make(map[model.PhotoID]bool),
		ccState:  m.NewState(),
	}
	for i := 1; i <= numNodes; i++ {
		w.storages[i] = NewStorage(capacity)
	}
	return w
}

// setObserver installs the run's observer and caches the engine-level
// counters (all remain nil — no-ops — when o is nil).
func (w *World) setObserver(o *obs.Observer) {
	w.obsv = o
	w.cDelivered = o.Counter("sim.photos_delivered")
	w.cTransfers = o.Counter("sim.transfers")
	w.cDuplicates = o.Counter("sim.deliveries_duplicate")
	w.cAborts = o.Counter("sim.sessions_aborted")
	w.cCrashes = o.Counter("sim.node_crashes")
}

// Obs returns the run's observer; nil when observability is disabled.
// Schemes use it to register their own metrics and emit trace events — a
// nil observer accepts every call and does nothing.
func (w *World) Obs() *obs.Observer { return w.obsv }

// Context returns the run's context. Schemes doing long per-contact work
// (Monte Carlo sampling, large gain scans) may poll it to abandon work the
// caller no longer wants; the engine itself polls between events, so most
// schemes never need to. Never nil.
func (w *World) Context() context.Context {
	if w.ctx == nil {
		return context.Background() // worlds built directly by tests
	}
	return w.ctx
}

// Now returns the current simulation time in seconds.
func (w *World) Now() float64 { return w.now }

// NumNodes returns the number of participant nodes.
func (w *World) NumNodes() int { return len(w.storages) - 1 }

// Storage returns the storage of a participant node. It panics for the
// command center (which has no capacity-bound storage) or out-of-range IDs;
// that is a programming error in a scheme, not a runtime condition.
func (w *World) Storage(n model.NodeID) *Storage {
	if n.IsCommandCenter() || int(n) >= len(w.storages) || n < 0 {
		panic(fmt.Sprintf("sim: no storage for node %v", n))
	}
	return w.storages[n]
}

// CCPhotos returns the photos the command center has received so far. The
// returned slice must not be mutated.
func (w *World) CCPhotos() model.PhotoList { return w.ccPhotos }

// CCHas reports whether the command center already received the photo.
func (w *World) CCHas(id model.PhotoID) bool { return w.ccSet[id] }

// CCCoverage returns the command center's current photo coverage — the
// objective the whole system maximises.
func (w *World) CCCoverage() coverage.Coverage { return w.ccState.Coverage() }

// CCState exposes the command center's coverage state (read-only use).
func (w *World) CCState() *coverage.State { return w.ccState }

// DeliveredCount returns the number of distinct photos delivered.
func (w *World) DeliveredCount() int { return len(w.ccPhotos) }

// deliver hands a photo to the command center and reports whether it was
// new. Duplicates are ignored.
func (w *World) deliver(p model.Photo) bool {
	if w.ccSet[p.ID] {
		w.cDuplicates.Inc()
		return false
	}
	w.ccSet[p.ID] = true
	w.ccPhotos = append(w.ccPhotos, p)
	w.ccState.AddPhoto(p)
	// The first delivery after a crash resolves the recovery clock of
	// every crash still pending.
	if len(w.pendingCrashes) > 0 {
		for _, ct := range w.pendingCrashes {
			w.recoverySum += w.now - ct
		}
		w.recovered += int64(len(w.pendingCrashes))
		w.pendingCrashes = w.pendingCrashes[:0]
	}
	return true
}

// crash wipes a node's storage (the photos are lost with the device) and
// starts the recovery clock. The scheme's soft state — metadata caches,
// PROPHET tables — survives on *other* nodes and goes stale, which is
// exactly the disruption the metadata validity rule (§III-B) must absorb.
func (w *World) crash(n model.NodeID) {
	st := w.storages[n]
	lost := st.Len()
	w.nodeCrashes++
	w.photosLostToCrash += int64(lost)
	_ = st.ReplaceAll(nil) // always fits
	// Fragments parked on the device die with it (carryover mode).
	for k := range w.carry {
		if k.to == n {
			delete(w.carry, k)
		}
	}
	w.pendingCrashes = append(w.pendingCrashes, w.now)
	w.cCrashes.Inc()
	if w.obsv != nil {
		w.obsv.Emit(obs.Event{
			Time: w.now, Kind: obs.EvNodeCrash,
			A: int32(n), B: obs.NoNode, Photo: obs.NoPhoto, Value: float64(lost),
		})
	}
}

// carryKey identifies a parked fragment: the node holding the partial
// bytes and the photo they belong to.
type carryKey struct {
	to model.NodeID
	id model.PhotoID
}

// Session errors.
var (
	// ErrBudget is returned when the contact's transfer budget is
	// exhausted; the in-flight photo is discarded per §III-D.
	ErrBudget = errors.New("sim: contact budget exhausted")
	// ErrAborted is returned when the fault model loses or corrupts a
	// frame mid-transfer: the session dies, the in-flight photo is
	// discarded (§III-D), and no further transfer can succeed.
	ErrAborted = errors.New("sim: session aborted mid-transfer")
)

// Session is one contact between two nodes (one of which may be the command
// center), with a byte budget derived from the contact duration and the
// radio bandwidth.
type Session struct {
	w *World
	// A and B are the contact endpoints.
	A model.NodeID
	B model.NodeID
	// Time is the contact start time.
	Time float64

	budget    int64
	unlimited bool
	// key identifies the contact for fault-model frame decisions; it is
	// only set when a fault model is active.
	key uint64
	// aborted is set when a frame loss kills the session; every later
	// transfer fails with ErrAborted.
	aborted bool
}

// World returns the world the session belongs to.
func (s *Session) World() *World { return s.w }

// Remaining returns the remaining transfer budget in bytes; it is
// meaningless when the session is unlimited.
func (s *Session) Remaining() int64 { return s.budget }

// Unlimited reports whether the contact has no transfer budget (the
// paper's "contact duration is long enough" assumption).
func (s *Session) Unlimited() bool { return s.unlimited }

// Exhausted reports whether no further transfer can succeed.
func (s *Session) Exhausted() bool { return s.aborted || (!s.unlimited && s.budget <= 0) }

// Aborted reports whether the session died mid-transfer to a fault.
func (s *Session) Aborted() bool { return s.aborted }

// Peer returns the other endpoint of the session.
func (s *Session) Peer(n model.NodeID) model.NodeID {
	if n == s.A {
		return s.B
	}
	return s.A
}

// Transfer moves a photo from one endpoint to the other, debiting the
// budget. Transfers to the command center deliver the photo. Transfers to a
// node require free space (ErrNoSpace otherwise — the scheme must evict
// first). When the budget cannot cover the photo, the remaining budget is
// consumed by the aborted partial transfer and ErrBudget is returned.
// When the fault model loses a frame mid-transfer, the session aborts with
// ErrAborted: the in-flight photo is discarded, no storage or accounting
// changes, and every subsequent transfer on the session fails too.
func (s *Session) Transfer(to model.NodeID, p model.Photo) error {
	if s.aborted {
		return fmt.Errorf("%w: photo %v", ErrAborted, p.ID)
	}
	if !to.IsCommandCenter() {
		// Receiver-side checks come first: a transfer that could never
		// start must not consume budget.
		st := s.w.Storage(to)
		if st.Has(p.ID) {
			return fmt.Errorf("%w: %v", ErrDuplicate, p.ID)
		}
		if p.Size > st.Free() {
			return fmt.Errorf("%w: photo %v needs %d bytes at %v", ErrNoSpace, p.ID, p.Size, to)
		}
	}
	if fm := s.w.faults; fm != nil && fm.FrameLost(s.key, p.ID) {
		s.aborted = true
		s.budget = 0
		s.w.abortedTransfers++
		s.w.cAborts.Inc()
		if s.w.obsv != nil {
			s.w.obsv.Emit(obs.Event{
				Time: s.w.now, Kind: obs.EvSessionAbort,
				A: int32(s.A), B: int32(s.B), Photo: int64(p.ID),
			})
		}
		return fmt.Errorf("%w: photo %v lost in flight", ErrAborted, p.ID)
	}
	need := p.Size
	var carried int64
	if s.w.carry != nil {
		if carried = s.w.carry[carryKey{to, p.ID}]; carried > need {
			carried = need
		}
		need -= carried
	}
	if !s.unlimited && need > s.budget {
		if s.w.carry != nil && s.budget > 0 {
			// The bytes that fit this contact survive at the receiver; a
			// later contact sends only the remainder.
			s.w.carry[carryKey{to, p.ID}] = carried + s.budget
			s.w.transferredBytes += s.budget
		}
		s.budget = 0
		return fmt.Errorf("%w: photo %v (%d bytes)", ErrBudget, p.ID, p.Size)
	}
	if carried > 0 {
		s.w.salvagedBytes += carried
		s.w.resumedTransfers++
		delete(s.w.carry, carryKey{to, p.ID})
	}
	s.debit(need)
	if to.IsCommandCenter() {
		if s.w.deliver(p) {
			s.w.cDelivered.Inc()
			if s.w.obsv != nil {
				s.w.obsv.Emit(obs.Event{
					Time: s.w.now, Kind: obs.EvPhotoDelivered,
					A: int32(s.Peer(to)), B: 0, Photo: int64(p.ID), Value: 1,
				})
			}
		}
		return nil
	}
	if err := s.w.Storage(to).Add(p); err != nil {
		return err // unreachable given the checks above, but stay honest
	}
	return nil
}

func (s *Session) debit(n int64) {
	if !s.unlimited {
		s.budget -= n
	}
	s.w.transferredBytes += n
	s.w.transferredPhotos++
	s.w.cTransfers.Inc()
}
