package geo

import (
	"fmt"
	"math"
	"sort"
)

// Arc is a closed arc on the unit circle, described by its start angle and
// angular width. The start angle is normalized to [0, 2π); the width is
// clamped to [0, 2π]. An arc may wrap across the 0/2π seam.
type Arc struct {
	Start float64
	Width float64
}

// NewArc returns an arc with a normalized start and a clamped width.
func NewArc(start, width float64) Arc {
	if width < 0 {
		width = 0
	}
	if width > TwoPi {
		width = TwoPi
	}
	return Arc{Start: NormalizeAngle(start), Width: width}
}

// ArcAround returns the arc of half-width hw centred on the given angle.
// This is the shape of an aspect-coverage contribution: a photo viewing a
// PoI from direction c covers the aspects within the effective angle hw of c.
func ArcAround(center, hw float64) Arc {
	return NewArc(center-hw, 2*hw)
}

// End returns the (possibly unnormalized, i.e. ≥ 2π) end angle of a.
func (a Arc) End() float64 { return a.Start + a.Width }

// IsFull reports whether the arc covers the entire circle.
func (a Arc) IsFull() bool { return a.Width >= TwoPi }

// IsEmpty reports whether the arc has zero width.
func (a Arc) IsEmpty() bool { return a.Width <= 0 }

// Contains reports whether the angle lies on the arc (inclusive).
func (a Arc) Contains(angle float64) bool {
	if a.IsFull() {
		return true
	}
	if a.IsEmpty() {
		return false
	}
	angle = NormalizeAngle(angle)
	if angle < a.Start {
		angle += TwoPi
	}
	return angle <= a.End()
}

// String implements fmt.Stringer, reporting degrees for readability.
func (a Arc) String() string {
	return fmt.Sprintf("[%.1f°+%.1f°]", Degrees(a.Start), Degrees(a.Width))
}

// interval is a non-wrapping segment 0 ≤ lo ≤ hi ≤ 2π.
type interval struct {
	lo float64
	hi float64
}

// splitInto decomposes an arc into at most two non-wrapping intervals
// without allocating.
func (a Arc) splitInto() (ivs [2]interval, n int) {
	if a.IsEmpty() {
		return ivs, 0
	}
	if a.IsFull() {
		ivs[0] = interval{0, TwoPi}
		return ivs, 1
	}
	if end := a.End(); end > TwoPi {
		ivs[0] = interval{a.Start, TwoPi}
		ivs[1] = interval{0, end - TwoPi}
		return ivs, 2
	}
	ivs[0] = interval{a.Start, a.End()}
	return ivs, 1
}

// ArcSet is a measurable union of arcs on the unit circle. The zero value is
// an empty set ready for use. ArcSet is not safe for concurrent mutation;
// once a set is no longer mutated, any number of goroutines may read it
// concurrently (every query method is a pure read).
type ArcSet struct {
	// ivs holds disjoint, sorted, non-wrapping intervals.
	ivs []interval
	// measure memoizes the total length of ivs. It is maintained eagerly on
	// every mutation (summed over ivs in order, so it is bit-identical to a
	// fresh recomputation), which keeps Measure a pure — and therefore
	// concurrency-safe — read.
	measure float64
}

// NewArcSet returns a set containing the union of the given arcs.
func NewArcSet(arcs ...Arc) *ArcSet {
	s := &ArcSet{}
	for _, a := range arcs {
		s.Add(a)
	}
	return s
}

// Clone returns an independent copy of the set.
func (s *ArcSet) Clone() *ArcSet {
	c := &ArcSet{measure: s.measure}
	if len(s.ivs) > 0 {
		c.ivs = make([]interval, len(s.ivs))
		copy(c.ivs, s.ivs)
	}
	return c
}

// CopyFrom makes s an exact copy of o, reusing s's interval storage. A nil
// o empties s.
func (s *ArcSet) CopyFrom(o *ArcSet) {
	if o == nil {
		s.Reset()
		return
	}
	s.ivs = append(s.ivs[:0], o.ivs...)
	s.measure = o.measure
}

// Reset empties the set, retaining allocated capacity.
func (s *ArcSet) Reset() {
	s.ivs = s.ivs[:0]
	s.measure = 0
}

// IsEmpty reports whether the set has zero measure.
func (s *ArcSet) IsEmpty() bool { return len(s.ivs) == 0 }

// Len returns the number of maximal disjoint intervals in the set.
func (s *ArcSet) Len() int { return len(s.ivs) }

// Measure returns the total angular measure of the set, in [0, 2π]. It is a
// pure read of the eagerly maintained memo: cost O(1), no mutation.
func (s *ArcSet) Measure() float64 {
	if s.measure > TwoPi {
		return TwoPi
	}
	return s.measure
}

// recalcMeasure refreshes the measure memo after a mutation. Summation runs
// over the intervals in order, matching what a direct recomputation would
// produce bit-for-bit.
func (s *ArcSet) recalcMeasure() {
	var m float64
	for _, iv := range s.ivs {
		m += iv.hi - iv.lo
	}
	s.measure = m
}

// Contains reports whether the angle belongs to the set.
func (s *ArcSet) Contains(angle float64) bool {
	angle = NormalizeAngle(angle)
	for _, iv := range s.ivs {
		if angle >= iv.lo && angle <= iv.hi {
			return true
		}
	}
	return false
}

// Add unions the arc into the set.
func (s *ArcSet) Add(a Arc) {
	ivs, n := a.splitInto()
	for _, iv := range ivs[:n] {
		s.addInterval(iv)
	}
}

// AddSet unions every interval of other into the set.
func (s *ArcSet) AddSet(other *ArcSet) {
	if other == nil || other == s {
		// Union with itself is a no-op; distinct sets never share interval
		// storage, so other's intervals can be merged in directly.
		return
	}
	for _, iv := range other.ivs {
		s.addInterval(iv)
	}
}

// Gain returns the measure that Add(a) would contribute, without mutating
// the set: Measure(s ∪ a) − Measure(s).
func (s *ArcSet) Gain(a Arc) float64 {
	ivs, n := a.splitInto()
	var g float64
	for _, iv := range ivs[:n] {
		g += s.intervalGain(iv)
	}
	return g
}

// GainArcs returns the total measure of the given non-wrapping arcs that the
// set does not cover. The arcs must be non-wrapping (Start+Width ≤ 2π) and
// mutually disjoint — e.g. the output of AppendUncovered — so nothing is
// double counted. A nil receiver is an empty set: the result is the summed
// width of the arcs.
func (s *ArcSet) GainArcs(arcs []Arc) float64 {
	var g float64
	if s == nil || len(s.ivs) == 0 {
		for _, a := range arcs {
			g += a.Width
		}
		return g
	}
	for _, a := range arcs {
		g += s.intervalGain(interval{a.Start, a.Start + a.Width})
	}
	return g
}

// GainSet returns the measure that AddSet(other) would contribute, without
// mutating the set. Overlap between the intervals of other itself is not
// double counted because other's intervals are disjoint by construction.
func (s *ArcSet) GainSet(other *ArcSet) float64 {
	if other == nil {
		return 0
	}
	var g float64
	for _, iv := range other.ivs {
		g += s.intervalGain(iv)
	}
	// Intervals of other are mutually disjoint but may jointly overlap s in
	// ways that interact only through s, which intervalGain already accounts
	// for; overlaps between two intervals of other cannot exist.
	return g
}

// intervalGain computes the uncovered measure of iv with respect to s.
func (s *ArcSet) intervalGain(iv interval) float64 {
	gain := iv.hi - iv.lo
	for _, e := range s.ivs {
		if e.lo >= iv.hi {
			break
		}
		if e.hi <= iv.lo {
			continue
		}
		lo := math.Max(e.lo, iv.lo)
		hi := math.Min(e.hi, iv.hi)
		if hi > lo {
			gain -= hi - lo
		}
	}
	if gain < 0 {
		gain = 0
	}
	return gain
}

// addInterval merges a non-wrapping interval into the sorted disjoint list.
func (s *ArcSet) addInterval(iv interval) {
	if iv.hi <= iv.lo {
		return
	}
	// Locate insertion point of iv.lo.
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].hi >= iv.lo })
	j := i
	lo, hi := iv.lo, iv.hi
	for j < len(s.ivs) && s.ivs[j].lo <= hi {
		if s.ivs[j].lo < lo {
			lo = s.ivs[j].lo
		}
		if s.ivs[j].hi > hi {
			hi = s.ivs[j].hi
		}
		j++
	}
	if i == j {
		// No overlap: insert at i.
		s.ivs = append(s.ivs, interval{})
		copy(s.ivs[i+1:], s.ivs[i:])
		s.ivs[i] = interval{lo, hi}
		s.recalcMeasure()
		return
	}
	s.ivs[i] = interval{lo, hi}
	s.ivs = append(s.ivs[:i+1], s.ivs[j:]...)
	s.recalcMeasure()
}

// Uncovered returns the parts of arc a that the set does not cover, as
// non-wrapping arcs sorted by start angle. Measures obey
// Σ Uncovered(a) = Gain(a).
func (s *ArcSet) Uncovered(a Arc) []Arc {
	out := s.AppendUncovered(a, nil)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// AppendUncovered appends the parts of arc a the set does not cover to dst
// and returns the extended slice. The appended arcs are non-wrapping and
// mutually disjoint; unlike Uncovered they are not sorted across a seam
// split. A nil receiver is an empty set: a's non-wrapping pieces are
// appended unchanged. This is the allocation-free workhorse of the
// scenario-delta evaluator.
func (s *ArcSet) AppendUncovered(a Arc, dst []Arc) []Arc {
	avs, n := a.splitInto()
	if s == nil || len(s.ivs) == 0 {
		for _, iv := range avs[:n] {
			dst = append(dst, Arc{Start: iv.lo, Width: iv.hi - iv.lo})
		}
		return dst
	}
	for _, iv := range avs[:n] {
		lo := iv.lo
		for _, e := range s.ivs {
			if e.lo >= iv.hi {
				break
			}
			if e.hi <= lo {
				continue
			}
			if e.lo > lo {
				dst = append(dst, Arc{Start: lo, Width: math.Min(e.lo, iv.hi) - lo})
			}
			if e.hi > lo {
				lo = e.hi
			}
			if lo >= iv.hi {
				break
			}
		}
		if lo < iv.hi {
			dst = append(dst, Arc{Start: lo, Width: iv.hi - lo})
		}
	}
	return dst
}

// Overlap returns the measure of the intersection of the set with arc a:
// a.Width − Gain(a).
func (s *ArcSet) Overlap(a Arc) float64 {
	ivs, n := a.splitInto()
	var g float64
	for _, iv := range ivs[:n] {
		g += (iv.hi - iv.lo) - s.intervalGain(iv)
	}
	return g
}

// Arcs returns the maximal disjoint intervals of the set as arcs, sorted by
// start angle. The returned slice is freshly allocated.
func (s *ArcSet) Arcs() []Arc {
	out := make([]Arc, 0, len(s.ivs))
	for _, iv := range s.ivs {
		out = append(out, Arc{Start: iv.lo, Width: iv.hi - iv.lo})
	}
	return out
}

// String implements fmt.Stringer.
func (s *ArcSet) String() string {
	return fmt.Sprintf("ArcSet{n=%d, measure=%.1f°}", len(s.ivs), Degrees(s.Measure()))
}
