package geo

import (
	"math"
	"testing"
)

func TestSectorContains(t *testing.T) {
	// Camera at origin, looking east, 60° FOV, 100 m range.
	s := NewSector(Vec{}, 100, 0, Radians(60))
	tests := []struct {
		name string
		p    Vec
		want bool
	}{
		{"straight ahead", Vec{50, 0}, true},
		{"at range edge", Vec{100, 0}, true},
		{"beyond range", Vec{101, 0}, false},
		{"within half fov", Vec{50, 50 * math.Tan(Radians(29))}, true},
		{"outside half fov", Vec{50, 50 * math.Tan(Radians(31))}, false},
		{"behind", Vec{-50, 0}, false},
		{"apex", Vec{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.Contains(tt.p); got != tt.want {
				t.Fatalf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestSectorContainsWrappingDirection(t *testing.T) {
	// Looking east with direction expressed as ~2π-ε; points slightly below
	// the X axis must still be inside.
	s := NewSector(Vec{}, 100, TwoPi-0.01, Radians(90))
	if !s.Contains(Vec{50, -10}) || !s.Contains(Vec{50, 10}) {
		t.Fatal("wrapping direction containment failed")
	}
}

func TestSectorZeroRadius(t *testing.T) {
	s := NewSector(Vec{1, 1}, 0, 0, Radians(60))
	if s.Contains(Vec{1, 1}) {
		t.Fatal("zero-radius sector should contain nothing")
	}
}

func TestNewSectorClamps(t *testing.T) {
	s := NewSector(Vec{}, -5, -math.Pi, 10)
	if s.Radius != 0 {
		t.Fatalf("radius = %v, want 0", s.Radius)
	}
	if !almostEqual(s.Dir, math.Pi, eps) {
		t.Fatalf("dir = %v, want π", s.Dir)
	}
	if !almostEqual(s.FOV, TwoPi, eps) {
		t.Fatalf("fov = %v, want 2π", s.FOV)
	}
}

func TestSectorArea(t *testing.T) {
	s := NewSector(Vec{}, 10, 0, math.Pi) // half disc
	want := math.Pi * 100 / 2
	if !almostEqual(s.Area(), want, 1e-9) {
		t.Fatalf("Area = %v, want %v", s.Area(), want)
	}
}

func TestSectorBounds(t *testing.T) {
	s := NewSector(Vec{10, 20}, 5, 0, 1)
	b := s.Bounds()
	if b.Min != (Vec{5, 15}) || b.Max != (Vec{15, 25}) {
		t.Fatalf("Bounds = %+v", b)
	}
}

func TestSectorViewAngleFrom(t *testing.T) {
	s := NewSector(Vec{10, 0}, 100, math.Pi, Radians(60))
	// PoI at origin: direction PoI→camera is east (angle 0).
	if got := s.ViewAngleFrom(Vec{}); !almostEqual(got, 0, eps) {
		t.Fatalf("ViewAngleFrom = %v, want 0", got)
	}
	// PoI directly above camera: direction PoI→camera is south (3π/2).
	if got := s.ViewAngleFrom(Vec{10, 10}); !almostEqual(got, 3*math.Pi/2, eps) {
		t.Fatalf("ViewAngleFrom = %v, want 3π/2", got)
	}
}

func TestSectorFullCircleFOV(t *testing.T) {
	s := NewSector(Vec{}, 10, 0, TwoPi)
	for _, p := range []Vec{{5, 0}, {-5, 0}, {0, 5}, {0, -5}} {
		if !s.Contains(p) {
			t.Fatalf("360° sector should contain %v", p)
		}
	}
}
