package geo

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasics(t *testing.T) {
	tests := []struct {
		name string
		got  Vec
		want Vec
	}{
		{"add", Vec{1, 2}.Add(Vec{3, -1}), Vec{4, 1}},
		{"sub", Vec{1, 2}.Sub(Vec{3, -1}), Vec{-2, 3}},
		{"scale", Vec{1, -2}.Scale(2.5), Vec{2.5, -5}},
		{"unit zero", Vec{}.Unit(), Vec{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Fatalf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVecNormDist(t *testing.T) {
	if got := (Vec{3, 4}).Norm(); !almostEqual(got, 5, eps) {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := (Vec{1, 1}).Dist(Vec{4, 5}); !almostEqual(got, 5, eps) {
		t.Fatalf("Dist = %v, want 5", got)
	}
}

func TestVecDotCross(t *testing.T) {
	v, w := Vec{1, 2}, Vec{3, 4}
	if got := v.Dot(w); got != 11 {
		t.Fatalf("Dot = %v, want 11", got)
	}
	if got := v.Cross(w); got != -2 {
		t.Fatalf("Cross = %v, want -2", got)
	}
}

func TestVecAngle(t *testing.T) {
	tests := []struct {
		v    Vec
		want float64
	}{
		{Vec{1, 0}, 0},
		{Vec{0, 1}, math.Pi / 2},
		{Vec{-1, 0}, math.Pi},
		{Vec{0, -1}, 3 * math.Pi / 2},
		{Vec{}, 0},
	}
	for _, tt := range tests {
		if got := tt.v.Angle(); !almostEqual(got, tt.want, eps) {
			t.Errorf("Angle(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

func TestFromAngleRoundTrip(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		got := FromAngle(a).Angle()
		return AngleDiff(got, a) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct {
		in   float64
		want float64
	}{
		{0, 0},
		{TwoPi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * TwoPi, 0},
		{TwoPi + 1, 1},
		{-TwoPi - 1, TwoPi - 1},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNormalizeAngleRangeProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		n := NormalizeAngle(a)
		return n >= 0 && n < TwoPi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{0, math.Pi, math.Pi},
		{0.1, TwoPi - 0.1, 0.2},
		{math.Pi / 2, 3 * math.Pi / 2, math.Pi},
		{-0.1, 0.1, 0.2},
	}
	for _, tt := range tests {
		if got := AngleDiff(tt.a, tt.b); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("AngleDiff(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAngleDiffSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		d1, d2 := AngleDiff(a, b), AngleDiff(b, a)
		return almostEqual(d1, d2, 1e-9) && d1 >= 0 && d1 <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAngleBetween(t *testing.T) {
	tests := []struct {
		v, w Vec
		want float64
	}{
		{Vec{1, 0}, Vec{0, 1}, math.Pi / 2},
		{Vec{1, 0}, Vec{-1, 0}, math.Pi},
		{Vec{1, 1}, Vec{2, 2}, 0},
		{Vec{}, Vec{1, 0}, 0},
	}
	for _, tt := range tests {
		if got := AngleBetween(tt.v, tt.w); !almostEqual(got, tt.want, 1e-7) {
			t.Errorf("AngleBetween(%v, %v) = %v, want %v", tt.v, tt.w, got, tt.want)
		}
	}
}

func TestDegreesRadians(t *testing.T) {
	if got := Degrees(math.Pi); !almostEqual(got, 180, eps) {
		t.Fatalf("Degrees(π) = %v", got)
	}
	if got := Radians(90); !almostEqual(got, math.Pi/2, eps) {
		t.Fatalf("Radians(90) = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Vec{4, 5}, Vec{1, 2})
	if r.Min != (Vec{1, 2}) || r.Max != (Vec{4, 5}) {
		t.Fatalf("NewRect normalization failed: %+v", r)
	}
	if r.Width() != 3 || r.Height() != 3 || r.Area() != 9 {
		t.Fatalf("rect dims wrong: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if !r.Contains(Vec{1, 2}) || !r.Contains(Vec{2.5, 3}) || r.Contains(Vec{0, 0}) {
		t.Fatal("Contains wrong")
	}
	if got := r.Clamp(Vec{-10, 10}); got != (Vec{1, 5}) {
		t.Fatalf("Clamp = %v, want (1,5)", got)
	}
	sq := Square(10)
	if sq.Area() != 100 || !sq.Contains(Vec{5, 5}) {
		t.Fatal("Square wrong")
	}
}
