// Package geo provides the 2-D geometric primitives used by the photo
// coverage model: planar vectors, angle arithmetic on the unit circle,
// circular arcs with set-union semantics, and camera view sectors.
//
// Angles follow the paper's convention: they are expressed in radians,
// angle 0 points east (positive X) and angles grow counter-clockwise in the
// standard mathematical sense. All exported angle values are normalized to
// [0, 2π).
package geo

import (
	"fmt"
	"math"
)

// TwoPi is the full circle in radians.
const TwoPi = 2 * math.Pi

// Vec is a point or direction in the plane. Coordinates are metres when the
// vector denotes a location.
type Vec struct {
	X float64
	Y float64
}

// FromAngle returns the unit vector pointing at the given angle.
func FromAngle(rad float64) Vec {
	return Vec{X: math.Cos(rad), Y: math.Sin(rad)}
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{X: v.X + w.X, Y: v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{X: v.X - w.X, Y: v.Y - w.Y} }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{X: v.X * k, Y: v.Y * k} }

// Dot returns the dot product v · w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar cross product v × w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Norm() }

// Angle returns the direction of v as an angle in [0, 2π). The zero vector
// reports angle 0.
func (v Vec) Angle() float64 {
	if v.X == 0 && v.Y == 0 {
		return 0
	}
	return NormalizeAngle(math.Atan2(v.Y, v.X))
}

// Unit returns the unit vector in the direction of v, or the zero vector if
// v has zero length.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n == 0 {
		return Vec{}
	}
	return v.Scale(1 / n)
}

// IsZero reports whether both coordinates are exactly zero.
func (v Vec) IsZero() bool { return v.X == 0 && v.Y == 0 }

// String implements fmt.Stringer.
func (v Vec) String() string { return fmt.Sprintf("(%.2f, %.2f)", v.X, v.Y) }

// NormalizeAngle maps an arbitrary angle to [0, 2π).
func NormalizeAngle(rad float64) float64 {
	rad = math.Mod(rad, TwoPi)
	if rad < 0 {
		rad += TwoPi
	}
	// math.Mod can return TwoPi-epsilon values that round to TwoPi; keep the
	// invariant strict.
	if rad >= TwoPi {
		rad -= TwoPi
	}
	return rad
}

// AngleDiff returns the smallest absolute difference between two angles,
// a value in [0, π].
func AngleDiff(a, b float64) float64 {
	d := math.Abs(NormalizeAngle(a) - NormalizeAngle(b))
	if d > math.Pi {
		d = TwoPi - d
	}
	return d
}

// AngleBetween returns the unsigned angle between two vectors in [0, π].
// It is 0 when either vector is zero.
func AngleBetween(v, w Vec) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	// Clamp against floating point drift before acos.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// Rect is an axis-aligned rectangle, used to describe the deployment region.
type Rect struct {
	Min Vec
	Max Vec
}

// NewRect returns the rectangle spanning the two corner points regardless of
// their order.
func NewRect(a, b Vec) Rect {
	return Rect{
		Min: Vec{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)},
		Max: Vec{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)},
	}
}

// Square returns a square region with the given side anchored at the origin.
func Square(side float64) Rect {
	return Rect{Max: Vec{X: side, Y: side}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Vec) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Vec) Vec {
	return Vec{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}
