package geo

import (
	"math"
	"math/rand"
	"testing"
)

// randSet builds a random arc set with up to n arcs.
func randSet(rng *rand.Rand, n int) *ArcSet {
	s := &ArcSet{}
	for i := rng.Intn(n + 1); i > 0; i-- {
		s.Add(NewArc(rng.Float64()*TwoPi, rng.Float64()*math.Pi))
	}
	return s
}

// TestAppendUncoveredMatchesUncovered checks the allocation-free variant
// against the sorted reference on random inputs, including reuse of dst.
func TestAppendUncoveredMatchesUncovered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dst := make([]Arc, 0, 16)
	for i := 0; i < 500; i++ {
		s := randSet(rng, 6)
		a := NewArc(rng.Float64()*TwoPi, rng.Float64()*TwoPi)
		want := s.Uncovered(a)
		dst = s.AppendUncovered(a, dst[:0])
		if len(dst) != len(want) {
			t.Fatalf("iter %d: %d pieces, want %d", i, len(dst), len(want))
		}
		var sum, wantSum float64
		for _, p := range dst {
			sum += p.Width
			if p.Start+p.Width > TwoPi+1e-12 {
				t.Fatalf("iter %d: wrapping piece %v", i, p)
			}
		}
		for _, p := range want {
			wantSum += p.Width
		}
		if math.Abs(sum-wantSum) > 1e-9 || math.Abs(sum-s.Gain(a)) > 1e-9 {
			t.Fatalf("iter %d: pieces measure %v, want %v (Gain %v)", i, sum, wantSum, s.Gain(a))
		}
	}
}

// TestAppendUncoveredNilReceiver: a nil set covers nothing, so the arc's
// non-wrapping decomposition comes back unchanged.
func TestAppendUncoveredNilReceiver(t *testing.T) {
	var s *ArcSet
	a := NewArc(Radians(300), Radians(120)) // wraps the seam
	got := s.AppendUncovered(a, nil)
	if len(got) != 2 {
		t.Fatalf("pieces = %d, want 2", len(got))
	}
	if tot := got[0].Width + got[1].Width; math.Abs(tot-a.Width) > 1e-12 {
		t.Fatalf("total width %v, want %v", tot, a.Width)
	}
}

// TestGainArcsMatchesGainSet: another set's Arcs() are disjoint non-wrapping
// arcs, so GainArcs over them must equal GainSet of that set.
func TestGainArcsMatchesGainSet(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		s, o := randSet(rng, 6), randSet(rng, 6)
		got, want := s.GainArcs(o.Arcs()), s.GainSet(o)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("iter %d: GainArcs = %v, GainSet = %v", i, got, want)
		}
	}
	// Nil receiver: everything is uncovered.
	var nilSet *ArcSet
	o := NewArcSet(NewArc(1, 0.5), NewArc(3, 0.25))
	if got := nilSet.GainArcs(o.Arcs()); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("nil GainArcs = %v, want 0.75", got)
	}
}

// TestMeasureMemo verifies the eagerly maintained measure equals a direct
// interval sum after every kind of mutation, and survives Clone/CopyFrom.
func TestMeasureMemo(t *testing.T) {
	directMeasure := func(s *ArcSet) float64 {
		var m float64
		for _, a := range s.Arcs() {
			m += a.Width
		}
		if m > TwoPi {
			m = TwoPi
		}
		return m
	}
	rng := rand.New(rand.NewSource(13))
	s := &ArcSet{}
	for i := 0; i < 300; i++ {
		switch rng.Intn(10) {
		case 0:
			s.Reset()
		case 1:
			s.AddSet(randSet(rng, 4))
		case 2:
			c := s.Clone()
			if c.Measure() != s.Measure() {
				t.Fatal("Clone changed measure")
			}
			s = c
		case 3:
			c := &ArcSet{}
			c.Add(NewArc(0, 1)) // pre-existing content must be replaced
			c.CopyFrom(s)
			if c.Measure() != s.Measure() {
				t.Fatal("CopyFrom changed measure")
			}
			s = c
		default:
			s.Add(NewArc(rng.Float64()*TwoPi, rng.Float64()*math.Pi))
		}
		if got, want := s.Measure(), directMeasure(s); got != want {
			t.Fatalf("iter %d: memoized Measure = %v, direct = %v", i, got, want)
		}
	}
}
