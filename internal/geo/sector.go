package geo

import "fmt"

// Sector is the coverage area of a photo: a circular sector with its apex at
// the camera location, opening symmetric around the camera orientation.
type Sector struct {
	// Apex is the camera location.
	Apex Vec
	// Radius is the coverage range r of the camera in metres.
	Radius float64
	// Dir is the camera orientation d as an angle in [0, 2π).
	Dir float64
	// FOV is the field-of-view φ in radians, in [0, 2π].
	FOV float64
}

// NewSector builds a sector with normalized direction and clamped FOV.
func NewSector(apex Vec, radius, dir, fov float64) Sector {
	if radius < 0 {
		radius = 0
	}
	if fov < 0 {
		fov = 0
	}
	if fov > TwoPi {
		fov = TwoPi
	}
	return Sector{Apex: apex, Radius: radius, Dir: NormalizeAngle(dir), FOV: fov}
}

// Contains reports whether point p lies inside the sector (inclusive of the
// boundary). The apex itself is always contained when the radius is
// positive.
func (s Sector) Contains(p Vec) bool {
	d := p.Sub(s.Apex)
	dist := d.Norm()
	if dist > s.Radius {
		return false
	}
	if dist == 0 {
		return s.Radius > 0
	}
	return AngleDiff(d.Angle(), s.Dir) <= s.FOV/2
}

// Area returns the area of the sector in square metres.
func (s Sector) Area() float64 {
	return 0.5 * s.FOV * s.Radius * s.Radius
}

// Bounds returns the axis-aligned bounding box of the sector's enclosing
// circle. It is a conservative bound used by spatial indexes.
func (s Sector) Bounds() Rect {
	r := Vec{X: s.Radius, Y: s.Radius}
	return Rect{Min: s.Apex.Sub(r), Max: s.Apex.Add(r)}
}

// ViewAngleFrom returns the direction from p toward the apex (the PoI→camera
// vector direction used by aspect coverage), as an angle in [0, 2π).
func (s Sector) ViewAngleFrom(p Vec) float64 {
	return s.Apex.Sub(p).Angle()
}

// String implements fmt.Stringer.
func (s Sector) String() string {
	return fmt.Sprintf("Sector{apex=%v r=%.1f dir=%.1f° fov=%.1f°}",
		s.Apex, s.Radius, Degrees(s.Dir), Degrees(s.FOV))
}
