package geo

// FuzzArcSet drives random Add/AddSet/Gain/AppendUncovered sequences against
// an ArcSet and checks the structure's invariants after every mutation:
//
//   - the interval list stays sorted, disjoint, and non-adjacent, with every
//     interval inside [0, 2π];
//   - the memoized measure equals a fresh in-order recomputation bit-for-bit
//     (the property that makes Measure a pure concurrent-safe read);
//   - Gain(a) equals the measure delta that actually adding a produces, and
//     the pieces AppendUncovered emits are disjoint, uncovered, inside a,
//     and sum to Gain(a);
//   - the final set agrees with a dense-bitmap oracle painted arc by arc.

import (
	"math"
	"testing"
)

// fuzzBins is the oracle resolution. Each painted arc can disagree with the
// exact set by at most one bin at each of its ≤ 4 boundaries.
const fuzzBins = 2048

func FuzzArcSet(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x40, 0x00})
	// A wrap-around add, a full-circle clamp, an AddSet, and query ops.
	f.Add([]byte{
		0x00, 0xf0, 0x00, 0x20, 0x00, // Add near the seam
		0x00, 0x00, 0xff, 0xff, 0xff, // Add a clamped (full) width
		0x01, 0x40, 0x00, 0x10, 0x00, // AddSet
		0x02, 0x80, 0x00, 0x08, 0x00, // Gain consistency probe
		0x03, 0xc0, 0x00, 0x30, 0x00, // AppendUncovered probe
	})
	f.Add([]byte{
		0x00, 0x10, 0x00, 0x00, 0x01, // sliver
		0x00, 0x10, 0x01, 0x00, 0x01, // adjacent sliver (merge path)
		0x03, 0x00, 0x00, 0xff, 0x7f,
		0x01, 0x55, 0x55, 0x22, 0x22,
		0x02, 0xaa, 0xaa, 0x11, 0x11,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		var s ArcSet
		bitmap := make([]bool, fuzzBins)
		painted := 0 // arcs painted into the oracle
		var prev Arc

		paint := func(a Arc) {
			painted++
			for i := 0; i < fuzzBins; i++ {
				if !bitmap[i] && a.Contains((float64(i)+0.5)/fuzzBins*TwoPi) {
					bitmap[i] = true
				}
			}
		}

		for off := 0; off+5 <= len(data); off += 5 {
			op := data[off]
			start := float64(uint16(data[off+1])<<8|uint16(data[off+2])) / 65536 * TwoPi
			// Widths range up to ~2.5π to exercise the clamp path.
			width := float64(uint16(data[off+3])<<8|uint16(data[off+4])) / 65536 * 2.5 * math.Pi
			a := NewArc(start, width)

			switch op % 4 {
			case 0: // Add
				s.Add(a)
				paint(a)
			case 1: // AddSet built from this arc and the previous one
				s.AddSet(NewArcSet(prev, a))
				paint(prev)
				paint(a)
			case 2: // Gain must equal the measure delta of really adding
				g := s.Gain(a)
				if g < -1e-12 || g > a.Width+1e-12 {
					t.Fatalf("Gain(%v) = %v out of [0, width]", a, g)
				}
				c := s.Clone()
				c.Add(a)
				if d := c.Measure() - s.Measure(); math.Abs(d-g) > 1e-9 {
					t.Fatalf("Gain(%v) = %v but measure delta = %v", a, g, d)
				}
			case 3: // AppendUncovered: disjoint pieces inside a, summing to Gain
				pieces := s.AppendUncovered(a, nil)
				avs, nav := a.splitInto()
				var sum float64
				for pi, p := range pieces {
					if p.Width <= 0 {
						t.Fatalf("AppendUncovered(%v): empty piece %v", a, p)
					}
					inside := false
					for _, iv := range avs[:nav] {
						if iv.lo <= p.Start && p.Start+p.Width <= iv.hi {
							inside = true
							break
						}
					}
					if !inside {
						t.Fatalf("AppendUncovered(%v): piece %v outside the arc", a, p)
					}
					if ov := s.Overlap(p); ov > 1e-9 {
						t.Fatalf("AppendUncovered(%v): piece %v overlaps the set by %v", a, p, ov)
					}
					for _, q := range pieces[pi+1:] {
						if p.Start < q.Start+q.Width && q.Start < p.Start+p.Width {
							t.Fatalf("AppendUncovered(%v): overlapping pieces %v, %v", a, p, q)
						}
					}
					sum += p.Width
				}
				if g := s.Gain(a); math.Abs(sum-g) > 1e-9 {
					t.Fatalf("AppendUncovered(%v): pieces sum %v, Gain %v", a, sum, g)
				}
			}
			prev = a
			checkArcSetInvariants(t, &s)
		}

		// Dense-bitmap oracle: measure within boundary-resolution tolerance.
		binw := TwoPi / fuzzBins
		var oracle float64
		for _, covered := range bitmap {
			if covered {
				oracle += binw
			}
		}
		tol := float64(4*painted+4) * binw
		if math.Abs(oracle-s.Measure()) > tol {
			t.Fatalf("measure %v vs bitmap oracle %v (tol %v, %d arcs painted)",
				s.Measure(), oracle, tol, painted)
		}
	})
}

// checkArcSetInvariants asserts the representation invariants of an ArcSet.
func checkArcSetInvariants(t *testing.T, s *ArcSet) {
	t.Helper()
	for i, iv := range s.ivs {
		if !(iv.lo < iv.hi) || iv.lo < 0 || iv.hi > TwoPi {
			t.Fatalf("interval %d out of order or range: [%v, %v]", i, iv.lo, iv.hi)
		}
		if i > 0 && !(s.ivs[i-1].hi < iv.lo) {
			t.Fatalf("intervals %d/%d not disjoint/sorted: [%v,%v] then [%v,%v]",
				i-1, i, s.ivs[i-1].lo, s.ivs[i-1].hi, iv.lo, iv.hi)
		}
	}
	var m float64
	for _, iv := range s.ivs {
		m += iv.hi - iv.lo
	}
	if m != s.measure {
		t.Fatalf("memoized measure %v != recomputed %v", s.measure, m)
	}
}
