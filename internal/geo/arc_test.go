package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewArcClamps(t *testing.T) {
	tests := []struct {
		name       string
		start, wid float64
		wantStart  float64
		wantWidth  float64
	}{
		{"negative width", 1, -2, 1, 0},
		{"over full", 0, 10, 0, TwoPi},
		{"wrap start", -math.Pi / 2, 1, 3 * math.Pi / 2, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := NewArc(tt.start, tt.wid)
			if !almostEqual(a.Start, tt.wantStart, eps) || !almostEqual(a.Width, tt.wantWidth, eps) {
				t.Fatalf("NewArc = %+v, want start=%v width=%v", a, tt.wantStart, tt.wantWidth)
			}
		})
	}
}

func TestArcAround(t *testing.T) {
	a := ArcAround(0, Radians(30))
	if !a.Contains(Radians(29)) || !a.Contains(Radians(-29)) {
		t.Fatal("arc around 0 should contain ±29°")
	}
	if a.Contains(Radians(31)) || a.Contains(Radians(-31)) {
		t.Fatal("arc around 0 should not contain ±31°")
	}
	if !almostEqual(a.Width, Radians(60), eps) {
		t.Fatalf("width = %v, want 60°", Degrees(a.Width))
	}
}

func TestArcContains(t *testing.T) {
	tests := []struct {
		name  string
		arc   Arc
		angle float64
		want  bool
	}{
		{"inside", NewArc(0, 1), 0.5, true},
		{"start edge", NewArc(0, 1), 0, true},
		{"end edge", NewArc(0, 1), 1, true},
		{"outside", NewArc(0, 1), 1.5, false},
		{"wrapping inside low", NewArc(TwoPi-0.5, 1), 0.3, true},
		{"wrapping inside high", NewArc(TwoPi-0.5, 1), TwoPi - 0.3, true},
		{"wrapping outside", NewArc(TwoPi-0.5, 1), math.Pi, false},
		{"full", NewArc(1, TwoPi), 4, true},
		{"empty", NewArc(1, 0), 1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.arc.Contains(tt.angle); got != tt.want {
				t.Fatalf("Contains(%v) = %v, want %v", tt.angle, got, tt.want)
			}
		})
	}
}

func TestArcSetEmpty(t *testing.T) {
	var s ArcSet
	if !s.IsEmpty() || s.Measure() != 0 || s.Contains(1) || s.Len() != 0 {
		t.Fatal("zero ArcSet should be empty")
	}
}

func TestArcSetSingle(t *testing.T) {
	s := NewArcSet(NewArc(1, 0.5))
	if !almostEqual(s.Measure(), 0.5, eps) {
		t.Fatalf("measure = %v", s.Measure())
	}
	if !s.Contains(1.25) || s.Contains(2) {
		t.Fatal("Contains wrong")
	}
}

func TestArcSetMergeOverlapping(t *testing.T) {
	s := NewArcSet(NewArc(0, 1), NewArc(0.5, 1))
	if s.Len() != 1 {
		t.Fatalf("expected 1 merged interval, got %d", s.Len())
	}
	if !almostEqual(s.Measure(), 1.5, eps) {
		t.Fatalf("measure = %v, want 1.5", s.Measure())
	}
}

func TestArcSetMergeTouching(t *testing.T) {
	s := NewArcSet(NewArc(0, 1), NewArc(1, 1))
	if s.Len() != 1 || !almostEqual(s.Measure(), 2, eps) {
		t.Fatalf("touching arcs should merge: len=%d measure=%v", s.Len(), s.Measure())
	}
}

func TestArcSetDisjoint(t *testing.T) {
	s := NewArcSet(NewArc(0, 0.5), NewArc(2, 0.5), NewArc(4, 0.5))
	if s.Len() != 3 || !almostEqual(s.Measure(), 1.5, eps) {
		t.Fatalf("len=%d measure=%v", s.Len(), s.Measure())
	}
}

func TestArcSetWrappingArc(t *testing.T) {
	s := NewArcSet(ArcAround(0, 0.5)) // [-0.5, 0.5] wraps
	if !almostEqual(s.Measure(), 1, eps) {
		t.Fatalf("measure = %v, want 1", s.Measure())
	}
	if !s.Contains(0.4) || !s.Contains(TwoPi-0.4) || s.Contains(math.Pi) {
		t.Fatal("wrapping containment wrong")
	}
}

func TestArcSetFullCircle(t *testing.T) {
	s := NewArcSet(NewArc(0, TwoPi))
	if !almostEqual(s.Measure(), TwoPi, eps) {
		t.Fatalf("measure = %v", s.Measure())
	}
	s2 := NewArcSet(NewArc(0, math.Pi+0.1), NewArc(math.Pi, math.Pi+0.1))
	if !almostEqual(s2.Measure(), TwoPi, 1e-9) {
		t.Fatalf("two half circles measure = %v, want 2π", s2.Measure())
	}
}

func TestArcSetGain(t *testing.T) {
	s := NewArcSet(NewArc(0, 1))
	tests := []struct {
		name string
		arc  Arc
		want float64
	}{
		{"fully covered", NewArc(0.2, 0.5), 0},
		{"fully new", NewArc(2, 0.5), 0.5},
		{"half overlap", NewArc(0.5, 1), 0.5},
		{"wrap partially new", ArcAround(0, 0.5), 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.Gain(tt.arc); !almostEqual(got, tt.want, 1e-9) {
				t.Fatalf("Gain = %v, want %v", got, tt.want)
			}
			// Gain must equal measure delta after actually adding.
			c := s.Clone()
			before := c.Measure()
			c.Add(tt.arc)
			if delta := c.Measure() - before; !almostEqual(delta, tt.want, 1e-9) {
				t.Fatalf("actual delta %v != gain %v", delta, tt.want)
			}
		})
	}
}

func TestArcSetAddSetAndGainSet(t *testing.T) {
	a := NewArcSet(NewArc(0, 1), NewArc(3, 1))
	b := NewArcSet(NewArc(0.5, 1), NewArc(5, 0.5))
	wantGain := 0.5 + 0.5 // [1,1.5] new plus [5,5.5] new
	if got := a.GainSet(b); !almostEqual(got, wantGain, 1e-9) {
		t.Fatalf("GainSet = %v, want %v", got, wantGain)
	}
	before := a.Measure()
	a.AddSet(b)
	if delta := a.Measure() - before; !almostEqual(delta, wantGain, 1e-9) {
		t.Fatalf("AddSet delta = %v, want %v", delta, wantGain)
	}
}

func TestArcSetAddSetSelf(t *testing.T) {
	a := NewArcSet(NewArc(0, 1), NewArc(3, 1))
	before := a.Measure()
	a.AddSet(a)
	if !almostEqual(a.Measure(), before, eps) {
		t.Fatalf("self AddSet changed measure: %v -> %v", before, a.Measure())
	}
}

func TestArcSetClone(t *testing.T) {
	a := NewArcSet(NewArc(0, 1))
	b := a.Clone()
	b.Add(NewArc(3, 1))
	if !almostEqual(a.Measure(), 1, eps) {
		t.Fatal("clone mutation leaked into original")
	}
	if !almostEqual(b.Measure(), 2, eps) {
		t.Fatal("clone did not take the addition")
	}
}

func TestArcSetReset(t *testing.T) {
	a := NewArcSet(NewArc(0, 1))
	a.Reset()
	if !a.IsEmpty() {
		t.Fatal("Reset did not empty the set")
	}
}

func TestArcSetArcs(t *testing.T) {
	s := NewArcSet(NewArc(2, 0.5), NewArc(0, 0.5))
	arcs := s.Arcs()
	if len(arcs) != 2 {
		t.Fatalf("got %d arcs", len(arcs))
	}
	if !almostEqual(arcs[0].Start, 0, eps) || !almostEqual(arcs[1].Start, 2, eps) {
		t.Fatalf("arcs not sorted: %v", arcs)
	}
}

// referenceMeasure computes the union measure by dense sampling, as an
// independent oracle for the interval merging code.
func referenceMeasure(arcs []Arc) float64 {
	const n = 20000
	covered := 0
	for i := 0; i < n; i++ {
		angle := TwoPi * (float64(i) + 0.5) / n
		for _, a := range arcs {
			if a.Contains(angle) {
				covered++
				break
			}
		}
	}
	return TwoPi * float64(covered) / n
}

func TestArcSetMeasureAgainstSamplingOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		arcs := make([]Arc, 0, n)
		for i := 0; i < n; i++ {
			arcs = append(arcs, NewArc(rng.Float64()*TwoPi, rng.Float64()*math.Pi))
		}
		s := NewArcSet(arcs...)
		want := referenceMeasure(arcs)
		if math.Abs(s.Measure()-want) > 0.01 {
			t.Fatalf("trial %d: measure %v vs oracle %v (arcs %v)", trial, s.Measure(), want, arcs)
		}
	}
}

func TestArcSetProperties(t *testing.T) {
	type arcSpec struct {
		Start, Width float64
	}
	sanitize := func(specs []arcSpec) []Arc {
		arcs := make([]Arc, 0, len(specs))
		for _, sp := range specs {
			if math.IsNaN(sp.Start) || math.IsInf(sp.Start, 0) ||
				math.IsNaN(sp.Width) || math.IsInf(sp.Width, 0) {
				continue
			}
			arcs = append(arcs, NewArc(sp.Start, math.Mod(math.Abs(sp.Width), TwoPi)))
		}
		return arcs
	}

	t.Run("measure bounded and monotone", func(t *testing.T) {
		f := func(specs []arcSpec) bool {
			arcs := sanitize(specs)
			s := &ArcSet{}
			prev := 0.0
			for _, a := range arcs {
				s.Add(a)
				m := s.Measure()
				if m < prev-1e-9 || m > TwoPi+1e-9 {
					return false
				}
				prev = m
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("order independence", func(t *testing.T) {
		f := func(specs []arcSpec) bool {
			arcs := sanitize(specs)
			fwd := NewArcSet(arcs...)
			rev := &ArcSet{}
			for i := len(arcs) - 1; i >= 0; i-- {
				rev.Add(arcs[i])
			}
			return almostEqual(fwd.Measure(), rev.Measure(), 1e-9)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("gain equals measure delta", func(t *testing.T) {
		f := func(specs []arcSpec, extra arcSpec) bool {
			arcs := sanitize(specs)
			add := sanitize([]arcSpec{extra})
			if len(add) == 0 {
				return true
			}
			s := NewArcSet(arcs...)
			g := s.Gain(add[0])
			before := s.Measure()
			s.Add(add[0])
			return almostEqual(g, s.Measure()-before, 1e-9)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("intervals stay disjoint and sorted", func(t *testing.T) {
		f := func(specs []arcSpec) bool {
			arcs := sanitize(specs)
			s := NewArcSet(arcs...)
			out := s.Arcs()
			for i := 1; i < len(out); i++ {
				if out[i-1].End() >= out[i].Start {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestArcSetUncovered(t *testing.T) {
	s := NewArcSet(NewArc(1, 1)) // covers [1,2]
	tests := []struct {
		name string
		arc  Arc
		want []Arc
	}{
		{"fully uncovered", NewArc(3, 1), []Arc{{Start: 3, Width: 1}}},
		{"fully covered", NewArc(1.2, 0.5), nil},
		{"left overlap", NewArc(0.5, 1), []Arc{{Start: 0.5, Width: 0.5}}},
		{"right overlap", NewArc(1.5, 1), []Arc{{Start: 2, Width: 0.5}}},
		{"straddles", NewArc(0.5, 2), []Arc{{Start: 0.5, Width: 0.5}, {Start: 2, Width: 0.5}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := s.Uncovered(tt.arc)
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if !almostEqual(got[i].Start, tt.want[i].Start, 1e-12) ||
					!almostEqual(got[i].Width, tt.want[i].Width, 1e-12) {
					t.Fatalf("piece %d: got %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestArcSetUncoveredMatchesGain(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		s := &ArcSet{}
		for i := 0; i < rng.Intn(6); i++ {
			s.Add(NewArc(rng.Float64()*TwoPi, rng.Float64()*2))
		}
		probe := NewArc(rng.Float64()*TwoPi, rng.Float64()*3)
		var sum float64
		for _, piece := range s.Uncovered(probe) {
			sum += piece.Width
			// Every uncovered piece must be disjoint from the set.
			if g := s.Gain(piece); !almostEqual(g, piece.Width, 1e-9) {
				t.Fatalf("trial %d: piece %v overlaps the set", trial, piece)
			}
		}
		if !almostEqual(sum, s.Gain(probe), 1e-9) {
			t.Fatalf("trial %d: Σ uncovered %v != gain %v", trial, sum, s.Gain(probe))
		}
		// Overlap complements Gain.
		if got := s.Overlap(probe); !almostEqual(got+s.Gain(probe), probe.Width, 1e-9) {
			t.Fatalf("trial %d: overlap %v + gain != width", trial, got)
		}
	}
}

func TestArcSetUncoveredWrapping(t *testing.T) {
	s := NewArcSet(NewArc(0, 0.5)) // covers [0, 0.5]
	// Probe wraps: [2π−0.5, 0.5]; only [2π−0.5, 2π) should be uncovered.
	got := s.Uncovered(ArcAround(0, 0.5))
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	if !almostEqual(got[0].Start, TwoPi-0.5, 1e-12) || !almostEqual(got[0].Width, 0.5, 1e-12) {
		t.Fatalf("got %v", got[0])
	}
}
