package wire

import (
	"errors"
	"net"
	"testing"
)

// handshake runs Negotiate on both ends of a pipe and returns both conns.
func handshake(t *testing.T, pi, pr Params) (*Conn, *Conn) {
	t.Helper()
	ca, cb := net.Pipe()
	t.Cleanup(func() { _ = ca.Close(); _ = cb.Close() })
	type res struct {
		c   *Conn
		h   Hello
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, h, err := Negotiate(cb, Hello{Node: 2, Nonce: 22}, pr, false)
		ch <- res{c, h, err}
	}()
	ci, hr, err := Negotiate(ca, Hello{Node: 1, Nonce: 11}, pi, true)
	if err != nil {
		t.Fatalf("initiator: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("responder: %v", r.err)
	}
	if hr.Node != 2 || r.h.Node != 1 {
		t.Fatalf("identities: initiator saw %v, responder saw %v", hr.Node, r.h.Node)
	}
	return ci, r.c
}

func TestNegotiateBothV2(t *testing.T) {
	ci, cr := handshake(t,
		Params{ChunkSize: 128 << 10, Window: 16, Resume: true},
		Params{ChunkSize: 64 << 10, Window: 4, Resume: true})
	for _, c := range []*Conn{ci, cr} {
		if c.Version() != ProtocolV2 {
			t.Fatalf("version = %d", c.Version())
		}
		if c.ChunkSize() != 64<<10 {
			t.Fatalf("chunk size = %d, want min", c.ChunkSize())
		}
		if c.Window() != 4 {
			t.Fatalf("window = %d, want min", c.Window())
		}
		if !c.Resume() {
			t.Fatal("resume lost")
		}
	}
}

func TestNegotiateMixedVersions(t *testing.T) {
	cases := []struct {
		name   string
		pi, pr Params
	}{
		{"v1 initiator", Params{Version: ProtocolV1}, Params{Resume: true}},
		{"v1 responder", Params{Resume: true}, Params{Version: ProtocolV1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ci, cr := handshake(t, tc.pi, tc.pr)
			for _, c := range []*Conn{ci, cr} {
				if c.Version() != ProtocolV1 {
					t.Fatalf("version = %d, want 1", c.Version())
				}
				if c.Resume() {
					t.Fatal("resume negotiated on a v1 session")
				}
			}
		})
	}
}

func TestNegotiateResumeRequiresBoth(t *testing.T) {
	ci, cr := handshake(t, Params{Resume: true}, Params{})
	if ci.Resume() || cr.Resume() {
		t.Fatal("resume needs both sides")
	}
}

func TestConnVersionGate(t *testing.T) {
	ci, cr := handshake(t, Params{Version: ProtocolV1}, Params{})
	if err := ci.Write(ChunkAck{ID: 1}); !errors.Is(err, ErrVersion) {
		t.Fatalf("write err = %v, want ErrVersion", err)
	}
	// A v2 frame arriving on a v1 session is rejected on read, too.
	done := make(chan error, 1)
	go func() { done <- Write(cr.rw, ChunkAck{ID: 1, Index: 0}) }()
	if _, err := ci.Read(); !errors.Is(err, ErrVersion) {
		t.Fatalf("read err = %v, want ErrVersion", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestNegotiateRejectsNonHello(t *testing.T) {
	ca, cb := net.Pipe()
	defer func() { _ = ca.Close(); _ = cb.Close() }()
	done := make(chan error, 1)
	go func() {
		_, _, err := Negotiate(ca, Hello{Node: 1}, Params{}, true)
		done <- err
	}()
	if _, err := Read(cb); err != nil {
		t.Fatal(err)
	}
	if err := Write(cb, Bye{}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrHandshake) {
		t.Fatalf("err = %v, want ErrHandshake", err)
	}
}
