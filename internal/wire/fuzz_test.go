package wire

import (
	"bytes"
	"testing"

	"photodtn/internal/model"
)

// FuzzRead hammers the frame decoder with arbitrary bytes: it must never
// panic and never allocate absurdly, only return messages or errors.
func FuzzRead(f *testing.F) {
	// Seed with every valid message type.
	seed := []Message{
		Hello{Node: 1, Lambda: 0.1, DeliveryProb: 0.5, Time: 10, Nonce: 7, Capacity: 1 << 20},
		Metadata{Entries: []MetaEntry{{Node: 2, Photos: model.PhotoList{samplePhoto(2, 0)}}}},
		PhotoRequest{IDs: []model.PhotoID{1, 2, 3}},
		PhotoData{Photo: samplePhoto(1, 1), Payload: []byte{9, 9}},
		Ack{IDs: []model.PhotoID{4}},
		Bye{},
	}
	for _, msg := range seed {
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 8; i++ { // bounded stream decode
			msg, err := Read(r)
			if err != nil {
				return
			}
			// Any decoded message must re-encode without error.
			if err := Write(bytes.NewBuffer(nil), msg); err != nil {
				t.Fatalf("re-encode of fuzz-decoded %v failed: %v", msg.Type(), err)
			}
		}
	})
}
