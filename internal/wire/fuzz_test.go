package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"photodtn/internal/model"
)

// FuzzRead hammers the frame decoder with arbitrary bytes: it must never
// panic and never allocate absurdly, only return messages or errors.
func FuzzRead(f *testing.F) {
	// Seed with every valid message type.
	seed := []Message{
		Hello{Node: 1, Lambda: 0.1, DeliveryProb: 0.5, Time: 10, Nonce: 7, Capacity: 1 << 20},
		Metadata{Entries: []MetaEntry{{Node: 2, Photos: model.PhotoList{samplePhoto(2, 0)}}}},
		PhotoRequest{IDs: []model.PhotoID{1, 2, 3}},
		PhotoData{Photo: samplePhoto(1, 1), Payload: []byte{9, 9}},
		Ack{IDs: []model.PhotoID{4}},
		Bye{},
		Hello{Node: 3, Nonce: 8, Version: ProtocolV2, ChunkSize: 64 << 10, Window: 8, Flags: FlagResume},
		HelloAck{Hello: Hello{Node: 4, Version: ProtocolV2, ChunkSize: 32 << 10, Window: 2}},
		Chunk{Photo: samplePhoto(5, 0), Index: 1, Count: 3, ChunkSize: 4, Total: 11, PayloadCRC: 3, Data: []byte{1, 2, 3, 4}},
		ChunkAck{ID: model.MakePhotoID(5, 0), Index: 1},
		ResumeOffer{Entries: []ResumeEntry{{ID: 9, ChunkSize: 4, Count: 3, Total: 11, Bitmap: []byte{0b101}}}},
	}
	for _, msg := range seed {
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1})
	f.Add([]byte{})
	// Corruption cases: bad checksum, flipped body byte, truncated payload,
	// oversized declared length.
	{
		var buf bytes.Buffer
		if err := Write(&buf, Hello{Node: 9, Nonce: 1}); err != nil {
			f.Fatal(err)
		}
		badCRC := append([]byte(nil), buf.Bytes()...)
		badCRC[len(badCRC)-1] ^= 0xFF // flipped checksum trailer
		f.Add(badCRC)
		flipped := append([]byte(nil), buf.Bytes()...)
		flipped[7] ^= 0x10 // flipped body byte under a stale checksum
		f.Add(flipped)
	}
	{
		var buf bytes.Buffer
		if err := Write(&buf, PhotoData{Photo: samplePhoto(3, 3), Payload: bytes.Repeat([]byte{5}, 32)}); err != nil {
			f.Fatal(err)
		}
		whole := buf.Bytes()
		f.Add(append([]byte(nil), whole[:len(whole)-12]...)) // truncated payload + trailer
	}
	{
		var hdr [5]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(MaxFrame+1)) // oversized declared length
		hdr[4] = byte(MsgMetadata)
		f.Add(hdr[:])
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 8; i++ { // bounded stream decode
			msg, err := Read(r)
			if err != nil {
				return
			}
			// Any decoded message must re-encode without error.
			if err := Write(bytes.NewBuffer(nil), msg); err != nil {
				t.Fatalf("re-encode of fuzz-decoded %v failed: %v", msg.Type(), err)
			}
		}
	})
}

// FuzzDecodeMessage fuzzes the frame-free body decoder directly — the path
// the journal's replay shares with Read. No (type, body) pair may panic,
// and any body that decodes must survive a frame round-trip unchanged.
func FuzzDecodeMessage(f *testing.F) {
	// Seed with the body of every valid message type (frames minus the
	// 5-byte header and 4-byte checksum trailer).
	seed := []Message{
		Hello{Node: 1, Lambda: 0.1, DeliveryProb: 0.5, Time: 10, Nonce: 7, Capacity: 1 << 20},
		Metadata{Entries: []MetaEntry{{Node: 2, Lambda: 0.5, P: 0.25, Timestamp: 3, Photos: model.PhotoList{samplePhoto(2, 0)}}}},
		Metadata{},
		PhotoRequest{IDs: []model.PhotoID{1, 2, 3}},
		PhotoData{Photo: samplePhoto(1, 1), Payload: []byte{9, 9}},
		Ack{IDs: []model.PhotoID{4}},
		Bye{},
		Hello{Node: 3, Nonce: 8, Version: ProtocolV2, ChunkSize: 64 << 10, Window: 8, Flags: FlagResume},
		HelloAck{Hello: Hello{Node: 4, Version: ProtocolV2, ChunkSize: 32 << 10, Window: 2}},
		Chunk{Photo: samplePhoto(5, 0), Index: 2, Count: 3, ChunkSize: 4, Total: 11, PayloadCRC: 3, Data: []byte{1, 2, 3}},
		ChunkAck{ID: model.MakePhotoID(5, 0), Index: 1},
		ResumeOffer{Entries: []ResumeEntry{{ID: 9, ChunkSize: 4, Count: 3, Total: 11, Bitmap: []byte{0b101}}}},
	}
	for _, msg := range seed {
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			f.Fatal(err)
		}
		frame := buf.Bytes()
		f.Add(byte(msg.Type()), append([]byte(nil), frame[5:len(frame)-4]...))
	}
	// Hostile shapes: unknown type, truncated counts, absurd lengths.
	f.Add(byte(0), []byte{})
	f.Add(byte(9), []byte{1, 2, 3})
	f.Add(byte(MsgMetadata), []byte{0xFF, 0xFF, 0xFF, 0xFF})          // huge entry count
	f.Add(byte(MsgPhotoRequest), []byte{0xFF, 0xFF, 0xFF, 0x7F})      // huge ID count
	f.Add(byte(MsgPhotoData), bytes.Repeat([]byte{0xFF}, 16))         // garbage photo
	f.Add(byte(MsgBye), []byte{1})                                    // bye with body
	f.Add(byte(MsgHello), bytes.Repeat([]byte{0x41}, 35))             // one byte short
	f.Add(byte(MsgMetadata), []byte{1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}) // truncated entry
	// Hostile length claims: counts and geometry chosen to bait an
	// allocator that trusts the header, with bodies far too short to ever
	// satisfy them.
	f.Add(byte(MsgResumeOffer), []byte{0xFF, 0xFF, 0xFF, 0xFF})            // huge offer count, empty body
	f.Add(byte(MsgResumeOffer), append([]byte{0x10, 0, 0, 0}, make([]byte, 29)...)) // claims 16, holds 1
	f.Add(byte(MsgAck), []byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3})           // huge ack count, 3 bytes
	f.Add(byte(MsgChunk), func() []byte {                                  // absurd Total/Count geometry
		b := samplePhoto(7, 0).AppendBinary(nil)
		b = appendU32(b, 0)                   // index
		b = appendU32(b, 0xFFFFFFFF)          // count far past MaxChunks
		b = appendU32(b, 1)                   // chunk size
		b = appendU64(b, 1<<62)               // total
		return appendU32(b, 0)                // crc
	}())
	f.Add(byte(MsgMetadata), func() []byte { // entry whose photo list claims 2^31 photos
		b := appendU32(nil, 1)
		b = appendU32(b, 5)
		b = appendF64(b, 0.1)
		b = appendF64(b, 0.2)
		b = appendF64(b, 3)
		return appendU32(b, 0x80000000)
	}())

	f.Fuzz(func(t *testing.T, typ byte, body []byte) {
		msg, err := DecodeBody(MsgType(typ), body)
		if err != nil {
			return
		}
		if got := byte(msg.Type()); got != typ {
			t.Fatalf("decoded type %d from input type %d", got, typ)
		}
		// Round-trip: re-encode as a frame, re-read, re-decode to the same
		// body bytes.
		var buf bytes.Buffer
		if err := Write(&buf, msg); err != nil {
			t.Fatalf("re-encode of decoded %v failed: %v", msg.Type(), err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read of decoded %v failed: %v", msg.Type(), err)
		}
		if again.Type() != msg.Type() {
			t.Fatalf("round-trip changed type %v to %v", msg.Type(), again.Type())
		}
	})
}
