package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"

	"photodtn/internal/geo"
	"photodtn/internal/model"
)

func samplePhoto(owner model.NodeID, seq uint32) model.Photo {
	return model.Photo{
		ID: model.MakePhotoID(owner, seq), Owner: owner,
		TakenAt: 3.5, Location: geo.Vec{X: 1, Y: 2},
		Range: 100, FOV: 1, Orientation: 2, Size: 4 << 20,
	}
}

func roundTrip(t *testing.T, msg Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left after read", buf.Len())
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	msg := Hello{Node: 7, Lambda: 0.001, DeliveryProb: 0.4, Time: 1234.5, Nonce: 0xDEADBEEF, Capacity: 5 << 30}
	got := roundTrip(t, msg)
	want := msg
	want.Version = ProtocolV1 // a base hello decodes as explicit v1
	if got != want {
		t.Fatalf("got %+v", got)
	}
}

func TestHelloExtendedRoundTrip(t *testing.T) {
	msg := Hello{
		Node: 7, Lambda: 0.001, DeliveryProb: 0.4, Time: 1234.5, Nonce: 0xDEADBEEF, Capacity: 5 << 30,
		Version: ProtocolV2, ChunkSize: 128 << 10, Window: 4, Flags: FlagResume,
	}
	if got := roundTrip(t, msg); got != msg {
		t.Fatalf("got %+v", got)
	}
	ack := HelloAck{Hello: msg}
	if got := roundTrip(t, ack); got != ack {
		t.Fatalf("ack: got %+v", got)
	}
}

func TestChunkRoundTrip(t *testing.T) {
	msg := Chunk{
		Photo: samplePhoto(3, 9), Index: 1, Count: 3, ChunkSize: 4,
		Total: 11, PayloadCRC: 0xCAFE, Data: []byte{4, 5, 6, 7},
	}
	got := roundTrip(t, msg).(Chunk)
	if got.Photo != msg.Photo || got.Index != 1 || got.Count != 3 ||
		got.ChunkSize != 4 || got.Total != 11 || got.PayloadCRC != 0xCAFE ||
		!bytes.Equal(got.Data, msg.Data) {
		t.Fatalf("got %+v", got)
	}
	// Final (short) chunk and an empty single-chunk payload.
	last := Chunk{Photo: samplePhoto(3, 9), Index: 2, Count: 3, ChunkSize: 4, Total: 11, Data: []byte{8, 9, 10}}
	if got := roundTrip(t, last).(Chunk); !bytes.Equal(got.Data, last.Data) {
		t.Fatalf("final chunk: got %+v", got)
	}
	empty := Chunk{Photo: samplePhoto(3, 9), Index: 0, Count: 1, ChunkSize: 4, Total: 0}
	if got := roundTrip(t, empty).(Chunk); len(got.Data) != 0 {
		t.Fatalf("empty chunk: got %+v", got)
	}
}

func TestDecodeChunkRejectsBadGeometry(t *testing.T) {
	bad := []Chunk{
		{Photo: samplePhoto(1, 0), Index: 0, Count: 2, ChunkSize: 4, Total: 11, Data: []byte{1, 2, 3, 4}},  // count not canonical
		{Photo: samplePhoto(1, 0), Index: 3, Count: 3, ChunkSize: 4, Total: 11, Data: []byte{1, 2, 3}},     // index out of range
		{Photo: samplePhoto(1, 0), Index: 0, Count: 3, ChunkSize: 4, Total: 11, Data: []byte{1, 2}},        // short non-final chunk
		{Photo: samplePhoto(1, 0), Index: 0, Count: 1, ChunkSize: 0, Total: 0, Data: nil},                  // zero chunk size
	}
	for i, c := range bad {
		body := AppendChunk(nil, c)
		if _, err := DecodeChunk(body); !errors.Is(err, ErrBadMessage) {
			t.Fatalf("case %d: err = %v, want ErrBadMessage", i, err)
		}
	}
}

func TestChunkAckRoundTrip(t *testing.T) {
	msg := ChunkAck{ID: model.MakePhotoID(4, 2), Index: 17}
	if got := roundTrip(t, msg); got != msg {
		t.Fatalf("got %+v", got)
	}
}

func TestResumeOfferRoundTrip(t *testing.T) {
	msg := ResumeOffer{Entries: []ResumeEntry{
		{ID: model.MakePhotoID(1, 0), ChunkSize: 4, Count: 3, Total: 11, PayloadCRC: 7, Bitmap: []byte{0b101}},
		{ID: model.MakePhotoID(2, 5), ChunkSize: 8, Count: 9, Total: 65, PayloadCRC: 9, Bitmap: []byte{0xFF, 0b1}},
	}}
	got := roundTrip(t, msg).(ResumeOffer)
	if len(got.Entries) != 2 {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	for i := range msg.Entries {
		w, g := msg.Entries[i], got.Entries[i]
		if g.ID != w.ID || g.ChunkSize != w.ChunkSize || g.Count != w.Count ||
			g.Total != w.Total || g.PayloadCRC != w.PayloadCRC || !bytes.Equal(g.Bitmap, w.Bitmap) {
			t.Fatalf("entry %d: got %+v want %+v", i, g, w)
		}
	}
	// Slack bits beyond Count must be zero.
	bad := AppendResumeEntry(nil, ResumeEntry{
		ID: 1, ChunkSize: 4, Count: 3, Total: 11, PayloadCRC: 0, Bitmap: []byte{0b1000},
	})
	bad = append([]byte{1, 0, 0, 0}, bad...)
	if _, err := DecodeBody(MsgResumeOffer, bad); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("slack bits: err = %v, want ErrBadMessage", err)
	}
	if len(roundTrip(t, ResumeOffer{}).(ResumeOffer).Entries) != 0 {
		t.Fatal("empty offer grew entries")
	}
}

func TestMetadataRoundTrip(t *testing.T) {
	msg := Metadata{Entries: []MetaEntry{
		{Node: 1, Lambda: 0.01, P: 0.5, Timestamp: 10, Photos: model.PhotoList{samplePhoto(1, 0), samplePhoto(1, 1)}},
		{Node: 2, Lambda: 0.02, P: 0.6, Timestamp: 20, Photos: nil},
	}}
	got := roundTrip(t, msg).(Metadata)
	if len(got.Entries) != 2 {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	if got.Entries[0].Node != 1 || len(got.Entries[0].Photos) != 2 || got.Entries[0].Photos[1] != samplePhoto(1, 1) {
		t.Fatalf("entry 0 = %+v", got.Entries[0])
	}
	if got.Entries[1].P != 0.6 || len(got.Entries[1].Photos) != 0 {
		t.Fatalf("entry 1 = %+v", got.Entries[1])
	}
}

func TestPhotoRequestRoundTrip(t *testing.T) {
	msg := PhotoRequest{IDs: []model.PhotoID{1, 99, model.MakePhotoID(5, 7)}}
	got := roundTrip(t, msg).(PhotoRequest)
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("got %+v", got)
	}
	empty := roundTrip(t, PhotoRequest{}).(PhotoRequest)
	if len(empty.IDs) != 0 {
		t.Fatal("empty request round trip failed")
	}
}

func TestPhotoDataRoundTrip(t *testing.T) {
	msg := PhotoData{Photo: samplePhoto(3, 9), Payload: []byte{1, 2, 3, 4}}
	got := roundTrip(t, msg).(PhotoData)
	if got.Photo != msg.Photo || !bytes.Equal(got.Payload, msg.Payload) {
		t.Fatalf("got %+v", got)
	}
	noPayload := roundTrip(t, PhotoData{Photo: samplePhoto(3, 10)}).(PhotoData)
	if noPayload.Payload != nil {
		t.Fatal("empty payload should decode as nil")
	}
}

func TestAckAndByeRoundTrip(t *testing.T) {
	ack := roundTrip(t, Ack{IDs: []model.PhotoID{42}}).(Ack)
	if len(ack.IDs) != 1 || ack.IDs[0] != 42 {
		t.Fatalf("ack = %+v", ack)
	}
	if _, ok := roundTrip(t, Bye{}).(Bye); !ok {
		t.Fatal("bye round trip failed")
	}
}

func TestMessageStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		Hello{Node: 1, Nonce: 5},
		Metadata{Entries: []MetaEntry{{Node: 1, Photos: model.PhotoList{samplePhoto(1, 0)}}}},
		PhotoRequest{IDs: []model.PhotoID{7}},
		PhotoData{Photo: samplePhoto(2, 0), Payload: bytes.Repeat([]byte{0xAB}, 1024)},
		Ack{IDs: []model.PhotoID{7}},
		Bye{},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got.Type() != want.Type() {
			t.Fatalf("message %d: type %v, want %v", i, got.Type(), want.Type())
		}
	}
	if _, err := Read(&buf); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadRejectsCorruptFrames(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"unknown type", []byte{0, 0, 0, 0, 99}},
		{"hello short body", []byte{2, 0, 0, 0, byte(MsgHello), 1, 2}},
		{"bye with body", []byte{1, 0, 0, 0, byte(MsgBye), 0}},
		{"oversize frame", []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgHello)}},
		{"truncated header", []byte{1, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader(tt.data)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

// reframe rebuilds a syntactically valid frame (length and checksum fixed
// up) around the given type and body, so tests reach the body decoders.
func reframe(typ MsgType, body []byte) []byte {
	frame := make([]byte, 5, 5+len(body)+4)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(body)))
	frame[4] = byte(typ)
	frame = append(frame, body...)
	return appendU32(frame, crc32.Checksum(frame[4:], crcTable))
}

func TestReadRejectsCorruptBodies(t *testing.T) {
	// A metadata message whose inner photo list is truncated; the checksum
	// is valid so the failure must come from the body decoder.
	var buf bytes.Buffer
	if err := Write(&buf, Metadata{Entries: []MetaEntry{{Node: 1, Photos: model.PhotoList{samplePhoto(1, 0)}}}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	corrupted := reframe(MsgMetadata, data[5:len(data)-4-10])
	if _, err := Read(bytes.NewReader(corrupted)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
}

func TestChecksumDetectsBitFlips(t *testing.T) {
	// Flipping any single byte of an encoded frame must make Read fail:
	// length flips starve or shorten the read, type and body flips break
	// the checksum, trailer flips mismatch the computed sum.
	var buf bytes.Buffer
	if err := Write(&buf, Hello{Node: 3, Lambda: 0.5, DeliveryProb: 0.25, Time: 99, Nonce: 7, Capacity: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for i := range frame {
		mutated := append([]byte(nil), frame...)
		mutated[i] ^= 0x01
		if msg, err := Read(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("flip at byte %d decoded silently as %v", i, msg.Type())
		}
	}
	// The pristine frame still decodes.
	if _, err := Read(bytes.NewReader(frame)); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
}

func TestChecksumMismatchError(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Bye{}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[len(frame)-1] ^= 0xFF
	if _, err := Read(bytes.NewReader(frame)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestReadRejectsOversizeLengthBeforeAllocating(t *testing.T) {
	// A declared length just past MaxFrame must be rejected from the
	// 5-byte header alone — no body bytes are consumed or allocated.
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(MaxFrame+1))
	hdr[4] = byte(MsgPhotoData)
	r := bytes.NewReader(hdr[:])
	if _, err := Read(r); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
	if r.Len() != 0 {
		t.Fatalf("%d unread bytes — header not fully consumed", r.Len())
	}
	// Exactly MaxFrame is allowed through to the (starved) body read.
	binary.LittleEndian.PutUint32(hdr[:4], uint32(MaxFrame))
	if _, err := Read(bytes.NewReader(hdr[:])); errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("MaxFrame-sized declaration wrongly rejected: %v", err)
	}
}

func TestReadRejectsTruncatedPayload(t *testing.T) {
	// A PhotoData frame cut short mid-payload (valid header, missing tail).
	var buf bytes.Buffer
	if err := Write(&buf, PhotoData{Photo: samplePhoto(2, 2), Payload: bytes.Repeat([]byte{7}, 64)}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	if _, err := Read(bytes.NewReader(frame[:len(frame)-16])); err == nil {
		t.Fatal("truncated frame decoded silently")
	}
	// And one whose payload-length field lies (checksum recomputed so the
	// payload decoder must catch it).
	body := frame[5 : len(frame)-4]
	lied := append([]byte(nil), body...)
	// The payload length field sits 4+len(payload) bytes from the end.
	binary.LittleEndian.PutUint32(lied[len(lied)-4-64:], 1000)
	if _, err := Read(bytes.NewReader(reframe(MsgPhotoData, lied))); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
}

func TestWriteRejectsHugeFrame(t *testing.T) {
	big := PhotoData{Photo: samplePhoto(1, 0), Payload: make([]byte, MaxFrame)}
	if err := Write(io.Discard, big); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		MsgHello: "Hello", MsgMetadata: "Metadata", MsgPhotoRequest: "PhotoRequest",
		MsgPhotoData: "PhotoData", MsgAck: "Ack", MsgBye: "Bye", MsgType(77): "MsgType(77)",
	}
	for tpe, want := range names {
		if got := tpe.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", tpe, got, want)
		}
	}
}
