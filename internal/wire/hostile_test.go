package wire

import (
	"errors"
	"testing"
)

// TestDecodeHostileLengths drives every length-prefixed decoder with claims
// the body cannot satisfy: each must fail with ErrBadMessage before doing
// any claim-proportional work or allocation. The alloc assertions pin the
// fast-fail property — a decoder that trusted the claimed count would
// allocate (or loop) on the order of the claim, not the body.
func TestDecodeHostileLengths(t *testing.T) {
	hugeChunk := samplePhoto(7, 0).AppendBinary(nil)
	hugeChunk = appendU32(hugeChunk, 0)          // index
	hugeChunk = appendU32(hugeChunk, 0xFFFFFFFF) // count far past MaxChunks
	hugeChunk = appendU32(hugeChunk, 1)          // chunk size
	hugeChunk = appendU64(hugeChunk, 1<<62)      // total
	hugeChunk = appendU32(hugeChunk, 0)          // crc

	hugePhotos := appendU32(nil, 1) // one metadata entry ...
	hugePhotos = appendU32(hugePhotos, 5)
	hugePhotos = appendF64(hugePhotos, 0.1)
	hugePhotos = appendF64(hugePhotos, 0.2)
	hugePhotos = appendF64(hugePhotos, 3)
	hugePhotos = appendU32(hugePhotos, 0x80000000) // ... claiming 2^31 photos

	hugeResume := appendU64(nil, 9) // one resume entry ...
	hugeResume = appendU32(hugeResume, 1)
	hugeResume = appendU32(hugeResume, MaxChunks) // ... whose bitmap would be 2 MiB
	hugeResume = appendU64(hugeResume, MaxChunks)
	hugeResume = appendU32(hugeResume, 0)

	cases := []struct {
		name string
		typ  MsgType
		body []byte
	}{
		{"metadata count", MsgMetadata, []byte{0xFF, 0xFF, 0xFF, 0xFF}},
		{"metadata photos", MsgMetadata, hugePhotos},
		{"request count", MsgPhotoRequest, []byte{0xFF, 0xFF, 0xFF, 0x7F}},
		{"ack count", MsgAck, []byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3}},
		{"offer count empty", MsgResumeOffer, []byte{0xFF, 0xFF, 0xFF, 0xFF}},
		{"offer count short", MsgResumeOffer, append([]byte{0x10, 0, 0, 0}, make([]byte, 29)...)},
		{"offer bitmap", MsgResumeOffer, append(appendU32(nil, 1), hugeResume...)},
		{"chunk geometry", MsgChunk, hugeChunk},
		{"photo data payload", MsgPhotoData, append(samplePhoto(3, 0).AppendBinary(nil), 0xFF, 0xFF, 0xFF, 0x7F)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			allocs := testing.AllocsPerRun(10, func() {
				_, err = DecodeBody(tc.typ, tc.body)
			})
			if !errors.Is(err, ErrBadMessage) {
				t.Fatalf("err = %v, want ErrBadMessage", err)
			}
			// The error path formats a message (a handful of allocations);
			// anything claim-proportional would be thousands.
			if allocs > 32 {
				t.Fatalf("decode allocated %v times on a hostile claim", allocs)
			}
		})
	}
}
