// Conn and Negotiate: the version-negotiating half of the wire package.
//
// Protocol v1 moved whole photos as single PhotoData frames; v2 moves them
// as CRC-framed chunks behind a windowed sender and can resume a partial
// transfer in a later contact. The two interoperate through the handshake
// below, which costs no extra round trips:
//
//	initiator                         responder
//	---------                         ---------
//	Hello (ext if v2) ------------->
//	                                  both v2?  <------ HelloAck (negotiated)
//	                                  either v1? <----- Hello (44-byte base)
//
// The responder always answers a v1-only hello with the 44-byte base body,
// so a v1 peer never sees bytes it cannot decode in reply. In the other
// direction a strict v1 build (which accepted exactly 44 bytes) would
// reject an initiator's *extended* hello outright — pin Version 1 in
// Params when dialing such a peer; the cross-version tests cover both
// pinned directions.
//
// Every subsequent encode/decode goes through the Conn, which rejects v2+
// message types on a v1 session in one place instead of scattering version
// checks through the peer's state machine.
package wire

import (
	"errors"
	"fmt"
	"io"
)

// Protocol versions.
const (
	// ProtocolV1 is the original whole-photo protocol.
	ProtocolV1 uint16 = 1
	// ProtocolV2 adds chunked, resumable transfer.
	ProtocolV2 uint16 = 2
	// ProtocolVersion is the highest version this build speaks.
	ProtocolVersion = ProtocolV2
)

// Default transfer parameters (v2).
const (
	// DefaultChunkSize is the default transfer chunk size: 256 KiB.
	DefaultChunkSize = 256 << 10
	// DefaultWindow is the default number of unacknowledged chunks in
	// flight.
	DefaultWindow = 8
)

// FlagResume in Hello.Flags advertises that the sender persists partial
// transfers and wants resume offers.
const FlagResume uint8 = 0x01

// Handshake errors.
var (
	// ErrHandshake reports an unexpected message during version
	// negotiation.
	ErrHandshake = errors.New("wire: handshake violation")
	// ErrVersion reports a message type not spoken at the negotiated
	// version.
	ErrVersion = errors.New("wire: message type above negotiated version")
)

// Params are one side's transfer preferences going into a handshake. The
// zero value asks for the current defaults with resume disabled.
type Params struct {
	// Version is the highest protocol version to offer (0 = current).
	Version uint16
	// ChunkSize is the preferred chunk size in bytes (0 = default).
	ChunkSize uint32
	// Window is the preferred in-flight chunk window (0 = default).
	Window uint16
	// Resume advertises fragment persistence.
	Resume bool
}

func (p Params) withDefaults() Params {
	if p.Version == 0 || p.Version > ProtocolVersion {
		p.Version = ProtocolVersion
	}
	if p.ChunkSize == 0 {
		p.ChunkSize = DefaultChunkSize
	}
	if p.Window == 0 {
		p.Window = DefaultWindow
	}
	return p
}

// Conn is a contact connection after version negotiation: a frame codec
// that admits exactly the message set of the negotiated version, plus the
// agreed transfer parameters.
type Conn struct {
	rw        io.ReadWriter
	version   uint16
	chunkSize uint32
	window    int
	resume    bool
}

// Version returns the negotiated protocol version.
func (c *Conn) Version() uint16 { return c.version }

// ChunkSize returns the negotiated chunk size in bytes (v2; the default on
// a v1 session, where it is unused).
func (c *Conn) ChunkSize() int { return int(c.chunkSize) }

// Window returns the negotiated in-flight chunk window (≥ 1).
func (c *Conn) Window() int { return c.window }

// Resume reports whether both sides persist partial transfers.
func (c *Conn) Resume() bool { return c.resume }

// minVersion maps each message type to the protocol version that
// introduced it.
func minVersion(t MsgType) uint16 {
	switch t {
	case MsgHelloAck, MsgChunk, MsgChunkAck, MsgResumeOffer:
		return ProtocolV2
	default:
		return ProtocolV1
	}
}

func (c *Conn) check(t MsgType) error {
	if v := minVersion(t); v > c.version {
		return fmt.Errorf("%w: %v needs v%d, session is v%d", ErrVersion, t, v, c.version)
	}
	return nil
}

// Write encodes one message, rejecting types above the session version.
func (c *Conn) Write(msg Message) error {
	if err := c.check(msg.Type()); err != nil {
		return err
	}
	return Write(c.rw, msg)
}

// Read decodes the next frame, rejecting types above the session version.
func (c *Conn) Read() (Message, error) {
	msg, err := Read(c.rw)
	if err != nil {
		return nil, err
	}
	if err := c.check(msg.Type()); err != nil {
		return nil, err
	}
	return msg, nil
}

// negotiate folds the remote hello into local params: element-wise minimum
// for version, chunk size and window; logical AND for resume.
func negotiate(p Params, h Hello) Params {
	out := p
	if v := h.Version; v == 0 {
		out.Version = ProtocolV1
	} else if v < out.Version {
		out.Version = v
	}
	if out.Version >= ProtocolV2 {
		if h.ChunkSize != 0 && h.ChunkSize < out.ChunkSize {
			out.ChunkSize = h.ChunkSize
		}
		if h.Window != 0 && h.Window < out.Window {
			out.Window = h.Window
		}
		out.Resume = p.Resume && h.Flags&FlagResume != 0
	} else {
		out.Resume = false
	}
	return out
}

func newConn(rw io.ReadWriter, p Params) *Conn {
	return &Conn{
		rw:        rw,
		version:   p.Version,
		chunkSize: p.ChunkSize,
		window:    max(1, int(p.Window)),
		resume:    p.Resume,
	}
}

// extend stamps the transfer extension onto a hello when offering v2+.
func extend(own Hello, p Params) Hello {
	own.Version = p.Version
	own.ChunkSize, own.Window, own.Flags = 0, 0, 0
	if p.Version >= ProtocolV2 {
		own.ChunkSize = p.ChunkSize
		own.Window = p.Window
		if p.Resume {
			own.Flags |= FlagResume
		}
	}
	return own
}

// Negotiate performs the version handshake over rw and returns the
// negotiated connection plus the remote's hello. own carries the caller's
// identity fields; its transfer extension is overwritten from p. The
// initiator writes first (the peer layer's turn-taking convention).
func Negotiate(rw io.ReadWriter, own Hello, p Params, initiator bool) (*Conn, Hello, error) {
	p = p.withDefaults()
	own = extend(own, p)
	if initiator {
		if err := Write(rw, own); err != nil {
			return nil, Hello{}, err
		}
		msg, err := Read(rw)
		if err != nil {
			return nil, Hello{}, err
		}
		switch m := msg.(type) {
		case HelloAck:
			if p.Version < ProtocolV2 {
				return nil, Hello{}, fmt.Errorf("%w: hello ack on a v1 offer", ErrHandshake)
			}
			// The ack already carries the responder's minimum; folding it
			// into our params again clamps a misbehaving responder that
			// tried to negotiate *up*.
			return newConn(rw, negotiate(p, m.Hello)), m.Hello, nil
		case Hello:
			// v1 responder (or one that declined the extension).
			if m.Version >= ProtocolV2 {
				return nil, Hello{}, fmt.Errorf("%w: extended hello where ack expected", ErrHandshake)
			}
			p.Version = ProtocolV1
			p.Resume = false
			return newConn(rw, p), m, nil
		default:
			return nil, Hello{}, fmt.Errorf("%w: %v in reply to hello", ErrHandshake, msg.Type())
		}
	}
	msg, err := Read(rw)
	if err != nil {
		return nil, Hello{}, err
	}
	h, ok := msg.(Hello)
	if !ok {
		return nil, Hello{}, fmt.Errorf("%w: %v before hello", ErrHandshake, msg.Type())
	}
	neg := negotiate(p, h)
	if neg.Version >= ProtocolV2 {
		ack := HelloAck{Hello: extend(own, neg)}
		if err := Write(rw, ack); err != nil {
			return nil, Hello{}, err
		}
		return newConn(rw, neg), h, nil
	}
	if err := Write(rw, extend(own, neg)); err != nil {
		return nil, Hello{}, err
	}
	return newConn(rw, neg), h, nil
}
