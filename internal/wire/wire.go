// Package wire defines the binary contact protocol two nodes speak when
// they meet — the live counterpart of the simulator's contact sessions and
// the transport the Android prototype would use over Bluetooth/Wi-Fi
// Direct.
//
// Every message is a frame:
//
//	[4-byte little-endian body length][1-byte message type][body]
//	[4-byte little-endian CRC-32C of type byte + body]
//
// The checksum trailer detects frames corrupted in flight (disaster-area
// radio links are lossy); Read rejects mismatches with ErrChecksum before
// any decoding happens. The declared body length is bounds-checked against
// MaxFrame before any allocation, so a hostile or corrupt length field
// cannot trigger huge allocations.
//
// Bodies are fixed layouts built from the model package's binary photo
// codec. The protocol is symmetric and runs in rounds; see package peer for
// the session state machine.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"photodtn/internal/model"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Message types.
const (
	// MsgHello opens a contact: identity, learned rate, delivery
	// probability, local time, and a nonce for deterministic joint
	// computations.
	MsgHello MsgType = iota + 1
	// MsgMetadata carries metadata cache entries (including the sender's
	// own collection as the first entry).
	MsgMetadata
	// MsgPhotoRequest asks the peer for the listed photos.
	MsgPhotoRequest
	// MsgPhotoData delivers one photo: metadata plus (optionally) payload
	// bytes standing in for the image file.
	MsgPhotoData
	// MsgAck acknowledges received photos (the command center's delivery
	// ACK).
	MsgAck
	// MsgBye closes the contact.
	MsgBye
	// MsgHelloAck answers an extended Hello when both sides speak v2: it
	// carries the responder's identity fields plus the negotiated transfer
	// parameters (protocol v2+ only).
	MsgHelloAck
	// MsgChunk delivers one slice of a photo's payload together with the
	// full photo metadata, so any holder can resume a partial transfer
	// started by another (protocol v2+ only).
	MsgChunk
	// MsgChunkAck acknowledges one chunk; the sender uses it to clock its
	// transmission window (protocol v2+ only).
	MsgChunkAck
	// MsgResumeOffer lists the receiver's partial reassembly state for the
	// photos it is about to request, so the sender skips chunks that
	// already landed in an earlier contact (protocol v2+ only).
	MsgResumeOffer
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgMetadata:
		return "Metadata"
	case MsgPhotoRequest:
		return "PhotoRequest"
	case MsgPhotoData:
		return "PhotoData"
	case MsgAck:
		return "Ack"
	case MsgBye:
		return "Bye"
	case MsgHelloAck:
		return "HelloAck"
	case MsgChunk:
		return "Chunk"
	case MsgChunkAck:
		return "ChunkAck"
	case MsgResumeOffer:
		return "ResumeOffer"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// MaxFrame bounds a frame body; larger frames are rejected as corrupt.
const MaxFrame = 64 << 20

// Protocol errors.
var (
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrame")
	ErrBadMessage  = errors.New("wire: malformed message")
	ErrChecksum    = errors.New("wire: frame checksum mismatch")
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on most
// platforms) used for the per-frame checksum.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// PayloadCRC is the whole-payload checksum carried by every Chunk: the
// same CRC-32C the frame trailer uses, over the fully assembled payload.
// Exported so the transfer store and the peer's send path share one
// definition.
func PayloadCRC(b []byte) uint32 {
	return crc32.Checksum(b, crcTable)
}

// Message is any protocol message.
type Message interface {
	// Type returns the message type tag.
	Type() MsgType
	// appendBody serialises the body.
	appendBody(dst []byte) []byte
}

// Hello opens a contact. A v1 hello is exactly the 44-byte base layout; a
// v2+ hello appends a 9-byte transfer extension ([version u16][chunk u32]
// [window u16][flags u8]) that v1 decoders never see — the version
// handshake (Negotiate) guarantees the base body is all a v1 peer ever
// receives back.
type Hello struct {
	Node model.NodeID
	// Lambda is the sender's learned aggregate contact rate λ (per second).
	Lambda float64
	// DeliveryProb is the sender's PROPHET probability of reaching the
	// command center.
	DeliveryProb float64
	// Time is the sender's clock in seconds.
	Time float64
	// Nonce seeds joint deterministic computations for this contact.
	Nonce uint64
	// Capacity is the sender's storage capacity in bytes.
	Capacity int64

	// Version is the highest protocol version the sender speaks. Zero
	// means the extension was absent: a v1 hello.
	Version uint16
	// ChunkSize is the sender's preferred chunk size in bytes (v2+).
	ChunkSize uint32
	// Window is the sender's preferred number of unacknowledged chunks in
	// flight (v2+).
	Window uint16
	// Flags carries transfer capability bits (FlagResume).
	Flags uint8
}

// Type implements Message.
func (Hello) Type() MsgType { return MsgHello }

const (
	helloBaseLen = 4 + 8*5
	helloExtLen  = helloBaseLen + 2 + 4 + 2 + 1
)

func (h Hello) appendBody(dst []byte) []byte {
	dst = appendU32(dst, uint32(h.Node))
	dst = appendF64(dst, h.Lambda)
	dst = appendF64(dst, h.DeliveryProb)
	dst = appendF64(dst, h.Time)
	dst = appendU64(dst, h.Nonce)
	dst = appendU64(dst, uint64(h.Capacity))
	if h.Version >= ProtocolV2 {
		dst = append(dst, byte(h.Version), byte(h.Version>>8))
		dst = appendU32(dst, h.ChunkSize)
		dst = append(dst, byte(h.Window), byte(h.Window>>8))
		dst = append(dst, h.Flags)
	}
	return dst
}

func decodeHello(b []byte) (Hello, error) {
	if len(b) != helloBaseLen && len(b) != helloExtLen {
		return Hello{}, fmt.Errorf("%w: hello body %d bytes", ErrBadMessage, len(b))
	}
	h := Hello{
		Node:         model.NodeID(binary.LittleEndian.Uint32(b)),
		Lambda:       f64(b[4:]),
		DeliveryProb: f64(b[12:]),
		Time:         f64(b[20:]),
		Nonce:        binary.LittleEndian.Uint64(b[28:]),
		Capacity:     int64(binary.LittleEndian.Uint64(b[36:])),
		Version:      ProtocolV1,
	}
	if len(b) == helloExtLen {
		h.Version = binary.LittleEndian.Uint16(b[44:])
		h.ChunkSize = binary.LittleEndian.Uint32(b[46:])
		h.Window = binary.LittleEndian.Uint16(b[50:])
		h.Flags = b[52]
		if h.Version < ProtocolV2 {
			return Hello{}, fmt.Errorf("%w: hello extension with version %d", ErrBadMessage, h.Version)
		}
	}
	return h, nil
}

// HelloAck is the responder's half of the v2 handshake: its own identity
// fields plus the negotiated (element-wise minimum) transfer parameters.
// It is only ever sent when both peers advertised v2 or later.
type HelloAck struct {
	Hello
}

// Type implements Message.
func (HelloAck) Type() MsgType { return MsgHelloAck }

func decodeHelloAck(b []byte) (HelloAck, error) {
	h, err := decodeHello(b)
	if err != nil {
		return HelloAck{}, err
	}
	if h.Version < ProtocolV2 {
		return HelloAck{}, fmt.Errorf("%w: hello ack without v2 extension", ErrBadMessage)
	}
	return HelloAck{Hello: h}, nil
}

// MetaEntry is one metadata snapshot on the wire.
type MetaEntry struct {
	Node      model.NodeID
	Lambda    float64
	P         float64
	Timestamp float64
	Photos    model.PhotoList
}

// Metadata carries cache entries; by convention the sender's own collection
// is the first entry.
type Metadata struct {
	Entries []MetaEntry
}

// Type implements Message.
func (Metadata) Type() MsgType { return MsgMetadata }

func (m Metadata) appendBody(dst []byte) []byte {
	dst = appendU32(dst, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		dst = AppendMetaEntry(dst, e)
	}
	return dst
}

// AppendMetaEntry appends the binary encoding of one metadata entry (the
// element encoding of a Metadata body) to dst. It is exported so other
// durable encodings — the peer's write-ahead journal records — reuse the
// wire layout instead of inventing a second one.
func AppendMetaEntry(dst []byte, e MetaEntry) []byte {
	dst = appendU32(dst, uint32(e.Node))
	dst = appendF64(dst, e.Lambda)
	dst = appendF64(dst, e.P)
	dst = appendF64(dst, e.Timestamp)
	return e.Photos.AppendBinary(dst)
}

// DecodeMetaEntry decodes one metadata entry from the front of b,
// returning the entry and the remaining bytes.
func DecodeMetaEntry(b []byte) (MetaEntry, []byte, error) {
	if len(b) < 4+8*3 {
		return MetaEntry{}, b, fmt.Errorf("%w: metadata entry header", ErrBadMessage)
	}
	e := MetaEntry{
		Node:      model.NodeID(binary.LittleEndian.Uint32(b)),
		Lambda:    f64(b[4:]),
		P:         f64(b[12:]),
		Timestamp: f64(b[20:]),
	}
	var err error
	e.Photos, b, err = model.DecodePhotoList(b[28:])
	if err != nil {
		return MetaEntry{}, b, fmt.Errorf("%w: metadata entry photos: %v", ErrBadMessage, err)
	}
	return e, b, nil
}

func decodeMetadata(b []byte) (Metadata, error) {
	if len(b) < 4 {
		return Metadata{}, fmt.Errorf("%w: metadata header", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// Never trust the claimed count: each entry needs at least its fixed
	// header, so the body length bounds the real count. A claim the body
	// cannot possibly satisfy fails fast, before any entry decoding; the
	// same bound caps the allocation hint.
	const minEntry = 4 + 8*3 + 4
	if uint64(n)*minEntry > uint64(len(b)) {
		return Metadata{}, fmt.Errorf("%w: metadata claims %d entries with %d bytes", ErrBadMessage, n, len(b))
	}
	capHint := uint32(len(b) / minEntry)
	if n < capHint {
		capHint = n
	}
	out := Metadata{Entries: make([]MetaEntry, 0, capHint)}
	for i := uint32(0); i < n; i++ {
		var (
			e   MetaEntry
			err error
		)
		e, b, err = DecodeMetaEntry(b)
		if err != nil {
			return Metadata{}, fmt.Errorf("metadata entry %d: %w", i, err)
		}
		out.Entries = append(out.Entries, e)
	}
	if len(b) != 0 {
		return Metadata{}, fmt.Errorf("%w: %d trailing metadata bytes", ErrBadMessage, len(b))
	}
	return out, nil
}

// PhotoRequest asks for photos by ID.
type PhotoRequest struct {
	IDs []model.PhotoID
}

// Type implements Message.
func (PhotoRequest) Type() MsgType { return MsgPhotoRequest }

func (r PhotoRequest) appendBody(dst []byte) []byte {
	return AppendPhotoIDs(dst, r.IDs)
}

// AppendPhotoIDs appends a count-prefixed photo-ID list (the PhotoRequest
// and Ack body encoding) to dst. Exported for reuse by the peer's journal
// records.
func AppendPhotoIDs(dst []byte, ids []model.PhotoID) []byte {
	dst = appendU32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = appendU64(dst, uint64(id))
	}
	return dst
}

// DecodePhotoIDs decodes a count-prefixed photo-ID list from the front of
// b, returning the list and the remaining bytes.
func DecodePhotoIDs(b []byte) ([]model.PhotoID, []byte, error) {
	if len(b) < 4 {
		return nil, b, fmt.Errorf("%w: id list header", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(len(b)) < uint64(n)*8 {
		return nil, b, fmt.Errorf("%w: id list claims %d ids with %d bytes", ErrBadMessage, n, len(b))
	}
	out := make([]model.PhotoID, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, model.PhotoID(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out, b[8*n:], nil
}

func decodePhotoRequest(b []byte) (PhotoRequest, error) {
	ids, rest, err := DecodePhotoIDs(b)
	if err != nil {
		return PhotoRequest{}, err
	}
	if len(rest) != 0 {
		return PhotoRequest{}, fmt.Errorf("%w: %d trailing request bytes", ErrBadMessage, len(rest))
	}
	return PhotoRequest{IDs: ids}, nil
}

// PhotoData delivers one photo. Payload carries the (possibly truncated or
// synthetic) image bytes; the coverage model never reads it.
type PhotoData struct {
	Photo   model.Photo
	Payload []byte
}

// Type implements Message.
func (PhotoData) Type() MsgType { return MsgPhotoData }

func (d PhotoData) appendBody(dst []byte) []byte {
	dst = d.Photo.AppendBinary(dst)
	dst = appendU32(dst, uint32(len(d.Payload)))
	return append(dst, d.Payload...)
}

func decodePhotoData(b []byte) (PhotoData, error) {
	photo, rest, err := model.DecodePhoto(b)
	if err != nil {
		return PhotoData{}, fmt.Errorf("%w: photo data: %v", ErrBadMessage, err)
	}
	if len(rest) < 4 {
		return PhotoData{}, fmt.Errorf("%w: payload header", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(len(rest)) != uint64(n) {
		return PhotoData{}, fmt.Errorf("%w: payload claims %d bytes, has %d", ErrBadMessage, n, len(rest))
	}
	out := PhotoData{Photo: photo}
	if n > 0 {
		out.Payload = append([]byte(nil), rest...)
	}
	return out, nil
}

// Ack acknowledges photo receipt.
type Ack struct {
	IDs []model.PhotoID
}

// Type implements Message.
func (Ack) Type() MsgType { return MsgAck }

func (a Ack) appendBody(dst []byte) []byte {
	return PhotoRequest{IDs: a.IDs}.appendBody(dst)
}

// Bye closes the contact.
type Bye struct{}

// Type implements Message.
func (Bye) Type() MsgType { return MsgBye }

func (Bye) appendBody(dst []byte) []byte { return dst }

// MaxChunks bounds the chunk count a single photo may be split into; a
// hostile geometry claiming more is rejected before any bitmap allocation.
const MaxChunks = 1 << 24

// chunkCount returns the canonical number of chunks for a payload of total
// bytes at the given chunk size: ceil(total/size), but at least one (an
// empty payload still travels as a single empty chunk carrying the
// metadata).
func chunkCount(total uint64, size uint32) uint64 {
	if total == 0 || size == 0 {
		return 1
	}
	n := total / uint64(size)
	if total%uint64(size) != 0 {
		n++
	}
	return n
}

// ChunkCount is chunkCount for callers outside the package (the transfer
// store and the peer's send planner share the wire's geometry).
func ChunkCount(total int64, size int) int {
	if total < 0 {
		return 1
	}
	return int(chunkCount(uint64(total), uint32(size)))
}

// chunkGeometry validates the shared (index, count, size, total) header of
// chunks and resume entries: the count must be the canonical chunk count
// for the claimed total, and bounded by MaxChunks.
func chunkGeometry(count, size uint32, total uint64) error {
	if size == 0 {
		return fmt.Errorf("%w: zero chunk size", ErrBadMessage)
	}
	if count == 0 || uint64(count) > MaxChunks {
		return fmt.Errorf("%w: chunk count %d", ErrBadMessage, count)
	}
	if want := chunkCount(total, size); uint64(count) != want {
		return fmt.Errorf("%w: %d chunks for %d bytes at size %d (want %d)",
			ErrBadMessage, count, total, size, want)
	}
	return nil
}

// chunkDataLen returns the exact payload length of chunk index within the
// given geometry: full chunks except for the (possibly short) final one.
func chunkDataLen(index, count, size uint32, total uint64) uint64 {
	if index < count-1 {
		return uint64(size)
	}
	return total - uint64(count-1)*uint64(size)
}

// Chunk delivers one slice of a photo's payload. Every chunk carries the
// full photo metadata and transfer geometry, so a receiver can start — or
// resume — reassembly from any chunk arriving from any holder, across
// contacts. PayloadCRC is the CRC-32C of the *whole* assembled payload;
// the receiver admits the photo only after the final chunk lands and the
// checksum verifies.
type Chunk struct {
	Photo model.Photo
	// Index is this chunk's position, 0-based.
	Index uint32
	// Count is the total number of chunks (canonical for Total/ChunkSize).
	Count uint32
	// ChunkSize is the transfer's chunk size in bytes.
	ChunkSize uint32
	// Total is the whole payload length in bytes.
	Total uint64
	// PayloadCRC is the CRC-32C (Castagnoli) of the whole payload.
	PayloadCRC uint32
	// Data is this chunk's slice of the payload.
	Data []byte
}

// Type implements Message.
func (Chunk) Type() MsgType { return MsgChunk }

func (c Chunk) appendBody(dst []byte) []byte { return AppendChunk(dst, c) }

// AppendChunk appends the binary encoding of one chunk (the MsgChunk body)
// to dst. Exported so the peer's fragment journal records reuse the wire
// layout, exactly as AppendMetaEntry does for metadata.
func AppendChunk(dst []byte, c Chunk) []byte {
	dst = c.Photo.AppendBinary(dst)
	dst = appendU32(dst, c.Index)
	dst = appendU32(dst, c.Count)
	dst = appendU32(dst, c.ChunkSize)
	dst = appendU64(dst, c.Total)
	dst = appendU32(dst, c.PayloadCRC)
	return append(dst, c.Data...)
}

// DecodeChunk decodes one chunk from b, validating the transfer geometry:
// the count must be canonical for (Total, ChunkSize), the index in range,
// and the data length exactly the slice the geometry dictates.
func DecodeChunk(b []byte) (Chunk, error) {
	photo, rest, err := model.DecodePhoto(b)
	if err != nil {
		return Chunk{}, fmt.Errorf("%w: chunk photo: %v", ErrBadMessage, err)
	}
	if len(rest) < 4+4+4+8+4 {
		return Chunk{}, fmt.Errorf("%w: chunk header", ErrBadMessage)
	}
	c := Chunk{
		Photo:      photo,
		Index:      binary.LittleEndian.Uint32(rest),
		Count:      binary.LittleEndian.Uint32(rest[4:]),
		ChunkSize:  binary.LittleEndian.Uint32(rest[8:]),
		Total:      binary.LittleEndian.Uint64(rest[12:]),
		PayloadCRC: binary.LittleEndian.Uint32(rest[20:]),
	}
	rest = rest[24:]
	if err := chunkGeometry(c.Count, c.ChunkSize, c.Total); err != nil {
		return Chunk{}, err
	}
	if c.Index >= c.Count {
		return Chunk{}, fmt.Errorf("%w: chunk index %d of %d", ErrBadMessage, c.Index, c.Count)
	}
	if want := chunkDataLen(c.Index, c.Count, c.ChunkSize, c.Total); uint64(len(rest)) != want {
		return Chunk{}, fmt.Errorf("%w: chunk %d carries %d bytes, want %d",
			ErrBadMessage, c.Index, len(rest), want)
	}
	if len(rest) > 0 {
		c.Data = append([]byte(nil), rest...)
	}
	return c, nil
}

// ChunkAck acknowledges one received (and durably recorded) chunk; the
// sender clocks its window off these.
type ChunkAck struct {
	ID    model.PhotoID
	Index uint32
}

// Type implements Message.
func (ChunkAck) Type() MsgType { return MsgChunkAck }

func (a ChunkAck) appendBody(dst []byte) []byte {
	dst = appendU64(dst, uint64(a.ID))
	return appendU32(dst, a.Index)
}

func decodeChunkAck(b []byte) (ChunkAck, error) {
	if len(b) != 12 {
		return ChunkAck{}, fmt.Errorf("%w: chunk ack body %d bytes", ErrBadMessage, len(b))
	}
	return ChunkAck{
		ID:    model.PhotoID(binary.LittleEndian.Uint64(b)),
		Index: binary.LittleEndian.Uint32(b[8:]),
	}, nil
}

// ResumeEntry is one photo's partial reassembly state: which chunks of
// which geometry the receiver already holds. The sender resumes from the
// complement iff its own payload matches the recorded (Total, PayloadCRC);
// otherwise it restarts from chunk zero with fresh geometry.
type ResumeEntry struct {
	ID         model.PhotoID
	ChunkSize  uint32
	Count      uint32
	Total      uint64
	PayloadCRC uint32
	// Bitmap has bit i (LSB-first within each byte) set iff chunk i is
	// already held; its length is exactly ceil(Count/8) with the trailing
	// slack bits zero.
	Bitmap []byte
}

// AppendResumeEntry appends the binary encoding of one resume entry (the
// element encoding of a ResumeOffer body) to dst.
func AppendResumeEntry(dst []byte, e ResumeEntry) []byte {
	dst = appendU64(dst, uint64(e.ID))
	dst = appendU32(dst, e.ChunkSize)
	dst = appendU32(dst, e.Count)
	dst = appendU64(dst, e.Total)
	dst = appendU32(dst, e.PayloadCRC)
	return append(dst, e.Bitmap...)
}

// DecodeResumeEntry decodes one resume entry from the front of b,
// returning the entry and the remaining bytes.
func DecodeResumeEntry(b []byte) (ResumeEntry, []byte, error) {
	if len(b) < 8+4+4+8+4 {
		return ResumeEntry{}, b, fmt.Errorf("%w: resume entry header", ErrBadMessage)
	}
	e := ResumeEntry{
		ID:         model.PhotoID(binary.LittleEndian.Uint64(b)),
		ChunkSize:  binary.LittleEndian.Uint32(b[8:]),
		Count:      binary.LittleEndian.Uint32(b[12:]),
		Total:      binary.LittleEndian.Uint64(b[16:]),
		PayloadCRC: binary.LittleEndian.Uint32(b[24:]),
	}
	b = b[28:]
	if err := chunkGeometry(e.Count, e.ChunkSize, e.Total); err != nil {
		return ResumeEntry{}, b, err
	}
	n := (int(e.Count) + 7) / 8
	if len(b) < n {
		return ResumeEntry{}, b, fmt.Errorf("%w: resume bitmap %d bytes, want %d", ErrBadMessage, len(b), n)
	}
	e.Bitmap = append([]byte(nil), b[:n]...)
	if slack := uint(n*8) - uint(e.Count); slack > 0 {
		if e.Bitmap[n-1]>>(8-slack) != 0 {
			return ResumeEntry{}, b, fmt.Errorf("%w: resume bitmap slack bits set", ErrBadMessage)
		}
	}
	return e, b[n:], nil
}

// ResumeOffer lists the receiver's partial state for photos it is about to
// receive. Sent by the requester immediately after its PhotoRequest (and
// by the command center in reply to an upload announcement).
type ResumeOffer struct {
	Entries []ResumeEntry
}

// Type implements Message.
func (ResumeOffer) Type() MsgType { return MsgResumeOffer }

func (o ResumeOffer) appendBody(dst []byte) []byte {
	dst = appendU32(dst, uint32(len(o.Entries)))
	for _, e := range o.Entries {
		dst = AppendResumeEntry(dst, e)
	}
	return dst
}

func decodeResumeOffer(b []byte) (ResumeOffer, error) {
	if len(b) < 4 {
		return ResumeOffer{}, fmt.Errorf("%w: resume offer header", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// As with metadata, the claimed count never drives allocation, and an
	// impossible claim fails before any entry decoding: each entry needs
	// at least its fixed header plus one bitmap byte.
	const minEntry = 28 + 1
	if uint64(n)*minEntry > uint64(len(b)) {
		return ResumeOffer{}, fmt.Errorf("%w: offer claims %d entries with %d bytes", ErrBadMessage, n, len(b))
	}
	capHint := uint32(len(b) / minEntry)
	if n < capHint {
		capHint = n
	}
	out := ResumeOffer{Entries: make([]ResumeEntry, 0, capHint)}
	for i := uint32(0); i < n; i++ {
		var (
			e   ResumeEntry
			err error
		)
		e, b, err = DecodeResumeEntry(b)
		if err != nil {
			return ResumeOffer{}, fmt.Errorf("resume entry %d: %w", i, err)
		}
		out.Entries = append(out.Entries, e)
	}
	if len(b) != 0 {
		return ResumeOffer{}, fmt.Errorf("%w: %d trailing offer bytes", ErrBadMessage, len(b))
	}
	return out, nil
}

// Write serialises one message as a frame (with its checksum trailer).
// Header, body, and trailer go out in a single Write call: one syscall per
// frame, and no zero-length body writes (which block forever on fully
// synchronous transports like net.Pipe).
func Write(w io.Writer, msg Message) error {
	frame := msg.appendBody(make([]byte, 5))
	body := len(frame) - 5
	if body > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, body)
	}
	binary.LittleEndian.PutUint32(frame[:4], uint32(body))
	frame[4] = byte(msg.Type())
	frame = appendU32(frame, crc32.Checksum(frame[4:], crcTable))
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// Read decodes the next frame, verifying its checksum before any decoding.
// The declared length is validated against MaxFrame before allocating.
func Read(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	buf := make([]byte, n+4) // body + checksum trailer
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	body, trailer := buf[:n], buf[n:]
	sum := crc32.Update(crc32.Checksum(hdr[4:], crcTable), crcTable, body)
	if got := binary.LittleEndian.Uint32(trailer); got != sum {
		return nil, fmt.Errorf("%w: got %08x, computed %08x", ErrChecksum, got, sum)
	}
	return DecodeBody(MsgType(hdr[4]), body)
}

// DecodeBody decodes a message body of the given type — the frame-free
// half of Read, exported so checksummed containers other than the stream
// framing (journal records, fuzzers) can reuse the message codecs. It
// never panics on malformed input; it returns ErrBadMessage instead.
func DecodeBody(t MsgType, body []byte) (Message, error) {
	switch t {
	case MsgHello:
		return retErr(decodeHello(body))
	case MsgMetadata:
		return retErr(decodeMetadata(body))
	case MsgPhotoRequest:
		return retErr(decodePhotoRequest(body))
	case MsgPhotoData:
		return retErr(decodePhotoData(body))
	case MsgAck:
		req, err := decodePhotoRequest(body)
		if err != nil {
			return nil, err
		}
		return Ack{IDs: req.IDs}, nil
	case MsgBye:
		if len(body) != 0 {
			return nil, fmt.Errorf("%w: bye with body", ErrBadMessage)
		}
		return Bye{}, nil
	case MsgHelloAck:
		return retErr(decodeHelloAck(body))
	case MsgChunk:
		return retErr(DecodeChunk(body))
	case MsgChunkAck:
		return retErr(decodeChunkAck(body))
	case MsgResumeOffer:
		return retErr(decodeResumeOffer(body))
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadMessage, t)
	}
}

// retErr adapts a concrete (value, error) pair to (Message, error).
func retErr[M Message](m M, err error) (Message, error) {
	if err != nil {
		return nil, err
	}
	return m, nil
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func f64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
