// Package wire defines the binary contact protocol two nodes speak when
// they meet — the live counterpart of the simulator's contact sessions and
// the transport the Android prototype would use over Bluetooth/Wi-Fi
// Direct.
//
// Every message is a frame:
//
//	[4-byte little-endian body length][1-byte message type][body]
//	[4-byte little-endian CRC-32C of type byte + body]
//
// The checksum trailer detects frames corrupted in flight (disaster-area
// radio links are lossy); Read rejects mismatches with ErrChecksum before
// any decoding happens. The declared body length is bounds-checked against
// MaxFrame before any allocation, so a hostile or corrupt length field
// cannot trigger huge allocations.
//
// Bodies are fixed layouts built from the model package's binary photo
// codec. The protocol is symmetric and runs in rounds; see package peer for
// the session state machine.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"photodtn/internal/model"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Message types.
const (
	// MsgHello opens a contact: identity, learned rate, delivery
	// probability, local time, and a nonce for deterministic joint
	// computations.
	MsgHello MsgType = iota + 1
	// MsgMetadata carries metadata cache entries (including the sender's
	// own collection as the first entry).
	MsgMetadata
	// MsgPhotoRequest asks the peer for the listed photos.
	MsgPhotoRequest
	// MsgPhotoData delivers one photo: metadata plus (optionally) payload
	// bytes standing in for the image file.
	MsgPhotoData
	// MsgAck acknowledges received photos (the command center's delivery
	// ACK).
	MsgAck
	// MsgBye closes the contact.
	MsgBye
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgMetadata:
		return "Metadata"
	case MsgPhotoRequest:
		return "PhotoRequest"
	case MsgPhotoData:
		return "PhotoData"
	case MsgAck:
		return "Ack"
	case MsgBye:
		return "Bye"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// MaxFrame bounds a frame body; larger frames are rejected as corrupt.
const MaxFrame = 64 << 20

// Protocol errors.
var (
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrame")
	ErrBadMessage  = errors.New("wire: malformed message")
	ErrChecksum    = errors.New("wire: frame checksum mismatch")
)

// crcTable is the Castagnoli polynomial (hardware-accelerated on most
// platforms) used for the per-frame checksum.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Message is any protocol message.
type Message interface {
	// Type returns the message type tag.
	Type() MsgType
	// appendBody serialises the body.
	appendBody(dst []byte) []byte
}

// Hello opens a contact.
type Hello struct {
	Node model.NodeID
	// Lambda is the sender's learned aggregate contact rate λ (per second).
	Lambda float64
	// DeliveryProb is the sender's PROPHET probability of reaching the
	// command center.
	DeliveryProb float64
	// Time is the sender's clock in seconds.
	Time float64
	// Nonce seeds joint deterministic computations for this contact.
	Nonce uint64
	// Capacity is the sender's storage capacity in bytes.
	Capacity int64
}

// Type implements Message.
func (Hello) Type() MsgType { return MsgHello }

func (h Hello) appendBody(dst []byte) []byte {
	dst = appendU32(dst, uint32(h.Node))
	dst = appendF64(dst, h.Lambda)
	dst = appendF64(dst, h.DeliveryProb)
	dst = appendF64(dst, h.Time)
	dst = appendU64(dst, h.Nonce)
	return appendU64(dst, uint64(h.Capacity))
}

func decodeHello(b []byte) (Hello, error) {
	if len(b) != 4+8*5 {
		return Hello{}, fmt.Errorf("%w: hello body %d bytes", ErrBadMessage, len(b))
	}
	return Hello{
		Node:         model.NodeID(binary.LittleEndian.Uint32(b)),
		Lambda:       f64(b[4:]),
		DeliveryProb: f64(b[12:]),
		Time:         f64(b[20:]),
		Nonce:        binary.LittleEndian.Uint64(b[28:]),
		Capacity:     int64(binary.LittleEndian.Uint64(b[36:])),
	}, nil
}

// MetaEntry is one metadata snapshot on the wire.
type MetaEntry struct {
	Node      model.NodeID
	Lambda    float64
	P         float64
	Timestamp float64
	Photos    model.PhotoList
}

// Metadata carries cache entries; by convention the sender's own collection
// is the first entry.
type Metadata struct {
	Entries []MetaEntry
}

// Type implements Message.
func (Metadata) Type() MsgType { return MsgMetadata }

func (m Metadata) appendBody(dst []byte) []byte {
	dst = appendU32(dst, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		dst = AppendMetaEntry(dst, e)
	}
	return dst
}

// AppendMetaEntry appends the binary encoding of one metadata entry (the
// element encoding of a Metadata body) to dst. It is exported so other
// durable encodings — the peer's write-ahead journal records — reuse the
// wire layout instead of inventing a second one.
func AppendMetaEntry(dst []byte, e MetaEntry) []byte {
	dst = appendU32(dst, uint32(e.Node))
	dst = appendF64(dst, e.Lambda)
	dst = appendF64(dst, e.P)
	dst = appendF64(dst, e.Timestamp)
	return e.Photos.AppendBinary(dst)
}

// DecodeMetaEntry decodes one metadata entry from the front of b,
// returning the entry and the remaining bytes.
func DecodeMetaEntry(b []byte) (MetaEntry, []byte, error) {
	if len(b) < 4+8*3 {
		return MetaEntry{}, b, fmt.Errorf("%w: metadata entry header", ErrBadMessage)
	}
	e := MetaEntry{
		Node:      model.NodeID(binary.LittleEndian.Uint32(b)),
		Lambda:    f64(b[4:]),
		P:         f64(b[12:]),
		Timestamp: f64(b[20:]),
	}
	var err error
	e.Photos, b, err = model.DecodePhotoList(b[28:])
	if err != nil {
		return MetaEntry{}, b, fmt.Errorf("%w: metadata entry photos: %v", ErrBadMessage, err)
	}
	return e, b, nil
}

func decodeMetadata(b []byte) (Metadata, error) {
	if len(b) < 4 {
		return Metadata{}, fmt.Errorf("%w: metadata header", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// Never trust the claimed count for allocation: each entry needs at
	// least its fixed header, so the body length bounds the real count.
	const minEntry = 4 + 8*3 + 4
	capHint := uint32(len(b) / minEntry)
	if n < capHint {
		capHint = n
	}
	out := Metadata{Entries: make([]MetaEntry, 0, capHint)}
	for i := uint32(0); i < n; i++ {
		var (
			e   MetaEntry
			err error
		)
		e, b, err = DecodeMetaEntry(b)
		if err != nil {
			return Metadata{}, fmt.Errorf("metadata entry %d: %w", i, err)
		}
		out.Entries = append(out.Entries, e)
	}
	if len(b) != 0 {
		return Metadata{}, fmt.Errorf("%w: %d trailing metadata bytes", ErrBadMessage, len(b))
	}
	return out, nil
}

// PhotoRequest asks for photos by ID.
type PhotoRequest struct {
	IDs []model.PhotoID
}

// Type implements Message.
func (PhotoRequest) Type() MsgType { return MsgPhotoRequest }

func (r PhotoRequest) appendBody(dst []byte) []byte {
	return AppendPhotoIDs(dst, r.IDs)
}

// AppendPhotoIDs appends a count-prefixed photo-ID list (the PhotoRequest
// and Ack body encoding) to dst. Exported for reuse by the peer's journal
// records.
func AppendPhotoIDs(dst []byte, ids []model.PhotoID) []byte {
	dst = appendU32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = appendU64(dst, uint64(id))
	}
	return dst
}

// DecodePhotoIDs decodes a count-prefixed photo-ID list from the front of
// b, returning the list and the remaining bytes.
func DecodePhotoIDs(b []byte) ([]model.PhotoID, []byte, error) {
	if len(b) < 4 {
		return nil, b, fmt.Errorf("%w: id list header", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(len(b)) < uint64(n)*8 {
		return nil, b, fmt.Errorf("%w: id list claims %d ids with %d bytes", ErrBadMessage, n, len(b))
	}
	out := make([]model.PhotoID, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, model.PhotoID(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out, b[8*n:], nil
}

func decodePhotoRequest(b []byte) (PhotoRequest, error) {
	ids, rest, err := DecodePhotoIDs(b)
	if err != nil {
		return PhotoRequest{}, err
	}
	if len(rest) != 0 {
		return PhotoRequest{}, fmt.Errorf("%w: %d trailing request bytes", ErrBadMessage, len(rest))
	}
	return PhotoRequest{IDs: ids}, nil
}

// PhotoData delivers one photo. Payload carries the (possibly truncated or
// synthetic) image bytes; the coverage model never reads it.
type PhotoData struct {
	Photo   model.Photo
	Payload []byte
}

// Type implements Message.
func (PhotoData) Type() MsgType { return MsgPhotoData }

func (d PhotoData) appendBody(dst []byte) []byte {
	dst = d.Photo.AppendBinary(dst)
	dst = appendU32(dst, uint32(len(d.Payload)))
	return append(dst, d.Payload...)
}

func decodePhotoData(b []byte) (PhotoData, error) {
	photo, rest, err := model.DecodePhoto(b)
	if err != nil {
		return PhotoData{}, fmt.Errorf("%w: photo data: %v", ErrBadMessage, err)
	}
	if len(rest) < 4 {
		return PhotoData{}, fmt.Errorf("%w: payload header", ErrBadMessage)
	}
	n := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(len(rest)) != uint64(n) {
		return PhotoData{}, fmt.Errorf("%w: payload claims %d bytes, has %d", ErrBadMessage, n, len(rest))
	}
	out := PhotoData{Photo: photo}
	if n > 0 {
		out.Payload = append([]byte(nil), rest...)
	}
	return out, nil
}

// Ack acknowledges photo receipt.
type Ack struct {
	IDs []model.PhotoID
}

// Type implements Message.
func (Ack) Type() MsgType { return MsgAck }

func (a Ack) appendBody(dst []byte) []byte {
	return PhotoRequest{IDs: a.IDs}.appendBody(dst)
}

// Bye closes the contact.
type Bye struct{}

// Type implements Message.
func (Bye) Type() MsgType { return MsgBye }

func (Bye) appendBody(dst []byte) []byte { return dst }

// Write serialises one message as a frame (with its checksum trailer).
// Header, body, and trailer go out in a single Write call: one syscall per
// frame, and no zero-length body writes (which block forever on fully
// synchronous transports like net.Pipe).
func Write(w io.Writer, msg Message) error {
	frame := msg.appendBody(make([]byte, 5))
	body := len(frame) - 5
	if body > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooBig, body)
	}
	binary.LittleEndian.PutUint32(frame[:4], uint32(body))
	frame[4] = byte(msg.Type())
	frame = appendU32(frame, crc32.Checksum(frame[4:], crcTable))
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// Read decodes the next frame, verifying its checksum before any decoding.
// The declared length is validated against MaxFrame before allocating.
func Read(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, n)
	}
	buf := make([]byte, n+4) // body + checksum trailer
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	body, trailer := buf[:n], buf[n:]
	sum := crc32.Update(crc32.Checksum(hdr[4:], crcTable), crcTable, body)
	if got := binary.LittleEndian.Uint32(trailer); got != sum {
		return nil, fmt.Errorf("%w: got %08x, computed %08x", ErrChecksum, got, sum)
	}
	return DecodeBody(MsgType(hdr[4]), body)
}

// DecodeBody decodes a message body of the given type — the frame-free
// half of Read, exported so checksummed containers other than the stream
// framing (journal records, fuzzers) can reuse the message codecs. It
// never panics on malformed input; it returns ErrBadMessage instead.
func DecodeBody(t MsgType, body []byte) (Message, error) {
	switch t {
	case MsgHello:
		return retErr(decodeHello(body))
	case MsgMetadata:
		return retErr(decodeMetadata(body))
	case MsgPhotoRequest:
		return retErr(decodePhotoRequest(body))
	case MsgPhotoData:
		return retErr(decodePhotoData(body))
	case MsgAck:
		req, err := decodePhotoRequest(body)
		if err != nil {
			return nil, err
		}
		return Ack{IDs: req.IDs}, nil
	case MsgBye:
		if len(body) != 0 {
			return nil, fmt.Errorf("%w: bye with body", ErrBadMessage)
		}
		return Bye{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadMessage, t)
	}
}

// retErr adapts a concrete (value, error) pair to (Message, error).
func retErr[M Message](m M, err error) (Message, error) {
	if err != nil {
		return nil, err
	}
	return m, nil
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func f64(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
