package core

import (
	"testing"

	"photodtn/internal/coverage"
	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/sim"
	"photodtn/internal/trace"
)

const mb = int64(1) << 20

func poiMap() *coverage.Map {
	return coverage.NewMap([]model.PoI{model.NewPoI(0, geo.Vec{})}, geo.Radians(30))
}

// viewFrom makes a 4 MB photo viewing the PoI at the origin from compass
// angle deg.
func viewFrom(owner model.NodeID, seq uint32, deg float64) model.Photo {
	loc := geo.FromAngle(geo.Radians(deg)).Scale(60)
	return model.Photo{
		ID:          model.MakePhotoID(owner, seq),
		Owner:       owner,
		Location:    loc,
		Range:       120,
		FOV:         geo.Radians(60),
		Orientation: geo.Radians(deg + 180),
		Size:        4 * mb,
	}
}

func farAway(owner model.NodeID, seq uint32) model.Photo {
	p := viewFrom(owner, seq, 0)
	p.Location = geo.Vec{X: 1e6, Y: 1e6}
	return p
}

func runScheme(t *testing.T, cfg sim.Config, s sim.Scheme) *sim.Result {
	t.Helper()
	res, err := sim.Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNames(t *testing.T) {
	if got := New(DefaultConfig()).Name(); got != "OurScheme" {
		t.Fatalf("Name = %q", got)
	}
	cfg := DefaultConfig()
	cfg.DisableMetadata = true
	if got := New(cfg).Name(); got != "NoMetadata" {
		t.Fatalf("Name = %q", got)
	}
	if New(DefaultConfig()).Unconstrained() {
		t.Fatal("our scheme must be constrained")
	}
}

func TestUploadToCommandCenter(t *testing.T) {
	tr := &trace.Trace{Nodes: 1, Contacts: []trace.Contact{
		{Start: 100, End: 200, A: 1, B: 0},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 20 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)},
			{Time: 2, Node: 1, Photo: viewFrom(1, 1, 90)},
			{Time: 3, Node: 1, Photo: viewFrom(1, 2, 0)}, // duplicate view
			{Time: 4, Node: 1, Photo: farAway(1, 3)},     // irrelevant
		},
	}
	res := runScheme(t, cfg, New(DefaultConfig()))
	// Only the two useful distinct views are uploaded: the duplicate adds
	// no coverage and the irrelevant photo none at all.
	if res.Final.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", res.Final.Delivered)
	}
	if res.Final.PointFrac != 1 {
		t.Fatalf("point = %v", res.Final.PointFrac)
	}
}

func TestUploadRemovesDeliveredFromStorage(t *testing.T) {
	// After the upload contact the node's delivered photos are gone, so a
	// second CC contact transfers nothing new.
	tr := &trace.Trace{Nodes: 1, Contacts: []trace.Contact{
		{Start: 100, End: 200, A: 1, B: 0},
		{Start: 300, End: 400, A: 1, B: 0},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 20 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)}},
	}
	res := runScheme(t, cfg, New(DefaultConfig()))
	if res.Final.Delivered != 1 {
		t.Fatalf("delivered = %d", res.Final.Delivered)
	}
	if res.TransferredPhotos != 1 {
		t.Fatalf("transfers = %d, want 1 (no re-upload)", res.TransferredPhotos)
	}
}

func TestPeerReallocationSharesViews(t *testing.T) {
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 100, End: 200, A: 1, B: 2},
	}}
	east := viewFrom(1, 0, 0)
	eastDup := viewFrom(2, 0, 0)
	north := viewFrom(2, 1, 90)
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 8 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: east},
			{Time: 2, Node: 2, Photo: eastDup},
			{Time: 3, Node: 2, Photo: north},
		},
	}
	scheme := New(DefaultConfig())
	runScheme(t, cfg, scheme)
	// Both nodes should end with one east view and the north view; the
	// duplicate east view must survive on at most one node.
	stA, stB := scheme.w.Storage(1), scheme.w.Storage(2)
	for _, st := range []*sim.Storage{stA, stB} {
		if st.Len() != 2 {
			t.Fatalf("storage len = %d, want 2", st.Len())
		}
	}
	eastCount := 0
	for _, id := range []model.PhotoID{east.ID, eastDup.ID} {
		if stA.Has(id) {
			eastCount++
		}
		if stB.Has(id) {
			eastCount++
		}
	}
	if eastCount != 2 { // one east view per node, not both dups anywhere
		t.Fatalf("east views across nodes = %d, want 2", eastCount)
	}
	if !stA.Has(north.ID) || !stB.Has(north.ID) {
		t.Fatal("north view should be replicated to both nodes")
	}
}

func TestAckPropagationDropsDelivered(t *testing.T) {
	// Node 1 uploads the east view, then meets node 2 who holds a duplicate
	// east view. With metadata (ACK) the duplicate is dropped; without it,
	// it survives.
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 100, End: 200, A: 1, B: 0},
		{Start: 300, End: 400, A: 1, B: 2},
	}}
	mkCfg := func() sim.Config {
		return sim.Config{
			Trace: tr, Map: poiMap(), StorageBytes: 20 * mb, Seed: 1,
			Photos: []sim.PhotoEvent{
				{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)},
				{Time: 2, Node: 2, Photo: viewFrom(2, 0, 0)},
			},
		}
	}
	withMeta := New(DefaultConfig())
	runScheme(t, mkCfg(), withMeta)
	if withMeta.w.Storage(2).Len() != 0 {
		t.Fatal("with ACK metadata the delivered duplicate must be dropped")
	}

	noMetaCfg := DefaultConfig()
	noMetaCfg.DisableMetadata = true
	noMeta := New(noMetaCfg)
	runScheme(t, mkCfg(), noMeta)
	if noMeta.w.Storage(2).Len() != 1 {
		t.Fatal("without metadata the duplicate should survive")
	}
}

func TestBudgetLimitsRealization(t *testing.T) {
	// Node 2 holds three useful views; node 1 (about to meet the CC soon,
	// but with tiny contact budget) can only receive one of them.
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 100, End: 102, A: 1, B: 2}, // 2 s × 2 MB/s = 4 MB: one photo
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 40 * mb, Bandwidth: 2 * float64(mb), Seed: 1,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 2, Photo: viewFrom(2, 0, 0)},
			{Time: 2, Node: 2, Photo: viewFrom(2, 1, 90)},
			{Time: 3, Node: 2, Photo: viewFrom(2, 2, 180)},
		},
	}
	scheme := New(DefaultConfig())
	res := runScheme(t, cfg, scheme)
	if res.TransferredPhotos != 1 {
		t.Fatalf("transfers = %d, want 1 under a 4 MB budget", res.TransferredPhotos)
	}
	if scheme.w.Storage(1).Len() != 1 {
		t.Fatalf("node 1 photos = %d, want 1", scheme.w.Storage(1).Len())
	}
	// Node 2 keeps everything: its own photos need no transmission.
	if scheme.w.Storage(2).Len() != 3 {
		t.Fatalf("node 2 photos = %d, want 3", scheme.w.Storage(2).Len())
	}
}

func TestOnPhotoEviction(t *testing.T) {
	tr := &trace.Trace{Nodes: 1}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 8 * mb, Seed: 1, Span: 100,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: farAway(1, 0)},      // worthless
			{Time: 2, Node: 1, Photo: viewFrom(1, 1, 0)},  // useful
			{Time: 3, Node: 1, Photo: viewFrom(1, 2, 90)}, // useful: must evict the worthless one
		},
	}
	scheme := New(DefaultConfig())
	runScheme(t, cfg, scheme)
	st := scheme.w.Storage(1)
	if st.Has(model.MakePhotoID(1, 0)) {
		t.Fatal("worthless photo should have been evicted")
	}
	if !st.Has(model.MakePhotoID(1, 1)) || !st.Has(model.MakePhotoID(1, 2)) {
		t.Fatal("useful photos missing")
	}
}

func TestOnPhotoRejectsWorstNewcomer(t *testing.T) {
	tr := &trace.Trace{Nodes: 1}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 8 * mb, Seed: 1, Span: 100,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: viewFrom(1, 0, 0)},
			{Time: 2, Node: 1, Photo: viewFrom(1, 1, 90)},
			{Time: 3, Node: 1, Photo: farAway(1, 2)}, // full storage, worst photo
		},
	}
	scheme := New(DefaultConfig())
	runScheme(t, cfg, scheme)
	st := scheme.w.Storage(1)
	if st.Has(model.MakePhotoID(1, 2)) {
		t.Fatal("worthless newcomer must be rejected")
	}
	if st.Len() != 2 {
		t.Fatalf("storage len = %d", st.Len())
	}
}

func TestOnPhotoOversized(t *testing.T) {
	tr := &trace.Trace{Nodes: 1}
	big := viewFrom(1, 0, 0)
	big.Size = 100 * mb
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 8 * mb, Seed: 1, Span: 10,
		Photos: []sim.PhotoEvent{{Time: 1, Node: 1, Photo: big}},
	}
	scheme := New(DefaultConfig())
	runScheme(t, cfg, scheme)
	if scheme.w.Storage(1).Len() != 0 {
		t.Fatal("oversized photo must be rejected")
	}
}

func TestDeliveryProbabilityOrdering(t *testing.T) {
	// Node 1 regularly meets the CC, node 2 never does. At a 1–2 contact,
	// node 1 must select first (AFirst in the reallocation), observable via
	// its storage priority: with capacity for only one photo each and two
	// available views, node 1 takes the first pick.
	tr := &trace.Trace{Nodes: 2, Contacts: []trace.Contact{
		{Start: 50, End: 60, A: 1, B: 0},
		{Start: 100, End: 110, A: 1, B: 2},
	}}
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 4 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{
			{Time: 70, Node: 2, Photo: viewFrom(2, 0, 0)},
		},
	}
	scheme := New(DefaultConfig())
	runScheme(t, cfg, scheme)
	// Node 1 (gateway-ish) should have pulled the photo; node 2 keeps its
	// copy too (node 1 is not certain to deliver).
	if !scheme.w.Storage(1).Has(model.MakePhotoID(2, 0)) {
		t.Fatal("higher-probability node did not receive the photo")
	}
	p1 := scheme.nodes[1].table.DeliveryProb(200)
	p2 := scheme.nodes[2].table.DeliveryProb(200)
	if p1 <= p2 {
		t.Fatalf("p1 = %v should exceed p2 = %v", p1, p2)
	}
}

func TestMetadataValidityExpires(t *testing.T) {
	// After many contacts node 1's rate estimate is high; a third node's
	// stale metadata must eventually drop from its cache.
	cfgC := DefaultConfig()
	s := New(cfgC)
	tr := &trace.Trace{Nodes: 3, Contacts: []trace.Contact{
		{Start: 100, End: 110, A: 1, B: 3},
		{Start: 200, End: 210, A: 1, B: 3}, // node 3's rate becomes known
		{Start: 300, End: 310, A: 1, B: 2},
		{Start: 400, End: 410, A: 1, B: 2},
		{Start: 1e7, End: 1e7 + 10, A: 1, B: 2}, // far in the future
	}}
	cfg := sim.Config{Trace: tr, Map: poiMap(), StorageBytes: 8 * mb, Seed: 1,
		Photos: []sim.PhotoEvent{{Time: 1, Node: 3, Photo: viewFrom(3, 0, 0)}},
	}
	runScheme(t, cfg, s)
	if _, ok := s.nodes[1].cache.Get(3); ok {
		t.Fatal("stale third-party metadata should have been dropped")
	}
}

func TestMinQualityFilter(t *testing.T) {
	tr := &trace.Trace{Nodes: 1}
	blurry := viewFrom(1, 0, 0)
	blurry.Quality = 0.2
	sharp := viewFrom(1, 1, 90)
	sharp.Quality = 0.9
	unassessed := viewFrom(1, 2, 180) // Quality 0: accepted
	cfg := sim.Config{
		Trace: tr, Map: poiMap(), StorageBytes: 20 * mb, Seed: 1, Span: 10,
		Photos: []sim.PhotoEvent{
			{Time: 1, Node: 1, Photo: blurry},
			{Time: 2, Node: 1, Photo: sharp},
			{Time: 3, Node: 1, Photo: unassessed},
		},
	}
	c := DefaultConfig()
	c.MinQuality = 0.5
	scheme := New(c)
	runScheme(t, cfg, scheme)
	st := scheme.w.Storage(1)
	if st.Has(blurry.ID) {
		t.Fatal("blurry photo must be filtered at capture")
	}
	if !st.Has(sharp.ID) || !st.Has(unassessed.ID) {
		t.Fatal("qualified photos must be stored")
	}
	// With the filter disabled everything is stored.
	scheme2 := New(DefaultConfig())
	runScheme(t, cfg, scheme2)
	if scheme2.w.Storage(1).Len() != 3 {
		t.Fatal("filter disabled but photos missing")
	}
}
