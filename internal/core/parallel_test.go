package core

import (
	"math/rand"
	"reflect"
	"testing"

	"photodtn/internal/coverage"
	"photodtn/internal/geo"
	"photodtn/internal/model"
	"photodtn/internal/sim"
	"photodtn/internal/trace"
	"photodtn/internal/workload"
)

// parallelSimConfig builds a multi-node, multi-contact run dense enough that
// per-contact selection does real work.
func parallelSimConfig(t *testing.T, seed int64) sim.Config {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	wl := workload.Default(6, 4*3600)
	wl.NumPoIs = 40
	wl.Region = geo.Square(1200) // dense: most photos cover some PoI
	wl.PhotosPerHour = 120
	m := coverage.NewMap(workload.GeneratePoIs(wl, rng), geo.Radians(30))
	var photos []sim.PhotoEvent
	for _, e := range workload.GeneratePhotos(wl, rng) {
		photos = append(photos, sim.PhotoEvent{Time: e.Time, Node: e.Photo.Owner, Photo: e.Photo})
	}
	var contacts []trace.Contact
	for time := 600.0; time < 4*3600; time += 700 {
		a := model.NodeID(rng.Intn(wl.Nodes) + 1)
		b := model.NodeID(rng.Intn(wl.Nodes) + 1)
		if a == b {
			continue
		}
		contacts = append(contacts, trace.Contact{Start: time, End: time + 300, A: a, B: b})
	}
	return sim.Config{
		Trace:           &trace.Trace{Nodes: wl.Nodes, Contacts: contacts},
		Map:             m,
		Photos:          photos,
		StorageBytes:    60 * mb,
		Gateways:        []model.NodeID{1},
		GatewayInterval: 3600,
		SampleInterval:  3600,
		Seed:            seed,
	}
}

// TestParallelSelectionIdentical runs the same simulation with the parallel
// gain scan off and on (threshold forced to 1 so workers engage even on
// small pools) and requires bit-identical results — the determinism contract
// of the parallel scan.
func TestParallelSelectionIdentical(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		cfg := parallelSimConfig(t, seed)

		serial := runScheme(t, cfg, New(DefaultConfig()))

		parCfg := cfg
		parCfg.ParallelSelection = true
		scheme := DefaultConfig()
		scheme.Selection.ParallelThreshold = 1
		parallel := runScheme(t, parCfg, New(scheme))

		if serial.Final.Delivered == 0 {
			t.Fatalf("seed %d: degenerate run, nothing delivered", seed)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("seed %d: parallel selection diverged\nserial:   %+v\nparallel: %+v",
				seed, serial.Final, parallel.Final)
		}
	}
}
