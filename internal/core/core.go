// Package core implements the paper's resource-aware photo crowdsourcing
// framework as a simulation scheme: the distributed protocol a participant
// runs at every contact.
//
// At a peer contact the two nodes (1) exchange PROPHET beacons and update
// delivery predictabilities, (2) exchange and gossip photo metadata
// (§III-B), (3) jointly compute the greedy photo reallocation that
// maximises expected coverage (§III-C/D), and (4) realise it by
// transferring photos in selection order under the contact's bandwidth
// budget, discarding whatever the contact is too short to finish.
//
// At a gateway contact with the command center the node learns the command
// center's collection (the acknowledgement view), uploads its photos in
// marginal-gain order, and frees the storage of everything delivered.
package core

import (
	"photodtn/internal/metadata"
	"photodtn/internal/model"
	"photodtn/internal/obs"
	"photodtn/internal/prophet"
	"photodtn/internal/selection"
	"photodtn/internal/sim"

	"photodtn/internal/coverage"
)

// Config tunes the framework.
type Config struct {
	// Selection configures expected-coverage evaluation.
	Selection selection.Config
	// Prophet configures delivery predictability.
	Prophet prophet.Config
	// Pthld is the metadata validity threshold of eq. (1).
	Pthld float64
	// DisableMetadata turns off metadata caching and management entirely —
	// the NoMetadata baseline of §V-B. Contacts then optimise using only
	// the two live collections.
	DisableMetadata bool
	// MinQuality implements the §II-C quality discussion as a binary
	// threshold: assessed photos (Quality > 0) below it are rejected at
	// capture, before they ever enter the coverage model. Zero disables
	// the filter.
	MinQuality float64
}

// DefaultConfig returns the Table I configuration.
func DefaultConfig() Config {
	return Config{
		Selection: selection.DefaultConfig(),
		Prophet:   prophet.DefaultConfig(),
		Pthld:     metadata.DefaultPthld,
	}
}

// nodeState is the per-node protocol state.
type nodeState struct {
	cache *metadata.Cache
	rate  *metadata.RateEstimator
	table *prophet.Table
}

// Scheme is the framework as a sim.Scheme. Create it with New.
type Scheme struct {
	cfg   Config
	name  string
	w     *sim.World
	nodes []*nodeState
	solo  map[model.PhotoID]coverage.Coverage
	fpc   *coverage.FootprintCache
	// sel is the scheme's selection arena: pools, heaps, residuals, and
	// scenario buffers are recycled across every contact of the run.
	sel *selection.Session

	// Observability (all nil — no-ops — when the world has no observer).
	obsv           *obs.Observer
	cInvalidations *obs.Counter
	hTableAge      *obs.Histogram
}

var _ sim.Scheme = (*Scheme)(nil)

// New returns the full framework ("OurScheme").
func New(cfg Config) *Scheme {
	name := "OurScheme"
	if cfg.DisableMetadata {
		name = "NoMetadata"
	}
	return &Scheme{cfg: cfg, name: name}
}

// Name implements sim.Scheme.
func (s *Scheme) Name() string { return s.name }

// Unconstrained implements sim.Scheme.
func (s *Scheme) Unconstrained() bool { return false }

// Init implements sim.Scheme.
func (s *Scheme) Init(w *sim.World) {
	s.w = w
	s.cfg.Selection.Parallel = s.cfg.Selection.Parallel || w.ParallelSelection
	s.solo = make(map[model.PhotoID]coverage.Coverage)
	s.fpc = coverage.NewFootprintCache(w.Map)
	s.sel = selection.NewSession()
	o := w.Obs()
	s.obsv = o
	s.cfg.Selection.Metrics = selection.ObserverMetrics(o)
	s.cInvalidations = o.Counter("metadata.invalidations")
	s.hTableAge = o.Histogram("prophet.table_age_sec")
	s.fpc.SetMetrics(o.Counter("coverage.fp_cache_hits"), o.Counter("coverage.fp_cache_misses"))
	s.nodes = make([]*nodeState, w.NumNodes()+1)
	for i := range s.nodes {
		s.nodes[i] = &nodeState{
			cache: metadata.NewCache(model.NodeID(i), s.cfg.Pthld),
			rate:  metadata.NewRateEstimator(),
			table: prophet.NewTable(model.NodeID(i), s.cfg.Prophet),
		}
	}
}

// soloCoverage returns the (cached) standalone coverage of a photo; it is
// constant for a fixed PoI map.
func (s *Scheme) soloCoverage(p model.Photo) coverage.Coverage {
	if c, ok := s.solo[p.ID]; ok {
		return c
	}
	c := s.w.Map.SoloCoverage(p)
	s.solo[p.ID] = c
	return c
}

// OnPhoto implements sim.Scheme. A newly taken photo is stored if it fits;
// when the storage is full, the photos with the least standalone coverage
// (including possibly the new one) are evicted until it fits.
func (s *Scheme) OnPhoto(node model.NodeID, p model.Photo) {
	if s.cfg.MinQuality > 0 && p.Quality > 0 && p.Quality < s.cfg.MinQuality {
		return // unqualified photo: filtered before the model sees it
	}
	st := s.w.Storage(node)
	if p.Size > st.Capacity() {
		return
	}
	for p.Size > st.Free() {
		victim := s.lowestSolo(st, p)
		if victim == p.ID {
			return // the new photo is the least valuable: reject it
		}
		st.Remove(victim)
	}
	_ = st.Add(p) // fits by construction; duplicate IDs cannot occur
}

// lowestSolo returns the stored photo (or the incoming one) with the least
// standalone coverage, ties broken by ID for determinism. It scans the
// storage in place (no copy): the minimum is order-independent, and the
// caller only mutates the storage after the scan returns.
func (s *Scheme) lowestSolo(st *sim.Storage, incoming model.Photo) model.PhotoID {
	bestID := incoming.ID
	bestCov := s.soloCoverage(incoming)
	for _, q := range st.Photos() {
		c := s.soloCoverage(q)
		if c.Less(bestCov) || (c.Cmp(bestCov) == 0 && q.ID < bestID) {
			bestID, bestCov = q.ID, c
		}
	}
	return bestID
}

// OnContact implements sim.Scheme.
func (s *Scheme) OnContact(sess *sim.Session) {
	switch {
	case sess.A.IsCommandCenter():
		s.ccContact(sess, sess.B)
	case sess.B.IsCommandCenter():
		s.ccContact(sess, sess.A)
	default:
		s.peerContact(sess)
	}
}

// ccContact handles a gateway node meeting the command center.
func (s *Scheme) ccContact(sess *sim.Session, node model.NodeID) {
	now := sess.Time
	ns := s.nodes[node]
	ns.rate.Observe(model.CommandCenter, now)
	prophet.Exchange(ns.table, s.nodes[model.CommandCenter].table, now)

	// Upload photos in marginal-gain order over what the command center
	// already has (live knowledge during the contact).
	st := s.w.Storage(node)
	plan := s.sel.SelectForUpload(s.fpc, s.selCfg(), s.w.CCPhotos(), st.List())
	for _, p := range plan {
		if err := sess.Transfer(model.CommandCenter, p); err != nil {
			break // budget exhausted; unfinished transfer discarded
		}
		st.Remove(p.ID) // delivered: the copy here has no further value
	}

	if !s.cfg.DisableMetadata {
		// The command center's collection is the acknowledgement view.
		ns.cache.Put(metadata.Entry{
			Node:      model.CommandCenter,
			Photos:    s.w.CCPhotos().Clone(),
			Timestamp: now,
		})
	}
}

// peerContact handles a contact between two participants.
func (s *Scheme) peerContact(sess *sim.Session) {
	now := sess.Time
	a, b := sess.A, sess.B
	nsA, nsB := s.nodes[a], s.nodes[b]
	nsA.rate.Observe(b, now)
	nsB.rate.Observe(a, now)
	s.hTableAge.Observe(now - nsA.table.LastAged())
	s.hTableAge.Observe(now - nsB.table.LastAged())
	prophet.Exchange(nsA.table, nsB.table, now)
	pa := nsA.table.DeliveryProb(now)
	pb := nsB.table.DeliveryProb(now)

	stA, stB := s.w.Storage(a), s.w.Storage(b)
	photosA, photosB := stA.List(), stB.List()

	var (
		ccPhotos   model.PhotoList
		background []selection.Participant
	)
	if !s.cfg.DisableMetadata {
		// Gossip caches both ways, then snapshot each other.
		nsA.cache.MergeFrom(nsB.cache)
		nsB.cache.MergeFrom(nsA.cache)
		nsA.cache.Put(metadata.Entry{
			Node: b, Photos: photosB, Lambda: nsB.rate.Rate(now), P: pb, Timestamp: now,
		})
		nsB.cache.Put(metadata.Entry{
			Node: a, Photos: photosA, Lambda: nsA.rate.Rate(now), P: pa, Timestamp: now,
		})
		da := nsA.cache.DropInvalid(now)
		db := nsB.cache.DropInvalid(now)
		s.cInvalidations.Add(int64(da + db))
		if s.obsv != nil {
			if da > 0 {
				s.obsv.Emit(obs.Event{Time: now, Kind: obs.EvMetadataStaled,
					A: int32(a), B: obs.NoNode, Photo: obs.NoPhoto, Value: float64(da)})
			}
			if db > 0 {
				s.obsv.Emit(obs.Event{Time: now, Kind: obs.EvMetadataStaled,
					A: int32(b), B: obs.NoNode, Photo: obs.NoPhoto, Value: float64(db)})
			}
		}

		// The joint optimisation sees the union of both (identical, after
		// the merge) valid cache views.
		for _, e := range nsA.cache.ValidEntries(now) {
			if e.Node == a || e.Node == b {
				continue
			}
			if e.Node.IsCommandCenter() {
				ccPhotos = e.Photos
				continue
			}
			background = append(background, selection.Participant{
				Node: e.Node, Photos: e.Photos, P: e.P,
			})
		}
	}

	cfg := s.selCfg()
	res := s.sel.Reallocate(s.fpc, cfg, ccPhotos, background,
		selection.Alloc{Node: a, P: pa, Capacity: stA.Capacity(), Photos: photosA},
		selection.Alloc{Node: b, P: pb, Capacity: stB.Capacity(), Photos: photosB},
	)

	// Realise the plan: the first selector's transfers take priority.
	if res.AFirst {
		s.realize(sess, a, res.ASel)
		s.realize(sess, b, res.BSel)
	} else {
		s.realize(sess, b, res.BSel)
		s.realize(sess, a, res.ASel)
	}
}

// realize morphs a node's collection into the selected target: unselected
// photos are dropped, missing ones are pulled from the peer in selection
// order until the budget runs out.
func (s *Scheme) realize(sess *sim.Session, node model.NodeID, sel model.PhotoList) {
	st := s.w.Storage(node)
	want := make(map[model.PhotoID]bool, len(sel))
	for _, p := range sel {
		want[p.ID] = true
	}
	for _, p := range st.List() {
		if !want[p.ID] {
			st.Remove(p.ID)
		}
	}
	for _, p := range sel {
		if st.Has(p.ID) {
			continue
		}
		if s.obsv != nil {
			s.obsv.Emit(obs.Event{Time: sess.Time, Kind: obs.EvPhotoSelected,
				A: int32(node), B: obs.NoNode, Photo: int64(p.ID)})
		}
		if sess.Exhausted() {
			break
		}
		if err := sess.Transfer(node, p); err != nil {
			break // budget gone (ErrBudget) — the rest of the plan is moot
		}
	}
}

// selCfg derives a per-contact selection configuration with a deterministic
// Monte Carlo seed from the run's RNG stream.
func (s *Scheme) selCfg() selection.Config {
	cfg := s.cfg.Selection
	cfg.Seed = s.w.Rand.Int63()
	return cfg
}
