// Package runner is the parallel experiment orchestrator: it shards a
// matrix of independent simulation cells — (job × run), where a job is one
// aggregation group such as (scheme, sweep point) — across a bounded worker
// pool and streams each job's results into Welford mean/variance aggregates.
//
// The design invariants, in order of importance:
//
//   - Determinism: every cell's seed is a pure function of (base seed, run
//     index) via SplitMix64 (see CellSeed), and aggregation applies run
//     summaries in run order regardless of completion order, so results are
//     bit-identical for any worker count, any job ordering, and any
//     interrupt/resume history.
//   - Bounded memory: aggregation is streaming; the orchestrator never
//     retains more than the out-of-order window of summaries per job.
//   - Isolation: a panicking or failing cell fails its job, not the sweep;
//     other jobs run to completion and the error reports which cells died.
//   - Cooperative cancellation: the context is threaded into every cell
//     (and from there into sim.RunContext's event loop); cancelling stops
//     new cells promptly and returns ctx's error.
//   - Resumability: with a Checkpoint attached, completed cells are
//     persisted as JSONL and an interrupted sweep restarts from what
//     finished, recomputing nothing.
//
// The package is simulation-agnostic on purpose: cells return numeric
// Summary values, so sim, experiments, and future workloads layer on top
// without an import cycle.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"photodtn/internal/obs"
)

// CellFunc executes one run of a job: run index runIdx under the derived
// seed. It must be safe to call concurrently with other cells and should
// honour ctx for long computations (sim.RunContext does).
type CellFunc func(ctx context.Context, runIdx int, seed int64) (*Summary, error)

// SeedFunc derives the seed of run runIdx within one job.
type SeedFunc func(runIdx int) int64

// Job is one aggregation group of the run matrix: Runs independent cells
// whose summaries are averaged together.
type Job struct {
	// Key identifies the job — in progress reports, errors, and checkpoint
	// records. Keys must be unique within one Run call and stable across
	// invocations for checkpoints to resume.
	Key string
	// Runs is the number of independent runs (cells) to aggregate.
	Runs int
	// Cell executes one run.
	Cell CellFunc
	// Seed optionally overrides the seed derivation for this job; nil uses
	// CellSeed(Options.BaseSeed, runIdx). Callers with a documented legacy
	// seed family (sim.RunMany's baseSeed, baseSeed+1, ...) override it here.
	Seed SeedFunc
}

// Options configures one orchestrator run.
type Options struct {
	// Workers bounds the concurrent cells; <= 0 means GOMAXPROCS. Results
	// are bit-identical for every value.
	Workers int
	// BaseSeed parameterises the default per-cell seed derivation.
	BaseSeed int64
	// Checkpoint, when non-nil, records completed cells and resumes
	// previously completed ones. The caller owns Open/Close.
	Checkpoint *Checkpoint
	// Obs, when non-nil, receives the orchestrator's counters
	// (runner.cells_started/completed/failed/resumed) and the per-cell
	// wall-time histogram runner.cell_seconds. Nil is a strict no-op.
	Obs *obs.Observer
}

// ErrNoJobs is returned when Run is given an empty matrix.
var ErrNoJobs = errors.New("runner: no jobs")

// cellRef addresses one cell of the matrix.
type cellRef struct {
	job, run int
}

// Run executes the job matrix and returns one aggregate per job, in job
// order. On failure the returned error joins every failed job's first
// error; aggregates of jobs that completed are still returned (failed
// jobs yield nil entries), so a sweep survives isolated crashes. A
// cancelled context aborts promptly with its error; completed cells remain
// in the checkpoint for resumption.
func Run(ctx context.Context, jobs []Job, opts Options) ([]*Aggregate, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(jobs) == 0 {
		return nil, ErrNoJobs
	}
	seen := make(map[string]bool, len(jobs))
	for i, j := range jobs {
		switch {
		case j.Runs <= 0:
			return nil, fmt.Errorf("runner: job %q needs at least one run", j.Key)
		case j.Cell == nil:
			return nil, fmt.Errorf("runner: job %q has no cell function", j.Key)
		case seen[j.Key]:
			return nil, fmt.Errorf("runner: duplicate job key %q", j.Key)
		}
		seen[jobs[i].Key] = true
	}

	o := opts.Obs
	cStarted := o.Counter("runner.cells_started")
	cCompleted := o.Counter("runner.cells_completed")
	cFailed := o.Counter("runner.cells_failed")
	cResumed := o.Counter("runner.cells_resumed")
	hSeconds := o.Histogram("runner.cell_seconds")

	seedOf := func(j *Job, run int) int64 {
		if j.Seed != nil {
			return j.Seed(run)
		}
		return CellSeed(opts.BaseSeed, run)
	}

	var (
		mu      sync.Mutex
		aggs    = make([]*Agg, len(jobs))
		jobErrs = make([]error, len(jobs))
	)
	for i := range aggs {
		aggs[i] = NewAgg()
	}

	// Resolve checkpointed cells first — resumed work costs one map lookup —
	// and queue the rest.
	var work []cellRef
	for ji := range jobs {
		for run := 0; run < jobs[ji].Runs; run++ {
			if sum, ok := opts.Checkpoint.Lookup(jobs[ji].Key, run, seedOf(&jobs[ji], run)); ok {
				if err := aggs[ji].Add(run, sum); err != nil {
					jobErrs[ji] = errors.Join(jobErrs[ji], err)
					continue
				}
				cResumed.Inc()
				continue
			}
			work = append(work, cellRef{job: ji, run: run})
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}
	ch := make(chan cellRef)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range ch {
				if ctx.Err() != nil {
					continue // drain: stop starting cells, let Run report ctx.Err
				}
				job := &jobs[c.job]
				mu.Lock()
				dead := jobErrs[c.job] != nil
				mu.Unlock()
				if dead {
					continue // the job already failed; don't burn cores on it
				}
				seed := seedOf(job, c.run)
				cStarted.Inc()
				start := time.Now()
				sum, err := runCell(ctx, job, c.run, seed)
				hSeconds.Observe(time.Since(start).Seconds())
				if err == nil && sum == nil {
					err = fmt.Errorf("runner: job %q run %d returned no summary", job.Key, c.run)
				}
				if err != nil {
					if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
						continue // cancellation, not a cell failure
					}
					cFailed.Inc()
					mu.Lock()
					jobErrs[c.job] = errors.Join(jobErrs[c.job],
						fmt.Errorf("runner: job %q run %d: %w", job.Key, c.run, err))
					mu.Unlock()
					continue
				}
				cCompleted.Inc()
				mu.Lock()
				addErr := aggs[c.job].Add(c.run, sum)
				if addErr != nil {
					jobErrs[c.job] = errors.Join(jobErrs[c.job], addErr)
				}
				mu.Unlock()
				if addErr == nil {
					if err := opts.Checkpoint.Record(job.Key, c.run, seed, sum); err != nil {
						mu.Lock()
						jobErrs[c.job] = errors.Join(jobErrs[c.job], err)
						mu.Unlock()
					}
				}
			}
		}()
	}
	for _, c := range work {
		ch <- c
	}
	close(ch)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("runner: interrupted: %w", err)
	}
	out := make([]*Aggregate, len(jobs))
	var errs []error
	for i := range jobs {
		if jobErrs[i] != nil {
			errs = append(errs, jobErrs[i])
			continue
		}
		agg, err := aggs[i].Result(jobs[i].Key, jobs[i].Runs)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		out[i] = agg
	}
	if len(errs) > 0 {
		return out, errors.Join(errs...)
	}
	return out, nil
}

// runCell executes one cell with panic isolation: a crashing run surfaces
// as that cell's error (with its stack) instead of killing the sweep.
func runCell(ctx context.Context, job *Job, runIdx int, seed int64) (sum *Summary, err error) {
	defer func() {
		if r := recover(); r != nil {
			sum, err = nil, fmt.Errorf("cell panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return job.Cell(ctx, runIdx, seed)
}
