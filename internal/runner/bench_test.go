package runner

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkRunner measures orchestration overhead per cell: a 8-job × 8-run
// matrix of near-free cells, so the cost is scheduling, seeding, aggregation,
// and locking rather than simulation work.
func BenchmarkRunner(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), testJobs(8, 8, 4), Options{Workers: workers, BaseSeed: 42}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAggAdd measures the streaming aggregation path alone.
func BenchmarkAggAdd(b *testing.B) {
	sum, err := mathCell(20)(context.Background(), 0, CellSeed(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAgg()
		for r := 0; r < 16; r++ {
			if err := a.Add(r, sum); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCellSeed pins the seed derivation as O(1) and allocation-free.
func BenchmarkCellSeed(b *testing.B) {
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink ^= CellSeed(42, i)
	}
	_ = sink
}
