package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"photodtn/internal/obs"
)

// mathCell is a deterministic, seed-sensitive cell: every field derives
// from the seed through floating-point arithmetic so any seed or ordering
// drift shows up bitwise.
func mathCell(samples int) CellFunc {
	return func(_ context.Context, runIdx int, seed int64) (*Summary, error) {
		x := float64(uint32(seed)) / (1 << 32)
		s := &Summary{Scheme: "math"}
		for i := 0; i < samples; i++ {
			t := float64(i+1) * 100
			s.Samples = append(s.Samples, Sample{
				Time:      t,
				PointFrac: math.Sin(x*t) * 0.5,
				AspectRad: math.Sqrt(x * t),
				Delivered: math.Floor(x * t),
			})
		}
		s.Final = Sample{Time: float64(samples+1) * 100, PointFrac: x, AspectRad: 2 * x, Delivered: 10 * x}
		s.TransferredPhotos = x * 1000
		s.TransferredBytes = x * 1e9
		s.MeanRecoverySec = x / 3
		return s, nil
	}
}

func testJobs(n, runs, samples int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Key: fmt.Sprintf("job-%d", i), Runs: runs, Cell: mathCell(samples)}
	}
	return jobs
}

// summariesBitIdentical compares two aggregates field-for-field on exact
// float bits (reflect.DeepEqual does exactly that for float64, including
// distinguishing ±0).
func aggregatesBitIdentical(t *testing.T, a, b []*Aggregate) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("aggregates differ:\n%+v\nvs\n%+v", a, b)
	}
}

func TestRunParallelBitIdenticalAcrossWorkerCounts(t *testing.T) {
	jobs := testJobs(5, 7, 3)
	base, err := Run(context.Background(), jobs, Options{Workers: 1, BaseSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Run(context.Background(), testJobs(5, 7, 3), Options{Workers: workers, BaseSeed: 42})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		aggregatesBitIdentical(t, base, got)
	}
}

func TestSeedDerivationStableAcrossCellReordering(t *testing.T) {
	// The same job keyed identically must aggregate identically no matter
	// where it sits in the matrix: seeds depend on (base, run index) only.
	jobs := testJobs(4, 5, 2)
	fwd, err := Run(context.Background(), jobs, Options{Workers: 3, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rev := testJobs(4, 5, 2)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	got, err := Run(context.Background(), rev, Options{Workers: 3, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		aggregatesBitIdentical(t,
			[]*Aggregate{fwd[i]},
			[]*Aggregate{got[len(rev)-1-i]})
	}
}

func TestCellSeedGolden(t *testing.T) {
	// Pin the derivation: silent changes would break every existing
	// checkpoint file and decouple new results from committed reports.
	if got := CellSeed(0, 0); got != int64(SplitMix64(golden)) {
		t.Fatalf("CellSeed(0,0) = %d", got)
	}
	seen := make(map[int64]bool)
	for base := int64(0); base < 4; base++ {
		for idx := 0; idx < 64; idx++ {
			s := CellSeed(base, idx)
			if seen[s] {
				t.Fatalf("seed collision at base=%d idx=%d", base, idx)
			}
			seen[s] = true
		}
	}
	if CellSeed(1, 3) != CellSeed(1, 3) {
		t.Fatal("CellSeed not deterministic")
	}
}

func TestAggWelfordMeanVariance(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a := NewAgg()
	// Feed out of order: 0 last.
	for i := len(vals) - 1; i >= 0; i-- {
		if err := a.Add(i, &Summary{Final: Sample{PointFrac: vals[i]}}); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := a.Result("welford", len(vals))
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var m2 float64
	for _, v := range vals {
		m2 += (v - mean) * (v - mean)
	}
	wantVar := m2 / float64(len(vals)-1)
	if math.Abs(agg.Mean.Final.PointFrac-mean) > 1e-12 {
		t.Fatalf("mean = %v, want %v", agg.Mean.Final.PointFrac, mean)
	}
	if math.Abs(agg.Var.Final.PointFrac-wantVar) > 1e-12 {
		t.Fatalf("var = %v, want %v", agg.Var.Final.PointFrac, wantVar)
	}
}

func TestAggRejectsLayoutMismatchAndDuplicates(t *testing.T) {
	a := NewAgg()
	if err := a.Add(0, &Summary{Scheme: "x", Samples: []Sample{{}}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(1, &Summary{Scheme: "x"}); !errors.Is(err, ErrLayout) {
		t.Fatalf("sample-count mismatch: err = %v", err)
	}
	if err := a.Add(1, &Summary{Scheme: "y", Samples: []Sample{{}}}); !errors.Is(err, ErrLayout) {
		t.Fatalf("scheme mismatch: err = %v", err)
	}
	if err := a.Add(0, &Summary{Scheme: "x", Samples: []Sample{{}}}); err == nil {
		t.Fatal("duplicate run accepted")
	}
	if _, err := a.Result("k", 3); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("incomplete aggregate: err = %v", err)
	}
}

func TestPanicIsolation(t *testing.T) {
	jobs := testJobs(3, 4, 1)
	jobs[1].Cell = func(ctx context.Context, runIdx int, seed int64) (*Summary, error) {
		if runIdx == 2 {
			panic("kaboom")
		}
		return mathCell(1)(ctx, runIdx, seed)
	}
	aggs, err := Run(context.Background(), jobs, Options{Workers: 4, BaseSeed: 1})
	if err == nil || aggs[1] != nil {
		t.Fatalf("crashing job must fail: aggs[1]=%v err=%v", aggs[1], err)
	}
	if aggs[0] == nil || aggs[2] == nil {
		t.Fatal("healthy jobs must survive a crashing neighbour")
	}
	if want := `job "job-1" run 2`; !strings.Contains(err.Error(), want) || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("error does not identify the cell: %v", err)
	}
}

func TestCellErrorFailsOnlyItsJob(t *testing.T) {
	jobs := testJobs(2, 3, 0)
	boom := errors.New("boom")
	jobs[0].Cell = func(context.Context, int, int64) (*Summary, error) { return nil, boom }
	aggs, err := Run(context.Background(), jobs, Options{Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if aggs[0] != nil || aggs[1] == nil {
		t.Fatalf("isolation broken: %v", aggs)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil, Options{}); !errors.Is(err, ErrNoJobs) {
		t.Fatalf("empty matrix: err = %v", err)
	}
	cell := mathCell(0)
	cases := []Job{
		{Key: "zero-runs", Runs: 0, Cell: cell},
		{Key: "no-cell", Runs: 1},
	}
	for _, j := range cases {
		if _, err := Run(context.Background(), []Job{j}, Options{}); err == nil {
			t.Fatalf("job %q accepted", j.Key)
		}
	}
	dup := []Job{{Key: "k", Runs: 1, Cell: cell}, {Key: "k", Runs: 1, Cell: cell}}
	if _, err := Run(context.Background(), dup, Options{}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

func TestCancellationStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	jobs := []Job{{Key: "slow", Runs: 64, Cell: func(ctx context.Context, _ int, _ int64) (*Summary, error) {
		if started.Add(1) == 3 {
			cancel()
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return &Summary{}, nil
		}
	}}}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, jobs, Options{Workers: 4})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if n := started.Load(); n > 8 {
		t.Fatalf("cells kept starting after cancel: %d", n)
	}
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	const jobsN, runs = 3, 6

	// Uninterrupted reference, no checkpoint.
	want, err := Run(context.Background(), testJobs(jobsN, runs, 2), Options{Workers: 2, BaseSeed: 11})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel once half the cells completed.
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int32
	interrupted := testJobs(jobsN, runs, 2)
	for i := range interrupted {
		inner := interrupted[i].Cell
		interrupted[i].Cell = func(ctx context.Context, runIdx int, seed int64) (*Summary, error) {
			s, err := inner(ctx, runIdx, seed)
			if completed.Add(1) == jobsN*runs/2 {
				cancel()
			}
			return s, err
		}
	}
	if _, err := Run(ctx, interrupted, Options{Workers: 2, BaseSeed: 11, Checkpoint: cp}); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v", err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	recorded := cp.Len()
	if recorded == 0 || recorded >= jobsN*runs {
		t.Fatalf("checkpoint recorded %d of %d cells; the interrupt did not land mid-sweep", recorded, jobsN*runs)
	}

	// Resume: reopen, rerun, compare bitwise; the resumed cells must come
	// from the file, not recomputation.
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Len() != recorded {
		t.Fatalf("reloaded %d records, wrote %d", cp2.Len(), recorded)
	}
	var reran atomic.Int32
	resumed := testJobs(jobsN, runs, 2)
	for i := range resumed {
		inner := resumed[i].Cell
		resumed[i].Cell = func(ctx context.Context, runIdx int, seed int64) (*Summary, error) {
			reran.Add(1)
			return inner(ctx, runIdx, seed)
		}
	}
	got, err := Run(context.Background(), resumed, Options{Workers: 2, BaseSeed: 11, Checkpoint: cp2})
	if err != nil {
		t.Fatal(err)
	}
	aggregatesBitIdentical(t, want, got)
	if int(reran.Load()) != jobsN*runs-recorded {
		t.Fatalf("reran %d cells, want %d", reran.Load(), jobsN*runs-recorded)
	}
}

func TestCheckpointIgnoresSeedMismatchAndTornLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Record("j", 0, 123, &Summary{Final: Sample{PointFrac: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append: a torn trailing line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"job":"j","run":1,"seed":9,"summ`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if cp2.Len() != 1 {
		t.Fatalf("len = %d, want 1 (torn line skipped)", cp2.Len())
	}
	if _, ok := cp2.Lookup("j", 0, 123); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok := cp2.Lookup("j", 0, 999); ok {
		t.Fatal("seed mismatch must miss")
	}
	var nilCP *Checkpoint
	if _, ok := nilCP.Lookup("j", 0, 1); ok || nilCP.Record("j", 0, 1, &Summary{}) != nil || nilCP.Len() != 0 || nilCP.Close() != nil {
		t.Fatal("nil checkpoint must be a strict no-op")
	}
}

func TestCheckpointRoundTripIsBitExact(t *testing.T) {
	// JSON float64 round-tripping must be exact, or resume would diverge
	// from uninterrupted runs.
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := mathCell(3)(context.Background(), 0, CellSeed(99, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Record("bits", 5, CellSeed(99, 5), sum); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	cp2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	got, ok := cp2.Lookup("bits", 5, CellSeed(99, 5))
	if !ok {
		t.Fatal("record lost")
	}
	if !reflect.DeepEqual(sum, got) {
		t.Fatalf("round trip not bit-exact:\n%+v\nvs\n%+v", sum, got)
	}
}

func TestRunnerObsCounters(t *testing.T) {
	// Counters and the wall-time histogram must reconcile with the matrix.
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New(0, nil)
	if _, err := Run(context.Background(), testJobs(2, 3, 1), Options{Workers: 2, BaseSeed: 5, Checkpoint: cp, Obs: o}); err != nil {
		t.Fatal(err)
	}
	if got := o.Counter("runner.cells_completed").Value(); got != 6 {
		t.Fatalf("completed = %d, want 6", got)
	}
	if got := o.Counter("runner.cells_resumed").Value(); got != 0 {
		t.Fatalf("resumed = %d, want 0", got)
	}
	if got := o.Histogram("runner.cell_seconds").Count(); got != 6 {
		t.Fatalf("wall-time observations = %d, want 6", got)
	}
	// Second pass resumes everything.
	o2 := obs.New(0, nil)
	if _, err := Run(context.Background(), testJobs(2, 3, 1), Options{Workers: 2, BaseSeed: 5, Checkpoint: cp, Obs: o2}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if got := o2.Counter("runner.cells_resumed").Value(); got != 6 {
		t.Fatalf("resumed = %d, want 6", got)
	}
	if got := o2.Counter("runner.cells_started").Value(); got != 0 {
		t.Fatalf("started = %d, want 0", got)
	}
}
